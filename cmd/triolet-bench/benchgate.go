package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"triolet/internal/iter"
)

// Benchmark-regression gate. The fusion machinery's whole value proposition
// (paper §5: skeleton pipelines compile to loops) is that a composed
// pipeline costs about the same as the hand-written loop it replaces. The
// gate measures that directly: each case runs a fused pipeline and its raw
// loop twin and records the time ratio pipeline/raw. Ratios are
// machine-independent — both sides run on the same box in the same process —
// so a checked-in baseline stays meaningful across CI runners, where
// absolute ns/op would not. CI fails when any ratio regresses more than 25%
// over the baseline (see BENCH_BASELINE.json and the bench-gate CI job).

// gateData is sized to dominate loop overhead without making runs slow.
var gateData = func() []int64 {
	xs := make([]int64, 1<<15)
	for i := range xs {
		xs[i] = int64(i % 1003)
	}
	return xs
}()

var gateSink int64

type gateCase struct {
	Name     string
	Pipeline func(b *testing.B)
	Raw      func(b *testing.B)
}

var gateCases = []gateCase{
	{
		Name: "sum-flat",
		Pipeline: func(b *testing.B) {
			it := iter.FromSlice(gateData)
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					acc += v
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "map-map-sum",
		Pipeline: func(b *testing.B) {
			it := iter.Map(func(x int64) int64 { return x + 1 },
				iter.Map(func(x int64) int64 { return x * 3 }, iter.FromSlice(gateData)))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					acc += v*3 + 1
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "filter-sum",
		Pipeline: func(b *testing.B) {
			it := iter.Filter(func(v int64) bool { return v%3 == 0 }, iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					if v%3 == 0 {
						acc += v
					}
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "zipwith-sum",
		Pipeline: func(b *testing.B) {
			it := iter.ZipWith(func(a, b int64) int64 { return a * b },
				iter.FromSlice(gateData), iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for i, v := range gateData {
					acc += v * gateData[i]
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "histogram",
		Pipeline: func(b *testing.B) {
			it := iter.Map(func(v int64) int { return int(v % 64) }, iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Histogram(64, it)[7]
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var bins [64]int64
				for _, v := range gateData {
					bins[v%64]++
				}
				gateSink = bins[7]
			}
		},
	},
}

// gateResult is one case's measurement. Only Ratio is gated; the absolute
// times are informational (they vary with the machine).
type gateResult struct {
	Name       string  `json:"name"`
	PipelineNs float64 `json:"pipeline_ns_per_op"`
	RawNs      float64 `json:"raw_ns_per_op"`
	Ratio      float64 `json:"ratio"`
}

type gateReport struct {
	Note       string       `json:"note"`
	Benchmarks []gateResult `json:"benchmarks"`
}

// runCase measures one case, best-of-rounds to tame scheduler noise.
func runCase(c gateCase, rounds int) gateResult {
	best := func(f func(b *testing.B)) float64 {
		min := 0.0
		for i := 0; i < rounds; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}
	p, raw := best(c.Pipeline), best(c.Raw)
	return gateResult{Name: c.Name, PipelineNs: p, RawNs: raw, Ratio: p / raw}
}

// runBenchGate executes the gate and returns the process exit code.
func runBenchGate(jsonOut bool, baselinePath, writeBaselinePath string) int {
	report := gateReport{
		Note: "ratio = fused pipeline time / hand-written loop time; only ratios are gated",
	}
	for _, c := range gateCases {
		fmt.Fprintf(os.Stderr, "bench-gate: measuring %s...\n", c.Name)
		report.Benchmarks = append(report.Benchmarks, runCase(c, 3))
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		fmt.Printf("%-14s %14s %14s %8s\n", "case", "pipeline ns/op", "raw ns/op", "ratio")
		for _, r := range report.Benchmarks {
			fmt.Printf("%-14s %14.1f %14.1f %8.3f\n", r.Name, r.PipelineNs, r.RawNs, r.Ratio)
		}
	}

	if writeBaselinePath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(writeBaselinePath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-gate: wrote baseline to %s\n", writeBaselinePath)
		return 0
	}

	if baselinePath == "" {
		return 0
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		return 1
	}
	var base gateReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	baseRatio := map[string]float64{}
	for _, r := range base.Benchmarks {
		baseRatio[r.Name] = r.Ratio
	}

	// Fail on >25% ratio regression. The floor on the allowed ratio absorbs
	// timer noise on cases whose baseline is already at parity (~1.0): a
	// jump from 1.00 to 1.24 is jitter, 1.00 to 1.60 is a lost fusion path.
	const (
		slack = 1.25
		floor = 1.5
	)
	exit := 0
	for _, r := range report.Benchmarks {
		b, ok := baseRatio[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench-gate: %s missing from baseline (add it with -write-baseline)\n", r.Name)
			exit = 1
			continue
		}
		allowed := b * slack
		if allowed < floor {
			allowed = floor
		}
		if r.Ratio > allowed {
			fmt.Fprintf(os.Stderr, "bench-gate: FAIL %s: ratio %.3f exceeds allowed %.3f (baseline %.3f)\n",
				r.Name, r.Ratio, allowed, b)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "bench-gate: ok %s: ratio %.3f (baseline %.3f, allowed %.3f)\n",
				r.Name, r.Ratio, b, allowed)
		}
	}
	return exit
}
