package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"triolet/internal/iter"
)

// Benchmark-regression gate. The fusion machinery's whole value proposition
// (paper §5: skeleton pipelines compile to loops) is that a composed
// pipeline costs about the same as the hand-written loop it replaces. The
// gate measures that directly: each case runs a fused pipeline and its raw
// loop twin and records the time ratio pipeline/raw. Ratios are
// machine-independent — both sides run on the same box in the same process —
// so a checked-in baseline stays meaningful across CI runners, where
// absolute ns/op would not. CI fails when any ratio regresses more than 15%
// over the baseline (see BENCH_BASELINE.json and the bench-gate CI job).

// gateData is sized to dominate loop overhead without making runs slow.
var gateData = func() []int64 {
	xs := make([]int64, 1<<15)
	for i := range xs {
		xs[i] = int64(i % 1003)
	}
	return xs
}()

// gateFloats back the dot-product case (zip fusion over two float arrays).
var gateFloatsA, gateFloatsB = func() ([]float64, []float64) {
	a := make([]float64, 1<<15)
	b := make([]float64, 1<<15)
	for i := range a {
		a[i] = float64(i%911) * 0.5
		b[i] = float64(i%613) * 0.25
	}
	return a, b
}()

var gateSink int64

var gateSinkF float64

type gateCase struct {
	Name     string
	Pipeline func(b *testing.B)
	Raw      func(b *testing.B)
}

var gateCases = []gateCase{
	{
		Name: "sum-flat",
		Pipeline: func(b *testing.B) {
			it := iter.FromSlice(gateData)
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					acc += v
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "map-map-sum",
		Pipeline: func(b *testing.B) {
			it := iter.Map(func(x int64) int64 { return x + 1 },
				iter.Map(func(x int64) int64 { return x * 3 }, iter.FromSlice(gateData)))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					acc += v*3 + 1
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "filter-sum",
		Pipeline: func(b *testing.B) {
			it := iter.Filter(func(v int64) bool { return v%3 == 0 }, iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					if v%3 == 0 {
						acc += v
					}
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "zipwith-sum",
		Pipeline: func(b *testing.B) {
			it := iter.ZipWith(func(a, b int64) int64 { return a * b },
				iter.FromSlice(gateData), iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for i, v := range gateData {
					acc += v * gateData[i]
				}
				gateSink = acc
			}
		},
	},
	{
		Name: "histogram",
		Pipeline: func(b *testing.B) {
			it := iter.Map(func(v int64) int { return int(v % 64) }, iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Histogram(64, it)[7]
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var bins [64]int64
				for _, v := range gateData {
					bins[v%64]++
				}
				gateSink = bins[7]
			}
		},
	},
	{
		// Irregular fusion: every element expands into a short inner loop
		// (KIdxNest of tiny slice-free iterators). This is the shape of
		// tpacf's pair loops; it measures the per-inner-iterator setup cost
		// the block engine cannot amortize.
		Name: "concatmap-sum",
		Pipeline: func(b *testing.B) {
			it := iter.ConcatMap(func(v int64) iter.Iter[int64] {
				n := int(v % 4)
				return iter.Map(func(j int) int64 { return v + int64(j) }, iter.Range(n))
			}, iter.FromSlice(gateData))
			for b.Loop() {
				gateSink = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc int64
				for _, v := range gateData {
					n := int(v % 4)
					for j := 0; j < n; j++ {
						acc += v + int64(j)
					}
				}
				gateSink = acc
			}
		},
	},
	{
		// Zip fusion over two distinct arrays through the Zip→Map path (the
		// Pair-constructing route, unlike zipwith-sum's direct ZipWith).
		Name: "dot-product",
		Pipeline: func(b *testing.B) {
			it := iter.Map(func(p iter.Pair[float64, float64]) float64 { return p.Fst * p.Snd },
				iter.Zip(iter.FromSlice(gateFloatsA), iter.FromSlice(gateFloatsB)))
			for b.Loop() {
				gateSinkF = iter.Sum(it)
			}
		},
		Raw: func(b *testing.B) {
			for b.Loop() {
				var acc float64
				for i, v := range gateFloatsA {
					acc += v * gateFloatsB[i]
				}
				gateSinkF = acc
			}
		},
	},
}

// gateResult is one case's measurement. Only Ratio is gated; the absolute
// times are informational (they vary with the machine).
type gateResult struct {
	Name       string  `json:"name"`
	PipelineNs float64 `json:"pipeline_ns_per_op"`
	RawNs      float64 `json:"raw_ns_per_op"`
	Ratio      float64 `json:"ratio"`
}

type gateReport struct {
	Note       string       `json:"note"`
	Benchmarks []gateResult `json:"benchmarks"`
}

// runCase measures one case. Pipeline and raw twin are measured adjacently
// within each round so both sides see the same machine state (frequency
// scaling and background load shift between rounds, which would skew a
// best-of-pipeline over best-of-raw quotient); the reported result is the
// round with the median ratio.
func runCase(c gateCase, rounds int) gateResult {
	measure := func(f func(b *testing.B)) float64 {
		r := testing.Benchmark(f)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	results := make([]gateResult, 0, rounds)
	for i := 0; i < rounds; i++ {
		p := measure(c.Pipeline)
		raw := measure(c.Raw)
		results = append(results, gateResult{Name: c.Name, PipelineNs: p, RawNs: raw, Ratio: p / raw})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Ratio < results[j].Ratio })
	return results[len(results)/2]
}

// runBenchGate executes the gate and returns the process exit code.
func runBenchGate(jsonOut bool, baselinePath, writeBaselinePath string) int {
	report := gateReport{
		Note: "ratio = fused pipeline time / hand-written loop time; only ratios are gated",
	}
	for _, c := range gateCases {
		fmt.Fprintf(os.Stderr, "bench-gate: measuring %s...\n", c.Name)
		report.Benchmarks = append(report.Benchmarks, runCase(c, 5))
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		fmt.Printf("%-14s %14s %14s %8s\n", "case", "pipeline ns/op", "raw ns/op", "ratio")
		for _, r := range report.Benchmarks {
			fmt.Printf("%-14s %14.1f %14.1f %8.3f\n", r.Name, r.PipelineNs, r.RawNs, r.Ratio)
		}
	}

	if writeBaselinePath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(writeBaselinePath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-gate: wrote baseline to %s\n", writeBaselinePath)
		return 0
	}

	if baselinePath == "" {
		return 0
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		return 1
	}
	var base gateReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	baseRatio := map[string]float64{}
	for _, r := range base.Benchmarks {
		baseRatio[r.Name] = r.Ratio
	}

	// Fail on >10% ratio regression. Fused reduction kernels (fuse.go)
	// pushed the zip/dot baselines down again, and paired-round medians
	// keep run-to-run jitter inside a few percent, so 10% is safely above
	// noise while catching a lost fast path on every case. The floor on
	// the allowed ratio absorbs timer noise on cases whose baseline is at
	// parity (~1.0): a jump from 1.00 to 1.10 is jitter, 1.00 to 1.50 is
	// a lost fusion path.
	const (
		slack = 1.10
		floor = 1.4
	)
	exit := 0
	for _, r := range report.Benchmarks {
		b, ok := baseRatio[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench-gate: %s missing from baseline (add it with -write-baseline)\n", r.Name)
			exit = 1
			continue
		}
		allowed := b * slack
		if allowed < floor {
			allowed = floor
		}
		if r.Ratio > allowed {
			fmt.Fprintf(os.Stderr, "bench-gate: FAIL %s: ratio %.3f exceeds allowed %.3f (baseline %.3f)\n",
				r.Name, r.Ratio, allowed, b)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "bench-gate: ok %s: ratio %.3f (baseline %.3f, allowed %.3f)\n",
				r.Name, r.Ratio, b, allowed)
		}
	}
	return exit
}
