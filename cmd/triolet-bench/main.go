// Command triolet-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	triolet-bench              # everything: Figs 1, 3, 4, 5, 7, 8 + summary
//	triolet-bench -fig 5       # one figure
//	triolet-bench -summary     # headline claims only
//	triolet-bench -verify      # run the real implementations on the
//	                           # virtual cluster and check correctness
//	triolet-bench -verify -nodes 8 -cores 2 -scale 2
//
// Scaling figures come from the calibrated performance model (see
// internal/perfmodel and DESIGN.md): kernel unit costs and serialization
// costs are measured on this machine by running the repository's real
// code; cluster communication is modeled with validated byte formulas.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"triolet/internal/harness"
	"triolet/internal/perfmodel"
	"triolet/internal/transport"
)

func main() {
	fig := flag.Int("fig", 0, "print one figure (1, 3, 4, 5, 7, 8); 0 = all")
	summary := flag.Bool("summary", false, "print only the headline-claims summary")
	verify := flag.Bool("verify", false, "run real implementations on the virtual cluster and verify results")
	sweep := flag.Bool("sweep", false, "run a real-execution scaling sweep over virtual node counts")
	format := flag.String("format", "table", "output format for figures: table or csv")
	breakdown := flag.Bool("breakdown", false, "with -fig 4/5/7/8: also print compute/comm/serial time components")
	nodes := flag.Int("nodes", 4, "virtual nodes for -verify")
	cores := flag.Int("cores", 2, "cores per virtual node for -verify/-sweep")
	scale := flag.Int("scale", 1, "input scale multiplier for -verify")
	out := flag.String("out", "", "directory to also write figure files into (fig1.txt, fig3.csv, fig4.csv, ...)")
	netLatUS := flag.Int("netlat", 0, "with -sweep: simulated per-message wire latency in microseconds")
	netMBs := flag.Float64("netbw", 0, "with -sweep: simulated wire bandwidth in MB/s")
	farmDemo := flag.Bool("farm-demo", false, "demo the supervised farm lifecycle: checkpoint to a WAL, kill the master mid-job, resume, quarantine a poison task")
	campaign := flag.Bool("campaign", false, "run the multi-tenant chaos campaign: concurrent jobs on a 2%-fault fabric, mid-flight master kills with bit-identical WAL resume, fairness and admission gates")
	campaignJobs := flag.Int("campaign-jobs", 8, "with -campaign: concurrent jobs (job 1 is poison-heavy)")
	campaignTasks := flag.Int("campaign-tasks", 12, "with -campaign: tasks per job")
	campaignKills := flag.Int("campaign-kills", 2, "with -campaign: mid-flight master kills before the final drain")
	campaignSeed := flag.Int64("campaign-seed", 0, "with -campaign: fault/jitter/backoff seed (0 = the default seed)")
	serve := flag.Bool("serve", false, "host the multi-tenant job service over HTTP on a virtual cluster")
	addr := flag.String("addr", "localhost:8080", "with -serve: HTTP listen address")
	walPath := flag.String("wal", "", "with -serve: registry WAL path (durable jobs; restart resumes); with -campaign: WAL directory")
	benchGate := flag.Bool("bench-gate", false, "run the fused-pipeline regression benchmarks")
	jsonOut := flag.Bool("json", false, "with -bench-gate: emit results as JSON")
	baseline := flag.String("baseline", "", "with -bench-gate: compare ratios against this baseline file and fail on >10% regression")
	writeBaseline := flag.String("write-baseline", "", "with -bench-gate: write the measured ratios to this file")
	autoParSweep := flag.Bool("autopar-sweep", false, "run the AutoPar acceptance sweep: planner-mapped runs vs best hand-tuned 1-8 node configs, with online recalibration")
	autoParBound := flag.Float64("autopar-bound", 1.10, "with -autopar-sweep: fail if any auto-mapped run exceeds bound x best hand-tuned time")
	autoParCalib := flag.String("autopar-calib", "", "with -autopar-sweep: calibration snapshot path to load/update (default: no persistence)")
	msgGate := flag.Bool("msg-gate", false, "measure bytes/messages on the wire for fixed workloads")
	msgBaseline := flag.String("msg-baseline", "", "with -msg-gate: compare against this baseline file and fail on >10% growth")
	writeMsgBaseline := flag.String("write-msg-baseline", "", "with -msg-gate: write the measured wire footprint to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (any mode; pprof evidence for perf PRs)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	// Profiles must be flushed on every exit path, including the os.Exit
	// calls below, so each path funnels through finish.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	defer stopProfiles()

	if *benchGate {
		finish(runBenchGate(*jsonOut, *baseline, *writeBaseline))
	}

	if *msgGate {
		finish(runMsgGate(*jsonOut, *msgBaseline, *writeMsgBaseline))
	}

	if *autoParSweep {
		finish(runAutoParSweep(*jsonOut, *autoParBound, *autoParCalib, *cores))
	}

	if *farmDemo {
		finish(runFarmDemo(*nodes))
	}

	if *campaign {
		finish(runCampaign(*campaignJobs, *campaignTasks, *campaignKills, *nodes, *campaignSeed, *walPath))
	}

	if *serve {
		finish(runServe(*nodes, *addr, *walPath))
	}

	if *verify {
		results := harness.VerifyAll(harness.VerifyConfig{Nodes: *nodes, Cores: *cores, Scale: *scale})
		fmt.Print(harness.VerifyTable(results))
		for _, r := range results {
			if !r.OK {
				finish(1)
			}
		}
		return
	}

	if *sweep {
		var delay *transport.DelayConfig
		if *netLatUS > 0 || *netMBs > 0 {
			delay = &transport.DelayConfig{
				Latency:     time.Duration(*netLatUS) * time.Microsecond,
				BytesPerSec: *netMBs * 1e6,
			}
		}
		fmt.Print(harness.SweepTable(harness.Sweep([]int{1, 2, 4, 8}, *cores, delay)))
		return
	}

	if *fig == 1 {
		fmt.Print(harness.Fig1Table())
		return
	}
	if *fig == 2 {
		fmt.Print(harness.Fig2Table())
		return
	}
	if *fig == 6 {
		fmt.Println("Figure 6 is the tpacf Triolet source, not an experiment; this")
		fmt.Println("repository's transcription lives in internal/parboil/tpacf/dist.go")
		fmt.Println("(selfPairs, crossPairs, correlation, trioletOp).")
		return
	}

	fmt.Fprintln(os.Stderr, "calibrating kernel unit costs on this machine...")
	mo := perfmodel.NewModel()

	if *out != "" {
		if err := writeArtifacts(*out, mo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			finish(1)
		}
		fmt.Fprintf(os.Stderr, "wrote figure files to %s\n", *out)
	}

	csv := *format == "csv"
	switch {
	case *summary:
		fmt.Print(harness.SummaryTable(mo))
	case *fig == 3:
		if csv {
			fmt.Print(harness.Fig3CSV(mo))
		} else {
			fmt.Print(harness.Fig3Table(mo))
		}
	case *fig == 4 || *fig == 5 || *fig == 7 || *fig == 8:
		for _, b := range perfmodel.Benches {
			if b.Figure() == *fig {
				if csv {
					fmt.Print(harness.FigSeriesCSV(mo, b))
				} else {
					fmt.Print(harness.FigSeriesTable(mo, b))
					if *breakdown {
						fmt.Println()
						fmt.Print(harness.BreakdownTable(mo, b, perfmodel.Triolet))
						fmt.Println()
						fmt.Print(harness.BreakdownTable(mo, b, perfmodel.RefC))
					}
				}
			}
		}
	case *fig == 0 && csv:
		fmt.Print(harness.Fig3CSV(mo))
		for _, b := range perfmodel.Benches {
			fmt.Print(harness.FigSeriesCSV(mo, b))
		}
	case *fig == 0:
		fmt.Print(harness.Fig1Table())
		fmt.Println()
		fmt.Print(harness.Fig3Table(mo))
		fmt.Println()
		for _, b := range perfmodel.Benches {
			fmt.Print(harness.FigSeriesTable(mo, b))
			fmt.Println()
		}
		fmt.Print(harness.SummaryTable(mo))
	default:
		fmt.Fprintf(os.Stderr, "no such figure: %d (figures 1-8; 2 and 6 are implementation figures)\n", *fig)
		finish(2)
	}
}

// startProfiles begins CPU profiling and registers the heap snapshot, per
// the -cpuprofile/-memprofile flags. The returned stop function is
// idempotent and must run before the process exits for either profile to be
// complete on disk.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// writeArtifacts saves every figure — tables as .txt, data series as .csv —
// for plotting or archiving alongside EXPERIMENTS.md.
func writeArtifacts(dir string, mo *perfmodel.Model) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]string{
		"fig1.txt":    harness.Fig1Table(),
		"fig2.txt":    harness.Fig2Table(),
		"fig3.txt":    harness.Fig3Table(mo),
		"fig3.csv":    harness.Fig3CSV(mo),
		"summary.txt": harness.SummaryTable(mo),
	}
	for _, b := range perfmodel.Benches {
		files[fmt.Sprintf("fig%d.txt", b.Figure())] = harness.FigSeriesTable(mo, b)
		files[fmt.Sprintf("fig%d.csv", b.Figure())] = harness.FigSeriesCSV(mo, b)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
