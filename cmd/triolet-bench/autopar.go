package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"triolet/internal/harness"
)

// AutoPar acceptance gate. The planner must beat the practitioner: for
// every Parboil benchmark the perfmodel-chosen mapping (placement, node
// count, grain, serialization) runs against the best hand-tuned
// 1/2/4/8-node configuration of the same farm, and the recalibrated
// second run must land within the bound. CI runs this with a relaxed
// bound (shared runners jitter); nightly enforces the paper's 10%.

// autoParPoint is the JSON projection of one sweep point, shaped for the
// CI job summary's predicted-vs-observed table.
type autoParPoint struct {
	Bench     string  `json:"bench"`
	Plan1     string  `json:"plan_run1"`
	Plan2     string  `json:"plan_run2"`
	Pred1MS   float64 `json:"predicted_run1_ms"`
	Obs1MS    float64 `json:"observed_run1_ms"`
	Pred2MS   float64 `json:"predicted_run2_ms"`
	Obs2MS    float64 `json:"observed_run2_ms"`
	Err1      float64 `json:"rel_err_run1"`
	Err2      float64 `json:"rel_err_run2"`
	PredBytes int64   `json:"predicted_bytes"`
	ObsBytes  int64   `json:"observed_bytes"`
	BestMS    float64 `json:"best_hand_ms"`
	BestNodes int     `json:"best_hand_nodes"`
	Ratio     float64 `json:"ratio_vs_best_hand"`
	OK        bool    `json:"ok"`
}

type autoParReport struct {
	Note      string         `json:"note"`
	Bound     float64        `json:"bound"`
	CalibPath string         `json:"calibration_snapshot,omitempty"`
	Resumed   bool           `json:"resumed_snapshot"`
	Points    []autoParPoint `json:"points"`
}

func runAutoParSweep(jsonOut bool, bound float64, calibPath string, cores int) int {
	fmt.Fprintln(os.Stderr, "autopar: calibrating, planning, and sweeping 4 benchmarks...")
	res, err := harness.AutoSweep(cores, calibPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autopar: %v\n", err)
		return 1
	}

	if jsonOut {
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
		report := autoParReport{
			Note:      "auto-mapped (planner-chosen placement/nodes/grain) vs best hand-tuned 1-8 nodes; run 2 is replanned from online recalibration",
			Bound:     bound,
			CalibPath: res.CalibPath,
			Resumed:   res.Resumed,
		}
		for _, p := range res.Points {
			report.Points = append(report.Points, autoParPoint{
				Bench: p.Bench, Plan1: p.Plan1, Plan2: p.Plan2,
				Pred1MS: ms(p.Pred1), Obs1MS: ms(p.Obs1),
				Pred2MS: ms(p.Pred2), Obs2MS: ms(p.Obs2),
				Err1: p.Err1, Err2: p.Err2,
				PredBytes: p.PredBytes, ObsBytes: p.ObsBytes,
				BestMS: ms(p.Best), BestNodes: p.BestNodes,
				Ratio: p.Ratio, OK: p.OK,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		fmt.Print(harness.AutoTable(res))
	}

	if err := harness.AutoGate(res, bound); err != nil {
		fmt.Fprintf(os.Stderr, "autopar: FAIL %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "autopar: ok — all benchmarks within %.2fx of best hand-tuned, recalibration converging\n", bound)
	return 0
}
