package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/jobs"
)

// The job-service modes: -campaign runs the multi-tenant chaos campaign
// (the acceptance gate as a command), -serve exposes a live service over
// HTTP on a virtual cluster, optionally WAL-backed so a restart resumes
// every submitted job.

// runCampaign executes one campaign and prints the report. Any gate
// failure (starved job, non-identical resume, re-executed task, missing
// admission rejection) exits nonzero with the reason.
func runCampaign(jobsN, tasks, kills, nodes int, seed int64, walDir string) int {
	cleanup := func() {}
	if walDir == "" {
		dir, err := os.MkdirTemp("", "triolet-campaign-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		walDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	defer cleanup()

	rep, err := jobs.RunCampaign(jobs.CampaignConfig{
		Jobs: jobsN, TasksPerJob: tasks, Kills: kills, Nodes: nodes,
		Seed: seed, WALDir: walDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign FAILED: %v\n", err)
		if rep != nil {
			fmt.Fprint(os.Stderr, rep)
		}
		return 1
	}
	fmt.Print(rep)
	return 0
}

// runServe hosts the job service: HTTP API on addr, jobs executed on a
// virtual cluster of the given size. With -wal the registry is durable —
// kill the process mid-job and the next -serve on the same path resumes.
// SIGINT/SIGTERM shuts down; in-flight jobs resume on the next start when
// a WAL is configured.
func runServe(nodes int, addr, walPath string) int {
	jobs.RegisterCampaignKernel() // a ready-to-use kernel for submissions

	cfg := jobs.Config{}
	if walPath != "" {
		wal, err := checkpoint.OpenWAL(walPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer wal.Close()
		cfg.Store = wal
	}
	svc, err := jobs.NewService(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()

	fmt.Fprintf(os.Stderr, "job service on http://%s (POST /jobs, GET /jobs, GET /metrics)\n", addr)
	fmt.Fprintf(os.Stderr, "cluster: %d nodes; kernel %q registered; ctrl-c to stop\n", nodes, "jobs.campaign")
	if walPath != "" {
		fmt.Fprintf(os.Stderr, "registry WAL: %s (restart resumes in-flight jobs)\n", walPath)
	}

	_, runErr := cluster.RunCtx(ctx, cluster.Config{Nodes: nodes, CoresPerNode: 1},
		func(sess *cluster.Session) error {
			return svc.Serve(ctx, sess)
		})

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)

	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "http: %v\n", err)
			return 1
		}
	default:
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fmt.Fprintf(os.Stderr, "serve: %v\n", runErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "job service stopped")
	return 0
}
