// Message-volume regression gate.
//
// The bench gate (benchgate.go) protects compute fast paths; this gate
// protects the wire. It measures bytes and messages crossing the fabric for
// a fixed set of workloads and compares them against a committed baseline
// (MSG_BASELINE.json): a change that silently starts copying, re-wrapping,
// or chattering on the wire shows up as a byte/message-count jump and fails
// CI before it lands.
//
// Two kinds of cases:
//
//   - Application runs (sgemm, tpacf) on the virtual cluster in reliable
//     mode with coalescing on. Their traffic is dominated by collective
//     payloads that are already information-minimal, so these act as ratio
//     tripwires: >10% growth in bytes or messages fails.
//   - A synthetic farm-frames case that models a farm's control-plane
//     traffic (many heartbeats, small task/result messages) on a 2-rank
//     fabric, run twice — coalescing on vs off — and reports the reduction.
//     This is where coalescing actually pays: the gate additionally fails
//     if the coalesced run stops saving at least 25% of legacy bytes.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/mpi"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/stencil"
	"triolet/internal/transport"
)

// msgResult is one case's wire footprint.
type msgResult struct {
	Name     string `json:"name"`
	Bytes    int64  `json:"bytes"`
	Messages int64  `json:"messages"`
	// HaloBytes is the sender-attributed ghost/replication traffic subset
	// of Bytes (stencil ghost rows, cutcp duplicated boundary atoms). Zero
	// for workloads with no halo concept.
	HaloBytes int64 `json:"halo_bytes,omitempty"`
	// LegacyBytes/LegacyMessages are the same workload with coalescing
	// disabled; zero for cases that only run coalesced.
	LegacyBytes    int64 `json:"legacy_bytes,omitempty"`
	LegacyMessages int64 `json:"legacy_messages,omitempty"`
}

// reductionPct reports how many percent of legacy bytes coalescing saved.
func (r msgResult) reductionPct() float64 {
	if r.LegacyBytes == 0 {
		return 0
	}
	return 100 * (1 - float64(r.Bytes)/float64(r.LegacyBytes))
}

type msgReport struct {
	Cases []msgResult `json:"cases"`
}

// msgReliable is the reliable-layer config for gate runs: lossless fabric,
// generous ack timeout so no retransmission ever fires — the measured
// traffic is the protocol's intrinsic footprint, not retry noise.
func msgReliable() *mpi.ReliableConfig {
	return &mpi.ReliableConfig{AckTimeout: time.Second}
}

// runAppCase measures one application workload on the virtual cluster.
func runAppCase(name string, master func(s *cluster.Session) error) (msgResult, error) {
	stats, err := cluster.Run(cluster.Config{
		Nodes:        4,
		CoresPerNode: 2,
		Reliable:     msgReliable(),
	}, master)
	if err != nil {
		return msgResult{}, fmt.Errorf("%s: %w", name, err)
	}
	return msgResult{Name: name, Bytes: stats.Bytes, Messages: stats.Messages, HaloBytes: stats.HaloBytes}, nil
}

// farmFrames drives the synthetic farm control-plane workload on a 2-rank
// fabric: 25 batches, each of 8 worker heartbeats followed by a small
// task-result exchange. Count-based beat flushes keep the run deterministic
// (no deadline ever expires), so byte counts are exact, not statistical.
func farmFrames(disable bool) (transport.Stats, error) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	cfg := mpi.ReliableConfig{
		AckTimeout:      time.Second,
		CoalesceLimit:   8,
		DisableCoalesce: disable,
	}
	worker := mpi.NewReliableComm(f, 0, cfg)
	master := mpi.NewReliableComm(f, 1, cfg)

	const (
		batches       = 25
		beatsPerBatch = 8
		beatTag       = 7
		taskTag       = 9
	)
	result := make([]byte, 24) // a farm result frame: task id + small payload
	errc := make(chan error, 1)
	go func() {
		for b := 0; b < batches; b++ {
			for i := 0; i < beatsPerBatch; i++ {
				if err := worker.SendBeat(1, beatTag, nil); err != nil {
					errc <- err
					return
				}
			}
			if err := worker.Send(1, taskTag, result); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for b := 0; b < batches; b++ {
		if _, err := master.Recv(0, taskTag); err != nil {
			return transport.Stats{}, err
		}
		for {
			if _, ok, err := master.TryRecv(0, beatTag); err != nil {
				return transport.Stats{}, err
			} else if !ok {
				break
			}
		}
	}
	if err := <-errc; err != nil {
		return transport.Stats{}, err
	}
	return f.Stats(), nil
}

// runMsgGate measures every case and, depending on flags, prints the
// report, writes a baseline, or gates against one. Returns the exit code.
func runMsgGate(jsonOut bool, baselinePath, writeBaselinePath string) int {
	var report msgReport

	sgemmIn := sgemm.Gen(96, 96, 96, 103)
	r, err := runAppCase("sgemm", func(s *cluster.Session) error {
		_, err := sgemm.Triolet(s, sgemmIn)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: %v\n", err)
		return 1
	}
	report.Cases = append(report.Cases, r)

	tpacfIn := tpacf.Gen(100, 12, 16, 107)
	r, err = runAppCase("tpacf", func(s *cluster.Session) error {
		_, err := tpacf.Triolet(s, tpacfIn)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: %v\n", err)
		return 1
	}
	report.Cases = append(report.Cases, r)

	// Halo-accounted workloads. The stencil exchanges radius-1 ghost rows
	// every sweep and cutcp's slab decomposition replicates boundary atoms;
	// both attribute that traffic via SendHalo/AddHaloBytes. The gate fails
	// if the halo column reads zero — that means the attribution regressed
	// and ghost traffic is hiding inside ordinary payload bytes again.
	heatIn := genHeatGrid(48, 40, 211)
	r, err = runAppCase("stencil-heat", func(s *cluster.Session) error {
		par := stencil.Params[float64]{Radius: 1, Boundary: stencil.Mirror}
		_, err := benchHeat.Run(s, heatIn, par, 6)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: %v\n", err)
		return 1
	}
	report.Cases = append(report.Cases, r)

	cutcpIn := cutcp.Gen(160, domain.Dim3{D: 10, H: 12, W: 11}, 0.5, 1.6, 131)
	r, err = runAppCase("cutcp-slab", func(s *cluster.Session) error {
		_, err := cutcp.TrioletSlab(s, cutcpIn)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: %v\n", err)
		return 1
	}
	report.Cases = append(report.Cases, r)

	coal, err := farmFrames(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: farm-frames: %v\n", err)
		return 1
	}
	legacy, err := farmFrames(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: farm-frames legacy: %v\n", err)
		return 1
	}
	report.Cases = append(report.Cases, msgResult{
		Name:           "farm-frames",
		Bytes:          coal.Bytes,
		Messages:       coal.Messages,
		LegacyBytes:    legacy.Bytes,
		LegacyMessages: legacy.Messages,
	})

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		fmt.Printf("%-12s %12s %10s %12s %14s %14s %10s\n",
			"case", "bytes", "messages", "halo bytes", "legacy bytes", "legacy msgs", "saved")
		for _, c := range report.Cases {
			saved := "-"
			if c.LegacyBytes > 0 {
				saved = fmt.Sprintf("%.1f%%", c.reductionPct())
			}
			lb, lm := "-", "-"
			if c.LegacyBytes > 0 {
				lb = fmt.Sprint(c.LegacyBytes)
				lm = fmt.Sprint(c.LegacyMessages)
			}
			hb := "-"
			if c.HaloBytes > 0 {
				hb = fmt.Sprint(c.HaloBytes)
			}
			fmt.Printf("%-12s %12d %10d %12s %14s %14s %10s\n",
				c.Name, c.Bytes, c.Messages, hb, lb, lm, saved)
		}
	}

	// Two criteria hold regardless of baseline: halo-bearing workloads must
	// attribute a non-zero halo volume, and the farm control-plane case must
	// keep saving at least 25% of legacy bytes through coalescing.
	exit := 0
	haloCases := map[string]bool{"stencil-heat": true, "cutcp-slab": true}
	for _, c := range report.Cases {
		if !haloCases[c.Name] {
			continue
		}
		if c.HaloBytes <= 0 {
			fmt.Fprintf(os.Stderr, "msg-gate: FAIL %s: halo bytes %d, want > 0 (ghost traffic no longer attributed)\n",
				c.Name, c.HaloBytes)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "msg-gate: ok %s: %d of %d bytes attributed to halo traffic\n",
				c.Name, c.HaloBytes, c.Bytes)
		}
	}
	for _, c := range report.Cases {
		if c.LegacyBytes == 0 {
			continue
		}
		if pct := c.reductionPct(); pct < 25 {
			fmt.Fprintf(os.Stderr, "msg-gate: FAIL %s: coalescing saves only %.1f%% of legacy bytes, want >= 25%%\n",
				c.Name, pct)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "msg-gate: ok %s: coalescing saves %.1f%% of legacy bytes (%d -> %d)\n",
				c.Name, pct, c.LegacyBytes, c.Bytes)
		}
	}

	if writeBaselinePath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(writeBaselinePath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "msg-gate: wrote baseline to %s\n", writeBaselinePath)
		return exit
	}

	if baselinePath == "" {
		return exit
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: %v\n", err)
		return 1
	}
	var base msgReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "msg-gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	baseCase := map[string]msgResult{}
	for _, c := range base.Cases {
		baseCase[c.Name] = c
	}

	// Fail on >10% growth in bytes or messages. The workloads are fixed
	// and the fabric lossless, so the footprint is near-deterministic;
	// the margin absorbs only ack-batching jitter from goroutine
	// scheduling (tens of bytes against megabyte payloads).
	const slack = 1.10
	for _, c := range report.Cases {
		b, ok := baseCase[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "msg-gate: %s missing from baseline (add it with -write-msg-baseline)\n", c.Name)
			exit = 1
			continue
		}
		check := func(metric string, got, base int64) {
			allowed := int64(float64(base) * slack)
			if got > allowed {
				fmt.Fprintf(os.Stderr, "msg-gate: FAIL %s: %s %d exceeds allowed %d (baseline %d)\n",
					c.Name, metric, got, allowed, base)
				exit = 1
			} else {
				fmt.Fprintf(os.Stderr, "msg-gate: ok %s: %s %d (baseline %d, allowed %d)\n",
					c.Name, metric, got, base, allowed)
			}
		}
		check("bytes", c.Bytes, b.Bytes)
		check("messages", c.Messages, b.Messages)
		if b.HaloBytes > 0 {
			check("halo bytes", c.HaloBytes, b.HaloBytes)
		}
	}
	return exit
}
