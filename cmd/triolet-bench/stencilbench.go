package main

import (
	"testing"

	"triolet/internal/iter"
	"triolet/internal/serial"
	"triolet/internal/stencil"
)

// Stencil benchmark workloads: a 5-point heat-diffusion kernel (float64,
// collective-backed Op) and Conway's Game of Life (int64 cells, farm-backed
// FarmOp). Both serve three consumers: the bench gate (fused sweep vs
// hand-written loop twin), the msg gate (halo traffic footprint), and the
// golden tests (committed checksums of final grids).

var (
	benchHeat = stencil.NewOp("bench.heat", serial.F64C(), serial.F64s(), heatCell)
	benchLife = stencil.NewFarmOp("bench.life", serial.I64C(), serial.I64s(), lifeCell)
)

// heatCell is explicit five-point diffusion with a fixed evaluation order,
// so every execution mode produces bit-identical float grids.
func heatCell(nb stencil.Neighborhood[float64]) float64 {
	c := nb.At(0, 0)
	return c + 0.2*((nb.At(-1, 0)+nb.At(1, 0))+(nb.At(0, -1)+nb.At(0, 1))-4*c)
}

// lifeCell is Conway's rule over the radius-1 Moore neighborhood.
func lifeCell(nb stencil.Neighborhood[int64]) int64 {
	var n int64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dy != 0 || dx != 0 {
				n += nb.At(dy, dx)
			}
		}
	}
	switch n {
	case 3:
		return 1
	case 2:
		return nb.At(0, 0)
	default:
		return 0
	}
}

// genHeatGrid fills a deterministic h×w temperature field.
func genHeatGrid(h, w int, seed uint64) iter.Matrix2[float64] {
	g := iter.Matrix2[float64]{H: h, W: w, Data: make([]float64, h*w)}
	x := seed*2862933555777941757 + 3037000493
	for i := range g.Data {
		x = x*2862933555777941757 + 3037000493
		g.Data[i] = float64(x%4099) / 16
	}
	return g
}

// genLifeGrid fills a deterministic h×w life board at ~3/8 density.
func genLifeGrid(h, w int, seed uint64) iter.Matrix2[int64] {
	g := iter.Matrix2[int64]{H: h, W: w, Data: make([]int64, h*w)}
	x := seed*2862933555777941757 + 3037000493
	for i := range g.Data {
		x = x*2862933555777941757 + 3037000493
		if x%8 < 3 {
			g.Data[i] = 1
		}
	}
	return g
}

// Bench-gate twins: one stencil sweep through the block engine vs the same
// sweep as hand-written nested loops over the same buffers. Grids are sized
// to match the 1-D gate data (2^15-ish cells).
var (
	stencilHeatSrc = genHeatGrid(192, 176, 29)
	stencilHeatDst = iter.Matrix2[float64]{H: 192, W: 176, Data: make([]float64, 192*176)}
	stencilLifeSrc = genLifeGrid(192, 176, 31)
	stencilLifeDst = iter.Matrix2[int64]{H: 192, W: 176, Data: make([]int64, 192*176)}
)

var stencilGateCases = []gateCase{
	{
		// NORMAL boundary: edge cells carry their previous value, interior
		// cells diffuse — the raw twin writes exactly that.
		Name: "heat-sweep",
		Pipeline: func(b *testing.B) {
			st := stencil.Stencil[float64]{
				Params: stencil.Params[float64]{Radius: 1, Boundary: stencil.Normal},
				Fn:     heatCell,
			}
			for b.Loop() {
				st.Sweep(nil, stencilHeatDst, stencilHeatSrc)
			}
		},
		Raw: func(b *testing.B) {
			h, w := stencilHeatSrc.H, stencilHeatSrc.W
			src, dst := stencilHeatSrc.Data, stencilHeatDst.Data
			for b.Loop() {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						i := y*w + x
						if y == 0 || y == h-1 || x == 0 || x == w-1 {
							dst[i] = src[i]
							continue
						}
						c := src[i]
						dst[i] = c + 0.2*((src[i-w]+src[i+w])+(src[i-1]+src[i+1])-4*c)
					}
				}
				gateSinkF = dst[w+1]
			}
		},
	},
	{
		// WRAP boundary: the raw twin resolves toroidal neighbors with
		// precomputed wrapped row offsets and per-cell column wrapping.
		Name: "life-sweep",
		Pipeline: func(b *testing.B) {
			st := stencil.Stencil[int64]{
				Params: stencil.Params[int64]{Radius: 1, Boundary: stencil.Wrap},
				Fn:     lifeCell,
			}
			for b.Loop() {
				st.Sweep(nil, stencilLifeDst, stencilLifeSrc)
			}
		},
		Raw: func(b *testing.B) {
			h, w := stencilLifeSrc.H, stencilLifeSrc.W
			src, dst := stencilLifeSrc.Data, stencilLifeDst.Data
			for b.Loop() {
				for y := 0; y < h; y++ {
					up := ((y-1+h)%h)*w
					mid := y * w
					dn := ((y + 1) % h) * w
					for x := 0; x < w; x++ {
						l := (x - 1 + w) % w
						r := (x + 1) % w
						n := src[up+l] + src[up+x] + src[up+r] +
							src[mid+l] + src[mid+r] +
							src[dn+l] + src[dn+x] + src[dn+r]
						switch n {
						case 3:
							dst[mid+x] = 1
						case 2:
							dst[mid+x] = src[mid+x]
						default:
							dst[mid+x] = 0
						}
					}
				}
				gateSink = dst[w+1]
			}
		},
	},
}

func init() {
	gateCases = append(gateCases, stencilGateCases...)
}
