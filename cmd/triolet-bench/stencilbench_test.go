package main

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/stencil"
)

// Golden tests pin the stencil benchmark workloads to committed checksums:
// the grids are deterministic, the kernels fix their arithmetic order, and
// every execution path is bit-identical, so the FNV-1a digest of the final
// grid is a single committed number. A digest change means the workload's
// semantics changed — regenerate deliberately or find the regression.

const (
	goldenHeatSum uint64 = 0x332773e2fbe7f980
	goldenLifeSum uint64 = 0xcaaa87fc2af09b25
)

func checksumF64(xs []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func checksumI64(xs []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestGoldenHeat pins 10 generations of heat diffusion (Mirror boundary)
// through the collective-backed Op on a 4-node cluster, and checks the
// distributed result is bit-identical to the local sweep.
func TestGoldenHeat(t *testing.T) {
	g := genHeatGrid(64, 48, 97)
	par := stencil.Params[float64]{Radius: 1, Boundary: stencil.Mirror}
	local := stencil.Stencil[float64]{Params: par, Fn: benchHeat.Fn()}.Iterate(nil, g, 10)

	dist := local
	_, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2}, func(s *cluster.Session) error {
		var err error
		dist, err = benchHeat.Run(s, g, par, 10)
		return err
	})
	if err != nil {
		t.Fatalf("heat run: %v", err)
	}
	for i := range local.Data {
		if dist.Data[i] != local.Data[i] {
			t.Fatalf("cell %d: distributed %v, local %v", i, dist.Data[i], local.Data[i])
		}
	}
	if sum := checksumF64(dist.Data); sum != goldenHeatSum {
		t.Fatalf("heat checksum %#x, golden %#x", sum, goldenHeatSum)
	}
}

// TestGoldenLife pins 12 generations of Game of Life (Wrap boundary)
// through the farm-backed FarmOp, likewise cross-checked against the local
// sweep.
func TestGoldenLife(t *testing.T) {
	g := genLifeGrid(56, 40, 59)
	par := stencil.Params[int64]{Radius: 1, Boundary: stencil.Wrap}
	local := stencil.Stencil[int64]{Params: par, Fn: benchLife.Fn()}.Iterate(nil, g, 12)

	dist := local
	_, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2}, func(s *cluster.Session) error {
		var err error
		dist, err = benchLife.Run(s, g, par, 12, stencil.FarmRunOptions{})
		return err
	})
	if err != nil {
		t.Fatalf("life run: %v", err)
	}
	for i := range local.Data {
		if dist.Data[i] != local.Data[i] {
			t.Fatalf("cell %d: distributed %d, local %d", i, dist.Data[i], local.Data[i])
		}
	}
	if sum := checksumI64(dist.Data); sum != goldenLifeSum {
		t.Fatalf("life checksum %#x, golden %#x", sum, goldenLifeSum)
	}
}
