package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/mpi"
	"triolet/internal/trace"
	"triolet/internal/transport"
)

// The supervised-farm demo walks the job lifecycle the DESIGN §7 layer
// adds on top of the paper's runtime: a farm job on a lossy fabric writes
// a checkpoint WAL, its master is killed mid-run, and a second session
// resumes the same job from the WAL — re-executing only unfinished tasks —
// while a poison task is retried and quarantined instead of killing the
// job. Output is the supervision counters from both lives.

const demoPoisonTask = 13

func init() {
	cluster.RegisterFarm("demo.supervised", func(n *cluster.Node, task []byte) ([]byte, error) {
		idx := int(binary.LittleEndian.Uint32(task))
		time.Sleep(2 * time.Millisecond) // a visible amount of work per task
		if idx == demoPoisonTask {
			return nil, fmt.Errorf("poison input (task %d always fails)", idx)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(idx)*uint64(idx))
		return out, nil
	})
}

func runFarmDemo(nodes int) int {
	const nTasks = 48
	tasks := make([][]byte, nTasks)
	for i := range tasks {
		tasks[i] = binary.LittleEndian.AppendUint32(nil, uint32(i))
	}
	dir, err := os.MkdirTemp("", "triolet-farm-demo-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "job.wal")

	cfg := cluster.Config{
		Nodes: nodes, CoresPerNode: 1,
		Fault: &transport.FaultConfig{
			Seed:    1,
			Default: transport.FaultProbs{Drop: 0.03, Duplicate: 0.03, Corrupt: 0.03},
		},
		Reliable: &mpi.ReliableConfig{AckTimeout: time.Millisecond},
	}

	fmt.Printf("supervised farm demo: %d tasks on %d nodes, 3%% drop/dup/corrupt, task %d is poison\n\n",
		nTasks, nodes, demoPoisonTask)

	// First life: kill the master (context cancel) once a third of the
	// job is checkpointed.
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			if wal.Records() >= nTasks/3 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = cluster.RunCtx(ctx, cfg, func(s *cluster.Session) error {
		_, err := s.FarmOpts("demo.supervised", tasks, cluster.FarmOptions{Checkpoint: wal, Job: "demo"})
		return err
	})
	cancel()
	fmt.Printf("life 1: master killed mid-job (%v)\n", err)
	fmt.Printf("        %d/%d tasks in the WAL at death\n\n", wal.Records(), nTasks)
	wal.Close()

	// Second life: reopen the WAL and finish the job.
	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer wal2.Close()
	tr := trace.New()
	cfg.Tracer = tr
	var fr *cluster.FarmResult
	_, err = cluster.Run(cfg, func(s *cluster.Session) error {
		var err error
		fr, err = s.FarmOpts("demo.supervised", tasks, cluster.FarmOptions{Checkpoint: wal2, Job: "demo"})
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "resumed session failed: %v\n", err)
		return 1
	}
	fmt.Printf("life 2: resumed %d tasks from the WAL, executed the remaining %d\n",
		fr.Resumed, nTasks-fr.Resumed)
	fmt.Printf("        retried %d task failures; quarantined: %d\n", fr.Retried, len(fr.Failed))
	for _, f := range fr.Failed {
		fmt.Printf("          task %d after %d attempts: %s\n", f.Task, f.Attempts, f.Err)
	}
	fmt.Printf("        lost workers: %v, reassigned %d, master ran %d\n",
		fr.Lost, fr.Reassigned, fr.MasterRan)
	fmt.Printf("        supervision events: %d task-fail, %d quarantine, %d checkpoint, %d resume\n",
		tr.Count("farm.task-fail"), tr.Count("farm.quarantine"),
		tr.Count("farm.checkpoint"), tr.Count("farm.resume"))

	// Every non-poison result must be present and correct.
	bad := 0
	for i, b := range fr.Results {
		if i == demoPoisonTask {
			continue
		}
		if len(b) != 8 || binary.LittleEndian.Uint64(b) != uint64(i)*uint64(i) {
			bad++
		}
	}
	if bad > 0 || len(fr.Failed) != 1 {
		fmt.Printf("\nFAIL: %d bad results, %d quarantined (want 0 and 1)\n", bad, len(fr.Failed))
		return 1
	}
	fmt.Printf("\nall %d healthy tasks correct; the poison task cost its retry budget and nothing else\n",
		nTasks-1)
	return 0
}
