// Command triolet-lint is the multichecker for the repo's contract
// analyzers: the five go/analysis-style passes that mechanically enforce
// what used to be prose — time flows through the injected
// transport.Clock (fabrictime), skeleton kernels are deterministic
// (kernelpure), SendShared/serial.Raw buffers are relinquished
// (sharedalias), distributed float folds are order-fixed (floatdet), and
// message tags are named and unique (tagdup).
//
// Usage:
//
//	triolet-lint [-json] [-list] [packages ...]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage
// or load failure. Findings are suppressible in source with
// "//lint:allow <analyzer> <reason>" on the offending line or the line
// above; the reason is mandatory and a missing one is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"triolet/internal/analysis"
	"triolet/internal/analysis/fabrictime"
	"triolet/internal/analysis/floatdet"
	"triolet/internal/analysis/kernelpure"
	"triolet/internal/analysis/sharedalias"
	"triolet/internal/analysis/tagdup"
)

var analyzers = []*analysis.Analyzer{
	fabrictime.Analyzer,
	kernelpure.Analyzer,
	sharedalias.Analyzer,
	floatdet.Analyzer,
	tagdup.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: triolet-lint [-json] [-list] [packages ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "triolet-lint:", err)
		os.Exit(2)
	}
	paths, err := l.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triolet-lint:", err)
		os.Exit(2)
	}
	diags, err := l.Run(analyzers, paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triolet-lint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			out = append(out, finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "triolet-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", l.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "triolet-lint: %d finding(s) across %d package(s)\n",
			len(diags), len(paths))
		os.Exit(1)
	}
}
