// Command triolet-trace runs one benchmark's Triolet implementation on the
// virtual cluster with the phase profiler attached and prints the per-phase
// totals and a per-rank timeline — the instrument behind paper-style
// overhead attributions like "40% of the overhead is garbage collection"
// (§4.3).
//
//	triolet-trace -bench cutcp -nodes 4 -cores 2
package main

import (
	"flag"
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/trace"
)

func main() {
	bench := flag.String("bench", "cutcp", "benchmark to trace: mriq, sgemm, tpacf, cutcp")
	nodes := flag.Int("nodes", 4, "virtual nodes")
	cores := flag.Int("cores", 2, "cores per node")
	width := flag.Int("width", 72, "timeline width in columns")
	flag.Parse()

	var body func(*cluster.Session) error
	switch *bench {
	case "mriq":
		in := mriq.Gen(6000, 512, 42)
		body = func(s *cluster.Session) error {
			_, err := mriq.Triolet(s, in)
			return err
		}
	case "sgemm":
		in := sgemm.Gen(256, 256, 256, 42)
		body = func(s *cluster.Session) error {
			_, err := sgemm.Triolet(s, in)
			return err
		}
	case "tpacf":
		in := tpacf.Gen(256, 24, 20, 42)
		body = func(s *cluster.Session) error {
			_, err := tpacf.Triolet(s, in)
			return err
		}
	case "cutcp":
		in := cutcp.Gen(2000, domain.Dim3{D: 24, H: 24, W: 24}, 0.5, 2.5, 42)
		body = func(s *cluster.Session) error {
			_, err := cutcp.Triolet(s, in)
			return err
		}
	default:
		log.Fatalf("unknown benchmark %q (mriq, sgemm, tpacf, cutcp)", *bench)
	}

	tracer := trace.New()
	stats, err := cluster.Run(cluster.Config{Nodes: *nodes, CoresPerNode: *cores, Tracer: tracer}, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d nodes x %d cores; fabric: %d messages, %.1f KB\n\n",
		*bench, *nodes, *cores, stats.Messages, float64(stats.Bytes)/1024)
	fmt.Print(tracer.Summary())
	fmt.Println()
	fmt.Print(tracer.Gantt(*width))
	fmt.Println("\nphases: s=scatter b=bcast k=kernel r=reduce g=gather")
}
