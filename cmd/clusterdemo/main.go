// Command clusterdemo boots the virtual cluster and walks through the
// runtime layers one by one — fabric, collectives, work-stealing pool,
// distributed skeleton — printing what each moves and computes. It is the
// quickest way to see the two-level architecture (paper §3.4) in action.
package main

import (
	"flag"
	"fmt"
	"log"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/iter"
	"triolet/internal/serial"
	"triolet/internal/trace"
)

var demoOp = core.NewMapReduce(
	"demo.sumsquares",
	serial.F64s(),
	serial.Unit(),
	serial.F64C(),
	func(n *cluster.Node, xs []float64, _ struct{}) (float64, error) {
		it := iter.LocalPar(iter.Map(func(x float64) float64 { return x * x }, iter.FromSlice(xs)))
		partial := core.SumLocal(n.Pool, it, 256)
		fmt.Printf("  node %d: %d elements on %d cores -> partial %.1f\n",
			n.Rank(), len(xs), n.Cores(), partial)
		return partial, nil
	},
	func(a, b float64) float64 { return a + b },
)

func main() {
	nodes := flag.Int("nodes", 4, "virtual cluster nodes")
	cores := flag.Int("cores", 2, "cores per node")
	n := flag.Int("n", 1_000_000, "input size")
	flag.Parse()

	xs := make([]float64, *n)
	for i := range xs {
		xs[i] = float64(i % 1000)
	}
	var want float64
	for _, x := range xs {
		want += x * x
	}

	fmt.Printf("virtual cluster: %d nodes x %d cores\n", *nodes, *cores)
	fmt.Println("distributed sum of squares via core.MapReduce:")
	tracer := trace.New()
	var got float64
	stats, err := cluster.Run(cluster.Config{Nodes: *nodes, CoresPerNode: *cores, Tracer: tracer},
		func(s *cluster.Session) error {
			v, err := demoOp.Run(s, core.SliceSource(xs), struct{}{})
			got = v
			return err
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result %.1f (expected %.1f, diff %g)\n", got, want, got-want)
	fmt.Printf("fabric traffic: %d messages, %d bytes ", stats.Messages, stats.Bytes)
	fmt.Printf("(input is %d bytes; only the %d/%d that leaves the master crosses the fabric)\n",
		8*len(xs), *nodes-1, *nodes)
	fmt.Println()
	fmt.Print(tracer.Summary())
	fmt.Print(tracer.Gantt(64))

	// The same result without the iterator skeletons, to show they add no
	// numeric difference.
	check := array.Dot(xs, xs)
	fmt.Printf("array.Dot cross-check: %.1f\n", check)
}
