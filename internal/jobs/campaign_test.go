package jobs

import (
	"strings"
	"testing"
)

// The CI chaos-campaign gate: a small deterministic instance of the full
// acceptance scenario — 8 concurrent jobs (one poison-heavy) on a 2%-fault
// fabric, the master killed twice mid-flight and resumed from the WAL
// bit-identically with no task re-executed, a small job unharmed by 10×
// tenants, and the admission high-water mark rejecting fast. RunCampaign
// enforces every gate internally; the test pins the report's shape on top.
func TestChaosCampaignGate(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		WALDir: t.TempDir(),
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign failed: %v\nreport so far: %+v", err, rep)
	}
	if rep.Jobs != 8 || rep.Tasks != 96 {
		t.Fatalf("campaign sized %d jobs / %d tasks, want 8/96", rep.Jobs, rep.Tasks)
	}
	if rep.Kills < 1 {
		t.Fatalf("no mid-flight master kill landed: %+v", rep)
	}
	if rep.RecoveredSettled < 1 {
		t.Fatalf("first resume recovered no settled tasks: %+v", rep)
	}
	if rep.DegradedJobs != 1 || rep.Quarantined != 4 {
		t.Fatalf("degradation report = %d jobs / %d quarantined, want 1/4", rep.DegradedJobs, rep.Quarantined)
	}
	if rep.AdmissionLimit != 8 || rep.AdmissionDepth != 8 {
		t.Fatalf("admission probe = depth %d / limit %d, want 8/8", rep.AdmissionDepth, rep.AdmissionLimit)
	}
	if rep.Records != rep.WantRecords {
		t.Fatalf("registry %d records, want %d", rep.Records, rep.WantRecords)
	}
	if rep.SmallMS <= 0 || rep.SmallMS > rep.WaitBoundMS {
		t.Fatalf("fairness timings out of bounds: %+v", rep)
	}
	out := rep.String()
	for _, want := range []string{"chaos campaign", "resume:", "admission:", "fairness:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, out)
		}
	}
}

// A campaign without a WAL directory must refuse to run rather than
// silently use a volatile store (the resume gate would be meaningless).
func TestCampaignRequiresWALDir(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{}); err == nil {
		t.Fatal("campaign ran without a WAL directory")
	}
}
