// Package jobs is the multi-tenant job service: the policy layer over the
// cluster package's multiplexed farm engine (cluster.Mux). The Mux moves
// tasks and reports liveness; this package decides everything else — which
// jobs are admitted, whose task goes out next, what happens when a task
// fails, and what survives a master crash.
//
// The shape mirrors the paper's separation of skeleton interface from
// backend plumbing (§2): a Spec is the user-facing description of a farm
// job, and the service owns the operational concerns the paper's runtime
// never had to face — admission control with backpressure, weighted fair
// sharing between concurrent tenants, retry budgets with seeded backoff,
// rank health tracking, and a write-ahead registry (internal/checkpoint)
// that makes every submitted job crash-safe: kill the master mid-flight,
// restart it on the same store, and each job resumes from its last
// checkpointed task with bit-identical results.
package jobs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"triolet/internal/checkpoint"
)

// State is a job's lifecycle state. Transitions only move forward:
// Queued → Running → (Done | Degraded). See DESIGN.md §13 for the full
// lifecycle and the degradation ladder that selects Degraded.
type State uint8

const (
	// Queued: admitted and durably recorded, no task dispatched yet.
	Queued State = 1
	// Running: at least one task has been dispatched or completed.
	Running State = 2
	// Done: every task completed successfully.
	Done State = 3
	// Degraded: terminal with at least one quarantined task — the job ran
	// out of per-task attempts or its retry budget. Completed tasks'
	// results are still available; the quarantined ones carry their final
	// errors (the partial-result report).
	Degraded State = 4
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Degraded }

// ErrQueueFull is the admission-control rejection: the service is at its
// high-water mark of live jobs. Submit fails fast with an AdmissionError
// wrapping this — it never blocks the caller.
var ErrQueueFull = errors.New("jobs: admission queue full")

// ErrDuplicate reports a Submit reusing a known job name.
var ErrDuplicate = errors.New("jobs: duplicate job name")

// ErrUnknownJob reports a lookup for a name the service has never admitted.
var ErrUnknownJob = errors.New("jobs: unknown job")

// ErrStopped reports a Submit after Stop: the service is draining.
var ErrStopped = errors.New("jobs: service stopped")

// AdmissionError carries the queue state behind an ErrQueueFull rejection,
// so callers can log or surface why admission failed and at what depth.
type AdmissionError struct {
	Job   string
	Depth int // live (non-terminal) jobs at rejection time
	Limit int // the configured high-water mark
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("jobs: admission rejected %q: %d live jobs at limit %d", e.Job, e.Depth, e.Limit)
}

func (e *AdmissionError) Unwrap() error { return ErrQueueFull }

// ErrQuotaExceeded reports a job over its declared fabric byte budget.
// Submit wraps it in a *QuotaError when the task payloads alone exceed the
// budget; at runtime a job whose accounted bytes (payloads in + results
// out) cross the budget has its remaining tasks quarantined with a
// QuotaError message and completes Degraded.
var ErrQuotaExceeded = errors.New("jobs: fabric byte quota exceeded")

// QuotaError carries the accounting behind an ErrQuotaExceeded rejection
// or degradation, mirroring AdmissionError's shape.
type QuotaError struct {
	Job    string
	Used   int64 // bytes accounted (or statically required) when tripped
	Budget int64 // the job's declared ByteBudget
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: %q over byte quota: %d used of %d budgeted", e.Job, e.Used, e.Budget)
}

func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// Spec describes one job: a named task list bound to a registered farm
// kernel, plus the fairness and robustness knobs the service schedules by.
type Spec struct {
	// Name uniquely identifies the job in the service and its registry.
	Name string
	// Kernel names the cluster.RegisterFarm kernel every task runs.
	Kernel string
	// Tasks are the per-task input payloads.
	Tasks [][]byte
	// Weight is the job's fair-share weight (default 1): the scheduler
	// dispatches tasks in proportion to weight across competing jobs.
	Weight int
	// MaxTaskAttempts bounds executions of a single task before it is
	// quarantined (default 3).
	MaxTaskAttempts int
	// RetryBudget bounds retries across the whole job (default
	// 2×len(Tasks)). An exhausted budget stops rescue attempts: remaining
	// failures quarantine immediately and the job completes degraded.
	RetryBudget int
	// TaskTimeout bounds one attempt's time in flight, measured on the
	// fabric clock (0 disables). A timed-out attempt is rescheduled
	// elsewhere and the slow rank's health score is penalized; the late
	// result, if it ever arrives, is deduplicated.
	TaskTimeout time.Duration
	// ByteBudget caps the job's accounted fabric bytes — task payloads
	// dispatched plus result bytes returned (0 = unlimited). A submission
	// whose payloads alone exceed it is rejected with a *QuotaError;
	// a running job that crosses it is degraded: still-pending tasks are
	// quarantined (durably, like any other failure) and the job completes
	// Degraded, while in-flight attempts settle normally.
	ByteBudget int64
}

func (sp Spec) withDefaults() Spec {
	if sp.Weight <= 0 {
		sp.Weight = 1
	}
	if sp.MaxTaskAttempts <= 0 {
		sp.MaxTaskAttempts = 3
	}
	if sp.RetryBudget <= 0 {
		sp.RetryBudget = 2 * len(sp.Tasks)
	}
	return sp
}

func (sp Spec) validate() error {
	if sp.Name == "" {
		return errors.New("jobs: spec needs a name")
	}
	if sp.Kernel == "" {
		return fmt.Errorf("jobs: spec %q needs a kernel", sp.Name)
	}
	if len(sp.Tasks) == 0 {
		return fmt.Errorf("jobs: spec %q has no tasks", sp.Name)
	}
	if sp.ByteBudget > 0 {
		var need int64
		for _, t := range sp.Tasks {
			need += int64(len(t))
		}
		if need > sp.ByteBudget {
			return &QuotaError{Job: sp.Name, Used: need, Budget: sp.ByteBudget}
		}
	}
	return nil
}

// Config tunes the service.
type Config struct {
	// MaxQueued is the admission high-water mark: the maximum number of
	// live (non-terminal) jobs (default 16). Submissions beyond it fail
	// fast with an AdmissionError.
	MaxQueued int
	// MaxBodyBytes caps a POST /jobs request body (default 8 MiB). Like
	// MaxQueued it is admission control, but on bytes: the HTTP surface
	// stops reading at the cap and answers 413 with a typed error, so one
	// client cannot balloon the master's memory with an unbounded spec.
	MaxBodyBytes int64
	// Store is the durable job registry (default: an in-memory store —
	// crash-safety requires a checkpoint.WAL).
	Store checkpoint.Store
	// Seed feeds the scheduler's jitter stream (retry backoff spreading).
	// The same seed over the same event sequence replays identically.
	Seed int64
	// BackoffBase is the first retry's delay (default 2ms); attempt n
	// waits Base×2ⁿ⁻¹, capped at BackoffMax (default 100ms), stretched by
	// up to 20% seeded jitter. Delays are measured on the fabric clock.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HeartbeatTimeout is passed through to the Mux (0 = farm default).
	HeartbeatTimeout time.Duration
	// DrainScore is the rank health score at which the scheduler stops
	// assigning new tasks to a rank (default 3): each task failure adds 1,
	// each success halves. Draining precedes heartbeat retirement — a
	// flaky-but-alive rank sheds load before it is declared dead.
	DrainScore float64
	// CompactEvery compacts the registry after that many job completions,
	// shrinking finished jobs to their summary records (0 disables —
	// compaction drops completed jobs' task results from the store, so it
	// is opt-in for deployments that collect results promptly).
	CompactEvery int
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 16
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Store == nil {
		cfg.Store = checkpoint.NewMem()
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 100 * time.Millisecond
	}
	if cfg.DrainScore <= 0 {
		cfg.DrainScore = 3
	}
	return cfg
}

// inflight is one dispatched attempt.
type inflight struct {
	worker int
	start  time.Time // fabric clock, for TaskTimeout
}

// job is the service-internal state of one admitted job.
type job struct {
	spec  Spec
	state State
	// recorded reports that the job's admission record is durable in the
	// registry. Until then the job is invisible to the scheduler (ready()
	// returns false), so a failed Submit can roll the slot back with
	// nothing in flight — see Submit.
	recorded bool
	// pending holds task indices awaiting dispatch, in queue order.
	pending []int
	// notBefore maps a pending task to its backoff release time (fabric
	// clock); absent means dispatchable now.
	notBefore map[int]time.Time
	inflight  map[int]inflight
	completed map[int][]byte
	failed    map[int]string
	attempts  map[int]int
	// credit is the WDRR deficit counter (see sched.go).
	credit      float64
	retriesUsed int
	taskSeconds time.Duration
	bytesIn     int64
	bytesOut    int64
	// firstRun is the fabric-clock instant of the Queued→Running
	// transition; latencies records each task's settle time relative to
	// it, in settle order — the raw data behind the fairness campaign's
	// p50/p99 distribution check.
	firstRun  time.Time
	latencies []time.Duration
	done      chan struct{}
}

// markRunningLocked flips Queued→Running and stamps the latency epoch.
func (j *job) markRunningLocked(now time.Time) {
	if j.state == Queued {
		j.state = Running
	}
	if j.firstRun.IsZero() {
		j.firstRun = now
	}
}

// noteSettleLocked records one task's settle latency (fabric clock).
func (j *job) noteSettleLocked(now time.Time) {
	if !j.firstRun.IsZero() {
		if d := now.Sub(j.firstRun); d >= 0 {
			j.latencies = append(j.latencies, d)
		}
	}
}

// overQuotaLocked reports whether the job's accounted bytes crossed its
// declared budget.
func (j *job) overQuotaLocked() bool {
	return j.spec.ByteBudget > 0 && j.bytesIn+j.bytesOut > j.spec.ByteBudget
}

func newJob(sp Spec) *job {
	j := &job{
		spec:      sp,
		state:     Queued,
		notBefore: map[int]time.Time{},
		inflight:  map[int]inflight{},
		completed: map[int][]byte{},
		failed:    map[int]string{},
		attempts:  map[int]int{},
		done:      make(chan struct{}),
	}
	for i := range sp.Tasks {
		j.pending = append(j.pending, i)
	}
	return j
}

// settled reports how many tasks have reached a final per-task outcome.
func (j *job) settled() int { return len(j.completed) + len(j.failed) }

// Service is the multi-tenant job service. Submit and the status accessors
// are safe from any goroutine (the HTTP surface calls them); Serve runs in
// the cluster master goroutine and owns all dispatching.
type Service struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // admission order: the scheduler's round-robin ring
	stopped bool
	health  map[int]float64
	rng     *rand.Rand
	// ringIdx is the WDRR ring pointer: the admission-order index the next
	// scheduling walk resumes from (see sched.go).
	ringIdx int
	// completedSinceCompact counts terminal transitions toward the next
	// registry compaction.
	completedSinceCompact int
	// serving mirrors whether a Serve loop is currently attached; metrics
	// report live worker counts only then.
	serving  bool
	workers  int
	draining []int
}

// NewService builds a service over cfg.Store and replays the registry: jobs
// with a spec record and no completion record are re-queued with their
// checkpointed task results hydrated (the crash-resume path), terminal jobs
// are loaded for status and result queries.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		jobs:   map[string]*job{},
		health: map[int]float64{},
		rng:    rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 0x7F4A7C15)),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover replays the registry into the in-memory job table.
func (s *Service) recover() error {
	recs, err := s.cfg.Store.LoadAll()
	if err != nil {
		return fmt.Errorf("jobs: registry scan: %w", err)
	}
	for _, rec := range recs {
		switch rec.Kind {
		case checkpoint.KindJobSpec:
			sp, derr := decodeSpec(rec.Job, rec.Payload)
			if derr != nil {
				return fmt.Errorf("jobs: registry: job %q: %w", rec.Job, derr)
			}
			if _, dup := s.jobs[rec.Job]; dup {
				return fmt.Errorf("jobs: registry: duplicate spec for %q", rec.Job)
			}
			j := newJob(sp)
			j.recorded = true // the spec record is what we just read
			s.jobs[rec.Job] = j
			s.order = append(s.order, rec.Job)
		case checkpoint.KindResult:
			j, ok := s.jobs[rec.Job]
			if !ok {
				continue // a pre-service farm checkpoint sharing the store
			}
			j.completed[rec.Task] = rec.Payload
			j.pending = removeTask(j.pending, rec.Task)
			if j.state == Queued {
				j.state = Running
			}
		case checkpoint.KindFailed:
			j, ok := s.jobs[rec.Job]
			if !ok {
				continue
			}
			j.failed[rec.Task] = string(rec.Payload)
			j.attempts[rec.Task] = rec.Attempts
			j.pending = removeTask(j.pending, rec.Task)
			if j.state == Queued {
				j.state = Running
			}
		case checkpoint.KindJobDone:
			sum, derr := decodeDone(rec.Payload)
			if derr != nil {
				return fmt.Errorf("jobs: registry: job %q summary: %w", rec.Job, derr)
			}
			j, ok := s.jobs[rec.Job]
			if !ok {
				// A compacted registry: the terminal job's spec and results
				// were reclaimed and only the summary survives. Rebuild a
				// tombstone — the name stays reserved and the status surface
				// keeps reporting the outcome, but Result() is empty.
				j = newJob(Spec{Name: rec.Job, Tasks: make([][]byte, sum.completed+sum.failed)})
				j.recorded = true
				j.pending = nil
				s.jobs[rec.Job] = j
				s.order = append(s.order, rec.Job)
			}
			j.state = sum.state
			j.retriesUsed = sum.retriesUsed
			j.taskSeconds = sum.taskSeconds
			close(j.done)
		}
	}
	return nil
}

func removeTask(pending []int, task int) []int {
	for i, t := range pending {
		if t == task {
			return append(pending[:i], pending[i+1:]...)
		}
	}
	return pending
}

// Submit admits one job: the spec is validated, durably recorded
// (write-ahead — the record hits the registry before Submit returns), and
// queued for the scheduler. Past the high-water mark it fails fast with an
// AdmissionError; it never blocks on a busy cluster.
func (s *Service) Submit(sp Spec) error {
	if err := sp.validate(); err != nil {
		return err
	}
	sp = sp.withDefaults()
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if _, dup := s.jobs[sp.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, sp.Name)
	}
	if depth := s.liveLocked(); depth >= s.cfg.MaxQueued {
		s.mu.Unlock()
		return &AdmissionError{Job: sp.Name, Depth: depth, Limit: s.cfg.MaxQueued}
	}
	// Reserve the slot before the store write so concurrent submitters
	// cannot both pass the high-water check. The job enters the table
	// unrecorded: ready() hides it from a concurrently running Serve loop
	// until the spec record is durable, so nothing can be in flight if the
	// append fails and the slot is rolled back (the crash-resume invariant:
	// no task ever executes for a job without a durable admission record).
	j := newJob(sp)
	s.jobs[sp.Name] = j
	s.order = append(s.order, sp.Name)
	s.mu.Unlock()

	if err := s.cfg.Store.Append(checkpoint.Record{
		Job:     sp.Name,
		Kind:    checkpoint.KindJobSpec,
		Payload: encodeSpec(sp),
	}); err != nil {
		s.mu.Lock()
		delete(s.jobs, sp.Name)
		s.order = removeName(s.order, sp.Name)
		s.mu.Unlock()
		close(j.done) // release any waiter that raced the failed admission
		return fmt.Errorf("jobs: record admission of %q: %w", sp.Name, err)
	}
	s.mu.Lock()
	j.recorded = true
	s.mu.Unlock()
	return nil
}

func removeName(names []string, name string) []string {
	for i, n := range names {
		if n == name {
			return append(names[:i], names[i+1:]...)
		}
	}
	return names
}

// liveLocked counts non-terminal jobs. Callers hold s.mu.
func (s *Service) liveLocked() int {
	n := 0
	for _, j := range s.jobs {
		if !j.state.Terminal() {
			n++
		}
	}
	return n
}

// Stop puts the service into drain mode: no new submissions, and Serve
// returns once every admitted job is terminal.
func (s *Service) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Wait returns a channel closed when the named job reaches a terminal
// state (already closed for terminal jobs), or ErrUnknownJob.
func (s *Service) Wait(name string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	return j.done, nil
}

// Result returns a terminal job's per-task results and its quarantined
// tasks' final errors. For a Done job the error map is empty; for a
// Degraded job the two together cover every task (the partial-result
// report). The results are the checkpointed bytes — after a crash and
// resume they are bit-identical to an uninterrupted run's.
func (s *Service) Result(name string) ([][]byte, map[int]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !j.state.Terminal() {
		return nil, nil, fmt.Errorf("jobs: %q not terminal (%s)", name, j.state)
	}
	out := make([][]byte, len(j.spec.Tasks))
	for t, r := range j.completed {
		out[t] = append([]byte(nil), r...)
	}
	quarantined := make(map[int]string, len(j.failed))
	for t, msg := range j.failed {
		quarantined[t] = msg
	}
	return out, quarantined, nil
}
