package jobs

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/mpi"
	"triolet/internal/transport"
)

// The chaos campaign is the service's acceptance gate as a runnable
// artifact: concurrent jobs (one poison-heavy) on a faulty fabric, the
// master killed mid-flight and restarted over the same WAL, results
// required bit-identical with no task re-executed; then a fairness round
// proving a small job's wait stays bounded next to much larger tenants,
// and an admission probe proving the high-water mark rejects fast with the
// typed error. CI runs a small deterministic instance on every push
// (scripts/chaos-campaign.sh); the nightly workflow runs it full-size.

// CampaignConfig sizes one campaign run. The zero value is not runnable:
// use Defaults (or fill WALDir yourself) — every other field has a default.
type CampaignConfig struct {
	// Jobs is the number of concurrent jobs in the chaos phase (default 8,
	// minimum 2). Job index 1 is poison-heavy.
	Jobs int
	// TasksPerJob is each job's task count (default 12).
	TasksPerJob int
	// PoisonTasks is how many of the poison job's tasks always fail
	// (default 4, capped at TasksPerJob).
	PoisonTasks int
	// Nodes is the virtual cluster size (default 4: one master plus three
	// workers).
	Nodes int
	// Kills is how many times the master is killed mid-flight before the
	// final life drains the service (default 2).
	Kills int
	// Seed feeds the fault injector, the retransmit jitter, and the
	// scheduler's backoff stream (default 20260808). The same seed replays
	// the same campaign.
	Seed int64
	// FaultRate is the per-delivery drop/duplicate/corrupt probability on
	// every link (default 0.02 — the acceptance gate's 2% fabric).
	FaultRate float64
	// WaitFactor bounds the fairness phase: the small job must finish
	// within WaitFactor × its solo runtime (floored at 50ms wall clock to
	// absorb scheduler noise; default 10).
	WaitFactor float64
	// LatencyFactor bounds the fairness phase's latency distribution: the
	// small tenant's p50 and p99 per-task settle latencies must stay
	// within LatencyFactor × the combined heavy tenants' (default 1.0 —
	// sharing with 10× tenants must not give the small job a worse
	// distribution than the tenants themselves see).
	LatencyFactor float64
	// WALDir is the directory for the campaign's registry WAL (required).
	WALDir string
	// Logf, when set, receives progress lines (e.g. fmt.Printf or
	// t.Logf); nil runs silently.
	Logf func(format string, args ...any)
}

func (cfg CampaignConfig) withDefaults() CampaignConfig {
	if cfg.Jobs < 2 {
		if cfg.Jobs == 0 {
			cfg.Jobs = 8
		} else {
			cfg.Jobs = 2
		}
	}
	if cfg.TasksPerJob <= 0 {
		cfg.TasksPerJob = 12
	}
	if cfg.PoisonTasks <= 0 {
		cfg.PoisonTasks = 4
	}
	if cfg.PoisonTasks > cfg.TasksPerJob {
		cfg.PoisonTasks = cfg.TasksPerJob
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20260808
	}
	if cfg.FaultRate <= 0 {
		cfg.FaultRate = 0.02
	}
	if cfg.WaitFactor <= 0 {
		cfg.WaitFactor = 10
	}
	if cfg.LatencyFactor <= 0 {
		cfg.LatencyFactor = 1.0
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// CampaignReport is the campaign's outcome. RunCampaign returns it
// alongside a nil error only when every gate held.
type CampaignReport struct {
	Jobs  int // concurrent jobs in the chaos phase
	Tasks int // total tasks across them
	Kills int // master kills that landed mid-flight

	// RecoveredSettled counts task records already durable at the first
	// resume — the progress the kill could not destroy.
	RecoveredSettled int
	// Records/WantRecords pin the no-re-execution proof: the final
	// registry must hold exactly one spec per job, one record per task,
	// and one summary per job.
	Records     int
	WantRecords int

	DegradedJobs int // must be exactly 1 (the poison job)
	Quarantined  int // must be exactly PoisonTasks

	// AdmissionDepth/Limit echo the typed rejection the overflow probe hit.
	AdmissionDepth int
	AdmissionLimit int

	// Fairness phase wall-clock times: the small job alone, the same small
	// job next to two 10×-larger tenants, and the larger tenants' drain.
	SoloMS  float64
	SmallMS float64
	HeavyMS float64
	// WaitBoundMS is the starvation bound SmallMS was held to.
	WaitBoundMS float64

	// Per-task settle latency percentiles from the concurrent run: the
	// small tenant against the combined heavy tenants, each task measured
	// from its job's first dispatch to its settle. The distribution gate
	// requires SmallP50 ≤ LatencyFactor×HeavyP50 and likewise at p99.
	SmallP50MS float64
	SmallP99MS float64
	HeavyP50MS float64
	HeavyP99MS float64
	// LatencyFactor echoes the ratio bound the percentiles were held to.
	LatencyFactor float64
}

// String renders the report as the campaign summary table.
func (r *CampaignReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos campaign: %d jobs x %d tasks, %d mid-flight master kills\n",
		r.Jobs, r.Tasks/r.Jobs, r.Kills)
	fmt.Fprintf(&b, "  resume:    %d task records survived the first kill; registry %d/%d records (no re-execution)\n",
		r.RecoveredSettled, r.Records, r.WantRecords)
	fmt.Fprintf(&b, "  degrade:   %d job degraded, %d tasks quarantined with partial results\n",
		r.DegradedJobs, r.Quarantined)
	fmt.Fprintf(&b, "  admission: overflow rejected fast at depth %d/limit %d\n",
		r.AdmissionDepth, r.AdmissionLimit)
	fmt.Fprintf(&b, "  fairness:  small job %.1fms next to 10x tenants (solo %.1fms, bound %.1fms, tenants %.1fms)\n",
		r.SmallMS, r.SoloMS, r.WaitBoundMS, r.HeavyMS)
	fmt.Fprintf(&b, "  latency:   small p50/p99 %.1f/%.1fms vs heavy %.1f/%.1fms (factor %.2f)\n",
		r.SmallP50MS, r.SmallP99MS, r.HeavyP50MS, r.HeavyP99MS, r.LatencyFactor)
	return b.String()
}

// Campaign kernel: payloads are routed by their first byte. Poison-marked
// tasks always fail; sleep-marked tasks cost real wall time (the fairness
// phase's unit of work); everything is transformed deterministically so
// results are comparable bit-for-bit across kills and resumes.
const (
	campaignPoisonMark = 0xFF
	campaignSleepMark  = 0xEE
	campaignTaskSleep  = 2 * time.Millisecond
)

var campaignKernelOnce sync.Once

// RegisterCampaignKernel installs the campaign's farm kernel
// ("jobs.campaign"). Idempotent; RunCampaign and triolet-bench -serve call
// it so the kernel is available to submissions.
func RegisterCampaignKernel() {
	campaignKernelOnce.Do(func() {
		cluster.RegisterFarm("jobs.campaign", func(n *cluster.Node, task []byte) ([]byte, error) {
			if len(task) > 0 && task[0] == campaignPoisonMark {
				return nil, errors.New("campaign poison task")
			}
			if len(task) > 0 && task[0] == campaignSleepMark {
				time.Sleep(campaignTaskSleep)
			}
			return campaignTransform(task), nil
		})
	})
}

// campaignTransform is the kernel's pure transform and the campaign's
// golden reference: verification recomputes it in-process and requires the
// service's checkpointed bytes to match exactly.
func campaignTransform(task []byte) []byte {
	out := make([]byte, len(task)+8)
	acc := uint64(1469598103934665603)
	for i, b := range task {
		out[i] = b ^ 0xC3
		acc = (acc ^ uint64(b)) * 1099511628211
	}
	binary.LittleEndian.PutUint64(out[len(task):], acc)
	return out
}

// RunCampaign runs the full campaign and verifies every gate. A non-nil
// error means a gate failed (or the environment did); the report carries
// whatever was measured up to that point.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir == "" {
		return nil, errors.New("jobs: campaign needs a WAL directory")
	}
	RegisterCampaignKernel()
	rep := &CampaignReport{Jobs: cfg.Jobs, Tasks: cfg.Jobs * cfg.TasksPerJob}
	if err := runChaosPhase(cfg, rep); err != nil {
		return rep, err
	}
	if err := runFairnessPhase(cfg, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// campaignSpecs builds the chaos phase's job set: Jobs jobs of TasksPerJob
// tasks each with cycling weights, job index 1 poison-heavy.
func campaignSpecs(cfg CampaignConfig) []Spec {
	specs := make([]Spec, cfg.Jobs)
	for i := range specs {
		tasks := make([][]byte, cfg.TasksPerJob)
		for j := range tasks {
			// First byte stays below the kernel's marker range.
			tasks[j] = []byte{byte(i) & 0x7F, byte(j), byte(i*7 + j*13), byte(cfg.Seed)}
		}
		sp := Spec{
			Name:   fmt.Sprintf("campaign-%02d", i),
			Kernel: "jobs.campaign",
			Tasks:  tasks,
			Weight: 1 + i%3,
		}
		if i == 1 {
			// The poison-heavy tenant: its first PoisonTasks tasks always
			// fail. Two attempts each keeps the degradation ladder short.
			for j := 0; j < cfg.PoisonTasks; j++ {
				sp.Tasks[j] = append([]byte{campaignPoisonMark}, sp.Tasks[j]...)
			}
			sp.MaxTaskAttempts = 2
		}
		specs[i] = sp
	}
	return specs
}

// campaignClusterConfig is the chaos phase's fabric: cfg.FaultRate
// drop/duplicate/corrupt on every link, a fast ack ladder with seeded
// retransmit jitter so retries desynchronize but replay.
func campaignClusterConfig(cfg CampaignConfig, life int) cluster.Config {
	return cluster.Config{
		Nodes: cfg.Nodes, CoresPerNode: 1,
		Fault: &transport.FaultConfig{
			Seed:    cfg.Seed + int64(life),
			Default: transport.FaultProbs{Drop: cfg.FaultRate, Duplicate: cfg.FaultRate, Corrupt: cfg.FaultRate},
		},
		Reliable: &mpi.ReliableConfig{
			AckTimeout:    500 * time.Microsecond,
			Retries:       100,
			MaxAckTimeout: 50 * time.Millisecond,
			JitterSeed:    cfg.Seed,
		},
	}
}

func allTerminal(s *Service) bool {
	for _, st := range s.Jobs() {
		if st.State != Done.String() && st.State != Degraded.String() {
			return false
		}
	}
	return true
}

// runChaosPhase is the resume gate: submit, probe admission overflow, kill
// the master Kills times mid-flight, drain, verify bit-identical results
// and the exact registry record count.
func runChaosPhase(cfg CampaignConfig, rep *CampaignReport) error {
	walPath := filepath.Join(cfg.WALDir, "campaign.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		return err
	}
	defer func() { wal.Close() }()

	svc, err := NewService(Config{Store: wal, Seed: cfg.Seed, MaxQueued: cfg.Jobs})
	if err != nil {
		return err
	}
	specs := campaignSpecs(cfg)
	for _, sp := range specs {
		if err := svc.Submit(sp); err != nil {
			return fmt.Errorf("campaign submit %s: %w", sp.Name, err)
		}
	}

	// Admission probe: the service sits exactly at its high-water mark, so
	// one more submission must reject fast with the typed error.
	overflow := Spec{Name: "campaign-overflow", Kernel: "jobs.campaign", Tasks: [][]byte{{1}}}
	var adm *AdmissionError
	if err := svc.Submit(overflow); !errors.As(err, &adm) || !errors.Is(err, ErrQueueFull) {
		return fmt.Errorf("campaign: overflow submit returned %v, want AdmissionError", err)
	}
	rep.AdmissionDepth, rep.AdmissionLimit = adm.Depth, adm.Limit
	cfg.Logf("admission: overflow rejected at depth %d/limit %d", adm.Depth, adm.Limit)

	specRecords := wal.Records()
	// Each kill lands after roughly a Kills+1'th of the remaining work
	// checkpoints, so every life makes real progress and real losses.
	killDelta := cfg.Jobs * cfg.TasksPerJob / (cfg.Kills + 2)
	if killDelta < 4 {
		killDelta = 4
	}

	for life := 0; life < cfg.Kills; life++ {
		if allTerminal(svc) {
			break
		}
		threshold := wal.Records() + killDelta
		ctx, cancel := context.WithCancel(context.Background())
		watcherDone := make(chan struct{})
		go func(w *checkpoint.WAL, s *Service) {
			defer close(watcherDone)
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				if w.Records() >= threshold || allTerminal(s) {
					cancel()
					return
				}
				time.Sleep(300 * time.Microsecond)
			}
		}(wal, svc)
		// The life ends in a simulated master crash: the context cancel
		// unwinds the session without flushing anything. Whatever error the
		// session reports is part of the crash.
		_, _ = cluster.RunCtx(ctx, campaignClusterConfig(cfg, life), func(sess *cluster.Session) error {
			return svc.Serve(ctx, sess)
		})
		cancel()
		<-watcherDone
		if !allTerminal(svc) {
			rep.Kills++
		}
		wal.Close()

		// Restart: a fresh service over the reopened WAL is the whole
		// recovery story — no other state survives the kill.
		wal, err = checkpoint.OpenWAL(walPath)
		if err != nil {
			return fmt.Errorf("campaign: reopen WAL after kill %d: %w", life+1, err)
		}
		svc, err = NewService(Config{Store: wal, Seed: cfg.Seed + int64(life) + 1, MaxQueued: cfg.Jobs})
		if err != nil {
			return fmt.Errorf("campaign: recover after kill %d: %w", life+1, err)
		}
		if life == 0 {
			for _, st := range svc.Jobs() {
				rep.RecoveredSettled += st.Completed + st.Failed
			}
			if rep.RecoveredSettled == 0 {
				return errors.New("campaign: first kill left no durable progress in the WAL")
			}
			cfg.Logf("kill 1: %d settled task records recovered", rep.RecoveredSettled)
		}
	}
	if rep.Kills == 0 {
		return errors.New("campaign: no kill landed mid-flight; raise TasksPerJob")
	}

	// Final life: drain to terminal on the same faulty fabric.
	svc.Stop()
	if _, err := cluster.Run(campaignClusterConfig(cfg, cfg.Kills), func(sess *cluster.Session) error {
		return svc.Serve(context.Background(), sess)
	}); err != nil {
		return fmt.Errorf("campaign: final life: %w", err)
	}
	cfg.Logf("final life drained %d jobs after %d kills", cfg.Jobs, rep.Kills)

	// Verification: bit-identical results against the golden transform,
	// the poison tenant degraded with exactly its poison set quarantined,
	// and a registry that proves no task settled twice.
	for i, sp := range specs {
		st, ok := svc.Job(sp.Name)
		if !ok {
			return fmt.Errorf("campaign: job %s lost across restarts", sp.Name)
		}
		results, quarantined, rerr := svc.Result(sp.Name)
		if rerr != nil {
			return fmt.Errorf("campaign: result %s: %w", sp.Name, rerr)
		}
		if i == 1 {
			if st.State != Degraded.String() {
				return fmt.Errorf("campaign: poison job state %s, want degraded", st.State)
			}
			rep.DegradedJobs++
			rep.Quarantined = len(quarantined)
			if len(quarantined) != cfg.PoisonTasks {
				return fmt.Errorf("campaign: poison job quarantined %d tasks, want %d", len(quarantined), cfg.PoisonTasks)
			}
			for j := 0; j < cfg.PoisonTasks; j++ {
				if _, q := quarantined[j]; !q {
					return fmt.Errorf("campaign: poison task %d not quarantined", j)
				}
			}
		} else if st.State != Done.String() {
			return fmt.Errorf("campaign: job %s state %s, want done", sp.Name, st.State)
		}
		for j, task := range sp.Tasks {
			if _, q := quarantined[j]; q {
				continue
			}
			if want := campaignTransform(task); !bytes.Equal(results[j], want) {
				return fmt.Errorf("campaign: %s task %d = %x, want %x (resume not bit-identical)",
					sp.Name, j, results[j], want)
			}
		}
	}
	rep.Records = wal.Records()
	rep.WantRecords = specRecords + cfg.Jobs*cfg.TasksPerJob + cfg.Jobs
	if rep.Records != rep.WantRecords {
		return fmt.Errorf("campaign: registry has %d records, want %d (specs %d + tasks %d + summaries %d): a task re-executed or was lost",
			rep.Records, rep.WantRecords, specRecords, cfg.Jobs*cfg.TasksPerJob, cfg.Jobs)
	}
	return nil
}

// runFairnessPhase is the starvation gate: a small job's wall-clock
// completion next to two 10×-larger tenants submitted ahead of it must
// stay within WaitFactor × its solo runtime, and well inside the tenants'
// drain time. No faults here — fairness is measured without crash noise.
func runFairnessPhase(cfg CampaignConfig, rep *CampaignReport) error {
	const (
		smallTasks = 6
		waitFloor  = 50 * time.Millisecond
	)
	heavyTasks := 10 * smallTasks
	sleepTask := func(i, salt int) []byte {
		return []byte{campaignSleepMark, byte(i), byte(salt)}
	}
	makeSpec := func(name string, n, salt int) Spec {
		tasks := make([][]byte, n)
		for i := range tasks {
			tasks[i] = sleepTask(i, salt)
		}
		return Spec{Name: name, Kernel: "jobs.campaign", Tasks: tasks}
	}
	clusterCfg := cluster.Config{Nodes: cfg.Nodes, CoresPerNode: 1}
	drain := func(s *Service) (time.Duration, error) {
		s.Stop()
		start := time.Now()
		_, err := cluster.Run(clusterCfg, func(sess *cluster.Session) error {
			return s.Serve(context.Background(), sess)
		})
		return time.Since(start), err
	}

	// Solo baseline.
	solo, err := NewService(Config{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	if err := solo.Submit(makeSpec("fair-small", smallTasks, 1)); err != nil {
		return err
	}
	soloDur, err := drain(solo)
	if err != nil {
		return fmt.Errorf("campaign: fairness solo run: %w", err)
	}
	rep.SoloMS = float64(soloDur.Microseconds()) / 1e3

	// Concurrent: the heavy tenants are admitted first, so a FIFO
	// scheduler would drain all their tasks before the small job's.
	conc, err := NewService(Config{Seed: cfg.Seed + 1})
	if err != nil {
		return err
	}
	if err := conc.Submit(makeSpec("fair-heavy-a", heavyTasks, 2)); err != nil {
		return err
	}
	if err := conc.Submit(makeSpec("fair-heavy-b", heavyTasks, 3)); err != nil {
		return err
	}
	if err := conc.Submit(makeSpec("fair-small", smallTasks, 4)); err != nil {
		return err
	}
	smallCh, err := conc.Wait("fair-small")
	if err != nil {
		return err
	}
	start := time.Now()
	smallDone := make(chan time.Duration, 1)
	go func() {
		<-smallCh
		smallDone <- time.Since(start)
	}()
	heavyDur, err := drain(conc)
	if err != nil {
		return fmt.Errorf("campaign: fairness concurrent run: %w", err)
	}
	smallDur := <-smallDone
	rep.SmallMS = float64(smallDur.Microseconds()) / 1e3
	rep.HeavyMS = float64(heavyDur.Microseconds()) / 1e3

	bound := soloDur
	if bound < waitFloor {
		bound = waitFloor
	}
	bound = time.Duration(cfg.WaitFactor * float64(bound))
	rep.WaitBoundMS = float64(bound.Microseconds()) / 1e3
	cfg.Logf("fairness: small %.1fms, solo %.1fms, bound %.1fms, tenants %.1fms",
		rep.SmallMS, rep.SoloMS, rep.WaitBoundMS, rep.HeavyMS)
	if smallDur > bound {
		return fmt.Errorf("campaign: small job starved: %.1fms next to large tenants, bound %.1fms (solo %.1fms)",
			rep.SmallMS, rep.WaitBoundMS, rep.SoloMS)
	}
	// The interleaving proof: the small job must clear far before the
	// tenants admitted ahead of it drain — a FIFO would hold it to ~100%.
	if smallDur > heavyDur*4/5 {
		return fmt.Errorf("campaign: small job not interleaved: finished at %.1fms of the tenants' %.1fms drain",
			rep.SmallMS, rep.HeavyMS)
	}
	return checkLatencyDistribution(cfg, rep, conc, smallTasks, heavyTasks)
}

// checkLatencyDistribution is the fairness phase's distribution gate: the
// small tenant's per-task settle latencies (p50 and p99, measured from its
// first dispatch) must stay within LatencyFactor × the combined heavy
// tenants'. The wall-clock check above bounds the small job's total wait;
// this one catches a scheduler that hits the total but serves the small
// tenant's tasks in a tail-heavy burst.
func checkLatencyDistribution(cfg CampaignConfig, rep *CampaignReport, conc *Service, smallTasks, heavyTasks int) error {
	small, err := conc.TaskLatencies("fair-small")
	if err != nil {
		return fmt.Errorf("campaign: latency gate: %w", err)
	}
	heavyA, err := conc.TaskLatencies("fair-heavy-a")
	if err != nil {
		return fmt.Errorf("campaign: latency gate: %w", err)
	}
	heavyB, err := conc.TaskLatencies("fair-heavy-b")
	if err != nil {
		return fmt.Errorf("campaign: latency gate: %w", err)
	}
	heavy := append(heavyA, heavyB...)
	if len(small) != smallTasks || len(heavy) != 2*heavyTasks {
		return fmt.Errorf("campaign: latency gate: %d small / %d heavy samples, want %d / %d",
			len(small), len(heavy), smallTasks, 2*heavyTasks)
	}
	smallP50, smallP99 := latencyPercentile(small, 50), latencyPercentile(small, 99)
	heavyP50, heavyP99 := latencyPercentile(heavy, 50), latencyPercentile(heavy, 99)
	rep.SmallP50MS = float64(smallP50.Microseconds()) / 1e3
	rep.SmallP99MS = float64(smallP99.Microseconds()) / 1e3
	rep.HeavyP50MS = float64(heavyP50.Microseconds()) / 1e3
	rep.HeavyP99MS = float64(heavyP99.Microseconds()) / 1e3
	rep.LatencyFactor = cfg.LatencyFactor
	cfg.Logf("latency: small p50/p99 %.1f/%.1fms vs heavy %.1f/%.1fms (factor %.2f)",
		rep.SmallP50MS, rep.SmallP99MS, rep.HeavyP50MS, rep.HeavyP99MS, cfg.LatencyFactor)
	if float64(smallP50) > cfg.LatencyFactor*float64(heavyP50) {
		return fmt.Errorf("campaign: small tenant p50 %.1fms exceeds %.2fx heavy p50 %.1fms",
			rep.SmallP50MS, cfg.LatencyFactor, rep.HeavyP50MS)
	}
	if float64(smallP99) > cfg.LatencyFactor*float64(heavyP99) {
		return fmt.Errorf("campaign: small tenant p99 %.1fms exceeds %.2fx heavy p99 %.1fms",
			rep.SmallP99MS, cfg.LatencyFactor, rep.HeavyP99MS)
	}
	return nil
}

// latencyPercentile is the nearest-rank percentile of d (p in (0,100]).
// With few samples high percentiles resolve to the maximum, which is the
// conservative direction for a gate.
func latencyPercentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
