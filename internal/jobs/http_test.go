package jobs

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJobs(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func specBody(name string, payloadLen int, budget int64) string {
	enc := base64.StdEncoding.EncodeToString(make([]byte, payloadLen))
	b := ""
	if budget > 0 {
		b = fmt.Sprintf(`,"byte_budget":%d`, budget)
	}
	return fmt.Sprintf(`{"name":%q,"kernel":"k","tasks":[%q]%s}`, name, enc, b)
}

// TestHTTPBodyLimit: bodies over Config.MaxBodyBytes answer 413 with the
// typed body-limit error; bodies under it are admitted normally.
func TestHTTPBodyLimit(t *testing.T) {
	s := newTestService(t, Config{MaxBodyBytes: 256})
	h := s.Handler()

	rec := postJobs(t, h, specBody("big", 600, 0))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
	want := (&BodyLimitError{Limit: 256}).Error()
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("oversized body: %q does not mention %q", rec.Body.String(), want)
	}

	rec = postJobs(t, h, specBody("small", 8, 0))
	if rec.Code != http.StatusCreated {
		t.Fatalf("small body: status %d (%s), want 201", rec.Code, rec.Body.String())
	}
}

// TestHTTPTrailingGarbage: a submission is exactly one JSON document.
func TestHTTPTrailingGarbage(t *testing.T) {
	s := newTestService(t, Config{})
	h := s.Handler()
	for _, trailer := range []string{"garbage", `{"name":"smuggled"}`, "null"} {
		rec := postJobs(t, h, specBody("t1", 4, 0)+trailer)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("trailer %q: status %d, want 400", trailer, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "trailing data") {
			t.Fatalf("trailer %q: body %q", trailer, rec.Body.String())
		}
	}
	// Trailing whitespace is a clean end of body, not garbage.
	if rec := postJobs(t, h, specBody("t2", 4, 0)+"\n  \n"); rec.Code != http.StatusCreated {
		t.Fatalf("whitespace trailer: status %d (%s), want 201", rec.Code, rec.Body.String())
	}
}

// TestHTTPQuotaPrecheck: an over-quota submission is rejected from the
// encoded lengths alone, and the budget threads through to the job status.
func TestHTTPQuotaPrecheck(t *testing.T) {
	s := newTestService(t, Config{})
	h := s.Handler()

	rec := postJobs(t, h, specBody("over", 64, 63))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("over-quota: status %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "over byte quota") {
		t.Fatalf("over-quota: body %q", rec.Body.String())
	}
	if _, ok := s.Job("over"); ok {
		t.Fatal("over-quota job was admitted")
	}

	if rec := postJobs(t, h, specBody("fits", 64, 64)); rec.Code != http.StatusCreated {
		t.Fatalf("at-quota: status %d (%s), want 201", rec.Code, rec.Body.String())
	}
	st, ok := s.Job("fits")
	if !ok || st.ByteBudget != 64 {
		t.Fatalf("byte_budget did not thread through: %+v", st)
	}
}

// TestDecodedLen: the padding arithmetic matches the real decoder for every
// small payload size, so the pre-check can never reject a spec the decode
// would have accepted (or vice versa).
func TestDecodedLen(t *testing.T) {
	for size := 0; size <= 17; size++ {
		enc := base64.StdEncoding.EncodeToString(make([]byte, size))
		got, err := decodedLen(enc)
		if err != nil || got != int64(size) {
			t.Fatalf("decodedLen(%q) = (%d, %v), want (%d, nil)", enc, got, err, size)
		}
	}
	if _, err := decodedLen("abc"); err == nil {
		t.Fatal("decodedLen accepted a non-multiple-of-4 input")
	}
}
