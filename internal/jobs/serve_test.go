package jobs

import (
	"errors"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
)

// Serve-path unit tests: handleEvent and sweepTimeouts are policy over the
// job table, exercised here without a cluster. Single-threaded calls stand
// in for the serve goroutine, locking s.mu where the real caller would.

// hookStore wraps a checkpoint store with an Append interceptor, so tests
// can observe or fail the durable write that gates admission.
type hookStore struct {
	checkpoint.Store
	onAppend func(checkpoint.Record) error
}

func (h *hookStore) Append(rec checkpoint.Record) error {
	if h.onAppend != nil {
		if err := h.onAppend(rec); err != nil {
			return err
		}
	}
	return h.Store.Append(rec)
}

// A job mid-Submit — slot reserved, spec record not yet durable — must be
// invisible to the scheduler: a concurrent Serve loop in that window would
// otherwise dispatch tasks that a failed append then orphans.
func TestSubmitNotSchedulableUntilRecorded(t *testing.T) {
	hs := &hookStore{Store: checkpoint.NewMem()}
	s := newTestService(t, Config{Store: hs})
	now := time.Unix(0, 0)
	duringAppend := -1
	hs.onAppend = func(checkpoint.Record) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		duringAppend = len(s.schedule(now, []int{1, 2}))
		return nil
	}
	submitN(t, s, "j", 3, 1)
	if duringAppend != 0 {
		t.Fatalf("scheduler dispatched %d tasks for a job whose admission record was still in flight", duringAppend)
	}
	s.mu.Lock()
	plan := s.schedule(now, []int{1})
	s.mu.Unlock()
	if len(plan) != 1 {
		t.Fatalf("recorded job did not dispatch: plan = %v", plan)
	}
}

// A failed admission append rolls the slot back completely — no job entry,
// no ring slot, and the name is reusable once the store recovers. With the
// recorded gate nothing can have been dispatched, so the rollback is safe.
func TestSubmitRollbackOnAppendFailure(t *testing.T) {
	hs := &hookStore{
		Store:    checkpoint.NewMem(),
		onAppend: func(checkpoint.Record) error { return errors.New("disk full") },
	}
	s := newTestService(t, Config{Store: hs})
	err := s.Submit(Spec{Name: "j", Kernel: "k", Tasks: [][]byte{{1}}})
	if err == nil {
		t.Fatal("Submit succeeded over a failing store")
	}
	s.mu.Lock()
	_, exists := s.jobs["j"]
	ring := len(s.order)
	s.mu.Unlock()
	if exists || ring != 0 {
		t.Fatalf("rolled-back job still present (exists=%v, ring=%d)", exists, ring)
	}
	hs.onAppend = nil
	if err := s.Submit(Spec{Name: "j", Kernel: "k", Tasks: [][]byte{{1}}}); err != nil {
		t.Fatalf("name not reusable after rollback: %v", err)
	}
}

// A result frame for a job the service does not know (a rolled-back
// submission, a foreign tenant's stray frame) is dropped: it must not kill
// the Serve loop for every other tenant.
func TestUnknownJobResultDropped(t *testing.T) {
	s := newTestService(t, Config{})
	ev := cluster.MuxEvent{
		Kind: cluster.MuxTaskDone, Worker: 1,
		Job: "never-admitted", Task: 0, OK: true, Result: []byte{1},
	}
	if err := s.handleEvent(ev, time.Unix(0, 0)); err != nil {
		t.Fatalf("stray result killed the serve loop: %v", err)
	}
}

// dispatchTo mimics the dispatch bookkeeping for one scheduled task.
func dispatchTo(t *testing.T, s *Service, worker int, now time.Time) int {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	plan := s.schedule(now, []int{worker})
	if len(plan) != 1 {
		t.Fatalf("schedule at %v returned %d assignments, want 1", now, len(plan))
	}
	p := plan[0]
	p.job.inflight[p.task] = inflight{worker: p.worker, start: now}
	if p.job.state == Queued {
		p.job.state = Running
	}
	return p.task
}

// A task that hangs on every attempt climbs the same degradation ladder as
// an explicit failure: each timeout burns an attempt and waits out backoff,
// and when attempts run out the task is durably quarantined so the job
// reaches a terminal state instead of being reassigned forever.
func TestTimeoutClimbsDegradationLadder(t *testing.T) {
	store := checkpoint.NewMem()
	s := newTestService(t, Config{
		Store: store, Seed: 9,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	spec := Spec{
		Name: "hang", Kernel: "k", Tasks: [][]byte{{1}},
		MaxTaskAttempts: 2, RetryBudget: 10, TaskTimeout: 5 * time.Millisecond,
	}
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	j := s.jobs["hang"]

	now := time.Unix(0, 0)
	task := dispatchTo(t, s, 1, now)

	// First timeout: an attempt is burned, the retry waits out backoff.
	now = now.Add(6 * time.Millisecond)
	if err := s.sweepTimeouts(now); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if j.attempts[task] != 1 || j.retriesUsed != 1 {
		t.Fatalf("after first timeout attempts=%d retriesUsed=%d, want 1/1", j.attempts[task], j.retriesUsed)
	}
	if len(j.inflight) != 0 || !contains(j.pending, task) {
		t.Fatalf("timed-out task not requeued: inflight=%v pending=%v", j.inflight, j.pending)
	}
	if rel, held := j.notBefore[task]; !held || !rel.After(now) {
		t.Fatalf("timed-out retry has no backoff: notBefore=%v now=%v", j.notBefore, now)
	}
	s.mu.Lock()
	early := s.schedule(now, []int{1})
	s.mu.Unlock()
	if len(early) != 0 {
		t.Fatal("retry dispatched before its backoff release")
	}

	// Second timeout exhausts MaxTaskAttempts: durable quarantine, job
	// terminal, waiters released.
	now = now.Add(10 * time.Millisecond)
	task = dispatchTo(t, s, 2, now)
	now = now.Add(6 * time.Millisecond)
	if err := s.sweepTimeouts(now); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if j.state != Degraded {
		t.Fatalf("always-hanging job state = %s, want degraded", j.state)
	}
	if _, quarantined := j.failed[task]; !quarantined {
		t.Fatalf("exhausted task not quarantined: %v", j.failed)
	}
	select {
	case <-j.done:
	default:
		t.Fatal("terminal job's done channel not closed")
	}
	recs, err := store.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	sawFailed := false
	for _, rec := range recs {
		if rec.Job == "hang" && rec.Kind == checkpoint.KindFailed && rec.Task == task {
			sawFailed = true
			if rec.Attempts != 2 {
				t.Fatalf("quarantine record attempts = %d, want 2", rec.Attempts)
			}
		}
	}
	if !sawFailed {
		t.Fatal("timeout quarantine left no durable KindFailed record")
	}
}

// When a timed-out attempt's late result settles a task while the retry is
// still running elsewhere, the retry's eventual result must retire its
// inflight entry in the dedup path — otherwise sweepTimeouts keeps "timing
// out" the stale entry and the settled task is re-executed forever.
func TestLateResultThenRetryResultRetiresInflight(t *testing.T) {
	s := newTestService(t, Config{BackoffBase: time.Millisecond, BackoffMax: time.Millisecond})
	spec := Spec{
		Name: "dup", Kernel: "k", Tasks: [][]byte{{1}, {2}},
		TaskTimeout: 5 * time.Millisecond,
	}
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	j := s.jobs["dup"]

	now := time.Unix(0, 0)
	task := dispatchTo(t, s, 1, now) // attempt on worker 1

	// Timeout, then redispatch the retry onto worker 2.
	now = now.Add(6 * time.Millisecond)
	if err := s.sweepTimeouts(now); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Millisecond)
	s.mu.Lock()
	retry := -1
	for _, p := range s.schedule(now, []int{2}) {
		if p.task == task {
			retry = p.task
			p.job.inflight[p.task] = inflight{worker: 2, start: now}
		}
	}
	s.mu.Unlock()
	if retry != task {
		t.Fatalf("retry did not redispatch task %d", task)
	}

	// The late first-attempt result settles the task...
	if err := s.handleEvent(cluster.MuxEvent{
		Kind: cluster.MuxTaskDone, Worker: 1, Job: "dup", Task: task,
		OK: true, Result: []byte("first"),
	}, now); err != nil {
		t.Fatal(err)
	}
	// ...and the retry's duplicate result must still retire worker 2's
	// inflight entry.
	if err := s.handleEvent(cluster.MuxEvent{
		Kind: cluster.MuxTaskDone, Worker: 2, Job: "dup", Task: task,
		OK: true, Result: []byte("second"),
	}, now); err != nil {
		t.Fatal(err)
	}
	if string(j.completed[task]) != "first" {
		t.Fatalf("first settlement did not stand: %q", j.completed[task])
	}
	if _, stale := j.inflight[task]; stale {
		t.Fatal("retry worker's inflight entry survived the duplicate result")
	}

	// No resurrection: a later sweep and schedule must not touch the
	// settled task, and the job's retry budget stops bleeding.
	usedBefore := j.retriesUsed
	now = now.Add(time.Hour)
	if err := s.sweepTimeouts(now); err != nil {
		t.Fatal(err)
	}
	if contains(j.pending, task) {
		t.Fatal("settled task requeued by the timeout sweep")
	}
	if j.retriesUsed != usedBefore {
		t.Fatalf("retry budget bled on a settled task: %d -> %d", usedBefore, j.retriesUsed)
	}
	s.mu.Lock()
	plan := s.schedule(now, []int{1, 2})
	s.mu.Unlock()
	for _, p := range plan {
		if p.task == task {
			t.Fatal("scheduler re-dispatched a settled task")
		}
	}
}

// A stale inflight entry whose task settled while the attempt was in
// flight is reaped by the sweep without a requeue, a budget charge, or a
// health penalty — the worker did nothing wrong.
func TestSweepDropsStaleEntryForSettledTask(t *testing.T) {
	s := newTestService(t, Config{})
	spec := Spec{
		Name: "stale", Kernel: "k", Tasks: [][]byte{{1}, {2}},
		TaskTimeout: 5 * time.Millisecond,
	}
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	j := s.jobs["stale"]

	now := time.Unix(0, 0)
	task := dispatchTo(t, s, 3, now)
	// The task settles (late duplicate from an earlier life of the worker)
	// while worker 3's attempt is still nominally in flight.
	if err := s.handleEvent(cluster.MuxEvent{
		Kind: cluster.MuxTaskDone, Worker: 7, Job: "stale", Task: task,
		OK: true, Result: []byte("settled"),
	}, now); err != nil {
		t.Fatal(err)
	}
	if _, infl := j.inflight[task]; !infl {
		t.Fatal("test setup: worker 3's attempt should still be inflight")
	}

	now = now.Add(6 * time.Millisecond)
	if err := s.sweepTimeouts(now); err != nil {
		t.Fatal(err)
	}
	if _, infl := j.inflight[task]; infl {
		t.Fatal("stale inflight entry survived the sweep")
	}
	if contains(j.pending, task) || j.attempts[task] != 0 || j.retriesUsed != 0 {
		t.Fatalf("settled task penalized by sweep: pending=%v attempts=%v retriesUsed=%d",
			j.pending, j.attempts, j.retriesUsed)
	}
	if s.health[3] != 0 {
		t.Fatalf("worker 3 health penalized for a settled task: %v", s.health[3])
	}
}

// A lost worker whose in-flight task already settled retires the attempt
// record without requeueing the task.
func TestWorkerLostDoesNotRequeueSettledTask(t *testing.T) {
	s := newTestService(t, Config{})
	if err := s.Submit(Spec{Name: "lost", Kernel: "k", Tasks: [][]byte{{1}, {2}}}); err != nil {
		t.Fatal(err)
	}
	j := s.jobs["lost"]
	now := time.Unix(0, 0)
	task := dispatchTo(t, s, 4, now)
	if err := s.handleEvent(cluster.MuxEvent{
		Kind: cluster.MuxTaskDone, Worker: 9, Job: "lost", Task: task,
		OK: true, Result: []byte("done"),
	}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.handleEvent(cluster.MuxEvent{
		Kind: cluster.MuxWorkerLost, Worker: 4,
		Requeued: []cluster.MuxAssignment{{Job: "lost", Task: task}},
	}, now); err != nil {
		t.Fatal(err)
	}
	if _, infl := j.inflight[task]; infl {
		t.Fatal("lost worker's stale inflight entry survived")
	}
	if contains(j.pending, task) {
		t.Fatal("settled task requeued after worker loss")
	}
}
