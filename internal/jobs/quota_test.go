package jobs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/serial"
)

// A submission whose declared payloads alone exceed the byte budget is
// rejected at admission with the typed error — nothing is recorded.
func TestByteBudgetAdmissionReject(t *testing.T) {
	s := newTestService(t, Config{})
	tasks := makeTasks(10, 9) // 10 × 3 bytes = 30 payload bytes
	err := s.Submit(Spec{Name: "over", Kernel: "jobs.echo", Tasks: tasks, ByteBudget: 29})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit over budget: %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("submit over budget: %v, want *QuotaError", err)
	}
	if qe.Job != "over" || qe.Used != 30 || qe.Budget != 29 {
		t.Fatalf("QuotaError = %+v, want {over 30 29}", qe)
	}
	if _, ok := s.Job("over"); ok {
		t.Fatal("rejected job was admitted")
	}
	// The same spec fits with the budget raised to exactly the payload sum
	// (results may still push it over at runtime — that is the sweep's job).
	if err := s.Submit(Spec{Name: "over", Kernel: "jobs.echo", Tasks: tasks, ByteBudget: 30}); err != nil {
		t.Fatalf("submit at budget: %v", err)
	}
}

// A job whose results push it over its budget mid-run is degraded: pending
// tasks quarantine with the quota message, already-settled work is kept,
// and a sibling job without a budget is untouched.
func TestByteBudgetRuntimeDegrade(t *testing.T) {
	s := newTestService(t, Config{})
	tasks := makeTasks(20, 10) // 3B payload → 11B result, ~14B accounted per task
	if err := s.Submit(Spec{Name: "capped", Kernel: "jobs.echo", Tasks: tasks, ByteBudget: 70}); err != nil {
		t.Fatalf("submit capped: %v", err)
	}
	freeTasks := makeTasks(6, 11)
	if err := s.Submit(Spec{Name: "free", Kernel: "jobs.echo", Tasks: freeTasks}); err != nil {
		t.Fatalf("submit free: %v", err)
	}
	// One worker so dispatch is serialized and the quota sweep sees real
	// pending work once the budget is crossed.
	serveUntilStopped(t, cluster.Config{Nodes: 2, CoresPerNode: 1}, s)

	st, ok := s.Job("capped")
	if !ok {
		t.Fatal("capped job lost")
	}
	if st.State != Degraded.String() {
		t.Fatalf("capped state %s, want degraded", st.State)
	}
	if st.Completed == 0 {
		t.Fatal("quota degrade kept no completed work")
	}
	if st.Completed+st.Failed != len(tasks) {
		t.Fatalf("capped settled %d+%d of %d tasks", st.Completed, st.Failed, len(tasks))
	}
	if st.BytesIn+st.BytesOut <= st.ByteBudget {
		t.Fatalf("capped degraded under budget: %d+%d ≤ %d", st.BytesIn, st.BytesOut, st.ByteBudget)
	}
	results, quarantined, err := s.Result("capped")
	if err != nil {
		t.Fatalf("result capped: %v", err)
	}
	if len(quarantined) == 0 {
		t.Fatal("no tasks quarantined by the quota sweep")
	}
	for idx, msg := range quarantined {
		if !strings.Contains(msg, "over byte quota") {
			t.Fatalf("task %d quarantine message %q lacks quota cause", idx, msg)
		}
		if results[idx] != nil {
			t.Fatalf("quarantined task %d has a result", idx)
		}
	}
	// The uncapped sibling on the same pool is unaffected.
	if st, _ := s.Job("free"); st.State != Done.String() {
		t.Fatalf("free job state %s, want done", st.State)
	}
	checkJobResults(t, s, "free", freeTasks)
}

// The v2 spec record round-trips the byte budget, and a v1 record (no
// budget field) still decodes as unlimited.
func TestSpecRecordByteBudgetRoundTrip(t *testing.T) {
	sp := Spec{
		Name: "q", Kernel: "jobs.echo", Weight: 3, MaxTaskAttempts: 2,
		RetryBudget: 5, TaskTimeout: 40 * time.Millisecond, ByteBudget: 12345,
		Tasks: makeTasks(4, 12),
	}
	got, err := decodeSpec("q", encodeSpec(sp))
	if err != nil {
		t.Fatalf("decodeSpec: %v", err)
	}
	if got.ByteBudget != sp.ByteBudget {
		t.Fatalf("ByteBudget %d, want %d", got.ByteBudget, sp.ByteBudget)
	}

	// Hand-build the v1 layout: identical fields minus the budget.
	w := serial.NewWriter(64)
	w.U8(registrySpecV1)
	w.String(sp.Kernel)
	w.U32(uint32(sp.Weight))
	w.U32(uint32(sp.MaxTaskAttempts))
	w.U32(uint32(sp.RetryBudget))
	w.U64(uint64(sp.TaskTimeout))
	w.U32(uint32(len(sp.Tasks)))
	for _, task := range sp.Tasks {
		w.RawBytes(task)
	}
	v1, err := decodeSpec("q", w.Bytes())
	if err != nil {
		t.Fatalf("decode v1 spec: %v", err)
	}
	if v1.ByteBudget != 0 {
		t.Fatalf("v1 spec decoded budget %d, want 0 (unlimited)", v1.ByteBudget)
	}
	if v1.Kernel != sp.Kernel || v1.TaskTimeout != sp.TaskTimeout || len(v1.Tasks) != len(sp.Tasks) {
		t.Fatalf("v1 spec lost fields: %+v", v1)
	}
}

// TaskLatencies exposes one settle latency per task, in settle order.
func TestTaskLatenciesRecorded(t *testing.T) {
	s := newTestService(t, Config{})
	tasks := makeTasks(9, 13)
	if err := s.Submit(Spec{Name: "lat", Kernel: "jobs.echo", Tasks: tasks}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	serveUntilStopped(t, cluster.Config{Nodes: 3, CoresPerNode: 1}, s)

	lat, err := s.TaskLatencies("lat")
	if err != nil {
		t.Fatalf("TaskLatencies: %v", err)
	}
	if len(lat) != len(tasks) {
		t.Fatalf("%d latencies for %d tasks", len(lat), len(tasks))
	}
	for i, d := range lat {
		if d < 0 {
			t.Fatalf("latency %d negative: %v", i, d)
		}
	}
	if _, err := s.TaskLatencies("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}
}
