package jobs

import (
	"fmt"
	"time"
)

// JobStatus is one job's externally visible state, as reported by the
// status surface and the metrics snapshot.
type JobStatus struct {
	Name   string `json:"name"`
	State  string `json:"state"`
	Kernel string `json:"kernel"`
	Weight int    `json:"weight"`

	Tasks     int `json:"tasks"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Inflight  int `json:"inflight"`
	Pending   int `json:"pending"`

	RetriesUsed int `json:"retries_used"`
	RetryBudget int `json:"retry_budget"`

	// TaskSeconds is the job's accumulated kernel compute time across all
	// workers, measured on the fabric clock (the fair-share currency).
	TaskSeconds float64 `json:"task_seconds"`
	// BytesIn/BytesOut are task payload and result bytes moved for this
	// job (fabric-level wire totals are in Snapshot.Fabric).
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// ByteBudget is the job's declared fabric byte quota (0 = unlimited).
	ByteBudget int64 `json:"byte_budget,omitempty"`
	// Share is the job's configured fraction of the total live weight.
	Share float64 `json:"share"`
}

// Snapshot is one consistent observation of the whole service.
type Snapshot struct {
	Jobs []JobStatus `json:"jobs"`
	// QueueDepth counts live (non-terminal) jobs against the admission
	// high-water mark.
	QueueDepth int  `json:"queue_depth"`
	MaxQueued  int  `json:"max_queued"`
	Stopped    bool `json:"stopped"`
	// Serving reports whether a Serve loop is attached; Workers and
	// Draining are meaningful only then.
	Serving  bool  `json:"serving"`
	Workers  int   `json:"workers"`
	Draining []int `json:"draining,omitempty"`
}

// statusLocked builds one job's status. Callers hold s.mu.
func (s *Service) statusLocked(j *job, totalWeight int) JobStatus {
	st := JobStatus{
		Name:        j.spec.Name,
		State:       j.state.String(),
		Kernel:      j.spec.Kernel,
		Weight:      j.spec.Weight,
		Tasks:       len(j.spec.Tasks),
		Completed:   len(j.completed),
		Failed:      len(j.failed),
		Inflight:    len(j.inflight),
		Pending:     len(j.pending),
		RetriesUsed: j.retriesUsed,
		RetryBudget: j.spec.RetryBudget,
		TaskSeconds: j.taskSeconds.Seconds(),
		BytesIn:     j.bytesIn,
		BytesOut:    j.bytesOut,
		ByteBudget:  j.spec.ByteBudget,
	}
	if totalWeight > 0 && !j.state.Terminal() {
		st.Share = float64(j.spec.Weight) / float64(totalWeight)
	}
	return st
}

// Job returns one job's status.
func (s *Service) Job(name string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j, s.liveWeightLocked()), true
}

// Jobs returns every job's status in admission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	tw := s.liveWeightLocked()
	out := make([]JobStatus, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.statusLocked(s.jobs[name], tw))
	}
	return out
}

// liveWeightLocked sums live jobs' weights (the share denominator).
func (s *Service) liveWeightLocked() int {
	tw := 0
	for _, j := range s.jobs {
		if !j.state.Terminal() {
			tw += j.spec.Weight
		}
	}
	return tw
}

// Metrics returns a consistent snapshot of the service.
func (s *Service) Metrics() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	tw := s.liveWeightLocked()
	snap := Snapshot{
		QueueDepth: s.liveLocked(),
		MaxQueued:  s.cfg.MaxQueued,
		Stopped:    s.stopped,
		Serving:    s.serving,
		Workers:    s.workers,
		Draining:   append([]int(nil), s.draining...),
	}
	for _, name := range s.order {
		snap.Jobs = append(snap.Jobs, s.statusLocked(s.jobs[name], tw))
	}
	return snap
}

// TaskLatencies returns the named job's per-task settle latencies, in
// settle order: each task's fabric-clock delay from the job's first
// dispatch to that task's final outcome (success or quarantine). This is
// the distribution the chaos campaign's fairness phase gates on (p50/p99
// small-vs-heavy tenants).
func (s *Service) TaskLatencies(name string) ([]time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	return append([]time.Duration(nil), j.latencies...), nil
}

// TaskSecondsByJob is a convenience view for tests and gates: job name to
// accumulated fabric-clock compute time.
func (s *Service) TaskSecondsByJob() map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.jobs))
	for name, j := range s.jobs {
		out[name] = j.taskSeconds
	}
	return out
}
