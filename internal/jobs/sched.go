package jobs

import (
	"time"
)

// Fair-share scheduling: weighted deficit round-robin (WDRR) over the
// per-job pending queues. Each scheduling round credits every schedulable
// job with its weight, then walks the admission-order ring dispatching one
// task per whole credit. Over time each job receives worker slots in
// proportion to its weight regardless of task count — a thousand-task
// poison-heavy job cannot starve a ten-task job of weight 1, because the
// big job's credit buys it the same share per round. Credits of jobs with
// nothing ready are reset rather than banked, the standard DRR rule that
// stops an idle job from hoarding a burst.
//
// Rank health: every task failure on a rank adds 1 to its score, every
// success halves it. A rank at or above DrainScore is draining — the
// scheduler stops assigning to it while the Mux keeps it alive, so a flaky
// rank sheds load gracefully before the heartbeat sweep retires it. Scores
// decay on success, so a recovered rank earns its way back.

// settledTask reports whether task t already has a final per-task outcome.
// A settled task must never dispatch again, whatever queue it strayed into.
func (j *job) settledTask(t int) bool {
	_, done := j.completed[t]
	_, failed := j.failed[t]
	return done || failed
}

// ready reports whether job j has a task dispatchable at fabric time now.
// Unrecorded jobs (admission record not yet durable — see Submit) are never
// ready.
func (j *job) ready(now time.Time) bool {
	if !j.recorded || j.state.Terminal() {
		return false
	}
	for _, t := range j.pending {
		if j.settledTask(t) {
			continue
		}
		if rel, held := j.notBefore[t]; !held || !rel.After(now) {
			return true
		}
	}
	return false
}

// nextReady pops the first dispatchable pending task, preserving queue
// order for the rest. ok is false when every pending task is in backoff.
// Settled tasks that strayed back into the queue are dropped, not returned.
func (j *job) nextReady(now time.Time) (task int, ok bool) {
	for i := 0; i < len(j.pending); {
		t := j.pending[i]
		if j.settledTask(t) {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			delete(j.notBefore, t)
			continue
		}
		if rel, held := j.notBefore[t]; held && rel.After(now) {
			i++
			continue
		}
		j.pending = append(j.pending[:i], j.pending[i+1:]...)
		delete(j.notBefore, t)
		return t, true
	}
	return 0, false
}

// requeueFront puts a task back at the head of the queue (lost-worker
// reassignment: the task was next in line and keeps its place).
func (j *job) requeueFront(task int) {
	j.pending = append([]int{task}, j.pending...)
}

// schedule runs one WDRR round: it fills the provided idle-worker list with
// assignments in fair-share order and returns them. Callers hold s.mu. The
// walk is deterministic — admission-order ring, ascending idle ranks — so a
// given state always yields the same dispatch plan (campaign replays).
//
// The ring rotates: each call resumes where the previous dispatch left off
// (s.ringIdx). Without the rotation a busy pool's steady state — workers
// freeing one at a time, so every call arrives with a single idle slot —
// would hand each slot to the first job in admission order and starve the
// rest; exactly the failure the campaign's fairness phase measures. A job
// whose quantum was cut short by idle-worker exhaustion keeps its unspent
// credit (at most its weight) and is not re-credited when the next call
// resumes it, so banked credit stays bounded.
func (s *Service) schedule(now time.Time, idle []int) []plannedDispatch {
	if len(idle) == 0 {
		return nil
	}
	var active []*job
	var pos []int // admission-order index of each active job
	for oi, name := range s.order {
		j := s.jobs[name]
		if j.ready(now) {
			active = append(active, j)
			pos = append(pos, oi)
		} else {
			j.credit = 0 // DRR: no banking while nothing is ready
		}
	}
	if len(active) == 0 {
		return nil
	}
	// Resume at the first active job at or past the ring pointer (wrapping
	// to the front when the pointer has passed every active job).
	rot := 0
	for i, oi := range pos {
		if oi >= s.ringIdx {
			rot = i
			break
		}
	}
	var plan []plannedDispatch
	for len(idle) > 0 {
		progressed := false
		for i := 0; i < len(active) && len(idle) > 0; i++ {
			k := (rot + i) % len(active)
			j := active[k]
			// An interrupted quantum (this job held the pointer with credit
			// in hand) resumes without a fresh credit grant.
			if !(len(plan) == 0 && i == 0 && pos[k] == s.ringIdx && j.credit >= 1) {
				j.credit += float64(j.spec.Weight)
			}
			for j.credit >= 1 && len(idle) > 0 {
				task, ok := j.nextReady(now)
				if !ok {
					j.credit = 0
					break
				}
				j.credit--
				plan = append(plan, plannedDispatch{job: j, task: task, worker: idle[0]})
				idle = idle[1:]
				progressed = true
				if len(idle) == 0 {
					if j.credit >= 1 && j.ready(now) {
						s.ringIdx = pos[k] // quantum cut short: resume here
					} else {
						s.ringIdx = pos[k] + 1
					}
				}
			}
		}
		if !progressed {
			break // every active job drained or in backoff
		}
	}
	return plan
}

// plannedDispatch is one scheduler decision: job j's task on worker.
type plannedDispatch struct {
	job    *job
	task   int
	worker int
}

// failureBackoff computes attempt n's retry delay: exponential from
// BackoffBase, capped at BackoffMax, stretched by up to 20% seeded jitter
// so retries of tasks that failed together do not return together.
// Callers hold s.mu (the rng is shared).
func (s *Service) failureBackoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d + time.Duration(float64(d)*0.2*s.rng.Float64())
}

// noteWorkerFailure penalizes a rank's health score after a task failure
// or timeout on it.
func (s *Service) noteWorkerFailure(w int) {
	s.health[w]++
}

// noteWorkerSuccess decays a rank's score after a successful task.
func (s *Service) noteWorkerSuccess(w int) {
	if sc := s.health[w]; sc > 0 {
		s.health[w] = sc / 2
	}
}

// drainingLocked reports whether rank w is drained from scheduling.
func (s *Service) drainingLocked(w int) bool {
	return s.health[w] >= s.cfg.DrainScore
}

// usableWorkers filters the Mux's idle list down to non-draining ranks.
// When every idle worker is draining, the least-unhealthy one is kept: a
// fully drained pool must still make progress (degraded, not deadlocked).
func (s *Service) usableWorkers(idle []int) []int {
	var ok []int
	for _, w := range idle {
		if !s.drainingLocked(w) {
			ok = append(ok, w)
		}
	}
	if len(ok) > 0 || len(idle) == 0 {
		return ok
	}
	best := idle[0]
	for _, w := range idle[1:] {
		if s.health[w] < s.health[best] {
			best = w
		}
	}
	return []int{best}
}
