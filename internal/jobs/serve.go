package jobs

import (
	"context"
	"fmt"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
)

// servePoll is the idle backoff of the serve loop (wall clock: it paces the
// real scheduler; all protocol deadlines — task timeouts, retry backoff —
// are measured on the fabric clock).
const servePoll = 100 * time.Microsecond

// Serve attaches the service to a cluster session and runs jobs until the
// context is cancelled (a crash, from the registry's point of view: nothing
// is flushed, resume happens on the next NewService over the same store) or
// Stop has been called and every admitted job is terminal (graceful drain).
// Serve owns the Mux and all dispatching; there is at most one Serve per
// service at a time, running in the cluster master goroutine.
func (s *Service) Serve(ctx context.Context, sess *cluster.Session) error {
	mux, err := sess.OpenMux(cluster.MuxOptions{HeartbeatTimeout: s.cfg.HeartbeatTimeout})
	if err != nil {
		return err
	}
	defer func() {
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
		mux.Close() // on a cancelled context the stop frames fail tolerably
	}()
	clk := sess.Fabric().Clock()
	s.mu.Lock()
	s.serving = true
	// A job whose last task records reached the registry but whose summary
	// did not (a crash in the gap) finishes now, without re-execution.
	settled := make([]*job, 0)
	for _, name := range s.order {
		j := s.jobs[name]
		if !j.state.Terminal() && j.settled() == len(j.spec.Tasks) {
			settled = append(settled, j)
		}
	}
	s.mu.Unlock()
	for _, j := range settled {
		s.mu.Lock()
		if err := s.maybeCompleteLocked(j); err != nil {
			return err
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progress := false

		// Drain every pending Mux observation.
		for {
			ev, ok, perr := mux.Poll()
			if perr != nil {
				return perr
			}
			if !ok {
				break
			}
			progress = true
			if herr := s.handleEvent(ev, clk.Now()); herr != nil {
				return herr
			}
		}

		// Reassign attempts that outlived their per-job task timeout.
		if serr := s.sweepTimeouts(clk.Now()); serr != nil {
			return serr
		}

		// Degrade jobs that crossed their declared byte budget: their
		// still-pending tasks quarantine with a QuotaError message.
		if qerr := s.sweepQuotas(clk.Now()); qerr != nil {
			return qerr
		}

		// Fair-share dispatch onto idle, non-draining workers.
		n, derr := s.dispatch(ctx, mux, clk.Now())
		if derr != nil {
			return derr
		}
		progress = progress || n > 0

		// Master fallback: with every worker retired the master executes
		// one ready task per iteration itself — degraded throughput, but
		// jobs still reach a terminal state.
		if mux.Workers() == 0 {
			ranLocal, lerr := s.runLocalOnce(mux, clk.Now())
			if lerr != nil {
				return lerr
			}
			progress = progress || ranLocal
		}

		s.mu.Lock()
		s.workers = mux.Workers()
		s.draining = s.draining[:0]
		for _, w := range mux.Idle() {
			if s.drainingLocked(w) {
				s.draining = append(s.draining, w)
			}
		}
		stopNow := s.stopped && s.liveLocked() == 0
		s.mu.Unlock()
		if stopNow {
			return nil
		}
		if !progress {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(servePoll):
			}
		}
	}
}

// dispatch runs one scheduling round and ships the plan. The plan is built
// and recorded under the service mutex; the sends happen outside it so a
// slow acknowledged send does not block Submit or the status surface.
func (s *Service) dispatch(ctx context.Context, mux *cluster.Mux, now time.Time) (int, error) {
	s.mu.Lock()
	idle := s.usableWorkers(mux.Idle())
	plan := s.schedule(now, idle)
	for _, p := range plan {
		p.job.inflight[p.task] = inflight{worker: p.worker, start: now}
		p.job.bytesIn += int64(len(p.job.spec.Tasks[p.task]))
		p.job.markRunningLocked(now)
	}
	s.mu.Unlock()
	for _, p := range plan {
		a := cluster.MuxAssignment{
			Job:     p.job.spec.Name,
			Kernel:  p.job.spec.Kernel,
			Task:    p.task,
			Payload: p.job.spec.Tasks[p.task],
		}
		// A send to a worker that died retires it inside Assign and the
		// assignment returns through a MuxWorkerLost event for requeueing.
		if err := mux.Assign(ctx, p.worker, a); err != nil {
			return 0, fmt.Errorf("jobs: dispatch %q/%d: %w", a.Job, a.Task, err)
		}
	}
	return len(plan), nil
}

// runLocalOnce executes one ready task on the master (no-workers fallback).
func (s *Service) runLocalOnce(mux *cluster.Mux, now time.Time) (bool, error) {
	s.mu.Lock()
	plan := s.schedule(now, []int{0})
	var a cluster.MuxAssignment
	if len(plan) == 1 {
		p := plan[0]
		p.job.inflight[p.task] = inflight{worker: 0, start: now}
		p.job.bytesIn += int64(len(p.job.spec.Tasks[p.task]))
		p.job.markRunningLocked(now)
		a = cluster.MuxAssignment{
			Job:     p.job.spec.Name,
			Kernel:  p.job.spec.Kernel,
			Task:    p.task,
			Payload: p.job.spec.Tasks[p.task],
		}
	}
	s.mu.Unlock()
	if a.Job == "" {
		return false, nil
	}
	ev := mux.RunLocal(a)
	return true, s.handleEvent(ev, now)
}

// sweepTimeouts reaps attempts whose fabric-clock age exceeds their job's
// TaskTimeout. The slow rank keeps its Mux liveness (it may just be
// overloaded) but pays a health penalty, and a timeout counts as a failed
// attempt on the same degradation ladder as handleTaskDone: retry elsewhere
// after seeded backoff while attempts and budget remain, quarantine
// (durably) when they run out — a task that hangs forever must still drive
// its job to a terminal state instead of being reassigned without bound.
// If the original attempt's result arrives later anyway it is deduplicated.
func (s *Service) sweepTimeouts(now time.Time) error {
	type quarantined struct {
		j        *job
		task     int
		attempts int
		msg      string
	}
	var quarantine []quarantined
	s.mu.Lock()
	for _, name := range s.order {
		j := s.jobs[name]
		if j.state.Terminal() || j.spec.TaskTimeout <= 0 {
			continue
		}
		for task, fl := range j.inflight {
			if now.Sub(fl.start) <= j.spec.TaskTimeout {
				continue
			}
			delete(j.inflight, task)
			if j.settledTask(task) {
				// A stale entry: a late or concurrent result settled the
				// task while this attempt was still nominally in flight.
				// Nothing to redo, and the worker owes no penalty.
				continue
			}
			s.noteWorkerFailure(fl.worker)
			j.attempts[task]++
			attempts := j.attempts[task]
			if attempts < j.spec.MaxTaskAttempts && j.retriesUsed < j.spec.RetryBudget {
				// Rung 1: the task keeps its place in line but waits out the
				// same seeded exponential backoff as an explicit failure.
				j.retriesUsed++
				j.requeueFront(task)
				j.notBefore[task] = now.Add(s.failureBackoff(attempts))
				continue
			}
			quarantine = append(quarantine, quarantined{
				j: j, task: task, attempts: attempts,
				msg: fmt.Sprintf("task timed out after %v (attempt %d)", j.spec.TaskTimeout, attempts),
			})
		}
	}
	s.mu.Unlock()
	// Final rung, outside the lock like every store write: quarantine is
	// write-ahead, then the job may complete degraded.
	for _, q := range quarantine {
		if err := s.cfg.Store.Append(checkpoint.Record{
			Job: q.j.spec.Name, Task: q.task, Kind: checkpoint.KindFailed,
			Attempts: q.attempts, Payload: []byte(q.msg),
		}); err != nil {
			return fmt.Errorf("jobs: checkpoint timeout quarantine %q/%d: %w", q.j.spec.Name, q.task, err)
		}
		s.mu.Lock()
		q.j.failed[q.task] = q.msg
		q.j.pending = removeTask(q.j.pending, q.task)
		delete(q.j.notBefore, q.task)
		q.j.noteSettleLocked(now)
		if err := s.maybeCompleteLocked(q.j); err != nil {
			return err
		}
	}
	return nil
}

// sweepQuotas degrades jobs whose accounted fabric bytes (payloads
// dispatched + results returned) crossed their declared ByteBudget. The
// still-pending tasks quarantine durably with a QuotaError message — the
// same write-ahead rung as any other failure — so the job stops consuming
// fabric and completes Degraded once its in-flight attempts settle.
func (s *Service) sweepQuotas(now time.Time) error {
	type quarantined struct {
		j        *job
		task     int
		attempts int
		msg      string
	}
	var quarantine []quarantined
	s.mu.Lock()
	for _, name := range s.order {
		j := s.jobs[name]
		if j.state.Terminal() || len(j.pending) == 0 || !j.overQuotaLocked() {
			continue
		}
		qe := &QuotaError{Job: j.spec.Name, Used: j.bytesIn + j.bytesOut, Budget: j.spec.ByteBudget}
		for _, task := range j.pending {
			quarantine = append(quarantine, quarantined{j: j, task: task, attempts: j.attempts[task], msg: qe.Error()})
		}
	}
	s.mu.Unlock()
	for _, q := range quarantine {
		if err := s.cfg.Store.Append(checkpoint.Record{
			Job: q.j.spec.Name, Task: q.task, Kind: checkpoint.KindFailed,
			Attempts: q.attempts, Payload: []byte(q.msg),
		}); err != nil {
			return fmt.Errorf("jobs: checkpoint quota quarantine %q/%d: %w", q.j.spec.Name, q.task, err)
		}
		s.mu.Lock()
		if q.j.state.Terminal() || q.j.settledTask(q.task) {
			s.mu.Unlock()
			continue
		}
		q.j.failed[q.task] = q.msg
		q.j.pending = removeTask(q.j.pending, q.task)
		delete(q.j.notBefore, q.task)
		q.j.noteSettleLocked(now)
		if err := s.maybeCompleteLocked(q.j); err != nil {
			return err
		}
	}
	return nil
}

// handleEvent applies one Mux observation to the job table.
func (s *Service) handleEvent(ev cluster.MuxEvent, now time.Time) error {
	switch ev.Kind {
	case cluster.MuxWorkerLost:
		s.mu.Lock()
		for _, a := range ev.Requeued {
			j, ok := s.jobs[a.Job]
			if !ok || j.state.Terminal() {
				continue
			}
			fl, infl := j.inflight[a.Task]
			if !infl || fl.worker != ev.Worker {
				continue
			}
			// The attempt record is retired either way; a task that already
			// settled (a late result beat the loss event) must not requeue.
			delete(j.inflight, a.Task)
			if j.settledTask(a.Task) {
				continue
			}
			// Losing the worker is not the task's fault: reassign without
			// burning an attempt, at the head of the queue.
			j.requeueFront(a.Task)
		}
		delete(s.health, ev.Worker)
		s.mu.Unlock()
		return nil
	case cluster.MuxTaskDone:
		return s.handleTaskDone(ev, now)
	default:
		return fmt.Errorf("jobs: unknown mux event kind %d", ev.Kind)
	}
}

// handleTaskDone settles one execution outcome: checkpoint-then-count for
// successes, the degradation ladder for failures, dedup for late arrivals.
func (s *Service) handleTaskDone(ev cluster.MuxEvent, now time.Time) error {
	s.mu.Lock()
	j, known := s.jobs[ev.Job]
	if !known {
		// A stray frame for a job this service does not know (e.g. a
		// submission rolled back after a failed registry append). Drop it:
		// one late result must not kill the Serve loop for every tenant.
		s.mu.Unlock()
		return nil
	}
	if ev.Task < 0 || ev.Task >= len(j.spec.Tasks) {
		s.mu.Unlock()
		return fmt.Errorf("jobs: result for %q task %d out of range", ev.Job, ev.Task)
	}
	if fl, infl := j.inflight[ev.Task]; infl && fl.worker == ev.Worker {
		// Retire this worker's attempt record even when the result below
		// turns out to be a duplicate — otherwise a retry whose task was
		// settled by a late first-attempt result leaves a stale inflight
		// entry for sweepTimeouts to "time out" and re-dispatch forever.
		delete(j.inflight, ev.Task)
	}
	if j.state.Terminal() || j.settledTask(ev.Task) {
		// A duplicate or a late arrival from a timed-out / retired-but-
		// alive worker: the first settlement stands.
		s.mu.Unlock()
		return nil
	}
	j.taskSeconds += ev.Elapsed

	if ev.OK {
		if ev.Worker != 0 {
			s.noteWorkerSuccess(ev.Worker)
		}
		j.bytesOut += int64(len(ev.Result))
		s.mu.Unlock()
		// Write-ahead: the result record must be durable before the task
		// counts as done — the same rule as the single farm.
		if err := s.cfg.Store.Append(checkpoint.Record{
			Job: ev.Job, Task: ev.Task, Kind: checkpoint.KindResult, Payload: ev.Result,
		}); err != nil {
			return fmt.Errorf("jobs: checkpoint %q/%d: %w", ev.Job, ev.Task, err)
		}
		s.mu.Lock()
		j.completed[ev.Task] = ev.Result
		j.pending = removeTask(j.pending, ev.Task)
		delete(j.notBefore, ev.Task)
		j.noteSettleLocked(now)
		return s.maybeCompleteLocked(j)
	}

	// Failure: climb the degradation ladder.
	if ev.Worker != 0 {
		s.noteWorkerFailure(ev.Worker)
	}
	j.attempts[ev.Task]++
	attempts := j.attempts[ev.Task]
	if attempts < j.spec.MaxTaskAttempts && j.retriesUsed < j.spec.RetryBudget {
		// Rung 1: retry elsewhere after seeded exponential backoff.
		j.retriesUsed++
		if !contains(j.pending, ev.Task) {
			j.pending = append(j.pending, ev.Task)
		}
		j.notBefore[ev.Task] = now.Add(s.failureBackoff(attempts))
		s.mu.Unlock()
		return nil
	}
	// Final rung: quarantine (write-ahead, like results) and let the job
	// complete degraded with a partial-result report.
	s.mu.Unlock()
	if err := s.cfg.Store.Append(checkpoint.Record{
		Job: ev.Job, Task: ev.Task, Kind: checkpoint.KindFailed,
		Attempts: attempts, Payload: []byte(ev.Err),
	}); err != nil {
		return fmt.Errorf("jobs: checkpoint quarantine %q/%d: %w", ev.Job, ev.Task, err)
	}
	s.mu.Lock()
	j.failed[ev.Task] = ev.Err
	j.pending = removeTask(j.pending, ev.Task)
	delete(j.notBefore, ev.Task)
	j.noteSettleLocked(now)
	return s.maybeCompleteLocked(j)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// maybeCompleteLocked finishes a job whose every task is settled: state,
// durable summary, waiter wakeup, and (optionally) registry compaction.
// Called with s.mu held; releases and reacquires it around store writes and
// returns with it released.
func (s *Service) maybeCompleteLocked(j *job) error {
	if j.state.Terminal() || j.settled() < len(j.spec.Tasks) {
		s.mu.Unlock()
		return nil
	}
	state := Done
	if len(j.failed) > 0 {
		state = Degraded
	}
	sum := doneSummary{
		state:       state,
		completed:   len(j.completed),
		failed:      len(j.failed),
		retriesUsed: j.retriesUsed,
		taskSeconds: j.taskSeconds,
		resultCRC:   resultCRC(len(j.spec.Tasks), j.completed),
	}
	name := j.spec.Name
	s.mu.Unlock()
	// The summary is written before the state flips: a crash here resumes
	// the job as live (its last tasks re-settle from their checkpointed
	// records without re-execution), never as half-finished.
	if err := s.cfg.Store.Append(checkpoint.Record{
		Job: name, Kind: checkpoint.KindJobDone, Payload: encodeDone(sum),
	}); err != nil {
		return fmt.Errorf("jobs: record completion of %q: %w", name, err)
	}
	s.mu.Lock()
	j.state = state
	for task := range j.inflight {
		delete(j.inflight, task)
	}
	close(j.done)
	s.completedSinceCompact++
	compact := s.cfg.CompactEvery > 0 && s.completedSinceCompact >= s.cfg.CompactEvery
	if compact {
		s.completedSinceCompact = 0
	}
	known := map[string]bool{}
	live := map[string]bool{}
	if compact {
		for n2, j2 := range s.jobs {
			known[n2] = true
			if !j2.state.Terminal() {
				live[n2] = true
			}
		}
	}
	s.mu.Unlock()
	if !compact {
		return nil
	}
	// Shrink terminal jobs to their summary record alone — the spec (which
	// holds every task input) and the per-task results are what compaction
	// reclaims. Live jobs stay whole, and records the service does not
	// recognize (a farm checkpoint sharing the store) are kept untouched.
	err := s.cfg.Store.Compact(func(rec checkpoint.Record) bool {
		return !known[rec.Job] || live[rec.Job] || rec.Kind == checkpoint.KindJobDone
	})
	if err != nil {
		return fmt.Errorf("jobs: registry compaction: %w", err)
	}
	return nil
}
