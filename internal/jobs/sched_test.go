package jobs

import (
	"errors"
	"testing"
	"time"
)

// Scheduler unit tests: schedule() is pure policy over the job table, so
// these run without a cluster. All calls are single-threaded here, standing
// in for the serve goroutine that normally holds s.mu.

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return s
}

func submitN(t *testing.T, s *Service, name string, tasks, weight int) {
	t.Helper()
	payloads := make([][]byte, tasks)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	if err := s.Submit(Spec{Name: name, Kernel: "k", Tasks: payloads, Weight: weight}); err != nil {
		t.Fatalf("submit %s: %v", name, err)
	}
}

func countByJob(plan []plannedDispatch) map[string]int {
	got := map[string]int{}
	for _, p := range plan {
		got[p.job.spec.Name]++
	}
	return got
}

// Dispatch counts follow the weights exactly: with weights 1:2:4 and
// fourteen workers, two full WDRR rounds hand out 2, 4, and 8 tasks.
func TestWDRRDispatchesProportionallyToWeight(t *testing.T) {
	s := newTestService(t, Config{})
	submitN(t, s, "w1", 100, 1)
	submitN(t, s, "w2", 100, 2)
	submitN(t, s, "w4", 100, 4)

	idle := make([]int, 14)
	for i := range idle {
		idle[i] = i + 1
	}
	now := time.Unix(0, 0)
	got := countByJob(s.schedule(now, idle))
	if got["w1"] != 2 || got["w2"] != 4 || got["w4"] != 8 {
		t.Fatalf("dispatch counts = %v, want w1:2 w2:4 w4:8", got)
	}
}

// A huge job cannot starve a small one of equal weight: each gets half the
// workers regardless of queue length, and the small job's tasks all land.
func TestWDRRHugeJobCannotStarveSmallJob(t *testing.T) {
	s := newTestService(t, Config{})
	submitN(t, s, "huge", 1000, 1)
	submitN(t, s, "small", 3, 1)

	idle := []int{1, 2, 3, 4, 5, 6, 7, 8}
	got := countByJob(s.schedule(time.Unix(0, 0), idle))
	if got["small"] != 3 {
		t.Fatalf("small job got %d of its 3 tasks dispatched alongside the huge job: %v", got["small"], got)
	}
	if got["huge"] != 5 {
		t.Fatalf("huge job should soak the leftover workers: %v", got)
	}
}

// A one-worker trickle — the steady state of a busy pool, where workers
// free one at a time — must still share by weight: the ring resumes where
// the last dispatch left off instead of restarting at the first job, or
// the first job in admission order would soak every freed slot.
func TestWDRRTrickleSharesByWeight(t *testing.T) {
	s := newTestService(t, Config{})
	submitN(t, s, "first", 100, 1)
	submitN(t, s, "second", 100, 1)
	submitN(t, s, "third", 100, 2)

	now := time.Unix(0, 0)
	got := map[string]int{}
	for i := 0; i < 40; i++ {
		plan := s.schedule(now, []int{1})
		if len(plan) != 1 {
			t.Fatalf("offer %d dispatched %d tasks, want 1", i, len(plan))
		}
		got[plan[0].job.spec.Name]++
	}
	if got["first"] != 10 || got["second"] != 10 || got["third"] != 20 {
		t.Fatalf("trickle dispatch counts = %v, want first:10 second:10 third:20", got)
	}
}

// Tasks in backoff are invisible to the scheduler until their fabric-clock
// release time, then dispatch normally.
func TestScheduleHonorsBackoffRelease(t *testing.T) {
	s := newTestService(t, Config{})
	submitN(t, s, "j", 2, 1)
	j := s.jobs["j"]
	now := time.Unix(0, 0)
	j.notBefore[0] = now.Add(10 * time.Millisecond)
	j.notBefore[1] = now.Add(10 * time.Millisecond)

	if plan := s.schedule(now, []int{1, 2}); len(plan) != 0 {
		t.Fatalf("dispatched %d tasks still in backoff", len(plan))
	}
	plan := s.schedule(now.Add(11*time.Millisecond), []int{1, 2})
	if len(plan) != 2 {
		t.Fatalf("released tasks not dispatched: %d", len(plan))
	}
}

// The deterministic walk: identical state yields the identical plan.
func TestScheduleIsDeterministic(t *testing.T) {
	build := func() *Service {
		s := newTestService(t, Config{})
		submitN(t, s, "a", 20, 2)
		submitN(t, s, "b", 20, 3)
		return s
	}
	now := time.Unix(0, 0)
	idle := []int{1, 2, 3, 4, 5}
	p1 := build().schedule(now, idle)
	p2 := build().schedule(now, idle)
	if len(p1) != len(p2) {
		t.Fatalf("plan lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].job.spec.Name != p2[i].job.spec.Name || p1[i].task != p2[i].task || p1[i].worker != p2[i].worker {
			t.Fatalf("plan diverges at %d: %v vs %v", i,
				[3]any{p1[i].job.spec.Name, p1[i].task, p1[i].worker},
				[3]any{p2[i].job.spec.Name, p2[i].task, p2[i].worker})
		}
	}
}

// Rank health: failures accumulate to the drain threshold, successes decay
// the score, and a fully drained pool still yields one worker so the
// service degrades instead of deadlocking.
func TestHealthDrainAndRecovery(t *testing.T) {
	s := newTestService(t, Config{DrainScore: 3})
	for i := 0; i < 3; i++ {
		s.noteWorkerFailure(1)
	}
	if !s.drainingLocked(1) {
		t.Fatal("rank 1 not draining after 3 failures")
	}
	if got := s.usableWorkers([]int{1, 2}); len(got) != 1 || got[0] != 2 {
		t.Fatalf("usableWorkers = %v, want [2]", got)
	}
	// Success decays the score below the threshold: the rank earns back in.
	s.noteWorkerSuccess(1)
	if s.drainingLocked(1) {
		t.Fatalf("rank 1 still draining after success decay (score %v)", s.health[1])
	}
	// All drained: keep the least-unhealthy rank rather than none.
	s.health[1], s.health[2] = 5, 4
	if got := s.usableWorkers([]int{1, 2}); len(got) != 1 || got[0] != 2 {
		t.Fatalf("fully drained pool yielded %v, want the least-unhealthy [2]", got)
	}
}

// Retry backoff is exponential, capped, and strictly non-shrinking under
// jitter; the same seed replays the same delays.
func TestFailureBackoffLadder(t *testing.T) {
	s := newTestService(t, Config{Seed: 5, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond})
	for attempt := 1; attempt <= 6; attempt++ {
		base := time.Millisecond << (attempt - 1)
		if base > 8*time.Millisecond {
			base = 8 * time.Millisecond
		}
		d := s.failureBackoff(attempt)
		if d < base || d >= base+time.Duration(float64(base)*0.2)+time.Nanosecond {
			t.Fatalf("attempt %d backoff %v outside [%v, %v+20%%]", attempt, d, base, base)
		}
	}
	s2 := newTestService(t, Config{Seed: 5, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond})
	s3 := newTestService(t, Config{Seed: 5, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond})
	for i := 0; i < 10; i++ {
		if a, b := s2.failureBackoff(2), s3.failureBackoff(2); a != b {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, a, b)
		}
	}
}

// Admission control: the high-water mark rejects with the typed error,
// duplicates and post-Stop submissions are refused, and terminal jobs free
// their slots.
func TestAdmissionControl(t *testing.T) {
	s := newTestService(t, Config{MaxQueued: 2})
	submitN(t, s, "a", 1, 1)
	submitN(t, s, "b", 1, 1)

	err := s.Submit(Spec{Name: "c", Kernel: "k", Tasks: [][]byte{{1}}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Depth != 2 || adm.Limit != 2 || adm.Job != "c" {
		t.Fatalf("AdmissionError = %+v", adm)
	}
	if err := s.Submit(Spec{Name: "a", Kernel: "k", Tasks: [][]byte{{1}}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submit error = %v, want ErrDuplicate", err)
	}

	// A completed job frees its admission slot.
	s.jobs["a"].state = Done
	if err := s.Submit(Spec{Name: "c", Kernel: "k", Tasks: [][]byte{{1}}}); err != nil {
		t.Fatalf("submit after completion freed a slot: %v", err)
	}

	s.Stop()
	if err := s.Submit(Spec{Name: "d", Kernel: "k", Tasks: [][]byte{{1}}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-Stop submit error = %v, want ErrStopped", err)
	}
}

// The registry spec and summary encodings round-trip.
func TestRegistryEncodingsRoundTrip(t *testing.T) {
	sp := Spec{
		Name: "j", Kernel: "kern", Weight: 3, MaxTaskAttempts: 5,
		RetryBudget: 9, TaskTimeout: 250 * time.Millisecond,
		Tasks: [][]byte{{1, 2, 3}, nil, {0xFF}},
	}
	got, err := decodeSpec("j", encodeSpec(sp))
	if err != nil {
		t.Fatalf("decodeSpec: %v", err)
	}
	if got.Kernel != sp.Kernel || got.Weight != 3 || got.MaxTaskAttempts != 5 ||
		got.RetryBudget != 9 || got.TaskTimeout != sp.TaskTimeout || len(got.Tasks) != 3 {
		t.Fatalf("spec round trip = %+v", got)
	}
	if string(got.Tasks[0]) != string(sp.Tasks[0]) || len(got.Tasks[1]) != 0 || got.Tasks[2][0] != 0xFF {
		t.Fatalf("task payloads mangled: %+v", got.Tasks)
	}

	sum := doneSummary{state: Degraded, completed: 7, failed: 2, retriesUsed: 4,
		taskSeconds: 3 * time.Second, resultCRC: 0xDEADBEEF}
	got2, err := decodeDone(encodeDone(sum))
	if err != nil {
		t.Fatalf("decodeDone: %v", err)
	}
	if got2 != sum {
		t.Fatalf("summary round trip = %+v, want %+v", got2, sum)
	}
	if _, err := decodeDone([]byte{registryVersion, 0}); err == nil {
		t.Fatal("truncated summary accepted")
	}
	if _, err := decodeSpec("j", []byte{42}); err == nil {
		t.Fatal("wrong-version spec accepted")
	}
}
