package jobs

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTP surface for the job service (triolet-bench -serve):
//
//	GET  /jobs            → []JobStatus (admission order)
//	GET  /jobs/{name}     → JobStatus, 404 for unknown names
//	POST /jobs            → submit a specJSON body; 201, or 409 (duplicate),
//	                        429 (admission queue full), 503 (stopped)
//	GET  /metrics         → Snapshot
//
// Task payloads cross the HTTP boundary base64-encoded — they are arbitrary
// kernel input bytes, not text.

// ErrBodyTooLarge reports a POST /jobs body over Config.MaxBodyBytes. The
// HTTP surface answers it with 413 and a *BodyLimitError.
var ErrBodyTooLarge = errors.New("jobs: request body too large")

// BodyLimitError carries the cap behind an ErrBodyTooLarge rejection.
type BodyLimitError struct {
	Limit int64 // the configured MaxBodyBytes
}

func (e *BodyLimitError) Error() string {
	return fmt.Sprintf("jobs: request body exceeds %d byte limit", e.Limit)
}

func (e *BodyLimitError) Unwrap() error { return ErrBodyTooLarge }

// specJSON is the POST /jobs request body.
type specJSON struct {
	Name            string   `json:"name"`
	Kernel          string   `json:"kernel"`
	Tasks           []string `json:"tasks"` // base64 payloads
	Weight          int      `json:"weight,omitempty"`
	MaxTaskAttempts int      `json:"max_task_attempts,omitempty"`
	RetryBudget     int      `json:"retry_budget,omitempty"`
	TaskTimeoutMS   int      `json:"task_timeout_ms,omitempty"`
	ByteBudget      int64    `json:"byte_budget,omitempty"`
}

// decodedLen computes a standard-encoding payload's decoded byte length from
// the encoded text alone — no allocation, just the padding arithmetic.
func decodedLen(enc string) (int64, error) {
	if len(enc)%4 != 0 {
		return 0, base64.CorruptInputError(len(enc))
	}
	n := int64(len(enc)) / 4 * 3
	switch {
	case strings.HasSuffix(enc, "=="):
		n -= 2
	case strings.HasSuffix(enc, "="):
		n--
	}
	return n, nil
}

func (sj specJSON) toSpec() (Spec, error) {
	sp := Spec{
		Name:            sj.Name,
		Kernel:          sj.Kernel,
		Weight:          sj.Weight,
		MaxTaskAttempts: sj.MaxTaskAttempts,
		RetryBudget:     sj.RetryBudget,
		TaskTimeout:     time.Duration(sj.TaskTimeoutMS) * time.Millisecond,
		ByteBudget:      sj.ByteBudget,
	}
	// Quota pre-check on encoded lengths: an over-quota submission is
	// rejected before any decoded payload is allocated, so a hostile spec
	// cannot make the master materialize bytes its own budget forbids.
	if sj.ByteBudget > 0 {
		var need int64
		for i, enc := range sj.Tasks {
			n, err := decodedLen(enc)
			if err != nil {
				return Spec{}, fmt.Errorf("task %d: %w", i, err)
			}
			need += n
		}
		if need > sj.ByteBudget {
			return Spec{}, &QuotaError{Job: sj.Name, Used: need, Budget: sj.ByteBudget}
		}
	}
	for i, enc := range sj.Tasks {
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return Spec{}, fmt.Errorf("task %d: %w", i, err)
		}
		sp.Tasks = append(sp.Tasks, raw)
	}
	return sp, nil
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, s.Jobs())
		case http.MethodPost:
			s.handleSubmit(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/jobs/")
		st, ok := s.Job(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown job %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission control on bytes before admission control on jobs: stop
	// reading at the configured cap rather than buffering an unbounded
	// spec.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		if errors.As(err, new(*http.MaxBytesError)) {
			http.Error(w, (&BodyLimitError{Limit: s.cfg.MaxBodyBytes}).Error(),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	// A submission is exactly one JSON document. Anything after it —
	// concatenated documents, smuggled bytes — is a malformed request, not
	// a spec.
	var extra json.RawMessage
	switch err := dec.Decode(&extra); {
	case errors.Is(err, io.EOF):
		// clean end of body
	case errors.As(err, new(*http.MaxBytesError)):
		http.Error(w, (&BodyLimitError{Limit: s.cfg.MaxBodyBytes}).Error(),
			http.StatusRequestEntityTooLarge)
		return
	default:
		http.Error(w, "bad spec: trailing data after JSON document", http.StatusBadRequest)
		return
	}
	sp, err := sj.toSpec()
	if err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	switch err := s.Submit(sp); {
	case err == nil:
		st, _ := s.Job(sp.Name)
		writeJSON(w, http.StatusCreated, st)
	case errors.Is(err, ErrQueueFull):
		// Backpressure as a status code: the typed AdmissionError body
		// tells the client the depth it hit.
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
