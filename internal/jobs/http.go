package jobs

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// HTTP surface for the job service (triolet-bench -serve):
//
//	GET  /jobs            → []JobStatus (admission order)
//	GET  /jobs/{name}     → JobStatus, 404 for unknown names
//	POST /jobs            → submit a specJSON body; 201, or 409 (duplicate),
//	                        429 (admission queue full), 503 (stopped)
//	GET  /metrics         → Snapshot
//
// Task payloads cross the HTTP boundary base64-encoded — they are arbitrary
// kernel input bytes, not text.

// specJSON is the POST /jobs request body.
type specJSON struct {
	Name            string   `json:"name"`
	Kernel          string   `json:"kernel"`
	Tasks           []string `json:"tasks"` // base64 payloads
	Weight          int      `json:"weight,omitempty"`
	MaxTaskAttempts int      `json:"max_task_attempts,omitempty"`
	RetryBudget     int      `json:"retry_budget,omitempty"`
	TaskTimeoutMS   int      `json:"task_timeout_ms,omitempty"`
}

func (sj specJSON) toSpec() (Spec, error) {
	sp := Spec{
		Name:            sj.Name,
		Kernel:          sj.Kernel,
		Weight:          sj.Weight,
		MaxTaskAttempts: sj.MaxTaskAttempts,
		RetryBudget:     sj.RetryBudget,
		TaskTimeout:     time.Duration(sj.TaskTimeoutMS) * time.Millisecond,
	}
	for i, enc := range sj.Tasks {
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return Spec{}, fmt.Errorf("task %d: %w", i, err)
		}
		sp.Tasks = append(sp.Tasks, raw)
	}
	return sp, nil
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, s.Jobs())
		case http.MethodPost:
			s.handleSubmit(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/jobs/")
		st, ok := s.Job(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown job %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sj specJSON
	if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	sp, err := sj.toSpec()
	if err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	switch err := s.Submit(sp); {
	case err == nil:
		st, _ := s.Job(sp.Name)
		writeJSON(w, http.StatusCreated, st)
	case errors.Is(err, ErrQueueFull):
		// Backpressure as a status code: the typed AdmissionError body
		// tells the client the depth it hit.
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
