package jobs

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/mpi"
	"triolet/internal/transport"
)

// Service-level tests: the job service driving real cluster sessions.
// Kernels are registered once per process (cluster.RegisterFarm panics on
// duplicates), shared across tests via distinct behaviors per payload.

// echoTransform is the deterministic reference transform: tests compare
// service results against it byte for byte.
func echoTransform(task []byte) []byte {
	out := make([]byte, len(task)+8)
	var sum uint64
	for i, b := range task {
		out[i] = b ^ 0x5A
		sum += uint64(b) * 31
	}
	binary.LittleEndian.PutUint64(out[len(task):], sum)
	return out
}

// slowFirstRuns counts executions of slow-marked tasks, so a task can be
// slow on its first attempt and fast after reassignment.
var slowFirstRuns atomic.Int64

func init() {
	// jobs.echo: pure transform.
	cluster.RegisterFarm("jobs.echo", func(n *cluster.Node, task []byte) ([]byte, error) {
		return echoTransform(task), nil
	})
	// jobs.poison: payloads starting 0xFF always fail; the rest echo.
	cluster.RegisterFarm("jobs.poison", func(n *cluster.Node, task []byte) ([]byte, error) {
		if len(task) > 0 && task[0] == 0xFF {
			return nil, errors.New("poison task")
		}
		return echoTransform(task), nil
	})
	// jobs.slowfirst: payloads starting 0xEE stall 50ms on their first
	// execution only — the task-timeout reassignment scenario.
	cluster.RegisterFarm("jobs.slowfirst", func(n *cluster.Node, task []byte) ([]byte, error) {
		if len(task) > 0 && task[0] == 0xEE && slowFirstRuns.Add(1) == 1 {
			time.Sleep(50 * time.Millisecond)
		}
		return echoTransform(task), nil
	})
}

func makeTasks(n int, salt byte) [][]byte {
	tasks := make([][]byte, n)
	for i := range tasks {
		tasks[i] = []byte{byte(i), salt, byte(i * 13)}
	}
	return tasks
}

func wantResults(tasks [][]byte) [][]byte {
	out := make([][]byte, len(tasks))
	for i, task := range tasks {
		out[i] = echoTransform(task)
	}
	return out
}

// serveUntilStopped runs a session whose master serves s until every job
// is terminal, guarded by a deadline so a scheduling bug fails instead of
// hanging the suite.
func serveUntilStopped(t *testing.T, cfg cluster.Config, s *Service) {
	t.Helper()
	s.Stop() // drain mode: Serve returns when all admitted jobs settle
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(cfg, func(sess *cluster.Session) error {
			return s.Serve(context.Background(), sess)
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve session: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job service deadlocked")
	}
}

func checkJobResults(t *testing.T, s *Service, name string, tasks [][]byte) {
	t.Helper()
	results, quarantined, err := s.Result(name)
	if err != nil {
		t.Fatalf("result %s: %v", name, err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("%s quarantined tasks: %v", name, quarantined)
	}
	want := wantResults(tasks)
	for i := range want {
		if !bytes.Equal(results[i], want[i]) {
			t.Fatalf("%s task %d = %x, want %x", name, i, results[i], want[i])
		}
	}
}

// Three concurrent jobs of different weights all run to completion on one
// shared worker pool, with correct, per-job-routed results.
func TestConcurrentJobsShareOnePool(t *testing.T) {
	s := newTestService(t, Config{})
	jobTasks := map[string][][]byte{
		"alpha": makeTasks(12, 1),
		"beta":  makeTasks(7, 2),
		"gamma": makeTasks(20, 3),
	}
	weights := map[string]int{"alpha": 1, "beta": 2, "gamma": 1}
	for name, tasks := range jobTasks {
		if err := s.Submit(Spec{Name: name, Kernel: "jobs.echo", Tasks: tasks, Weight: weights[name]}); err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
	}
	serveUntilStopped(t, cluster.Config{Nodes: 4, CoresPerNode: 1}, s)

	for name, tasks := range jobTasks {
		st, ok := s.Job(name)
		if !ok || st.State != "done" {
			t.Fatalf("%s state = %+v, want done", name, st)
		}
		checkJobResults(t, s, name, tasks)
	}
	secs := s.TaskSecondsByJob()
	for name := range jobTasks {
		if secs[name] < 0 {
			t.Fatalf("%s negative task-seconds", name)
		}
	}
}

// A poison-heavy job quarantines its poison tasks and completes degraded
// with a partial-result report, while a clean job sharing the pool
// completes untouched.
func TestPoisonJobDegradesWithPartialResults(t *testing.T) {
	s := newTestService(t, Config{BackoffBase: 200 * time.Microsecond, BackoffMax: time.Millisecond})
	poisonTasks := makeTasks(10, 4)
	poisonIdx := map[int]bool{2: true, 5: true, 8: true}
	for i := range poisonIdx {
		poisonTasks[i] = append([]byte{0xFF}, poisonTasks[i]...)
	}
	cleanTasks := makeTasks(8, 5)
	if err := s.Submit(Spec{Name: "toxic", Kernel: "jobs.poison", Tasks: poisonTasks, MaxTaskAttempts: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Spec{Name: "clean", Kernel: "jobs.echo", Tasks: cleanTasks}); err != nil {
		t.Fatal(err)
	}
	serveUntilStopped(t, cluster.Config{Nodes: 4, CoresPerNode: 1}, s)

	st, _ := s.Job("toxic")
	if st.State != "degraded" || st.Failed != len(poisonIdx) || st.Completed != len(poisonTasks)-len(poisonIdx) {
		t.Fatalf("toxic status = %+v", st)
	}
	results, quarantined, err := s.Result("toxic")
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range poisonTasks {
		if poisonIdx[i] {
			if _, q := quarantined[i]; !q {
				t.Fatalf("poison task %d not quarantined: %v", i, quarantined)
			}
			continue
		}
		if !bytes.Equal(results[i], echoTransform(task)) {
			t.Fatalf("toxic task %d partial result wrong", i)
		}
	}
	stc, _ := s.Job("clean")
	if stc.State != "done" {
		t.Fatalf("clean job state = %s alongside poison job", stc.State)
	}
	checkJobResults(t, s, "clean", cleanTasks)
}

// A task stalling past its TaskTimeout is reassigned and the job still
// completes; the stall burns retry budget, not correctness.
func TestTaskTimeoutReassigns(t *testing.T) {
	slowFirstRuns.Store(0)
	s := newTestService(t, Config{})
	tasks := makeTasks(6, 6)
	tasks[0] = append([]byte{0xEE}, tasks[0]...)
	if err := s.Submit(Spec{Name: "stall", Kernel: "jobs.slowfirst", Tasks: tasks, TaskTimeout: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	serveUntilStopped(t, cluster.Config{Nodes: 3, CoresPerNode: 1}, s)
	st, _ := s.Job("stall")
	if st.State != "done" {
		t.Fatalf("stalled job state = %+v", st)
	}
	checkJobResults(t, s, "stall", tasks)
}

// Single-node session: no workers at all, the master-fallback path runs
// every task locally.
func TestMasterFallbackCompletesJobs(t *testing.T) {
	s := newTestService(t, Config{})
	tasks := makeTasks(5, 7)
	if err := s.Submit(Spec{Name: "solo", Kernel: "jobs.echo", Tasks: tasks}); err != nil {
		t.Fatal(err)
	}
	serveUntilStopped(t, cluster.Config{Nodes: 1, CoresPerNode: 1}, s)
	checkJobResults(t, s, "solo", tasks)
}

// The acceptance core: kill the master mid-flight on a faulty fabric,
// restart a fresh service over the same WAL, and every job resumes to
// bit-identical results with only unfinished tasks re-executed (indirectly:
// completed records survive and are not re-run, pinned by record counts).
func TestServiceResumesFromWALAfterMasterKill(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "registry.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	jobTasks := map[string][][]byte{
		"res-a": makeTasks(15, 11),
		"res-b": makeTasks(15, 12),
		"res-c": makeTasks(10, 13),
	}
	s1, err := NewService(Config{Store: wal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, tasks := range jobTasks {
		if err := s1.Submit(Spec{Name: name, Kernel: "jobs.echo", Tasks: tasks}); err != nil {
			t.Fatal(err)
		}
	}
	specRecords := wal.Records()

	// First life: chaos fabric, master killed once a few results land.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if wal.Records() >= specRecords+8 {
				cancel()
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	_, runErr := cluster.RunCtx(ctx, cluster.Config{
		Nodes: 4, CoresPerNode: 1,
		Fault: &transport.FaultConfig{
			Seed:    77,
			Default: transport.FaultProbs{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02},
		},
		Reliable: &mpi.ReliableConfig{
			AckTimeout:    500 * time.Microsecond,
			Retries:       100,
			MaxAckTimeout: 50 * time.Millisecond,
		},
	}, func(sess *cluster.Session) error {
		return s1.Serve(ctx, sess)
	})
	if runErr == nil {
		t.Fatal("first life outran the kill; raise the task counts")
	}
	wal.Close()

	// Second life: reopen from disk, recover, finish. The fresh service
	// must re-queue only unfinished tasks.
	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	resultsBefore := wal2.Records() - specRecords
	if resultsBefore < 8 {
		t.Fatalf("WAL lost task records across the kill: %d", resultsBefore)
	}
	s2, err := NewService(Config{Store: wal2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	totalSettledBefore := 0
	for name, tasks := range jobTasks {
		st, ok := s2.Job(name)
		if !ok {
			t.Fatalf("job %s lost across restart", name)
		}
		if st.Tasks != len(tasks) {
			t.Fatalf("job %s rehydrated with %d tasks, want %d", name, st.Tasks, len(tasks))
		}
		totalSettledBefore += st.Completed + st.Failed
	}
	if totalSettledBefore == 0 {
		t.Fatal("no checkpointed progress recovered")
	}
	serveUntilStopped(t, cluster.Config{Nodes: 4, CoresPerNode: 1}, s2)

	for name, tasks := range jobTasks {
		st, _ := s2.Job(name)
		if st.State != "done" {
			t.Fatalf("resumed job %s state = %+v", name, st)
		}
		// Bit-identical to the reference transform — chaos, the kill, and
		// the resume must not show through in the bytes.
		checkJobResults(t, s2, name, tasks)
	}
	// Only unfinished tasks re-executed: the registry gained exactly the
	// missing task records plus the three summaries.
	totalTasks := 0
	for _, tasks := range jobTasks {
		totalTasks += len(tasks)
	}
	wantFinal := specRecords + totalTasks + len(jobTasks)
	if got := wal2.Records(); got != wantFinal {
		t.Fatalf("registry has %d records, want %d (specs %d + tasks %d + summaries %d): tasks re-executed or lost",
			got, wantFinal, specRecords, totalTasks, len(jobTasks))
	}
}

// Registry compaction after completions: terminal jobs shrink to summary
// records, live state survives, and a restarted service still reports the
// compacted jobs' outcomes (as tombstones) while refusing name reuse.
func TestRegistryCompactionShrinksCompletedJobs(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "compact.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewService(Config{Store: wal, CompactEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(9, 21)
	if err := s.Submit(Spec{Name: "compactable", Kernel: "jobs.echo", Tasks: tasks}); err != nil {
		t.Fatal(err)
	}
	serveUntilStopped(t, cluster.Config{Nodes: 3, CoresPerNode: 1}, s)

	if got := wal.Records(); got != 1 {
		t.Fatalf("registry holds %d records after compaction, want just the summary", got)
	}
	wal.Close()

	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	s2, err := NewService(Config{Store: wal2})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s2.Job("compactable")
	if !ok || st.State != "done" || st.Tasks != len(tasks) {
		t.Fatalf("compacted job tombstone = %+v, ok=%v", st, ok)
	}
	if err := s2.Submit(Spec{Name: "compactable", Kernel: "jobs.echo", Tasks: tasks}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("compacted name reused: %v", err)
	}
}
