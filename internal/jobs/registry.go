package jobs

import (
	"fmt"
	"hash/crc32"
	"time"

	"triolet/internal/serial"
)

// Registry record payloads. The checkpoint store frames and checksums each
// record; these encodings are only the payload bodies. Both carry a leading
// version byte so a future service can read an old registry.
//
//	spec (KindJobSpec):
//	  U8(version=2) ‖ String(kernel) ‖ U32(weight) ‖ U32(maxAttempts) ‖
//	  U32(retryBudget) ‖ U64(taskTimeout ns) ‖ U64(byteBudget) ‖
//	  U32(numTasks) ‖ RawBytes(task₀) … RawBytes(taskₙ₋₁)
//
//	(version 1 is the same layout without the byteBudget field; decoding
//	still accepts it, with an unlimited budget)
//
//	summary (KindJobDone):
//	  U8(version=1) ‖ U8(state) ‖ U32(completed) ‖ U32(failed) ‖
//	  U32(retriesUsed) ‖ U64(taskSeconds ns) ‖ U32(crc32 of results)
//
// The summary's CRC folds every completed task's result (in task order)
// so a compacted registry still lets an auditor check a re-run against
// the original results without storing them.

const (
	registryVersion = 2
	// registrySpecV1 is the pre-quota spec layout, still readable.
	registrySpecV1 = 1
)

// encodeSpec serializes a (defaulted, validated) spec for its admission
// record. The job name is not in the payload: the record's Job field
// carries it.
func encodeSpec(sp Spec) []byte {
	size := len(sp.Kernel) + 40
	for _, t := range sp.Tasks {
		size += len(t) + 8
	}
	w := serial.NewWriter(size)
	w.U8(registryVersion)
	w.String(sp.Kernel)
	w.U32(uint32(sp.Weight))
	w.U32(uint32(sp.MaxTaskAttempts))
	w.U32(uint32(sp.RetryBudget))
	w.U64(uint64(sp.TaskTimeout))
	w.U64(uint64(sp.ByteBudget))
	w.U32(uint32(len(sp.Tasks)))
	for _, t := range sp.Tasks {
		w.RawBytes(t)
	}
	return w.Bytes()
}

// decodeSpec parses an admission record payload back into a Spec.
func decodeSpec(name string, payload []byte) (Spec, error) {
	r := serial.NewReader(payload)
	v := r.U8()
	if v != registryVersion && v != registrySpecV1 {
		return Spec{}, fmt.Errorf("spec record version %d (want ≤%d)", v, registryVersion)
	}
	sp := Spec{
		Name:            name,
		Kernel:          r.String(),
		Weight:          int(r.U32()),
		MaxTaskAttempts: int(r.U32()),
		RetryBudget:     int(r.U32()),
		TaskTimeout:     time.Duration(r.U64()),
	}
	if v >= registryVersion {
		sp.ByteBudget = int64(r.U64())
	}
	n := int(r.U32())
	if r.Err() == nil && n > r.Remaining() {
		return Spec{}, fmt.Errorf("spec record claims %d tasks in %d bytes", n, r.Remaining())
	}
	for i := 0; i < n; i++ {
		sp.Tasks = append(sp.Tasks, r.RawBytes())
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return Spec{}, fmt.Errorf("malformed spec record")
	}
	return sp, nil
}

// doneSummary is a terminal job's completion record.
type doneSummary struct {
	state       State
	completed   int
	failed      int
	retriesUsed int
	taskSeconds time.Duration
	resultCRC   uint32
}

// resultCRC folds completed results in task order into one checksum.
func resultCRC(numTasks int, completed map[int][]byte) uint32 {
	h := crc32.NewIEEE()
	var idx [8]byte
	for t := 0; t < numTasks; t++ {
		r, ok := completed[t]
		if !ok {
			continue
		}
		for i := range idx {
			idx[i] = byte(t >> (8 * i))
		}
		h.Write(idx[:])
		h.Write(r)
	}
	return h.Sum32()
}

func encodeDone(sum doneSummary) []byte {
	w := serial.NewWriter(32)
	w.U8(registryVersion)
	w.U8(uint8(sum.state))
	w.U32(uint32(sum.completed))
	w.U32(uint32(sum.failed))
	w.U32(uint32(sum.retriesUsed))
	w.U64(uint64(sum.taskSeconds))
	w.U32(sum.resultCRC)
	return w.Bytes()
}

func decodeDone(payload []byte) (doneSummary, error) {
	r := serial.NewReader(payload)
	// The summary layout is unchanged since v1; accept either version.
	if v := r.U8(); v != registryVersion && v != registrySpecV1 {
		return doneSummary{}, fmt.Errorf("summary record version %d (want ≤%d)", v, registryVersion)
	}
	sum := doneSummary{
		state:       State(r.U8()),
		completed:   int(r.U32()),
		failed:      int(r.U32()),
		retriesUsed: int(r.U32()),
		taskSeconds: time.Duration(r.U64()),
		resultCRC:   r.U32(),
	}
	if r.Err() != nil || r.Remaining() != 0 || !sum.state.Terminal() {
		return doneSummary{}, fmt.Errorf("malformed summary record")
	}
	return sum, nil
}
