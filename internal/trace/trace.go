// Package trace is the runtime's phase profiler: per-rank, timestamped
// begin/end spans over named phases (scatter, broadcast, kernel, reduce,
// …) plus instant events carrying byte counts. The paper's overhead
// attributions — "40% of Triolet's overhead … attributable to the garbage
// collector" (§4.3), "transposition takes 35% of Eden's execution time"
// (§4.3), "60% of Triolet's execution time … from allocation overhead"
// (§4.5) — are the kind of numbers this subsystem produces: a cluster run
// with a Tracer attached yields per-phase totals and a per-rank text
// timeline.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind distinguishes event types.
type Kind uint8

const (
	// KindBegin opens a span.
	KindBegin Kind = iota
	// KindEnd closes the most recent open span with the same rank+phase.
	KindEnd
	// KindInstant is a point event (typically a message, with Bytes set).
	KindInstant
)

// Event is one raw trace record.
type Event struct {
	Rank  int
	Phase string
	Kind  Kind
	At    time.Duration // since the tracer's start
	Bytes int64
}

// Span is a paired begin/end interval.
type Span struct {
	Rank  int
	Phase string
	Start time.Duration
	Dur   time.Duration
}

// Tracer collects events. All methods are safe for concurrent use; a nil
// *Tracer is a valid no-op tracer, so call sites need no guards.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// New returns a tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Begin opens a span for (rank, phase) and returns the closer.
func (t *Tracer) Begin(rank int, phase string) func() {
	if t == nil {
		return func() {}
	}
	t.record(Event{Rank: rank, Phase: phase, Kind: KindBegin, At: time.Since(t.start)})
	return func() {
		t.record(Event{Rank: rank, Phase: phase, Kind: KindEnd, At: time.Since(t.start)})
	}
}

// Instant records a point event with a byte payload size.
func (t *Tracer) Instant(rank int, phase string, bytes int64) {
	if t == nil {
		return
	}
	t.record(Event{Rank: rank, Phase: phase, Kind: KindInstant, At: time.Since(t.start), Bytes: bytes})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a snapshot of the raw event log in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Spans pairs begin/end events into intervals. Unclosed begins are dropped;
// nesting of the same (rank, phase) pairs innermost-first.
func (t *Tracer) Spans() []Span {
	events := t.Events()
	type key struct {
		rank  int
		phase string
	}
	open := map[key][]time.Duration{}
	var spans []Span
	for _, e := range events {
		k := key{e.Rank, e.Phase}
		switch e.Kind {
		case KindBegin:
			open[k] = append(open[k], e.At)
		case KindEnd:
			stack := open[k]
			if len(stack) == 0 {
				continue // unmatched end: ignore
			}
			start := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			spans = append(spans, Span{Rank: e.Rank, Phase: e.Phase, Start: start, Dur: e.At - start})
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Rank != spans[j].Rank {
			return spans[i].Rank < spans[j].Rank
		}
		return spans[i].Start < spans[j].Start
	})
	return spans
}

// PhaseTotals sums span durations per phase across all ranks.
func (t *Tracer) PhaseTotals() map[string]time.Duration {
	totals := map[string]time.Duration{}
	for _, s := range t.Spans() {
		totals[s.Phase] += s.Dur
	}
	return totals
}

// Count reports how many instant events were recorded for phase. The farm
// supervisor's health events ("farm.retire", "farm.task-fail",
// "farm.quarantine", …) are instants, so tests and monitors can assert on
// supervision activity without parsing the event log.
func (t *Tracer) Count(phase string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.events {
		if e.Kind == KindInstant && e.Phase == phase {
			n++
		}
	}
	return n
}

// InstantValues returns each instant event's Bytes value for phase, in
// record order. Instants double as metric samples (AutoPar records
// "plan.predicted"/"plan.observed" wall-µs and byte volumes this way), and
// per-sample access — not just the Count/PhaseBytes aggregates — is what
// lets a test compare an individual prediction against its observation.
func (t *Tracer) InstantValues(phase string) []int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int64
	for _, e := range t.events {
		if e.Kind == KindInstant && e.Phase == phase {
			out = append(out, e.Bytes)
		}
	}
	return out
}

// PhaseBytes sums instant-event bytes per phase.
func (t *Tracer) PhaseBytes() map[string]int64 {
	out := map[string]int64{}
	for _, e := range t.Events() {
		if e.Kind == KindInstant {
			out[e.Phase] += e.Bytes
		}
	}
	return out
}

// Summary renders per-phase totals (time and bytes), largest first.
func (t *Tracer) Summary() string {
	totals := t.PhaseTotals()
	bytes := t.PhaseBytes()
	phases := make([]string, 0, len(totals)+len(bytes))
	seen := map[string]bool{}
	for p := range totals {
		phases = append(phases, p)
		seen[p] = true
	}
	for p := range bytes {
		if !seen[p] {
			phases = append(phases, p)
		}
	}
	sort.Slice(phases, func(i, j int) bool {
		if totals[phases[i]] != totals[phases[j]] {
			return totals[phases[i]] > totals[phases[j]]
		}
		return phases[i] < phases[j]
	})
	var sb strings.Builder
	sb.WriteString("phase totals:\n")
	for _, p := range phases {
		fmt.Fprintf(&sb, "  %-20s %12s", p, totals[p].Round(time.Microsecond))
		if b := bytes[p]; b > 0 {
			fmt.Fprintf(&sb, "  %d bytes", b)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Gantt renders a text timeline: one row per rank, width columns spanning
// the trace duration, each span drawn with the first letter of its phase.
// Overlapping spans on a rank draw later-starting on top.
func (t *Tracer) Gantt(width int) string {
	spans := t.Spans()
	if len(spans) == 0 || width <= 0 {
		return "(no spans)\n"
	}
	var end time.Duration
	maxRank := 0
	for _, s := range spans {
		if s.Start+s.Dur > end {
			end = s.Start + s.Dur
		}
		if s.Rank > maxRank {
			maxRank = s.Rank
		}
	}
	if end == 0 {
		end = 1
	}
	rows := make([][]byte, maxRank+1)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(".", width))
	}
	for _, s := range spans {
		lo := int(int64(s.Start) * int64(width) / int64(end))
		hi := int(int64(s.Start+s.Dur) * int64(width) / int64(end))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := byte('?')
		if len(s.Phase) > 0 {
			ch = s.Phase[0]
		}
		for c := lo; c < hi; c++ {
			rows[s.Rank][c] = ch
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (%s total):\n", end.Round(time.Microsecond))
	for r, row := range rows {
		fmt.Fprintf(&sb, "  rank %2d |%s|\n", r, row)
	}
	return sb.String()
}
