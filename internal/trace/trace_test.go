package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	end := tr.Begin(0, "x") // must not panic
	end()
	tr.Instant(0, "y", 10)
	if tr.Events() != nil {
		t.Fatal("nil tracer produced events")
	}
}

func TestBeginEndPairsIntoSpans(t *testing.T) {
	tr := New()
	end := tr.Begin(1, "kernel")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	s := spans[0]
	if s.Rank != 1 || s.Phase != "kernel" || s.Dur <= 0 {
		t.Fatalf("span = %+v", s)
	}
}

func TestNestedSameName(t *testing.T) {
	tr := New()
	outer := tr.Begin(0, "p")
	inner := tr.Begin(0, "p")
	inner()
	outer()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	// Inner closes first: its duration must not exceed the outer's.
	var durs []time.Duration
	for _, s := range spans {
		durs = append(durs, s.Dur)
	}
	if durs[0] < 0 || durs[1] < 0 {
		t.Fatal("negative duration")
	}
}

func TestUnmatchedEventsIgnored(t *testing.T) {
	tr := New()
	tr.record(Event{Rank: 0, Phase: "dangling", Kind: KindEnd, At: time.Millisecond})
	_ = tr.Begin(0, "open") // never closed
	if len(tr.Spans()) != 0 {
		t.Fatalf("spans from unmatched events: %v", tr.Spans())
	}
}

func TestPhaseTotalsAndBytes(t *testing.T) {
	tr := New()
	for range 3 {
		end := tr.Begin(0, "a")
		end()
	}
	tr.Instant(0, "net", 100)
	tr.Instant(1, "net", 50)
	if tr.PhaseBytes()["net"] != 150 {
		t.Fatalf("bytes = %v", tr.PhaseBytes())
	}
	if _, ok := tr.PhaseTotals()["a"]; !ok {
		t.Fatalf("totals = %v", tr.PhaseTotals())
	}
}

func TestSummaryAndGantt(t *testing.T) {
	tr := New()
	endA := tr.Begin(0, "kernel")
	endB := tr.Begin(1, "scatter")
	time.Sleep(time.Millisecond)
	endB()
	endA()
	tr.Instant(0, "net", 4096)

	sum := tr.Summary()
	if !strings.Contains(sum, "kernel") || !strings.Contains(sum, "4096 bytes") {
		t.Fatalf("summary:\n%s", sum)
	}
	g := tr.Gantt(40)
	if !strings.Contains(g, "rank  0") || !strings.Contains(g, "rank  1") {
		t.Fatalf("gantt:\n%s", g)
	}
	if !strings.Contains(g, "k") || !strings.Contains(g, "s") {
		t.Fatalf("gantt missing phase letters:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := New().Gantt(10); !strings.Contains(got, "no spans") {
		t.Fatalf("empty gantt = %q", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for r := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				end := tr.Begin(r, "work")
				tr.Instant(r, "msg", 1)
				end()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Fatalf("spans = %d", got)
	}
	if tr.PhaseBytes()["msg"] != 400 {
		t.Fatalf("bytes = %v", tr.PhaseBytes())
	}
}

func TestSpansSorted(t *testing.T) {
	tr := New()
	e2 := tr.Begin(2, "b")
	e0 := tr.Begin(0, "a")
	e0()
	e2()
	spans := tr.Spans()
	if spans[0].Rank != 0 || spans[1].Rank != 2 {
		t.Fatalf("spans unsorted: %v", spans)
	}
}

func TestCountInstants(t *testing.T) {
	var nilT *Tracer
	if nilT.Count("x") != 0 {
		t.Fatal("nil tracer Count != 0")
	}
	tr := New()
	tr.Instant(0, "farm.retire", 2)
	tr.Instant(0, "farm.retire", 3)
	tr.Instant(1, "farm.task-fail", 7)
	end := tr.Begin(0, "farm.retire") // a span, not an instant: not counted
	end()
	if got := tr.Count("farm.retire"); got != 2 {
		t.Fatalf("Count(farm.retire) = %d, want 2", got)
	}
	if got := tr.Count("farm.task-fail"); got != 1 {
		t.Fatalf("Count(farm.task-fail) = %d, want 1", got)
	}
	if got := tr.Count("absent"); got != 0 {
		t.Fatalf("Count(absent) = %d, want 0", got)
	}
}
