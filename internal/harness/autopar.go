package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/parboil"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/perfmodel"
	"triolet/internal/serial"
)

// AutoPar sweep: the fig-4-style evidence that perfmodel-driven
// auto-mapping works end to end. Each benchmark is described to the
// planner as a Workload; the planner picks placement, node count, grain,
// and serialization; the chosen configuration runs as a real farm whose
// per-task timings feed the Online recalibrator; and the same farm forced
// to every hand-tuned node count provides the bar the auto-mapped run is
// measured against. Two auto-mapped runs are taken — the second planned
// from recalibrated costs — so the sweep also proves prediction error
// shrinks with feedback.

// autoParData is the sweep's shared read-only input snapshot. The virtual
// cluster shares one address space, so the broadcast side of each farm
// (the B matrix, the k-space trajectory, the observed point set, the grid
// geometry) reaches worker kernels through this pointer instead of
// traveling per task; task payloads carry only the distributed axis,
// matching each Workload's BytesPerElem accounting. Stored before any
// session starts; kernels only read it.
type autoParData struct {
	sgemm   *sgemm.Input
	sgemmBT array.Matrix[float32]
	mriq    *mriq.Input
	tpacf   *tpacf.Input
	cutcp   *cutcp.Input
}

var autoParCtx atomic.Pointer[autoParData]

var autoParKernelsOnce sync.Once

func autoRange(task []byte) (lo, hi int) {
	r := serial.NewReader(task)
	lo, hi = r.Int(), r.Int()
	return lo, hi
}

func encodeAutoRange(lo, hi int) []byte {
	w := serial.NewWriter(16)
	w.Int(lo)
	w.Int(hi)
	return w.Bytes()
}

// registerAutoParKernels installs the four shard kernels. Each computes a
// contiguous element range [lo, hi) of its benchmark's distributed axis
// with the same inner kernels the sequential reference uses, so shard
// results recompose to the reference answer.
func registerAutoParKernels() {
	autoParKernelsOnce.Do(func() {
		// Output rows lo..hi of C = α·A·B, in row-major order.
		cluster.RegisterFarm("autopar.sgemm", func(n *cluster.Node, task []byte) ([]byte, error) {
			d := autoParCtx.Load()
			lo, hi := autoRange(task)
			in, bt := d.sgemm, d.sgemmBT
			w := serial.NewWriter((hi-lo)*in.B.W*4 + 8)
			for i := lo; i < hi; i++ {
				ai := in.A.Row(i)
				for j := 0; j < in.B.W; j++ {
					w.F32(sgemm.RowDot(in.Alpha, ai, bt.Row(j)))
				}
			}
			return w.Bytes(), nil
		})
		// Voxels lo..hi of the complex image, as (re, im) pairs.
		cluster.RegisterFarm("autopar.mriq", func(n *cluster.Node, task []byte) ([]byte, error) {
			d := autoParCtx.Load()
			lo, hi := autoRange(task)
			in := d.mriq
			w := serial.NewWriter((hi-lo)*8 + 8)
			for v := lo; v < hi; v++ {
				q := mriq.VoxelQ(in, in.X[v], in.Y[v], in.Z[v])
				w.F32(q.Re)
				w.F32(q.Im)
			}
			return w.Bytes(), nil
		})
		// Random sets lo..hi: partial DRS and RRS histograms (DD involves
		// only the observed set and stays on the master).
		cluster.RegisterFarm("autopar.tpacf", func(n *cluster.Node, task []byte) ([]byte, error) {
			d := autoParCtx.Load()
			lo, hi := autoRange(task)
			in := d.tpacf
			drs := make([]int64, in.Bins())
			rrs := make([]int64, in.Bins())
			for s := lo; s < hi; s++ {
				tpacf.CrossCorr(in.Binb, in.Obs, in.Rands[s], drs)
				tpacf.SelfCorr(in.Binb, in.Rands[s], rrs)
			}
			w := serial.NewWriter(16 * (in.Bins() + 2))
			w.I64Slice(drs)
			w.I64Slice(rrs)
			return w.Bytes(), nil
		})
		// Atoms lo..hi accumulated into a private copy of the full grid;
		// the master merges shard grids in task order (ReduceGrid).
		cluster.RegisterFarm("autopar.cutcp", func(n *cluster.Node, task []byte) ([]byte, error) {
			d := autoParCtx.Load()
			lo, hi := autoRange(task)
			in := d.cutcp
			grid := make([]float32, in.Geo.Points())
			for _, a := range in.Atoms[lo:hi] {
				cutcp.Accumulate(in.Geo, a, grid)
			}
			w := serial.NewWriter(4*len(grid) + 8)
			w.F32Slice(grid)
			return w.Bytes(), nil
		})
	})
}

// autoBench binds one benchmark's workload description to its shard
// kernel and its recomposition check.
type autoBench struct {
	name   string
	kernel string
	w      perfmodel.Workload
	// verify recomposes shard results (ranges[i] produced results[i]) and
	// compares against the sequential reference.
	verify func(ranges [][2]int, results [][]byte) (detail string, ok bool)
}

// autoBenches builds the four sweep benchmarks over the standard sweep
// inputs (the same generator calls Sweep uses).
func autoBenches(d *autoParData) []autoBench {
	sg, mr, tp, cu := d.sgemm, d.mriq, d.tpacf, d.cutcp
	// cutcp's work units must use the same accounting the calibrator does —
	// actual clipped AtomBox cells, not the unclipped cutoff-cube span — or
	// the online EWMA mixes samples measured in different units and the
	// recalibrated predictions drift instead of converging.
	cells := 0
	for _, a := range cu.Atoms {
		zr, yr, xr := cutcp.AtomBox(cu.Geo, a)
		cells += zr.Len() * yr.Len() * xr.Len()
	}
	cellsPerAtom := float64(cells) / float64(len(cu.Atoms))
	return []autoBench{
		{
			name: "sgemm", kernel: "autopar.sgemm",
			w: perfmodel.Workload{
				Name: "sgemm", Elems: sg.A.H,
				BytesPerElem: sg.A.W * 4, BytesPerResult: sg.B.W * 4,
				UnitsPerElem: float64(sg.A.W) * float64(sg.B.W),
				Class:        perfmodel.CostSGEMM,
				Reduce:       perfmodel.ReduceGather, Pointerless: true,
			},
			verify: func(ranges [][2]int, results [][]byte) (string, bool) {
				want := sgemm.Seq(sg)
				got := array.NewMatrix[float32](sg.A.H, sg.B.W)
				for t, rg := range ranges {
					r := serial.NewReader(results[t])
					for i := rg[0]; i < rg[1]; i++ {
						row := got.Row(i)
						for j := range row {
							row[j] = r.F32()
						}
					}
					if r.Err() != nil || r.Remaining() != 0 {
						return fmt.Sprintf("task %d result malformed", t), false
					}
				}
				diff := parboil.MaxAbsDiff(got.Data, want.Data)
				return fmt.Sprintf("max |diff| vs Seq: %g", diff), diff == 0
			},
		},
		{
			name: "mri-q", kernel: "autopar.mriq",
			w: perfmodel.Workload{
				Name: "mri-q", Elems: mr.NumVoxels(),
				BytesPerElem: 12, BytesPerResult: 8,
				UnitsPerElem: float64(mr.NumSamples()),
				Class:        perfmodel.CostMRIQ,
				Reduce:       perfmodel.ReduceGather, Pointerless: true,
			},
			verify: func(ranges [][2]int, results [][]byte) (string, bool) {
				want := mriq.Seq(mr)
				wr, wi := mriq.SplitQ(want)
				gr := make([]float32, len(wr))
				gi := make([]float32, len(wi))
				for t, rg := range ranges {
					r := serial.NewReader(results[t])
					for v := rg[0]; v < rg[1]; v++ {
						gr[v] = r.F32()
						gi[v] = r.F32()
					}
					if r.Err() != nil || r.Remaining() != 0 {
						return fmt.Sprintf("task %d result malformed", t), false
					}
				}
				diff := max(parboil.MaxAbsDiff(gr, wr), parboil.MaxAbsDiff(gi, wi))
				return fmt.Sprintf("max |diff| vs Seq: %g", diff), diff == 0
			},
		},
		{
			name: "tpacf", kernel: "autopar.tpacf",
			w: perfmodel.Workload{
				Name: "tpacf", Elems: len(tp.Rands),
				BytesPerElem: len(tp.Obs) * 12,
				UnitsPerElem: float64(len(tp.Obs))*float64(len(tp.Obs)) +
					float64(len(tp.Obs))*float64(len(tp.Obs)-1)/2,
				Class:  perfmodel.CostTPACF,
				Reduce: perfmodel.ReduceScalar, ReduceBytes: 16 * tp.Bins(),
			},
			verify: func(ranges [][2]int, results [][]byte) (string, bool) {
				want := tpacf.Seq(tp)
				got := tpacf.Result{
					DD:  make([]int64, tp.Bins()),
					DRS: make([]int64, tp.Bins()),
					RRS: make([]int64, tp.Bins()),
				}
				tpacf.SelfCorr(tp.Binb, tp.Obs, got.DD)
				for t := range ranges {
					r := serial.NewReader(results[t])
					drs, rrs := r.I64Slice(), r.I64Slice()
					if r.Err() != nil || len(drs) != tp.Bins() || len(rrs) != tp.Bins() {
						return fmt.Sprintf("task %d result malformed", t), false
					}
					array.AddInto(got.DRS, drs)
					array.AddInto(got.RRS, rrs)
				}
				ok := parboil.EqualInt64(got.DD, want.DD) &&
					parboil.EqualInt64(got.DRS, want.DRS) &&
					parboil.EqualInt64(got.RRS, want.RRS)
				return "integer histograms compared exactly", ok
			},
		},
		{
			name: "cutcp", kernel: "autopar.cutcp",
			w: perfmodel.Workload{
				Name: "cutcp", Elems: len(cu.Atoms),
				BytesPerElem: 16,
				UnitsPerElem: cellsPerAtom,
				Class:        perfmodel.CostCUTCP,
				Reduce:       perfmodel.ReduceGrid, ReduceBytes: cu.Geo.Points() * 4,
				Pointerless: true,
			},
			verify: func(ranges [][2]int, results [][]byte) (string, bool) {
				want := cutcp.Seq(cu)
				grid := make([]float32, cu.Geo.Points())
				for t := range ranges {
					r := serial.NewReader(results[t])
					g := r.F32Slice()
					if r.Err() != nil || len(g) != len(grid) {
						return fmt.Sprintf("task %d result malformed", t), false
					}
					array.AddInto(grid, g)
				}
				rel := parboil.MaxRelDiff(grid, want, 1e-3)
				return fmt.Sprintf("max rel diff vs Seq: %g (shard merge order)", rel), rel < 5e-3
			},
		},
	}
}

// FarmPlanOf projects a perfmodel plan onto the cluster runtime's
// dependency-free FarmPlan — the harness hook that routes planned
// consumers through cluster.AutoFarm.
func FarmPlanOf(p perfmodel.Plan) cluster.FarmPlan {
	return cluster.FarmPlan{
		Distribute:       p.Mode == perfmodel.ExecFarm && p.Nodes > 1,
		Nodes:            p.Nodes,
		Label:            p.Workload.Name,
		PredictedSeconds: p.Predicted.Total(),
		PredictedBytes:   p.PredictedBytes,
	}
}

// autoTaskCount sizes the farm decomposition from a plan: the planner's
// over-decomposed task count when distributing, else one task per
// plan-grain range, bounded so the local path still interleaves.
func autoTaskCount(p perfmodel.Plan, cores int) int {
	if p.Tasks > 0 {
		return p.Tasks
	}
	n := p.Workload.Elems / p.Grain
	if n < 1 {
		n = 1
	}
	if cap := 4 * cores; n > cap {
		n = cap
	}
	return n
}

func autoTaskRanges(elems, n int) [][2]int {
	if n < 1 {
		n = 1
	}
	if n > elems {
		n = elems
	}
	out := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*elems/n, (i+1)*elems/n
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// autoRun executes one bench once under a farm plan: wall time, fabric
// bytes, shard results, and the ranges that produced them.
func autoRun(b autoBench, plan cluster.FarmPlan, cores, nTasks int,
	onTiming func(int, time.Duration)) (time.Duration, int64, [][]byte, [][2]int, error) {
	ranges := autoTaskRanges(b.w.Elems, nTasks)
	tasks := make([][]byte, len(ranges))
	for i, rg := range ranges {
		tasks[i] = encodeAutoRange(rg[0], rg[1])
	}
	start := time.Now()
	fr, stats, err := cluster.AutoFarm(cluster.Config{CoresPerNode: cores}, plan,
		b.kernel, tasks, cluster.FarmOptions{OnTaskTiming: onTiming})
	elapsed := time.Since(start)
	if err != nil {
		return elapsed, stats.Bytes, nil, nil, err
	}
	if len(fr.Failed) > 0 {
		return elapsed, stats.Bytes, nil, nil, fmt.Errorf("%d tasks quarantined", len(fr.Failed))
	}
	return elapsed, stats.Bytes, fr.Results, ranges, nil
}

// autoRunBest is autoRun with best-of-n wall time (results from the last
// repetition): virtual-cluster startup jitter is the dominant noise at
// sweep scale, and the minimum is the stable statistic. Task timings are
// forwarded only from the fastest repetition, for the same reason the
// calibrator keeps best-observed costs — an EWMA fed mean-of-reps would
// learn scheduler noise the best-of wall times it must predict never pay.
func autoRunBest(b autoBench, plan cluster.FarmPlan, cores, nTasks, reps int,
	onTiming func(int, time.Duration)) (time.Duration, int64, [][]byte, [][2]int, error) {
	var (
		bestT       time.Duration
		bestTimings map[int]time.Duration
		bytes       int64
		results     [][]byte
		ranges      [][2]int
		err         error
	)
	for i := 0; i < reps; i++ {
		var t time.Duration
		var mu sync.Mutex
		timings := make(map[int]time.Duration)
		collect := func(task int, d time.Duration) {
			mu.Lock()
			timings[task] = d
			mu.Unlock()
		}
		if onTiming == nil {
			collect = nil
		}
		t, bytes, results, ranges, err = autoRun(b, plan, cores, nTasks, collect)
		if err != nil {
			return t, bytes, nil, nil, err
		}
		if bestT == 0 || t < bestT {
			bestT, bestTimings = t, timings
		}
	}
	if onTiming != nil {
		for task, d := range bestTimings {
			onTiming(task, d)
		}
	}
	return bestT, bytes, results, ranges, err
}

// AutoPoint is one benchmark's autopar measurement: two auto-mapped runs
// (before and after recalibration) against the best hand-tuned node count.
type AutoPoint struct {
	Bench string
	// Plan1/Plan2 describe the planner's choice before and after
	// recalibration ("farm@4 grain=512 raw 12.3ms").
	Plan1, Plan2   string
	Nodes1, Nodes2 int
	// Predicted and observed wall time per run.
	Pred1, Obs1 time.Duration
	Pred2, Obs2 time.Duration
	// Err1/Err2 are |predicted-observed|/observed per run.
	Err1, Err2 float64
	// PredBytes/ObsBytes compare the plan's traffic model to the fabric
	// meter (run 1).
	PredBytes, ObsBytes int64
	// Hand holds the hand-tuned sweep (nodes → wall time); Best/BestNodes
	// its winner. Ratio is min(Obs1, Obs2) / Best: the hand side's floor
	// is a minimum over every rung's repetitions, so the auto side's floor
	// uses both runs' repetitions too.
	Hand      map[int]time.Duration
	Best      time.Duration
	BestNodes int
	Ratio     float64
	Verify    string
	OK        bool
}

// AutoSweepResult is the full sweep outcome plus the calibration snapshot
// it read and wrote.
type AutoSweepResult struct {
	Points    []AutoPoint
	CalibPath string
	// Resumed reports whether a prior snapshot informed run 1's plans.
	Resumed bool
}

// handNodeCounts is the hand-tuned ladder the auto-mapped run must match:
// the paper's 1–8 node testbed.
var handNodeCounts = []int{1, 2, 4, 8}

// handReps/autoReps are the best-of repetition counts. The hand ladder
// already takes a minimum across four node counts, so each rung needs
// fewer samples than the single auto-mapped configuration to estimate its
// floor equally well.
const (
	handReps = 2
	autoReps = 6
)

// AutoSweep runs the full autopar sweep: calibrate (planning subset), load
// the snapshot at calibPath (empty = no persistence), plan and run every
// benchmark twice with recalibration in between, hand-sweep 1–8 nodes for
// the bar, and save the updated snapshot.
func AutoSweep(cores int, calibPath string) (*AutoSweepResult, error) {
	if cores <= 0 {
		cores = 2
	}
	cal := perfmodel.CalibratePlanning()
	online, _ := perfmodel.LoadOnline(calibPath, cal, perfmodel.DefaultDecay)
	pl := perfmodel.NewPlannerOnline(online, perfmodel.VirtualMachine(), cores)
	// The sweep runs on a real box, not the paper's testbed: tell the
	// planner how much physical parallelism the virtual cluster actually
	// has, so it only distributes when distribution can pay for itself.
	pl.PhysCores = runtime.NumCPU()

	// Inputs are sized so kernel compute dominates farm overhead (sgemm and
	// cutcp run larger than the scaling sweep's inputs): the within-bound
	// claim is about mapping quality, not about measuring dispatch floors.
	d := &autoParData{
		sgemm: sgemm.Gen(256, 192, 192, 202),
		mriq:  mriq.Gen(3000, 256, 201),
		tpacf: tpacf.Gen(128, 16, 16, 203),
		cutcp: cutcp.Gen(2400, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 204),
	}
	d.sgemmBT = array.Transpose(d.sgemm.B)
	autoParCtx.Store(d)
	registerAutoParKernels()

	res := &AutoSweepResult{CalibPath: calibPath, Resumed: online.Samples(perfmodel.CostSGEMM) > 0}
	for _, b := range autoBenches(d) {
		res.Points = append(res.Points, runAutoBench(pl, b, cores))
	}
	if calibPath != "" {
		if err := online.Save(calibPath); err != nil {
			return res, fmt.Errorf("harness: save calibration snapshot: %w", err)
		}
	}
	return res, nil
}

// timingFeed routes farm heartbeat timings into the recalibrator: each
// task's kernel seconds over its units become one EWMA sample for the
// workload's cost class.
func timingFeed(online *perfmodel.Online, b autoBench, ranges [][2]int) func(int, time.Duration) {
	return func(task int, d time.Duration) {
		if task < 0 || task >= len(ranges) {
			return
		}
		units := float64(ranges[task][1]-ranges[task][0]) * b.w.UnitsPerElem
		online.Observe(b.w.Class, task, units, d)
	}
}

func relErr(pred, obs time.Duration) float64 {
	if obs <= 0 {
		return 0
	}
	d := (pred - obs).Seconds()
	if d < 0 {
		d = -d
	}
	return d / obs.Seconds()
}

func runAutoBench(pl *perfmodel.Planner, b autoBench, cores int) AutoPoint {
	pt := AutoPoint{Bench: b.name, Hand: make(map[int]time.Duration)}
	online := pl.Online()

	// Hand-tuned ladder: the same farm executor forced to each node count.
	for _, nodes := range handNodeCounts {
		plan := cluster.FarmPlan{Distribute: nodes > 1, Nodes: nodes, Label: b.name + "-hand"}
		nTasks := 4 * cores
		if nodes > 1 {
			nTasks = 4 * (nodes - 1)
		}
		el, _, results, ranges, err := autoRunBest(b, plan, cores, nTasks, handReps, nil)
		if err != nil {
			pt.Verify = fmt.Sprintf("hand@%d: %v", nodes, err)
			return pt
		}
		if detail, ok := b.verify(ranges, results); !ok {
			pt.Verify = fmt.Sprintf("hand@%d: %s", nodes, detail)
			return pt
		}
		pt.Hand[nodes] = el
		if pt.Best == 0 || el < pt.Best {
			pt.Best, pt.BestNodes = el, nodes
		}
	}

	// Auto-mapped run 1 (static or snapshot-informed calibration), feeding
	// per-task timings and the run-level bias back into the recalibrator.
	autoOnce := func(runTag string) (perfmodel.Plan, time.Duration, int64, error) {
		plan := pl.Plan(b.w)
		ranges := autoTaskRanges(b.w.Elems, autoTaskCount(plan, cores))
		el, bytes, results, gotRanges, err := autoRunBest(b, FarmPlanOf(plan), cores,
			autoTaskCount(plan, cores), autoReps, timingFeed(online, b, ranges))
		if err != nil {
			return plan, el, bytes, fmt.Errorf("%s: %w", runTag, err)
		}
		if detail, ok := b.verify(gotRanges, results); !ok {
			return plan, el, bytes, fmt.Errorf("%s: %s", runTag, detail)
		}
		online.Commit()
		// Bias against a re-prediction under the freshly committed unit
		// costs, not the stale pre-run plan: the EWMA already absorbed what
		// the units explain, so the bias should only carry the residual the
		// units cannot (pool spawn, fabric hops). Biasing against the old
		// prediction would chase the same error twice and overshoot.
		online.ObserveBias(b.w.Name, pl.Plan(b.w).Predicted.Total(), el.Seconds())
		return plan, el, bytes, nil
	}

	plan1, obs1, bytes1, err := autoOnce("auto run 1")
	if err != nil {
		pt.Verify = err.Error()
		return pt
	}
	pt.Plan1, pt.Nodes1 = plan1.String(), plan1.Nodes
	pt.Pred1 = time.Duration(plan1.Predicted.Total() * float64(time.Second))
	pt.Obs1 = obs1
	pt.PredBytes, pt.ObsBytes = plan1.PredictedBytes, bytes1

	plan2, obs2, _, err := autoOnce("auto run 2")
	if err != nil {
		pt.Verify = err.Error()
		return pt
	}
	pt.Plan2, pt.Nodes2 = plan2.String(), plan2.Nodes
	pt.Pred2 = time.Duration(plan2.Predicted.Total() * float64(time.Second))
	pt.Obs2 = obs2

	pt.Err1, pt.Err2 = relErr(pt.Pred1, pt.Obs1), relErr(pt.Pred2, pt.Obs2)
	if pt.Best > 0 {
		bestAuto := pt.Obs2
		if pt.Obs1 < bestAuto {
			bestAuto = pt.Obs1
		}
		pt.Ratio = bestAuto.Seconds() / pt.Best.Seconds()
	}
	pt.Verify = "results recompose to the sequential reference"
	pt.OK = true
	return pt
}

// AutoGate checks a sweep against the acceptance bound: every benchmark
// verified, auto-mapped within bound × the best hand-tuned time, and the
// recalibrated run's prediction error improved (or is already ≤ 10%).
func AutoGate(res *AutoSweepResult, bound float64) error {
	if bound <= 0 {
		bound = 1.10
	}
	for _, p := range res.Points {
		if !p.OK {
			return fmt.Errorf("autopar: %s failed verification: %s", p.Bench, p.Verify)
		}
		if p.Ratio > bound {
			return fmt.Errorf("autopar: %s auto-mapped is %.2fx best hand-tuned %.1fms@%d nodes (bound %.2fx)",
				p.Bench, p.Ratio,
				float64(p.Best.Microseconds())/1e3, p.BestNodes, bound)
		}
		if !(p.Err2 < p.Err1 || p.Err2 <= 0.10) {
			return fmt.Errorf("autopar: %s recalibration did not converge: err1 %.1f%%, err2 %.1f%%",
				p.Bench, 100*p.Err1, 100*p.Err2)
		}
	}
	return nil
}

// AutoTable renders the sweep as the EXPERIMENTS.md table.
func AutoTable(res *AutoSweepResult) string {
	var sb strings.Builder
	sb.WriteString("AutoPar sweep: planner-mapped vs best hand-tuned 1-8 nodes\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tauto plan (run 2)\tpred1\tobs1\tpred2\tobs2\terr1\terr2\tbest hand\tratio\tverify")
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3) }
	for _, p := range res.Points {
		status := p.Verify
		if p.OK {
			status = "ok"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%.0f%%\t%.0f%%\t%s@%d\t%.2fx\t%s\n",
			p.Bench, p.Plan2, ms(p.Pred1), ms(p.Obs1), ms(p.Pred2), ms(p.Obs2),
			100*p.Err1, 100*p.Err2, ms(p.Best), p.BestNodes, p.Ratio, status)
	}
	w.Flush()
	if res.CalibPath != "" {
		fmt.Fprintf(&sb, "calibration snapshot: %s (resumed: %v)\n", res.CalibPath, res.Resumed)
	}
	return sb.String()
}
