package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/perfmodel"
	"triolet/internal/transport"
)

// Real-execution scaling sweep: runs the actual distributed
// implementations at increasing virtual-node counts and reports measured
// wall time and fabric traffic. On a single physical core the compute
// cannot speed up, so the interesting columns are the traffic growth and
// the per-configuration overheads — the part of the scaling story that is
// real rather than modeled. (The modeled 128-core figures live in
// FigSeriesTable.)

// SweepPoint is one (benchmark, nodes) measurement.
type SweepPoint struct {
	Bench   string
	Nodes   int
	Cores   int
	Elapsed time.Duration
	Bytes   int64
	Msgs    int64
	Err     string
}

// Sweep runs every benchmark's Triolet implementation at each node count.
// A non-nil delay attaches wire-delay simulation to the fabric, so the
// measured wall times include genuine communication time.
func Sweep(nodeCounts []int, coresPerNode int, delay *transport.DelayConfig) []SweepPoint {
	var out []SweepPoint
	mriqIn := mriq.Gen(3000, 256, 201)
	sgemmIn := sgemm.Gen(128, 128, 128, 202)
	tpacfIn := tpacf.Gen(128, 16, 16, 203)
	cutcpIn := cutcp.Gen(600, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 204)

	for _, nodes := range nodeCounts {
		cfg := cluster.Config{Nodes: nodes, CoresPerNode: coresPerNode, NetDelay: delay}
		out = append(out,
			runSweep("mri-q", cfg, func(s *cluster.Session) error {
				_, err := mriq.Triolet(s, mriqIn)
				return err
			}),
			runSweep("sgemm", cfg, func(s *cluster.Session) error {
				_, err := sgemm.Triolet(s, sgemmIn)
				return err
			}),
			runSweep("tpacf", cfg, func(s *cluster.Session) error {
				_, err := tpacf.Triolet(s, tpacfIn)
				return err
			}),
			runSweep("cutcp", cfg, func(s *cluster.Session) error {
				_, err := cutcp.Triolet(s, cutcpIn)
				return err
			}),
		)
	}
	return out
}

func runSweep(bench string, cfg cluster.Config, body func(*cluster.Session) error) SweepPoint {
	p := SweepPoint{Bench: bench, Nodes: cfg.Nodes, Cores: cfg.CoresPerNode}
	start := time.Now()
	stats, err := cluster.Run(cfg, body)
	p.Elapsed = time.Since(start)
	p.Bytes = stats.Bytes
	p.Msgs = stats.Messages
	if err != nil {
		p.Err = err.Error()
	}
	return p
}

// SweepTable renders sweep results.
func SweepTable(points []SweepPoint) string {
	var sb strings.Builder
	sb.WriteString("Real-execution sweep (Triolet implementations on the virtual cluster)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tnodes\tcores/node\twall time\tfabric bytes\tmessages\terror")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%s\n",
			p.Bench, p.Nodes, p.Cores, p.Elapsed.Round(time.Millisecond), p.Bytes, p.Msgs, p.Err)
	}
	w.Flush()
	return sb.String()
}

// FigSeriesCSV renders one scaling figure as CSV (cores, then one column
// per series), for plotting.
func FigSeriesCSV(mo *perfmodel.Model, b perfmodel.Bench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# figure %d: %s speedup over sequential C\n", b.Figure(), b)
	sb.WriteString("cores,linear")
	for _, impl := range perfmodel.Impls {
		sb.WriteString("," + strings.ReplaceAll(impl.String(), ",", ""))
	}
	sb.WriteString("\n")
	series := make([][]perfmodel.Point, len(perfmodel.Impls))
	for i, impl := range perfmodel.Impls {
		series[i] = mo.Series(b, impl)
	}
	for ci, cores := range perfmodel.CoreCounts {
		fmt.Fprintf(&sb, "%d,%d", cores, cores)
		for i := range perfmodel.Impls {
			p := series[i][ci]
			if p.Failed {
				sb.WriteString(",")
			} else {
				fmt.Fprintf(&sb, ",%.2f", p.Speedup)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig3CSV renders the sequential-time table as CSV.
func Fig3CSV(mo *perfmodel.Model) string {
	var sb strings.Builder
	sb.WriteString("# figure 3: sequential execution time (seconds)\n")
	sb.WriteString("benchmark,cpu_c,eden,triolet\n")
	for _, b := range perfmodel.Benches {
		fmt.Fprintf(&sb, "%s,%.2f,%.2f,%.2f\n", b,
			mo.SeqTime(b, perfmodel.RefC),
			mo.SeqTime(b, perfmodel.Eden),
			mo.SeqTime(b, perfmodel.Triolet))
	}
	return sb.String()
}
