package harness

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"triolet/internal/perfmodel"
)

// The full sweep, end to end: every benchmark must verify against its
// sequential reference under whatever configuration the planner picked,
// the table must render, and the calibration snapshot must persist so a
// second sweep resumes from it.
func TestAutoSweepVerifiesAndPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("full autopar sweep is slow under -short")
	}
	calib := filepath.Join(t.TempDir(), perfmodel.SnapshotName)

	res, err := AutoSweep(2, calib)
	if err != nil {
		t.Fatalf("AutoSweep: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d sweep points, want 4", len(res.Points))
	}
	if res.Resumed {
		t.Fatal("first sweep claims to have resumed a snapshot")
	}
	for _, p := range res.Points {
		if !p.OK {
			t.Errorf("%s failed: %s", p.Bench, p.Verify)
		}
		if p.Obs1 <= 0 || p.Obs2 <= 0 || p.Pred1 <= 0 || p.Pred2 <= 0 {
			t.Errorf("%s has empty timings: %+v", p.Bench, p)
		}
		if len(p.Hand) != len(handNodeCounts) || p.Best <= 0 {
			t.Errorf("%s hand sweep incomplete: %v", p.Bench, p.Hand)
		}
	}
	table := AutoTable(res)
	for _, want := range []string{"sgemm", "mri-q", "tpacf", "cutcp", "ratio"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	// The snapshot must be loadable and already warmed: a fresh Online
	// seeded from it has samples for every class the sweep exercised.
	warm, err := perfmodel.LoadOnline(calib, perfmodel.CalibratePlanning(), perfmodel.DefaultDecay)
	if err != nil {
		t.Fatalf("reload snapshot: %v", err)
	}
	for _, c := range []perfmodel.CostClass{
		perfmodel.CostSGEMM, perfmodel.CostMRIQ, perfmodel.CostTPACF, perfmodel.CostCUTCP,
	} {
		if warm.Samples(c) == 0 {
			t.Errorf("snapshot has no samples for class %v", c)
		}
	}

	// A second sweep resumes from the snapshot.
	res2, err := AutoSweep(2, calib)
	if err != nil {
		t.Fatalf("second AutoSweep: %v", err)
	}
	if !res2.Resumed {
		t.Fatal("second sweep ignored the persisted snapshot")
	}
}

// FarmPlanOf only distributes genuine multi-node farm plans and carries
// the prediction through for the trace instants.
func TestFarmPlanOfProjection(t *testing.T) {
	seq := perfmodel.Plan{Mode: perfmodel.ExecSeq, Nodes: 1,
		Workload: perfmodel.Workload{Name: "w"}}
	if fp := FarmPlanOf(seq); fp.Distribute {
		t.Fatalf("seq plan projected to a distributed farm: %+v", fp)
	}
	farm := perfmodel.Plan{Mode: perfmodel.ExecFarm, Nodes: 4, PredictedBytes: 99,
		Workload: perfmodel.Workload{Name: "w"}}
	fp := FarmPlanOf(farm)
	if !fp.Distribute || fp.Nodes != 4 || fp.PredictedBytes != 99 || fp.Label != "w" {
		t.Fatalf("farm plan projection lost fields: %+v", fp)
	}
}

func TestAutoTaskRanges(t *testing.T) {
	cover := func(elems, n int) {
		ranges := autoTaskRanges(elems, n)
		next := 0
		for _, rg := range ranges {
			if rg[0] != next || rg[1] <= rg[0] {
				t.Fatalf("ranges(%d,%d): bad range %v after %d", elems, n, rg, next)
			}
			next = rg[1]
		}
		if next != elems {
			t.Fatalf("ranges(%d,%d) cover %d elems", elems, n, next)
		}
	}
	cover(100, 7)
	cover(8, 8)
	cover(3, 16) // more tasks than elems: collapses to one per elem
	cover(1, 1)
}

// AutoGate enforces all three acceptance clauses.
func TestAutoGateClauses(t *testing.T) {
	good := AutoPoint{Bench: "b", OK: true, Ratio: 1.05, Err1: 0.5, Err2: 0.2,
		Obs2: time.Millisecond, Best: time.Millisecond}
	if err := AutoGate(&AutoSweepResult{Points: []AutoPoint{good}}, 1.10); err != nil {
		t.Fatalf("good point rejected: %v", err)
	}
	bad := good
	bad.OK = false
	if AutoGate(&AutoSweepResult{Points: []AutoPoint{bad}}, 1.10) == nil {
		t.Fatal("unverified point passed the gate")
	}
	slow := good
	slow.Ratio = 1.3
	if AutoGate(&AutoSweepResult{Points: []AutoPoint{slow}}, 1.10) == nil {
		t.Fatal("slow point passed the gate")
	}
	diverged := good
	diverged.Err1, diverged.Err2 = 0.2, 0.5
	if AutoGate(&AutoSweepResult{Points: []AutoPoint{diverged}}, 1.10) == nil {
		t.Fatal("diverging recalibration passed the gate")
	}
	converged := good
	converged.Err1, converged.Err2 = 0.08, 0.09 // worse but already within 10%
	if err := AutoGate(&AutoSweepResult{Points: []AutoPoint{converged}}, 1.10); err != nil {
		t.Fatalf("within-10%% point rejected: %v", err)
	}
}
