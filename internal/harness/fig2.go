package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"triolet/internal/iter"
)

// Fig2Table renders the live counterpart of paper Figure 2. The paper's
// figure lists the iterator library's equations; this table *derives* the
// constructor case analysis from the implementation by applying each
// operation to a witness of each constructor and reporting the output
// constructor. If a library change alters the dispatch behaviour, this
// table (and the tests pinning it) change with it.
func Fig2Table() string {
	witnesses := []struct {
		name string
		mk   func() iter.Iter[int]
	}{
		{"IdxFlat", func() iter.Iter[int] { return iter.FromSlice([]int{1, 2, 3, 4}) }},
		{"IdxFilter", func() iter.Iter[int] {
			return iter.Filter(func(x int) bool { return x%2 == 0 }, iter.FromSlice([]int{1, 2, 3, 4}))
		}},
		{"StepFlat", func() iter.Iter[int] { return iter.StepFlat(iter.StepOf([]int{1, 2, 3})) }},
		{"IdxNest", func() iter.Iter[int] {
			return iter.ConcatMap(func(x int) iter.Iter[int] { return iter.Range(x) }, iter.Range(4))
		}},
		{"StepNest", func() iter.Iter[int] {
			return iter.ConcatMap(func(x int) iter.Iter[int] { return iter.Range(x) },
				iter.StepFlat(iter.StepOf([]int{1, 2})))
		}},
	}
	ops := []struct {
		name  string
		apply func(iter.Iter[int]) iter.Iter[int]
	}{
		{"map f", func(it iter.Iter[int]) iter.Iter[int] {
			return iter.Map(func(x int) int { return x + 1 }, it)
		}},
		{"filter p", func(it iter.Iter[int]) iter.Iter[int] {
			return iter.Filter(func(x int) bool { return x > 0 }, it)
		}},
		{"concatMap f", func(it iter.Iter[int]) iter.Iter[int] {
			return iter.ConcatMap(func(x int) iter.Iter[int] { return iter.Single(x) }, it)
		}},
		{"zip _ flat", func(it iter.Iter[int]) iter.Iter[int] {
			z := iter.Zip(it, iter.FromSlice([]int{9, 9, 9, 9}))
			return iter.Map(func(p iter.Pair[int, int]) int { return p.Fst }, z)
		}},
	}

	var sb strings.Builder
	sb.WriteString("Figure 2 (derived from the implementation): output constructor of each\n")
	sb.WriteString("operation per input constructor; split? marks partitionable results\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "input\tsplit?")
	for _, op := range ops {
		fmt.Fprintf(w, "\t%s", op.name)
	}
	fmt.Fprintln(w)
	for _, wit := range witnesses {
		in := wit.mk()
		fmt.Fprintf(w, "%s\t%v", wit.name, in.CanSplit())
		for _, op := range ops {
			out := op.apply(wit.mk())
			mark := ""
			if out.CanSplit() {
				mark = "*"
			}
			fmt.Fprintf(w, "\t%v%s", out.Kind(), mark)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	sb.WriteString("(* = splittable across parallel tasks; consumers — sum, reduce, collect,\n")
	sb.WriteString("histogram — accept every constructor. See internal/iter/iter.go.)\n")
	return sb.String()
}
