package harness

import (
	"strings"
	"sync"
	"testing"

	"triolet/internal/perfmodel"
)

var (
	moOnce sync.Once
	mo     *perfmodel.Model
)

func getModel() *perfmodel.Model {
	moOnce.Do(func() { mo = perfmodel.NewModel() })
	return mo
}

func TestFig1Table(t *testing.T) {
	s := Fig1Table()
	for _, want := range []string{"Indexer", "Stepper", "Fold", "Collector", "slow", "Mutation"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1Table missing %q:\n%s", want, s)
		}
	}
}

func TestFig2TableDerivesDispatch(t *testing.T) {
	s := Fig2Table()
	// The load-bearing rows of the paper's case analysis.
	checks := []string{
		"IdxFlat",   // witnesses present
		"IdxFilter", // the simplified filter form
		"StepNest",
		"map f",
		"concatMap f",
	}
	for _, want := range checks {
		if !strings.Contains(s, want) {
			t.Errorf("Fig2Table missing %q:\n%s", want, s)
		}
	}
	// Filter over a flat indexer must appear as a splittable IdxFilter.
	if !strings.Contains(s, "IdxFilter*") {
		t.Errorf("filter-over-flat not splittable in:\n%s", s)
	}
	// Zip with a flat partner from a stepper input must lose splittability
	// (StepFlat with no asterisk).
	if !strings.Contains(s, "StepFlat\tfalse") && !strings.Contains(s, "StepFlat false") {
		// tabwriter expands tabs; just assert the row exists and the zip
		// column for StepFlat is a non-splittable StepFlat.
		lines := strings.Split(s, "\n")
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, "StepFlat") && strings.Contains(l, "false") {
				found = true
			}
		}
		if !found {
			t.Errorf("StepFlat row malformed:\n%s", s)
		}
	}
}

func TestFig3Table(t *testing.T) {
	s := Fig3Table(getModel())
	for _, want := range []string{"tpacf", "mri-q", "sgemm", "cutcp", "CPU (C)", "Eden", "Triolet"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig3Table missing %q:\n%s", want, s)
		}
	}
}

func TestFigSeriesTables(t *testing.T) {
	m := getModel()
	for _, b := range perfmodel.Benches {
		s := FigSeriesTable(m, b)
		for _, want := range []string{"linear", "C+MPI+OpenMP", "Triolet", "Eden", "128"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s series missing %q:\n%s", b, want, s)
			}
		}
	}
	// sgemm must show Eden's failure.
	if !strings.Contains(FigSeriesTable(m, perfmodel.BenchSGEMM), "FAIL") {
		t.Error("sgemm series does not show Eden failure")
	}
}

func TestSummaryTable(t *testing.T) {
	s := SummaryTable(getModel())
	if !strings.Contains(s, "Triolet % of C") || !strings.Contains(s, "23-100%") {
		t.Errorf("summary malformed:\n%s", s)
	}
}

func TestVerifyAllPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("real-execution verification in -short mode")
	}
	results := VerifyAll(VerifyConfig{Nodes: 3, Cores: 2, Scale: 1})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s failed: %s", r.Bench, r.Detail)
		}
		if r.TrioletBytes <= 0 || r.EdenBytes <= 0 {
			t.Errorf("%s: traffic not recorded: %+v", r.Bench, r)
		}
		// (Byte-volume comparisons between Eden and Triolet are scale-
		// dependent; the dedicated tests in internal/parboil/mriq cover
		// the replication claim at a scale where it holds.)
	}
	table := VerifyTable(results)
	if !strings.Contains(table, "mri-q") || !strings.Contains(table, "ok") {
		t.Errorf("verify table malformed:\n%s", table)
	}
}

func TestBreakdownTable(t *testing.T) {
	m := getModel()
	s := BreakdownTable(m, perfmodel.BenchCUTCP, perfmodel.Triolet)
	for _, want := range []string{"compute", "comm", "serial", "total", "128"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown missing %q:\n%s", want, s)
		}
	}
	// Eden's sgemm breakdown shows FAIL rows at multi-node sizes.
	se := BreakdownTable(m, perfmodel.BenchSGEMM, perfmodel.Eden)
	if !strings.Contains(se, "FAIL") {
		t.Errorf("eden sgemm breakdown missing FAIL:\n%s", se)
	}
}

func TestCSVOutputs(t *testing.T) {
	m := getModel()
	csv := Fig3CSV(m)
	if !strings.Contains(csv, "benchmark,cpu_c,eden,triolet") || !strings.Contains(csv, "mri-q,") {
		t.Errorf("Fig3CSV malformed:\n%s", csv)
	}
	s := FigSeriesCSV(m, perfmodel.BenchSGEMM)
	if !strings.Contains(s, "cores,linear,C+MPI+OpenMP,Triolet,Eden") {
		t.Errorf("series CSV header malformed:\n%s", s)
	}
	// Eden's failed points render as empty cells, not zeros.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, ",") {
		t.Errorf("failed Eden cell not empty in %q", last)
	}
}

func TestSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-execution sweep in -short mode")
	}
	points := Sweep([]int{1, 2}, 1, nil)
	if len(points) != 8 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Err != "" {
			t.Errorf("%s@%d: %s", p.Bench, p.Nodes, p.Err)
		}
		if p.Nodes == 2 && p.Bytes == 0 {
			t.Errorf("%s@2 nodes moved no bytes", p.Bench)
		}
		if p.Nodes == 1 && p.Bytes != 0 {
			t.Errorf("%s@1 node moved %d bytes; single node should stay local", p.Bench, p.Bytes)
		}
	}
	table := SweepTable(points)
	if !strings.Contains(table, "fabric bytes") {
		t.Errorf("sweep table malformed:\n%s", table)
	}
}

func TestVerifyDefaultsApplied(t *testing.T) {
	cfg := DefaultVerifyConfig()
	if cfg.Nodes != 4 || cfg.Cores != 2 || cfg.Scale != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
