// Package harness regenerates the paper's tables and figures as text: the
// Figure 1 feature matrix, the Figure 3 sequential-time bars, the scaling
// series of Figures 4, 5, 7 and 8, and the abstract's headline claims. It
// also runs the real (virtual-cluster) implementations at laptop scale to
// verify cross-implementation agreement and report measured traffic —
// the evidence EXPERIMENTS.md records.
package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/parboil"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/perfmodel"
)

// Fig1Table renders the paper's Figure 1: the feature matrix of fusible
// virtual data structure encodings.
func Fig1Table() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: features of fusible virtual data structure encodings\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\tParallel\tZip\tFilter\tNested traversal\tMutation")
	for _, r := range iter.FeatureMatrix() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Encoding, r.Parallel, r.Zip, r.Filter, r.Nested, r.Mutation)
	}
	w.Flush()
	return sb.String()
}

// Fig3Table renders Figure 3: modeled sequential execution time of each
// benchmark under the C-style, Eden-style, and Triolet kernels at paper
// scale, from unit costs measured on this machine.
func Fig3Table(mo *perfmodel.Model) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: sequential execution time (seconds, modeled at paper scale\n")
	sb.WriteString("from kernel unit costs measured on this machine)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "\tCPU (C)\tEden\tTriolet\t")
	for _, b := range []perfmodel.Bench{perfmodel.BenchTPACF, perfmodel.BenchMRIQ, perfmodel.BenchSGEMM, perfmodel.BenchCUTCP} {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t\n", b,
			mo.SeqTime(b, perfmodel.RefC),
			mo.SeqTime(b, perfmodel.Eden),
			mo.SeqTime(b, perfmodel.Triolet))
	}
	w.Flush()
	return sb.String()
}

// FigSeriesTable renders one scaling figure (4, 5, 7 or 8): speedup over
// sequential C at each core count for linear, C+MPI+OpenMP, Triolet, Eden.
func FigSeriesTable(mo *perfmodel.Model, b perfmodel.Bench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %d: scalability and performance of %s (speedup over sequential C)\n",
		b.Figure(), b)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "cores")
	for _, c := range perfmodel.CoreCounts {
		fmt.Fprintf(w, "\t%d", c)
	}
	fmt.Fprintln(w, "\t")
	fmt.Fprint(w, "linear")
	for _, c := range perfmodel.CoreCounts {
		fmt.Fprintf(w, "\t%d.0", c)
	}
	fmt.Fprintln(w, "\t")
	for _, impl := range perfmodel.Impls {
		fmt.Fprintf(w, "%s", impl)
		for _, p := range mo.Series(b, impl) {
			if p.Failed {
				fmt.Fprint(w, "\tFAIL")
			} else {
				fmt.Fprintf(w, "\t%.1f", p.Speedup)
			}
		}
		fmt.Fprintln(w, "\t")
	}
	w.Flush()
	return sb.String()
}

// BreakdownTable decomposes one benchmark's modeled Triolet time into its
// components at each cluster size — the overhead-attribution view behind
// the paper's statements like "40 % of Triolet's overhead … attributable
// to the garbage collector" (§4.3) and "60 % of Triolet's execution time
// … arises from allocation overhead" (§4.5). Serial covers master-side
// serialization, allocation, and non-parallelized work.
func BreakdownTable(mo *perfmodel.Model, b perfmodel.Bench, impl perfmodel.Impl) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Time breakdown: %s, %s (seconds)\n", b, impl)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "cores\tcompute\tcomm\tserial\ttotal\t")
	for _, cores := range perfmodel.CoreCounts {
		nodes, perNode := perfmodel.NodesFor(cores)
		bd := mo.At(b, impl, nodes, perNode)
		if bd.Failed {
			fmt.Fprintf(w, "%d\tFAIL\t\t\t\t\n", cores)
			continue
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t\n",
			cores, bd.Compute, bd.Comm, bd.Serial, bd.Total())
	}
	w.Flush()
	return sb.String()
}

// SummaryTable renders the abstract's headline claims: Triolet's fraction
// of C+MPI+OpenMP performance and its speedup over sequential C at 128
// cores (paper: 23–100 % and 9.6–99×).
func SummaryTable(mo *perfmodel.Model) string {
	var sb strings.Builder
	sb.WriteString("Headline claims at 128 cores (8 nodes x 16 cores)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "\tTriolet speedup\tC+MPI+OpenMP speedup\tTriolet % of C\tEden speedup\t")
	for _, b := range perfmodel.Benches {
		tri := mo.SpeedupAt128(b, perfmodel.Triolet)
		ref := mo.SpeedupAt128(b, perfmodel.RefC)
		ed := mo.SpeedupAt128(b, perfmodel.Eden)
		edStr := fmt.Sprintf("%.1f", ed)
		if ed == 0 {
			edStr = "FAIL"
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f%%\t%s\t\n", b, tri, ref, 100*tri/ref, edStr)
	}
	w.Flush()
	sb.WriteString("paper: Triolet at 23-100% of C+MPI+OpenMP; 9.6-99x over sequential C\n")
	return sb.String()
}

// VerifyResult is one benchmark's real-execution check at laptop scale.
type VerifyResult struct {
	Bench        string
	OK           bool
	Detail       string
	TrioletBytes int64
	EdenBytes    int64
	Elapsed      time.Duration
}

// VerifyConfig controls the real-execution verification scale.
type VerifyConfig struct {
	Nodes, Cores int
	Scale        int // 1 = default laptop scale; larger multiplies input sizes
}

// DefaultVerifyConfig runs 4 virtual nodes of 2 cores at small scale.
func DefaultVerifyConfig() VerifyConfig { return VerifyConfig{Nodes: 4, Cores: 2, Scale: 1} }

// VerifyAll runs every benchmark's Triolet, Eden, and reference
// implementations on the virtual cluster and checks them against the
// sequential kernels.
func VerifyAll(cfg VerifyConfig) []VerifyResult {
	if cfg.Nodes <= 0 || cfg.Cores <= 0 {
		cfg = DefaultVerifyConfig()
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return []VerifyResult{
		verifyMRIQ(cfg),
		verifySGEMM(cfg),
		verifyTPACF(cfg),
		verifyCUTCP(cfg),
	}
}

// VerifyTable renders verification results.
func VerifyTable(results []VerifyResult) string {
	var sb strings.Builder
	sb.WriteString("Real-execution verification on the virtual cluster\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tstatus\ttriolet bytes\teden bytes\telapsed\tdetail")
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%s\n",
			r.Bench, status, r.TrioletBytes, r.EdenBytes, r.Elapsed.Round(time.Millisecond), r.Detail)
	}
	w.Flush()
	return sb.String()
}

func verifyMRIQ(cfg VerifyConfig) VerifyResult {
	start := time.Now()
	res := VerifyResult{Bench: "mri-q"}
	in := mriq.Gen(2000*cfg.Scale, 256, 101)
	want := mriq.Seq(in)
	wr, wi := mriq.SplitQ(want)

	var tq []mriq.QPoint
	tStats, err := cluster.Run(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores},
		func(s *cluster.Session) error {
			q, err := mriq.Triolet(s, in)
			tq = q
			return err
		})
	if err != nil {
		res.Detail = "triolet: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.TrioletBytes = tStats.Bytes

	var eq []mriq.QPoint
	eStats, err := eden.Run(eden.Config{Processes: cfg.Nodes * cfg.Cores, ProcsPerNode: cfg.Cores},
		func(m *eden.Master) error {
			q, err := mriq.Eden(m, in)
			eq = q
			return err
		})
	if err != nil {
		res.Detail = "eden: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.EdenBytes = eStats.Bytes

	rq, err := mriq.Ref(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores}, in)
	if err != nil {
		res.Detail = "ref: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	worst := 0.0
	for _, got := range [][]mriq.QPoint{tq, eq, rq} {
		gr, gi := mriq.SplitQ(got)
		worst = max(worst, parboil.MaxAbsDiff(gr, wr), parboil.MaxAbsDiff(gi, wi))
	}
	res.OK = worst == 0
	res.Detail = fmt.Sprintf("max |diff| vs sequential C: %g", worst)
	res.Elapsed = time.Since(start)
	return res
}

func verifySGEMM(cfg VerifyConfig) VerifyResult {
	start := time.Now()
	res := VerifyResult{Bench: "sgemm"}
	n := 96 * cfg.Scale
	in := sgemm.Gen(n, n, n, 103)
	want := sgemm.Seq(in)

	var tc, ec [](float32)
	tStats, err := cluster.Run(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores},
		func(s *cluster.Session) error {
			m, err := sgemm.Triolet(s, in)
			tc = m.Data
			return err
		})
	if err != nil {
		res.Detail = "triolet: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.TrioletBytes = tStats.Bytes

	eStats, err := eden.Run(eden.Config{Processes: cfg.Nodes * cfg.Cores, ProcsPerNode: cfg.Cores},
		func(m *eden.Master) error {
			c, err := sgemm.Eden(m, in)
			ec = c.Data
			return err
		})
	if err != nil {
		res.Detail = "eden: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.EdenBytes = eStats.Bytes

	rc, err := sgemm.Ref(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores}, in)
	if err != nil {
		res.Detail = "ref: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	worst := max(parboil.MaxAbsDiff(tc, want.Data),
		parboil.MaxAbsDiff(ec, want.Data),
		parboil.MaxAbsDiff(rc.Data, want.Data))
	res.OK = worst == 0
	res.Detail = fmt.Sprintf("max |diff| vs sequential C: %g", worst)
	res.Elapsed = time.Since(start)
	return res
}

func verifyTPACF(cfg VerifyConfig) VerifyResult {
	start := time.Now()
	res := VerifyResult{Bench: "tpacf"}
	in := tpacf.Gen(100*cfg.Scale, 12, 16, 107)
	want := tpacf.Seq(in)

	var tr, er tpacf.Result
	tStats, err := cluster.Run(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores},
		func(s *cluster.Session) error {
			r, err := tpacf.Triolet(s, in)
			tr = r
			return err
		})
	if err != nil {
		res.Detail = "triolet: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.TrioletBytes = tStats.Bytes

	eStats, err := eden.Run(eden.Config{Processes: cfg.Nodes * cfg.Cores, ProcsPerNode: cfg.Cores},
		func(m *eden.Master) error {
			r, err := tpacf.Eden(m, in)
			er = r
			return err
		})
	if err != nil {
		res.Detail = "eden: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.EdenBytes = eStats.Bytes

	rr, err := tpacf.Ref(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores}, in)
	if err != nil {
		res.Detail = "ref: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	ok := true
	for _, got := range []tpacf.Result{tr, er, rr} {
		ok = ok && parboil.EqualInt64(got.DD, want.DD) &&
			parboil.EqualInt64(got.DRS, want.DRS) &&
			parboil.EqualInt64(got.RRS, want.RRS)
	}
	res.OK = ok
	res.Detail = "integer histograms compared exactly"
	res.Elapsed = time.Since(start)
	return res
}

func verifyCUTCP(cfg VerifyConfig) VerifyResult {
	start := time.Now()
	res := VerifyResult{Bench: "cutcp"}
	in := cutcp.Gen(300*cfg.Scale, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 109)
	want := cutcp.Seq(in)

	var tg, eg []float32
	tStats, err := cluster.Run(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores},
		func(s *cluster.Session) error {
			g, err := cutcp.Triolet(s, in)
			tg = g
			return err
		})
	if err != nil {
		res.Detail = "triolet: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.TrioletBytes = tStats.Bytes

	eStats, err := eden.Run(eden.Config{Processes: cfg.Nodes * cfg.Cores, ProcsPerNode: cfg.Cores},
		func(m *eden.Master) error {
			g, err := cutcp.Eden(m, in)
			eg = g
			return err
		})
	if err != nil {
		res.Detail = "eden: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	res.EdenBytes = eStats.Bytes

	rg, err := cutcp.Ref(cluster.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores}, in)
	if err != nil {
		res.Detail = "ref: " + err.Error()
		res.Elapsed = time.Since(start)
		return res
	}
	worst := max(parboil.MaxRelDiff(tg, want, 1e-3),
		parboil.MaxRelDiff(eg, want, 1e-3),
		parboil.MaxRelDiff(rg, want, 1e-3))
	res.OK = worst < 5e-3
	res.Detail = fmt.Sprintf("max rel diff vs sequential C: %g (float32 summation order)", worst)
	res.Elapsed = time.Since(start)
	return res
}
