package transport

import (
	"errors"
	"testing"
	"time"
)

// drain pulls every currently queued message at dst, waiting briefly for
// held (reordered/delayed) deliveries to land.
func drain(t *testing.T, f *Fabric, dst int, wait time.Duration) []Message {
	t.Helper()
	deadline := time.Now().Add(wait)
	var out []Message
	for {
		m, ok, err := f.TryRecv(dst, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out = append(out, m)
			continue
		}
		if time.Now().After(deadline) {
			return out
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestFaultDeterministicDrops(t *testing.T) {
	// The same seed and single-goroutine send sequence must fault
	// identically across two independent fabrics.
	run := func() (delivered int, stats FaultStats) {
		f := New(Config{Ranks: 2, Fault: &FaultConfig{
			Seed:    42,
			Default: FaultProbs{Drop: 0.3},
		}})
		defer f.Close()
		for i := 0; i < 200; i++ {
			if err := f.Send(0, 1, i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for {
			_, ok, err := f.TryRecv(1, AnySource, AnyTag)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			delivered++
		}
		return delivered, f.Stats().Faults
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("runs diverged: %d/%+v vs %d/%+v", d1, s1, d2, s2)
	}
	if s1.Dropped == 0 || d1+int(s1.Dropped) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", d1, s1.Dropped)
	}
}

func TestFaultDuplicate(t *testing.T) {
	f := New(Config{Ranks: 2, Fault: &FaultConfig{
		Seed:    7,
		Default: FaultProbs{Duplicate: 1},
	}})
	defer f.Close()
	if err := f.Send(0, 1, 5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	msgs := drain(t, f, 1, 50*time.Millisecond)
	if len(msgs) != 2 {
		t.Fatalf("got %d copies, want 2", len(msgs))
	}
	if f.Stats().Faults.Duplicated != 1 {
		t.Fatalf("stats = %+v", f.Stats().Faults)
	}
	// The copies must not alias one buffer.
	msgs[0].Payload[0] = 'y'
	if msgs[1].Payload[0] != 'x' {
		t.Fatal("duplicate aliases original payload")
	}
}

func TestFaultCorrupt(t *testing.T) {
	f := New(Config{Ranks: 2, Fault: &FaultConfig{
		Seed:    1,
		Default: FaultProbs{Corrupt: 1},
	}})
	defer f.Close()
	orig := []byte{0, 0, 0, 0}
	if err := f.Send(0, 1, 0, orig); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := range m.Payload {
		for b := 0; b < 8; b++ {
			if m.Payload[i]&(1<<b) != 0 {
				flipped++
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
	for _, b := range orig {
		if b != 0 {
			t.Fatal("corruption mutated the caller's buffer")
		}
	}
}

func TestFaultReorderDeliversEventually(t *testing.T) {
	f := New(Config{Ranks: 2, Fault: &FaultConfig{
		Seed:          3,
		Default:       FaultProbs{Reorder: 0.5},
		MaxExtraDelay: time.Millisecond,
	}})
	defer f.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := f.Send(0, 1, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := drain(t, f, 1, 200*time.Millisecond)
	if len(msgs) != n {
		t.Fatalf("delivered %d of %d", len(msgs), n)
	}
	if f.Stats().Faults.Reordered == 0 {
		t.Fatal("no reorder faults fired at p=0.5 over 50 sends")
	}
}

func TestFaultCrashSchedule(t *testing.T) {
	f := New(Config{Ranks: 3, Fault: &FaultConfig{
		Seed:    9,
		Crashes: []Crash{{Rank: 1, AfterSends: 2}},
	}})
	defer f.Close()
	// Rank 1 gets two sends, then dies on the third.
	for i := 0; i < 2; i++ {
		if err := f.Send(1, 0, i, []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Send(1, 0, 2, []byte("doomed")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third send err = %v, want ErrCrashed", err)
	}
	if !f.Crashed(1) {
		t.Fatal("rank 1 not marked crashed")
	}
	// Its own receives fail with ErrCrashed, not ErrClosed.
	if _, err := f.Recv(1, AnySource, AnyTag); !errors.Is(err, ErrCrashed) {
		t.Fatalf("recv at crashed rank err = %v", err)
	}
	// Traffic to it disappears silently: the sender sees success.
	if err := f.Send(0, 1, 0, []byte("into the void")); err != nil {
		t.Fatalf("send to crashed rank err = %v, want nil (silent loss)", err)
	}
	// Survivors are unaffected.
	if err := f.Send(0, 2, 0, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if m, err := f.Recv(2, 0, 0); err != nil || string(m.Payload) != "alive" {
		t.Fatalf("survivor recv = %v, %v", m, err)
	}
	if got := f.Stats().Faults.CrashLost; got != 2 {
		t.Fatalf("CrashLost = %d, want 2 (dying send + silent loss)", got)
	}
}

func TestFaultPauseHoldsInbox(t *testing.T) {
	f := New(Config{Ranks: 2, Fault: &FaultConfig{
		Seed:   11,
		Pauses: []Pause{{Rank: 1, AfterDeliveries: 1, Duration: 20 * time.Millisecond}},
	}})
	defer f.Close()
	// First message lands immediately (quota not yet reached).
	if err := f.Send(0, 1, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.TryRecv(1, 0, 0); !ok {
		t.Fatal("pre-pause message not delivered")
	}
	// Second message activates the pause and is held.
	if err := f.Send(0, 1, 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.TryRecv(1, 0, 0); ok {
		t.Fatal("paused message delivered immediately")
	}
	msgs := drain(t, f, 1, 500*time.Millisecond)
	if len(msgs) != 1 || string(msgs[0].Payload) != "b" {
		t.Fatalf("after pause got %v", msgs)
	}
	if f.Stats().Faults.Paused == 0 {
		t.Fatal("pause not counted")
	}
}

func TestCrashRankIdempotent(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	f.CrashRank(1)
	f.CrashRank(1) // second call must be a no-op, not a panic
	if !f.Crashed(1) || f.Crashed(0) {
		t.Fatal("crash flags wrong")
	}
	if err := f.Send(1, 0, 0, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send from crashed rank err = %v", err)
	}
}
