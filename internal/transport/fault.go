package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Deterministic fault injection. The paper's runtime assumes a lossless MPI
// fabric (§3.4); real clusters bend that assumption, so the virtual fabric
// can be configured to misbehave on purpose: drop, duplicate, reorder,
// bit-corrupt, or delay messages with seeded per-link probabilities, pause
// a rank's inbox for a window (a GC stall or an overloaded node), or crash
// a rank outright partway through a run. The retry/ack layer in
// internal/mpi exists to survive exactly these faults; the chaos suites in
// internal/parboil prove the benchmarks produce identical results on a
// faulty fabric.
//
// Determinism: all probability draws come from one seeded rand.Rand behind
// a mutex, so a single-goroutine send sequence faults identically across
// runs. Multi-goroutine runs interleave draws nondeterministically but
// remain reproducible in distribution; tests that need exact replay drive
// the fabric from one goroutine.

// FaultProbs are per-message fault probabilities in [0, 1] for one link.
type FaultProbs struct {
	// Drop loses the message entirely.
	Drop float64
	// Duplicate delivers the message twice.
	Duplicate float64
	// Reorder holds the message briefly so later sends overtake it.
	Reorder float64
	// Corrupt flips one random bit of the payload in flight.
	Corrupt float64
	// Delay holds the message for a random extra duration without
	// reordering intent (slow link).
	Delay float64
}

// Link identifies one directed fabric edge.
type Link struct{ Src, Dst int }

// Pause freezes deliveries into Rank's inbox for Duration once the rank
// has received AfterDeliveries messages — a stalled or overloaded node.
type Pause struct {
	Rank            int
	AfterDeliveries int64
	Duration        time.Duration
}

// Crash kills Rank after it has completed AfterSends sends: the next send
// it attempts fails with ErrCrashed, its mailbox closes (pending receives
// return ErrCrashed), and all traffic to or from it is silently lost —
// a process death, not a connection error the sender can observe directly.
type Crash struct {
	Rank       int
	AfterSends int64
}

// FaultConfig enables fault injection on a fabric.
type FaultConfig struct {
	// Seed feeds the deterministic probability source.
	Seed int64
	// Default applies to every link without an explicit override.
	Default FaultProbs
	// Links overrides Default per directed edge.
	Links map[Link]FaultProbs
	// MaxExtraDelay bounds the random hold applied by Reorder and Delay
	// faults (default 2ms).
	MaxExtraDelay time.Duration
	// Pauses and Crashes are per-rank schedules.
	Pauses  []Pause
	Crashes []Crash
}

// FaultStats counts injected faults, surfaced through Fabric.Stats.
type FaultStats struct {
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Corrupted  int64
	Delayed    int64
	Paused     int64
	// CrashLost counts messages silently lost because an endpoint was
	// crashed (distinct from the sender-visible ErrCrashed of the dying
	// rank's own send).
	CrashLost int64
}

// injector owns a fabric's fault state.
type injector struct {
	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand
	f         *Fabric
	sends     []int64     // per-rank completed send count
	delivered []int64     // per-rank inbound message count
	pauseAt   [][]Pause   // pending pause schedules per rank
	pausedTil []time.Time // active pause window end per rank
	crashAt   []int64     // send count at which each rank dies (-1 = never)
	stats     FaultStats
}

func newInjector(cfg FaultConfig, f *Fabric) *injector {
	if cfg.MaxExtraDelay <= 0 {
		cfg.MaxExtraDelay = 2 * time.Millisecond
	}
	in := &injector{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		f:         f,
		sends:     make([]int64, f.cfg.Ranks),
		delivered: make([]int64, f.cfg.Ranks),
		pauseAt:   make([][]Pause, f.cfg.Ranks),
		pausedTil: make([]time.Time, f.cfg.Ranks),
		crashAt:   make([]int64, f.cfg.Ranks),
	}
	for i := range in.crashAt {
		in.crashAt[i] = -1
	}
	for _, p := range cfg.Pauses {
		if p.Rank >= 0 && p.Rank < f.cfg.Ranks {
			in.pauseAt[p.Rank] = append(in.pauseAt[p.Rank], p)
		}
	}
	for _, c := range cfg.Crashes {
		if c.Rank >= 0 && c.Rank < f.cfg.Ranks {
			if in.crashAt[c.Rank] < 0 || c.AfterSends < in.crashAt[c.Rank] {
				in.crashAt[c.Rank] = c.AfterSends
			}
		}
	}
	return in
}

// probsFor resolves the effective probabilities of one link.
func (in *injector) probsFor(src, dst int) FaultProbs {
	if p, ok := in.cfg.Links[Link{Src: src, Dst: dst}]; ok {
		return p
	}
	return in.cfg.Default
}

// apply runs the fault machinery for one send that has already been
// metered. handled=true means apply consumed the message (delivered it,
// possibly mutated/duplicated/late, or lost it) and the send must return
// err as-is; handled=false means no fault fired and the send proceeds down
// the normal path routing pl — which is payload itself unless a corrupt
// fault on a shared payload forced a copy-on-write (a shared buffer is the
// sender's backing array; in-flight corruption must never damage it).
func (in *injector) apply(src, dst, tag int, payload []byte, shared bool) (pl []byte, handled bool, err error) {
	in.mu.Lock()

	// Crash schedule: the sender dies when it attempts the send after its
	// quota. The dying send's message is lost.
	if quota := in.crashAt[src]; quota >= 0 && in.sends[src] >= quota {
		in.stats.CrashLost++
		in.mu.Unlock()
		in.f.CrashRank(src)
		return payload, true, ErrCrashed
	}
	in.sends[src]++

	// Traffic to an already-crashed rank vanishes silently; the sender
	// only finds out through its ack timeout.
	if in.f.Crashed(dst) {
		in.stats.CrashLost++
		in.mu.Unlock()
		return payload, true, nil
	}

	p := in.probsFor(src, dst)
	if in.rng.Float64() < p.Drop {
		in.stats.Dropped++
		in.mu.Unlock()
		return payload, true, nil
	}
	if in.rng.Float64() < p.Corrupt && len(payload) > 0 {
		if shared {
			payload = append([]byte(nil), payload...)
		}
		bit := in.rng.Intn(len(payload) * 8)
		payload[bit/8] ^= 1 << (bit % 8)
		in.stats.Corrupted++
	}
	copies := 1
	if in.rng.Float64() < p.Duplicate {
		copies = 2
		in.stats.Duplicated++
	}

	// Inbox pause: activate any pending schedule whose delivery quota has
	// been reached (the quota counts completed deliveries, so the first
	// held message is quota+1), then route through the hold window while it
	// is open.
	// Pause-window bookkeeping follows the fabric clock, so an injected
	// simulated clock drives pause expiry the same way it drives the
	// reliable layer's ack deadlines.
	now := in.f.Clock().Now()
	pending := in.pauseAt[dst]
	for i := 0; i < len(pending); {
		if in.delivered[dst] >= pending[i].AfterDeliveries {
			end := now.Add(pending[i].Duration)
			if end.After(in.pausedTil[dst]) {
				in.pausedTil[dst] = end
			}
			pending = append(pending[:i], pending[i+1:]...)
		} else {
			i++
		}
	}
	in.pauseAt[dst] = pending
	in.delivered[dst]++

	var hold time.Duration
	if until := in.pausedTil[dst]; until.After(now) {
		hold = until.Sub(now)
		in.stats.Paused++
	}
	if in.rng.Float64() < p.Reorder {
		hold += time.Duration(in.rng.Int63n(int64(in.cfg.MaxExtraDelay)))
		in.stats.Reordered++
	}
	if in.rng.Float64() < p.Delay {
		hold += time.Duration(in.rng.Int63n(int64(in.cfg.MaxExtraDelay)))
		in.stats.Delayed++
	}
	in.mu.Unlock()

	if copies == 1 && hold == 0 {
		return payload, false, nil // clean send: normal path
	}
	for i := 0; i < copies; i++ {
		cp := payload
		if i == 1 {
			cp = append([]byte(nil), payload...)
		}
		if hold > 0 {
			f := in.f
			//lint:allow fabrictime delayed redelivery is scheduled in real time; the hold length derives from fabric-clock windows
			time.AfterFunc(hold, func() { f.route(src, dst, tag, cp) }) //nolint:errcheck
		} else if err := in.f.route(src, dst, tag, cp); err != nil {
			return payload, true, err
		}
	}
	return payload, true, nil
}

// snapshot returns the current fault counters.
func (in *injector) snapshot() FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
