package transport

import (
	"bytes"
	"testing"
)

// TestSendSharedDeliversAndMeters: SendShared is wire-identical to Send —
// same delivery, same byte accounting — it only changes the ownership
// contract of the payload buffer.
func TestSendSharedDeliversAndMeters(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	payload := []byte("shared payload bytes")

	before := f.Stats()
	if err := f.Endpoint(0).SendShared(1, 5, payload); err != nil {
		t.Fatal(err)
	}
	m, ok, err := f.Endpoint(1).TryRecv(0, 5)
	if err != nil || !ok {
		t.Fatalf("shared send not delivered: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatalf("delivered %q, want %q", m.Payload, payload)
	}
	after := f.Stats()
	if after.Messages-before.Messages != 1 {
		t.Fatalf("metered %d messages, want 1", after.Messages-before.Messages)
	}
	if got := after.Bytes - before.Bytes; got != int64(len(payload)) {
		t.Fatalf("metered %d bytes, want %d", got, len(payload))
	}
	if got := after.SentBytes[0] - before.SentBytes[0]; got != int64(len(payload)) {
		t.Fatalf("sender metered %d bytes, want %d", got, len(payload))
	}
}

// TestSendSharedCorruptFaultCopiesFirst: when the fault injector decides to
// corrupt a shared payload, it must flip bits in a private copy — the
// caller's aliased buffer (which may be live application data encoded with
// serial.Raw) stays byte-for-byte intact, while the receiver sees the
// corrupted copy.
func TestSendSharedCorruptFaultCopiesFirst(t *testing.T) {
	f := New(Config{
		Ranks: 2,
		Fault: &FaultConfig{Seed: 9, Default: FaultProbs{Corrupt: 1}},
	})
	defer f.Close()
	payload := []byte("do not mutate this buffer")
	orig := append([]byte(nil), payload...)

	if err := f.Endpoint(0).SendShared(1, 5, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatalf("corrupt fault mutated the shared buffer: %q, want %q", payload, orig)
	}
	m, ok, err := f.Endpoint(1).TryRecv(0, 5)
	if err != nil || !ok {
		t.Fatalf("corrupted message not delivered: ok=%v err=%v", ok, err)
	}
	if bytes.Equal(m.Payload, orig) {
		t.Fatal("corrupt fault with probability 1 delivered pristine bytes")
	}
}
