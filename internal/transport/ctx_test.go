package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Cancellation contract for the fabric: a receive blocked on an empty
// mailbox returns ctx.Err() promptly (the 100ms bound below holds under
// -race), a message already delivered wins over a cancelled context, and
// no waiter goroutine is left behind.

const cancelBound = 100 * time.Millisecond

func TestRecvCtxUnblocksOnCancel(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.RecvCtx(ctx, 0, 1, 7)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the receiver block
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RecvCtx after cancel = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > cancelBound {
			t.Fatalf("RecvCtx took %v to observe cancel, want < %v", d, cancelBound)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvCtx did not unblock on cancel")
	}
}

func TestRecvCtxDeadline(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.RecvCtx(ctx, 0, 1, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RecvCtx = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > cancelBound {
		t.Fatalf("RecvCtx overshot its deadline by %v", d-10*time.Millisecond)
	}
}

// A message that has already arrived must be returned even if the context
// is cancelled: delivery wins, so cancel/receive races never drop data.
func TestRecvCtxDeliveredMessageWinsOverCancel(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if err := f.Send(1, 0, 7, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	m, err := f.RecvCtx(ctx, 0, 1, 7)
	if err != nil {
		t.Fatalf("RecvCtx with queued message = %v, want the message", err)
	}
	if string(m.Payload) != "kept" {
		t.Fatalf("payload = %q", m.Payload)
	}
	// With the queue drained, the cancelled context now surfaces.
	if _, err := f.RecvCtx(ctx, 0, 1, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecvCtx on empty queue = %v, want context.Canceled", err)
	}
}

func TestSendCtxCancelled(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.SendCtx(ctx, 0, 1, 7, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("SendCtx = %v, want context.Canceled", err)
	}
	// The cancelled send must not have been delivered.
	if _, ok, _ := f.TryRecv(1, 0, 7); ok {
		t.Fatal("cancelled SendCtx delivered its message")
	}
}

func TestRecvCtxNilAndBackgroundBehaveLikeRecv(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if err := f.Send(1, 0, 3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if m, err := f.RecvCtx(nil, 0, 1, 3); err != nil || string(m.Payload) != "a" {
		t.Fatalf("RecvCtx(nil) = %v, %v", m, err)
	}
	if err := f.Send(1, 0, 3, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if m, err := f.RecvCtx(context.Background(), 0, 1, 3); err != nil || string(m.Payload) != "b" {
		t.Fatalf("RecvCtx(Background) = %v, %v", m, err)
	}
}

// Fabric closure must still unblock a context-carrying receive.
func TestRecvCtxUnblocksOnClose(t *testing.T) {
	f := New(Config{Ranks: 2})
	done := make(chan error, 1)
	go func() {
		_, err := f.RecvCtx(context.Background(), 0, 1, 7)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("RecvCtx after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvCtx did not unblock on close")
	}
}

// Many concurrent receivers cancelled together must all return promptly —
// the AfterFunc broadcast wakes every waiter, not just one.
func TestRecvCtxManyWaitersAllCancel(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 16
	done := make(chan error, n)
	for i := range n {
		go func() {
			_, err := f.RecvCtx(ctx, 0, 1, i)
			done <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	deadline := time.After(2 * time.Second)
	for range n {
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("waiter returned %v, want context.Canceled", err)
			}
		case <-deadline:
			t.Fatal("a waiter never unblocked after cancel")
		}
	}
}
