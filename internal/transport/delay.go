package transport

import (
	"sync"
	"time"
)

// Optional wire-delay simulation. With a DelayConfig attached, every
// message is held for latency + size/bandwidth before becoming visible to
// the receiver, so real executions on the virtual cluster exhibit actual
// communication/computation overlap and comm-bound scaling — not just
// metered byte counts. Delivery order between each (src, dst) pair is
// preserved (MPI's non-overtaking rule) by running one delivery queue per
// edge.
//
// The delay applies between Send and receivability; Send itself stays
// non-blocking (buffered-send semantics).

// DelayConfig models the wire.
type DelayConfig struct {
	// Latency is charged per message.
	Latency time.Duration
	// BytesPerSec divides the payload size for the serialization/wire
	// component; 0 means latency only.
	BytesPerSec float64
}

// delayFor computes the hold time for one payload.
func (d DelayConfig) delayFor(bytes int) time.Duration {
	t := d.Latency
	if d.BytesPerSec > 0 {
		t += time.Duration(float64(bytes) / d.BytesPerSec * float64(time.Second))
	}
	return t
}

// edgeQueue delivers messages of one (src, dst) pair in order after their
// delays.
type edgeQueue struct {
	mu      sync.Mutex
	pending []delayedMsg
	running bool
}

type delayedMsg struct {
	dst     int
	tag     int
	payload []byte
	readyAt time.Time
}

// delayer owns the per-edge queues of one fabric.
type delayer struct {
	cfg   DelayConfig
	f     *Fabric
	mu    sync.Mutex
	edges map[[2]int]*edgeQueue
	wg    sync.WaitGroup
}

func newDelayer(cfg DelayConfig, f *Fabric) *delayer {
	return &delayer{cfg: cfg, f: f, edges: map[[2]int]*edgeQueue{}}
}

// submit schedules a delivery. The payload has already been copied by the
// caller.
func (d *delayer) submit(src, dst, tag int, payload []byte) {
	key := [2]int{src, dst}
	d.mu.Lock()
	eq, ok := d.edges[key]
	if !ok {
		eq = &edgeQueue{}
		d.edges[key] = eq
	}
	d.mu.Unlock()

	eq.mu.Lock()
	eq.pending = append(eq.pending, delayedMsg{
		dst: dst, tag: tag, payload: payload,
		readyAt: d.f.Clock().Now().Add(d.cfg.delayFor(len(payload))),
	})
	if !eq.running {
		eq.running = true
		d.wg.Add(1)
		go d.drain(src, eq)
	}
	eq.mu.Unlock()
}

// drain delivers an edge's messages in order, sleeping to each readyAt.
func (d *delayer) drain(src int, eq *edgeQueue) {
	defer d.wg.Done()
	for {
		eq.mu.Lock()
		if len(eq.pending) == 0 {
			eq.running = false
			eq.mu.Unlock()
			return
		}
		m := eq.pending[0]
		eq.pending = eq.pending[1:]
		eq.mu.Unlock()

		if wait := m.readyAt.Sub(d.f.Clock().Now()); wait > 0 {
			time.Sleep(wait) //lint:allow fabrictime realizes simulated latency as real elapsed time; the wait itself is computed on the fabric clock
		}
		d.f.deliver(src, m.dst, m.tag, m.payload)
	}
}

// Wait blocks until every in-flight delayed message has been delivered.
func (d *delayer) Wait() { d.wg.Wait() }
