package transport

import (
	"errors"
	"sync"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if err := f.Send(0, 1, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 0 || m.Tag != 7 || string(m.Payload) != "hi" {
		t.Fatalf("msg = %+v", m)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	buf := []byte{1, 2, 3}
	if err := f.Send(0, 1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after send: receiver must not observe it
	m, err := f.Recv(1, AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if m.Payload[0] != 1 {
		t.Fatal("payload aliased sender buffer: shared-memory leak across nodes")
	}
}

func TestTagMatching(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if err := f.Send(0, 1, 5, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, 6, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Receive tag 6 first even though tag 5 arrived first.
	m, err := f.Recv(1, 0, 6)
	if err != nil || string(m.Payload) != "b" {
		t.Fatalf("tag 6 got %+v err %v", m, err)
	}
	m, err = f.Recv(1, 0, 5)
	if err != nil || string(m.Payload) != "a" {
		t.Fatalf("tag 5 got %+v err %v", m, err)
	}
}

func TestSourceMatching(t *testing.T) {
	f := New(Config{Ranks: 3})
	defer f.Close()
	if err := f.Send(1, 0, 0, []byte("from1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 0, 0, []byte("from2")); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(0, 2, AnyTag)
	if err != nil || string(m.Payload) != "from2" {
		t.Fatalf("src 2 got %+v err %v", m, err)
	}
	m, err = f.Recv(0, AnySource, AnyTag)
	if err != nil || string(m.Payload) != "from1" {
		t.Fatalf("any src got %+v err %v", m, err)
	}
}

func TestNonOvertaking(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	for i := range 10 {
		if err := f.Send(0, 1, 3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 10 {
		m, err := f.Recv(1, 0, 3)
		if err != nil || m.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order: %+v err %v", i, m, err)
		}
	}
}

func TestBlockingRecvWakesOnSend(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	done := make(chan Message, 1)
	go func() {
		m, err := f.Recv(1, 0, 9)
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	if err := f.Send(0, 1, 9, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	m := <-done
	if string(m.Payload) != "wake" {
		t.Fatalf("got %+v", m)
	}
}

func TestTryRecv(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if _, ok, err := f.TryRecv(1, AnySource, AnyTag); ok || err != nil {
		t.Fatalf("empty TryRecv: ok=%v err=%v", ok, err)
	}
	if err := f.Send(0, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := f.TryRecv(1, AnySource, AnyTag)
	if !ok || err != nil || string(m.Payload) != "x" {
		t.Fatalf("TryRecv = %+v ok=%v err=%v", m, ok, err)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	f := New(Config{Ranks: 2, MaxMessageBytes: 4})
	defer f.Close()
	if err := f.Send(0, 1, 0, []byte("1234")); err != nil {
		t.Fatalf("at-limit send failed: %v", err)
	}
	err := f.Send(0, 1, 0, []byte("12345"))
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("over-limit err = %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	f := New(Config{Ranks: 1})
	errs := make(chan error, 1)
	go func() {
		_, err := f.Recv(0, AnySource, AnyTag)
		errs <- err
	}()
	f.Close()
	if err := <-errs; !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	if err := f.Send(0, 0, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	if err := f.Send(0, 5, 0, nil); err == nil {
		t.Fatal("send to rank 5 succeeded")
	}
	if err := f.Send(-1, 0, 0, nil); err == nil {
		t.Fatal("send from rank -1 succeeded")
	}
	if _, err := f.Recv(9, AnySource, AnyTag); err == nil {
		t.Fatal("recv at rank 9 succeeded")
	}
	if _, _, err := f.TryRecv(9, AnySource, AnyTag); err == nil {
		t.Fatal("tryrecv at rank 9 succeeded")
	}
}

func TestStatsAccounting(t *testing.T) {
	f := New(Config{Ranks: 3})
	defer f.Close()
	if err := f.Send(0, 1, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 1, 0, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Messages != 2 || s.Bytes != 150 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SentBytes[0] != 100 || s.SentBytes[2] != 50 || s.RecvBytes[1] != 150 {
		t.Fatalf("per-rank stats = %+v", s)
	}
	f.ResetStats()
	if s := f.Stats(); s.Messages != 0 || s.Bytes != 0 || s.SentBytes[0] != 0 {
		t.Fatalf("reset stats = %+v", s)
	}
}

func TestEndpointWrapper(t *testing.T) {
	f := New(Config{Ranks: 2})
	defer f.Close()
	a, b := f.Endpoint(0), f.Endpoint(1)
	if a.Rank() != 0 || b.Ranks() != 2 {
		t.Fatal("endpoint identity wrong")
	}
	if err := a.Send(1, 4, []byte("ep")); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv(0, 4)
	if err != nil || string(m.Payload) != "ep" {
		t.Fatalf("endpoint recv %+v err %v", m, err)
	}
	if _, ok, err := b.TryRecv(AnySource, AnyTag); ok || err != nil {
		t.Fatal("endpoint TryRecv wrong")
	}
}

func TestEndpointOutOfRangePanics(t *testing.T) {
	f := New(Config{Ranks: 1})
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Endpoint(3)
}

func TestConcurrentStress(t *testing.T) {
	const ranks = 4
	const msgs = 200
	f := New(Config{Ranks: ranks})
	defer f.Close()
	var wg sync.WaitGroup
	// Every rank sends msgs messages to every other rank and receives from all.
	for r := range ranks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range msgs {
				for dst := range ranks {
					if dst == r {
						continue
					}
					if err := f.Send(r, dst, 0, []byte{byte(i)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	recvTotals := make([]int, ranks)
	var rg sync.WaitGroup
	for r := range ranks {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for range msgs * (ranks - 1) {
				if _, err := f.Recv(r, AnySource, AnyTag); err != nil {
					t.Error(err)
					return
				}
				recvTotals[r]++
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	for r, n := range recvTotals {
		if n != msgs*(ranks-1) {
			t.Fatalf("rank %d received %d", r, n)
		}
	}
	if s := f.Stats(); s.Messages != int64(ranks*(ranks-1)*msgs) {
		t.Fatalf("total messages %d", s.Messages)
	}
}
