package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestMessageSizeExactBoundary(t *testing.T) {
	const limit = 64
	f := New(Config{Ranks: 2, MaxMessageBytes: limit})
	defer f.Close()
	// Exactly at the limit must pass; one byte over must fail.
	if err := f.Send(0, 1, 0, make([]byte, limit)); err != nil {
		t.Fatalf("send at limit: %v", err)
	}
	err := f.Send(0, 1, 0, make([]byte, limit+1))
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("send over limit err = %v, want ErrMessageTooLarge", err)
	}
	// The oversized send must not have been metered as traffic.
	if s := f.Stats(); s.Messages != 1 || s.Bytes != limit {
		t.Fatalf("stats after rejected send = %+v", s)
	}
}

func TestRecvAnySourceAnyTagConcurrentSenders(t *testing.T) {
	const senders = 8
	const perSender = 50
	f := New(Config{Ranks: senders + 1})
	defer f.Close()
	dst := senders

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := []byte(fmt.Sprintf("%d:%d", s, i))
				if err := f.Send(s, dst, s*1000+i, payload); err != nil {
					t.Errorf("send %d/%d: %v", s, i, err)
					return
				}
			}
		}()
	}

	// Receive everything with wildcards while sends are still in flight.
	seen := make([]int, senders) // next expected per-sender index
	for n := 0; n < senders*perSender; n++ {
		m, err := f.Recv(dst, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d:%d", m.Src, seen[m.Src])
		if string(m.Payload) != want {
			t.Fatalf("msg %d from rank %d: got %q, want %q (non-overtaking violated)",
				n, m.Src, m.Payload, want)
		}
		seen[m.Src]++
	}
	wg.Wait()
	// Nothing should remain queued.
	if _, ok, _ := f.TryRecv(dst, AnySource, AnyTag); ok {
		t.Fatal("extra message queued after full drain")
	}
}

func TestDoubleCloseFabric(t *testing.T) {
	f := New(Config{Ranks: 2})
	f.Close()
	f.Close() // must be idempotent, not a panic or deadlock
	if err := f.Send(0, 1, 0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	if _, err := f.Recv(1, AnySource, AnyTag); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close err = %v", err)
	}
	if _, _, err := f.TryRecv(1, AnySource, AnyTag); !errors.Is(err, ErrClosed) {
		t.Fatalf("tryrecv after close err = %v", err)
	}
}

func TestCloseUnblocksPendingRecv(t *testing.T) {
	f := New(Config{Ranks: 2})
	done := make(chan error, 1)
	go func() {
		_, err := f.Recv(1, AnySource, AnyTag)
		done <- err
	}()
	f.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked recv unblocked with %v", err)
	}
}
