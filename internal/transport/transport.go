// Package transport implements the virtual cluster's network fabric: the
// only channel through which simulated nodes may communicate. Messages are
// byte payloads (produced by internal/serial) addressed by (rank, tag) with
// MPI-style matching semantics. The fabric copies every payload, so nodes
// cannot share memory through it — preserving the distributed-memory
// discipline the paper's runtime is built around even though all ranks run
// in one OS process. SendShared is the explicit, metered exception: a
// sender that promises never to mutate a buffer again may ship it by
// reference (the zero-copy path for serial.Raw payloads and protocol
// frames), and fault injection copies before corrupting so the promise
// survives a hostile wire.
//
// The fabric also meters traffic (message and byte counts per rank) and
// supports a configurable maximum message size, which the Eden baseline
// uses to reproduce the paper's §4.3 failure: "the array data is too large
// for Eden's message-passing runtime to buffer".
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// ErrClosed is reported by operations on a closed fabric.
var ErrClosed = errors.New("transport: fabric closed")

// ErrMessageTooLarge is reported when a payload exceeds the fabric's
// configured maximum message size.
var ErrMessageTooLarge = errors.New("transport: message exceeds buffer limit")

// ErrCrashed is reported by operations at a rank that fault injection has
// killed (see FaultConfig.Crashes and Fabric.CrashRank): the simulated
// process is dead, so its own sends and receives fail immediately, while
// peers observe only silence.
var ErrCrashed = errors.New("transport: rank crashed")

// Config describes a fabric.
type Config struct {
	// Ranks is the number of endpoints (cluster nodes).
	Ranks int
	// MaxMessageBytes caps individual payload size; 0 means unlimited.
	// The paper's Eden runtime has a finite buffer; setting this models it.
	MaxMessageBytes int
	// Delay, when non-nil, holds every message for latency + size/bandwidth
	// before it becomes receivable (see DelayConfig), so real executions
	// exhibit genuine communication time rather than instant delivery.
	Delay *DelayConfig
	// Fault, when non-nil, enables deterministic fault injection: seeded
	// drop/duplicate/reorder/corrupt/delay probabilities per link plus
	// per-rank pause and crash schedules (see FaultConfig).
	Fault *FaultConfig
	// Clock, when non-nil, replaces the system clock as the fabric's time
	// source (see Clock). Protocol deadlines computed against the fabric —
	// the reliable layer's ack and receive timeouts — follow it.
	Clock Clock
}

// Message is one delivered payload.
type Message struct {
	Src, Tag int
	Payload  []byte
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	closed  bool
	crashed bool
}

// closeErr reports why a closed mailbox rejects operations. Callers hold mu.
func (mb *mailbox) closeErr() error {
	if mb.crashed {
		return ErrCrashed
	}
	return ErrClosed
}

// Stats are cumulative traffic counters, readable while the fabric runs.
type Stats struct {
	Messages  int64
	Bytes     int64
	SentBytes []int64 // per source rank
	RecvBytes []int64 // per destination rank
	// HaloBytes is the subset of payload bytes a sender attributed to
	// halo/ghost replication (stencil ghost rows, slab boundary-atom
	// duplication). The fabric cannot tell halo traffic from task traffic
	// on its own, so attribution is explicit: senders call AddHaloBytes
	// alongside the send. Counted once per logical payload — reliable-mode
	// retries are delivery overhead, not additional halo volume.
	HaloBytes int64
	// Faults counts injected faults; all-zero without a FaultConfig.
	Faults FaultStats
}

// Fabric connects Ranks endpoints. All methods are safe for concurrent use.
type Fabric struct {
	cfg       Config
	boxes     []*mailbox
	delay     *delayer
	faults    *injector
	crashed   []atomic.Bool
	messages  atomic.Int64
	bytes     atomic.Int64
	haloBytes atomic.Int64
	sentBytes []atomic.Int64
	recvBytes []atomic.Int64
}

// New creates a fabric with the given configuration.
func New(cfg Config) *Fabric {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("transport: %d ranks", cfg.Ranks))
	}
	f := &Fabric{
		cfg:       cfg,
		boxes:     make([]*mailbox, cfg.Ranks),
		crashed:   make([]atomic.Bool, cfg.Ranks),
		sentBytes: make([]atomic.Int64, cfg.Ranks),
		recvBytes: make([]atomic.Int64, cfg.Ranks),
	}
	for i := range f.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		f.boxes[i] = mb
	}
	if cfg.Delay != nil {
		f.delay = newDelayer(*cfg.Delay, f)
	}
	if cfg.Fault != nil {
		f.faults = newInjector(*cfg.Fault, f)
	}
	return f
}

// Ranks reports the number of endpoints.
func (f *Fabric) Ranks() int { return f.cfg.Ranks }

// SendCtx is Send under a context: an already-cancelled context fails the
// send with ctx.Err() before anything is transmitted. Send itself never
// blocks (the fabric buffers), so there is no mid-send wait to interrupt.
func (f *Fabric) SendCtx(ctx context.Context, src, dst, tag int, payload []byte) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return f.Send(src, dst, tag, payload)
}

// Send delivers payload to dst with the given tag. The payload is copied;
// the caller may reuse its buffer immediately. Send does not block (the
// fabric buffers), matching MPI's buffered-send semantics that the paper's
// runtime relies on; flow control is the application's concern.
func (f *Fabric) Send(src, dst, tag int, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return f.sendPayload(src, dst, tag, cp, false)
}

// SendShared is the zero-copy variant of Send: the payload is delivered
// by reference, skipping the fabric's defensive copy, while traffic is
// metered exactly as Send meters it — the bytes-on-the-wire accounting
// does not change. The caller relinquishes the buffer: it must not mutate
// payload after the call, and the receiver must treat the delivered
// payload as read-only unless it knows it is the sole owner. Under fault
// injection a corrupting link copies the payload before flipping a bit, so
// a shared buffer is never damaged in place (copy-on-corrupt).
func (f *Fabric) SendShared(src, dst, tag int, payload []byte) error {
	return f.sendPayload(src, dst, tag, payload, true)
}

// sendPayload validates, meters, and routes one send whose payload the
// fabric now owns (copied) or shares by contract (shared=true).
func (f *Fabric) sendPayload(src, dst, tag int, payload []byte, shared bool) error {
	if src < 0 || src >= f.cfg.Ranks || dst < 0 || dst >= f.cfg.Ranks {
		return fmt.Errorf("transport: send %d→%d out of range", src, dst)
	}
	if f.crashed[src].Load() {
		return ErrCrashed
	}
	if f.cfg.MaxMessageBytes > 0 && len(payload) > f.cfg.MaxMessageBytes {
		return fmt.Errorf("%w: %d bytes > limit %d", ErrMessageTooLarge, len(payload), f.cfg.MaxMessageBytes)
	}

	f.messages.Add(1)
	f.bytes.Add(int64(len(payload)))
	f.sentBytes[src].Add(int64(len(payload)))
	f.recvBytes[dst].Add(int64(len(payload)))

	if f.faults != nil {
		pl, handled, err := f.faults.apply(src, dst, tag, payload, shared)
		if handled {
			return err
		}
		payload = pl
	}
	return f.route(src, dst, tag, payload)
}

// route forwards an already-copied, already-metered payload through the
// configured wire-delay simulator, or delivers it directly.
func (f *Fabric) route(src, dst, tag int, payload []byte) error {
	if f.delay != nil {
		// Fail fast on an already-closed fabric so delayed sends report
		// the close error like direct sends do; a close racing the
		// delivery still drops the message at deliver time.
		mb := f.boxes[dst]
		mb.mu.Lock()
		closed := mb.closed
		err := mb.closeErr()
		mb.mu.Unlock()
		if closed {
			return err
		}
		f.delay.submit(src, dst, tag, payload)
		return nil
	}
	return f.deliver(src, dst, tag, payload)
}

// deliver places an already-copied, already-metered payload into dst's
// mailbox. Delayed deliveries to a closed fabric are dropped.
func (f *Fabric) deliver(src, dst, tag int, payload []byte) error {
	mb := f.boxes[dst]
	mb.mu.Lock()
	if mb.closed {
		err := mb.closeErr()
		mb.mu.Unlock()
		return err
	}
	mb.queue = append(mb.queue, Message{Src: src, Tag: tag, Payload: payload})
	mb.cond.Broadcast()
	mb.mu.Unlock()
	return nil
}

// Recv blocks until a message matching (src, tag) arrives at dst and
// returns it. src may be AnySource and tag may be AnyTag. Matching picks
// the earliest queued message, so messages between one (src, dst, tag)
// triple are received in send order (MPI's non-overtaking rule).
func (f *Fabric) Recv(dst, src, tag int) (Message, error) {
	return f.RecvCtx(context.Background(), dst, src, tag)
}

// RecvCtx is Recv under a context: cancelling ctx unblocks the wait and
// returns ctx.Err(). An already-queued matching message is returned even
// when ctx is cancelled, so cancellation never loses a delivered message.
func (f *Fabric) RecvCtx(ctx context.Context, dst, src, tag int) (Message, error) {
	if dst < 0 || dst >= f.cfg.Ranks {
		return Message{}, fmt.Errorf("transport: recv at rank %d out of range", dst)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	mb := f.boxes[dst]
	if ctx.Done() != nil {
		// Wake the cond wait when the context fires; without this the
		// cancellation would only be noticed at the next delivery.
		stop := context.AfterFunc(ctx, func() {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return Message{}, mb.closeErr()
		}
		if err := ctx.Err(); err != nil {
			return Message{}, err
		}
		mb.cond.Wait()
	}
}

// TryRecv is the non-blocking variant of Recv. ok is false when no matching
// message is queued.
func (f *Fabric) TryRecv(dst, src, tag int) (Message, bool, error) {
	if dst < 0 || dst >= f.cfg.Ranks {
		return Message{}, false, fmt.Errorf("transport: recv at rank %d out of range", dst)
	}
	mb := f.boxes[dst]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.queue {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m, true, nil
		}
	}
	if mb.closed {
		return Message{}, false, mb.closeErr()
	}
	return Message{}, false, nil
}

// Close shuts the fabric down: pending and future Recvs return ErrClosed.
func (f *Fabric) Close() {
	for _, mb := range f.boxes {
		mb.mu.Lock()
		mb.closed = true
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// CrashRank kills rank r: its mailbox closes with ErrCrashed (unblocking
// any receive it has pending), its own future sends fail with ErrCrashed,
// and — under fault injection — traffic addressed to it is silently lost.
// Idempotent. Simulates a process death mid-run.
func (f *Fabric) CrashRank(r int) {
	if r < 0 || r >= f.cfg.Ranks {
		return
	}
	if f.crashed[r].Swap(true) {
		return
	}
	mb := f.boxes[r]
	mb.mu.Lock()
	if !mb.closed {
		mb.closed = true
		mb.crashed = true
		mb.cond.Broadcast()
	}
	mb.mu.Unlock()
}

// Crashed reports whether rank r has been killed. The retry/ack layer uses
// this as its failure detector once acknowledgements stop arriving.
func (f *Fabric) Crashed(r int) bool {
	return r >= 0 && r < f.cfg.Ranks && f.crashed[r].Load()
}

// Stats returns a snapshot of cumulative traffic counters.
func (f *Fabric) Stats() Stats {
	s := Stats{
		Messages:  f.messages.Load(),
		Bytes:     f.bytes.Load(),
		HaloBytes: f.haloBytes.Load(),
		SentBytes: make([]int64, f.cfg.Ranks),
		RecvBytes: make([]int64, f.cfg.Ranks),
	}
	if f.faults != nil {
		s.Faults = f.faults.snapshot()
	}
	for i := range s.SentBytes {
		s.SentBytes[i] = f.sentBytes[i].Load()
		s.RecvBytes[i] = f.recvBytes[i].Load()
	}
	return s
}

// ResetStats zeroes the traffic counters (between experiment phases).
func (f *Fabric) ResetStats() {
	f.messages.Store(0)
	f.bytes.Store(0)
	f.haloBytes.Store(0)
	for i := range f.sentBytes {
		f.sentBytes[i].Store(0)
		f.recvBytes[i].Store(0)
	}
}

// AddHaloBytes attributes n payload bytes to halo/ghost replication (see
// Stats.HaloBytes). Callers invoke it once per logical halo payload, next to
// the send (or, for farm tasks that may run on the master without crossing
// the fabric, at task-build time — provisioned halo volume).
func (f *Fabric) AddHaloBytes(n int64) {
	if n > 0 {
		f.haloBytes.Add(n)
	}
}

// Endpoint binds a rank to the fabric for convenience.
type Endpoint struct {
	f    *Fabric
	rank int
}

// Endpoint returns rank's bound endpoint.
func (f *Fabric) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= f.cfg.Ranks {
		panic(fmt.Sprintf("transport: endpoint rank %d out of range", rank))
	}
	return &Endpoint{f: f, rank: rank}
}

// Rank reports the endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Ranks reports the fabric size.
func (e *Endpoint) Ranks() int { return e.f.Ranks() }

// Send delivers payload to dst with the given tag.
func (e *Endpoint) Send(dst, tag int, payload []byte) error {
	return e.f.Send(e.rank, dst, tag, payload)
}

// SendShared delivers payload to dst without the fabric's defensive copy
// (see Fabric.SendShared for the aliasing contract).
func (e *Endpoint) SendShared(dst, tag int, payload []byte) error {
	return e.f.SendShared(e.rank, dst, tag, payload)
}

// SendCtx is Send under a context (see Fabric.SendCtx).
func (e *Endpoint) SendCtx(ctx context.Context, dst, tag int, payload []byte) error {
	return e.f.SendCtx(ctx, e.rank, dst, tag, payload)
}

// Recv blocks for a matching message addressed to this endpoint.
func (e *Endpoint) Recv(src, tag int) (Message, error) {
	return e.f.Recv(e.rank, src, tag)
}

// RecvCtx is Recv under a context: cancellation unblocks the wait.
func (e *Endpoint) RecvCtx(ctx context.Context, src, tag int) (Message, error) {
	return e.f.RecvCtx(ctx, e.rank, src, tag)
}

// TryRecv is the non-blocking receive at this endpoint.
func (e *Endpoint) TryRecv(src, tag int) (Message, bool, error) {
	return e.f.TryRecv(e.rank, src, tag)
}
