package transport

import (
	"testing"
	"time"
)

func TestDelayHoldsMessages(t *testing.T) {
	f := New(Config{Ranks: 2, Delay: &DelayConfig{Latency: 30 * time.Millisecond}})
	defer f.Close()
	start := time.Now()
	if err := f.Send(0, 1, 0, []byte("held")); err != nil {
		t.Fatal(err)
	}
	// Immediately after the send, nothing is receivable.
	if _, ok, _ := f.TryRecv(1, AnySource, AnyTag); ok {
		t.Fatal("message receivable before its delay elapsed")
	}
	m, err := f.Recv(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("message arrived after %v, want ≥ ~30ms", elapsed)
	}
	if string(m.Payload) != "held" {
		t.Fatalf("payload = %q", m.Payload)
	}
}

func TestDelayBandwidthComponent(t *testing.T) {
	// 1 KB at 100 KB/s → 10 ms of wire time.
	f := New(Config{Ranks: 2, Delay: &DelayConfig{BytesPerSec: 100 * 1024}})
	defer f.Close()
	start := time.Now()
	if err := f.Send(0, 1, 0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("1KB at 100KB/s arrived after %v", elapsed)
	}
}

func TestDelayPreservesPerEdgeOrder(t *testing.T) {
	// A large message followed by a small one on the same edge must still
	// arrive in send order (non-overtaking), even though the small one's
	// wire time alone would finish first.
	f := New(Config{Ranks: 2, Delay: &DelayConfig{BytesPerSec: 1024 * 1024}})
	defer f.Close()
	if err := f.Send(0, 1, 7, make([]byte, 64*1024)); err != nil { // ~62ms
		t.Fatal(err)
	}
	if err := f.Send(0, 1, 7, []byte{1}); err != nil { // ~1µs
		t.Fatal(err)
	}
	m1, err := f.Recv(1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := f.Recv(1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Payload) != 64*1024 || len(m2.Payload) != 1 {
		t.Fatalf("messages overtook: got %d then %d bytes", len(m1.Payload), len(m2.Payload))
	}
}

func TestDelayIndependentEdges(t *testing.T) {
	// A slow message on one edge must not delay another edge.
	f := New(Config{Ranks: 3, Delay: &DelayConfig{BytesPerSec: 64 * 1024}})
	defer f.Close()
	if err := f.Send(0, 1, 0, make([]byte, 32*1024)); err != nil { // ~500ms on edge 0→1
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Send(2, 1, 0, []byte{9}); err != nil { // tiny on edge 2→1
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("independent edge blocked for %v", elapsed)
	}
}

func TestDelayedDeliveryToClosedFabricDrops(t *testing.T) {
	f := New(Config{Ranks: 2, Delay: &DelayConfig{Latency: 20 * time.Millisecond}})
	if err := f.Send(0, 1, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The delayed delivery lands on a closed mailbox and is dropped; the
	// delayer goroutine must still terminate.
	f.delay.Wait()
}

func TestDelayedSendToClosedFabricErrors(t *testing.T) {
	f := New(Config{Ranks: 2, Delay: &DelayConfig{Latency: time.Millisecond}})
	f.Close()
	if err := f.Send(0, 1, 0, []byte("x")); err == nil {
		t.Fatal("delayed send to closed fabric succeeded")
	}
}

func TestDelayStatsCountAtSendTime(t *testing.T) {
	f := New(Config{Ranks: 2, Delay: &DelayConfig{Latency: 50 * time.Millisecond}})
	defer f.Close()
	if err := f.Send(0, 1, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Metering is at send time, before delivery.
	if s := f.Stats(); s.Bytes != 100 || s.Messages != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
