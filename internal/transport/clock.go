package transport

import "time"

// Clock is the fabric's time source. Protocol layers built on the fabric —
// notably the reliable layer's acknowledgement deadlines — must read time
// through it rather than calling time.Now directly, so tests can inject a
// controlled clock and prove that timeout behavior is a function of fabric
// time, not of wall-clock scheduling jitter. The default is the system
// clock.
type Clock interface {
	Now() time.Time
}

// systemClock is the default Clock: real time.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the real-time clock the fabric uses by default.
func SystemClock() Clock { return systemClock{} }

// Clock returns the fabric's time source: Config.Clock if one was
// injected, the system clock otherwise.
func (f *Fabric) Clock() Clock {
	if f.cfg.Clock != nil {
		return f.cfg.Clock
	}
	return systemClock{}
}

// WireDelay reports how long the fabric will hold a payload of the given
// size before it becomes receivable: zero without a DelayConfig, latency +
// size/bandwidth with one. Timeout-based protocols use it to floor their
// deadlines above the round-trip time, so simulated latency produces
// latency — not spurious retransmissions.
func (f *Fabric) WireDelay(bytes int) time.Duration {
	if f.cfg.Delay == nil {
		return 0
	}
	return f.cfg.Delay.delayFor(bytes)
}
