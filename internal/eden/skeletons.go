package eden

import (
	"fmt"

	"triolet/internal/domain"
	"triolet/internal/serial"
)

// ParMap is Eden's flat map skeleton: inputs are dealt round-robin over all
// processes (the master evaluates its own share, as Eden's main process
// does) and results are collected in input order. Every process exchanges
// messages directly with the master — the communication bottleneck the
// paper's two-level rewrite works around (§4.1).
func ParMap(m *Master, name string, inputs [][]byte) ([][]byte, error) {
	p := m.cfg.Processes
	for i, in := range inputs {
		if dst := i % p; dst != 0 {
			if err := m.Spawn(dst, name, in); err != nil {
				return nil, fmt.Errorf("eden: parMap spawn %d: %w", i, err)
			}
		}
	}
	results := make([][]byte, len(inputs))
	for i := range inputs {
		var err error
		if dst := i % p; dst == 0 {
			results[i], err = m.RunLocal(name, inputs[i])
		} else {
			results[i], err = m.Await(dst)
		}
		if err != nil {
			return nil, fmt.Errorf("eden: parMap task %d: %w", i, err)
		}
	}
	return results, nil
}

// leaderName is the built-in node-leader process of the two-level skeleton.
const leaderName = "eden.leader"

func init() {
	RegisterProcess(leaderName, leaderBody)
}

// encodeBundle packs (inner process name, inputs) for a node leader.
func encodeBundle(name string, inputs [][]byte) []byte {
	w := serial.NewWriter(64)
	w.String(name)
	w.Int(len(inputs))
	for _, in := range inputs {
		w.RawBytes(in)
	}
	return w.Bytes()
}

func decodeBundle(b []byte) (string, [][]byte, error) {
	r := serial.NewReader(b)
	name := r.String()
	n := r.Int()
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	inputs := make([][]byte, 0, n)
	for range n {
		inputs = append(inputs, r.RawBytes())
	}
	return name, inputs, r.Err()
}

func encodeResults(results [][]byte) []byte {
	w := serial.NewWriter(64)
	w.Int(len(results))
	for _, out := range results {
		w.RawBytes(out)
	}
	return w.Bytes()
}

func decodeResults(b []byte) ([][]byte, error) {
	r := serial.NewReader(b)
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, 0, n)
	for range n {
		out = append(out, r.RawBytes())
	}
	return out, r.Err()
}

// leaderBody distributes a bundle of tasks round-robin over its node's
// processes (itself included), collects the results in order, and returns
// them as one bundle. Paper §4.1: "The main process distributes work to one
// process in each node, which further distributes work to other processes
// in the same node."
func leaderBody(p *Proc, in []byte) ([]byte, error) {
	name, inputs, err := decodeBundle(in)
	if err != nil {
		return nil, err
	}
	inner, ok := lookupProcess(name)
	if !ok {
		return nil, fmt.Errorf("eden: leader: unknown process %q", name)
	}
	c := p.cfg.ProcsPerNode
	if c == 0 {
		c = p.cfg.Processes
	}
	leader := p.Rank()
	for i, task := range inputs {
		if off := i % c; off != 0 {
			if err := p.Spawn(leader+off, name, task); err != nil {
				return nil, err
			}
		}
	}
	results := make([][]byte, len(inputs))
	for i := range inputs {
		if off := i % c; off == 0 {
			results[i], err = inner(p, inputs[i])
		} else {
			results[i], err = p.Await(leader + off)
		}
		if err != nil {
			return nil, err
		}
	}
	return encodeResults(results), nil
}

// TwoLevelParMap is the paper's hand-written Eden improvement: the master
// ships one bundle per node to a leader process, which fans tasks out
// within its node. Still no shared memory — every task's input is copied
// again from leader to worker process.
func TwoLevelParMap(m *Master, name string, inputs [][]byte) ([][]byte, error) {
	c := m.cfg.ProcsPerNode
	if c == 0 {
		c = m.cfg.Processes
	}
	nodes := m.cfg.Processes / c
	parts := domain.BlockPartition(len(inputs), nodes)
	// Ship bundles to remote leaders first, then evaluate node 0's bundle
	// on the master (which is node 0's leader).
	for nodeIdx := 1; nodeIdx < nodes; nodeIdx++ {
		r := parts[nodeIdx]
		if err := m.Spawn(nodeIdx*c, leaderName, encodeBundle(name, inputs[r.Lo:r.Hi])); err != nil {
			return nil, fmt.Errorf("eden: twoLevel spawn node %d: %w", nodeIdx, err)
		}
	}
	results := make([][]byte, 0, len(inputs))
	localOut, err := m.RunLocal(leaderName, encodeBundle(name, inputs[parts[0].Lo:parts[0].Hi]))
	if err != nil {
		return nil, fmt.Errorf("eden: twoLevel node 0: %w", err)
	}
	local, err := decodeResults(localOut)
	if err != nil {
		return nil, err
	}
	results = append(results, local...)
	for nodeIdx := 1; nodeIdx < nodes; nodeIdx++ {
		out, err := m.Await(nodeIdx * c)
		if err != nil {
			return nil, fmt.Errorf("eden: twoLevel await node %d: %w", nodeIdx, err)
		}
		rs, err := decodeResults(out)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	return results, nil
}

// ParMapT is the typed flat parMap.
func ParMapT[I, O any](m *Master, name string, ic serial.Codec[I], oc serial.Codec[O], inputs []I) ([]O, error) {
	raw := make([][]byte, len(inputs))
	for i, in := range inputs {
		raw[i] = serial.Marshal(ic, in)
	}
	outs, err := ParMap(m, name, raw)
	if err != nil {
		return nil, err
	}
	return decodeAll(oc, outs)
}

// TwoLevelParMapT is the typed two-level parMap.
func TwoLevelParMapT[I, O any](m *Master, name string, ic serial.Codec[I], oc serial.Codec[O], inputs []I) ([]O, error) {
	raw := make([][]byte, len(inputs))
	for i, in := range inputs {
		raw[i] = serial.Marshal(ic, in)
	}
	outs, err := TwoLevelParMap(m, name, raw)
	if err != nil {
		return nil, err
	}
	return decodeAll(oc, outs)
}

// ParMapReduceT maps tasks with the two-level skeleton and folds the typed
// results on the master — the map+reduce shape of tpacf's and cutcp's Eden
// ports. The master-side fold is itself a sequential bottleneck, which is
// one of the costs the paper attributes to Eden's flat result collection.
func ParMapReduceT[I, O any](m *Master, name string, ic serial.Codec[I], oc serial.Codec[O], inputs []I, z O, combine func(O, O) O) (O, error) {
	outs, err := TwoLevelParMapT(m, name, ic, oc, inputs)
	if err != nil {
		var zero O
		return zero, err
	}
	acc := z
	for _, o := range outs {
		acc = combine(acc, o)
	}
	return acc, nil
}

func decodeAll[O any](oc serial.Codec[O], outs [][]byte) ([]O, error) {
	res := make([]O, len(outs))
	for i, b := range outs {
		v, err := serial.Unmarshal(oc, b)
		if err != nil {
			return nil, fmt.Errorf("eden: result %d: %w", i, err)
		}
		res[i] = v
	}
	return res, nil
}
