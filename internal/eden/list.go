// Package eden is the Eden baseline (paper §4.1): a faithful-in-behaviour
// model of the distributed Haskell dialect the paper compares against. The
// properties that limit Eden's performance in the paper are reproduced
// structurally rather than numerically:
//
//   - No shared memory: every core is its own process (fabric rank). Data
//     used by two processes on the same "node" is still copied through the
//     fabric.
//   - Whole-value communication: spawning a process ships its entire input;
//     there is no slicing machinery unless the programmer chunks by hand.
//   - Boxed list values: the idiomatic data structure is a cons list with a
//     heap cell per element (this file), an order of magnitude slower to
//     traverse than an unboxed array. The paper's optimized Eden style —
//     lists of unboxed chunks — is also provided (Chunked).
//   - Flat process topology by default: the master exchanges messages with
//     every process directly. A hand-built two-level variant (as the paper
//     wrote for its Eden ports) is in skeletons.go.
//   - Bounded message buffers: oversized messages fail, reproducing the
//     paper's sgemm failure at ≥2 nodes.
package eden

// Cell is one cons cell of a boxed list. Each element costs a heap
// allocation and a pointer chase, modeling GHC's lazy list representation
// that makes idiomatic Eden code an order of magnitude slower than C
// (paper §1).
type Cell[T any] struct {
	Head T
	Tail *Cell[T]
}

// FromSlice builds a boxed list with the elements of xs, allocating one
// cell per element.
func FromSlice[T any](xs []T) *Cell[T] {
	var head *Cell[T]
	for i := len(xs) - 1; i >= 0; i-- {
		head = &Cell[T]{Head: xs[i], Tail: head}
	}
	return head
}

// ToSlice flattens a boxed list into a slice.
func ToSlice[T any](l *Cell[T]) []T {
	var out []T
	for c := l; c != nil; c = c.Tail {
		out = append(out, c.Head)
	}
	return out
}

// Length walks the list counting cells.
func Length[T any](l *Cell[T]) int {
	n := 0
	for c := l; c != nil; c = c.Tail {
		n++
	}
	return n
}

// Map allocates a new list with f applied to every element.
func Map[T, U any](f func(T) U, l *Cell[T]) *Cell[U] {
	var head, tail *Cell[U]
	for c := l; c != nil; c = c.Tail {
		cell := &Cell[U]{Head: f(c.Head)}
		if tail == nil {
			head = cell
		} else {
			tail.Tail = cell
		}
		tail = cell
	}
	return head
}

// Filter allocates a new list keeping elements satisfying pred.
func Filter[T any](pred func(T) bool, l *Cell[T]) *Cell[T] {
	var head, tail *Cell[T]
	for c := l; c != nil; c = c.Tail {
		if !pred(c.Head) {
			continue
		}
		cell := &Cell[T]{Head: c.Head}
		if tail == nil {
			head = cell
		} else {
			tail.Tail = cell
		}
		tail = cell
	}
	return head
}

// Foldl reduces the list left-to-right.
func Foldl[T, A any](l *Cell[T], z A, w func(A, T) A) A {
	acc := z
	for c := l; c != nil; c = c.Tail {
		acc = w(acc, c.Head)
	}
	return acc
}

// Append concatenates two lists, copying the first.
func Append[T any](a, b *Cell[T]) *Cell[T] {
	if a == nil {
		return b
	}
	var head, tail *Cell[T]
	for c := a; c != nil; c = c.Tail {
		cell := &Cell[T]{Head: c.Head}
		if tail == nil {
			head = cell
		} else {
			tail.Tail = cell
		}
		tail = cell
	}
	tail.Tail = b
	return head
}

// ConcatMap expands each element into a list and concatenates the results —
// the nested-traversal shape that, in Eden, manifests as slow stepper-style
// list building (paper §3.1 measured it 2–5× slower than loop nests).
func ConcatMap[T, U any](f func(T) *Cell[U], l *Cell[T]) *Cell[U] {
	var head, tail *Cell[U]
	for c := l; c != nil; c = c.Tail {
		for inner := f(c.Head); inner != nil; inner = inner.Tail {
			cell := &Cell[U]{Head: inner.Head}
			if tail == nil {
				head = cell
			} else {
				tail.Tail = cell
			}
			tail = cell
		}
	}
	return head
}

// Chunked is the paper's hand-optimized Eden representation: a list of
// unboxed array chunks ("we build arrays in chunked form, as lists of
// 1k-element vectors", §4.2). Traversal is nearly array-speed; the list
// spine still permits Eden's element-wise distribution.
type Chunked struct {
	Chunks [][]float64
}

// ChunkSlice splits xs into chunks of the given size (the paper uses 1k).
func ChunkSlice(xs []float64, size int) Chunked {
	if size <= 0 {
		panic("eden: chunk size must be positive")
	}
	var ch Chunked
	for lo := 0; lo < len(xs); lo += size {
		ch.Chunks = append(ch.Chunks, xs[lo:min(lo+size, len(xs))])
	}
	return ch
}

// Flatten concatenates the chunks back into one slice.
func (c Chunked) Flatten() []float64 {
	n := 0
	for _, ch := range c.Chunks {
		n += len(ch)
	}
	out := make([]float64, 0, n)
	for _, ch := range c.Chunks {
		out = append(out, ch...)
	}
	return out
}

// Len reports the total element count.
func (c Chunked) Len() int {
	n := 0
	for _, ch := range c.Chunks {
		n += len(ch)
	}
	return n
}
