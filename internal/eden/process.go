package eden

import (
	"errors"
	"fmt"
	"sync"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Config describes an Eden machine: Processes ranks with no shared memory.
// On a cluster of N nodes with C cores each, Eden runs N×C processes; rank
// 0 is the master running the user's program.
type Config struct {
	// Processes is the total process count (nodes × cores).
	Processes int
	// ProcsPerNode groups processes into nodes for the two-level skeletons
	// (and for interpreting traffic in the performance model). 0 means all
	// processes are on one node.
	ProcsPerNode int
	// MaxMessageBytes caps fabric payloads, reproducing Eden's bounded
	// message buffer (0 = unlimited).
	MaxMessageBytes int
	// NetDelay, when non-nil, makes the fabric hold each message for
	// latency + size/bandwidth (see transport.DelayConfig).
	NetDelay *transport.DelayConfig
}

func (c Config) validate() error {
	if c.Processes <= 0 {
		return fmt.Errorf("eden: invalid config %+v", c)
	}
	if c.ProcsPerNode < 0 || (c.ProcsPerNode > 0 && c.Processes%c.ProcsPerNode != 0) {
		return fmt.Errorf("eden: ProcsPerNode %d does not divide Processes %d", c.ProcsPerNode, c.Processes)
	}
	return nil
}

// Proc is the context an Eden process body runs in: its rank, the machine
// shape, and its fabric endpoint, which leader processes in the two-level
// skeletons use to forward work to sibling processes.
type Proc struct {
	cfg Config
	ep  *transport.Endpoint
}

// Rank reports the process's rank.
func (p *Proc) Rank() int { return p.ep.Rank() }

// Config reports the machine shape.
func (p *Proc) Config() Config { return p.cfg }

// Spawn ships input to another process, which applies the named body.
func (p *Proc) Spawn(dst int, name string, input []byte) error {
	if dst < 0 || dst >= p.cfg.Processes || dst == p.ep.Rank() {
		return fmt.Errorf("eden: spawn on rank %d from %d", dst, p.ep.Rank())
	}
	w := serial.NewWriter(len(input) + len(name) + 16)
	w.String(name)
	w.RawBytes(input)
	return p.ep.Send(dst, tagSpawn, w.Bytes())
}

// Await blocks for one result from process rank src.
func (p *Proc) Await(src int) ([]byte, error) {
	msg, err := p.ep.Recv(src, tagResult)
	if err != nil {
		return nil, err
	}
	r := serial.NewReader(msg.Payload)
	if ok := r.Bool(); !ok {
		return nil, fmt.Errorf("eden: process %d failed: %s", src, r.String())
	}
	out := r.RawBytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Process is a process body: serialized input in, serialized output out,
// mirroring an Eden process abstraction whose input and output channels
// carry fully serialized values. The Proc context allows forwarding.
type Process func(p *Proc, in []byte) ([]byte, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Process{}
)

// RegisterProcess installs a named process body (once, at init).
func RegisterProcess(name string, p Process) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("eden: duplicate process %q", name))
	}
	registry[name] = p
}

func lookupProcess(name string) (Process, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Message tags of the process protocol.
const (
	tagSpawn  = 1 // master→process: name-prefixed input
	tagResult = 2 // process→master: output
	tagDone   = 3 // master→process: shutdown
)

// Master drives an Eden machine from rank 0.
type Master struct {
	cfg    Config
	fabric *transport.Fabric
	ep     *transport.Endpoint
}

// Config reports the machine shape.
func (m *Master) Config() Config { return m.cfg }

// Fabric exposes traffic statistics.
func (m *Master) Fabric() *transport.Fabric { return m.fabric }

// Processes reports the total process count (including the master, which
// also evaluates tasks, as Eden's main process does).
func (m *Master) Processes() int { return m.cfg.Processes }

// Spawn ships input to process rank dst, which applies the named process
// body. The result arrives asynchronously; collect it with Await. Spawning
// serializes the entire input — Eden's whole-value copy semantics.
func (m *Master) Spawn(dst int, name string, input []byte) error {
	if dst <= 0 || dst >= m.cfg.Processes {
		return fmt.Errorf("eden: spawn on rank %d of %d", dst, m.cfg.Processes)
	}
	w := serial.NewWriter(len(input) + len(name) + 16)
	w.String(name)
	w.RawBytes(input)
	return m.ep.Send(dst, tagSpawn, w.Bytes())
}

// Await blocks for one result from process rank src.
func (m *Master) Await(src int) ([]byte, error) {
	msg, err := m.ep.Recv(src, tagResult)
	if err != nil {
		return nil, err
	}
	r := serial.NewReader(msg.Payload)
	if ok := r.Bool(); !ok {
		return nil, fmt.Errorf("eden: process %d failed: %s", src, r.String())
	}
	out := r.RawBytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunLocal evaluates a process body on the master itself (Eden's main
// process participates in evaluation).
func (m *Master) RunLocal(name string, input []byte) ([]byte, error) {
	p, ok := lookupProcess(name)
	if !ok {
		return nil, fmt.Errorf("eden: process %q not registered", name)
	}
	return p(&Proc{cfg: m.cfg, ep: m.ep}, input)
}

// Run boots an Eden machine and executes master on rank 0. All other ranks
// run process loops: receive a spawn, evaluate, reply. The first error
// aborts the machine.
func Run(cfg Config, master func(m *Master) error) (transport.Stats, error) {
	if err := cfg.validate(); err != nil {
		return transport.Stats{}, err
	}
	fabric := transport.New(transport.Config{
		Ranks:           cfg.Processes,
		MaxMessageBytes: cfg.MaxMessageBytes,
		Delay:           cfg.NetDelay,
	})
	defer fabric.Close()

	errs := make([]error, cfg.Processes)
	var wg sync.WaitGroup
	for r := 1; r < cfg.Processes; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("eden: process %d panicked: %v", r, p)
					fabric.Close()
				}
			}()
			errs[r] = processLoop(&Proc{cfg: cfg, ep: fabric.Endpoint(r)})
			if errs[r] != nil {
				fabric.Close()
			}
		}()
	}

	m := &Master{cfg: cfg, fabric: fabric, ep: fabric.Endpoint(0)}
	masterErr := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("eden: master panicked: %v", p)
				fabric.Close()
			}
		}()
		return master(m)
	}()
	// Shut the processes down (best effort: the fabric may already be
	// closed after an error).
	for r := 1; r < cfg.Processes; r++ {
		if err := m.ep.Send(r, tagDone, nil); err != nil {
			break
		}
	}
	if masterErr != nil {
		fabric.Close()
	}
	wg.Wait()
	stats := fabric.Stats()
	if masterErr != nil {
		return stats, masterErr
	}
	for _, e := range errs {
		if e != nil && !errors.Is(e, transport.ErrClosed) {
			return stats, e
		}
	}
	return stats, nil
}

func processLoop(pc *Proc) error {
	ep := pc.ep
	for {
		msg, err := ep.Recv(transport.AnySource, transport.AnyTag)
		if err != nil {
			return err
		}
		switch msg.Tag {
		case tagDone:
			return nil
		case tagSpawn:
			r := serial.NewReader(msg.Payload)
			name := r.String()
			input := r.RawBytes()
			if err := r.Err(); err != nil {
				return err
			}
			p, ok := lookupProcess(name)
			w := serial.NewWriter(64)
			if !ok {
				w.Bool(false)
				w.String(fmt.Sprintf("unknown process %q", name))
			} else if out, perr := p(pc, input); perr != nil {
				w.Bool(false)
				w.String(perr.Error())
			} else {
				w.Bool(true)
				w.RawBytes(out)
			}
			if err := ep.Send(msg.Src, tagResult, w.Bytes()); err != nil {
				return err
			}
		default:
			return fmt.Errorf("eden: process %d: unexpected tag %d", ep.Rank(), msg.Tag)
		}
	}
}
