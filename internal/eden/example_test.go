package eden_test

import (
	"fmt"

	"triolet/internal/eden"
)

// Boxed cons lists are Eden's idiomatic data representation: every
// element costs a heap cell, which is why idiomatic Eden trails C by an
// order of magnitude on traversal-heavy code (paper §1).
func ExampleMap() {
	l := eden.FromSlice([]int{1, 2, 3})
	doubled := eden.Map(func(x int) int { return 2 * x }, l)
	fmt.Println(eden.ToSlice(doubled))
	// Output: [2 4 6]
}

// The paper's optimized Eden style builds arrays "in chunked form, as
// lists of 1k-element vectors" (§4.2): array-speed traversal, list-spine
// distribution.
func ExampleChunkSlice() {
	xs := make([]float64, 2500)
	ch := eden.ChunkSlice(xs, 1000)
	fmt.Println(len(ch.Chunks), ch.Len())
	// Output: 3 2500
}

// Foldl over a boxed list, the shape of Eden reductions.
func ExampleFoldl() {
	l := eden.FromSlice([]int{1, 2, 3, 4})
	fmt.Println(eden.Foldl(l, 0, func(a, v int) int { return a + v }))
	// Output: 10
}
