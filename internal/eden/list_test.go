package eden

import (
	"testing"
	"testing/quick"
)

func TestFromToSlice(t *testing.T) {
	xs := []int{1, 2, 3}
	got := ToSlice(FromSlice(xs))
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("round trip = %v", got)
	}
	if FromSlice[int](nil) != nil {
		t.Fatal("empty list not nil")
	}
	if ToSlice[int](nil) != nil {
		t.Fatal("nil list yields non-nil slice")
	}
}

func TestLength(t *testing.T) {
	if Length(FromSlice([]int{1, 2, 3, 4})) != 4 || Length[int](nil) != 0 {
		t.Fatal("Length wrong")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	l := Map(func(x int) int { return x * 2 }, FromSlice([]int{1, 2, 3}))
	got := ToSlice(l)
	if got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("Map = %v", got)
	}
	if Map(func(x int) int { return x }, nil) != nil {
		t.Fatal("Map nil wrong")
	}
}

func TestFilter(t *testing.T) {
	l := Filter(func(x int) bool { return x%2 == 1 }, FromSlice([]int{1, 2, 3, 4, 5}))
	got := ToSlice(l)
	if len(got) != 3 || got[2] != 5 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestFoldl(t *testing.T) {
	got := Foldl(FromSlice([]int{1, 2, 3}), 0, func(a, v int) int { return a*10 + v })
	if got != 123 {
		t.Fatalf("Foldl = %d", got)
	}
}

func TestAppend(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{3})
	got := ToSlice(Append(a, b))
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Append = %v", got)
	}
	if ToSlice(Append(nil, b))[0] != 3 {
		t.Fatal("Append nil head wrong")
	}
	// Original a unchanged (persistent semantics).
	if Length(a) != 2 {
		t.Fatal("Append mutated its first argument")
	}
}

func TestConcatMap(t *testing.T) {
	l := ConcatMap(func(x int) *Cell[int] {
		out := make([]int, x)
		for i := range out {
			out[i] = x
		}
		return FromSlice(out)
	}, FromSlice([]int{1, 0, 2}))
	got := ToSlice(l)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("ConcatMap = %v", got)
	}
}

// Property: list pipeline equals slice pipeline.
func TestListPipelineEquivalence(t *testing.T) {
	prop := func(xs []int16) bool {
		l := FromSlice(xs)
		got := Foldl(Filter(func(x int32) bool { return x%2 == 0 },
			Map(func(x int16) int32 { return int32(x) * 3 }, l)),
			int64(0), func(a int64, v int32) int64 { return a + int64(v) })
		var want int64
		for _, x := range xs {
			if v := int32(x) * 3; v%2 == 0 {
				want += int64(v)
			}
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunked(t *testing.T) {
	xs := make([]float64, 2500)
	for i := range xs {
		xs[i] = float64(i)
	}
	ch := ChunkSlice(xs, 1000)
	if len(ch.Chunks) != 3 || len(ch.Chunks[2]) != 500 {
		t.Fatalf("chunks = %d, last %d", len(ch.Chunks), len(ch.Chunks[2]))
	}
	if ch.Len() != 2500 {
		t.Fatalf("Len = %d", ch.Len())
	}
	flat := ch.Flatten()
	for i := range xs {
		if flat[i] != xs[i] {
			t.Fatalf("flatten[%d] = %v", i, flat[i])
		}
	}
}

func TestChunkSliceInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChunkSlice(nil, 0)
}
