package eden

import (
	"errors"
	"strings"
	"testing"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

func init() {
	// Test processes, registered once like production kernels.
	RegisterProcess("t.double", func(_ *Proc, in []byte) ([]byte, error) {
		v, err := serial.Unmarshal(serial.IntC(), in)
		if err != nil {
			return nil, err
		}
		return serial.Marshal(serial.IntC(), v*2), nil
	})
	RegisterProcess("t.sumvec", func(_ *Proc, in []byte) ([]byte, error) {
		xs, err := serial.Unmarshal(serial.F64s(), in)
		if err != nil {
			return nil, err
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return serial.Marshal(serial.F64C(), s), nil
	})
	RegisterProcess("t.fail", func(_ *Proc, in []byte) ([]byte, error) {
		return nil, errors.New("task exploded")
	})
}

func TestSpawnAwait(t *testing.T) {
	_, err := Run(Config{Processes: 3}, func(m *Master) error {
		if err := m.Spawn(1, "t.double", serial.Marshal(serial.IntC(), 21)); err != nil {
			return err
		}
		out, err := m.Await(1)
		if err != nil {
			return err
		}
		v, err := serial.Unmarshal(serial.IntC(), out)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("result = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnInvalidRank(t *testing.T) {
	_, err := Run(Config{Processes: 2}, func(m *Master) error {
		if err := m.Spawn(0, "t.double", nil); err == nil {
			return errors.New("spawn on master accepted")
		}
		if err := m.Spawn(5, "t.double", nil); err == nil {
			return errors.New("spawn out of range accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownProcessReportsError(t *testing.T) {
	_, err := Run(Config{Processes: 2}, func(m *Master) error {
		if err := m.Spawn(1, "t.nonexistent", nil); err != nil {
			return err
		}
		_, err := m.Await(1)
		if err == nil || !strings.Contains(err.Error(), "unknown process") {
			t.Errorf("await err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProcessErrorSurfaces(t *testing.T) {
	_, err := Run(Config{Processes: 2}, func(m *Master) error {
		if err := m.Spawn(1, "t.fail", nil); err != nil {
			return err
		}
		_, err := m.Await(1)
		if err == nil || !strings.Contains(err.Error(), "task exploded") {
			t.Errorf("await err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParMapFlat(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 8} {
		cfg := Config{Processes: procs}
		var got []int
		_, err := Run(cfg, func(m *Master) error {
			inputs := make([]int, 23)
			for i := range inputs {
				inputs[i] = i
			}
			out, err := ParMapT(m, "t.double", serial.IntC(), serial.IntC(), inputs)
			got = out
			return err
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("procs=%d: out[%d] = %d", procs, i, v)
			}
		}
	}
}

func TestTwoLevelParMap(t *testing.T) {
	for _, shape := range []Config{
		{Processes: 8, ProcsPerNode: 4},
		{Processes: 6, ProcsPerNode: 2},
		{Processes: 4, ProcsPerNode: 4},
		{Processes: 3, ProcsPerNode: 0}, // single node
	} {
		var got []int
		_, err := Run(shape, func(m *Master) error {
			inputs := make([]int, 31)
			for i := range inputs {
				inputs[i] = i * 3
			}
			out, err := TwoLevelParMapT(m, "t.double", serial.IntC(), serial.IntC(), inputs)
			got = out
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", shape, err)
		}
		for i, v := range got {
			if v != 6*i {
				t.Fatalf("%+v: out[%d] = %d", shape, i, v)
			}
		}
	}
}

func TestTwoLevelReducesMasterTraffic(t *testing.T) {
	// With bundles per node, the master exchanges messages with leaders
	// only: fewer master-touching messages than flat parMap's per-task
	// exchange.
	inputs := make([]float64, 64)
	mkTasks := func() [][]float64 {
		tasks := make([][]float64, 64)
		for i := range tasks {
			tasks[i] = inputs
		}
		return tasks
	}
	flatStats, err := Run(Config{Processes: 16, ProcsPerNode: 4}, func(m *Master) error {
		_, err := ParMapT(m, "t.sumvec", serial.F64s(), serial.F64C(), mkTasks())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	twoStats, err := Run(Config{Processes: 16, ProcsPerNode: 4}, func(m *Master) error {
		_, err := TwoLevelParMapT(m, "t.sumvec", serial.F64s(), serial.F64C(), mkTasks())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Master (rank 0) sends: flat sends 60 task messages; two-level sends 3
	// bundles (+ shutdowns in both).
	if twoStats.SentBytes[0] >= flatStats.SentBytes[0] {
		t.Fatalf("two-level master sent %d bytes, flat sent %d", twoStats.SentBytes[0], flatStats.SentBytes[0])
	}
}

func TestParMapReduce(t *testing.T) {
	_, err := Run(Config{Processes: 4, ProcsPerNode: 2}, func(m *Master) error {
		tasks := [][]float64{{1, 2}, {3}, {4, 5, 6}, {}}
		got, err := ParMapReduceT(m, "t.sumvec", serial.F64s(), serial.F64C(), tasks,
			0, func(a, b float64) float64 { return a + b })
		if err != nil {
			return err
		}
		if got != 21 {
			t.Errorf("reduce = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageBufferLimitFailsLikeSgemm(t *testing.T) {
	// The paper's §4.3 failure mode: data too large for Eden's runtime to
	// buffer.
	cfg := Config{Processes: 2, MaxMessageBytes: 1024}
	_, err := Run(cfg, func(m *Master) error {
		big := make([]float64, 10000)
		_, err := ParMapT(m, "t.sumvec", serial.F64s(), serial.F64C(), [][]float64{big, big})
		return err
	})
	if err == nil || !errors.Is(err, transport.ErrMessageTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeaderRejectsUnknownInnerProcess(t *testing.T) {
	// A two-level bundle naming an unregistered inner process must surface
	// a clear error through the leader, not hang.
	_, err := Run(Config{Processes: 4, ProcsPerNode: 2}, func(m *Master) error {
		_, err := TwoLevelParMapT(m, "t.not-registered", serial.IntC(), serial.IntC(), []int{1, 2, 3})
		if err == nil {
			return errors.New("unknown inner process accepted")
		}
		if !strings.Contains(err.Error(), "unknown process") {
			return errors.New("wrong error: " + err.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProcessPanicAbortsMachine(t *testing.T) {
	RegisterProcess("t.panic", func(*Proc, []byte) ([]byte, error) {
		panic("process exploded")
	})
	_, err := Run(Config{Processes: 2}, func(m *Master) error {
		if err := m.Spawn(1, "t.panic", nil); err != nil {
			return err
		}
		_, err := m.Await(1)
		return err
	})
	if err == nil {
		t.Fatal("panic in process not reported")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Processes: 0}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Run(Config{Processes: 4, ProcsPerNode: 3}, nil); err == nil {
		t.Fatal("non-dividing ProcsPerNode accepted")
	}
}

func TestMasterPanicReported(t *testing.T) {
	_, err := Run(Config{Processes: 2}, func(m *Master) error {
		panic("master died")
	})
	if err == nil || !strings.Contains(err.Error(), "master died") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateProcessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterProcess("t.double", func(*Proc, []byte) ([]byte, error) { return nil, nil })
}

func TestRunLocal(t *testing.T) {
	_, err := Run(Config{Processes: 1}, func(m *Master) error {
		out, err := m.RunLocal("t.double", serial.Marshal(serial.IntC(), 5))
		if err != nil {
			return err
		}
		v, _ := serial.Unmarshal(serial.IntC(), out)
		if v != 10 {
			t.Errorf("RunLocal = %d", v)
		}
		if _, err := m.RunLocal("t.unknown", nil); err == nil {
			t.Error("unknown RunLocal accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
