//go:build race

package perfmodel

// raceEnabled reports that this binary was built with -race, whose
// instrumentation inflates measured kernel costs by large, non-uniform
// factors; calibration-shape assertions are skipped under it.
const raceEnabled = true
