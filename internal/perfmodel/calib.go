package perfmodel

import (
	"time"

	"triolet/internal/array"
	"triolet/internal/domain"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/serial"
)

// Calibration holds the measured per-unit costs, in seconds per unit, that
// feed the analytic model. Indexing by Impl gives each implementation's
// measured kernel cost.
type Calibration struct {
	// MRIQUnit is the cost of one voxel×sample update.
	MRIQUnit [3]float64
	// SGEMMMac is the cost of one multiply-accumulate in the dot-product
	// inner loop.
	SGEMMMac [3]float64
	// SGEMMTransposeElem is the cost of moving one element during
	// transposition.
	SGEMMTransposeElem float64
	// TPACFPair is the cost of scoring one pair (including the bin scan).
	TPACFPair [3]float64
	// CUTCPCell is the cost of one grid-cell visit in an atom's bounding
	// box.
	CUTCPCell [3]float64
	// SerPerByte is the cost of serializing one byte of pointer-free
	// array data (internal/serial's block path), deserialization included.
	SerPerByte float64
	// AllocPerByte is the cost of allocating and faulting in one byte of
	// a large buffer — the model's stand-in for the paper's GC overhead
	// on tens-of-megabyte messages (§4.3, §4.5).
	AllocPerByte float64
	// AddF32 is the cost of one element of AddInto on float32 grids (the
	// histogram/grid merge step).
	AddF32 float64
}

// measure times f repeatedly and returns best-observed seconds per unit,
// where each call of f performs units work items. Taking the minimum
// rejects scheduler noise, which matters on a small shared machine:
// identical kernels must calibrate to identical costs.
func measure(units int, f func()) float64 {
	const minDur = 25 * time.Millisecond
	const minCalls = 5
	f() // warm up
	best := time.Duration(1<<62 - 1)
	total := time.Duration(0)
	for calls := 0; calls < minCalls || total < minDur; calls++ {
		start := time.Now()
		f()
		d := time.Since(start)
		total += d
		if d < best {
			best = d
		}
	}
	return best.Seconds() / float64(units)
}

var sink float64 // defeat dead-code elimination

// CalibratePlanning measures only what the AutoPar planner consumes: the
// Triolet-implementation unit costs plus the serialization, allocation,
// and grid-merge costs. Skipping the RefC/Eden variants makes it ~3x
// cheaper than Calibrate, which matters because the planner runs it at
// tool startup rather than once per figure sweep. RefC/Eden slots are
// left zero — a planning calibration must not feed the figure model.
func CalibratePlanning() Calibration {
	var c Calibration

	{
		in := mriq.Gen(192, 256, 42)
		units := in.NumVoxels() * in.NumSamples()
		c.MRIQUnit[Triolet] = measure(units, func() { sink += float64(mriq.SeqTriolet(in)[0].Re) })
	}
	{
		in := sgemm.Gen(320, 320, 320, 42)
		c.SGEMMMac[Triolet] = measure(320*320*320, func() { sink += float64(sgemm.SeqTriolet(in).Data[0]) })
	}
	{
		in := tpacf.Gen(96, 4, 20, 42)
		n := int64(96)
		s := int64(4)
		units := int(n*(n-1)/2 + s*(n*n) + s*(n*(n-1)/2))
		c.TPACFPair[Triolet] = measure(units, func() { sink += float64(tpacf.SeqTriolet(in).DD[0]) })
	}
	{
		in := cutcp.Gen(64, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 42)
		units := 0
		for _, a := range in.Atoms {
			zr, yr, xr := cutcp.AtomBox(in.Geo, a)
			units += zr.Len() * yr.Len() * xr.Len()
		}
		c.CUTCPCell[Triolet] = measure(units, func() { sink += float64(cutcp.SeqTriolet(in)[0]) })
	}
	measureCommon(&c)
	return c
}

// Calibrate measures every unit cost on the current machine. It takes on
// the order of a second and should be called once per process.
func Calibrate() Calibration {
	var c Calibration

	// mri-q: 192 voxels × 256 samples.
	{
		in := mriq.Gen(192, 256, 42)
		units := in.NumVoxels() * in.NumSamples()
		c.MRIQUnit[RefC] = measure(units, func() { sink += float64(mriq.Seq(in)[0].Re) })
		c.MRIQUnit[Triolet] = measure(units, func() { sink += float64(mriq.SeqTriolet(in)[0].Re) })
		c.MRIQUnit[Eden] = measure(units, func() { sink += float64(mriq.SeqEden(in)[0].Re) })
	}

	// sgemm: 320³, large enough that per-element pipeline overhead is
	// amortized over a realistic K as it would be at paper scale.
	{
		in := sgemm.Gen(320, 320, 320, 42)
		units := 320 * 320 * 320
		c.SGEMMMac[RefC] = measure(units, func() { sink += float64(sgemm.Seq(in).Data[0]) })
		c.SGEMMMac[Triolet] = measure(units, func() { sink += float64(sgemm.SeqTriolet(in).Data[0]) })
		c.SGEMMMac[Eden] = measure(units, func() { sink += float64(sgemm.SeqEden(in).Data[0]) })

		m := array.NewMatrix[float32](256, 256)
		c.SGEMMTransposeElem = measure(256*256, func() {
			sink += float64(array.Transpose(m).Data[0])
		})
	}

	// tpacf: 96 points, 4 random sets, 20 bins.
	{
		in := tpacf.Gen(96, 4, 20, 42)
		n := int64(96)
		s := int64(4)
		units := int(n*(n-1)/2 + s*(n*n) + s*(n*(n-1)/2))
		c.TPACFPair[RefC] = measure(units, func() { sink += float64(tpacf.Seq(in).DD[0]) })
		c.TPACFPair[Triolet] = measure(units, func() { sink += float64(tpacf.SeqTriolet(in).DD[0]) })
		c.TPACFPair[Eden] = measure(units, func() { sink += float64(tpacf.SeqEden(in).DD[0]) })
	}

	// cutcp: 64 atoms on a 16³ grid.
	{
		in := cutcp.Gen(64, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 42)
		units := 0
		for _, a := range in.Atoms {
			zr, yr, xr := cutcp.AtomBox(in.Geo, a)
			units += zr.Len() * yr.Len() * xr.Len()
		}
		c.CUTCPCell[RefC] = measure(units, func() { sink += float64(cutcp.Seq(in)[0]) })
		c.CUTCPCell[Triolet] = measure(units, func() { sink += float64(cutcp.SeqTriolet(in)[0]) })
		c.CUTCPCell[Eden] = measure(units, func() { sink += float64(cutcp.SeqEden(in)[0]) })
	}

	measureCommon(&c)
	return c
}

// measureCommon fills the implementation-independent costs shared by
// Calibrate and CalibratePlanning.
func measureCommon(c *Calibration) {
	// Serialization: block-encode + decode 1 MB of float32.
	{
		xs := make([]float32, 256*1024)
		bytes := 4 * len(xs)
		c.SerPerByte = measure(bytes, func() {
			w := serial.NewWriter(bytes + 16)
			w.F32Slice(xs)
			out := serial.NewReader(w.Bytes()).F32Slice()
			sink += float64(out[0])
		})
	}

	// Allocation: allocate and touch 4 MB.
	{
		const n = 1 << 20 // float32 count → 4 MB
		c.AllocPerByte = measure(4*n, func() {
			buf := make([]float32, n)
			for i := 0; i < n; i += 1024 {
				buf[i] = 1
			}
			sink += float64(buf[0])
		})
	}

	// Grid merge: AddInto on float32.
	{
		const n = 1 << 18
		dst := make([]float32, n)
		src := make([]float32, n)
		c.AddF32 = measure(n, func() {
			array.AddInto(dst, src)
			sink += float64(dst[0])
		})
	}
}
