package perfmodel_test

// The planner-to-oracle pinning test (an external test file: perfmodel
// cannot import diffcheck in non-test code without entangling the model in
// the executor's dependency tree). Whatever configuration the planner
// emits — placement, node count, grain — must be one the cross-mode
// determinism oracle certifies: running a pipeline under the planned mode
// with the planned grain as the chunk width may never diverge from the
// sequential reference.

import (
	"testing"

	"triolet/internal/diffcheck"
	"triolet/internal/iter"
	"triolet/internal/perfmodel"
)

// oracleMode projects a plan onto the diffcheck execution matrix the same
// way the runtime realizes it: seq on one goroutine, pool on the local
// work-stealing executor, farm as distributed chunks over Nodes ranks.
func oracleMode(p perfmodel.Plan) diffcheck.Mode {
	switch p.Mode {
	case perfmodel.ExecSeq:
		return diffcheck.Mode{Engine: diffcheck.Block, Exec: diffcheck.Seq}
	case perfmodel.ExecPool:
		return diffcheck.Mode{Engine: diffcheck.Block, Exec: diffcheck.LocalPar}
	default:
		return diffcheck.Mode{Engine: diffcheck.Block, Exec: diffcheck.Par, Nodes: p.Nodes}
	}
}

func TestPlannerConfigsPassDeterminismOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed oracle cells are slow under -short")
	}
	pl := perfmodel.NewPlanner(perfmodel.CalibratePlanning(), perfmodel.VirtualMachine(), 4)

	// Workloads spanning the decision space: a tiny job (seq), a mid-size
	// pool-friendly job, and compute-heavy jobs that must distribute.
	workloads := []perfmodel.Workload{
		{Name: "o-tiny", Elems: 64, UnitsPerElem: 1, Class: perfmodel.CostGeneric, UnitCost: 2e-9},
		{Name: "o-mid", Elems: 4096, UnitsPerElem: 50, Class: perfmodel.CostGeneric, UnitCost: 5e-9},
		{Name: "o-heavy", Elems: 4096, BytesPerElem: 8, BytesPerResult: 8,
			UnitsPerElem: 2e5, Class: perfmodel.CostMRIQ, Reduce: perfmodel.ReduceGather},
		{Name: "o-grid", Elems: 2048, BytesPerElem: 16,
			UnitsPerElem: 1e5, Class: perfmodel.CostCUTCP, Reduce: perfmodel.ReduceGrid, ReduceBytes: 4096},
	}

	seed := make([]int64, 4096)
	for i := range seed {
		seed[i] = int64(7*i - 1000)
	}
	sawFarm, sawLocal := false, false
	for _, w := range workloads {
		p := pl.Plan(w)
		if p.Mode == perfmodel.ExecFarm {
			sawFarm = true
		} else {
			sawLocal = true
		}
		pipe := diffcheck.Pipeline{
			Seed: seed[:w.Elems],
			Ops:  []iter.PipeOp{{Kind: 0, A: 3, B: 5}},
		}
		modes := []diffcheck.Mode{
			{Engine: diffcheck.PerElement, Exec: diffcheck.Seq}, // reference
			oracleMode(p),
		}
		m, err := diffcheck.CheckModes(pipe, modes, diffcheck.Options{Chunk: p.Grain, Cores: pl.Cores})
		if err != nil {
			t.Fatalf("%s (%s): oracle error: %v", w.Name, p, err)
		}
		if m != nil {
			t.Fatalf("%s: planner chose %s, oracle flags divergence:\n%s", w.Name, p, m)
		}
	}
	// The pin is only meaningful if the planner actually exercised both
	// sides of the placement decision.
	if !sawFarm || !sawLocal {
		t.Fatalf("workload set no longer spans the decision space (farm=%v local=%v)", sawFarm, sawLocal)
	}
}
