//go:build !race

package perfmodel

const raceEnabled = false
