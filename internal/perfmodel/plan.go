package perfmodel

import (
	"fmt"

	"triolet/internal/sched"
)

// This file closes the model→runtime loop (ROADMAP item 5): instead of the
// programmer hand-picking a node count and grain per benchmark, a Planner
// consults the calibrated unit costs to choose sequential vs. node-local
// pool vs. distributed farm execution, the virtual node count, the grain
// (snapped to sched.BlockAlign so leaf ranges drive full-width block
// kernels), and the serialization path. The resulting Plan carries its
// predicted Breakdown so the runtime can record predicted-vs-observed
// trace instants and feed an Online recalibrator.

// CostClass names which calibrated unit cost prices a workload's kernel.
// The four Parboil classes use the Triolet-implementation measurements
// from Calibrate; CostGeneric uses the caller-supplied Workload.UnitCost.
type CostClass int

const (
	CostGeneric CostClass = iota
	CostMRIQ
	CostSGEMM
	CostTPACF
	CostCUTCP
	numCostClasses
)

func (c CostClass) String() string {
	switch c {
	case CostGeneric:
		return "generic"
	case CostMRIQ:
		return "mriq"
	case CostSGEMM:
		return "sgemm"
	case CostTPACF:
		return "tpacf"
	case CostCUTCP:
		return "cutcp"
	}
	return fmt.Sprintf("CostClass(%d)", int(c))
}

// baseUnitCost reads the class's statically calibrated seconds-per-unit.
func (c CostClass) baseUnitCost(cal Calibration, generic float64) float64 {
	switch c {
	case CostMRIQ:
		return cal.MRIQUnit[Triolet]
	case CostSGEMM:
		return cal.SGEMMMac[Triolet]
	case CostTPACF:
		return cal.TPACFPair[Triolet]
	case CostCUTCP:
		return cal.CUTCPCell[Triolet]
	}
	return generic
}

// ReduceShape describes what travels back from workers to the master.
type ReduceShape int

const (
	// ReduceGather concatenates per-element results at the master
	// (BytesPerResult bytes per element cross the fabric).
	ReduceGather ReduceShape = iota
	// ReduceScalar returns one small combined block per worker
	// (ReduceBytes each) — sums, counters, small histograms.
	ReduceScalar
	// ReduceGrid merges a full-size array tree-wise: ReduceBytes per hop
	// plus an AddInto pass per hop (cutcp's grid, tpacf's bins at scale).
	ReduceGrid
)

func (r ReduceShape) String() string {
	switch r {
	case ReduceGather:
		return "gather"
	case ReduceScalar:
		return "scalar"
	case ReduceGrid:
		return "grid"
	}
	return fmt.Sprintf("ReduceShape(%d)", int(r))
}

// Workload describes one skeleton invocation for planning. Elements are the
// outer decomposition axis; a task is a contiguous element range.
type Workload struct {
	// Name keys the online recalibrator's per-workload bias correction.
	Name string
	// Elems is the outer element count.
	Elems int
	// BytesPerElem is the input payload shipped per element when the
	// workload is distributed (per-task constant overhead excluded).
	BytesPerElem int
	// BytesPerResult is the result payload returned per element under
	// ReduceGather.
	BytesPerResult int
	// UnitsPerElem scales Elems into kernel work units (e.g. K MACs per
	// output element for sgemm).
	UnitsPerElem float64
	// Class picks the calibrated unit cost; UnitCost is used only for
	// CostGeneric.
	Class    CostClass
	UnitCost float64
	// Reduce and ReduceBytes describe the result shape (ReduceBytes is
	// the combined block size for ReduceScalar/ReduceGrid).
	Reduce      ReduceShape
	ReduceBytes int
	// Pointerless marks element data eligible for the serial.Raw
	// zero-copy path.
	Pointerless bool
}

// units is the workload's total kernel work in calibration units.
func (w Workload) units() float64 { return float64(w.Elems) * w.UnitsPerElem }

// ExecMode is the planner's placement decision.
type ExecMode int

const (
	// ExecSeq runs on the master goroutine with no parallel region.
	ExecSeq ExecMode = iota
	// ExecPool runs node-local on the master's work-stealing pool.
	ExecPool
	// ExecFarm distributes across Plan.Nodes virtual nodes.
	ExecFarm
)

func (m ExecMode) String() string {
	switch m {
	case ExecSeq:
		return "seq"
	case ExecPool:
		return "pool"
	case ExecFarm:
		return "farm"
	}
	return fmt.Sprintf("ExecMode(%d)", int(m))
}

// SerialPath is the planner's wire-encoding decision.
type SerialPath int

const (
	// SerCodec is the generic field-by-field codec.
	SerCodec SerialPath = iota
	// SerRaw aliases pointer-free backing arrays (serial.Raw), paying
	// allocation but not the per-byte encode/decode copy.
	SerRaw
)

func (s SerialPath) String() string {
	if s == SerRaw {
		return "raw"
	}
	return "codec"
}

// Plan is the planner's decision for one workload, with its prediction
// attached so callers can record predicted-vs-observed.
type Plan struct {
	Workload Workload
	Mode     ExecMode
	// Nodes is the virtual cluster size (1 unless Mode == ExecFarm).
	Nodes int
	// Grain is the per-range element grain for parallel loops, snapped to
	// sched.BlockAlign (never zero).
	Grain int
	// Tasks is the farm task count (0 unless Mode == ExecFarm).
	Tasks int
	// Serial is the chosen wire encoding (meaningful for ExecFarm).
	Serial SerialPath
	// Predicted is the modeled Breakdown for the chosen configuration,
	// bias-corrected when the recalibrator has seen this workload before.
	Predicted Breakdown
	// PredictedBytes is the modeled cross-fabric byte volume.
	PredictedBytes int64
}

// String renders the decision compactly: "farm@4 grain=512 raw 12.3ms".
func (p Plan) String() string {
	s := p.Mode.String()
	if p.Mode == ExecFarm {
		s = fmt.Sprintf("farm@%d", p.Nodes)
	}
	return fmt.Sprintf("%s grain=%d %s %.3gs", s, p.Grain, p.Serial, p.Predicted.Total())
}

// VirtualMachine models the in-process fabric the reproduction actually
// runs on: channel hops and memory copies instead of 10 GbE. Bandwidth is
// effectively a memcpy and latency a scheduler wakeup. The absolute values
// matter less than their ratio to compute cost — and the Online
// recalibrator's per-workload bias absorbs residual systematic error.
func VirtualMachine() Machine {
	return Machine{
		NetBandwidth:   4e9,   // in-process copy through the fabric
		NetLatency:     15e-6, // goroutine wakeup + frame bookkeeping
		LocalBandwidth: 6e9,
		LocalLatency:   5e-6,
	}
}

// tasksPerWorker over-decomposes farm work so stealing/reassignment can
// balance (mirrors sched.ParallelForRect's factor).
const tasksPerWorker = 4

// maxPlanNodes bounds the search: the paper's testbed is 8 nodes.
const maxPlanNodes = 8

// poolSpawnCost approximates the fixed cost of opening one parallel
// region (worker wakeup + deque seeding), charged to ExecPool/ExecFarm so
// tiny workloads plan sequential.
const poolSpawnCost = 20e-6

// Planner chooses execution plans from an Online cost source. It is
// stateless beyond the recalibrator; one Planner may serve many workloads.
type Planner struct {
	online *Online
	mach   Machine
	// MaxNodes caps the farm search (default 8); Cores is the per-node
	// pool width the plan will run with.
	MaxNodes int
	Cores    int
	// PhysCores, when set, caps the modeled parallel speedup at the
	// physical parallelism actually available to the in-process virtual
	// cluster. Zero trusts the paper-semantics model where every virtual
	// node owns real cores. An oversubscribed box time-slices virtual
	// ranks, so distributing there buys overhead, never speedup — a
	// planner that knows the box picks the local plan the measurements
	// favor.
	PhysCores int
}

// NewPlanner builds a planner over a static calibration (no history).
func NewPlanner(cal Calibration, mach Machine, cores int) *Planner {
	return NewPlannerOnline(NewOnline(cal, DefaultDecay), mach, cores)
}

// NewPlannerOnline builds a planner over an existing recalibrator, so a
// snapshot loaded from disk informs the first plan of a new process.
func NewPlannerOnline(o *Online, mach Machine, cores int) *Planner {
	if cores <= 0 {
		cores = 1
	}
	return &Planner{online: o, mach: mach, MaxNodes: maxPlanNodes, Cores: cores}
}

// Online exposes the planner's recalibrator for Observe/Commit feedback.
func (pl *Planner) Online() *Online { return pl.online }

// SnapGrain snaps a proposed grain to the sched.BlockAlign lattice:
// grains at or above one block round down to a block multiple (so leaf
// ranges drive full-width block kernels), smaller proposals clamp up to a
// full block. The result is always ≥ BlockAlign.
func SnapGrain(grain int) int {
	if grain < sched.BlockAlign {
		return sched.BlockAlign
	}
	return grain &^ (sched.BlockAlign - 1)
}

// grainFor sizes the grain so each of workers' deques sees several
// steal-able ranges, snapped to the block lattice and clamped to n.
func grainFor(n, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	g := SnapGrain(n / (workers * tasksPerWorker))
	if g > n && n >= sched.BlockAlign {
		g = SnapGrain(n)
	}
	return g
}

// Plan evaluates seq, pool, and farm@2..MaxNodes under the current
// (possibly recalibrated) unit costs and returns the minimum-predicted
// configuration.
func (pl *Planner) Plan(w Workload) Plan {
	unit := pl.online.UnitCost(w.Class, w.Class.baseUnitCost(pl.online.Base(), w.UnitCost))
	bias := pl.online.Bias(w.Name)
	work := w.units() * unit
	cores := pl.Cores
	cal := pl.online.Base()

	serial := SerCodec
	serCost := cal.SerPerByte + cal.AllocPerByte
	if w.Pointerless {
		// serial.Raw skips the per-byte encode/decode copy; the buffer
		// handoff still pays allocation-order cost on the receive side.
		serial = SerRaw
		serCost = cal.AllocPerByte
	}

	best := Plan{
		Workload:  w,
		Mode:      ExecSeq,
		Nodes:     1,
		Grain:     SnapGrain(w.Elems),
		Serial:    serial,
		Predicted: scale(Breakdown{Compute: work}, bias),
	}

	if cores > 1 {
		p := Plan{
			Workload: w,
			Mode:     ExecPool,
			Nodes:    1,
			Grain:    grainFor(w.Elems, cores),
			Serial:   serial,
			Predicted: scale(Breakdown{
				Compute: work / pl.speedup(cores),
				Serial:  poolSpawnCost,
			}, bias),
		}
		if p.Predicted.Total() < best.Predicted.Total() {
			best = p
		}
	}

	maxNodes := pl.MaxNodes
	if maxNodes > maxPlanNodes {
		maxNodes = maxPlanNodes
	}
	for n := 2; n <= maxNodes; n++ {
		p := pl.farmPlan(w, n, cores, work, serial, serCost, bias)
		if p.Predicted.Total() < best.Predicted.Total() {
			best = p
		}
	}
	return best
}

// farmPlan models distributing w across n nodes × cores.
func (pl *Planner) farmPlan(w Workload, n, cores int, work float64, serial SerialPath, serCost, bias float64) Plan {
	cal := pl.online.Base()
	workers := n - 1 // rank 0 masters; ranks 1..n-1 compute
	if workers < 1 {
		workers = 1
	}
	tasks := workers * tasksPerWorker
	if tasks > w.Elems {
		tasks = w.Elems
	}
	if tasks < 1 {
		tasks = 1
	}

	inBytes := float64(w.Elems) * float64(w.BytesPerElem)
	var outBytes, mergeCost float64
	msgs := float64(2 * tasks) // dispatch + result per task
	switch w.Reduce {
	case ReduceGather:
		outBytes = float64(w.Elems) * float64(w.BytesPerResult)
	case ReduceScalar:
		outBytes = float64(workers) * float64(w.ReduceBytes)
	case ReduceGrid:
		// The farm executor merges flat: every task ships its full-size
		// partial grid to the master, which AddIntos them in task order (no
		// tree combining on the in-process fabric). Model that, not the
		// binomial tree the paper's 10 GbE reduction would use — pricing
		// grid-shaped results per task is what keeps the planner from
		// over-distributing small grid workloads.
		outBytes = float64(tasks) * float64(w.ReduceBytes)
		mergeCost = outBytes / 4 * cal.AddF32
	}

	b := Breakdown{
		Compute: work/pl.speedup(workers*cores) + poolSpawnCost,
		Comm:    pl.mach.netTime(inBytes+outBytes, msgs),
		Serial:  (inBytes+outBytes)*serCost + mergeCost,
	}
	perWorker := w.Elems / workers
	if perWorker < 1 {
		perWorker = 1
	}
	return Plan{
		Workload:       w,
		Mode:           ExecFarm,
		Nodes:          n,
		Grain:          grainFor(perWorker, cores),
		Tasks:          tasks,
		Serial:         serial,
		Predicted:      scale(b, bias),
		PredictedBytes: int64(inBytes + outBytes),
	}
}

// speedup is the modeled parallel speedup of running on n workers,
// capped at PhysCores when the planner knows the box's real parallelism.
func (pl *Planner) speedup(n int) float64 {
	if pl.PhysCores > 0 && n > pl.PhysCores {
		n = pl.PhysCores
	}
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// scale applies the recalibrator's observed/predicted bias multiplier to
// every component, preserving the breakdown's proportions.
func scale(b Breakdown, bias float64) Breakdown {
	if bias <= 0 {
		bias = 1
	}
	b.Compute *= bias
	b.Comm *= bias
	b.Serial *= bias
	return b
}
