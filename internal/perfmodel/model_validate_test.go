package perfmodel

import (
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/tpacf"
)

// These tests pin the model's communication-volume formulas to reality:
// they run the actual distributed implementations on the virtual cluster
// and compare the fabric's metered byte counts with the closed-form
// volumes the model charges. Headers, kernel-invocation broadcasts, and
// shutdown traffic make real counts slightly larger; the tolerance bounds
// that slack.

func within(t *testing.T, name string, measured, modeled float64, slack float64) {
	t.Helper()
	if modeled <= 0 {
		t.Fatalf("%s: modeled %v", name, modeled)
	}
	ratio := measured / modeled
	if ratio < 1.0 || ratio > 1.0+slack {
		t.Errorf("%s: measured %v bytes vs modeled %v (ratio %.3f, want [1.0, %.2f])",
			name, measured, modeled, ratio, 1.0+slack)
	}
}

func TestMRIQTrioletCommFormula(t *testing.T) {
	const nodes = 4
	in := mriq.Gen(4000, 128, 7)
	stats, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 1}, func(s *cluster.Session) error {
		_, err := mriq.Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	V, K := float64(in.NumVoxels()), float64(in.NumSamples())
	frac := float64(nodes-1) / float64(nodes)
	// Model charges: scatter 12V + gather 8V (cross fraction) + broadcast
	// of 16K bytes along N-1 tree edges.
	modeled := frac*(12*V+8*V) + float64(nodes-1)*16*K
	within(t, "mriq/triolet", float64(stats.Bytes), modeled, 0.10)
}

func TestMRIQEdenCommFormula(t *testing.T) {
	cfg := eden.Config{Processes: 8, ProcsPerNode: 2}
	in := mriq.Gen(6*mriq.EdenChunkSize, 256, 9)
	stats, err := eden.Run(cfg, func(m *eden.Master) error {
		_, err := mriq.Eden(m, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 chunk tasks, each carrying 12·1024 input + 16·K replicated samples
	// and returning 8·1024 bytes. Every task not evaluated by the master
	// itself crosses the fabric at least once (master→leader) and tasks
	// for non-leader workers cross again (leader→worker). With 4 nodes of
	// 2 processes: node 0's tasks go master→worker once; other nodes'
	// tasks go master→leader and (half) leader→worker.
	taskIn := 12.0*1024 + 16*float64(in.NumSamples())
	taskOut := 8.0 * 1024
	// Task partition over 4 nodes of 2 processes: [2,2,1,1].
	//   node 0 (master is its leader): 1 task forwarded to its worker → 1
	//   node 1: bundle of 2 in/out + 1 forwarded                      → 3
	//   nodes 2, 3: bundle of 1 each, leader evaluates it locally     → 2
	// for 6 task-sized crossings in each direction.
	modeled := 6 * (taskIn + taskOut)
	within(t, "mriq/eden", float64(stats.Bytes), modeled, 0.15)
}

func TestTPACFTrioletCommFormula(t *testing.T) {
	const nodes = 4
	in := tpacf.Gen(300, 12, 16, 11)
	stats, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 1}, func(s *cluster.Session) error {
		_, err := tpacf.Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	setBytes := float64(300 * 12) // 12 bytes per point
	frac := float64(nodes-1) / float64(nodes)
	// Scatter 12 sets (cross fraction), broadcast obs along tree edges,
	// reduce two histograms up the tree (one hop per non-root rank).
	histBytes := float64(2*16) * 8
	modeled := frac*12*setBytes + float64(nodes-1)*setBytes + float64(nodes-1)*histBytes
	within(t, "tpacf/triolet", float64(stats.Bytes), modeled, 0.15)
}

func TestCUTCPTrioletCommFormula(t *testing.T) {
	const nodes = 4
	in := cutcp.Gen(400, domain.Dim3{D: 12, H: 12, W: 12}, 0.5, 1.5, 13)
	stats, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 1}, func(s *cluster.Session) error {
		_, err := cutcp.Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	atomBytes := float64(400 * 16)
	gridBytes := float64(in.Geo.Points() * 4)
	frac := float64(nodes-1) / float64(nodes)
	// Scatter atoms; every non-root rank sends one full grid up the
	// reduction tree.
	modeled := frac*atomBytes + float64(nodes-1)*gridBytes
	within(t, "cutcp/triolet", float64(stats.Bytes), modeled, 0.10)
}
