package perfmodel

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestOnlineUnitCostFallback(t *testing.T) {
	o := NewOnline(planTestCal(), DefaultDecay)
	if got := o.UnitCost(CostMRIQ, 7e-9); got != 7e-9 {
		t.Fatalf("unseen class returned %g, want fallback", got)
	}
	o.Observe(CostMRIQ, 0, 1000, 10*time.Microsecond) // 10ns/unit
	o.Commit()
	if got := o.UnitCost(CostMRIQ, 7e-9); math.Abs(got-1e-8) > 1e-12 {
		t.Fatalf("first sample set unit cost %g, want 1e-8", got)
	}
	if o.Samples(CostMRIQ) != 1 {
		t.Fatalf("Samples = %d, want 1", o.Samples(CostMRIQ))
	}
	// Invalid observations are dropped, not committed.
	o.Observe(CostMRIQ, 0, 0, time.Second)
	o.Observe(CostMRIQ, 0, 100, 0)
	o.Observe(CostClass(99), 0, 100, time.Second)
	o.Commit()
	if o.Samples(CostMRIQ) != 1 {
		t.Fatalf("invalid samples committed: %d", o.Samples(CostMRIQ))
	}
}

func TestOnlineSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotName)

	o := NewOnline(planTestCal(), 0.5)
	o.Observe(CostSGEMM, 0, 1e6, time.Millisecond)
	o.Observe(CostSGEMM, 1, 1e6, 2*time.Millisecond)
	o.Observe(CostTPACF, 0, 500, 10*time.Microsecond)
	o.Commit()
	o.ObserveBias("sgemm", 0.010, 0.012)
	o.ObserveBias("sgemm", 0.012, 0.011)
	o.ObserveBias("mriq", 0.5, 0.4)
	if err := o.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	got, err := LoadOnline(path, Calibration{}, DefaultDecay)
	if err != nil {
		t.Fatalf("LoadOnline: %v", err)
	}
	for _, c := range []CostClass{CostGeneric, CostMRIQ, CostSGEMM, CostTPACF, CostCUTCP} {
		if got.Samples(c) != o.Samples(c) {
			t.Errorf("class %v: samples %d, want %d", c, got.Samples(c), o.Samples(c))
		}
		if w, g := o.UnitCost(c, -1), got.UnitCost(c, -1); w != g {
			t.Errorf("class %v: unit cost %g, want %g", c, g, w)
		}
	}
	for _, name := range []string{"sgemm", "mriq", "never-seen"} {
		if w, g := o.Bias(name), got.Bias(name); w != g {
			t.Errorf("bias %q: %g, want %g", name, g, w)
		}
	}
	// The base calibration travels inside the snapshot, not from the
	// caller's argument.
	if got.Base() != o.Base() {
		t.Errorf("base calibration did not round-trip")
	}
}

func TestLoadOnlineMissingFile(t *testing.T) {
	o, err := LoadOnline(filepath.Join(t.TempDir(), "absent.json"), planTestCal(), DefaultDecay)
	if err != nil {
		t.Fatalf("missing snapshot is not an error, got %v", err)
	}
	if o == nil || o.Samples(CostMRIQ) != 0 {
		t.Fatalf("missing snapshot must yield a fresh recalibrator")
	}
	if o.Base() != planTestCal() {
		t.Fatalf("fresh recalibrator must carry the caller's calibration")
	}
}

func TestLoadOnlineCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.json": "{not json at all",
		"version.json": `{"version": 99, "decay": 0.25}`,
		"classes.json": `{"version": 1, "decay": 0.25, "unit": [1], "samples": [1]}`,
		"invalid.json": `{"version": 1, "decay": 0.25, "unit": [0,0,0,0,0], "samples": [3,0,0,0,0]}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		o, err := LoadOnline(path, planTestCal(), DefaultDecay)
		if err == nil {
			t.Errorf("%s: want a diagnostic error", name)
		}
		if o == nil {
			t.Fatalf("%s: fallback recalibrator is nil", name)
		}
		// The fallback is the static calibration with no history: plans
		// made from it are exactly the plans a fresh process would make.
		if o.Base() != planTestCal() {
			t.Errorf("%s: fallback lost the static calibration", name)
		}
		for c := CostClass(0); c < numCostClasses; c++ {
			if o.Samples(c) != 0 {
				t.Errorf("%s: fallback carries %d samples for %v", name, o.Samples(c), c)
			}
		}
	}
}

// TestOnlineCommitOrderDeterministic pins the recalibrator's central
// contract: the committed EWMA state is a function of the sample SET, not
// of heartbeat arrival order. Two recalibrators receive the same samples
// from concurrent goroutines in different interleavings (run under -race
// this also exercises Observe's locking).
func TestOnlineCommitOrderDeterministic(t *testing.T) {
	type sample struct {
		class CostClass
		task  int
		units float64
		d     time.Duration
	}
	var samples []sample
	rng := rand.New(rand.NewSource(42))
	for task := 0; task < 64; task++ {
		samples = append(samples, sample{
			class: CostClass(1 + task%4),
			task:  task,
			units: float64(100 + rng.Intn(1000)),
			d:     time.Duration(1+rng.Intn(5000)) * time.Microsecond,
		})
	}
	feed := func(o *Online, order []int) {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(order); i += 8 {
					s := samples[order[i]]
					o.Observe(s.class, s.task, s.units, s.d)
				}
			}(w)
		}
		wg.Wait()
		o.Commit()
	}

	a := NewOnline(planTestCal(), DefaultDecay)
	b := NewOnline(planTestCal(), DefaultDecay)
	fwd := make([]int, len(samples))
	rev := make([]int, len(samples))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(samples) - 1 - i
	}
	feed(a, fwd)
	feed(b, rev)

	for c := CostClass(0); c < numCostClasses; c++ {
		if a.Samples(c) != b.Samples(c) {
			t.Fatalf("class %v: %d vs %d samples", c, a.Samples(c), b.Samples(c))
		}
		ua, ub := a.UnitCost(c, -1), b.UnitCost(c, -1)
		if ua != ub {
			t.Fatalf("class %v: unit cost depends on arrival order: %g vs %g", c, ua, ub)
		}
	}
}

func TestObserveBiasCompounds(t *testing.T) {
	o := NewOnline(planTestCal(), 0.5)
	o.ObserveBias("w", 1.0, 2.0)
	if got := o.Bias("w"); got != 2.0 {
		t.Fatalf("first observation sets bias directly: got %g", got)
	}
	// Second run: prediction (already ×2) still observed 2× slow — the
	// residual folds in on top of the carried bias.
	o.ObserveBias("w", 1.0, 2.0)
	// decay 0.5: 0.5*(2*2) + 0.5*2 = 3
	if got := o.Bias("w"); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("compounded bias = %g, want 3.0", got)
	}
	// A perfectly predicted run (residual 1) pulls the bias back toward
	// its current value, never past it.
	o.ObserveBias("w", 3.0, 3.0)
	if got := o.Bias("w"); got != 3.0 {
		t.Fatalf("residual-1 run moved bias to %g", got)
	}
}
