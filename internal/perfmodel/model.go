package perfmodel

import (
	"math"

	"triolet/internal/domain"
)

// log2ceil is the depth of a binomial tree over n ranks.
func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// edenJitter models the paper's observation that Eden "tasks occasionally
// run significantly slower than normal; with more nodes, it is more likely
// that a task will be delayed" (§4.2): the compute critical path stretches
// with the process count.
func edenJitter(processes int) float64 {
	return 1 + 0.04*log2ceil(processes)
}

// ---------------------------------------------------------------- mri-q

// MRIQParams sizes the modeled mri-q run (paper-scale defaults in
// DefaultMRIQ).
type MRIQParams struct {
	Voxels, Samples int
}

// DefaultMRIQ is a 64³ image against 8192 k-space samples, sized to give a
// sequential C time in the paper's 20–200 s window.
func DefaultMRIQ() MRIQParams { return MRIQParams{Voxels: 64 * 64 * 64, Samples: 8192} }

// MRIQSeqTime is the modeled sequential execution time (paper Fig. 3).
func (c Calibration) MRIQSeqTime(p MRIQParams, impl Impl) float64 {
	return float64(p.Voxels) * float64(p.Samples) * c.MRIQUnit[impl]
}

// MRIQ models one (nodes, cores-per-node) point of paper Fig. 4.
func (c Calibration) MRIQ(m Machine, p MRIQParams, impl Impl, nodes, cores int) Breakdown {
	V, K := float64(p.Voxels), float64(p.Samples)
	voxIn := V * 12   // x, y, z float32
	voxOut := V * 8   // Re, Im float32
	samples := K * 16 // kx, ky, kz, phiMag

	var b Breakdown
	switch impl {
	case RefC, Triolet:
		b.Compute = V * K * c.MRIQUnit[impl] / float64(nodes*cores)
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			// Scatter voxel slices and gather sections: master-serialized.
			b.Comm = m.netTime(frac*(voxIn+voxOut), 2*float64(nodes-1))
			// Broadcast samples down the tree.
			b.Comm += log2ceil(nodes) * m.netTime(samples, 1)
			// Master-side codec work on everything it touches.
			b.Serial = (voxIn + voxOut + samples) * c.SerPerByte
			if impl == Triolet {
				// Garbage-collected message construction (paper §4.3):
				// every outgoing and incoming buffer is a fresh
				// allocation.
				b.Serial += (voxIn + voxOut + samples) * c.AllocPerByte
			}
		}
	case Eden:
		procs := nodes * cores
		b.Compute = V * K * c.MRIQUnit[Eden] / float64(procs) * edenJitter(procs)
		chunk := 1024.0
		tasks := math.Ceil(V / chunk)
		taskIn := chunk*12 + samples // samples replicated per task
		taskOut := chunk * 8
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			// Master → leader bundles and the returned result bundles.
			b.Comm = m.netTime(frac*tasks*(taskIn+taskOut), 2*float64(nodes-1))
		}
		// Leader → worker local copies within each node (no shared
		// memory), overlapped across nodes: one node's share on the
		// critical path.
		perNodeTasks := tasks / float64(nodes)
		b.Comm += m.localTime(perNodeTasks*(taskIn+taskOut), 2*perNodeTasks)
		// Master serializes every task (including the replicated samples).
		b.Serial = tasks * (taskIn + taskOut) * c.SerPerByte
		b.Serial += tasks * (taskIn + taskOut) * c.AllocPerByte // lazy heap
	}
	return b
}

// ---------------------------------------------------------------- sgemm

// SGEMMParams sizes the modeled sgemm run.
type SGEMMParams struct {
	M, K, N int
}

// DefaultSGEMM is the paper's 4k×4k product.
func DefaultSGEMM() SGEMMParams { return SGEMMParams{M: 4096, K: 4096, N: 4096} }

// SGEMMSeqTime is the modeled sequential execution time (transpose + loop
// nest).
func (c Calibration) SGEMMSeqTime(p SGEMMParams, impl Impl) float64 {
	macs := float64(p.M) * float64(p.K) * float64(p.N)
	transpose := float64(p.K) * float64(p.N) * c.SGEMMTransposeElem
	return macs*c.SGEMMMac[impl] + transpose
}

// SGEMM models one point of paper Fig. 5.
func (c Calibration) SGEMM(m Machine, p SGEMMParams, impl Impl, nodes, cores int) Breakdown {
	macs := float64(p.M) * float64(p.K) * float64(p.N)
	transposeWork := float64(p.K) * float64(p.N) * c.SGEMMTransposeElem

	// 2-D grid over the distribution unit (nodes for Triolet/RefC;
	// processes for Eden).
	gridBytes := func(units int) (inBytes, outBytes, maxUnitIn float64) {
		py, px := domain.NewDim2(p.M, p.N).GridShape(units)
		mb, nb := float64(p.M)/float64(py), float64(p.N)/float64(px)
		perUnitIn := (mb + nb) * float64(p.K) * 4
		return float64(units) * perUnitIn, float64(p.M) * float64(p.N) * 4, perUnitIn
	}

	var b Breakdown
	switch impl {
	case RefC, Triolet:
		// Transposition in shared memory on the master's cores (§4.3).
		b.Serial = transposeWork / float64(cores)
		b.Compute = macs * c.SGEMMMac[impl] / float64(nodes*cores)
		inBytes, outBytes, _ := gridBytes(nodes)
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*(inBytes+outBytes), 2*float64(nodes-1))
			b.Serial += (inBytes + outBytes) * c.SerPerByte
			if impl == Triolet {
				// The paper measures 40 % of Triolet's overhead at 8 nodes
				// as garbage collection on tens-of-MB messages.
				b.Serial += (inBytes + outBytes) * c.AllocPerByte
			}
		}
	case Eden:
		procs := nodes * cores
		// Sequential transposition: Eden has no shared memory, and
		// distributing it costs more than it saves (§4.3: 35 % of Eden's
		// 128-core time).
		b.Serial = transposeWork
		b.Compute = macs * c.SGEMMMac[Eden] / float64(procs) * edenJitter(procs)
		if procs == 1 {
			// One process: the master evaluates locally; nothing crosses
			// the runtime's message buffer.
			return b
		}
		inBytes, outBytes, perTaskIn := gridBytes(procs)
		// Bundles per node must fit Eden's message buffer (§4.3) — this is
		// the configuration the paper reports failing at ≥2 nodes.
		if m.EdenMaxMessage > 0 {
			if nodes > 1 && inBytes/float64(nodes) > float64(m.EdenMaxMessage) {
				return Breakdown{Failed: true}
			}
			if perTaskIn > float64(m.EdenMaxMessage) {
				return Breakdown{Failed: true}
			}
		}
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*(inBytes+outBytes), 2*float64(nodes-1))
		}
		b.Comm += m.localTime((inBytes+outBytes)/float64(nodes), 2*float64(cores))
		b.Serial += (inBytes + outBytes) * (c.SerPerByte + c.AllocPerByte)
	}
	return b
}

// ---------------------------------------------------------------- tpacf

// TPACFParams sizes the modeled tpacf run.
type TPACFParams struct {
	Points, Sets, Bins int
}

// DefaultTPACF is 100 random sets of 4096 points, Parboil's large scale.
func DefaultTPACF() TPACFParams { return TPACFParams{Points: 4096, Sets: 100, Bins: 20} }

func (p TPACFParams) pairs() (dd, distributed float64) {
	n := float64(p.Points)
	s := float64(p.Sets)
	dd = n * (n - 1) / 2
	distributed = s * (n*n + n*(n-1)/2)
	return
}

// TPACFSeqTime is the modeled sequential execution time.
func (c Calibration) TPACFSeqTime(p TPACFParams, impl Impl) float64 {
	dd, dist := p.pairs()
	return (dd + dist) * c.TPACFPair[impl]
}

// TPACF models one point of paper Fig. 7.
func (c Calibration) TPACF(m Machine, p TPACFParams, impl Impl, nodes, cores int) Breakdown {
	dd, dist := p.pairs()
	setBytes := float64(p.Points) * 12
	histBytes := float64(2*p.Bins) * 8

	var b Breakdown
	switch impl {
	case RefC, Triolet:
		// DD on the master's threads; the distributed loops across sets.
		ddTime := dd * c.TPACFPair[impl] / float64(cores)
		workers := math.Min(float64(p.Sets), float64(nodes*cores))
		b.Compute = ddTime + dist*c.TPACFPair[impl]/workers
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*float64(p.Sets)*setBytes, float64(nodes-1)) // scatter sets
			b.Comm += log2ceil(nodes) * m.netTime(setBytes, 1)                  // bcast obs
			b.Comm += log2ceil(nodes) * m.netTime(histBytes, 1)                 // reduce hists
			b.Serial = float64(p.Sets) * setBytes * c.SerPerByte
			if impl == Triolet {
				b.Serial += float64(p.Sets) * setBytes * c.AllocPerByte
			}
		}
	case Eden:
		procs := nodes * cores
		ddTime := dd * c.TPACFPair[Eden] // master, one core: no shared memory
		workers := math.Min(float64(p.Sets), float64(procs))
		b.Compute = ddTime + dist*c.TPACFPair[Eden]/workers*edenJitter(procs)
		// One task per set, each replicating the observed set.
		taskIn := 2 * setBytes
		taskOut := histBytes
		total := float64(p.Sets) * (taskIn + taskOut)
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*total, 2*float64(nodes-1))
		}
		b.Comm += m.localTime(total/float64(nodes), 2*float64(p.Sets)/float64(nodes))
		b.Serial = total * (c.SerPerByte + c.AllocPerByte)
	}
	return b
}

// ---------------------------------------------------------------- cutcp

// CUTCPParams sizes the modeled cutcp run.
type CUTCPParams struct {
	Atoms   int
	Dim     domain.Dim3
	Spacing float32
	Cutoff  float32
}

// DefaultCUTCP is 300k atoms on a 208³ grid (36 MB of float32) with a
// 12-cell cutoff radius — sized so the output-grid reduction dominates
// scaling, as the paper reports (§4.5).
func DefaultCUTCP() CUTCPParams {
	return CUTCPParams{
		Atoms:   300_000,
		Dim:     domain.Dim3{D: 208, H: 208, W: 208},
		Spacing: 0.5,
		Cutoff:  6.0,
	}
}

// cellsPerAtom is the interior bounding-box volume in cells.
func (p CUTCPParams) cellsPerAtom() float64 {
	edge := 2*float64(p.Cutoff)/float64(p.Spacing) + 1
	return edge * edge * edge
}

// CUTCPSeqTime is the modeled sequential execution time.
func (c Calibration) CUTCPSeqTime(p CUTCPParams, impl Impl) float64 {
	return float64(p.Atoms) * p.cellsPerAtom() * c.CUTCPCell[impl]
}

// CUTCP models one point of paper Fig. 8. The dominant scaling limit is
// summing the large output grids (paper §4.5), which the model charges on
// every merge hop.
func (c Calibration) CUTCP(m Machine, p CUTCPParams, impl Impl, nodes, cores int) Breakdown {
	work := float64(p.Atoms) * p.cellsPerAtom()
	grid := float64(p.Dim.Size())
	gridBytes := grid * 4
	atomBytes := float64(p.Atoms) * 16

	var b Breakdown
	switch impl {
	case RefC, Triolet:
		b.Compute = work * c.CUTCPCell[impl] / float64(nodes*cores)
		// Per-node merge of per-thread private grids (sequential on the
		// node, overlapped across nodes).
		b.Compute += float64(cores) * grid * c.AddF32
		if impl == Triolet {
			// Allocating one private grid per thread, GC-managed.
			b.Serial += float64(cores) * gridBytes * c.AllocPerByte
		}
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*atomBytes, float64(nodes-1)) // scatter atoms
			// Tree reduction of full grids: each hop ships, decodes, and
			// adds a grid.
			hop := m.netTime(gridBytes, 1) + grid*c.AddF32 + 2*gridBytes*c.SerPerByte
			if impl == Triolet {
				hop += gridBytes * c.AllocPerByte
			}
			b.Comm += log2ceil(nodes) * hop
			b.Serial += atomBytes * c.SerPerByte
		}
	case Eden:
		procs := nodes * cores
		b.Compute = work * c.CUTCPCell[Eden] / float64(procs) * edenJitter(procs)
		if procs == 1 {
			return b
		}
		// Every process returns a full grid, relayed grid-by-grid through
		// its leader; see below.
		// its leader (individual grids, not one bundle, so each message is
		// one grid); the master decodes and folds all of them
		// sequentially.
		if m.EdenMaxMessage > 0 && gridBytes > float64(m.EdenMaxMessage) {
			return Breakdown{Failed: true}
		}
		totalGrids := float64(procs) * gridBytes
		if nodes > 1 {
			frac := float64(nodes-1) / float64(nodes)
			b.Comm = m.netTime(frac*totalGrids, float64(procs))
		}
		b.Comm += m.localTime(totalGrids/float64(nodes), float64(cores))
		b.Serial = totalGrids*(c.SerPerByte+c.AllocPerByte) + float64(procs)*grid*c.AddF32
		b.Serial += float64(p.Atoms) * 16 * c.SerPerByte
	}
	return b
}

// CUTCPSlab models the repository's slab-decomposed extension
// (internal/parboil/cutcp/slab.go): the grid is partitioned into Z-slabs
// owned exclusively by one node each, atoms are routed to the slabs their
// cutoff boxes intersect (duplicating boundary atoms), and the gather
// returns disjoint slabs — eliminating the full-grid reduction that makes
// the paper's cutcp saturate (§4.5). Only the Triolet implementation
// exists; the model quantifies the projected paper-scale benefit recorded
// in EXPERIMENTS.md.
func (c Calibration) CUTCPSlab(m Machine, p CUTCPParams, nodes, cores int) Breakdown {
	work := float64(p.Atoms) * p.cellsPerAtom()
	grid := float64(p.Dim.Size())
	gridBytes := grid * 4
	atomBytes := float64(p.Atoms) * 16

	// Boundary duplication applies to atom ROUTING only: a straddling
	// atom is sent to both neighbouring slabs, but its box is clipped on
	// each side, so every grid cell is still computed exactly once
	// globally. The routed-atom volume grows by the straddler fraction
	// ~(boxEdge−1)/slabDepth.
	slabDepth := float64(p.Dim.D) / float64(nodes)
	boxEdge := 2*float64(p.Cutoff)/float64(p.Spacing) + 1
	dup := 1.0
	if nodes > 1 {
		dup = 1 + math.Min(1, (boxEdge-1)/slabDepth)
	}

	var b Breakdown
	b.Compute = work * c.CUTCPCell[Triolet] / float64(nodes*cores)
	// Per-node merge of per-thread private slabs (grid/nodes points each).
	b.Compute += float64(cores) * grid / float64(nodes) * c.AddF32
	b.Serial = float64(cores) * gridBytes / float64(nodes) * c.AllocPerByte
	if nodes > 1 {
		frac := float64(nodes-1) / float64(nodes)
		// Routed atoms out (with duplication), disjoint slabs back: the
		// grid crosses the fabric once in total, not once per node.
		b.Comm = m.netTime(frac*(atomBytes*dup+gridBytes), 2*float64(nodes-1))
		b.Serial += (atomBytes*dup + gridBytes) * (c.SerPerByte + c.AllocPerByte)
	}
	return b
}
