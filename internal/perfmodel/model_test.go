package perfmodel

import (
	"sync"
	"testing"
)

// Calibration runs real kernels, so build it once for the whole package.
var (
	modelOnce sync.Once
	model     *Model
)

func getModel() *Model {
	modelOnce.Do(func() { model = NewModel() })
	return model
}

// skipUnderRace skips calibration-shape assertions when the race detector
// is active: its instrumentation slows the measured kernels by large,
// non-uniform factors, so cost *ratios* (which the shape tests assert) are
// not meaningful. The functional model tests and the communication-volume
// validations still run under -race.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("calibration ratios are not meaningful under -race instrumentation")
	}
}

func TestCalibrationSanity(t *testing.T) {
	skipUnderRace(t)
	c := getModel().Cal
	positives := map[string]float64{
		"MRIQUnit[RefC]":     c.MRIQUnit[RefC],
		"MRIQUnit[Triolet]":  c.MRIQUnit[Triolet],
		"MRIQUnit[Eden]":     c.MRIQUnit[Eden],
		"SGEMMMac[RefC]":     c.SGEMMMac[RefC],
		"SGEMMTransposeElem": c.SGEMMTransposeElem,
		"TPACFPair[RefC]":    c.TPACFPair[RefC],
		"CUTCPCell[RefC]":    c.CUTCPCell[RefC],
		"SerPerByte":         c.SerPerByte,
		"AllocPerByte":       c.AllocPerByte,
		"AddF32":             c.AddF32,
	}
	for name, v := range positives {
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// The Eden mri-q kernel (separate Sin/Cos) must be measurably slower
	// than the fused-Sincos C kernel — the mechanism behind the paper's
	// Fig. 3 mri-q gap.
	if c.MRIQUnit[Eden] <= c.MRIQUnit[RefC] {
		t.Errorf("Eden mri-q unit %v not slower than C %v", c.MRIQUnit[Eden], c.MRIQUnit[RefC])
	}
	// The Triolet cutcp pipeline pays real abstraction cost over the raw
	// loop nest (paper Fig. 3 shows the same direction), but must stay
	// within an order of magnitude or the fusion machinery is broken.
	ratio := c.CUTCPCell[Triolet] / c.CUTCPCell[RefC]
	if ratio <= 1 || ratio > 10 {
		t.Errorf("Triolet/C cutcp unit ratio = %v, want (1, 10]", ratio)
	}
	// Serialization must be cheaper per byte than 10ns (block copies).
	if c.SerPerByte > 10e-9 {
		t.Errorf("SerPerByte = %v, block path suspiciously slow", c.SerPerByte)
	}
}

func TestRefCSpeedupIsOneAtOneCore(t *testing.T) {
	mo := getModel()
	for _, b := range Benches {
		seq := mo.SeqTime(b, RefC)
		got := mo.At(b, RefC, 1, 1).Speedup(seq)
		// cutcp's single-core model includes the (tiny) private-grid merge
		// term, so allow a fraction of a percent.
		if got < 0.99 || got > 1.01 {
			t.Errorf("%s: 1-core RefC speedup = %v", b, got)
		}
	}
}

func TestMRIQShape(t *testing.T) {
	skipUnderRace(t)
	mo := getModel()
	ref := mo.Series(BenchMRIQ, RefC)
	tri := mo.Series(BenchMRIQ, Triolet)
	ed := mo.Series(BenchMRIQ, Eden)
	// All three scale monotonically.
	for _, s := range [][]Point{ref, tri, ed} {
		for i := 1; i < len(s); i++ {
			if s[i].Speedup <= s[i-1].Speedup {
				t.Fatalf("mri-q series not monotone at %d cores", s[i].Cores)
			}
		}
	}
	// Paper §4.2: Triolet "nearly on par" with C+MPI+OpenMP.
	last := len(ref) - 1
	r := tri[last].Speedup / ref[last].Speedup
	if r < 0.8 || r > 1.2 {
		t.Errorf("mri-q Triolet/C at 128 = %v, want ~1", r)
	}
	// Paper §4.2: Eden loses performance across the entire range.
	for i := range ed {
		if ed[i].Speedup >= tri[i].Speedup {
			t.Errorf("mri-q Eden (%v) not below Triolet (%v) at %d cores",
				ed[i].Speedup, tri[i].Speedup, ed[i].Cores)
		}
	}
}

func TestSGEMMShape(t *testing.T) {
	skipUnderRace(t)
	mo := getModel()
	ref := mo.Series(BenchSGEMM, RefC)
	tri := mo.Series(BenchSGEMM, Triolet)
	ed := mo.Series(BenchSGEMM, Eden)
	last := len(ref) - 1
	// Paper §4.3: all versions exhibit limited scalability.
	if ref[last].Speedup > 64 {
		t.Errorf("sgemm C at 128 = %v, expected saturation well below linear", ref[last].Speedup)
	}
	// Similar Triolet and C performance, Triolet slightly below (GC).
	r := tri[last].Speedup / ref[last].Speedup
	if r < 0.6 || r > 1.05 {
		t.Errorf("sgemm Triolet/C at 128 = %v", r)
	}
	// Paper §4.3: "The Eden code fails at 2 nodes" but runs on 1 node.
	for _, p := range ed {
		nodes, _ := NodesFor(p.Cores)
		if nodes >= 2 && !p.Failed {
			t.Errorf("sgemm Eden at %d cores (%d nodes) did not fail", p.Cores, nodes)
		}
		if nodes == 1 && p.Failed {
			t.Errorf("sgemm Eden failed on a single node (%d cores)", p.Cores)
		}
	}
}

func TestTPACFShape(t *testing.T) {
	skipUnderRace(t)
	mo := getModel()
	ref := mo.Series(BenchTPACF, RefC)
	tri := mo.Series(BenchTPACF, Triolet)
	ed := mo.Series(BenchTPACF, Eden)
	last := len(ref) - 1
	// Paper §4.4: Triolet and C+MPI+OpenMP scale similarly; Eden has
	// somewhat worse performance and higher communication overhead.
	r := tri[last].Speedup / ref[last].Speedup
	if r < 0.6 || r > 1.2 {
		t.Errorf("tpacf Triolet/C at 128 = %v, want similar scaling", r)
	}
	if ed[last].Speedup >= ref[last].Speedup {
		t.Errorf("tpacf Eden (%v) not below C (%v)", ed[last].Speedup, ref[last].Speedup)
	}
	// 100 random sets bound the distributed parallelism: the curve must
	// flatten between 96 and 128 cores.
	gain := ref[last].Speedup / ref[last-1].Speedup
	if gain > 1.15 {
		t.Errorf("tpacf C gained %vx from 96 to 128 cores despite 100-set limit", gain)
	}
}

func TestCUTCPShape(t *testing.T) {
	skipUnderRace(t)
	mo := getModel()
	ref := mo.Series(BenchCUTCP, RefC)
	tri := mo.Series(BenchCUTCP, Triolet)
	ed := mo.Series(BenchCUTCP, Eden)
	last := len(ref) - 1
	// Paper §4.5: performance saturates quickly; summing the large output
	// arrays dominates.
	if ref[last].Speedup > 80 {
		t.Errorf("cutcp C at 128 = %v, expected strong saturation", ref[last].Speedup)
	}
	// Triolet below C (allocation overhead, §4.5), but still scaling.
	if tri[last].Speedup >= ref[last].Speedup {
		t.Errorf("cutcp Triolet (%v) not below C (%v)", tri[last].Speedup, ref[last].Speedup)
	}
	if tri[last].Speedup < tri[1].Speedup {
		t.Errorf("cutcp Triolet did not scale at all: %v at 128 vs %v at 16",
			tri[last].Speedup, tri[1].Speedup)
	}
	// Eden's full-grid-per-process collection makes more processes WORSE
	// beyond one node.
	if ed[last].Speedup >= ed[1].Speedup {
		t.Errorf("cutcp Eden at 128 (%v) should be below its 16-core point (%v)",
			ed[last].Speedup, ed[1].Speedup)
	}
}

func TestSlabExtensionBeatsReplicatedGrid(t *testing.T) {
	skipUnderRace(t)
	// The slab-decomposed extension exists to remove cutcp's full-grid
	// reduction; at paper scale it must model faster than the replicated
	// implementation on multiple nodes, and must not regress single-node
	// execution by more than its bookkeeping.
	mo := getModel()
	for _, cores := range []int{32, 64, 128} {
		nodes, perNode := NodesFor(cores)
		replicated := mo.Cal.CUTCP(mo.Mach, mo.CUTCP, Triolet, nodes, perNode).Total()
		slab := mo.Cal.CUTCPSlab(mo.Mach, mo.CUTCP, nodes, perNode).Total()
		if slab >= replicated {
			t.Errorf("%d cores: slab %vs not faster than replicated %vs", cores, slab, replicated)
		}
	}
	seqC := mo.SeqTime(BenchCUTCP, RefC)
	sl := mo.Cal.CUTCPSlab(mo.Mach, mo.CUTCP, 8, 16)
	t.Logf("cutcp slab extension at 128 cores: %.1fx vs replicated %.1fx",
		sl.Speedup(seqC), mo.SpeedupAt128(BenchCUTCP, Triolet))
}

func TestHeadlineClaims(t *testing.T) {
	skipUnderRace(t)
	// Paper abstract: Triolet achieves 23–100 % of C+MPI+OpenMP and
	// 9.6–99× over sequential C on 128 cores. The model must land every
	// benchmark in a compatible band (we allow mri-q to slightly exceed
	// parity, as the paper's own Fig. 4 does).
	mo := getModel()
	for _, b := range Benches {
		tri := mo.SpeedupAt128(b, Triolet)
		ref := mo.SpeedupAt128(b, RefC)
		if ref <= 0 {
			t.Fatalf("%s: RefC speedup %v", b, ref)
		}
		frac := tri / ref
		if frac < 0.20 || frac > 1.10 {
			t.Errorf("%s: Triolet at %v%% of C+MPI+OpenMP, outside the paper's band", b, frac*100)
		}
		if tri < 5 || tri > 140 {
			t.Errorf("%s: Triolet 128-core speedup %v implausible", b, tri)
		}
	}
}

func TestFig3SequentialOrdering(t *testing.T) {
	skipUnderRace(t)
	// Fig. 3's qualitative content: Eden's mri-q sequential time exceeds
	// C's; Triolet's cutcp and tpacf sequential times exceed C's; sgemm is
	// close across the board.
	mo := getModel()
	if mo.SeqTime(BenchMRIQ, Eden) <= mo.SeqTime(BenchMRIQ, RefC) {
		t.Error("Eden mri-q sequential not slower than C")
	}
	if mo.SeqTime(BenchCUTCP, Triolet) <= mo.SeqTime(BenchCUTCP, RefC) {
		t.Error("Triolet cutcp sequential not slower than C")
	}
	r := mo.SeqTime(BenchSGEMM, Eden) / mo.SeqTime(BenchSGEMM, RefC)
	if r < 0.8 || r > 1.3 {
		t.Errorf("sgemm Eden/C sequential = %v, want ~1 (same loop nest)", r)
	}
}

func TestModelSensitivityToNetwork(t *testing.T) {
	skipUnderRace(t)
	// Sanity of the time equations: a 10× slower network must hurt the
	// communication-bound benchmarks (sgemm, cutcp) at 8 nodes and leave
	// the compute-bound one (mri-q) nearly untouched.
	mo := getModel()
	slow := mo.Mach
	slow.NetBandwidth /= 10
	slow.NetLatency *= 10
	for _, c := range []struct {
		bench     Bench
		sensitive bool
	}{
		{BenchMRIQ, false},
		{BenchSGEMM, true},
		{BenchCUTCP, true},
	} {
		fast := mo.Cal.MRIQ(mo.Mach, mo.MRIQ, Triolet, 8, 16).Total()
		slowT := mo.Cal.MRIQ(slow, mo.MRIQ, Triolet, 8, 16).Total()
		switch c.bench {
		case BenchSGEMM:
			fast = mo.Cal.SGEMM(mo.Mach, mo.SGEMM, Triolet, 8, 16).Total()
			slowT = mo.Cal.SGEMM(slow, mo.SGEMM, Triolet, 8, 16).Total()
		case BenchCUTCP:
			fast = mo.Cal.CUTCP(mo.Mach, mo.CUTCP, Triolet, 8, 16).Total()
			slowT = mo.Cal.CUTCP(slow, mo.CUTCP, Triolet, 8, 16).Total()
		}
		ratio := slowT / fast
		if c.sensitive && ratio < 1.5 {
			t.Errorf("%s: 10x slower network only changed time by %.2fx", c.bench, ratio)
		}
		if !c.sensitive && ratio > 1.5 {
			t.Errorf("%s: compute-bound benchmark moved %.2fx with network speed", c.bench, ratio)
		}
		if ratio < 1.0 {
			t.Errorf("%s: slower network made the model faster (%.2fx)", c.bench, ratio)
		}
	}
}

func TestNodesFor(t *testing.T) {
	cases := []struct{ cores, nodes, perNode int }{
		{1, 1, 1},
		{8, 1, 8},
		{16, 1, 16},
		{32, 2, 16},
		{128, 8, 16},
	}
	for _, c := range cases {
		n, p := NodesFor(c.cores)
		if n != c.nodes || p != c.perNode {
			t.Errorf("NodesFor(%d) = (%d,%d), want (%d,%d)", c.cores, n, p, c.nodes, c.perNode)
		}
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{Compute: 1, Comm: 2, Serial: 3}
	if b.Total() != 6 {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.Speedup(12) != 2 {
		t.Fatalf("Speedup = %v", b.Speedup(12))
	}
	if (Breakdown{Failed: true}).Speedup(10) != 0 {
		t.Fatal("failed breakdown has nonzero speedup")
	}
	if (Breakdown{}).Speedup(10) != 0 {
		t.Fatal("zero-time breakdown should report 0 speedup")
	}
}

func TestStringsAndFigures(t *testing.T) {
	if RefC.String() != "C+MPI+OpenMP" || Triolet.String() != "Triolet" || Eden.String() != "Eden" {
		t.Fatal("Impl strings wrong")
	}
	wantFig := map[Bench]int{BenchMRIQ: 4, BenchSGEMM: 5, BenchTPACF: 7, BenchCUTCP: 8}
	for b, f := range wantFig {
		if b.Figure() != f {
			t.Errorf("%s figure = %d, want %d", b, b.Figure(), f)
		}
	}
	if BenchMRIQ.String() != "mri-q" || BenchCUTCP.String() != "cutcp" {
		t.Fatal("Bench strings wrong")
	}
}

func TestEdenJitterGrows(t *testing.T) {
	if edenJitter(1) != 1 {
		t.Fatalf("jitter(1) = %v", edenJitter(1))
	}
	if edenJitter(128) <= edenJitter(16) {
		t.Fatal("jitter not increasing with process count")
	}
}
