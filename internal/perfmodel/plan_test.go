package perfmodel

import (
	"testing"

	"triolet/internal/sched"
)

// planTestCal is a synthetic calibration with round numbers so the tests
// reason about the planner's arithmetic, not a machine's noise.
func planTestCal() Calibration {
	c := Calibration{
		SGEMMTransposeElem: 1e-9,
		SerPerByte:         1e-9,
		AllocPerByte:       2e-10,
		AddF32:             1e-9,
	}
	for _, a := range []*[3]float64{&c.MRIQUnit, &c.SGEMMMac, &c.TPACFPair, &c.CUTCPCell} {
		a[RefC], a[Triolet], a[Eden] = 4e-9, 5e-9, 6e-9
	}
	return c
}

func planTestPlanner(cores int) *Planner {
	return NewPlanner(planTestCal(), VirtualMachine(), cores)
}

func TestSnapGrain(t *testing.T) {
	ba := sched.BlockAlign
	cases := []struct{ in, want int }{
		{-5, ba}, {0, ba}, {1, ba}, {ba - 1, ba}, {ba, ba},
		{ba + 1, ba}, {2*ba - 1, ba}, {2 * ba, 2 * ba}, {10*ba + 7, 10 * ba},
	}
	for _, c := range cases {
		if got := SnapGrain(c.in); got != c.want {
			t.Errorf("SnapGrain(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPlanTinyWorkloadSequential(t *testing.T) {
	pl := planTestPlanner(4)
	p := pl.Plan(Workload{Name: "tiny", Elems: 32, UnitsPerElem: 1, Class: CostGeneric, UnitCost: 1e-9})
	if p.Mode != ExecSeq {
		t.Fatalf("tiny workload planned %v, want seq", p.Mode)
	}
	if p.Nodes != 1 {
		t.Fatalf("seq plan has Nodes=%d, want 1", p.Nodes)
	}
}

func TestPlanComputeHeavyDistributes(t *testing.T) {
	pl := planTestPlanner(2)
	// 1e6 elements × 1e3 units × 5ns = 5s of compute, 4 bytes in/out per
	// element: compute dwarfs the wire, so the farm must win at max width.
	p := pl.Plan(Workload{
		Name: "heavy", Elems: 1 << 20, BytesPerElem: 4, BytesPerResult: 4,
		UnitsPerElem: 1000, Class: CostMRIQ, Reduce: ReduceGather,
	})
	if p.Mode != ExecFarm {
		t.Fatalf("compute-heavy workload planned %v, want farm", p.Mode)
	}
	if p.Nodes != maxPlanNodes {
		t.Errorf("compute-heavy farm chose %d nodes, want %d", p.Nodes, maxPlanNodes)
	}
	if p.Tasks <= 0 {
		t.Errorf("farm plan has %d tasks", p.Tasks)
	}
	if p.PredictedBytes <= 0 {
		t.Errorf("farm plan predicts %d bytes", p.PredictedBytes)
	}
}

func TestPlanCommHeavyStaysLocal(t *testing.T) {
	pl := planTestPlanner(4)
	// 1 unit of work per element against 1MB of payload per element:
	// shipping costs orders of magnitude more than computing locally.
	p := pl.Plan(Workload{
		Name: "wire-bound", Elems: 4096, BytesPerElem: 1 << 20,
		UnitsPerElem: 1, Class: CostGeneric, UnitCost: 5e-9, Reduce: ReduceScalar, ReduceBytes: 8,
	})
	if p.Mode == ExecFarm {
		t.Fatalf("comm-heavy workload planned farm@%d; distribution should lose to local", p.Nodes)
	}
}

func TestPlanGrainAlwaysAligned(t *testing.T) {
	pl := planTestPlanner(4)
	workloads := []Workload{
		{Name: "a", Elems: 100, UnitsPerElem: 1, Class: CostGeneric, UnitCost: 1e-9},
		{Name: "b", Elems: 1 << 18, UnitsPerElem: 500, Class: CostSGEMM},
		{Name: "c", Elems: 7777, UnitsPerElem: 3, Class: CostTPACF, BytesPerElem: 16},
		{Name: "d", Elems: 1 << 22, UnitsPerElem: 2000, Class: CostCUTCP, Reduce: ReduceGrid, ReduceBytes: 1 << 16},
	}
	for _, w := range workloads {
		p := pl.Plan(w)
		if p.Grain < sched.BlockAlign {
			t.Errorf("%s: grain %d below BlockAlign %d", w.Name, p.Grain, sched.BlockAlign)
		}
		if p.Grain%sched.BlockAlign != 0 {
			t.Errorf("%s: grain %d not a multiple of BlockAlign", w.Name, p.Grain)
		}
	}
}

func TestPlanSerialPath(t *testing.T) {
	pl := planTestPlanner(2)
	w := Workload{Name: "s", Elems: 1 << 16, BytesPerElem: 64, UnitsPerElem: 100, Class: CostGeneric, UnitCost: 5e-9}
	if p := pl.Plan(w); p.Serial != SerCodec {
		t.Errorf("pointered workload chose %v, want codec", p.Serial)
	}
	w.Pointerless = true
	if p := pl.Plan(w); p.Serial != SerRaw {
		t.Errorf("pointerless workload chose %v, want raw", p.Serial)
	}
}

func TestPlanMoreWorkPrefersMoreNodes(t *testing.T) {
	pl := planTestPlanner(1)
	base := Workload{Name: "scale", BytesPerElem: 8, BytesPerResult: 8,
		UnitsPerElem: 200, Class: CostGeneric, UnitCost: 5e-9, Reduce: ReduceGather}
	prev := 0
	for _, elems := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		w := base
		w.Elems = elems
		p := pl.Plan(w)
		n := p.Nodes
		if p.Mode != ExecFarm {
			n = 1
		}
		if n < prev {
			t.Fatalf("node choice not monotone in work: %d elems chose %d nodes after %d", elems, n, prev)
		}
		prev = n
	}
	if prev < 2 {
		t.Fatalf("largest workload never distributed (chose %d nodes)", prev)
	}
}

func TestPlanBiasScalesPrediction(t *testing.T) {
	pl := planTestPlanner(1)
	w := Workload{Name: "biased", Elems: 1 << 16, UnitsPerElem: 10, Class: CostGeneric, UnitCost: 5e-9}
	before := pl.Plan(w).Predicted.Total()
	// Report the workload ran 2× slower than predicted; the next plan's
	// prediction must grow by exactly that ratio (first bias sets directly).
	pl.Online().ObserveBias("biased", 1.0, 2.0)
	after := pl.Plan(w).Predicted.Total()
	if after <= before*1.9 || after >= before*2.1 {
		t.Fatalf("bias 2.0 scaled prediction %g → %g, want ~2x", before, after)
	}
	// Other workloads are untouched.
	other := w
	other.Name = "unbiased"
	if got := pl.Plan(other).Predicted.Total(); got != before {
		t.Fatalf("bias leaked across workloads: %g != %g", got, before)
	}
}
