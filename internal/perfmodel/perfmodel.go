// Package perfmodel reproduces the paper's scaling figures (Figs. 4, 5, 7,
// 8) on hardware that has neither 128 cores nor a network. It combines
// real measurement with an analytic two-level time model:
//
//   - Per-unit compute costs (a voxel×sample update, a MAC, a pair score, a
//     grid-cell visit) are MEASURED by running the repository's actual
//     kernels — the C-style loops, the Triolet iterator pipelines, and the
//     Eden-style variants — on this machine (calib.go).
//   - Serialization, allocation, and array-add costs per byte are likewise
//     measured against internal/serial and the Go allocator.
//   - Communication volumes follow closed-form formulas derived from the
//     implementations' actual protocols; the formulas are validated against
//     the byte counts the transport fabric meters in real runs (see
//     model_validate_test.go).
//   - Network latency/bandwidth are the only free parameters, set to
//     2014-era EC2 cluster-compute values (10 GbE).
//
// Because every implementation difference enters as a ratio of measured
// costs, the model preserves the paper's qualitative shape — who wins, by
// what factor, where curves saturate — which is the reproduction target
// stated in DESIGN.md.
package perfmodel

import "fmt"

// Impl identifies one of the three compared implementations.
type Impl int

const (
	// RefC is the C+MPI+OpenMP reference implementation.
	RefC Impl = iota
	// Triolet is the paper's system.
	Triolet
	// Eden is the distributed Haskell baseline.
	Eden
)

func (i Impl) String() string {
	switch i {
	case RefC:
		return "C+MPI+OpenMP"
	case Triolet:
		return "Triolet"
	case Eden:
		return "Eden"
	}
	return fmt.Sprintf("Impl(%d)", int(i))
}

// Machine holds the modeled cluster constants: 8 nodes × 16 cores of
// 2014-era EC2 cc2.8xlarge with 10 GbE, as in the paper's evaluation.
type Machine struct {
	// NetBandwidth is cross-node bytes/second.
	NetBandwidth float64
	// NetLatency is cross-node seconds/message.
	NetLatency float64
	// LocalBandwidth is same-node process-to-process bytes/second (Eden
	// runs one process per core and pays local IPC where Triolet and the
	// reference use shared memory).
	LocalBandwidth float64
	// LocalLatency is same-node seconds/message.
	LocalLatency float64
	// EdenMaxMessage is the Eden runtime's message buffer limit in bytes;
	// tasks needing larger messages fail (paper §4.3). Zero disables.
	EdenMaxMessage int
}

// DefaultMachine returns the modeled testbed.
func DefaultMachine() Machine {
	return Machine{
		NetBandwidth:   1.25e9, // 10 GbE
		NetLatency:     60e-6,
		LocalBandwidth: 6e9,
		LocalLatency:   5e-6,
		EdenMaxMessage: 64 << 20,
	}
}

// netTime charges a cross-node transfer.
func (m Machine) netTime(bytes float64, messages float64) float64 {
	return bytes/m.NetBandwidth + messages*m.NetLatency
}

// localTime charges a same-node IPC transfer.
func (m Machine) localTime(bytes float64, messages float64) float64 {
	return bytes/m.LocalBandwidth + messages*m.LocalLatency
}

// Breakdown is a modeled execution time with its components, in seconds.
type Breakdown struct {
	// Compute is the parallel kernel time (critical path).
	Compute float64
	// Comm is network + IPC transfer time on the critical path.
	Comm float64
	// Serial is non-parallelized work: master-side serialization,
	// allocation of large messages, sequential transposes, result folds.
	Serial float64
	// Failed marks configurations the implementation cannot run (Eden's
	// buffer overflow in sgemm at ≥2 nodes).
	Failed bool
}

// Total is the modeled wall-clock time.
func (b Breakdown) Total() float64 { return b.Compute + b.Comm + b.Serial }

// Speedup reports seqTime / modeled time, the paper's y-axis. Failed
// configurations report 0.
func (b Breakdown) Speedup(seqTime float64) float64 {
	if b.Failed || b.Total() <= 0 {
		return 0
	}
	return seqTime / b.Total()
}

// Point is one (cores, speedup) sample of a scaling series.
type Point struct {
	Cores   int
	Speedup float64
	Failed  bool
}

// CoreCounts are the x-axis samples of the paper's scaling figures, on a
// 16-core-per-node cluster: 1 core, then full nodes (1, 2, 4, 6, 8).
var CoreCounts = []int{1, 16, 32, 64, 96, 128}

// CoresPerNode is the paper's node width.
const CoresPerNode = 16

// NodesFor maps a core count to (nodes, coresPerNode) on the modeled
// cluster: counts below one full node stay on one node.
func NodesFor(cores int) (nodes, perNode int) {
	if cores <= CoresPerNode {
		return 1, cores
	}
	return (cores + CoresPerNode - 1) / CoresPerNode, CoresPerNode
}
