package perfmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Online refines calibrated unit costs from observed task timings so the
// second run of a workload plans from measured reality. Two corrections
// are tracked:
//
//   - Per-CostClass EWMA over observed seconds-per-unit, fed by the farm's
//     per-task timing beats. Samples are buffered by Observe and folded by
//     Commit in (class, task) order, so the resulting cost is a pure
//     function of the sample SET — concurrent heartbeat arrival order
//     cannot change it (pinned by a -race test).
//   - Per-workload bias: an EWMA of observed/predicted wall time, which
//     absorbs everything the analytic model misses for that workload
//     (constant overheads, cache effects, fabric scheduling).
//
// The state round-trips through a JSON snapshot (SnapshotName, kept next
// to BENCH_BASELINE.json); a missing or corrupt snapshot falls back to the
// static calibration.
type Online struct {
	mu      sync.Mutex
	base    Calibration
	decay   float64
	unit    [numCostClasses]float64 // EWMA seconds/unit; 0 = unseen
	samples [numCostClasses]int
	bias    map[string]float64 // workload name → observed/predicted EWMA
	biasN   map[string]int
	pending []onlineSample
}

// DefaultDecay is the EWMA weight of each new sample: heavy enough that
// one full run visibly moves the estimate, light enough that a single
// noisy task cannot dominate.
const DefaultDecay = 0.25

// SnapshotName is the conventional snapshot filename, a sibling of
// BENCH_BASELINE.json at the repo root.
const SnapshotName = "AUTOPAR_CALIB.json"

type onlineSample struct {
	class   CostClass
	task    int
	units   float64
	seconds float64
}

// NewOnline wraps a static calibration with empty history.
func NewOnline(base Calibration, decay float64) *Online {
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	return &Online{
		base:  base,
		decay: decay,
		bias:  make(map[string]float64),
		biasN: make(map[string]int),
	}
}

// Base returns the static calibration the recalibrator started from.
func (o *Online) Base() Calibration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.base
}

// UnitCost returns the recalibrated seconds-per-unit for a class, or
// fallback when the class has no committed samples yet.
func (o *Online) UnitCost(c CostClass, fallback float64) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if c >= 0 && c < numCostClasses && o.samples[c] > 0 {
		return o.unit[c]
	}
	return fallback
}

// Samples reports how many timing samples have been committed for a class.
func (o *Online) Samples(c CostClass) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if c < 0 || c >= numCostClasses {
		return 0
	}
	return o.samples[c]
}

// Bias returns the workload's observed/predicted multiplier (1 when the
// workload has never been observed).
func (o *Online) Bias(name string) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if b, ok := o.bias[name]; ok && b > 0 {
		return b
	}
	return 1
}

// Observe buffers one task timing. task is the task's index within its
// job; it orders concurrent samples deterministically at Commit. Safe for
// concurrent use — the farm's heartbeat drain calls this as timing beats
// arrive.
func (o *Online) Observe(c CostClass, task int, units float64, elapsed time.Duration) {
	if c < 0 || c >= numCostClasses || units <= 0 || elapsed <= 0 {
		return
	}
	o.mu.Lock()
	o.pending = append(o.pending, onlineSample{class: c, task: task, units: units, seconds: elapsed.Seconds()})
	o.mu.Unlock()
}

// Commit folds buffered samples into the per-class EWMAs. Samples are
// sorted by (class, task, units, seconds) first, so the committed state
// depends only on which samples arrived, never on arrival order.
func (o *Online) Commit() {
	o.mu.Lock()
	defer o.mu.Unlock()
	sort.Slice(o.pending, func(i, j int) bool {
		a, b := o.pending[i], o.pending[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.task != b.task {
			return a.task < b.task
		}
		if a.units != b.units {
			return a.units < b.units
		}
		return a.seconds < b.seconds
	})
	for _, s := range o.pending {
		x := s.seconds / s.units
		if o.samples[s.class] == 0 {
			o.unit[s.class] = x
		} else {
			o.unit[s.class] = o.decay*x + (1-o.decay)*o.unit[s.class]
		}
		o.samples[s.class]++
	}
	o.pending = o.pending[:0]
}

// ObserveBias folds one whole-run observation into the workload's bias
// EWMA. Called once per run from the master, after the observed wall time
// is known.
func (o *Online) ObserveBias(name string, predicted, observed float64) {
	if name == "" || predicted <= 0 || observed <= 0 {
		return
	}
	x := observed / predicted
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.biasN[name] == 0 {
		o.bias[name] = x
	} else {
		// Bias corrections compound across runs: the prediction already
		// carries the old bias, so the update folds the residual ratio
		// into it rather than replacing it.
		o.bias[name] = o.decay*(x*o.bias[name]) + (1-o.decay)*o.bias[name]
	}
	o.biasN[name]++
}

// snapshot is the JSON wire form. The base calibration travels with the
// learned state so a snapshot is self-contained.
type snapshot struct {
	Version int                `json:"version"`
	Decay   float64            `json:"decay"`
	Base    Calibration        `json:"base"`
	Unit    []float64          `json:"unit"`
	Samples []int              `json:"samples"`
	Bias    map[string]float64 `json:"bias"`
	BiasN   map[string]int     `json:"bias_n"`
}

const snapshotVersion = 1

// Save writes the recalibrated state as a JSON snapshot, atomically
// (temp file + rename) so a crash mid-write cannot leave a torn file.
func (o *Online) Save(path string) error {
	o.mu.Lock()
	s := snapshot{
		Version: snapshotVersion,
		Decay:   o.decay,
		Base:    o.base,
		Unit:    append([]float64(nil), o.unit[:]...),
		Samples: append([]int(nil), o.samples[:]...),
		Bias:    make(map[string]float64, len(o.bias)),
		BiasN:   make(map[string]int, len(o.biasN)),
	}
	for k, v := range o.bias {
		s.Bias[k] = v
	}
	for k, v := range o.biasN {
		s.BiasN[k] = v
	}
	o.mu.Unlock()

	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("perfmodel: encode snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".autopar-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadOnline restores a recalibrator from a snapshot. A missing, corrupt,
// or version-mismatched file falls back to a fresh recalibrator over the
// static calibration; the returned error (nil for a clean load or a
// simply-missing file) says why the fallback happened so callers can log
// it. The returned *Online is always usable.
func LoadOnline(path string, base Calibration, decay float64) (*Online, error) {
	fresh := NewOnline(base, decay)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fresh, nil
		}
		return fresh, fmt.Errorf("perfmodel: read snapshot: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fresh, fmt.Errorf("perfmodel: corrupt snapshot %s: %w", path, err)
	}
	if s.Version != snapshotVersion {
		return fresh, fmt.Errorf("perfmodel: snapshot %s version %d (want %d)", path, s.Version, snapshotVersion)
	}
	if len(s.Unit) != int(numCostClasses) || len(s.Samples) != int(numCostClasses) {
		return fresh, fmt.Errorf("perfmodel: snapshot %s has %d/%d classes (want %d)", path, len(s.Unit), len(s.Samples), numCostClasses)
	}
	for c := range s.Unit {
		if s.Unit[c] < 0 || s.Samples[c] < 0 || (s.Samples[c] > 0 && s.Unit[c] <= 0) {
			return fresh, fmt.Errorf("perfmodel: snapshot %s class %d has invalid state", path, c)
		}
	}
	o := NewOnline(s.Base, s.Decay)
	copy(o.unit[:], s.Unit)
	copy(o.samples[:], s.Samples)
	for k, v := range s.Bias {
		if v > 0 {
			o.bias[k] = v
		}
	}
	for k, v := range s.BiasN {
		if v > 0 {
			o.biasN[k] = v
		}
	}
	return o, nil
}
