package perfmodel

// Bench identifies one of the paper's four evaluation benchmarks.
type Bench int

const (
	// BenchMRIQ is paper Fig. 4.
	BenchMRIQ Bench = iota
	// BenchSGEMM is paper Fig. 5.
	BenchSGEMM
	// BenchTPACF is paper Fig. 7.
	BenchTPACF
	// BenchCUTCP is paper Fig. 8.
	BenchCUTCP
)

func (b Bench) String() string {
	switch b {
	case BenchMRIQ:
		return "mri-q"
	case BenchSGEMM:
		return "sgemm"
	case BenchTPACF:
		return "tpacf"
	case BenchCUTCP:
		return "cutcp"
	}
	return "?"
}

// Figure reports the paper figure number a benchmark's scaling curve
// appears in.
func (b Bench) Figure() int {
	switch b {
	case BenchMRIQ:
		return 4
	case BenchSGEMM:
		return 5
	case BenchTPACF:
		return 7
	case BenchCUTCP:
		return 8
	}
	return 0
}

// Benches lists all four benchmarks in paper order.
var Benches = []Bench{BenchMRIQ, BenchSGEMM, BenchTPACF, BenchCUTCP}

// Impls lists the three compared implementations.
var Impls = []Impl{RefC, Triolet, Eden}

// Model bundles a calibration with the machine constants and the paper-
// scale problem parameters.
type Model struct {
	Cal   Calibration
	Mach  Machine
	MRIQ  MRIQParams
	SGEMM SGEMMParams
	TPACF TPACFParams
	CUTCP CUTCPParams
}

// NewModel calibrates on the current machine and applies the default
// (paper-scale) parameters.
func NewModel() *Model {
	return &Model{
		Cal:   Calibrate(),
		Mach:  DefaultMachine(),
		MRIQ:  DefaultMRIQ(),
		SGEMM: DefaultSGEMM(),
		TPACF: DefaultTPACF(),
		CUTCP: DefaultCUTCP(),
	}
}

// SeqTime is the modeled single-core execution time of one implementation
// of a benchmark (the paper's Fig. 3 bars).
func (mo *Model) SeqTime(b Bench, impl Impl) float64 {
	switch b {
	case BenchMRIQ:
		return mo.Cal.MRIQSeqTime(mo.MRIQ, impl)
	case BenchSGEMM:
		return mo.Cal.SGEMMSeqTime(mo.SGEMM, impl)
	case BenchTPACF:
		return mo.Cal.TPACFSeqTime(mo.TPACF, impl)
	case BenchCUTCP:
		return mo.Cal.CUTCPSeqTime(mo.CUTCP, impl)
	}
	return 0
}

// At models one (benchmark, implementation, nodes, cores-per-node) point.
func (mo *Model) At(b Bench, impl Impl, nodes, cores int) Breakdown {
	switch b {
	case BenchMRIQ:
		return mo.Cal.MRIQ(mo.Mach, mo.MRIQ, impl, nodes, cores)
	case BenchSGEMM:
		return mo.Cal.SGEMM(mo.Mach, mo.SGEMM, impl, nodes, cores)
	case BenchTPACF:
		return mo.Cal.TPACF(mo.Mach, mo.TPACF, impl, nodes, cores)
	case BenchCUTCP:
		return mo.Cal.CUTCP(mo.Mach, mo.CUTCP, impl, nodes, cores)
	}
	return Breakdown{}
}

// Series produces one scaling curve: speedup over sequential C at each of
// the paper's core counts (the y-axis of Figs. 4, 5, 7, 8).
func (mo *Model) Series(b Bench, impl Impl) []Point {
	seqC := mo.SeqTime(b, RefC)
	out := make([]Point, 0, len(CoreCounts))
	for _, cores := range CoreCounts {
		nodes, perNode := NodesFor(cores)
		bd := mo.At(b, impl, nodes, perNode)
		out = append(out, Point{Cores: cores, Speedup: bd.Speedup(seqC), Failed: bd.Failed})
	}
	return out
}

// SpeedupAt128 reports the modeled full-cluster speedup, used by the
// headline-claims summary (9.6–99× over sequential C; 23–100 % of
// C+MPI+OpenMP).
func (mo *Model) SpeedupAt128(b Bench, impl Impl) float64 {
	seqC := mo.SeqTime(b, RefC)
	nodes, perNode := NodesFor(128)
	return mo.At(b, impl, nodes, perNode).Speedup(seqC)
}
