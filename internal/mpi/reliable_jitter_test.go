package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"triolet/internal/transport"
)

// drawJitters pulls n jittered timeouts from one comm's reliable layer.
func drawJitters(c *Comm, d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = c.rel.jitter(d)
	}
	return out
}

// The jitter stream is seeded: the same (seed, rank) replays the same
// sequence, while ranks sharing a config — the SPMD default — draw divergent
// sequences, so blocked senders do not retransmit in lockstep.
func TestBackoffJitterSeededAndRankDivergent(t *testing.T) {
	const d = 10 * time.Millisecond
	build := func() []*Comm {
		fab := transport.New(transport.Config{Ranks: 4})
		t.Cleanup(func() { fab.Close() })
		comms := make([]*Comm, 4)
		for r := range comms {
			comms[r] = NewReliableComm(fab, r, ReliableConfig{JitterSeed: 42})
		}
		return comms
	}

	first := build()
	second := build()
	seqs := make([][]time.Duration, len(first))
	for r := range first {
		seqs[r] = drawJitters(first[r], d, 16)
		replay := drawJitters(second[r], d, 16)
		for i := range seqs[r] {
			if seqs[r][i] != replay[i] {
				t.Fatalf("rank %d draw %d not reproducible: %v vs %v", r, i, seqs[r][i], replay[i])
			}
		}
	}
	// Every pair of ranks must diverge somewhere in the first 16 draws.
	for a := 0; a < len(seqs); a++ {
		for b := a + 1; b < len(seqs); b++ {
			same := true
			for i := range seqs[a] {
				if seqs[a][i] != seqs[b][i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("ranks %d and %d drew identical jitter sequences — retransmits would synchronize", a, b)
			}
		}
	}
}

// Jitter is strictly additive: every draw lands in [d, d*(1+BackoffJitter)).
// The lower bound is what preserves the RTT floor — a draw below d would let
// simulated latency read as loss again (the regression pinned by
// TestHighLatencyLosslessWireDoesNotRetransmit).
func TestBackoffJitterNeverUndercutsTimeout(t *testing.T) {
	fab := transport.New(transport.Config{Ranks: 1})
	defer fab.Close()
	c := NewReliableComm(fab, 0, ReliableConfig{BackoffJitter: 0.25, JitterSeed: 7})
	const d = 8 * time.Millisecond
	upper := d + time.Duration(float64(d)*0.25)
	for i, got := range drawJitters(c, d, 200) {
		if got < d || got >= upper {
			t.Fatalf("draw %d = %v outside [%v, %v)", i, got, d, upper)
		}
	}
}

// A negative BackoffJitter disables the spread entirely; deadlines become
// exactly the backed-off timeout again.
func TestBackoffJitterDisabled(t *testing.T) {
	fab := transport.New(transport.Config{Ranks: 1})
	defer fab.Close()
	c := NewReliableComm(fab, 0, ReliableConfig{BackoffJitter: -1})
	const d = 3 * time.Millisecond
	for i, got := range drawJitters(c, d, 50) {
		if got != d {
			t.Fatalf("draw %d = %v with jitter disabled, want exactly %v", i, got, d)
		}
	}
}

// Chaos pin for the jittered backoff: on a fabric dropping, duplicating,
// and corrupting 10% of frames, jittered retransmits still converge to
// complete in-order delivery, and the loss actually exercises the backoff
// path (retries observed on both sides of the exchange).
func TestBackoffJitterChaosConvergence(t *testing.T) {
	f := lossyFabric(2, 20260808)
	defer f.Close()
	cfg := fastReliable()
	cfg.JitterSeed = 99
	a := NewReliableComm(f, 0, cfg)
	b := NewReliableComm(f, 1, cfg)

	const n = 80
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m, err := b.Recv(0, 5)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if err := b.Send(0, 5, m.Payload); err != nil {
				t.Errorf("echo %d: %v", i, err)
				return
			}
		}
		// Stop-and-wait tail: the ack for the final data frame may be lost
		// in flight, and re-acks only flow while this side still pumps the
		// protocol. Keep servicing duplicates until the sender confirms
		// every exchange completed — a receiver that goes silent the instant
		// its last Recv returns strands the peer's retransmits (real farm
		// workers are long-lived, so only a test tail can go quiet like
		// that).
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, _, err := b.TryRecv(0, 5); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("jittered-%d", i)
		if err := a.Send(1, 5, []byte(want)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		m, err := a.Recv(1, 5)
		if err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
		if string(m.Payload) != want {
			t.Fatalf("echo %d = %q, want %q", i, m.Payload, want)
		}
	}
	close(done)
	wg.Wait()
	if s := a.ReliableStats(); s.Retries == 0 {
		t.Fatalf("lossy exchange saw no retries — chaos profile did not exercise the jittered backoff: %+v", s)
	}
}
