package mpi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"triolet/internal/transport"
)

// Cancellation contract for the communicator: RecvCtx, SendCtx (in both
// direct and reliable mode), and the collectives (through SetContext) all
// return ctx.Err() within 100ms of cancellation — the bound holds under
// -race — and leave no goroutine wedged on the fabric.

const cancelBound = 100 * time.Millisecond

func assertCancelled(t *testing.T, what string, start time.Time, err error) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s after cancel = %v, want context.Canceled", what, err)
	}
	if d := time.Since(start); d > cancelBound {
		t.Fatalf("%s took %v to observe cancel, want < %v", what, d, cancelBound)
	}
}

func TestRecvCtxCancelDirect(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewComm(f, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RecvCtx(ctx, 1, 7)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		assertCancelled(t, "RecvCtx", start, err)
	case <-time.After(2 * time.Second):
		t.Fatal("direct RecvCtx did not unblock on cancel")
	}
}

func TestRecvCtxCancelReliable(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewReliableComm(f, 0, ReliableConfig{
		AckTimeout: time.Millisecond,
		Retries:    1 << 20, // deep enough that retry exhaustion never races the cancel
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RecvCtx(ctx, 1, 7)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		assertCancelled(t, "reliable RecvCtx", start, err)
	case <-time.After(2 * time.Second):
		t.Fatal("reliable RecvCtx did not unblock on cancel")
	}
}

// A reliable send keeps retrying into a silent peer until cancelled: the
// ack-wait loop must observe the context mid-ladder, not only between
// attempts.
func TestSendCtxCancelReliableSilentPeer(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewReliableComm(f, 0, ReliableConfig{
		AckTimeout:    time.Millisecond,
		MaxAckTimeout: 2 * time.Millisecond,
		Retries:       1 << 20,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.SendCtx(ctx, 1, 7, []byte("into the void"))
	}()
	time.Sleep(10 * time.Millisecond) // let a few retries burn
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		assertCancelled(t, "reliable SendCtx", start, err)
	case <-time.After(2 * time.Second):
		t.Fatal("reliable SendCtx did not unblock on cancel")
	}
}

func TestSendCtxCancelledDirect(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewComm(f, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.SendCtx(ctx, 1, 7, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("SendCtx = %v, want context.Canceled", err)
	}
}

// SetContext governs the collectives: cancelling the comm's context must
// unwind every rank out of a wedged Barrier (here: all ranks but one).
func TestCollectivesUnwindOnCancel(t *testing.T) {
	const ranks = 4
	f := transport.New(transport.Config{Ranks: ranks})
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := range ranks {
		if r == 1 {
			continue // rank 1 never joins: the barrier cannot complete
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewComm(f, r)
			c.SetContext(ctx)
			errs[r] = c.Barrier()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("barrier ranks did not unwind on cancel")
	}
	if d := time.Since(start); d > cancelBound {
		t.Fatalf("unwind took %v, want < %v", d, cancelBound)
	}
	for r, err := range errs {
		if r == 1 {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rank %d barrier error = %v, want context.Canceled", r, err)
		}
	}
}

// A comm whose context is already cancelled fails fast on every public
// operation instead of touching the fabric.
func TestPreCancelledContextFailsFast(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewComm(f, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.SetContext(ctx)
	if err := c.Send(1, 7, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send = %v", err)
	}
	if _, err := c.Recv(1, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("Recv = %v", err)
	}
	if _, err := c.Bcast(0, []byte("x")); err == nil {
		t.Fatal("Bcast on cancelled comm succeeded")
	}
}

// Delivered data still wins over cancellation at the comm layer too.
func TestRecvCtxQueuedMessageBeatsCancel(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	sender := NewComm(f, 1)
	recver := NewComm(f, 0)
	if err := sender.Send(0, 7, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := recver.RecvCtx(ctx, 1, 7)
	if err != nil || string(m.Payload) != "kept" {
		t.Fatalf("RecvCtx = %v, %v; want the queued message", m, err)
	}
}
