package mpi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"triolet/internal/serial"
	"triolet/internal/trace"
	"triolet/internal/transport"
)

// Acknowledged-delivery mode. The paper's runtime sits on MPI and trusts
// the fabric completely (§3.4); this layer removes that trust. Every
// point-to-point message is wrapped in a frame carrying a per-(src,dst)
// sequence number and a CRC-32 over the whole frame. The receiver
// acknowledges every valid frame (including duplicates, whose first ack
// may have been lost), drops corrupt frames silently so the sender's
// retransmit fires, and reassembles frames into per-sender sequence order
// before tag matching — restoring MPI's non-overtaking rule on a fabric
// that reorders. The sender retransmits on ack timeout with exponential
// backoff and, when a peer's acknowledgements stop for good (or the fabric
// reports it crashed), fails fast with a RankLostError instead of blocking
// forever — the hook the cluster runtime uses to degrade gracefully.

// Reserved wire tags, far above both user tags and the collective tag
// sequence. In reliable mode every frame travels on one of these; the
// application-level tag rides inside the frame.
const (
	tagRelData = 1 << 30
	tagRelAck  = tagRelData + 1
)

// Frame kinds.
const (
	kindData uint8 = 0xD1
	kindAck  uint8 = 0xA2
	// kindCoal is a coalesced container frame: a sequence of sub-records
	// (data, ack batches, beats) sharing one CRC, so small protocol
	// messages stop paying a full frame each on the wire.
	kindCoal uint8 = 0xC0
)

// Sub-record kinds inside a kindCoal frame.
const (
	subData uint8 = 0x01 // one sequenced data message: seq, tag, payload
	subAck  uint8 = 0x02 // a batch of acknowledgements: count, then seqs
	subBeat uint8 = 0x03 // one fire-and-forget beat: tag, payload
)

// ErrRankLost reports that a peer stopped acknowledging deliveries (or
// crashed outright) and has been declared dead.
var ErrRankLost = errors.New("mpi: rank lost")

// RankLostError carries which rank was lost and how hard we tried. It
// unwraps to ErrRankLost, so callers test with errors.Is.
type RankLostError struct {
	Rank     int
	Attempts int
}

func (e *RankLostError) Error() string {
	return fmt.Sprintf("mpi: rank %d lost after %d delivery attempts", e.Rank, e.Attempts)
}

func (e *RankLostError) Unwrap() error { return ErrRankLost }

// ReliableConfig tunes the ack/retry protocol. Zero values select the
// defaults noted on each field.
type ReliableConfig struct {
	// AckTimeout is the first attempt's acknowledgement deadline
	// (default 5ms); later attempts back off from it. When the fabric
	// simulates wire delay, the effective deadline is floored at twice the
	// frame+ack round trip so simulated latency never reads as loss.
	AckTimeout time.Duration
	// Retries is the number of retransmissions before a silent peer is
	// declared lost (default 8).
	Retries int
	// Backoff multiplies the timeout after each retransmission
	// (default 1.6).
	Backoff float64
	// MaxAckTimeout caps the backed-off timeout (default 250ms).
	MaxAckTimeout time.Duration
	// BackoffJitter spreads each attempt's ack deadline by up to this
	// fraction of the timeout, drawn from a seeded per-rank stream
	// (default 0.2; negative disables). Without it, every rank blocked on
	// the same event hits the shared ack-timeout floor in the same poll
	// window and retransmits in lockstep — a synchronized retransmit storm
	// that re-congests the fabric exactly when it is weakest. Jitter is
	// strictly additive, so the round-trip floor that keeps simulated
	// latency from reading as loss is never undercut, and the jittered
	// deadline is still measured on the fabric clock.
	BackoffJitter float64
	// JitterSeed seeds the jitter stream; the rank is mixed in, so ranks
	// sharing a config (the SPMD default) still draw divergent jitter.
	JitterSeed int64
	// RecvTimeout bounds a blocking receive; 0 waits forever. Receives
	// from a specific rank fail fast regardless when the fabric reports
	// that rank crashed.
	RecvTimeout time.Duration
	// PollInterval is the ack/receive poll granularity (default 100µs).
	PollInterval time.Duration
	// CoalesceDelay bounds how long a buffered beat may wait for a fuller
	// frame before a deadline flush, measured on the fabric clock
	// (default 1ms). Acknowledgements are not subject to it: they always
	// flush at the end of the pump cycle that produced them.
	CoalesceDelay time.Duration
	// CoalesceLimit is the number of beats buffered per peer that forces
	// an immediate flush (default 8).
	CoalesceLimit int
	// DisableCoalesce reverts to the one-frame-per-message wire shape:
	// every ack is its own frame and beats become ordinary acknowledged
	// sends. Used by the message-volume gate to measure what coalescing
	// saves.
	DisableCoalesce bool
	// Tracer, when non-nil, records retransmissions and dropped frames
	// as trace events ("net.retry", "net.recover", "net.corrupt-drop",
	// "net.dup-drop").
	Tracer *trace.Tracer
}

func (cfg ReliableConfig) withDefaults() ReliableConfig {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 8
	}
	if cfg.Backoff < 1 {
		cfg.Backoff = 1.6
	}
	if cfg.MaxAckTimeout <= 0 {
		cfg.MaxAckTimeout = 250 * time.Millisecond
	}
	if cfg.BackoffJitter == 0 {
		cfg.BackoffJitter = 0.2
	}
	if cfg.BackoffJitter < 0 {
		cfg.BackoffJitter = 0
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Microsecond
	}
	if cfg.CoalesceDelay <= 0 {
		cfg.CoalesceDelay = time.Millisecond
	}
	if cfg.CoalesceLimit <= 0 {
		cfg.CoalesceLimit = 8
	}
	return cfg
}

// ReliableStats counts protocol activity on one communicator.
type ReliableStats struct {
	FramesSent     int64
	Retries        int64
	AcksSent       int64 // logical acknowledgements (batched acks count each seq)
	Delivered      int64
	DupDropped     int64
	CorruptDropped int64
	// CoalescedFrames counts physical kindCoal frames emitted; the acks
	// and beats they carried are in AcksSent and BeatsSent.
	CoalescedFrames int64
	// BeatsSent counts fire-and-forget beats shipped (in coalesced frames
	// or piggybacked on data frames).
	BeatsSent int64
}

// pendFrame is an out-of-order data frame parked until the gap fills.
type pendFrame struct {
	tag     int
	payload []byte
}

// reliable holds the protocol state of one communicator. State access is
// mutex-guarded (never across a sleep) so helper goroutines (Irecv) stay
// safe, but the design point is the single owning goroutine of the Comm.
type reliable struct {
	c   *Comm
	cfg ReliableConfig
	// clk is the fabric's time source. Every protocol deadline — ack
	// timeouts, receive timeouts — is computed and checked against it, so
	// timeout behavior follows simulated fabric time and tests can pin it
	// with an injected clock. Never call time.Now here.
	clk transport.Clock
	// rng draws retransmit-backoff jitter: seeded (JitterSeed ⊕ rank), so
	// a run replays identically while ranks desynchronize. Guarded by mu.
	rng *rand.Rand

	mu      sync.Mutex
	nextSeq []uint64               // per dst: next sequence number to assign
	acked   []map[uint64]struct{}  // per dst: acknowledged sends
	expect  []uint64               // per src: next in-order sequence expected
	ahead   []map[uint64]pendFrame // per src: frames ahead of the expected seq
	queue   []transport.Message    // reassembled, tag-matchable deliveries
	stats   ReliableStats

	// Coalescing state (unused when cfg.DisableCoalesce).
	coalesce  bool
	pendAcks  [][]uint64    // per dst: acks collected during the current pump
	beats     [][]pendFrame // per dst: buffered fire-and-forget beats
	beatSince []time.Time   // per dst: fabric-clock time the oldest beat was buffered
}

func newReliable(c *Comm, cfg ReliableConfig) *reliable {
	n := c.ep.Ranks()
	cfg = cfg.withDefaults()
	r := &reliable{
		c:         c,
		cfg:       cfg,
		clk:       c.f.Clock(),
		rng:       rand.New(rand.NewSource(cfg.JitterSeed*0x9E3779B9 + int64(c.Rank())*0x85EBCA6B + 1)),
		nextSeq:   make([]uint64, n),
		acked:     make([]map[uint64]struct{}, n),
		expect:    make([]uint64, n),
		ahead:     make([]map[uint64]pendFrame, n),
		coalesce:  !cfg.DisableCoalesce,
		pendAcks:  make([][]uint64, n),
		beats:     make([][]pendFrame, n),
		beatSince: make([]time.Time, n),
	}
	for i := 0; i < n; i++ {
		r.acked[i] = map[uint64]struct{}{}
		r.ahead[i] = map[uint64]pendFrame{}
	}
	return r
}

// encodeData builds a data frame: body ++ crc32(body).
func encodeData(seq uint64, tag int, payload []byte) []byte {
	w := serial.NewWriter(len(payload) + 32)
	w.U8(kindData)
	w.U64(seq)
	w.Int(tag)
	w.RawBytes(payload)
	w.FinishCRC()
	return w.Bytes()
}

// encodeAck builds an acknowledgement frame.
func encodeAck(seq uint64) []byte {
	w := serial.NewWriter(16)
	w.U8(kindAck)
	w.U64(seq)
	w.FinishCRC()
	return w.Bytes()
}

// coalSub is one parsed sub-record of a coalesced frame.
type coalSub struct {
	kind    uint8
	seq     uint64 // subData
	seqs    []uint64
	tag     int
	payload []byte
}

// decodeCoal parses the sub-records of a kindCoal body (after the leading
// kind byte). ok is false for any structural violation; the CRC has
// already validated the bytes, so a violation means a broken encoder, but
// the protocol still treats it as corruption rather than decoding garbage.
func decodeCoal(br *serial.Reader) (subs []coalSub, ok bool) {
	for br.Err() == nil && br.Remaining() > 0 {
		switch kind := br.U8(); kind {
		case subData:
			seq := br.U64()
			tag := br.Int()
			payload := br.RawBytes()
			subs = append(subs, coalSub{kind: subData, seq: seq, tag: tag, payload: payload})
		case subAck:
			n := br.U32()
			if int(n) > br.Remaining()/8 {
				return nil, false
			}
			seqs := make([]uint64, n)
			for i := range seqs {
				seqs[i] = br.U64()
			}
			subs = append(subs, coalSub{kind: subAck, seqs: seqs})
		case subBeat:
			tag := br.Int()
			payload := br.RawBytes()
			subs = append(subs, coalSub{kind: subBeat, tag: tag, payload: payload})
		default:
			return nil, false
		}
	}
	if br.Err() != nil {
		return nil, false
	}
	return subs, true
}

// pump drains every frame the fabric has for this rank without blocking:
// data frames are verified, acknowledged, deduplicated, and reassembled
// into per-sender order; ack frames mark pending sends complete. The
// acknowledgements a pump collects are flushed before it returns — an ack
// held across application compute would read as loss to the stop-and-wait
// sender and trigger retransmits of full data frames. Callers must hold
// r.mu.
func (r *reliable) pump() (progress bool, err error) {
	for _, wireTag := range [2]int{tagRelData, tagRelAck} {
		for {
			m, ok, terr := r.c.ep.TryRecv(transport.AnySource, wireTag)
			if terr != nil {
				return progress, terr
			}
			if !ok {
				break
			}
			progress = true
			if err := r.handleFrame(m); err != nil {
				return progress, err
			}
		}
	}
	return progress, r.flushPending()
}

// handleFrame processes one incoming wire frame of any kind.
func (r *reliable) handleFrame(m transport.Message) error {
	body, valid := serial.VerifyCRC(m.Payload)
	if !valid {
		// Corrupt in flight: drop without acking; the sender retransmits.
		return r.dropCorrupt(m)
	}
	br := serial.NewReader(body)
	switch kind := br.U8(); kind {
	case kindAck:
		seq := br.U64()
		if br.Err() != nil || br.Remaining() != 0 {
			return r.dropCorrupt(m)
		}
		r.acked[m.Src][seq] = struct{}{}
		return nil
	case kindData:
		seq := br.U64()
		tag := br.Int()
		payload := br.RawBytes()
		if br.Err() != nil || br.Remaining() != 0 {
			return r.dropCorrupt(m)
		}
		return r.acceptData(m.Src, seq, tag, payload)
	case kindCoal:
		subs, ok := decodeCoal(br)
		if !ok {
			return r.dropCorrupt(m)
		}
		for _, s := range subs {
			switch s.kind {
			case subData:
				if err := r.acceptData(m.Src, s.seq, s.tag, s.payload); err != nil {
					return err
				}
			case subAck:
				for _, seq := range s.seqs {
					r.acked[m.Src][seq] = struct{}{}
				}
			case subBeat:
				// Beats bypass sequencing and deduplication entirely:
				// deliver as-is. They may be lost, duplicated, or overtake
				// data — the contract of SendBeat.
				r.enqueue(m.Src, s.tag, s.payload)
			}
		}
		return nil
	default:
		return r.dropCorrupt(m)
	}
}

func (r *reliable) dropCorrupt(m transport.Message) error {
	r.stats.CorruptDropped++
	r.cfg.Tracer.Instant(r.c.Rank(), "net.corrupt-drop", int64(len(m.Payload)))
	return nil
}

// acceptData runs the sequencing machinery for one data message. The ack
// is queued for the end-of-pump batch flush when coalescing, sent
// immediately otherwise; either way every valid message is acknowledged —
// a duplicate usually means our first ack was lost.
func (r *reliable) acceptData(src int, seq uint64, tag int, payload []byte) error {
	if r.coalesce {
		r.pendAcks[src] = append(r.pendAcks[src], seq)
	} else {
		if err := r.c.ep.SendShared(src, tagRelAck, encodeAck(seq)); err != nil {
			return err
		}
		r.stats.AcksSent++
	}
	switch {
	case seq == r.expect[src]:
		r.enqueue(src, tag, payload)
		r.expect[src]++
		for {
			pf, ok := r.ahead[src][r.expect[src]]
			if !ok {
				break
			}
			delete(r.ahead[src], r.expect[src])
			r.enqueue(src, pf.tag, pf.payload)
			r.expect[src]++
		}
	case seq > r.expect[src]:
		if _, dup := r.ahead[src][seq]; dup {
			r.stats.DupDropped++
			r.cfg.Tracer.Instant(r.c.Rank(), "net.dup-drop", int64(len(payload)))
		} else {
			r.ahead[src][seq] = pendFrame{tag: tag, payload: payload}
		}
	default: // seq < expected: already delivered
		r.stats.DupDropped++
		r.cfg.Tracer.Instant(r.c.Rank(), "net.dup-drop", int64(len(payload)))
	}
	return nil
}

// flushPending emits, per peer, the acks collected during the current pump
// cycle and any beat batch that is full or past its fabric-clock deadline.
// A single ack with no beats keeps the compact legacy frame; anything more
// shares one coalesced frame. Callers hold r.mu.
func (r *reliable) flushPending() error {
	if !r.coalesce {
		return nil
	}
	var now time.Time
	for dst := range r.pendAcks {
		acks, beats := r.pendAcks[dst], r.beats[dst]
		if len(acks) == 0 && len(beats) == 0 {
			continue
		}
		if len(acks) == 0 && len(beats) < r.cfg.CoalesceLimit {
			if now.IsZero() {
				now = r.clk.Now()
			}
			if now.Sub(r.beatSince[dst]) < r.cfg.CoalesceDelay {
				continue // beats alone wait for a fuller frame
			}
		}
		if err := r.flushTo(dst); err != nil {
			return err
		}
	}
	return nil
}

// flushTo ships dst's pending acks and beats now. Callers hold r.mu.
func (r *reliable) flushTo(dst int) error {
	acks, beats := r.pendAcks[dst], r.beats[dst]
	var frame []byte
	if len(acks) == 1 && len(beats) == 0 {
		frame = encodeAck(acks[0])
	} else {
		w := serial.NewWriter(16 + 8*len(acks) + 24*len(beats))
		w.U8(kindCoal)
		appendAckSub(w, acks)
		for _, b := range beats {
			appendBeatSub(w, b)
		}
		w.FinishCRC()
		frame = w.Bytes()
		r.stats.CoalescedFrames++
	}
	r.stats.AcksSent += int64(len(acks))
	r.stats.BeatsSent += int64(len(beats))
	r.pendAcks[dst] = acks[:0]
	for i := range beats {
		beats[i] = pendFrame{}
	}
	r.beats[dst] = beats[:0]
	r.beatSince[dst] = time.Time{}
	return r.c.ep.SendShared(dst, tagRelAck, frame)
}

// appendAckSub writes one subAck record (omitted when empty).
func appendAckSub(w *serial.Writer, acks []uint64) {
	if len(acks) == 0 {
		return
	}
	w.U8(subAck)
	w.U32(uint32(len(acks)))
	for _, seq := range acks {
		w.U64(seq)
	}
}

// appendBeatSub writes one subBeat record.
func appendBeatSub(w *serial.Writer, b pendFrame) {
	w.U8(subBeat)
	w.Int(b.tag)
	w.RawBytes(b.payload)
}

func (r *reliable) enqueue(src, tag int, payload []byte) {
	r.queue = append(r.queue, transport.Message{Src: src, Tag: tag, Payload: payload})
	r.stats.Delivered++
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
// The sleep is wall-clock on purpose: it paces retransmit polling against
// the real scheduler; ack deadlines themselves are measured on the fabric
// clock (r.clk — "Never call time.Now here" is enforced by fabrictime).
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx.Done() == nil {
		time.Sleep(d) //lint:allow fabrictime retry-poll backoff paces the real scheduler; ack deadlines use the fabric clock
		return
	}
	t := time.NewTimer(d) //lint:allow fabrictime retry-poll backoff paces the real scheduler; ack deadlines use the fabric clock
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// send transmits one message with ack/retry. It blocks until the receiver
// acknowledges (stop-and-wait; collectives send sequentially anyway) and
// keeps serving incoming frames while it waits, so two ranks sending to
// each other cannot deadlock. Cancelling ctx abandons the send within one
// poll interval.
//
// shared marks a payload the caller has relinquished (see Comm.SendShared):
// local delivery then skips its defensive copy. Wire frames are always
// shipped with transport.SendShared — the frame buffer belongs to this
// layer, is never mutated after encoding, and retransmits resend the same
// bytes, so the fabric's defensive copy would buy nothing.
func (r *reliable) send(ctx context.Context, dst, tag int, payload []byte, shared bool) error {
	rank := r.c.Rank()
	if dst == rank {
		// Local delivery: no wire, no frames.
		cp := payload
		if !shared {
			cp = append([]byte(nil), payload...)
		}
		r.mu.Lock()
		r.enqueue(rank, tag, cp)
		r.mu.Unlock()
		return nil
	}
	r.mu.Lock()
	seq := r.nextSeq[dst]
	r.nextSeq[dst]++
	frame := r.buildDataFrame(dst, seq, tag, payload)
	r.mu.Unlock()
	timeout := r.cfg.AckTimeout
	maxTimeout := r.cfg.MaxAckTimeout
	// Floor the ack deadline above the simulated round trip. With a wire
	// delay attached to the fabric, the frame and its ack each spend
	// WireDelay on the wire; a fixed 5ms default under, say, a 20ms
	// simulated latency would time out every first attempt and retransmit
	// the whole stream spuriously. High latency must read as latency, not
	// as loss.
	if rtt := r.c.f.WireDelay(len(frame)) + r.c.f.WireDelay(len(encodeAck(seq))); rtt > 0 {
		if floor := 2 * rtt; timeout < floor {
			timeout = floor
		}
		if maxTimeout < timeout {
			maxTimeout = timeout
		}
	}
	var endRecover func()
	finish := func(err error) error {
		if endRecover != nil {
			endRecover()
		}
		return err
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		if attempt > r.cfg.Retries {
			return finish(&RankLostError{Rank: dst, Attempts: attempt})
		}
		if r.c.f.Crashed(dst) {
			return finish(&RankLostError{Rank: dst, Attempts: attempt})
		}
		if attempt > 0 {
			r.mu.Lock()
			r.stats.Retries++
			r.mu.Unlock()
			r.cfg.Tracer.Instant(rank, "net.retry", int64(len(payload)))
			if endRecover == nil {
				endRecover = r.cfg.Tracer.Begin(rank, "net.recover")
			}
		}
		if err := r.c.ep.SendShared(dst, tagRelData, frame); err != nil {
			return finish(err)
		}
		r.mu.Lock()
		r.stats.FramesSent++
		r.mu.Unlock()
		deadline := r.clk.Now().Add(r.jitter(timeout))
		for {
			r.mu.Lock()
			if _, ok := r.acked[dst][seq]; ok {
				delete(r.acked[dst], seq)
				r.mu.Unlock()
				return finish(nil)
			}
			_, err := r.pump()
			if err == nil {
				if _, ok := r.acked[dst][seq]; ok {
					delete(r.acked[dst], seq)
					err = errAckedSentinel
				}
			}
			r.mu.Unlock()
			if err == errAckedSentinel {
				return finish(nil)
			}
			if err != nil {
				return finish(err)
			}
			if cerr := ctx.Err(); cerr != nil {
				return finish(cerr)
			}
			if r.clk.Now().After(deadline) {
				break
			}
			sleepCtx(ctx, r.cfg.PollInterval)
		}
		timeout = time.Duration(float64(timeout) * r.cfg.Backoff)
		if timeout > maxTimeout {
			timeout = maxTimeout
		}
	}
}

// errAckedSentinel is an internal control-flow marker, never returned.
var errAckedSentinel = errors.New("mpi: internal ack sentinel")

// jitter stretches one attempt's ack timeout by a seeded random fraction in
// [0, BackoffJitter). Strictly additive: the result is never below d, so the
// round-trip floor computed by send holds for every attempt. The draw is the
// only randomness in the protocol and comes from the per-rank seeded stream,
// keeping runs replayable.
func (r *reliable) jitter(d time.Duration) time.Duration {
	if r.cfg.BackoffJitter <= 0 {
		return d
	}
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	return d + time.Duration(float64(d)*r.cfg.BackoffJitter*u)
}

// buildDataFrame encodes one data message, piggybacking dst's pending acks
// and beats into a coalesced frame when there are any — they ride for free
// on a frame that is going to that peer anyway. A retransmit resends the
// piggybacked records too; acks are idempotent and beats tolerate
// duplication by contract. Callers hold r.mu.
func (r *reliable) buildDataFrame(dst int, seq uint64, tag int, payload []byte) []byte {
	acks, beats := r.pendAcks[dst], r.beats[dst]
	if !r.coalesce || (len(acks) == 0 && len(beats) == 0) {
		return encodeData(seq, tag, payload)
	}
	w := serial.NewWriter(len(payload) + 48 + 8*len(acks) + 24*len(beats))
	w.U8(kindCoal)
	w.U8(subData)
	w.U64(seq)
	w.Int(tag)
	w.RawBytes(payload)
	appendAckSub(w, acks)
	for _, b := range beats {
		appendBeatSub(w, b)
	}
	w.FinishCRC()
	r.stats.CoalescedFrames++
	r.stats.AcksSent += int64(len(acks))
	r.stats.BeatsSent += int64(len(beats))
	r.pendAcks[dst] = acks[:0]
	for i := range beats {
		beats[i] = pendFrame{}
	}
	r.beats[dst] = beats[:0]
	r.beatSince[dst] = time.Time{}
	return w.Bytes()
}

// sendBeat queues one fire-and-forget beat for dst. Beats are unsequenced
// and unacknowledged: they may be lost, duplicated (a retransmitted data
// frame re-carries its piggybacked beats), delayed up to CoalesceDelay, or
// overtake sequenced data — suitable only for idempotent liveness signals
// like the farm's heartbeats. A full batch (CoalesceLimit) or an expired
// fabric-clock deadline (CoalesceDelay) flushes the buffer; a data frame
// to the same peer carries pending beats for free. With coalescing
// disabled a beat degrades to an ordinary acknowledged send — the legacy
// wire shape.
func (r *reliable) sendBeat(dst, tag int, payload []byte) error {
	rank := r.c.Rank()
	if dst == rank {
		cp := append([]byte(nil), payload...)
		r.mu.Lock()
		r.enqueue(rank, tag, cp)
		r.mu.Unlock()
		return nil
	}
	if !r.coalesce {
		return r.send(context.Background(), dst, tag, payload, false)
	}
	cp := append([]byte(nil), payload...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.beats[dst]) == 0 {
		r.beatSince[dst] = r.clk.Now()
	}
	r.beats[dst] = append(r.beats[dst], pendFrame{tag: tag, payload: cp})
	if len(r.beats[dst]) >= r.cfg.CoalesceLimit ||
		r.clk.Now().Sub(r.beatSince[dst]) >= r.cfg.CoalesceDelay {
		return r.flushTo(dst)
	}
	return nil
}

// match pops the first queued delivery matching (src, tag).
func (r *reliable) match(src, tag int) (transport.Message, bool) {
	for i, m := range r.queue {
		if (src == transport.AnySource || m.Src == src) && (tag == transport.AnyTag || m.Tag == tag) {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return m, true
		}
	}
	return transport.Message{}, false
}

// recv blocks until a reassembled delivery matches (src, tag). A crashed
// specific source fails fast with RankLostError; RecvTimeout (if set)
// bounds the overall wait, and cancelling ctx abandons it within one poll
// interval.
func (r *reliable) recv(ctx context.Context, src, tag int) (transport.Message, error) {
	var deadline time.Time
	if r.cfg.RecvTimeout > 0 {
		deadline = r.clk.Now().Add(r.cfg.RecvTimeout)
	}
	for {
		r.mu.Lock()
		m, ok := r.match(src, tag)
		var progress bool
		var err error
		if !ok {
			progress, err = r.pump()
			if err == nil {
				m, ok = r.match(src, tag)
			}
		}
		r.mu.Unlock()
		if ok {
			return m, nil
		}
		if err != nil {
			return transport.Message{}, err
		}
		if progress {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return transport.Message{}, cerr
		}
		if src != transport.AnySource && src != r.c.Rank() && r.c.f.Crashed(src) {
			return transport.Message{}, &RankLostError{Rank: src}
		}
		if !deadline.IsZero() && r.clk.Now().After(deadline) {
			return transport.Message{}, fmt.Errorf("mpi: recv(src=%d, tag=%d) timed out after %v: %w",
				src, tag, r.cfg.RecvTimeout, ErrRankLost)
		}
		sleepCtx(ctx, r.cfg.PollInterval)
	}
}

// tryRecv is the non-blocking receive: one pump, one match.
func (r *reliable) tryRecv(src, tag int) (transport.Message, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.match(src, tag); ok {
		return m, true, nil
	}
	if _, err := r.pump(); err != nil {
		return transport.Message{}, false, err
	}
	m, ok := r.match(src, tag)
	return m, ok, nil
}

// ReliableStats returns protocol counters; all-zero in direct mode.
func (c *Comm) ReliableStats() ReliableStats {
	if c.rel == nil {
		return ReliableStats{}
	}
	c.rel.mu.Lock()
	defer c.rel.mu.Unlock()
	return c.rel.stats
}
