package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"triolet/internal/serial"
	"triolet/internal/trace"
	"triolet/internal/transport"
)

// Acknowledged-delivery mode. The paper's runtime sits on MPI and trusts
// the fabric completely (§3.4); this layer removes that trust. Every
// point-to-point message is wrapped in a frame carrying a per-(src,dst)
// sequence number and a CRC-32 over the whole frame. The receiver
// acknowledges every valid frame (including duplicates, whose first ack
// may have been lost), drops corrupt frames silently so the sender's
// retransmit fires, and reassembles frames into per-sender sequence order
// before tag matching — restoring MPI's non-overtaking rule on a fabric
// that reorders. The sender retransmits on ack timeout with exponential
// backoff and, when a peer's acknowledgements stop for good (or the fabric
// reports it crashed), fails fast with a RankLostError instead of blocking
// forever — the hook the cluster runtime uses to degrade gracefully.

// Reserved wire tags, far above both user tags and the collective tag
// sequence. In reliable mode every frame travels on one of these; the
// application-level tag rides inside the frame.
const (
	tagRelData = 1 << 30
	tagRelAck  = tagRelData + 1
)

// Frame kinds.
const (
	kindData uint8 = 0xD1
	kindAck  uint8 = 0xA2
)

// ErrRankLost reports that a peer stopped acknowledging deliveries (or
// crashed outright) and has been declared dead.
var ErrRankLost = errors.New("mpi: rank lost")

// RankLostError carries which rank was lost and how hard we tried. It
// unwraps to ErrRankLost, so callers test with errors.Is.
type RankLostError struct {
	Rank     int
	Attempts int
}

func (e *RankLostError) Error() string {
	return fmt.Sprintf("mpi: rank %d lost after %d delivery attempts", e.Rank, e.Attempts)
}

func (e *RankLostError) Unwrap() error { return ErrRankLost }

// ReliableConfig tunes the ack/retry protocol. Zero values select the
// defaults noted on each field.
type ReliableConfig struct {
	// AckTimeout is the first attempt's acknowledgement deadline
	// (default 5ms); later attempts back off from it. When the fabric
	// simulates wire delay, the effective deadline is floored at twice the
	// frame+ack round trip so simulated latency never reads as loss.
	AckTimeout time.Duration
	// Retries is the number of retransmissions before a silent peer is
	// declared lost (default 8).
	Retries int
	// Backoff multiplies the timeout after each retransmission
	// (default 1.6).
	Backoff float64
	// MaxAckTimeout caps the backed-off timeout (default 250ms).
	MaxAckTimeout time.Duration
	// RecvTimeout bounds a blocking receive; 0 waits forever. Receives
	// from a specific rank fail fast regardless when the fabric reports
	// that rank crashed.
	RecvTimeout time.Duration
	// PollInterval is the ack/receive poll granularity (default 100µs).
	PollInterval time.Duration
	// Tracer, when non-nil, records retransmissions and dropped frames
	// as trace events ("net.retry", "net.recover", "net.corrupt-drop",
	// "net.dup-drop").
	Tracer *trace.Tracer
}

func (cfg ReliableConfig) withDefaults() ReliableConfig {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 8
	}
	if cfg.Backoff < 1 {
		cfg.Backoff = 1.6
	}
	if cfg.MaxAckTimeout <= 0 {
		cfg.MaxAckTimeout = 250 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Microsecond
	}
	return cfg
}

// ReliableStats counts protocol activity on one communicator.
type ReliableStats struct {
	FramesSent     int64
	Retries        int64
	AcksSent       int64
	Delivered      int64
	DupDropped     int64
	CorruptDropped int64
}

// pendFrame is an out-of-order data frame parked until the gap fills.
type pendFrame struct {
	tag     int
	payload []byte
}

// reliable holds the protocol state of one communicator. State access is
// mutex-guarded (never across a sleep) so helper goroutines (Irecv) stay
// safe, but the design point is the single owning goroutine of the Comm.
type reliable struct {
	c   *Comm
	cfg ReliableConfig
	// clk is the fabric's time source. Every protocol deadline — ack
	// timeouts, receive timeouts — is computed and checked against it, so
	// timeout behavior follows simulated fabric time and tests can pin it
	// with an injected clock. Never call time.Now here.
	clk transport.Clock

	mu      sync.Mutex
	nextSeq []uint64               // per dst: next sequence number to assign
	acked   []map[uint64]struct{}  // per dst: acknowledged sends
	expect  []uint64               // per src: next in-order sequence expected
	ahead   []map[uint64]pendFrame // per src: frames ahead of the expected seq
	queue   []transport.Message    // reassembled, tag-matchable deliveries
	stats   ReliableStats
}

func newReliable(c *Comm, cfg ReliableConfig) *reliable {
	n := c.ep.Ranks()
	r := &reliable{
		c:       c,
		cfg:     cfg.withDefaults(),
		clk:     c.f.Clock(),
		nextSeq: make([]uint64, n),
		acked:   make([]map[uint64]struct{}, n),
		expect:  make([]uint64, n),
		ahead:   make([]map[uint64]pendFrame, n),
	}
	for i := 0; i < n; i++ {
		r.acked[i] = map[uint64]struct{}{}
		r.ahead[i] = map[uint64]pendFrame{}
	}
	return r
}

// encodeData builds a data frame: body ++ crc32(body).
func encodeData(seq uint64, tag int, payload []byte) []byte {
	w := serial.NewWriter(len(payload) + 32)
	w.U8(kindData)
	w.U64(seq)
	w.Int(tag)
	w.RawBytes(payload)
	w.FinishCRC()
	return w.Bytes()
}

// encodeAck builds an acknowledgement frame.
func encodeAck(seq uint64) []byte {
	w := serial.NewWriter(16)
	w.U8(kindAck)
	w.U64(seq)
	w.FinishCRC()
	return w.Bytes()
}

// decodeFrame verifies the trailing checksum and parses the body. ok is
// false for anything malformed — short, checksum mismatch, bad kind, or
// trailing garbage — which the protocol treats as corruption in flight.
func decodeFrame(b []byte) (kind uint8, seq uint64, tag int, payload []byte, ok bool) {
	body, valid := serial.VerifyCRC(b)
	if !valid {
		return 0, 0, 0, nil, false
	}
	br := serial.NewReader(body)
	kind = br.U8()
	seq = br.U64()
	switch kind {
	case kindAck:
		if br.Err() != nil || br.Remaining() != 0 {
			return 0, 0, 0, nil, false
		}
		return kind, seq, 0, nil, true
	case kindData:
		tag = br.Int()
		payload = br.RawBytes()
		if br.Err() != nil || br.Remaining() != 0 {
			return 0, 0, 0, nil, false
		}
		return kind, seq, tag, payload, true
	default:
		return 0, 0, 0, nil, false
	}
}

// pump drains every frame the fabric has for this rank without blocking:
// data frames are verified, acknowledged, deduplicated, and reassembled
// into per-sender order; ack frames mark pending sends complete. Callers
// must hold r.mu.
func (r *reliable) pump() (progress bool, err error) {
	for {
		m, ok, terr := r.c.ep.TryRecv(transport.AnySource, tagRelData)
		if terr != nil {
			return progress, terr
		}
		if !ok {
			break
		}
		progress = true
		if err := r.handleData(m); err != nil {
			return progress, err
		}
	}
	for {
		m, ok, terr := r.c.ep.TryRecv(transport.AnySource, tagRelAck)
		if terr != nil {
			return progress, terr
		}
		if !ok {
			break
		}
		progress = true
		kind, seq, _, _, valid := decodeFrame(m.Payload)
		if !valid || kind != kindAck {
			r.stats.CorruptDropped++
			r.cfg.Tracer.Instant(r.c.Rank(), "net.corrupt-drop", int64(len(m.Payload)))
			continue
		}
		r.acked[m.Src][seq] = struct{}{}
	}
	return progress, nil
}

// handleData processes one incoming wire frame.
func (r *reliable) handleData(m transport.Message) error {
	kind, seq, tag, payload, valid := decodeFrame(m.Payload)
	if !valid || kind != kindData {
		// Corrupt in flight: drop without acking; the sender retransmits.
		r.stats.CorruptDropped++
		r.cfg.Tracer.Instant(r.c.Rank(), "net.corrupt-drop", int64(len(m.Payload)))
		return nil
	}
	// Always ack a valid frame — a duplicate usually means our first ack
	// was lost.
	if err := r.c.ep.Send(m.Src, tagRelAck, encodeAck(seq)); err != nil {
		return err
	}
	r.stats.AcksSent++
	src := m.Src
	switch {
	case seq == r.expect[src]:
		r.enqueue(src, tag, payload)
		r.expect[src]++
		for {
			pf, ok := r.ahead[src][r.expect[src]]
			if !ok {
				break
			}
			delete(r.ahead[src], r.expect[src])
			r.enqueue(src, pf.tag, pf.payload)
			r.expect[src]++
		}
	case seq > r.expect[src]:
		if _, dup := r.ahead[src][seq]; dup {
			r.stats.DupDropped++
			r.cfg.Tracer.Instant(r.c.Rank(), "net.dup-drop", int64(len(payload)))
		} else {
			r.ahead[src][seq] = pendFrame{tag: tag, payload: payload}
		}
	default: // seq < expected: already delivered
		r.stats.DupDropped++
		r.cfg.Tracer.Instant(r.c.Rank(), "net.dup-drop", int64(len(payload)))
	}
	return nil
}

func (r *reliable) enqueue(src, tag int, payload []byte) {
	r.queue = append(r.queue, transport.Message{Src: src, Tag: tag, Payload: payload})
	r.stats.Delivered++
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// send transmits one message with ack/retry. It blocks until the receiver
// acknowledges (stop-and-wait; collectives send sequentially anyway) and
// keeps serving incoming frames while it waits, so two ranks sending to
// each other cannot deadlock. Cancelling ctx abandons the send within one
// poll interval.
func (r *reliable) send(ctx context.Context, dst, tag int, payload []byte) error {
	rank := r.c.Rank()
	if dst == rank {
		// Local delivery: no wire, no frames.
		cp := append([]byte(nil), payload...)
		r.mu.Lock()
		r.enqueue(rank, tag, cp)
		r.mu.Unlock()
		return nil
	}
	r.mu.Lock()
	seq := r.nextSeq[dst]
	r.nextSeq[dst]++
	r.mu.Unlock()
	frame := encodeData(seq, tag, payload)
	timeout := r.cfg.AckTimeout
	maxTimeout := r.cfg.MaxAckTimeout
	// Floor the ack deadline above the simulated round trip. With a wire
	// delay attached to the fabric, the frame and its ack each spend
	// WireDelay on the wire; a fixed 5ms default under, say, a 20ms
	// simulated latency would time out every first attempt and retransmit
	// the whole stream spuriously. High latency must read as latency, not
	// as loss.
	if rtt := r.c.f.WireDelay(len(frame)) + r.c.f.WireDelay(len(encodeAck(seq))); rtt > 0 {
		if floor := 2 * rtt; timeout < floor {
			timeout = floor
		}
		if maxTimeout < timeout {
			maxTimeout = timeout
		}
	}
	var endRecover func()
	finish := func(err error) error {
		if endRecover != nil {
			endRecover()
		}
		return err
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		if attempt > r.cfg.Retries {
			return finish(&RankLostError{Rank: dst, Attempts: attempt})
		}
		if r.c.f.Crashed(dst) {
			return finish(&RankLostError{Rank: dst, Attempts: attempt})
		}
		if attempt > 0 {
			r.mu.Lock()
			r.stats.Retries++
			r.mu.Unlock()
			r.cfg.Tracer.Instant(rank, "net.retry", int64(len(payload)))
			if endRecover == nil {
				endRecover = r.cfg.Tracer.Begin(rank, "net.recover")
			}
		}
		if err := r.c.ep.Send(dst, tagRelData, frame); err != nil {
			return finish(err)
		}
		r.mu.Lock()
		r.stats.FramesSent++
		r.mu.Unlock()
		deadline := r.clk.Now().Add(timeout)
		for {
			r.mu.Lock()
			if _, ok := r.acked[dst][seq]; ok {
				delete(r.acked[dst], seq)
				r.mu.Unlock()
				return finish(nil)
			}
			_, err := r.pump()
			if err == nil {
				if _, ok := r.acked[dst][seq]; ok {
					delete(r.acked[dst], seq)
					err = errAckedSentinel
				}
			}
			r.mu.Unlock()
			if err == errAckedSentinel {
				return finish(nil)
			}
			if err != nil {
				return finish(err)
			}
			if cerr := ctx.Err(); cerr != nil {
				return finish(cerr)
			}
			if r.clk.Now().After(deadline) {
				break
			}
			sleepCtx(ctx, r.cfg.PollInterval)
		}
		timeout = time.Duration(float64(timeout) * r.cfg.Backoff)
		if timeout > maxTimeout {
			timeout = maxTimeout
		}
	}
}

// errAckedSentinel is an internal control-flow marker, never returned.
var errAckedSentinel = errors.New("mpi: internal ack sentinel")

// match pops the first queued delivery matching (src, tag).
func (r *reliable) match(src, tag int) (transport.Message, bool) {
	for i, m := range r.queue {
		if (src == transport.AnySource || m.Src == src) && (tag == transport.AnyTag || m.Tag == tag) {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return m, true
		}
	}
	return transport.Message{}, false
}

// recv blocks until a reassembled delivery matches (src, tag). A crashed
// specific source fails fast with RankLostError; RecvTimeout (if set)
// bounds the overall wait, and cancelling ctx abandons it within one poll
// interval.
func (r *reliable) recv(ctx context.Context, src, tag int) (transport.Message, error) {
	var deadline time.Time
	if r.cfg.RecvTimeout > 0 {
		deadline = r.clk.Now().Add(r.cfg.RecvTimeout)
	}
	for {
		r.mu.Lock()
		m, ok := r.match(src, tag)
		var progress bool
		var err error
		if !ok {
			progress, err = r.pump()
			if err == nil {
				m, ok = r.match(src, tag)
			}
		}
		r.mu.Unlock()
		if ok {
			return m, nil
		}
		if err != nil {
			return transport.Message{}, err
		}
		if progress {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return transport.Message{}, cerr
		}
		if src != transport.AnySource && src != r.c.Rank() && r.c.f.Crashed(src) {
			return transport.Message{}, &RankLostError{Rank: src}
		}
		if !deadline.IsZero() && r.clk.Now().After(deadline) {
			return transport.Message{}, fmt.Errorf("mpi: recv(src=%d, tag=%d) timed out after %v: %w",
				src, tag, r.cfg.RecvTimeout, ErrRankLost)
		}
		sleepCtx(ctx, r.cfg.PollInterval)
	}
}

// tryRecv is the non-blocking receive: one pump, one match.
func (r *reliable) tryRecv(src, tag int) (transport.Message, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.match(src, tag); ok {
		return m, true, nil
	}
	if _, err := r.pump(); err != nil {
		return transport.Message{}, false, err
	}
	m, ok := r.match(src, tag)
	return m, ok, nil
}

// ReliableStats returns protocol counters; all-zero in direct mode.
func (c *Comm) ReliableStats() ReliableStats {
	if c.rel == nil {
		return ReliableStats{}
	}
	c.rel.mu.Lock()
	defer c.rel.mu.Unlock()
	return c.rel.stats
}
