package mpi

import (
	"testing"
	"testing/quick"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Generative SPMD testing: every rank executes the same random sequence of
// collectives; outcomes are compared to the sequential semantics. This
// stresses the sequence-number tagging that keeps concurrent collectives
// from interfering and the binomial trees at arbitrary sizes.

type collOp struct {
	Kind uint8
	Val  uint8
}

func TestRandomCollectiveSequences(t *testing.T) {
	prop := func(size0 uint8, ops []collOp) bool {
		size := int(size0%7) + 1
		if len(ops) > 8 {
			ops = ops[:8]
		}
		// Sequential expectations per op.
		type expectation struct {
			kind string
			want []int
		}
		expect := make([]expectation, len(ops))
		for i, op := range ops {
			switch op.Kind % 4 {
			case 0: // bcast of Val from root
				expect[i] = expectation{kind: "bcast", want: []int{int(op.Val)}}
			case 1: // allreduce sum of (rank + Val)
				total := 0
				for r := 0; r < size; r++ {
					total += r + int(op.Val)
				}
				expect[i] = expectation{kind: "allreduce", want: []int{total}}
			case 2: // scatter parts[i] = i*Val, then gather back doubled
				want := make([]int, size)
				for r := 0; r < size; r++ {
					want[r] = 2 * r * int(op.Val)
				}
				expect[i] = expectation{kind: "scattergather", want: want}
			default: // barrier
				expect[i] = expectation{kind: "barrier"}
			}
		}

		ok := true
		err := Run(transport.Config{Ranks: size}, func(c *Comm) error {
			for i, op := range ops {
				switch expect[i].kind {
				case "bcast":
					v, err := BcastT(c, 0, serial.IntC(), int(op.Val))
					if err != nil {
						return err
					}
					if v != expect[i].want[0] {
						ok = false
					}
				case "allreduce":
					v, err := AllreduceT(c, serial.IntC(), c.Rank()+int(op.Val),
						func(a, b int) int { return a + b })
					if err != nil {
						return err
					}
					if v != expect[i].want[0] {
						ok = false
					}
				case "scattergather":
					var parts []int
					if c.Rank() == 0 {
						parts = make([]int, size)
						for r := range parts {
							parts[r] = r * int(op.Val)
						}
					}
					mine, err := ScatterT(c, 0, serial.IntC(), parts)
					if err != nil {
						return err
					}
					all, err := GatherT(c, 0, serial.IntC(), 2*mine)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						for r, v := range all {
							if v != expect[i].want[r] {
								ok = false
							}
						}
					}
				case "barrier":
					if err := c.Barrier(); err != nil {
						return err
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
