package mpi

import (
	"fmt"
	"sync"

	"triolet/internal/transport"
)

// Nonblocking point-to-point operations. The paper's fastest
// C+MPI+OpenMP mri-q "used nonblocking, point-to-point messaging" (§4.2):
// the root posts all sends/receives, overlaps them with local compute, and
// waits at the end. Request is the MPI_Request analog.
//
// Isend completes immediately against the buffered fabric; its Request
// exists for symmetry and for code that waits on mixed request sets.
// Irecv runs the matching receive on a goroutine and parks the result in
// the Request.

// Request is a handle to an outstanding nonblocking operation.
type Request struct {
	mu      sync.Mutex
	done    chan struct{}
	msg     transport.Message
	err     error
	isRecv  bool
	started bool
}

// Wait blocks until the operation completes and returns the received
// message (receives) or a zero message (sends), plus the operation error.
func (r *Request) Wait() (transport.Message, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msg, r.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The payload is copied by the fabric, so
// the caller's buffer is immediately reusable (MPI buffered-send
// semantics).
func (c *Comm) Isend(dst, tag int, payload []byte) *Request {
	r := &Request{done: make(chan struct{}), started: true}
	r.err = c.Send(dst, tag, payload)
	close(r.done)
	return r
}

// Irecv starts a nonblocking receive matching (src, tag). The match is
// performed by a helper goroutine; Wait joins it. As with blocking Recv,
// src may be transport.AnySource and tag transport.AnyTag.
//
// Concurrent Irecvs with overlapping match patterns race for messages the
// same way concurrent MPI receives do; receives with distinct (src, tag)
// patterns are independent.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{}), isRecv: true, started: true}
	go func() {
		msg, err := c.Recv(src, tag)
		r.mu.Lock()
		r.msg = msg
		r.err = err
		r.mu.Unlock()
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request and returns the first error encountered
// (continuing to drain the rest so no goroutine leaks).
func WaitAll(reqs []*Request) error {
	var first error
	for i, r := range reqs {
		if r == nil {
			if first == nil {
				first = fmt.Errorf("mpi: WaitAll: nil request at %d", i)
			}
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
