package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"triolet/internal/transport"
)

// fakeClock is a manually-advanced transport.Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Regression: with a simulated wire delay far above the default 5ms ack
// timeout, every first attempt used to time out before its ack could
// possibly return, retransmitting the whole stream. The deadline is now
// floored above the simulated round trip, so a slow lossless wire yields
// zero retries — latency reads as latency, not loss.
func TestHighLatencyLosslessWireDoesNotRetransmit(t *testing.T) {
	f := transport.New(transport.Config{
		Ranks: 2,
		Delay: &transport.DelayConfig{Latency: 20 * time.Millisecond},
	})
	defer f.Close()
	a := NewReliableComm(f, 0, ReliableConfig{}) // default 5ms AckTimeout
	b := NewReliableComm(f, 1, ReliableConfig{})

	const n = 3
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m, err := b.Recv(0, 9)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if err := b.Send(0, 9, m.Payload); err != nil {
				t.Errorf("reply %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(1, 9, []byte("ping")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := a.Recv(1, 9); err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
	}
	wg.Wait()

	for name, c := range map[string]*Comm{"a": a, "b": b} {
		if s := c.ReliableStats(); s.Retries != 0 {
			t.Fatalf("%s retransmitted %d times on a lossless delayed wire: %+v", name, s.Retries, s)
		}
	}
}

// With a frozen injected clock, an absurdly small ack timeout never fires
// even when the receiver acks slowly in real time — proof that the send
// deadline is computed and checked against the fabric clock, not the wall
// clock.
func TestSendDeadlineFollowsInjectedClock(t *testing.T) {
	clk := newFakeClock()
	f := transport.New(transport.Config{Ranks: 2, Clock: clk})
	defer f.Close()
	cfg := ReliableConfig{AckTimeout: time.Nanosecond, Retries: 2}
	a := NewReliableComm(f, 0, cfg)
	b := NewReliableComm(f, 1, cfg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // several million ack timeouts of real time
		if _, err := b.Recv(0, 3); err != nil {
			t.Errorf("recv: %v", err)
		}
	}()
	if err := a.Send(1, 3, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	wg.Wait()
	if s := a.ReliableStats(); s.Retries != 0 {
		t.Fatalf("deadline fired on a frozen clock: %+v", s)
	}
}

// RecvTimeout likewise counts fabric time: a one-hour timeout expires the
// moment the injected clock jumps past it, in milliseconds of real time.
func TestRecvTimeoutFollowsInjectedClock(t *testing.T) {
	clk := newFakeClock()
	f := transport.New(transport.Config{Ranks: 2, Clock: clk})
	defer f.Close()
	c := NewReliableComm(f, 0, ReliableConfig{RecvTimeout: time.Hour})

	errc := make(chan error, 1)
	go func() {
		_, err := c.Recv(1, 5)
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("recv returned before the clock moved: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(2 * time.Hour)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrRankLost) {
			t.Fatalf("recv error = %v, want timeout wrapping ErrRankLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("recv did not observe the advanced clock")
	}
}
