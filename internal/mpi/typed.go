package mpi

import (
	"errors"
	"fmt"
	"sync"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

// BcastT broadcasts a typed value from root to all ranks. The marshalled
// payload is freshly allocated and never touched again, so it travels the
// shared (zero-copy) wire path.
func BcastT[T any](c *Comm, root int, codec serial.Codec[T], v T) (T, error) {
	var payload []byte
	if c.Rank() == root {
		payload = serial.Marshal(codec, v)
	}
	out, err := c.bcastPayload(root, payload, true)
	if err != nil {
		var zero T
		return zero, err
	}
	return serial.Unmarshal(codec, out)
}

// ScatterT sends parts[i] to rank i (typed); only root supplies parts.
func ScatterT[T any](c *Comm, root int, codec serial.Codec[T], parts []T) (T, error) {
	var raw [][]byte
	if c.Rank() == root {
		if len(parts) != c.Size() {
			var zero T
			return zero, fmt.Errorf("mpi: scatter with %d parts for %d ranks", len(parts), c.Size())
		}
		raw = make([][]byte, len(parts))
		for i, p := range parts {
			raw[i] = serial.Marshal(codec, p)
		}
	}
	mine, err := c.scatterPayload(root, raw, true)
	if err != nil {
		var zero T
		return zero, err
	}
	return serial.Unmarshal(codec, mine)
}

// GatherT collects a typed value from every rank at root; the result is
// indexed by rank at root and nil elsewhere.
func GatherT[T any](c *Comm, root int, codec serial.Codec[T], mine T) ([]T, error) {
	raw, err := c.gatherPayload(root, serial.Marshal(codec, mine), true)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	out := make([]T, len(raw))
	for i, b := range raw {
		out[i], err = serial.Unmarshal(codec, b)
		if err != nil {
			return nil, fmt.Errorf("mpi: gather decode rank %d: %w", i, err)
		}
	}
	return out, nil
}

// ReduceT folds every rank's typed value to rank 0 with the associative
// operator op. ok is true only at rank 0.
func ReduceT[T any](c *Comm, codec serial.Codec[T], mine T, op func(T, T) T) (T, bool, error) {
	combine := func(a, b []byte) ([]byte, error) {
		av, err := serial.Unmarshal(codec, a)
		if err != nil {
			return nil, err
		}
		bv, err := serial.Unmarshal(codec, b)
		if err != nil {
			return nil, err
		}
		return serial.Marshal(codec, op(av, bv)), nil
	}
	out, ok, err := c.reducePayload(serial.Marshal(codec, mine), combine, true)
	if err != nil || !ok {
		var zero T
		return zero, false, err
	}
	v, err := serial.Unmarshal(codec, out)
	return v, err == nil, err
}

// AllreduceT is ReduceT followed by a broadcast of the result, so every
// rank returns the reduction.
func AllreduceT[T any](c *Comm, codec serial.Codec[T], mine T, op func(T, T) T) (T, error) {
	v, ok, err := ReduceT(c, codec, mine, op)
	if err != nil {
		var zero T
		return zero, err
	}
	if !ok {
		var zero T
		v = zero
	}
	return BcastT(c, 0, codec, v)
}

// Run launches fn on every rank of a fresh fabric, one goroutine per rank
// (the SPMD entry point used by tests and the cluster runtime). It waits
// for all ranks and returns the joined errors. The fabric is closed on
// return, unblocking any stragglers.
func Run(cfg transport.Config, fn func(*Comm) error) error {
	f := transport.New(cfg)
	defer f.Close()
	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := range cfg.Ranks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					f.Close() // unblock peers waiting on this rank
				}
			}()
			errs[r] = fn(NewComm(f, r))
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
