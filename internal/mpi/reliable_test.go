package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"triolet/internal/transport"
)

// lossyFabric builds a fabric that drops, duplicates, and corrupts with the
// given seed — the standard chaos profile for these tests.
func lossyFabric(ranks int, seed int64) *transport.Fabric {
	return transport.New(transport.Config{
		Ranks: ranks,
		Fault: &transport.FaultConfig{
			Seed: seed,
			Default: transport.FaultProbs{
				Drop:      0.10,
				Duplicate: 0.10,
				Corrupt:   0.10,
			},
		},
	})
}

// fastReliable keeps retry timeouts short so lossy tests converge quickly.
func fastReliable() ReliableConfig {
	return ReliableConfig{
		AckTimeout:    500 * time.Microsecond,
		Retries:       60,
		MaxAckTimeout: 20 * time.Millisecond,
	}
}

func TestReliableDeliveryOverLossyFabric(t *testing.T) {
	f := lossyFabric(2, 123)
	defer f.Close()
	sender := NewReliableComm(f, 0, fastReliable())
	recver := NewReliableComm(f, 1, fastReliable())

	const n = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := sender.Send(1, 7, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := recver.Recv(0, 7)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%d", i); string(m.Payload) != want {
			t.Fatalf("recv %d = %q, want %q (order broken)", i, m.Payload, want)
		}
	}
	wg.Wait()

	// The fabric misbehaved and the protocol papered over it: retries
	// happened, and every one of the n messages still landed exactly once
	// in order.
	faults := f.Stats().Faults
	if faults.Dropped == 0 && faults.Corrupted == 0 && faults.Duplicated == 0 {
		t.Fatalf("fault injection never fired: %+v", faults)
	}
	ss := sender.ReliableStats()
	if ss.Retries == 0 {
		t.Fatalf("no retries despite %d drops: %+v", faults.Dropped, ss)
	}
	if rs := recver.ReliableStats(); rs.Delivered != n {
		t.Fatalf("receiver delivered %d, want %d", rs.Delivered, n)
	}
}

func TestReliableCollectivesUnderFaults(t *testing.T) {
	const ranks = 4
	f := lossyFabric(ranks, 99)
	defer f.Close()

	results := make([]string, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewReliableComm(f, r, fastReliable())
			// Bcast a payload down, gather rank signatures back up, then
			// reduce a sum — every collective shape over a lossy wire.
			got, err := c.Bcast(0, []byte("seed-payload"))
			if err != nil {
				errs[r] = fmt.Errorf("bcast: %w", err)
				return
			}
			if string(got) != "seed-payload" {
				errs[r] = fmt.Errorf("bcast payload = %q", got)
				return
			}
			all, err := c.Gather(0, []byte{byte('A' + r)})
			if err != nil {
				errs[r] = fmt.Errorf("gather: %w", err)
				return
			}
			sum, root, err := c.ReduceBytes([]byte{byte(r)}, func(a, b []byte) ([]byte, error) {
				return []byte{a[0] + b[0]}, nil
			})
			if err != nil {
				errs[r] = fmt.Errorf("reduce: %w", err)
				return
			}
			if r == 0 {
				sig := ""
				for _, p := range all {
					sig += string(p)
				}
				if !root {
					errs[r] = errors.New("rank 0 not reduce root")
					return
				}
				results[0] = fmt.Sprintf("%s/%d", sig, sum[0])
			}
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if want := "ABCD/6"; results[0] != want {
		t.Fatalf("collective result = %q, want %q", results[0], want)
	}
}

func TestReliableSendRankLostOnCrash(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2, Fault: &transport.FaultConfig{Seed: 1}})
	defer f.Close()
	c := NewReliableComm(f, 0, fastReliable())
	f.CrashRank(1)

	start := time.Now()
	err := c.Send(1, 3, []byte("to the dead"))
	if !errors.Is(err, ErrRankLost) {
		t.Fatalf("send to crashed rank err = %v, want ErrRankLost", err)
	}
	var rle *RankLostError
	if !errors.As(err, &rle) || rle.Rank != 1 {
		t.Fatalf("err = %v, want RankLostError{Rank: 1}", err)
	}
	// The fabric already knew, so the failure must be fast, not a full
	// retry ladder.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("fast-fail took %v", took)
	}
}

func TestReliableSendRankLostOnSilence(t *testing.T) {
	// Rank 1 exists but never services its communicator: no acks ever come
	// back, so the sender must exhaust its retries and declare the rank
	// lost (this is the no-failure-detector path — pure timeout).
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	c := NewReliableComm(f, 0, ReliableConfig{
		AckTimeout: time.Millisecond,
		Retries:    3,
	})
	err := c.Send(1, 3, []byte("anyone home?"))
	if !errors.Is(err, ErrRankLost) {
		t.Fatalf("send to silent rank err = %v, want ErrRankLost", err)
	}
	if st := c.ReliableStats(); st.Retries != 3 {
		t.Fatalf("retries = %d, want 3", st.Retries)
	}
}

func TestReliableRecvRankLostOnCrash(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2, Fault: &transport.FaultConfig{Seed: 1}})
	defer f.Close()
	c := NewReliableComm(f, 0, fastReliable())
	f.CrashRank(1)
	if _, err := c.Recv(1, 5); !errors.Is(err, ErrRankLost) {
		t.Fatalf("recv from crashed rank err = %v, want ErrRankLost", err)
	}
}

func TestReliableRecvTimeout(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	cfg := fastReliable()
	cfg.RecvTimeout = 10 * time.Millisecond
	c := NewReliableComm(f, 0, cfg)
	if _, err := c.Recv(transport.AnySource, 5); !errors.Is(err, ErrRankLost) {
		t.Fatalf("recv timeout err = %v, want ErrRankLost-derived", err)
	}
}

func TestReliableSelfSend(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 1})
	defer f.Close()
	c := NewReliableComm(f, 0, fastReliable())
	if err := c.Send(0, 2, []byte("note to self")); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv(0, 2)
	if err != nil || string(m.Payload) != "note to self" {
		t.Fatalf("self recv = %v, %v", m, err)
	}
}

func TestReliableDuplicatesSuppressed(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2, Fault: &transport.FaultConfig{
		Seed:    5,
		Default: transport.FaultProbs{Duplicate: 1}, // every frame doubled
	}})
	defer f.Close()
	sender := NewReliableComm(f, 0, fastReliable())
	recver := NewReliableComm(f, 1, fastReliable())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := sender.Send(1, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		m, err := recver.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("recv %d = %d", i, m.Payload[0])
		}
	}
	wg.Wait()
	// Exactly 20 user messages despite every wire frame arriving twice.
	if m, ok, _ := recver.TryRecv(0, 1); ok {
		t.Fatalf("extra delivery %v leaked through dedup", m)
	}
	if st := recver.ReliableStats(); st.DupDropped == 0 {
		t.Fatalf("no duplicates recorded: %+v", st)
	}
}
