// Package mpi layers MPI-style collectives over the transport fabric: the
// distributed communication layer of the virtual cluster (the paper's
// runtime uses OpenMPI, §4). Point-to-point operations are thin wrappers;
// collectives (Barrier, Bcast, Scatter, Gather, Reduce, Allreduce) use
// binomial trees, so their message counts scale as they would on a real
// cluster and the metered traffic feeding the performance model is honest.
//
// SPMD discipline: every rank must call the same sequence of collectives.
// A per-communicator sequence number keyed into the message tag keeps
// concurrent collectives from interfering, and mismatched sequences fail
// loudly rather than deadlock silently.
package mpi

import (
	"context"
	"fmt"

	"triolet/internal/transport"
)

// Tag bases: user point-to-point tags must stay below tagCollective.
const (
	tagCollective = 1 << 20
	// MaxUserTag is the largest tag usable with Send/Recv.
	MaxUserTag = tagCollective - 1
)

// Comm binds one rank to a fabric and carries collective sequencing state.
// A Comm is owned by a single goroutine (the node's control loop), like an
// MPI communicator handle is owned by a process.
type Comm struct {
	ep  *transport.Endpoint
	f   *transport.Fabric
	seq int
	rel *reliable
	ctx context.Context
}

// NewComm returns rank's communicator over f. Delivery is direct: the
// fabric is trusted to be lossless, matching the paper's MPI assumption.
func NewComm(f *transport.Fabric, rank int) *Comm {
	return &Comm{ep: f.Endpoint(rank), f: f}
}

// NewReliableComm returns rank's communicator in acknowledged-delivery
// mode: every point-to-point message (including the ones inside
// collectives) is framed with a sequence number and checksum, acknowledged
// by the receiver, retried with backoff on timeout, deduplicated, and
// re-ordered back into per-sender sequence — so the communicator survives
// a fabric that drops, duplicates, reorders, or corrupts messages (see
// transport.FaultConfig). A peer that stops acknowledging is declared lost
// with a RankLostError instead of blocking forever.
func NewReliableComm(f *transport.Fabric, rank int, cfg ReliableConfig) *Comm {
	c := &Comm{ep: f.Endpoint(rank), f: f}
	c.rel = newReliable(c, cfg)
	return c
}

// ReliableEnabled reports whether this communicator runs in
// acknowledged-delivery mode.
func (c *Comm) ReliableEnabled() bool { return c.rel != nil }

// SetContext attaches a base context to the communicator: every blocking
// operation (point-to-point and the sends/receives inside collectives)
// observes its cancellation and returns ctx.Err() promptly instead of
// blocking forever. The cluster runtime sets each rank's context from the
// job's, so cancelling a job unwinds every rank. Call before the
// communicator is in use; a nil or absent context means Background (block
// forever, the paper's MPI semantics).
func (c *Comm) SetContext(ctx context.Context) { c.ctx = ctx }

// Context returns the communicator's base context (Background when unset).
func (c *Comm) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// send is the internal point-to-point send every operation (user sends and
// collectives) routes through; it applies the ack/retry protocol when
// reliable mode is on.
func (c *Comm) send(ctx context.Context, dst, tag int, payload []byte) error {
	if c.rel != nil {
		return c.rel.send(ctx, dst, tag, payload, false)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.ep.Send(dst, tag, payload)
}

// sendShared is send for a payload the caller has relinquished: the fabric
// skips its defensive copy (see transport.Fabric.SendShared) and reliable
// local delivery skips its own. The caller must not mutate payload after
// the call; in direct mode the receiver aliases it and must treat it as
// read-only.
func (c *Comm) sendShared(ctx context.Context, dst, tag int, payload []byte) error {
	if c.rel != nil {
		return c.rel.send(ctx, dst, tag, payload, true)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.ep.SendShared(dst, tag, payload)
}

// recvMsg is the matching internal receive.
func (c *Comm) recvMsg(ctx context.Context, src, tag int) (transport.Message, error) {
	if c.rel != nil {
		return c.rel.recv(ctx, src, tag)
	}
	return c.ep.RecvCtx(ctx, src, tag)
}

// tryRecvMsg is the non-blocking internal receive.
func (c *Comm) tryRecvMsg(src, tag int) (transport.Message, bool, error) {
	if c.rel != nil {
		return c.rel.tryRecv(src, tag)
	}
	return c.ep.TryRecv(src, tag)
}

// Rank reports this communicator's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size reports the number of ranks.
func (c *Comm) Size() int { return c.ep.Ranks() }

// Send delivers payload to dst with a user tag.
func (c *Comm) Send(dst, tag int, payload []byte) error {
	return c.SendCtx(c.Context(), dst, tag, payload)
}

// SendCtx is Send under an explicit context: cancellation abandons the
// delivery (including mid-retry in reliable mode) with ctx.Err().
func (c *Comm) SendCtx(ctx context.Context, dst, tag int, payload []byte) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return c.send(ctx, dst, tag, payload)
}

// SendHalo is Send with halo attribution: the payload bytes are additionally
// counted in the fabric's Stats.HaloBytes, so ghost-row and boundary-
// replication traffic is separable from task traffic in the msg-gate.
// Attribution is once per logical payload; reliable-mode retries do not
// inflate it.
func (c *Comm) SendHalo(dst, tag int, payload []byte) error {
	c.f.AddHaloBytes(int64(len(payload)))
	return c.Send(dst, tag, payload)
}

// SendShared delivers payload to dst by reference: the zero-copy path for
// buffers the sender will never touch again (serial.Raw views of backing
// arrays, freshly marshalled codec output). Traffic is metered exactly
// like Send. The caller must not mutate payload after the call; in direct
// mode the receiver aliases the sender's buffer and must treat it as
// read-only.
func (c *Comm) SendShared(dst, tag int, payload []byte) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	return c.sendShared(c.Context(), dst, tag, payload)
}

// SendBeat delivers a fire-and-forget signal to dst. In reliable mode
// beats skip the ack/retry machinery and batch into coalesced frames,
// flushed when the batch fills (CoalesceLimit), when its fabric-clock
// deadline expires (CoalesceDelay), or by piggybacking on the next data
// frame to the same peer — so a 1ms heartbeat no longer costs a framed
// send plus an ack per beat. The price is every delivery guarantee: beats
// may be lost, duplicated, delayed, or overtake sequenced data. Use them
// only for idempotent signals whose loss the receiver already tolerates.
// In direct mode a beat is an ordinary send.
func (c *Comm) SendBeat(dst, tag int, payload []byte) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	if c.rel != nil {
		return c.rel.sendBeat(dst, tag, payload)
	}
	return c.ep.Send(dst, tag, payload)
}

// Recv blocks for a message matching (src, tag); src may be
// transport.AnySource.
func (c *Comm) Recv(src, tag int) (transport.Message, error) {
	return c.RecvCtx(c.Context(), src, tag)
}

// RecvCtx is Recv under an explicit context: cancellation unblocks the
// wait with ctx.Err().
func (c *Comm) RecvCtx(ctx context.Context, src, tag int) (transport.Message, error) {
	if tag != transport.AnyTag && (tag < 0 || tag > MaxUserTag) {
		return transport.Message{}, fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return c.recvMsg(ctx, src, tag)
}

// TryRecv is the non-blocking variant of Recv; ok is false when no
// matching message is available.
func (c *Comm) TryRecv(src, tag int) (transport.Message, bool, error) {
	if tag != transport.AnyTag && (tag < 0 || tag > MaxUserTag) {
		return transport.Message{}, false, fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	return c.tryRecvMsg(src, tag)
}

// nextTag issues the collective-reserved tag for the next collective call.
func (c *Comm) nextTag() int {
	c.seq++
	return tagCollective + c.seq
}

// Barrier blocks until every rank has entered the barrier: a binomial-tree
// gather to rank 0 followed by a tree broadcast of the release.
func (c *Comm) Barrier() error {
	ctx := c.Context()
	tag := c.nextTag()
	if err := c.treeGatherSignal(ctx, tag); err != nil {
		return fmt.Errorf("mpi: barrier gather: %w", err)
	}
	if _, err := c.treeBcast(ctx, tag, nil, false); err != nil {
		return fmt.Errorf("mpi: barrier release: %w", err)
	}
	return nil
}

// treeGatherSignal collapses an empty token up the binomial tree to rank 0.
func (c *Comm) treeGatherSignal(ctx context.Context, tag int) error {
	rank, size := c.Rank(), c.Size()
	for dist := 1; dist < size; dist <<= 1 {
		if rank&dist != 0 {
			return c.send(ctx, rank-dist, tag, nil)
		}
		peer := rank + dist
		if peer < size {
			if _, err := c.recvMsg(ctx, peer, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// treeBcast pushes data down the binomial tree from rank 0. Non-root ranks
// ignore their data argument and return the received payload. A rank's
// parent is rank minus its lowest set bit; after receiving it forwards to
// rank+mask for each mask below that bit — the classic binomial broadcast.
//
// shared marks root's data as relinquished (see SendShared); forwarded
// payloads are always shared — a rank that just received them never
// mutates them, it only reads and re-sends.
func (c *Comm) treeBcast(ctx context.Context, tag int, data []byte, shared bool) ([]byte, error) {
	rank, size := c.Rank(), c.Size()
	mask := 1
	for mask < size {
		if rank&mask != 0 {
			m, err := c.recvMsg(ctx, rank-mask, tag)
			if err != nil {
				return nil, err
			}
			data = m.Payload
			shared = true
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if peer := rank + mask; peer < size {
			var err error
			if shared {
				err = c.sendShared(ctx, peer, tag, data)
			} else {
				err = c.send(ctx, peer, tag, data)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Bcast distributes root's payload to every rank and returns it. Non-root
// ranks pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	return c.bcastPayload(root, data, false)
}

// bcastPayload is Bcast with an ownership flag: shared means root has
// relinquished data (freshly marshalled, never touched again), so every
// hop can forward it by reference.
func (c *Comm) bcastPayload(root int, data []byte, shared bool) ([]byte, error) {
	ctx := c.Context()
	tag := c.nextTag()
	if root != 0 {
		// Rotate so the tree is rooted at 0 logically: root forwards to 0
		// first. Simple and rare; the benchmarks root at 0.
		if c.Rank() == root {
			var err error
			if shared {
				err = c.sendShared(ctx, 0, tag, data)
			} else {
				err = c.send(ctx, 0, tag, data)
			}
			if err != nil {
				return nil, err
			}
		}
		if c.Rank() == 0 {
			m, err := c.recvMsg(ctx, root, tag)
			if err != nil {
				return nil, err
			}
			data = m.Payload
			shared = true
		}
	}
	return c.treeBcast(ctx, c.nextTag(), data, shared)
}

// Scatter sends parts[i] to rank i and returns this rank's part. Only root
// examines parts; it must supply exactly Size() parts. Implemented with
// direct sends from root — the paper's runtime likewise sends each node its
// slice directly (§3.5).
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	return c.scatterPayload(root, parts, false)
}

// scatterPayload is Scatter with an ownership flag: shared means root has
// relinquished every part, so each is sent by reference.
func (c *Comm) scatterPayload(root int, parts [][]byte, shared bool) ([]byte, error) {
	ctx := c.Context()
	tag := c.nextTag()
	if c.Rank() == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter with %d parts for %d ranks", len(parts), c.Size())
		}
		for dst, p := range parts {
			if dst == root {
				continue
			}
			var err error
			if shared {
				err = c.sendShared(ctx, dst, tag, p)
			} else {
				err = c.send(ctx, dst, tag, p)
			}
			if err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	m, err := c.recvMsg(ctx, root, tag)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Gather collects every rank's payload at root; the returned slice is
// indexed by rank at root and nil elsewhere.
func (c *Comm) Gather(root int, mine []byte) ([][]byte, error) {
	return c.gatherPayload(root, mine, false)
}

// gatherPayload is Gather with an ownership flag: shared means the caller
// has relinquished mine, so non-root ranks send it by reference.
func (c *Comm) gatherPayload(root int, mine []byte, shared bool) ([][]byte, error) {
	ctx := c.Context()
	tag := c.nextTag()
	if c.Rank() != root {
		if shared {
			return nil, c.sendShared(ctx, root, tag, mine)
		}
		return nil, c.send(ctx, root, tag, mine)
	}
	out := make([][]byte, c.Size())
	out[root] = mine
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.recvMsg(ctx, transport.AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.Src] = m.Payload
	}
	return out, nil
}

// ReduceBytes folds every rank's payload into one value at rank 0 using a
// binomial tree; combine must be associative. Returns (result, true) at
// rank 0 and (nil, false) elsewhere.
func (c *Comm) ReduceBytes(mine []byte, combine func(a, b []byte) ([]byte, error)) ([]byte, bool, error) {
	return c.reducePayload(mine, combine, false)
}

// reducePayload is ReduceBytes with an ownership flag: shared means the
// caller has relinquished mine and combine always returns fresh storage,
// so partial results climb the tree by reference.
func (c *Comm) reducePayload(mine []byte, combine func(a, b []byte) ([]byte, error), shared bool) ([]byte, bool, error) {
	ctx := c.Context()
	tag := c.nextTag()
	rank, size := c.Rank(), c.Size()
	acc := mine
	for dist := 1; dist < size; dist <<= 1 {
		if rank&dist != 0 {
			var err error
			if shared {
				err = c.sendShared(ctx, rank-dist, tag, acc)
			} else {
				err = c.send(ctx, rank-dist, tag, acc)
			}
			if err != nil {
				return nil, false, err
			}
			return nil, false, nil
		}
		peer := rank + dist
		if peer < size {
			m, err := c.recvMsg(ctx, peer, tag)
			if err != nil {
				return nil, false, err
			}
			acc, err = combine(acc, m.Payload)
			if err != nil {
				return nil, false, err
			}
		}
	}
	return acc, rank == 0, nil
}
