package mpi

import (
	"testing"
	"time"

	"triolet/internal/transport"
)

func TestIsendIrecvBasic(t *testing.T) {
	err := Run(transport.Config{Ranks: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 7, []byte("nb"))
			if !req.Test() {
				t.Error("Isend not immediately complete against buffered fabric")
			}
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 7)
		msg, err := req.Wait()
		if err != nil {
			return err
		}
		if string(msg.Payload) != "nb" || msg.Src != 0 {
			t.Errorf("msg = %+v", msg)
		}
		if !req.Test() {
			t.Error("Test false after Wait")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvBeforeSend(t *testing.T) {
	// Posting the receive first must not lose the message.
	err := Run(transport.Config{Ranks: 2}, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 9)
			if req.Test() {
				t.Error("Irecv complete before any send")
			}
			msg, err := req.Wait()
			if err != nil {
				return err
			}
			if string(msg.Payload) != "late" {
				t.Errorf("payload = %q", msg.Payload)
			}
			return nil
		}
		time.Sleep(5 * time.Millisecond)
		return c.Send(1, 9, []byte("late"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherWithNonblocking(t *testing.T) {
	// The paper's fastest mri-q pattern: root posts sends to all workers
	// and receives from all workers, overlapping with its own compute.
	const ranks = 5
	err := Run(transport.Config{Ranks: ranks}, func(c *Comm) error {
		if c.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst < ranks; dst++ {
				reqs = append(reqs, c.Isend(dst, 1, []byte{byte(dst)}))
			}
			recvs := make([]*Request, 0, ranks-1)
			for src := 1; src < ranks; src++ {
				recvs = append(recvs, c.Irecv(src, 2))
			}
			// "Local compute" happens here, overlapped.
			if err := WaitAll(reqs); err != nil {
				return err
			}
			for i, r := range recvs {
				msg, err := r.Wait()
				if err != nil {
					return err
				}
				if msg.Payload[0] != byte((i+1)*2) {
					t.Errorf("from rank %d: %d", i+1, msg.Payload[0])
				}
			}
			return nil
		}
		msg, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		return c.Send(0, 2, []byte{msg.Payload[0] * 2})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllNilRequest(t *testing.T) {
	if err := WaitAll([]*Request{nil}); err == nil {
		t.Fatal("nil request not reported")
	}
}

func TestWaitAllPropagatesError(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 1})
	c := NewComm(f, 0)
	req := c.Irecv(0, 1)
	f.Close()
	if err := WaitAll([]*Request{req}); err == nil {
		t.Fatal("closed-fabric receive did not error")
	}
}

func TestIsendTagValidation(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 1})
	defer f.Close()
	c := NewComm(f, 0)
	req := c.Isend(0, MaxUserTag+1, nil)
	if _, err := req.Wait(); err == nil {
		t.Fatal("oversized tag accepted")
	}
}
