package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

// sizes exercises non-power-of-two and degenerate cluster shapes, where
// binomial-tree bugs hide.
var sizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestSendRecvUserTags(t *testing.T) {
	err := Run(transport.Config{Ranks: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("payload"))
		}
		m, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		if string(m.Payload) != "payload" {
			t.Errorf("payload = %q", m.Payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	err := Run(transport.Config{Ranks: 1}, func(c *Comm) error {
		if err := c.Send(0, MaxUserTag+1, nil); err == nil {
			return errors.New("oversized tag accepted by Send")
		}
		if _, err := c.Recv(0, MaxUserTag+5); err == nil {
			return errors.New("oversized tag accepted by Recv")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range sizes {
		var entered atomic.Int64
		err := Run(transport.Config{Ranks: n}, func(c *Comm) error {
			for round := range 3 {
				entered.Add(1)
				if err := c.Barrier(); err != nil {
					return err
				}
				// After the barrier, every rank must have entered this round.
				if got := entered.Load(); got < int64((round+1)*c.Size()) {
					t.Errorf("n=%d round %d: only %d entries visible after barrier", n, round, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range sizes {
		err := Run(transport.Config{Ranks: n}, func(c *Comm) error {
			got, err := BcastT(c, 0, serial.Ints(), []int{1, 2, 3, c.Size()})
			if err != nil {
				return err
			}
			if len(got) != 4 || got[3] != c.Size() {
				t.Errorf("n=%d rank %d: bcast got %v", n, c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	err := Run(transport.Config{Ranks: 4}, func(c *Comm) error {
		var v []int
		if c.Rank() == 2 {
			v = []int{9, 9}
		}
		got, err := BcastT(c, 2, serial.Ints(), v)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 9 {
			t.Errorf("rank %d: got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, n := range sizes {
		err := Run(transport.Config{Ranks: n}, func(c *Comm) error {
			var parts [][]float64
			if c.Rank() == 0 {
				parts = make([][]float64, c.Size())
				for i := range parts {
					parts[i] = []float64{float64(i), float64(i) * 2}
				}
			}
			mine, err := ScatterT(c, 0, serial.F64s(), parts)
			if err != nil {
				return err
			}
			if mine[0] != float64(c.Rank()) {
				t.Errorf("rank %d scattered %v", c.Rank(), mine)
			}
			// Double locally, gather back.
			mine[0] *= 10
			all, err := GatherT(c, 0, serial.F64s(), mine)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for i, p := range all {
					if p[0] != float64(i)*10 || p[1] != float64(i)*2 {
						t.Errorf("gathered[%d] = %v", i, p)
					}
				}
			} else if all != nil {
				t.Errorf("non-root rank %d got gather result", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestScatterWrongPartsCount(t *testing.T) {
	err := Run(transport.Config{Ranks: 1}, func(c *Comm) error {
		_, err := ScatterT(c, 0, serial.IntC(), []int{1, 2})
		if err == nil {
			return errors.New("scatter accepted wrong part count")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumAllSizes(t *testing.T) {
	for _, n := range sizes {
		err := Run(transport.Config{Ranks: n}, func(c *Comm) error {
			v, ok, err := ReduceT(c, serial.IntC(), c.Rank()+1, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			want := c.Size() * (c.Size() + 1) / 2
			if c.Rank() == 0 {
				if !ok || v != want {
					t.Errorf("n=%d: reduce = %d ok=%v, want %d", n, v, ok, want)
				}
			} else if ok {
				t.Errorf("n=%d rank %d: ok true off root", n, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceVectorAdd(t *testing.T) {
	// The tpacf pattern: reduce histograms by elementwise addition.
	err := Run(transport.Config{Ranks: 5}, func(c *Comm) error {
		mine := []int64{int64(c.Rank()), 1, 2}
		v, ok, err := ReduceT(c, serial.I64s(), mine, func(a, b []int64) []int64 {
			out := make([]int64, len(a))
			for i := range a {
				out[i] = a[i] + b[i]
			}
			return out
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 && ok {
			if v[0] != 10 || v[1] != 5 || v[2] != 10 {
				t.Errorf("vector reduce = %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range sizes {
		err := Run(transport.Config{Ranks: n}, func(c *Comm) error {
			v, err := AllreduceT(c, serial.IntC(), 1, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if v != c.Size() {
				t.Errorf("n=%d rank %d: allreduce = %d", n, c.Rank(), v)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	// A collective between point-to-point messages must not steal them.
	err := Run(transport.Config{Ranks: 3}, func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 5, []byte("before")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := AllreduceT(c, serial.IntC(), 1, func(a, b int) int { return a + b }); err != nil {
			return err
		}
		if c.Rank() == 0 {
			m, err := c.Recv(1, 5)
			if err != nil {
				return err
			}
			if string(m.Payload) != "before" {
				t.Errorf("p2p payload = %q", m.Payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanicsAndErrors(t *testing.T) {
	err := Run(transport.Config{Ranks: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		// Rank 1 blocks on a message that never comes; the panic handler
		// closes the fabric and unblocks it.
		_, err := c.Recv(0, 1)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}

	sentinel := errors.New("rank failure")
	err = Run(transport.Config{Ranks: 2}, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectivesUnderWireDelay(t *testing.T) {
	// Binomial trees must stay correct when message delivery is delayed
	// and can interleave arbitrarily across edges.
	cfg := transport.Config{
		Ranks: 5,
		Delay: &transport.DelayConfig{Latency: time.Millisecond, BytesPerSec: 5e6},
	}
	err := Run(cfg, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := BcastT(c, 0, serial.Ints(), []int{1, 2, 3})
		if err != nil {
			return err
		}
		if len(got) != 3 || got[2] != 3 {
			t.Errorf("rank %d: bcast = %v", c.Rank(), got)
		}
		v, err := AllreduceT(c, serial.IntC(), c.Rank(), func(a, b int) int { return a + b })
		if err != nil {
			return err
		}
		if v != 0+1+2+3+4 {
			t.Errorf("rank %d: allreduce = %d", c.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankSize(t *testing.T) {
	seen := make([]atomic.Bool, 3)
	err := Run(transport.Config{Ranks: 3}, func(c *Comm) error {
		if c.Size() != 3 {
			t.Errorf("Size = %d", c.Size())
		}
		seen[c.Rank()].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("rank %d never ran", i)
		}
	}
}
