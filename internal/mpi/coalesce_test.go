package mpi

import (
	"bytes"
	"testing"
	"time"

	"triolet/internal/serial"
	"triolet/internal/transport"
)

// TestBeatBatchingByCount: beats buffer until CoalesceLimit, then the whole
// batch ships as one coalesced frame — CoalesceLimit beats cost one wire
// message instead of CoalesceLimit framed sends plus acks.
func TestBeatBatchingByCount(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	a := NewReliableComm(f, 0, ReliableConfig{CoalesceLimit: 4})
	b := NewReliableComm(f, 1, ReliableConfig{})

	before := f.Stats().Messages
	for i := 0; i < 4; i++ {
		if err := a.SendBeat(1, 7, []byte{byte(i)}); err != nil {
			t.Fatalf("beat %d: %v", i, err)
		}
	}
	if got := f.Stats().Messages - before; got != 1 {
		t.Fatalf("4 beats crossed the wire in %d messages, want 1 coalesced frame", got)
	}
	for i := 0; i < 4; i++ {
		m, ok, err := b.TryRecv(0, 7)
		if err != nil || !ok {
			t.Fatalf("beat %d not delivered: ok=%v err=%v", i, ok, err)
		}
		if len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("beat %d payload %v", i, m.Payload)
		}
	}
	st := a.ReliableStats()
	if st.BeatsSent != 4 || st.CoalescedFrames != 1 {
		t.Fatalf("stats BeatsSent=%d CoalescedFrames=%d, want 4 and 1", st.BeatsSent, st.CoalescedFrames)
	}
}

// TestBeatDeadlineFlush: a partial batch waits, then a pump after the
// fabric-clock deadline flushes it — beats are delayed at most
// CoalesceDelay, driven entirely by the injectable clock.
func TestBeatDeadlineFlush(t *testing.T) {
	clk := newFakeClock()
	f := transport.New(transport.Config{Ranks: 2, Clock: clk})
	defer f.Close()
	a := NewReliableComm(f, 0, ReliableConfig{CoalesceDelay: 10 * time.Millisecond})
	b := NewReliableComm(f, 1, ReliableConfig{})

	if err := a.SendBeat(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.SendBeat(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.TryRecv(0, 7); ok {
		t.Fatal("partial beat batch flushed before its deadline")
	}
	clk.Advance(11 * time.Millisecond)
	// Any pump on the sender notices the expired deadline; TryRecv pumps.
	if _, _, err := a.TryRecv(1, 9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := b.TryRecv(0, 7); err != nil || !ok {
			t.Fatalf("beat %d not delivered after deadline flush: ok=%v err=%v", i, ok, err)
		}
	}
	if st := a.ReliableStats(); st.BeatsSent != 2 || st.CoalescedFrames != 1 {
		t.Fatalf("stats BeatsSent=%d CoalescedFrames=%d, want 2 and 1", st.BeatsSent, st.CoalescedFrames)
	}
}

// TestBeatPiggybackOnData: pending beats ride for free on the next data
// frame to the same peer — no separate beat frame crosses the wire.
func TestBeatPiggybackOnData(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	a := NewReliableComm(f, 0, ReliableConfig{})
	b := NewReliableComm(f, 1, ReliableConfig{})

	for i := 0; i < 3; i++ {
		if err := a.SendBeat(1, 7, nil); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(1, 9, []byte("payload")) }()
	m, err := b.Recv(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "payload" {
		t.Fatalf("data payload %q", m.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := b.TryRecv(0, 7); err != nil || !ok {
			t.Fatalf("piggybacked beat %d not delivered: ok=%v err=%v", i, ok, err)
		}
	}
	st := a.ReliableStats()
	if st.BeatsSent != 3 || st.CoalescedFrames < 1 {
		t.Fatalf("stats BeatsSent=%d CoalescedFrames=%d, want 3 beats in >=1 coalesced frame",
			st.BeatsSent, st.CoalescedFrames)
	}
}

// TestAckBatchingWireFormat: two data frames drained by one pump produce a
// single coalesced acknowledgement frame carrying both seqs — white-box
// check of the kindCoal/subAck wire layout via a raw endpoint peer.
func TestAckBatchingWireFormat(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	raw := f.Endpoint(0) // rank 0 speaks raw frames, no reliable layer
	b := NewReliableComm(f, 1, ReliableConfig{})

	if err := raw.Send(1, tagRelData, encodeData(0, 9, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := raw.Send(1, tagRelData, encodeData(1, 9, []byte("y"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := b.TryRecv(0, 9); err != nil || !ok {
			t.Fatalf("data %d not delivered: ok=%v err=%v", i, ok, err)
		}
	}
	m, ok, err := raw.TryRecv(1, tagRelAck)
	if err != nil || !ok {
		t.Fatalf("no ack frame: ok=%v err=%v", ok, err)
	}
	body, valid := serial.VerifyCRC(m.Payload)
	if !valid {
		t.Fatal("ack frame CRC invalid")
	}
	br := serial.NewReader(body)
	if kind := br.U8(); kind != kindCoal {
		t.Fatalf("ack frame kind 0x%02X, want kindCoal", kind)
	}
	subs, ok := decodeCoal(br)
	if !ok || len(subs) != 1 || subs[0].kind != subAck {
		t.Fatalf("coalesced frame decode: ok=%v subs=%+v, want one subAck", ok, subs)
	}
	if len(subs[0].seqs) != 2 || subs[0].seqs[0] != 0 || subs[0].seqs[1] != 1 {
		t.Fatalf("batched ack seqs %v, want [0 1]", subs[0].seqs)
	}
	if _, ok, _ := raw.TryRecv(1, tagRelAck); ok {
		t.Fatal("second ack frame on the wire; both acks should share one")
	}
}

// TestSingleAckKeepsLegacyFrame: one data frame still gets the compact
// legacy kindAck frame — a coalesced container would be strictly larger.
func TestSingleAckKeepsLegacyFrame(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	raw := f.Endpoint(0)
	b := NewReliableComm(f, 1, ReliableConfig{})

	if err := raw.Send(1, tagRelData, encodeData(0, 9, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.TryRecv(0, 9); err != nil || !ok {
		t.Fatalf("data not delivered: ok=%v err=%v", ok, err)
	}
	m, ok, err := raw.TryRecv(1, tagRelAck)
	if err != nil || !ok {
		t.Fatalf("no ack frame: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(m.Payload, encodeAck(0)) {
		t.Fatalf("single ack frame %x, want legacy %x", m.Payload, encodeAck(0))
	}
	if st := b.ReliableStats(); st.CoalescedFrames != 0 {
		t.Fatalf("CoalescedFrames=%d for a single ack, want 0", st.CoalescedFrames)
	}
}

// TestDisableCoalesceLegacyShape: with coalescing off every ack is its own
// legacy frame, beats become acknowledged sends, and no coalesced frame is
// ever emitted — the wire shape the message-volume gate compares against.
func TestDisableCoalesceLegacyShape(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	cfg := ReliableConfig{DisableCoalesce: true}
	a := NewReliableComm(f, 0, cfg)
	b := NewReliableComm(f, 1, cfg)

	before := f.Stats().Messages
	// A legacy beat is a blocking acked send, so the sender needs a
	// concurrently pumping receiver.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if err := a.SendBeat(1, 7, nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if _, err := b.Recv(0, 7); err != nil {
			t.Fatalf("legacy beat %d not delivered: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Each beat is a full acknowledged send: one data frame plus one ack.
	if got := f.Stats().Messages - before; got != 6 {
		t.Fatalf("3 legacy beats crossed the wire in %d messages, want 6 (frame+ack each)", got)
	}
	sa, sb := a.ReliableStats(), b.ReliableStats()
	if sa.CoalescedFrames != 0 || sb.CoalescedFrames != 0 {
		t.Fatalf("CoalescedFrames nonzero with coalescing disabled: %d/%d",
			sa.CoalescedFrames, sb.CoalescedFrames)
	}
}

// TestSharedRawPayloadSurvivesCorruptFaults: the end-to-end zero-copy chaos
// case. A float64 array is encoded with serial.Raw (aliasing its backing
// store), shipped via SendShared over a fabric injecting bit corruption,
// and decoded on the far side. The CRC must catch every injected flip
// (retransmits repair it), the received values must be bit-identical, and
// the sender's array must come through unmutated — corruption happens to a
// copy, never to the aliased buffer.
func TestSharedRawPayloadSurvivesCorruptFaults(t *testing.T) {
	f := transport.New(transport.Config{
		Ranks: 2,
		Fault: &transport.FaultConfig{Seed: 42, Default: transport.FaultProbs{Corrupt: 0.3}},
	})
	defer f.Close()
	cfg := ReliableConfig{AckTimeout: time.Millisecond, Retries: 100}
	a := NewReliableComm(f, 0, cfg)
	b := NewReliableComm(f, 1, cfg)

	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64(i) * 1.25
	}
	want := append([]float64(nil), xs...)

	const rounds = 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := a.SendShared(1, 7, serial.Raw(xs)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < rounds; i++ {
		m, err := b.Recv(0, 7)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got, err := serial.RawCopy[float64](m.Payload)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("round %d element %d: %v, want %v (corruption leaked past the CRC)",
					i, j, got[j], want[j])
			}
		}
	}
	// Keep pumping until the sender finishes: its last ack may have been
	// corrupted, in which case only our pump re-acks the retransmit.
	for {
		var err error
		select {
		case err = <-done:
		default:
			_, _, err = b.TryRecv(0, 7)
			if err == nil {
				continue
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	for j := range want {
		if xs[j] != want[j] {
			t.Fatalf("sender's aliased array mutated at %d: %v, want %v", j, xs[j], want[j])
		}
	}
	if st := b.ReliableStats(); st.CorruptDropped == 0 {
		t.Fatal("no frames were corrupt-dropped; the chaos case did not exercise the CRC")
	}
}
