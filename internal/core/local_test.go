package core

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

func TestSumLocalSequentialAndParallelAgree(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i % 97)
	}
	seqIt := iter.FromSlice(xs)
	parIt := iter.LocalPar(iter.FromSlice(xs))
	want := iter.Sum(seqIt)
	if got := SumLocal(pool, seqIt, 64); got != want {
		t.Fatalf("sequential SumLocal = %d, want %d", got, want)
	}
	if got := SumLocal(pool, parIt, 64); got != want {
		t.Fatalf("parallel SumLocal = %d, want %d", got, want)
	}
}

func TestSumLocalFusedPipeline(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	// sum(filter(even, map(*3, xs))) with localpar — a fused irregular
	// pipeline split across threads.
	xs := make([]int64, 5000)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := iter.LocalPar(iter.Filter(func(v int64) bool { return v%2 == 0 },
		iter.Map(func(x int64) int64 { return x * 3 }, iter.FromSlice(xs))))
	var want int64
	for _, x := range xs {
		if v := x * 3; v%2 == 0 {
			want += v
		}
	}
	if got := SumLocal(pool, it, 32); got != want {
		t.Fatalf("fused SumLocal = %d, want %d", got, want)
	}
}

func TestSumLocalUnsplittableFallsBack(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	it := iter.LocalPar(iter.StepFlat(iter.StepOf([]int{1, 2, 3})))
	if got := SumLocal(pool, it, 1); got != 6 {
		t.Fatalf("stepper SumLocal = %d", got)
	}
}

func TestSumLocalNilPool(t *testing.T) {
	it := iter.LocalPar(iter.Range(100))
	if got := SumLocal(nil, it, 1); got != 4950 {
		t.Fatalf("nil-pool SumLocal = %d", got)
	}
}

func TestReduceLocalNonTrivialAccumulator(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	// max via reduce
	xs := []int{3, 9, 1, 9, 4, 0, 8}
	it := iter.LocalPar(iter.FromSlice(xs))
	got := ReduceLocal(pool, it, 2, -1,
		func(a int, v int) int { return max(a, v) },
		func(a, b int) int { return max(a, b) })
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
}

func TestCountLocal(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	it := iter.LocalPar(iter.Filter(func(x int) bool { return x%5 == 0 }, iter.Range(1000)))
	if got := CountLocal(pool, it, 16); got != 200 {
		t.Fatalf("CountLocal = %d", got)
	}
}

func TestHistogramLocalMatchesSequential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	prop := func(xs []uint8) bool {
		vals := make([]int, len(xs))
		for i, x := range xs {
			vals[i] = int(x % 32)
		}
		seq := iter.Histogram(32, iter.FromSlice(vals))
		par := HistogramLocal(pool, 32, iter.LocalPar(iter.FromSlice(vals)), 8)
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramLocalNestedPipeline(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	// The tpacf shape: histogram over a concatMap of per-element inner
	// loops, thread-parallel with private bins.
	mk := func(hint bool) iter.Iter[int] {
		it := iter.ConcatMap(func(x int) iter.Iter[int] {
			return iter.Map(func(j int) int { return (x + j) % 10 }, iter.Range(x%7))
		}, iter.Range(500))
		if hint {
			return iter.LocalPar(it)
		}
		return it
	}
	seq := iter.Histogram(10, mk(false))
	par := HistogramLocal(pool, 10, mk(true), 16)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("bin %d: seq %d par %d", i, seq[i], par[i])
		}
	}
}

func TestWeightedHistogramLocal(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	mk := func(hint iter.Iter[iter.Bin[float64]]) iter.Iter[iter.Bin[float64]] { return hint }
	_ = mk
	build := func() iter.Iter[iter.Bin[float64]] {
		return iter.Map(func(i int) iter.Bin[float64] {
			return iter.Bin[float64]{I: i % 16, W: float64(i%5) * 0.5}
		}, iter.Range(4096))
	}
	seq := iter.WeightedHistogram(16, build())
	par := WeightedHistogramLocal(pool, 16, iter.LocalPar(build()), 64)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("bin %d: seq %v par %v", i, seq[i], par[i])
		}
	}
}

func TestBuildSliceLocal(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	it := iter.LocalPar(iter.Map(func(i int) int { return i * i }, iter.Range(3000)))
	got := BuildSliceLocal(pool, it, 128)
	if len(got) != 3000 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Irregular iterator falls back to ordered sequential collection.
	irr := iter.LocalPar(iter.Filter(func(x int) bool { return x%2 == 0 }, iter.Range(10)))
	if got := BuildSliceLocal(pool, irr, 4); len(got) != 5 || got[4] != 8 {
		t.Fatalf("irregular = %v", got)
	}
}

func TestBuild2Local(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	d := domain.NewDim2(33, 47)
	it := iter.LocalPar2(iter.Map2(func(ix domain.Ix2) int {
		return ix.Y*1000 + ix.X
	}, iter.ArrayRange2(d)))
	m := Build2Local(pool, it)
	if m.H != 33 || m.W != 47 {
		t.Fatalf("shape %dx%d", m.H, m.W)
	}
	for y := 0; y < d.H; y++ {
		for x := 0; x < d.W; x++ {
			if m.At(y, x) != y*1000+x {
				t.Fatalf("m[%d][%d] = %d", y, x, m.At(y, x))
			}
		}
	}
	// Sequential path
	seqIt := iter.Map2(func(ix domain.Ix2) int { return ix.X }, iter.ArrayRange2(domain.NewDim2(2, 2)))
	sm := Build2Local(pool, seqIt)
	if sm.At(1, 1) != 1 {
		t.Fatalf("seq build = %v", sm.Data)
	}
	// Empty domain
	em := Build2Local(pool, iter.LocalPar2(iter.ArrayRange2(domain.NewDim2(0, 4))))
	if len(em.Data) != 0 {
		t.Fatal("empty build produced data")
	}
}
