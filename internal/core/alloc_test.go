package core

import (
	"testing"

	"triolet/internal/iter"
	"triolet/internal/sched"
)

// Sinks defeat dead-code elimination in the alloc measurements.
var (
	histAllocSink  []int64
	whistAllocSink []float32
)

// The parallel histogram's allocation bound is workers+1 bin arrays plus a
// constant number of split/range descriptors — independent of element
// count. The block AddInto merge must not reintroduce per-element or
// per-bin boxing, so the gate compares a 64× larger input at an identical
// range count and requires no allocation growth. Runs under CI's
// alloc-gate job (-run 'ZeroAllocs|Allocs|Arena|Presize').
func TestHistogramMergeAllocsBounded(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	const bins = 64

	measure := func(n int) float64 {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i % bins
		}
		it := iter.LocalPar(iter.FromSlice(xs))
		grain := n / 8 // 8 parallel ranges regardless of n
		return testing.AllocsPerRun(10, func() {
			histAllocSink = HistogramLocal(pool, bins, it, grain)
		})
	}
	small, big := measure(4096), measure(262144)
	if big > small+8 {
		t.Fatalf("histogram allocs scale with input: %v for 4Ki elems, %v for 256Ki", small, big)
	}
}

func TestWeightedHistogramMergeAllocsBounded(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	const bins = 64

	measure := func(n int) float64 {
		xs := make([]iter.Bin[float32], n)
		for i := range xs {
			xs[i] = iter.Bin[float32]{I: i % bins, W: float32(i%7) * 0.5}
		}
		it := iter.LocalPar(iter.FromSlice(xs))
		grain := n / 8
		return testing.AllocsPerRun(10, func() {
			whistAllocSink = WeightedHistogramLocal(pool, bins, it, grain)
		})
	}
	small, big := measure(4096), measure(262144)
	if big > small+8 {
		t.Fatalf("weighted histogram allocs scale with input: %v for 4Ki elems, %v for 256Ki", small, big)
	}
}
