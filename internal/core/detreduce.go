package core

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// Deterministic reductions. The plain reduction skeletons are only
// associativity-deterministic: sched.ParallelReduce merges per-worker
// partials in steal order, and MapReduceOp splits the domain by node count,
// so a floating-point Sum changes in the last bits when the worker count,
// the steal schedule, or the node count changes. That is fine for the
// integer skeletons and tolerance-checked kernels, but it means "the same
// program" does not compute "the same answer" across execution modes — the
// exact property the differential oracle (internal/diffcheck) exists to
// enforce.
//
// The fix is to make the reduction tree a function of the domain alone:
//
//  1. the domain [0, n) is cut into fixed DetChunk-wide chunks at absolute
//     offsets (chunk k covers [k*DetChunk, (k+1)*DetChunk) ∩ [0, n)),
//  2. each chunk is folded sequentially in element order — the block and
//     per-element engines already agree bit-for-bit on an in-order fold,
//  3. chunk partials are combined by a fixed balanced pairwise tree over
//     the chunk vector (CombineTree).
//
// Which worker or node computes a chunk never changes what is added to
// what: distributing the chunks over 1, 2, 4, or 8 nodes (AlignedPartition
// keeps chunks whole) or any steal schedule yields bit-identical floats.

// DetChunk is the chunk width of deterministic reductions. It equals
// sched.BlockAlign (== iter.BlockSize) so chunk folds run full-width block
// kernels and pool splits never cut through a chunk; the pairing is
// asserted by a test.
const DetChunk = sched.BlockAlign

// CombineTree folds parts with a fixed balanced binary tree whose shape
// depends only on len(parts): adjacent pairs combine, then adjacent pair
// results, and so on; an odd trailing element is carried up unchanged.
// Reductions that must be bit-reproducible for floats use it in place of a
// schedule-dependent fold. combine need not be commutative: arguments keep
// their left-to-right order.
func CombineTree[A any](parts []A, id A, combine func(A, A) A) A {
	if len(parts) == 0 {
		return id
	}
	buf := append([]A(nil), parts...)
	for len(buf) > 1 {
		w := 0
		i := 0
		for ; i+1 < len(buf); i += 2 {
			buf[w] = combine(buf[i], buf[i+1])
			w++
		}
		if i < len(buf) {
			buf[w] = buf[i]
			w++
		}
		buf = buf[:w]
	}
	return buf[0]
}

// ChunkPartials folds each DetChunk-wide chunk of it's outer domain into a
// partial, in element order within the chunk, and returns the partials in
// chunk order. The partial values are independent of how the work is
// scheduled: a parallel run over the pool computes exactly the chunks a
// sequential run would. An unsplittable iterator yields a single partial
// covering the whole traversal.
func ChunkPartials[T, A any](pool *sched.Pool, it iter.Iter[T], id A, w func(A, T) A) []A {
	n, ok := it.OuterLen()
	if !ok || !it.CanSplit() {
		return []A{iter.Reduce(it, id, w)}
	}
	chunks := domain.ChunkPartition(n, DetChunk)
	partials := make([]A, len(chunks))
	leaf := func(i int) {
		partials[i] = iter.Reduce(iter.Split(it, chunks[i]), id, w)
	}
	if pool != nil && it.Hint() != iter.Sequential && len(chunks) > 1 {
		pool.ParallelFor(len(chunks), 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				leaf(i)
			}
		})
	} else {
		for i := range partials {
			leaf(i)
		}
	}
	return partials
}

// ReduceLocalDet is ReduceLocal with a schedule-independent result: the
// fold runs per chunk and the partials combine in a fixed tree, so two runs
// — any pool width, any steal schedule, block or per-element engine —
// produce bit-identical values even for floating-point accumulators.
// combine must be associative and id its identity, as for ReduceLocal.
func ReduceLocalDet[T, A any](pool *sched.Pool, it iter.Iter[T], id A, w func(A, T) A, combine func(A, A) A) A {
	return CombineTree(ChunkPartials(pool, it, id, w), id, combine)
}

// SumLocalDet adds the elements of it with a schedule-independent rounding:
// the deterministic counterpart of SumLocal for floating-point consumers
// that must agree across execution modes.
func SumLocalDet[T iter.Number](pool *sched.Pool, it iter.Iter[T]) T {
	var zero T
	return ReduceLocalDet(pool, it, zero,
		func(acc T, v T) T { return acc + v },
		func(a, b T) T { return a + b })
}

// chunkSum is one chunk's partial, keyed by its global chunk index so the
// reduction tree's rank topology cannot affect ordering: partial vectors
// merge by key, and only the master's final CombineTree adds floats.
type chunkSum struct {
	Chunk int
	V     float64
}

func chunkSumsCodec() serial.Codec[[]chunkSum] {
	return serial.Funcs[[]chunkSum]{
		Enc: func(w *serial.Writer, v []chunkSum) {
			w.Int(len(v))
			for _, c := range v {
				w.Int(c.Chunk)
				w.F64(c.V)
			}
		},
		Dec: func(r *serial.Reader) []chunkSum {
			n := r.Int()
			if n < 0 || n > r.Remaining()/16 {
				// Adversarial length header: exhaust the reader (flagging
				// its error state) instead of allocating n entries.
				for r.Err() == nil {
					r.U64()
				}
				return nil
			}
			out := make([]chunkSum, n)
			for i := range out {
				out[i] = chunkSum{Chunk: r.Int(), V: r.F64()}
			}
			return out
		},
	}
}

// mergeChunkSums merges two chunk-sorted partial vectors, preserving key
// order. Chunk keys are globally unique (chunks partition the domain), so
// this is pure concatenation-by-key: no float arithmetic happens here.
func mergeChunkSums(a, b []chunkSum) []chunkSum {
	out := make([]chunkSum, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Chunk <= b[j].Chunk {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// detSlice carries a node's input slice together with its global base
// offset, so the node can name its chunks globally.
type detSlice[S any] struct {
	base int
	val  S
}

func detSliceCodec[S any](sc serial.Codec[S]) serial.Codec[detSlice[S]] {
	return serial.Funcs[detSlice[S]]{
		Enc: func(w *serial.Writer, v detSlice[S]) {
			w.Int(v.base)
			sc.Encode(w, v.val)
		},
		Dec: func(r *serial.Reader) detSlice[S] {
			return detSlice[S]{base: r.Int(), val: sc.Decode(r)}
		},
	}
}

// detSource adapts a DistSource so each slice remembers its base offset.
type detSource[S any] struct{ src DistSource[S] }

func (d detSource[S]) Tasks() int { return d.src.Tasks() }
func (d detSource[S]) Slice(r domain.Range) detSlice[S] {
	return detSlice[S]{base: r.Lo, val: d.src.Slice(r)}
}

// DetSumOp is a distributed floating-point sum whose rounding is a
// function of the domain alone: Run on 1, 2, 4, or 8 nodes — and RunLocal
// on the master — produce bit-identical float64 results. It is the
// deterministic counterpart of a MapReduceOp whose combine is float
// addition, and the skeleton the differential oracle demands bit-equality
// from across its Par axis.
type DetSumOp[S any] struct {
	inner *MapReduceOp[detSlice[S], struct{}, []chunkSum]
	mk    func(n *cluster.Node, slice S, base int) iter.Iter[float64]
}

// NewDetSum registers a deterministic distributed sum under name. mk builds
// the node-local float pipeline for a slice; its outer domain must be the
// slice's index space (splittable, one outer index per slice element) so
// chunk boundaries land at the same global offsets on every node count.
// base is the slice's global offset, for pipelines that need it. Call once
// at package init, like NewMapReduce.
func NewDetSum[S any](
	name string,
	sCodec serial.Codec[S],
	mk func(n *cluster.Node, slice S, base int) iter.Iter[float64],
) *DetSumOp[S] {
	op := &DetSumOp[S]{mk: mk}
	kernel := func(n *cluster.Node, ds detSlice[S], _ struct{}) ([]chunkSum, error) {
		it := mk(n, ds.val, ds.base)
		nLocal, ok := it.OuterLen()
		if !ok || !it.CanSplit() {
			return nil, fmt.Errorf("core: %s: deterministic sum needs a splittable pipeline", name)
		}
		if nLocal > 0 && ds.base%DetChunk != 0 {
			return nil, fmt.Errorf("core: %s: slice base %d not chunk-aligned", name, ds.base)
		}
		partials := ChunkPartials(n.Pool, it, float64(0),
			func(a, v float64) float64 { return a + v })
		if nLocal == 0 {
			return nil, nil
		}
		out := make([]chunkSum, len(partials))
		firstChunk := ds.base / DetChunk
		for i, v := range partials {
			out[i] = chunkSum{Chunk: firstChunk + i, V: v}
		}
		return out, nil
	}
	op.inner = NewMapReduce(name, detSliceCodec(sCodec), serial.Unit(), chunkSumsCodec(),
		kernel, mergeChunkSums)
	// Node boundaries must not cut through chunks: partition whole chunks.
	op.inner.partition = func(n, p int) []domain.Range {
		return domain.AlignedPartition(n, p, DetChunk)
	}
	return op
}

// Name reports the kernel's registered name.
func (op *DetSumOp[S]) Name() string { return op.inner.Name() }

// finish combines the gathered chunk partials — already merged in chunk
// order — with the fixed tree.
func finishDetSum(all []chunkSum) float64 {
	vals := make([]float64, len(all))
	for i, c := range all {
		vals[i] = c.V
	}
	return CombineTree(vals, 0, func(a, b float64) float64 { return a + b })
}

// Run executes the deterministic sum across the cluster.
func (op *DetSumOp[S]) Run(s *cluster.Session, src DistSource[S]) (float64, error) {
	all, err := op.inner.Run(s, detSource[S]{src: src}, struct{}{})
	if err != nil {
		return 0, err
	}
	return finishDetSum(all), nil
}

// RunLocal executes the same sum on the master only (the localpar hint).
// Chunk offsets and the combine tree are identical to a distributed run,
// so the result is bit-identical to Run at any node count.
func (op *DetSumOp[S]) RunLocal(s *cluster.Session, src DistSource[S]) (float64, error) {
	all, err := op.inner.RunLocal(s, detSource[S]{src: src}, struct{}{})
	if err != nil {
		return 0, err
	}
	return finishDetSum(all), nil
}
