package core

import (
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

// This file implements the conventional multi-pass alternative to hybrid-
// iterator fusion for variable-output loops — "the usual solution is to
// precompute the necessary index information using a parallel scan, but
// because parallel scan is a multipass algorithm, fusion is impossible;
// all temporary values have to be saved to memory at some point" (paper
// §3.1). It exists as a correct, tested baseline so the ablation
// benchmarks can quantify what fusion buys.

// PackLocal materializes filter(pred, map(f, xs)) as a packed slice using
// the classic three-phase parallel algorithm:
//
//  1. count phase: each block counts its survivors (f and pred run once);
//  2. scan phase: an exclusive prefix sum over block counts assigns each
//     block its output offset (sequential over blocks — the block count is
//     tiny);
//  3. write phase: each block re-applies f and pred and writes survivors
//     at its offset.
//
// f and pred therefore run TWICE per element and the output is written to
// memory even when a reduction immediately consumes it — exactly the costs
// fused hybrid iterators avoid. Output order matches sequential filter
// order.
func PackLocal[T, U any](pool *sched.Pool, xs []T, f func(T) U, pred func(U) bool, grain int) []U {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if pool == nil {
		out := make([]U, 0, n)
		for _, x := range xs {
			if v := f(x); pred(v) {
				out = append(out, v)
			}
		}
		return out
	}
	if grain <= 0 {
		grain = sched.DefaultGrain
	}
	blocks := domain.ChunkPartition(n, grain)
	counts := make([]int, len(blocks))

	// Phase 1: count survivors per block, in parallel over blocks.
	pool.ParallelFor(len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			c := 0
			for i := blocks[b].Lo; i < blocks[b].Hi; i++ {
				if pred(f(xs[i])) {
					c++
				}
			}
			counts[b] = c
		}
	})

	// Phase 2: exclusive prefix sum over block counts.
	offsets := make([]int, len(blocks)+1)
	for b, c := range counts {
		offsets[b+1] = offsets[b] + c
	}
	out := make([]U, offsets[len(blocks)])

	// Phase 3: recompute and write survivors at each block's offset.
	pool.ParallelFor(len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			w := offsets[b]
			for i := blocks[b].Lo; i < blocks[b].Hi; i++ {
				if v := f(xs[i]); pred(v) {
					out[w] = v
					w++
				}
			}
		}
	})
	return out
}

// FilterSumFused computes sum(filter(pred, map(f, xs))) through the hybrid
// iterator pipeline: a single fused pass, no temporary array — the
// Triolet approach the ablation compares against PackLocal.
func FilterSumFused[T any, U iter.Number](pool *sched.Pool, xs []T, f func(T) U, pred func(U) bool, grain int) U {
	it := iter.LocalPar(iter.Filter(pred, iter.Map(f, iter.FromSlice(xs))))
	return SumLocal(pool, it, grain)
}

// FilterSumTwoPass computes the same value the conventional way: PackLocal
// into a temporary, then a parallel sum over it.
func FilterSumTwoPass[T any, U iter.Number](pool *sched.Pool, xs []T, f func(T) U, pred func(U) bool, grain int) U {
	packed := PackLocal(pool, xs, f, pred, grain)
	return SumLocal(pool, iter.LocalPar(iter.FromSlice(packed)), grain)
}
