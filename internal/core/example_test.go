package core_test

import (
	"fmt"

	"triolet/internal/core"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

// A localpar pipeline: the fused sum-of-filter running on a work-stealing
// pool. The same expression with a par hint and a registered kernel runs
// distributed (see examples/quickstart).
func ExampleSumLocal() {
	pool := sched.NewPool(4)
	defer pool.Close()
	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := iter.LocalPar(iter.Filter(func(v int64) bool { return v%2 == 0 },
		iter.FromSlice(xs)))
	fmt.Println(core.SumLocal(pool, it, 512))
	// Output: 24995000
}

// Thread-parallel histogramming with per-worker private bins, merged by
// addition — the paper's §4.4 privatization pattern.
func ExampleHistogramLocal() {
	pool := sched.NewPool(4)
	defer pool.Close()
	it := iter.LocalPar(iter.Map(func(i int) int { return i % 4 }, iter.Range(1000)))
	fmt.Println(core.HistogramLocal(pool, 4, it, 64))
	// Output: [250 250 250 250]
}

// PackLocal is the conventional multi-pass alternative to fusion: count,
// prefix offsets, packed write. Output order matches the sequential
// filter.
func ExamplePackLocal() {
	pool := sched.NewPool(2)
	defer pool.Close()
	xs := []int{5, 2, 9, 4, 7}
	out := core.PackLocal(pool, xs,
		func(x int) int { return x * 10 },
		func(v int) bool { return v > 40 },
		2)
	fmt.Println(out)
	// Output: [50 90 70]
}
