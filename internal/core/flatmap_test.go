package core

import (
	"testing"
	"testing/quick"

	"triolet/internal/cluster"
	"triolet/internal/iter"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// primesOp: distributed filter — keep primes from a range of candidates.
// Output length per node is dynamic.
var primesOp = NewFlatMap(
	"test.primes",
	serial.Ints(),
	serial.Unit(),
	serial.Ints(),
	func(n *cluster.Node, candidates []int, _ struct{}) ([]int, error) {
		it := iter.LocalPar(iter.Filter(isPrime, iter.FromSlice(candidates)))
		return CollectLocal(n.Pool, it, 64), nil
	},
)

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestDistFlatMapPrimes(t *testing.T) {
	candidates := make([]int, 3000)
	for i := range candidates {
		candidates[i] = i
	}
	var want []int
	for _, c := range candidates {
		if isPrime(c) {
			want = append(want, c)
		}
	}
	for _, cfg := range clusterShapes {
		var got []int
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			out, err := primesOp.Run(s, SliceSource(candidates), struct{}{})
			got = out
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d primes, want %d", cfg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: primes[%d] = %d, want %d (order broken?)", cfg, i, got[i], want[i])
			}
		}
	}
}

func TestFlatMapOpName(t *testing.T) {
	if primesOp.Name() != "test.primes" {
		t.Fatal("name wrong")
	}
}

func TestCollectLocalOrderAndEquivalence(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	prop := func(xs []int16, grain0 uint8) bool {
		grain := int(grain0%64) + 1
		mk := func(hint bool) iter.Iter[int16] {
			it := iter.Filter(func(v int16) bool { return v%3 == 0 }, iter.FromSlice(xs))
			if hint {
				it = iter.LocalPar(it)
			}
			return it
		}
		seq := iter.ToSlice(mk(false))
		par := CollectLocal(pool, mk(true), grain)
		if len(seq) != len(par) {
			return false
		}
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCollectLocalIrregularNest(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	// concatMap with wildly varying inner sizes.
	it := iter.LocalPar(iter.ConcatMap(func(x int) iter.Iter[int] {
		return iter.Range(x % 17)
	}, iter.Range(500)))
	got := CollectLocal(pool, it, 16)
	want := iter.ToSlice(iter.ConcatMap(func(x int) iter.Iter[int] {
		return iter.Range(x % 17)
	}, iter.Range(500)))
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestCollectLocalFallbacks(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	// Sequential hint → sequential path.
	it := iter.Filter(func(x int) bool { return x%2 == 0 }, iter.Range(10))
	if got := CollectLocal(pool, it, 4); len(got) != 5 || got[4] != 8 {
		t.Fatalf("sequential fallback = %v", got)
	}
	// Stepper (unsplittable) → sequential path even with hint.
	step := iter.LocalPar(iter.StepFlat(iter.StepOf([]int{7, 8})))
	if got := CollectLocal(pool, step, 4); len(got) != 2 || got[1] != 8 {
		t.Fatalf("stepper fallback = %v", got)
	}
	// nil pool → sequential path.
	if got := CollectLocal[int](nil, iter.LocalPar(iter.Range(3)), 4); len(got) != 3 {
		t.Fatalf("nil pool = %v", got)
	}
}
