package core

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// FlatMapOp is the distributed variable-length-output skeleton: each task
// may produce any number of output elements (the filter/concatMap shape).
// Nodes pack their survivors into arrays with collectors (paper §3.1's
// collector use: "packing variable-length output skeletons' results into
// an array") and the master concatenates sections in rank order, so the
// output order equals the sequential order even though per-node output
// sizes are only known at run time.
type FlatMapOp[S, A any, E any] struct {
	name   string
	sCodec serial.Codec[S]
	aCodec serial.Codec[A]
	eCodec serial.Codec[[]E]
	kernel func(n *cluster.Node, slice S, aux A) ([]E, error)
}

// NewFlatMap registers a distributed variable-length producer under name.
// Unlike NewBuildArray, the kernel may return any number of elements for
// its slice.
func NewFlatMap[S, A any, E any](
	name string,
	sCodec serial.Codec[S],
	aCodec serial.Codec[A],
	eCodec serial.Codec[[]E],
	kernel func(n *cluster.Node, slice S, aux A) ([]E, error),
) *FlatMapOp[S, A, E] {
	op := &FlatMapOp[S, A, E]{
		name:   name,
		sCodec: sCodec,
		aCodec: aCodec,
		eCodec: eCodec,
		kernel: kernel,
	}
	cluster.RegisterWorker(name, op.workerBody)
	return op
}

// Name reports the kernel's registered name.
func (op *FlatMapOp[S, A, E]) Name() string { return op.name }

func (op *FlatMapOp[S, A, E]) workerBody(n *cluster.Node) error {
	endScatter := n.Phase("scatter")
	slice, err := mpi.ScatterT(n.Comm, 0, op.sCodec, nil)
	endScatter()
	if err != nil {
		return fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	var zeroA A
	endBcast := n.Phase("bcast")
	aux, err := mpi.BcastT(n.Comm, 0, op.aCodec, zeroA)
	endBcast()
	if err != nil {
		return fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	out, err := op.kernel(n, slice, aux)
	endKernel()
	if err != nil {
		return fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	_, err = mpi.GatherT(n.Comm, 0, op.eCodec, out)
	endGather()
	return err
}

// Run executes the skeleton and returns the concatenated output.
func (op *FlatMapOp[S, A, E]) Run(s *cluster.Session, src DistSource[S], aux A) ([]E, error) {
	n := s.Node()
	if err := s.Invoke(op.name); err != nil {
		return nil, err
	}
	endScatter := n.Phase("scatter")
	parts := make([]S, n.Nodes())
	for i, r := range domain.BlockPartition(src.Tasks(), n.Nodes()) {
		parts[i] = src.Slice(r)
	}
	mine, err := mpi.ScatterT(n.Comm, 0, op.sCodec, parts)
	endScatter()
	if err != nil {
		return nil, fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	endBcast := n.Phase("bcast")
	aux, err = mpi.BcastT(n.Comm, 0, op.aCodec, aux)
	endBcast()
	if err != nil {
		return nil, fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	myOut, err := op.kernel(n, mine, aux)
	endKernel()
	if err != nil {
		return nil, fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	sections, err := mpi.GatherT(n.Comm, 0, op.eCodec, myOut)
	endGather()
	if err != nil {
		return nil, fmt.Errorf("core: %s gather: %w", op.name, err)
	}
	total := 0
	for _, sec := range sections {
		total += len(sec)
	}
	out := make([]E, 0, total)
	for _, sec := range sections {
		out = append(out, sec...)
	}
	return out, nil
}

// CollectLocal packs a (possibly irregular) iterator into a slice on one
// node, preserving sequential order, with the counting pack when the outer
// loop splits and the hint asks for threads. For irregular iterators the
// per-range output sizes are dynamic, so this is the node-level equivalent
// of FlatMapOp's pack-and-concatenate: per-range buffers collected in
// range order.
func CollectLocal[T any](pool *sched.Pool, it iter.Iter[T], grain int) []T {
	n, splittable := it.OuterLen()
	if it.Hint() == iter.Sequential || !splittable || pool == nil {
		return iter.ToSlice(it)
	}
	if grain <= 0 {
		grain = sched.DefaultGrain
	}
	blocks := domain.ChunkPartition(n, grain)
	parts := make([][]T, len(blocks))
	pool.ParallelFor(len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			// ToSlice routes each range through the block engine: flat
			// ranges are filled in place into exactly-sized storage and
			// filtered ranges append block-compacted survivors, instead of
			// growing a buffer from nil one element at a time.
			parts[b] = iter.ToSlice(iter.Split(it, blocks[b]))
		}
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
