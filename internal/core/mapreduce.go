package core

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/mpi"
	"triolet/internal/serial"
)

// MapReduceOp is a registered distributed map-reduce skeleton: the master
// partitions a DistSource across nodes, each node computes a partial result
// of type R from its slice (typically with a fused, thread-parallel
// iterator pipeline), and partials are combined up a reduction tree. This
// one skeleton covers the paper's par-hinted reductions: dot products,
// tpacf's histogram sums, cutcp's potential grid.
//
// S is the per-node input slice, A an auxiliary value broadcast to every
// node (e.g. mri-q's sample array, tpacf's observed data set), R the
// result.
type MapReduceOp[S, A, R any] struct {
	name    string
	sCodec  serial.Codec[S]
	aCodec  serial.Codec[A]
	rCodec  serial.Codec[R]
	kernel  func(n *cluster.Node, slice S, aux A) (R, error)
	combine func(R, R) R
	// partition overrides the node partition (default BlockPartition).
	// The deterministic reduction skeletons set it to a chunk-aligned
	// partition so fixed-offset chunks never straddle two nodes.
	partition func(tasks, nodes int) []domain.Range
}

// NewMapReduce registers a distributed map-reduce kernel under name and
// returns its typed handle. Call once per kernel at package init — the
// name is the serialized identity of the kernel, standing in for Triolet's
// serialized closures. combine must be associative.
func NewMapReduce[S, A, R any](
	name string,
	sCodec serial.Codec[S],
	aCodec serial.Codec[A],
	rCodec serial.Codec[R],
	kernel func(n *cluster.Node, slice S, aux A) (R, error),
	combine func(R, R) R,
) *MapReduceOp[S, A, R] {
	op := &MapReduceOp[S, A, R]{
		name:    name,
		sCodec:  sCodec,
		aCodec:  aCodec,
		rCodec:  rCodec,
		kernel:  kernel,
		combine: combine,
	}
	cluster.RegisterWorker(name, op.workerBody)
	return op
}

// Name reports the kernel's registered name.
func (op *MapReduceOp[S, A, R]) Name() string { return op.name }

// workerBody is the non-master side: receive slice and aux, compute, feed
// the reduction tree.
func (op *MapReduceOp[S, A, R]) workerBody(n *cluster.Node) error {
	endScatter := n.Phase("scatter")
	slice, err := mpi.ScatterT(n.Comm, 0, op.sCodec, nil)
	endScatter()
	if err != nil {
		return fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	var zeroA A
	endBcast := n.Phase("bcast")
	aux, err := mpi.BcastT(n.Comm, 0, op.aCodec, zeroA)
	endBcast()
	if err != nil {
		return fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	r, err := op.kernel(n, slice, aux)
	endKernel()
	if err != nil {
		return fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endReduce := n.Phase("reduce")
	_, _, err = mpi.ReduceT(n.Comm, op.rCodec, r, op.combine)
	endReduce()
	return err
}

// Run executes the skeleton from the master: block-partitions src's tasks
// across nodes, ships slices and the aux broadcast, computes the master's
// own share inline, and returns the tree-reduced result.
func (op *MapReduceOp[S, A, R]) Run(s *cluster.Session, src DistSource[S], aux A) (R, error) {
	var zero R
	n := s.Node()
	if err := s.Invoke(op.name); err != nil {
		return zero, err
	}
	endScatter := n.Phase("scatter")
	split := op.partition
	if split == nil {
		split = domain.BlockPartition
	}
	parts := make([]S, n.Nodes())
	for i, r := range split(src.Tasks(), n.Nodes()) {
		parts[i] = src.Slice(r)
	}
	mine, err := mpi.ScatterT(n.Comm, 0, op.sCodec, parts)
	endScatter()
	if err != nil {
		return zero, fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	endBcast := n.Phase("bcast")
	aux, err = mpi.BcastT(n.Comm, 0, op.aCodec, aux)
	endBcast()
	if err != nil {
		return zero, fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	r, err := op.kernel(n, mine, aux)
	endKernel()
	if err != nil {
		return zero, fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endReduce := n.Phase("reduce")
	total, ok, err := mpi.ReduceT(n.Comm, op.rCodec, r, op.combine)
	endReduce()
	if err != nil {
		return zero, fmt.Errorf("core: %s reduce: %w", op.name, err)
	}
	if !ok {
		return zero, fmt.Errorf("core: %s reduce produced no result at root", op.name)
	}
	return total, nil
}

// RunLocal executes the same kernel without leaving the master node,
// implementing the localpar hint at the skeleton level: thread parallelism
// only, no serialization, no fabric traffic.
func (op *MapReduceOp[S, A, R]) RunLocal(s *cluster.Session, src DistSource[S], aux A) (R, error) {
	whole := src.Slice(domain.Range{Lo: 0, Hi: src.Tasks()})
	return op.kernel(s.Node(), whole, aux)
}
