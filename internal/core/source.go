package core

import (
	"triolet/internal/domain"
)

// DistSource describes distributable input data, separating data
// distribution from work distribution (paper §3.5): the outer loop has
// Tasks units of work, and Slice extracts exactly the data that tasks
// [r.Lo, r.Hi) read, as a serializable value of type S. The distributed
// skeletons block-partition tasks across nodes and ship each node its
// slice — never the whole input.
type DistSource[S any] interface {
	// Tasks is the extent of the distributable outer loop.
	Tasks() int
	// Slice extracts the input data used by tasks [r.Lo, r.Hi).
	Slice(r domain.Range) S
}

// FuncSource adapts a count and a slicing function to a DistSource.
type FuncSource[S any] struct {
	N       int
	SliceFn func(r domain.Range) S
}

// Tasks implements DistSource.
func (f FuncSource[S]) Tasks() int { return f.N }

// Slice implements DistSource.
func (f FuncSource[S]) Slice(r domain.Range) S { return f.SliceFn(r) }

// SliceSource distributes a plain slice: task i reads element i, so node
// slices are contiguous subslices (the paper's common case for 1-D array
// traversals). The payload type S is []T itself.
func SliceSource[T any](xs []T) DistSource[[]T] {
	return FuncSource[[]T]{
		N:       len(xs),
		SliceFn: func(r domain.Range) []T { return xs[r.Lo:r.Hi] },
	}
}

// DistSource2 is the two-dimensional analog: tasks form a Dom()-shaped
// grid, and SliceRect extracts the data read by one rectangular block of
// tasks — e.g. the rows of A and rows of Bᵀ that one output block of a
// matrix product needs (paper §2's outerproduct decomposition).
type DistSource2[S any] interface {
	// Dom is the 2-D task domain.
	Dom() domain.Dim2
	// SliceRect extracts the input data used by the block r of tasks.
	SliceRect(r domain.Rect) S
}

// FuncSource2 adapts a domain and a rectangle-slicing function to a
// DistSource2.
type FuncSource2[S any] struct {
	D       domain.Dim2
	SliceFn func(r domain.Rect) S
}

// Dom implements DistSource2.
func (f FuncSource2[S]) Dom() domain.Dim2 { return f.D }

// SliceRect implements DistSource2.
func (f FuncSource2[S]) SliceRect(r domain.Rect) S { return f.SliceFn(r) }
