package core

import (
	"fmt"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/mpi"
	"triolet/internal/serial"
)

// BuildArrayOp is a registered distributed array-building skeleton: tasks
// [0, N) each produce one output element; the master partitions tasks
// across nodes, each node computes its contiguous output section from its
// input slice, and sections are gathered in rank order into the final
// array. mri-q's image construction uses this shape (paper §4.2).
type BuildArrayOp[S, A any, E any] struct {
	name   string
	sCodec serial.Codec[S]
	aCodec serial.Codec[A]
	eCodec serial.Codec[[]E]
	kernel func(n *cluster.Node, slice S, aux A) ([]E, error)
}

// NewBuildArray registers a distributed array builder under name. The
// kernel must return exactly one element per task in its slice.
func NewBuildArray[S, A any, E any](
	name string,
	sCodec serial.Codec[S],
	aCodec serial.Codec[A],
	eCodec serial.Codec[[]E],
	kernel func(n *cluster.Node, slice S, aux A) ([]E, error),
) *BuildArrayOp[S, A, E] {
	op := &BuildArrayOp[S, A, E]{
		name:   name,
		sCodec: sCodec,
		aCodec: aCodec,
		eCodec: eCodec,
		kernel: kernel,
	}
	cluster.RegisterWorker(name, op.workerBody)
	return op
}

// Name reports the kernel's registered name.
func (op *BuildArrayOp[S, A, E]) Name() string { return op.name }

func (op *BuildArrayOp[S, A, E]) workerBody(n *cluster.Node) error {
	endScatter := n.Phase("scatter")
	slice, err := mpi.ScatterT(n.Comm, 0, op.sCodec, nil)
	endScatter()
	if err != nil {
		return fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	var zeroA A
	endBcast := n.Phase("bcast")
	aux, err := mpi.BcastT(n.Comm, 0, op.aCodec, zeroA)
	endBcast()
	if err != nil {
		return fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	out, err := op.kernel(n, slice, aux)
	endKernel()
	if err != nil {
		return fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	_, err = mpi.GatherT(n.Comm, 0, op.eCodec, out)
	endGather()
	return err
}

// Run executes the skeleton from the master and returns the assembled
// array of src.Tasks() elements.
func (op *BuildArrayOp[S, A, E]) Run(s *cluster.Session, src DistSource[S], aux A) ([]E, error) {
	n := s.Node()
	if err := s.Invoke(op.name); err != nil {
		return nil, err
	}
	endScatter := n.Phase("scatter")
	ranges := domain.BlockPartition(src.Tasks(), n.Nodes())
	parts := make([]S, n.Nodes())
	for i, r := range ranges {
		parts[i] = src.Slice(r)
	}
	mine, err := mpi.ScatterT(n.Comm, 0, op.sCodec, parts)
	endScatter()
	if err != nil {
		return nil, fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	endBcast := n.Phase("bcast")
	aux, err = mpi.BcastT(n.Comm, 0, op.aCodec, aux)
	endBcast()
	if err != nil {
		return nil, fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	myOut, err := op.kernel(n, mine, aux)
	endKernel()
	if err != nil {
		return nil, fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	sections, err := mpi.GatherT(n.Comm, 0, op.eCodec, myOut)
	endGather()
	if err != nil {
		return nil, fmt.Errorf("core: %s gather: %w", op.name, err)
	}
	out := make([]E, 0, src.Tasks())
	for i, sec := range sections {
		if len(sec) != ranges[i].Len() {
			return nil, fmt.Errorf("core: %s node %d returned %d elements for %d tasks",
				op.name, i, len(sec), ranges[i].Len())
		}
		out = append(out, sec...)
	}
	return out, nil
}

// Build2DOp is the two-dimensional distributed builder: the output domain
// is grid-partitioned into one rectangular block per node, each node
// receives only the input slice its block reads (e.g. the matrix rows
// spanning the block, via a DistSource2 built from rows/outerproduct) and
// returns its block, and blocks are assembled at the master. This is the
// paper's two-line sgemm decomposition (paper §2, §4.3).
type Build2DOp[S, A any, E any] struct {
	name   string
	sCodec serial.Codec[S]
	aCodec serial.Codec[A]
	mCodec serial.Codec[array.Matrix[E]]
	kernel func(n *cluster.Node, slice S, aux A) (array.Matrix[E], error)
}

// NewBuild2D registers a distributed 2-D block builder under name. The
// kernel must return a matrix of exactly its block's shape.
func NewBuild2D[S, A any, E any](
	name string,
	sCodec serial.Codec[S],
	aCodec serial.Codec[A],
	mCodec serial.Codec[array.Matrix[E]],
	kernel func(n *cluster.Node, slice S, aux A) (array.Matrix[E], error),
) *Build2DOp[S, A, E] {
	op := &Build2DOp[S, A, E]{
		name:   name,
		sCodec: sCodec,
		aCodec: aCodec,
		mCodec: mCodec,
		kernel: kernel,
	}
	cluster.RegisterWorker(name, op.workerBody)
	return op
}

// Name reports the kernel's registered name.
func (op *Build2DOp[S, A, E]) Name() string { return op.name }

func (op *Build2DOp[S, A, E]) workerBody(n *cluster.Node) error {
	endScatter := n.Phase("scatter")
	slice, err := mpi.ScatterT(n.Comm, 0, op.sCodec, nil)
	endScatter()
	if err != nil {
		return fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	var zeroA A
	endBcast := n.Phase("bcast")
	aux, err := mpi.BcastT(n.Comm, 0, op.aCodec, zeroA)
	endBcast()
	if err != nil {
		return fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	block, err := op.kernel(n, slice, aux)
	endKernel()
	if err != nil {
		return fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	_, err = mpi.GatherT(n.Comm, 0, op.mCodec, block)
	endGather()
	return err
}

// Run executes the skeleton from the master and returns the assembled
// src.Dom()-shaped matrix.
func (op *Build2DOp[S, A, E]) Run(s *cluster.Session, src DistSource2[S], aux A) (array.Matrix[E], error) {
	var zero array.Matrix[E]
	n := s.Node()
	if err := s.Invoke(op.name); err != nil {
		return zero, err
	}
	endScatter := n.Phase("scatter")
	dom := src.Dom()
	py, px := dom.GridShape(n.Nodes())
	rects := dom.GridPartition(py, px)
	parts := make([]S, n.Nodes())
	for i, r := range rects {
		parts[i] = src.SliceRect(r)
	}
	mine, err := mpi.ScatterT(n.Comm, 0, op.sCodec, parts)
	endScatter()
	if err != nil {
		return zero, fmt.Errorf("core: %s scatter: %w", op.name, err)
	}
	endBcast := n.Phase("bcast")
	aux, err = mpi.BcastT(n.Comm, 0, op.aCodec, aux)
	endBcast()
	if err != nil {
		return zero, fmt.Errorf("core: %s bcast: %w", op.name, err)
	}
	endKernel := n.Phase("kernel")
	myBlock, err := op.kernel(n, mine, aux)
	endKernel()
	if err != nil {
		return zero, fmt.Errorf("core: %s kernel: %w", op.name, err)
	}
	endGather := n.Phase("gather")
	blocks, err := mpi.GatherT(n.Comm, 0, op.mCodec, myBlock)
	endGather()
	if err != nil {
		return zero, fmt.Errorf("core: %s gather: %w", op.name, err)
	}
	out := array.NewMatrix[E](dom.H, dom.W)
	for i, b := range blocks {
		if b.H != rects[i].Rows.Len() || b.W != rects[i].Cols.Len() {
			return zero, fmt.Errorf("core: %s node %d returned %dx%d block for %v",
				op.name, i, b.H, b.W, rects[i])
		}
		out.CopyRect(rects[i], b)
	}
	return out, nil
}
