package core

import (
	"testing"
	"testing/quick"

	"triolet/internal/sched"
)

func refPack(xs []int32) []int64 {
	var out []int64
	for _, x := range xs {
		v := int64(x) * 3
		if v%2 == 0 {
			out = append(out, v)
		}
	}
	return out
}

func packArgs() (func(int32) int64, func(int64) bool) {
	return func(x int32) int64 { return int64(x) * 3 },
		func(v int64) bool { return v%2 == 0 }
}

func TestPackLocalMatchesSequential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	f, pred := packArgs()
	prop := func(xs []int32, grain0 uint8) bool {
		grain := int(grain0%40) + 1
		got := PackLocal(pool, xs, f, pred, grain)
		want := refPack(xs)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPackLocalEdgeCases(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	f, pred := packArgs()
	if got := PackLocal(pool, nil, f, pred, 8); got != nil {
		t.Fatalf("empty pack = %v", got)
	}
	// nil pool falls back to the sequential path.
	xs := []int32{1, 2, 3, 4}
	got := PackLocal(nil, xs, f, pred, 8)
	want := refPack(xs)
	if len(got) != len(want) {
		t.Fatalf("nil-pool pack = %v, want %v", got, want)
	}
	// grain <= 0 selects the default.
	if got := PackLocal(pool, xs, f, pred, 0); len(got) != len(want) {
		t.Fatalf("default-grain pack = %v", got)
	}
	// all rejected
	if got := PackLocal(pool, xs, f, func(int64) bool { return false }, 2); len(got) != 0 {
		t.Fatalf("reject-all = %v", got)
	}
	// all accepted preserves order
	all := PackLocal(pool, xs, f, func(int64) bool { return true }, 2)
	for i, v := range all {
		if v != int64(xs[i])*3 {
			t.Fatalf("accept-all order broken: %v", all)
		}
	}
}

func TestFusedAndTwoPassAgree(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	f, pred := packArgs()
	prop := func(xs []int32) bool {
		fused := FilterSumFused(pool, xs, f, pred, 16)
		twoPass := FilterSumTwoPass(pool, xs, f, pred, 16)
		var want int64
		for _, v := range refPack(xs) {
			want += v
		}
		return fused == want && twoPass == want
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
