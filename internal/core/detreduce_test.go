package core

import (
	"fmt"
	"math"
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/iter"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// Deterministic-reduction tests: the reduction tree must be a function of
// the domain alone, so floating-point sums are bit-identical across pool
// widths, steal schedules, node counts, and the localpar/par axis. The
// legacy rank-partitioned float sum demonstrably is not — that divergence
// is the bug the deterministic skeletons fix, and the cross-mode oracle
// (internal/diffcheck) now enforces the fixed behavior.

// detChunk pairing: core's chunk width must equal iter's block size (and
// sched.BlockAlign, by construction) so chunk folds run full-width block
// kernels and pool splits never cut through a chunk.
func TestDetChunkMatchesIterBlockSize(t *testing.T) {
	if DetChunk != iter.BlockSize {
		t.Fatalf("DetChunk = %d, iter.BlockSize = %d", DetChunk, iter.BlockSize)
	}
	if DetChunk != sched.BlockAlign {
		t.Fatalf("DetChunk = %d, sched.BlockAlign = %d", DetChunk, sched.BlockAlign)
	}
}

// The tree shape is pinned: adjacent pairs, then adjacent pair results,
// odd element carried up. A non-commutative combine exposes the exact
// association.
func TestCombineTreeShape(t *testing.T) {
	paren := func(a, b string) string { return "(" + a + b + ")" }
	cases := []struct {
		parts []string
		want  string
	}{
		{nil, "id"},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "(ab)"},
		{[]string{"a", "b", "c"}, "((ab)c)"},
		{[]string{"a", "b", "c", "d"}, "((ab)(cd))"},
		{[]string{"a", "b", "c", "d", "e"}, "(((ab)(cd))e)"},
		{[]string{"a", "b", "c", "d", "e", "f"}, "(((ab)(cd))(ef))"},
	}
	for _, c := range cases {
		if got := CombineTree(c.parts, "id", paren); got != c.want {
			t.Fatalf("CombineTree(%v) = %q, want %q", c.parts, got, c.want)
		}
	}
}

// adversarialFloats builds a vector whose sum's rounding is maximally
// sensitive to association: a 2^53 spike followed by ones, so any partial
// that groups the spike with few ones loses them all.
func adversarialFloats(n int) []float64 {
	xs := make([]float64, n)
	xs[0] = float64(uint64(1) << 53)
	for i := 1; i < n; i++ {
		xs[i] = 1
	}
	return xs
}

func TestChunkPartialsScheduleIndependent(t *testing.T) {
	xs := adversarialFloats(10007)
	it := iter.LocalPar(iter.Map(func(v float64) float64 { return v * 1.0000000001 },
		iter.FromSlice(xs)))
	add := func(a, v float64) float64 { return a + v }

	want := ChunkPartials(nil, it, 0.0, add) // sequential reference
	for _, workers := range []int{1, 2, 3, 4} {
		pool := sched.NewPool(workers)
		for rep := 0; rep < 3; rep++ { // several steal schedules
			got := ChunkPartials(pool, it, 0.0, add)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d partials, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d rep=%d: partial %d = %x, want %x",
						workers, rep, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
		pool.Close()
	}
}

func TestSumLocalDetBitIdenticalAcrossPools(t *testing.T) {
	xs := adversarialFloats(4099)
	it := iter.LocalPar(iter.FromSlice(xs))
	want := SumLocalDet[float64](nil, it)
	for _, workers := range []int{1, 2, 4, 7} {
		pool := sched.NewPool(workers)
		for rep := 0; rep < 3; rep++ {
			got := SumLocalDet(pool, it)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d: %x, want %x", workers,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
		pool.Close()
	}
	// Value sanity on exactly-representable data.
	ints := make([]float64, 100)
	for i := range ints {
		ints[i] = float64(i + 1)
	}
	if got := SumLocalDet[float64](nil, iter.FromSlice(ints)); got != 5050 {
		t.Fatalf("SumLocalDet(1..100) = %v, want 5050", got)
	}
}

// detFsum: deterministic distributed sum over a plain float vector.
var detFsum = NewDetSum("core.test.detfsum", serial.F64s(),
	func(n *cluster.Node, slice []float64, base int) iter.Iter[float64] {
		return iter.LocalPar(iter.FromSlice(slice))
	})

// legacyFsum: the pre-fix shape — per-rank left-fold partials combined up
// the rank reduction tree. Its rounding depends on the node count.
var legacyFsum = NewMapReduce("core.test.legacyfsum",
	serial.F64s(), serial.Unit(), serial.F64C(),
	func(n *cluster.Node, slice []float64, _ struct{}) (float64, error) {
		return iter.Sum(iter.FromSlice(slice)), nil
	},
	func(a, b float64) float64 { return a + b })

// The acceptance property of the FP-determinism fix: bit-identical float
// sums across 1, 2, 4, and 8 virtual nodes, any core count, and the
// localpar path.
func TestDetSumBitIdenticalAcrossClusterShapes(t *testing.T) {
	for _, n := range []int{0, 3, 515, 10007} {
		xs := make([]float64, n)
		if n > 0 {
			copy(xs, adversarialFloats(n))
		}
		var bits []uint64
		var labels []string
		for _, cfg := range []cluster.Config{
			{Nodes: 1, CoresPerNode: 1},
			{Nodes: 2, CoresPerNode: 2},
			{Nodes: 4, CoresPerNode: 1},
			{Nodes: 8, CoresPerNode: 2},
		} {
			var got float64
			var local float64
			_, err := cluster.Run(cfg, func(s *cluster.Session) error {
				var err error
				got, err = detFsum.Run(s, SliceSource(xs))
				if err != nil {
					return err
				}
				local, err = detFsum.RunLocal(s, SliceSource(xs))
				return err
			})
			if err != nil {
				t.Fatalf("n=%d %+v: %v", n, cfg, err)
			}
			if math.Float64bits(got) != math.Float64bits(local) {
				t.Fatalf("n=%d %+v: Run %x != RunLocal %x", n, cfg,
					math.Float64bits(got), math.Float64bits(local))
			}
			bits = append(bits, math.Float64bits(got))
			labels = append(labels, fmt.Sprintf("%d nodes x %d cores", cfg.Nodes, cfg.CoresPerNode))
		}
		for i := 1; i < len(bits); i++ {
			if bits[i] != bits[0] {
				t.Fatalf("n=%d: float sum diverged: %s = %x, %s = %x",
					n, labels[0], bits[0], labels[i], bits[i])
			}
		}
	}
}

// Documents the bug the deterministic skeleton fixes: the rank-partitioned
// sum provably changes rounding with the node count on association-
// sensitive data. (If this ever starts passing with equal bits, the legacy
// path gained determinism and the oracle's negative control needs a new
// counterexample.)
func TestRankPartitionedFloatSumDivergesAcrossNodeCounts(t *testing.T) {
	xs := adversarialFloats(10007)
	run := func(nodes int) float64 {
		var got float64
		_, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 1},
			func(s *cluster.Session) error {
				var err error
				got, err = legacyFsum.Run(s, SliceSource(xs), struct{}{})
				return err
			})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		return got
	}
	one, two := run(1), run(2)
	if math.Float64bits(one) == math.Float64bits(two) {
		t.Fatalf("legacy rank-partitioned sum unexpectedly node-count-invariant: %x", math.Float64bits(one))
	}
}
