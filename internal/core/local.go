// Package core implements Triolet's parallel skeletons on the virtual
// cluster: the high-level operations that inspect an iterator's parallelism
// hint and dispatch to distributed, threaded, and sequential
// implementations (paper §2, §3.4). Node-local skeletons (this file) fuse
// an iterator pipeline with a work-stealing loop over its outer indexer;
// distributed skeletons (mapreduce.go, buildarray.go) additionally
// partition the input's data source across nodes and move only the slices
// each node reads (paper §3.5).
package core

import (
	"fmt"

	"triolet/internal/array"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

// effGrain resolves a caller grain against the iterator's planner hint:
// an explicit grain wins, grain <= 0 defers to iter.WithGrain's value
// (AutoPar's hook), and zero-for-both falls through to sched.DefaultGrain
// inside ParallelFor.
func effGrain[T any](grain int, it iter.Iter[T]) int {
	if grain > 0 {
		return grain
	}
	return it.Grain()
}

// SumLocal adds the elements of it. With a parallelism hint and a
// splittable outer loop it runs on the pool, one fused sequential reduction
// per stolen range; otherwise it reduces sequentially.
func SumLocal[T iter.Number](pool *sched.Pool, it iter.Iter[T], grain int) T {
	var zero T
	add := func(a, b T) T { return a + b }
	return ReduceLocal(pool, it, grain, zero,
		func(acc T, v T) T { return acc + v }, add)
}

// ReduceLocal folds it with worker w from identity id, merging per-thread
// partials with combine. combine must be associative and id its identity.
// Sequential-hinted or unsplittable iterators reduce on the caller.
func ReduceLocal[T, A any](pool *sched.Pool, it iter.Iter[T], grain int, id A, w func(A, T) A, combine func(A, A) A) A {
	n, splittable := it.OuterLen()
	if it.Hint() == iter.Sequential || !splittable || pool == nil {
		return iter.Reduce(it, id, w)
	}
	return sched.ParallelReduce(pool, n, effGrain(grain, it), id,
		func(lo, hi int) A {
			return iter.Reduce(iter.Split(it, domain.Range{Lo: lo, Hi: hi}), id, w)
		}, combine)
}

// CountLocal counts it's elements with the same dispatch as SumLocal.
func CountLocal[T any](pool *sched.Pool, it iter.Iter[T], grain int) int {
	return ReduceLocal(pool, it, grain, 0,
		func(acc int, _ T) int { return acc + 1 },
		func(a, b int) int { return a + b })
}

// HistogramLocal bins it's elements into [0, bins). Parallel execution
// gives each thread a private histogram (the OpenMP privatization pattern
// the paper's C code uses, §4.4) merged by addition afterwards.
func HistogramLocal(pool *sched.Pool, bins int, it iter.Iter[int], grain int) []int64 {
	n, splittable := it.OuterLen()
	if it.Hint() == iter.Sequential || !splittable || pool == nil {
		return iter.Histogram(bins, it)
	}
	private := make([][]int64, pool.Workers())
	for i := range private {
		private[i] = make([]int64, bins)
	}
	pool.ParallelFor(n, effGrain(grain, it), func(worker, lo, hi int) {
		iter.HistogramInto(private[worker], iter.Split(it, domain.Range{Lo: lo, Hi: hi}))
	})
	// Merge each worker's bins in one block add (array.AddInto — a
	// bounds-check-hoisted, vectorizable loop) instead of an indexed
	// per-element accumulate. Allocation stays workers+1 bin arrays,
	// independent of element count — pinned by the core alloc gate.
	out := make([]int64, bins)
	for _, h := range private {
		array.AddInto(out, h)
	}
	return out
}

// WeightedHistogramLocal is HistogramLocal for weighted updates — the
// floating-point histogram at the heart of cutcp (paper §4.5).
func WeightedHistogramLocal[W iter.Number](pool *sched.Pool, bins int, it iter.Iter[iter.Bin[W]], grain int) []W {
	n, splittable := it.OuterLen()
	if it.Hint() == iter.Sequential || !splittable || pool == nil {
		return iter.WeightedHistogram(bins, it)
	}
	private := make([][]W, pool.Workers())
	for i := range private {
		private[i] = make([]W, bins)
	}
	pool.ParallelFor(n, effGrain(grain, it), func(worker, lo, hi int) {
		iter.WeightedHistogramInto(private[worker], iter.Split(it, domain.Range{Lo: lo, Hi: hi}))
	})
	// Same block merge as HistogramLocal; for float bins the unchanged
	// per-worker merge order keeps results bit-identical to the old loop.
	out := make([]W, bins)
	for _, h := range private {
		array.AddInto(out, h)
	}
	return out
}

// BuildSliceLocal materializes a flat (KIdxFlat) iterator into a slice,
// writing disjoint index ranges in place from multiple threads when hinted
// parallel. Each task's range is evaluated by the block engine directly
// into the shared output array (iter.FillRange), so the parallel build runs
// the same block kernels as the sequential one with no per-element worker
// closure. Irregular iterators have no per-index output position; callers
// collect those sequentially or through histograms.
func BuildSliceLocal[T any](pool *sched.Pool, it iter.Iter[T], grain int) []T {
	if it.Kind() != iter.KIdxFlat {
		return iter.ToSlice(it)
	}
	n, _ := it.OuterLen()
	if it.Hint() == iter.Sequential || pool == nil {
		return iter.ToSlice(it)
	}
	out := make([]T, n)
	pool.ParallelFor(n, effGrain(grain, it), func(_, lo, hi int) {
		iter.FillRange(out[lo:hi], it, lo)
	})
	return out
}

// Build2IntoLocal evaluates a 2-D iterator into dst, which must share its
// domain shape. Unlike Build2Local it allocates nothing: double-buffered
// consumers (the stencil skeleton's sweep) alternate two matrices across
// iterations. Parallel leaves are whole-row bands at sched.RowGrain, so
// every split point is a row boundary — a row is written by exactly one
// worker — while each leaf still covers at least one BlockAlign-wide run of
// cells for the block kernels underneath.
func Build2IntoLocal[T any](pool *sched.Pool, dst iter.Matrix2[T], it iter.Iter2[T]) {
	d := it.Dom()
	if dst.H != d.H || dst.W != d.W {
		panic(fmt.Sprintf("core: Build2IntoLocal %dx%d into %dx%d", d.H, d.W, dst.H, dst.W))
	}
	if d.Empty() {
		return
	}
	if it.Hint() == iter.Sequential || pool == nil {
		iter.BuildInto(dst, it, d.Whole())
		return
	}
	w := d.W
	pool.ParallelFor(d.H, sched.RowGrain(w), func(_, lo, hi int) {
		iter.BuildInto(dst, it, domain.Rect{
			Rows: domain.Range{Lo: lo, Hi: hi},
			Cols: domain.Range{Lo: 0, Hi: w},
		})
	})
}

// Build2Local materializes a 2-D iterator into a matrix, evaluating
// disjoint rectangles on the pool when hinted parallel. This is the
// shared-memory matrix builder sgemm's transposition and block assembly
// use (paper §4.3).
func Build2Local[T any](pool *sched.Pool, it iter.Iter2[T]) iter.Matrix2[T] {
	d := it.Dom()
	m := iter.Matrix2[T]{H: d.H, W: d.W, Data: make([]T, d.Size())}
	if it.Hint() == iter.Sequential || pool == nil || d.Empty() {
		iter.BuildInto(m, it, d.Whole())
		return m
	}
	pool.ParallelForRect(d, func(_ int, r domain.Rect) {
		iter.BuildInto(m, it, r)
	})
	return m
}
