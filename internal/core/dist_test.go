package core

import (
	"strings"
	"testing"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/serial"
	"triolet/internal/trace"
)

// Distributed kernels are registered once per process, at init, exactly as
// production code would.

// dotOp: distributed dot product over zipped slices. S carries both vector
// slices; there is no aux.
type dotSlice struct {
	Xs, Ys []float64
}

func dotSliceCodec() serial.Codec[dotSlice] {
	return serial.Funcs[dotSlice]{
		Enc: func(w *serial.Writer, v dotSlice) {
			w.F64Slice(v.Xs)
			w.F64Slice(v.Ys)
		},
		Dec: func(r *serial.Reader) dotSlice {
			return dotSlice{Xs: r.F64Slice(), Ys: r.F64Slice()}
		},
	}
}

var dotOp = NewMapReduce(
	"test.dot",
	dotSliceCodec(),
	serial.Unit(),
	serial.F64C(),
	func(n *cluster.Node, s dotSlice, _ struct{}) (float64, error) {
		it := iter.LocalPar(iter.ZipWith(func(x, y float64) float64 { return x * y },
			iter.FromSlice(s.Xs), iter.FromSlice(s.Ys)))
		return SumLocal(n.Pool, it, 256), nil
	},
	func(a, b float64) float64 { return a + b },
)

// histOp: distributed histogram with a broadcast bin count.
var histOp = NewMapReduce(
	"test.hist",
	serial.Ints(),
	serial.IntC(),
	serial.I64s(),
	func(n *cluster.Node, vals []int, bins int) ([]int64, error) {
		return HistogramLocal(n.Pool, bins, iter.LocalPar(iter.FromSlice(vals)), 64), nil
	},
	func(a, b []int64) []int64 { array.AddInto(a, b); return a },
)

// squareOp: distributed array build (each task i yields x[i]^2).
var squareOp = NewBuildArray(
	"test.square",
	serial.F64s(),
	serial.Unit(),
	serial.F64s(),
	func(n *cluster.Node, xs []float64, _ struct{}) ([]float64, error) {
		it := iter.LocalPar(iter.Map(func(x float64) float64 { return x * x }, iter.FromSlice(xs)))
		return BuildSliceLocal(n.Pool, it, 128), nil
	},
)

// outerOp: distributed 2-D build computing o[y][x] = ys[y]*xs[x] from row
// and column slices.
type outerSlice struct {
	Rows, Cols []float64
}

func outerSliceCodec() serial.Codec[outerSlice] {
	return serial.Funcs[outerSlice]{
		Enc: func(w *serial.Writer, v outerSlice) {
			w.F64Slice(v.Rows)
			w.F64Slice(v.Cols)
		},
		Dec: func(r *serial.Reader) outerSlice {
			return outerSlice{Rows: r.F64Slice(), Cols: r.F64Slice()}
		},
	}
}

var outerOp = NewBuild2D(
	"test.outer",
	outerSliceCodec(),
	serial.Unit(),
	serial.MatrixF64(),
	func(n *cluster.Node, s outerSlice, _ struct{}) (array.Matrix[float64], error) {
		out := array.NewMatrix[float64](len(s.Rows), len(s.Cols))
		for y, ry := range s.Rows {
			row := out.Row(y)
			for x, cx := range s.Cols {
				row[x] = ry * cx
			}
		}
		return out, nil
	},
)

// badShapeOp returns a wrong-sized section to exercise validation.
var badShapeOp = NewBuildArray(
	"test.badshape",
	serial.F64s(),
	serial.Unit(),
	serial.F64s(),
	func(n *cluster.Node, xs []float64, _ struct{}) ([]float64, error) {
		return make([]float64, len(xs)+1), nil
	},
)

var clusterShapes = []cluster.Config{
	{Nodes: 1, CoresPerNode: 1},
	{Nodes: 1, CoresPerNode: 4},
	{Nodes: 3, CoresPerNode: 2},
	{Nodes: 4, CoresPerNode: 1},
	{Nodes: 8, CoresPerNode: 2},
}

func TestDistDotProduct(t *testing.T) {
	n := 10007 // deliberately not divisible by node counts
	xs := make([]float64, n)
	ys := make([]float64, n)
	var want float64
	for i := range xs {
		xs[i] = float64(i%13) * 0.5
		ys[i] = float64(i%7) - 3
		want += xs[i] * ys[i]
	}
	src := FuncSource[dotSlice]{
		N: n,
		SliceFn: func(r domain.Range) dotSlice {
			return dotSlice{Xs: xs[r.Lo:r.Hi], Ys: ys[r.Lo:r.Hi]}
		},
	}
	for _, cfg := range clusterShapes {
		var got float64
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			v, err := dotOp.Run(s, src, struct{}{})
			got = v
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%+v: dot = %v, want %v", cfg, got, want)
		}
	}
}

func TestDistHistogram(t *testing.T) {
	vals := make([]int, 5000)
	for i := range vals {
		vals[i] = (i * 7) % 30
	}
	want := iter.Histogram(30, iter.FromSlice(vals))
	for _, cfg := range clusterShapes {
		var got []int64
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			h, err := histOp.Run(s, SliceSource(vals), 30)
			got = h
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: bin %d = %d, want %d", cfg, i, got[i], want[i])
			}
		}
	}
}

func TestDistHistogramRunLocal(t *testing.T) {
	vals := make([]int, 1000)
	for i := range vals {
		vals[i] = i % 10
	}
	want := iter.Histogram(10, iter.FromSlice(vals))
	_, err := cluster.Run(cluster.Config{Nodes: 3, CoresPerNode: 2}, func(s *cluster.Session) error {
		before := s.Fabric().Stats().Bytes
		h, err := histOp.RunLocal(s, SliceSource(vals), 10)
		if err != nil {
			return err
		}
		for i := range want {
			if h[i] != want[i] {
				t.Errorf("bin %d = %d, want %d", i, h[i], want[i])
			}
		}
		// localpar must not touch the fabric.
		if after := s.Fabric().Stats().Bytes; after != before {
			t.Errorf("RunLocal moved %d bytes over the fabric", after-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistBuildArray(t *testing.T) {
	xs := make([]float64, 4099)
	for i := range xs {
		xs[i] = float64(i) * 0.25
	}
	for _, cfg := range clusterShapes {
		var got []float64
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			out, err := squareOp.Run(s, SliceSource(xs), struct{}{})
			got = out
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(got) != len(xs) {
			t.Fatalf("%+v: len = %d", cfg, len(got))
		}
		for i := range xs {
			if got[i] != xs[i]*xs[i] {
				t.Fatalf("%+v: out[%d] = %v", cfg, i, got[i])
			}
		}
	}
}

func TestDistBuild2D(t *testing.T) {
	h, w := 61, 45
	rows := make([]float64, h)
	cols := make([]float64, w)
	for i := range rows {
		rows[i] = float64(i + 1)
	}
	for i := range cols {
		cols[i] = float64(i) * 0.5
	}
	src := FuncSource2[outerSlice]{
		D: domain.NewDim2(h, w),
		SliceFn: func(r domain.Rect) outerSlice {
			return outerSlice{
				Rows: rows[r.Rows.Lo:r.Rows.Hi],
				Cols: cols[r.Cols.Lo:r.Cols.Hi],
			}
		},
	}
	for _, cfg := range clusterShapes {
		var got array.Matrix[float64]
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			m, err := outerOp.Run(s, src, struct{}{})
			got = m
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		for y := range h {
			for x := range w {
				if got.At(y, x) != rows[y]*cols[x] {
					t.Fatalf("%+v: o[%d][%d] = %v", cfg, y, x, got.At(y, x))
				}
			}
		}
	}
}

// TestSlicingReducesTraffic verifies the paper's §3.5 property directly:
// distributing a sliced array moves about one copy of it over the fabric
// (the root keeps its own share locally), not one copy per node.
func TestSlicingReducesTraffic(t *testing.T) {
	const n = 100000
	xs := make([]float64, n) // 800 KB
	src := FuncSource[dotSlice]{
		N: n,
		SliceFn: func(r domain.Range) dotSlice {
			return dotSlice{Xs: xs[r.Lo:r.Hi], Ys: xs[r.Lo:r.Hi]}
		},
	}
	cfg := cluster.Config{Nodes: 8, CoresPerNode: 1}
	stats, err := cluster.Run(cfg, func(s *cluster.Session) error {
		_, err := dotOp.Run(s, src, struct{}{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	inputBytes := int64(2 * 8 * n) // both vectors
	// Sliced distribution: 7/8 of the input crosses the fabric once.
	// Whole-input-per-node would move ~7 copies. Allow 1.5x for headers
	// and the scalar reduction.
	if stats.Bytes > inputBytes*3/2 {
		t.Fatalf("moved %d bytes for %d input bytes: slicing is not happening", stats.Bytes, inputBytes)
	}
	if stats.Bytes < inputBytes/2 {
		t.Fatalf("moved only %d bytes: input did not cross the fabric?", stats.Bytes)
	}
}

func TestBuildArraySectionValidation(t *testing.T) {
	xs := make([]float64, 64)
	_, err := cluster.Run(cluster.Config{Nodes: 2, CoresPerNode: 1}, func(s *cluster.Session) error {
		_, err := badShapeOp.Run(s, SliceSource(xs), struct{}{})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "elements for") {
		t.Fatalf("err = %v", err)
	}
}

func TestTracedRunRecordsPhases(t *testing.T) {
	tr := trace.New()
	vals := make([]int, 2000)
	cfg := cluster.Config{Nodes: 3, CoresPerNode: 2, Tracer: tr}
	_, err := cluster.Run(cfg, func(s *cluster.Session) error {
		_, err := histOp.Run(s, SliceSource(vals), 8)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	totals := tr.PhaseTotals()
	for _, phase := range []string{"scatter", "bcast", "kernel", "reduce"} {
		if totals[phase] <= 0 {
			t.Errorf("phase %q not recorded: %v", phase, totals)
		}
	}
	// Every rank must have a kernel span.
	ranks := map[int]bool{}
	for _, s := range tr.Spans() {
		if s.Phase == "kernel" {
			ranks[s.Rank] = true
		}
	}
	for r := range 3 {
		if !ranks[r] {
			t.Errorf("rank %d has no kernel span", r)
		}
	}
	if tr.Gantt(60) == "(no spans)\n" {
		t.Error("gantt empty")
	}
}

func TestOpNames(t *testing.T) {
	if dotOp.Name() != "test.dot" || squareOp.Name() != "test.square" || outerOp.Name() != "test.outer" {
		t.Fatal("op names wrong")
	}
}

func TestDuplicateKernelNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMapReduce("test.dot", serial.Unit(), serial.Unit(), serial.IntC(),
		func(*cluster.Node, struct{}, struct{}) (int, error) { return 0, nil },
		func(a, b int) int { return a + b })
}
