package diffcheck

import (
	"testing"

	"triolet/internal/stencil"
)

// Stencil gate: the iterated stencil skeleton must be bit-identical across
// {seq, pool, farm@1/2/4/8} × {lossless, lossy} × {fresh, WAL-resume}.
// Integer grids use the full-window sum kernel; the float grid uses the
// 5-point heat kernel, where bit-identity IS the FP contract (per-cell
// arithmetic order is mode-independent).

var allStencilBoundaries = []stencil.Boundary{
	stencil.Normal, stencil.Wrap, stencil.Mirror, stencil.Border,
}

func mustAgreeStencil(t *testing.T, m *StencilMismatch, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("stencil oracle error: %v", err)
	}
	if m != nil {
		t.Fatal(m)
	}
}

// TestGateStencilFullMatrix drives the full mode matrix (including lossy
// and kill+resume cells) once per kernel: the integer full-window sum under
// Wrap, and the float heat kernel under Normal. Other boundary strategies
// ride the cheaper matrix in TestGateStencilBoundariesAndGeometry — the
// lossy cells exercise the fabric, not the boundary math.
func TestGateStencilFullMatrix(t *testing.T) {
	modes := StencilModes()
	c := StencilCase{H: 13, W: 7, Seed: 11, Iters: 4}
	par := stencil.Params[int64]{Radius: 2, Boundary: stencil.Wrap, Border: -3}
	m, err := CheckStencilI64(c, par, modes, Options{})
	mustAgreeStencil(t, m, err)
	m, err = CheckStencilHeat(c, stencil.Normal, 17.5, modes, Options{})
	mustAgreeStencil(t, m, err)
}

// TestGateStencilBoundariesAndGeometry sweeps every boundary strategy over
// degenerate shapes on the cheaper cells (farm@4 fresh lossless plus the
// local modes).
func TestGateStencilBoundariesAndGeometry(t *testing.T) {
	modes := []StencilMode{
		{Exec: Seq}, {Exec: LocalPar},
		{Exec: Par, Nodes: 4},
	}
	cases := []StencilCase{
		{H: 9, W: 6, Seed: 21, Iters: 3},
		{H: 1, W: 8, Seed: 22, Iters: 3},
		{H: 8, W: 1, Seed: 23, Iters: 3},
		{H: 2, W: 2, Seed: 24, Iters: 2}, // radius exceeds both dimensions
	}
	for _, c := range cases {
		for _, b := range allStencilBoundaries {
			for _, radius := range []int{1, 3} {
				par := stencil.Params[int64]{Radius: radius, Boundary: b, Border: 9}
				m, err := CheckStencilI64(c, par, modes, Options{})
				mustAgreeStencil(t, m, err)
			}
		}
	}
}
