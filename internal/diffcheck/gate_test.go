package diffcheck

import (
	"math"
	"math/rand"
	"testing"

	"triolet/internal/iter"
)

// The gate subset: fast enough for every push, yet covering all four mode
// axes — engine {per-element, block}, exec {seq, localpar, par@1/2/4/8},
// fabric {lossless, lossy}, lifecycle {fresh, kill+resume}.

// fullMatrix covers every axis, including the expensive cells.
func fullMatrix() []Mode {
	return []Mode{
		{Engine: PerElement, Exec: Seq}, // reference mode first
		{Engine: Block, Exec: Seq},
		{Engine: PerElement, Exec: LocalPar},
		{Engine: Block, Exec: LocalPar},
		{Engine: Block, Exec: Par, Nodes: 1},
		{Engine: PerElement, Exec: Par, Nodes: 2},
		{Engine: Block, Exec: Par, Nodes: 4, Fabric: Lossy},
		{Engine: Block, Exec: Par, Nodes: 8},
		{Engine: Block, Exec: Par, Nodes: 2, Lifecycle: Resume},
	}
}

// quickMatrix trades the slow cells (lossy, resume) for breadth on many
// pipelines.
func quickMatrix() []Mode {
	return []Mode{
		{Engine: PerElement, Exec: Seq},
		{Engine: Block, Exec: Seq},
		{Engine: Block, Exec: LocalPar},
		{Engine: PerElement, Exec: Par, Nodes: 2},
		{Engine: Block, Exec: Par, Nodes: 4},
	}
}

// spikeSeed is association-sensitive float data: one huge value followed
// by ones, so any schedule-dependent float summation diverges in the last
// bits.
func spikeSeed(n int) []int64 {
	xs := make([]int64, n)
	xs[0] = 1 << 55
	for i := 1; i < n; i++ {
		xs[i] = 1
	}
	return xs
}

func rampSeed(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(5*i - 700)
	}
	return xs
}

// mustAgree fails the test with a shrunk reproducer when the mode list
// disagrees on p.
func mustAgree(t *testing.T, p Pipeline, modes []Mode, opt Options) {
	t.Helper()
	m, err := CheckModes(p, modes, opt)
	if err != nil {
		t.Fatalf("oracle error on %s: %v", p, err)
	}
	if m == nil {
		return
	}
	shrunk := Shrink(p, func(q Pipeline) bool {
		mm, err := CheckModes(q, modes, opt)
		return err == nil && mm != nil
	}, 200)
	sm, _ := CheckModes(shrunk, modes, opt)
	if sm == nil {
		sm = m
	}
	repro := Reproducer(sm.Pipeline, sm.A, sm.B, opt)
	if path, err := WriteArtifact("reproducer.go.txt", repro); err == nil && path != "" {
		t.Logf("reproducer written to %s", path)
	}
	t.Fatalf("%s\nminimized reproducer:\n%s", sm, repro)
}

func TestGateCrossModeOracleFullMatrix(t *testing.T) {
	pipelines := []Pipeline{
		{Seed: spikeSeed(600), Ops: []iter.PipeOp{{Kind: 0, A: 2, B: 3}}},
		{Seed: rampSeed(777), Ops: []iter.PipeOp{{Kind: 0, A: 1, B: 4}, {Kind: 1, A: 1, B: 0}}},
		{Seed: rampSeed(300), Ops: []iter.PipeOp{{Kind: 2, A: 2, B: 0}}}, // concatMap
	}
	for _, p := range pipelines {
		mustAgree(t, p, fullMatrix(), Options{})
	}
}

// Non-splittable pipelines (Take/Drop/Chain/Scan heads) execute as one
// whole-domain piece in the chunked executors; the oracle must still hold.
func TestGateNonSplittablePipelines(t *testing.T) {
	pipelines := []Pipeline{
		{Seed: rampSeed(500), Ops: []iter.PipeOp{{Kind: 3, A: 35, B: 0}}},                       // take
		{Seed: rampSeed(500), Ops: []iter.PipeOp{{Kind: 4, A: 7, B: 0}, {Kind: 0, A: 3, B: 1}}}, // drop, map
		{Seed: spikeSeed(400), Ops: []iter.PipeOp{{Kind: 5, A: 9, B: 250}}},                     // chain
		{Seed: rampSeed(400), Ops: []iter.PipeOp{{Kind: 6, A: 0, B: 2}}},                        // scan
		{Seed: rampSeed(600), Ops: []iter.PipeOp{{Kind: 6, A: 0, B: 1}, {Kind: 3, A: 39, B: 0}}},
	}
	for _, p := range pipelines {
		mustAgree(t, p, quickMatrix(), Options{})
	}
}

func TestGateEmptyAndTinyDomains(t *testing.T) {
	for _, p := range []Pipeline{
		{Seed: nil},
		{Seed: []int64{42}},
		{Seed: []int64{-3, 9}, Ops: []iter.PipeOp{{Kind: 1, A: 0, B: 0}}},
		{Seed: rampSeed(3), Ops: []iter.PipeOp{{Kind: 3, A: 0, B: 0}}}, // take 0
	} {
		mustAgree(t, p, quickMatrix(), Options{})
	}
}

func TestGateRandomPipelines(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	opt := Options{}
	checked := 0
	for checked < 8 {
		n := 1 + rng.Intn(900)
		seed := make([]int64, n)
		for i := range seed {
			seed[i] = rng.Int63n(2001) - 1000
		}
		ops := make([]iter.PipeOp, rng.Intn(5))
		for i := range ops {
			ops[i] = iter.PipeOp{Kind: uint8(rng.Intn(256)), A: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))}
		}
		p := Pipeline{Seed: seed, Ops: ops}
		if _, ok := p.Ref(50000); !ok {
			continue // exploded; skip
		}
		mustAgree(t, p, quickMatrix(), opt)
		checked++
	}
}

// The acceptance property verbatim: a float sum over association-sensitive
// data is bit-identical across 1, 2, 4, and 8 virtual nodes (and the
// thread-parallel path), block or per-element engine.
func TestGateFloatSumBitIdenticalAcrossNodeCounts(t *testing.T) {
	p := Pipeline{Seed: spikeSeed(10007)}
	opt := Options{}
	var bits []uint64
	var modes []Mode
	for _, eng := range []Engine{PerElement, Block} {
		modes = append(modes, Mode{Engine: eng, Exec: LocalPar})
		for _, nodes := range []int{1, 2, 4, 8} {
			modes = append(modes, Mode{Engine: eng, Exec: Par, Nodes: nodes})
		}
	}
	for _, m := range modes {
		o, err := Run(p, m, opt)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		bits = append(bits, math.Float64bits(o.FSum))
	}
	for i := 1; i < len(bits); i++ {
		if bits[i] != bits[0] {
			t.Fatalf("float sum diverged: %s = %x, %s = %x", modes[0], bits[0], modes[i], bits[i])
		}
	}
	// And the deterministic family sits within tolerance of the
	// sequential left fold.
	seq, err := Run(p, Mode{Engine: PerElement, Exec: Seq}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !TolFloatSum.Within(seq.FSum, math.Float64frombits(bits[0]), math.Max(seq.FAbs, seq.FAbs)) {
		t.Fatalf("det family %v vs seq %v exceeds TolFloatSum", math.Float64frombits(bits[0]), seq.FSum)
	}
}
