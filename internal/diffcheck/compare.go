package diffcheck

import (
	"fmt"
	"math"
)

// Tolerance is one entry of the repo's single floating-point comparison
// contract. Every cross-implementation float comparison — the oracle's
// float-sum check and the parboil benchmark equivalence tests — names an
// entry from the table below instead of carrying its own ad-hoc epsilon.
type Tolerance struct {
	// RelDiff is the maximum allowed relative difference, with the
	// denominator floored at Floor. Used when Abs is zero.
	RelDiff float64
	Floor   float64
	// Abs, when non-zero, switches to a plain absolute-difference bound.
	Abs float64
}

// The FP contract table. Integer and histogram results never appear here:
// they are bit-identical across modes by contract, no tolerance.
var (
	// TolFloatSum bounds a chunked deterministic float64 sum against the
	// sequential left fold of the same data. The oracle scales the check by
	// the sum of absolute values (see Within's scale parameter), so
	// catastrophic cancellation does not produce false alarms.
	TolFloatSum = Tolerance{RelDiff: 1e-9, Floor: 1e-9}
	// TolCutcpGrid bounds cutcp's float32 potential grid across execution
	// modes (relative, floored for near-zero grid points).
	TolCutcpGrid = Tolerance{RelDiff: 1e-4, Floor: 1e-3}
	// TolCutcpPoint bounds a single cutcp potential value.
	TolCutcpPoint = Tolerance{Abs: 1e-6}
	// TolMriq bounds mri-q's reconstructed Q values.
	TolMriq = Tolerance{Abs: 1e-6}
	// TolSgemm bounds sgemm result elements (float32 dot products).
	TolSgemm = Tolerance{Abs: 1e-5}
	// TolTpacfNorm bounds tpacf's normalization sanity value.
	TolTpacfNorm = Tolerance{Abs: 1e-5}
)

// Within reports whether a and b agree under the tolerance. scale, when
// positive, joins the relative denominator — pass a magnitude that
// reflects the computation's conditioning (e.g. the sum of absolute
// values for a float sum) so cancellation near zero is judged fairly; pass
// 0 for plain value-relative comparison.
func (t Tolerance) Within(a, b, scale float64) bool {
	d := math.Abs(a - b)
	if t.Abs > 0 {
		return d <= t.Abs
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	den = math.Max(den, scale)
	den = math.Max(den, t.Floor)
	return d <= t.RelDiff*den
}

// MaxRelDiffF32 is the worst relative difference between two float32
// slices under the tolerance's Floor — the quantity the parboil grid
// checks bound by RelDiff.
func (t Tolerance) MaxRelDiffF32(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		av, bv := float64(a[i]), float64(b[i])
		den := math.Max(math.Max(math.Abs(av), math.Abs(bv)), t.Floor)
		if d := math.Abs(av-bv) / den; d > worst {
			worst = d
		}
	}
	return worst
}

// WithinF32Slice reports whether two float32 slices agree elementwise
// under the tolerance.
func (t Tolerance) WithinF32Slice(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	if t.Abs > 0 {
		for i := range a {
			if math.Abs(float64(a[i])-float64(b[i])) > t.Abs {
				return false
			}
		}
		return true
	}
	return t.MaxRelDiffF32(a, b) <= t.RelDiff
}

// Mismatch is one detected cross-mode divergence.
type Mismatch struct {
	Pipeline Pipeline
	A, B     Mode
	Field    string // "Elems", "Count", "Sum", "Hist", "FSum", "Ref"
	Detail   string
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("diffcheck: %s vs %s diverge on %s: %s\n  %s",
		m.A, m.B, m.Field, m.Detail, m.Pipeline)
}

// fsumBitExact reports whether the FP contract demands bit-identical
// float sums between two modes. The chunked executors (LocalPar and Par at
// any node count, either engine, any fabric or lifecycle) form one
// deterministic family; Seq is its own (left-fold) family. Within a family
// the contract is bitwise; across families it is TolFloatSum.
func fsumBitExact(a, b Mode) bool { return (a.Exec == Seq) == (b.Exec == Seq) }

// diffObs compares two observations under the contract and returns the
// first diverging field ("" when they agree).
func diffObs(a, b Obs, bitExact bool) (field, detail string) {
	if a.Count != b.Count {
		return "Count", fmt.Sprintf("%d vs %d", a.Count, b.Count)
	}
	if a.Sum != b.Sum {
		return "Sum", fmt.Sprintf("%d vs %d", a.Sum, b.Sum)
	}
	if len(a.Elems) != len(b.Elems) {
		return "Elems", fmt.Sprintf("%d elems vs %d", len(a.Elems), len(b.Elems))
	}
	for i := range a.Elems {
		if a.Elems[i] != b.Elems[i] {
			return "Elems", fmt.Sprintf("elem %d: %d vs %d", i, a.Elems[i], b.Elems[i])
		}
	}
	for i := 0; i < len(a.Hist) && i < len(b.Hist); i++ {
		if a.Hist[i] != b.Hist[i] {
			return "Hist", fmt.Sprintf("bin %d: %d vs %d", i, a.Hist[i], b.Hist[i])
		}
	}
	if bitExact {
		if math.Float64bits(a.FSum) != math.Float64bits(b.FSum) {
			return "FSum", fmt.Sprintf("bits %x (%v) vs %x (%v)",
				math.Float64bits(a.FSum), a.FSum, math.Float64bits(b.FSum), b.FSum)
		}
	} else if !TolFloatSum.Within(a.FSum, b.FSum, math.Max(a.FAbs, b.FAbs)) {
		return "FSum", fmt.Sprintf("%v vs %v (scale %v, tol %v)",
			a.FSum, b.FSum, math.Max(a.FAbs, b.FAbs), TolFloatSum.RelDiff)
	}
	return "", ""
}

// Compare runs p under both modes and diffs the observations under the FP
// contract. nil means the modes agree.
func Compare(p Pipeline, a, b Mode, opt Options) (*Mismatch, error) {
	oa, err := Run(p, a, opt)
	if err != nil {
		return nil, err
	}
	ob, err := Run(p, b, opt)
	if err != nil {
		return nil, err
	}
	if field, detail := diffObs(oa, ob, fsumBitExact(a, b)); field != "" {
		return &Mismatch{Pipeline: p, A: a, B: b, Field: field, Detail: detail}, nil
	}
	return nil, nil
}

// CheckModes verifies p across a whole mode list: modes[0] is the
// reference (conventionally Seq/PerElement), its elements are additionally
// checked against the plain-slice reference semantics, and every other
// mode is compared to it — plus pairwise bit-exactness within the
// deterministic family. The first mismatch is returned; nil means every
// mode agreed.
func CheckModes(p Pipeline, modes []Mode, opt Options) (*Mismatch, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("diffcheck: no modes")
	}
	obs := make([]Obs, len(modes))
	for i, m := range modes {
		o, err := Run(p, m, opt)
		if err != nil {
			return nil, fmt.Errorf("diffcheck: %s: %w", m, err)
		}
		obs[i] = o
	}
	// Ground truth: the reference mode must reproduce the slice semantics.
	if ref, ok := p.Ref(opt.refLimit()); ok {
		if len(ref) != len(obs[0].Elems) {
			return &Mismatch{Pipeline: p, A: modes[0], B: modes[0], Field: "Ref",
				Detail: fmt.Sprintf("%d elems vs reference %d", len(obs[0].Elems), len(ref))}, nil
		}
		for i := range ref {
			if ref[i] != obs[0].Elems[i] {
				return &Mismatch{Pipeline: p, A: modes[0], B: modes[0], Field: "Ref",
					Detail: fmt.Sprintf("elem %d: %d vs reference %d", i, obs[0].Elems[i], ref[i])}, nil
			}
		}
	}
	for i := 1; i < len(modes); i++ {
		if field, detail := diffObs(obs[0], obs[i], fsumBitExact(modes[0], modes[i])); field != "" {
			return &Mismatch{Pipeline: p, A: modes[0], B: modes[i], Field: field, Detail: detail}, nil
		}
	}
	// Deterministic family: every chunked mode must match every other
	// bit-for-bit, node count and schedule notwithstanding.
	det := -1
	for i, m := range modes {
		if m.Exec == Seq {
			continue
		}
		if det < 0 {
			det = i
			continue
		}
		if field, detail := diffObs(obs[det], obs[i], true); field != "" {
			return &Mismatch{Pipeline: p, A: modes[det], B: modes[i], Field: field, Detail: detail}, nil
		}
	}
	return nil, nil
}
