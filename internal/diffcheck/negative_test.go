package diffcheck

import (
	"strings"
	"testing"
)

// The oracle must catch the bug class it was built for. legacyFSum
// reintroduces the pre-fix distributed float reduction — per-node left
// folds over a node-count-dependent grouping — and the oracle has to flag
// the divergence between node counts, shrink it, and emit a reproducer
// naming the mode pair.
func TestOracleCatchesReintroducedRoundingDivergence(t *testing.T) {
	// Small chunks so even the minimized pipeline spans several chunks,
	// keeping the node-grouping of partials visible.
	opt := Options{Chunk: 4, legacyFSum: true}
	a := Mode{Engine: Block, Exec: Par, Nodes: 1}
	b := Mode{Engine: Block, Exec: Par, Nodes: 2}

	p := Pipeline{Seed: spikeSeed(64)}
	m, err := Compare(p, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("oracle missed the re-introduced legacy float reduction")
	}
	if m.Field != "FSum" {
		t.Fatalf("divergence flagged on %s, want FSum: %s", m.Field, m)
	}

	failing := func(q Pipeline) bool {
		mm, err := Compare(q, a, b, opt)
		return err == nil && mm != nil
	}
	shrunk := Shrink(p, failing, 300)
	if !failing(shrunk) {
		t.Fatalf("shrunk pipeline no longer fails: %s", shrunk)
	}
	if len(shrunk.Seed) >= len(p.Seed) {
		t.Fatalf("shrinker made no progress: %d elems -> %d", len(p.Seed), len(shrunk.Seed))
	}
	// The minimal divergent case needs four chunks (with fewer, the
	// node-grouped left folds associate identically to the flat left
	// fold); with Chunk=4 that is at most 16 elements.
	if len(shrunk.Seed) > 16 {
		t.Fatalf("shrunk seed still has %d elems, want <= 16: %#v", len(shrunk.Seed), shrunk.Seed)
	}

	repro := Reproducer(shrunk, a, b, opt)
	for _, want := range []string{
		"func TestDiffcheckRegression",
		"diffcheck.Compare",
		"Nodes: 1",
		"Nodes: 2",
		"Chunk: 4",
	} {
		if !strings.Contains(repro, want) {
			t.Fatalf("reproducer missing %q:\n%s", want, repro)
		}
	}
	t.Logf("minimized to %d elems; reproducer:\n%s", len(shrunk.Seed), repro)
}

// Sanity: with the fix in place (no legacy knob) the identical
// configuration is bit-identical, so the negative test above fails for the
// right reason.
func TestFixedReductionPassesWhereLegacyFails(t *testing.T) {
	opt := Options{Chunk: 4}
	m, err := Compare(Pipeline{Seed: spikeSeed(64)},
		Mode{Engine: Block, Exec: Par, Nodes: 1},
		Mode{Engine: Block, Exec: Par, Nodes: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("fixed reduction diverges: %s", m)
	}
}
