package diffcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"triolet/internal/iter"
)

// Shrink greedily minimizes a failing pipeline: it repeatedly tries to
// drop ops, cut spans out of the seed, and simplify surviving seed values,
// keeping every change under which failing still reports true, until a
// fixpoint (or the evaluation budget runs out). failing must be
// deterministic. The result is the pipeline a reproducer should commit.
func Shrink(p Pipeline, failing func(Pipeline) bool, budget int) Pipeline {
	if budget <= 0 {
		budget = 500
	}
	calls := 0
	try := func(q Pipeline) bool {
		if calls >= budget {
			return false
		}
		calls++
		return failing(q)
	}
	for changed := true; changed; {
		changed = false
		// Drop ops, one at a time.
		for i := 0; i < len(p.Ops); {
			q := p
			q.Ops = append(append([]iter.PipeOp{}, p.Ops[:i]...), p.Ops[i+1:]...)
			if try(q) {
				p = q
				changed = true
			} else {
				i++
			}
		}
		// Cut spans out of the seed, largest first (ddmin-style).
		for span := len(p.Seed) / 2; span >= 1; span /= 2 {
			for lo := 0; lo+span <= len(p.Seed); {
				q := p
				q.Seed = append(append([]int64{}, p.Seed[:lo]...), p.Seed[lo+span:]...)
				if try(q) {
					p = q
					changed = true
				} else {
					lo += span
				}
			}
		}
		// Simplify surviving seed values toward zero.
		for i := range p.Seed {
			for _, alt := range []int64{0, 1, p.Seed[i] / 2} {
				if alt == p.Seed[i] {
					continue
				}
				q := p
				q.Seed = append([]int64{}, p.Seed...)
				q.Seed[i] = alt
				if try(q) {
					p = q
					changed = true
					break
				}
			}
		}
	}
	return p
}

// Reproducer renders a minimized failing case as a ready-to-commit Go test
// snippet: the seed, the op sequence, and the diverging mode pair, checked
// through Compare. Promote the snippet into
// internal/diffcheck/regression_test.go when a soak or fuzz run finds a
// real divergence.
func Reproducer(p Pipeline, a, b Mode, opt Options) string {
	var sb strings.Builder
	sb.WriteString("// Minimized by diffcheck.Shrink. Promote into regression_test.go.\n")
	sb.WriteString("func TestDiffcheckRegression(t *testing.T) {\n")
	sb.WriteString("\tp := diffcheck.Pipeline{\n")
	fmt.Fprintf(&sb, "\t\tSeed: %#v,\n", p.Seed)
	sb.WriteString("\t\tOps: []iter.PipeOp{")
	for i, op := range p.Ops {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "{Kind: %d, A: %d, B: %d}", op.Kind, op.A, op.B)
	}
	sb.WriteString("},\n\t}\n")
	fmt.Fprintf(&sb, "\ta := %s\n", modeLiteral(a))
	fmt.Fprintf(&sb, "\tb := %s\n", modeLiteral(b))
	fmt.Fprintf(&sb, "\topt := diffcheck.Options{Chunk: %d, Cores: %d}\n", opt.chunk(), opt.cores())
	sb.WriteString("\tm, err := diffcheck.Compare(p, a, b, opt)\n")
	sb.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	sb.WriteString("\tif m != nil {\n\t\tt.Fatal(m)\n\t}\n")
	sb.WriteString("}\n")
	return sb.String()
}

func modeLiteral(m Mode) string {
	eng := "diffcheck.PerElement"
	if m.Engine == Block {
		eng = "diffcheck.Block"
	}
	exec := map[Exec]string{Seq: "diffcheck.Seq", LocalPar: "diffcheck.LocalPar", Par: "diffcheck.Par"}[m.Exec]
	s := fmt.Sprintf("diffcheck.Mode{Engine: %s, Exec: %s", eng, exec)
	if m.Exec == Par {
		s += fmt.Sprintf(", Nodes: %d", m.nodes())
		if m.Fabric == Lossy {
			s += ", Fabric: diffcheck.Lossy"
		}
		if m.Lifecycle == Resume {
			s += ", Lifecycle: diffcheck.Resume"
		}
	}
	return s + "}"
}

// WriteArtifact saves a reproducer where CI can pick it up: under
// $DIFFCHECK_ARTIFACT_DIR when set (the CI workflows upload that directory
// on failure), or nowhere (returning "") when unset — local runs already
// print the reproducer in the test log.
func WriteArtifact(name, content string) (string, error) {
	dir := os.Getenv("DIFFCHECK_ARTIFACT_DIR")
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
