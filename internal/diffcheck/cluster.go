package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// The Par executor distributes the pipeline as a farm job: one task per
// fixed-offset chunk of the outer domain (or a single whole-domain task
// for unsplittable pipelines). Each task carries the full pipeline
// description plus its chunk range, so any node — or the master fallback,
// or a resumed second session — rebuilds the same iterator and computes
// the same chunk observation. The master merges task results in chunk
// order, so which worker computed which chunk can never change the answer.

const chunkKernel = "diffcheck.chunk"

// chunkTask is one farm task: a pipeline, a window of its outer domain,
// and an optional compute delay (used by Resume runs to widen the kill
// window).
type chunkTask struct {
	p     Pipeline
	whole bool
	r     domain.Range
	delay time.Duration
}

func encodeChunkTask(t chunkTask) []byte {
	w := serial.NewWriter(64 + 8*len(t.p.Seed))
	w.Bool(t.whole)
	w.Int(t.r.Lo)
	w.Int(t.r.Hi)
	w.Int(int(t.delay / time.Millisecond))
	w.I64Slice(t.p.Seed)
	w.Int(len(t.p.Ops))
	for _, op := range t.p.Ops {
		w.U8(op.Kind)
		w.U8(op.A)
		w.U8(op.B)
	}
	return w.Bytes()
}

func decodeChunkTask(b []byte) (chunkTask, error) {
	r := serial.NewReader(b)
	var t chunkTask
	t.whole = r.Bool()
	t.r.Lo = r.Int()
	t.r.Hi = r.Int()
	t.delay = time.Duration(r.Int()) * time.Millisecond
	t.p.Seed = r.I64Slice()
	n := r.Int()
	if r.Err() == nil && (n < 0 || n > r.Remaining()/3) {
		return t, fmt.Errorf("diffcheck: task op count %d exceeds payload", n)
	}
	if r.Err() == nil {
		t.p.Ops = make([]iter.PipeOp, n)
		for i := range t.p.Ops {
			t.p.Ops[i] = iter.PipeOp{Kind: r.U8(), A: r.U8(), B: r.U8()}
		}
	}
	if err := r.Err(); err != nil {
		return t, fmt.Errorf("diffcheck: malformed chunk task: %w", err)
	}
	return t, nil
}

func encodeObs(o Obs) []byte {
	w := serial.NewWriter(64 + 8*len(o.Elems))
	w.I64Slice(o.Elems)
	w.U64(uint64(o.Count))
	w.U64(uint64(o.Sum))
	w.I64Slice(o.Hist)
	w.F64(o.FSum)
	w.F64(o.FAbs)
	return w.Bytes()
}

func decodeObs(b []byte) (Obs, error) {
	r := serial.NewReader(b)
	o := Obs{
		Elems: r.I64Slice(),
		Count: int64(r.U64()),
		Sum:   int64(r.U64()),
		Hist:  r.I64Slice(),
		FSum:  r.F64(),
		FAbs:  r.F64(),
	}
	if err := r.Err(); err != nil {
		return o, fmt.Errorf("diffcheck: malformed chunk observation: %w", err)
	}
	return o, nil
}

func init() {
	cluster.RegisterFarm(chunkKernel, func(n *cluster.Node, task []byte) ([]byte, error) {
		t, err := decodeChunkTask(task)
		if err != nil {
			return nil, err
		}
		if t.delay > 0 {
			time.Sleep(t.delay)
		}
		it := t.p.Build()
		if !t.whole {
			it = iter.Split(it, t.r)
		}
		return encodeObs(observe(it)), nil
	})
}

// lossyProfile is the oracle's faulty-fabric configuration: ~2% each of
// drops, duplicates, and corruptions on every link, deterministically
// seeded.
func lossyProfile(seed int64) *transport.FaultConfig {
	return &transport.FaultConfig{
		Seed: seed,
		Default: transport.FaultProbs{
			Drop:      0.02,
			Duplicate: 0.02,
			Corrupt:   0.02,
		},
	}
}

// fastRetry keeps reliable-mode timeouts short so lossy gate runs converge
// in milliseconds.
func fastRetry() *mpi.ReliableConfig {
	return &mpi.ReliableConfig{
		AckTimeout:    500 * time.Microsecond,
		Retries:       100,
		MaxAckTimeout: 50 * time.Millisecond,
	}
}

func clusterConfig(m Mode, opt Options) cluster.Config {
	cfg := cluster.Config{Nodes: m.nodes(), CoresPerNode: opt.cores()}
	if m.Fabric == Lossy {
		cfg.Fault = lossyProfile(997)
		cfg.Reliable = fastRetry()
	}
	return cfg
}

// parTasks cuts the pipeline into farm task payloads.
func parTasks(p Pipeline, opt Options, delay time.Duration) [][]byte {
	chunks, ok := chunkRanges(p.Build(), opt.chunk())
	if !ok {
		return [][]byte{encodeChunkTask(chunkTask{p: p, whole: true, delay: delay})}
	}
	tasks := make([][]byte, len(chunks))
	for i, r := range chunks {
		tasks[i] = encodeChunkTask(chunkTask{p: p, r: r, delay: delay})
	}
	return tasks
}

// mergeParResults decodes per-task observations and merges them in task
// (== chunk) order.
func mergeParResults(fr *cluster.FarmResult, m Mode, opt Options) (Obs, error) {
	if len(fr.Failed) > 0 {
		return Obs{}, fmt.Errorf("diffcheck: %d tasks quarantined (first: task %d: %s)",
			len(fr.Failed), fr.Failed[0].Task, fr.Failed[0].Err)
	}
	parts := make([]Obs, len(fr.Results))
	for i, b := range fr.Results {
		o, err := decodeObs(b)
		if err != nil {
			return Obs{}, fmt.Errorf("diffcheck: task %d: %w", i, err)
		}
		parts[i] = o
	}
	legacy := 0
	if opt.legacyFSum {
		legacy = m.nodes()
	}
	return mergeObs(parts, legacy), nil
}

// runPar executes the pipeline on a virtual cluster.
func runPar(p Pipeline, m Mode, opt Options) (Obs, error) {
	if m.Lifecycle == Resume {
		return runParResume(p, m, opt)
	}
	tasks := parTasks(p, opt, 0)
	var fr *cluster.FarmResult
	_, err := cluster.Run(clusterConfig(m, opt), func(s *cluster.Session) error {
		var err error
		fr, err = s.Farm(chunkKernel, tasks)
		return err
	})
	if err != nil {
		return Obs{}, fmt.Errorf("diffcheck: %s: %w", m, err)
	}
	return mergeParResults(fr, m, opt)
}

// runParResume executes the job twice: the first session is killed
// (context cancel — the in-process stand-in for kill -9) once at least one
// task record reaches the WAL, and a second session resumes from the
// reopened WAL. The merged observation must be bit-identical to a fresh
// run's, which is exactly what the oracle then checks.
func runParResume(p Pipeline, m Mode, opt Options) (Obs, error) {
	dir, err := os.MkdirTemp("", "diffcheck-wal-")
	if err != nil {
		return Obs{}, err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "job.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		return Obs{}, err
	}

	// A small per-task delay gives the killer a window; resumed results
	// must be byte-identical regardless of where the kill lands.
	tasks := parTasks(p, opt, 2*time.Millisecond)
	const job = "diffcheck"
	cfg := clusterConfig(m, opt)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for {
			select {
			case <-stopKiller:
				return
			default:
			}
			if wal.Records() >= 1 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var fr *cluster.FarmResult
	_, firstErr := cluster.RunCtx(ctx, cfg, func(s *cluster.Session) error {
		var err error
		fr, err = s.FarmOpts(chunkKernel, tasks, cluster.FarmOptions{Checkpoint: wal, Job: job})
		return err
	})
	close(stopKiller)
	<-killerDone
	if cerr := wal.Close(); cerr != nil {
		return Obs{}, cerr
	}
	if firstErr == nil {
		// The job outran the killer (tiny pipelines): its results are a
		// complete fresh run, still a valid observation for this mode.
		return mergeParResults(fr, m, opt)
	}
	if !errors.Is(firstErr, context.Canceled) {
		return Obs{}, fmt.Errorf("diffcheck: %s first life: %w", m, firstErr)
	}

	// Second life: a brand-new session resumes from the WAL on disk.
	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		return Obs{}, fmt.Errorf("diffcheck: reopen WAL: %w", err)
	}
	defer wal2.Close()
	_, err = cluster.Run(cfg, func(s *cluster.Session) error {
		var err error
		fr, err = s.FarmOpts(chunkKernel, tasks, cluster.FarmOptions{Checkpoint: wal2, Job: job})
		return err
	})
	if err != nil {
		return Obs{}, fmt.Errorf("diffcheck: %s second life: %w", m, err)
	}
	return mergeParResults(fr, m, opt)
}
