// Package diffcheck is the cross-mode differential oracle: it executes one
// declarative pipeline description under a cross-product of execution modes
// — per-element vs block engine, sequential vs thread-parallel vs
// distributed, lossless vs faulty fabric, fresh vs kill-and-resume — and
// demands that every mode computes the same answer under a single declared
// floating-point contract:
//
//   - integer results (elements, counts, integer sums, histogram bins) are
//     bit-identical across all modes, always;
//   - floating-point sums are bit-identical within the deterministic family
//     (thread-parallel and distributed runs at any node count use the
//     fixed-chunk fold + fixed combine tree of internal/core's
//     deterministic reductions), and within TolFloatSum of the sequential
//     left fold.
//
// On a mismatch the harness shrinks the pipeline to a minimal failing case
// and emits a ready-to-commit Go test reproducer naming the seed, the op
// sequence, and the diverging mode pair. The fast gate subset runs on every
// push (go test ./internal/diffcheck -run Gate); the nightly soak runs long
// random streams under -race.
package diffcheck

import (
	"fmt"
	"math"

	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

// Pipeline is a declarative, serializable description of an iterator
// computation: a seed slice fed through a sequence of generated ops (map,
// filter, concatMap, take, drop, chain, scan — see iter.PipeOp). The same
// description can be built on any node, which is what lets one pipeline
// execute under every mode.
type Pipeline struct {
	Seed []int64
	Ops  []iter.PipeOp
}

// Build constructs the pipeline's iterator.
func (p Pipeline) Build() iter.Iter[int64] { return iter.BuildPipeline(p.Seed, p.Ops) }

// Ref computes the pipeline's elements with the plain-slice reference
// semantics, the ground truth every mode is ultimately compared against.
// ok is false when an intermediate slice exceeds limit elements.
func (p Pipeline) Ref(limit int) ([]int64, bool) { return iter.RefPipeline(p.Seed, p.Ops, limit) }

func (p Pipeline) String() string {
	return fmt.Sprintf("Pipeline{Seed: %d elems, Ops: %v}", len(p.Seed), p.Ops)
}

// Engine selects the iterator execution engine.
type Engine uint8

const (
	// PerElement drives pipelines one element at a time.
	PerElement Engine = iota
	// Block drives pipelines through the block-at-a-time fast paths.
	Block
)

// Exec selects the parallelism level.
type Exec uint8

const (
	// Seq consumes the pipeline on one goroutine.
	Seq Exec = iota
	// LocalPar consumes it on a work-stealing thread pool (one node).
	LocalPar
	// Par distributes fixed-offset chunks over a virtual cluster as farm
	// tasks.
	Par
)

// Fabric selects the simulated network's behavior (Par only).
type Fabric uint8

const (
	// Lossless delivers every message intact.
	Lossless Fabric = iota
	// Lossy drops, duplicates, and corrupts ~2% of messages each; the
	// reliable layer must hide it.
	Lossy
)

// Lifecycle selects whether the distributed run survives a master kill
// (Par only).
type Lifecycle uint8

const (
	// Fresh runs the job start to finish in one session.
	Fresh Lifecycle = iota
	// Resume kills the first session mid-job (context cancel once the WAL
	// holds at least one record) and finishes in a second session resumed
	// from the WAL.
	Resume
)

// Mode is one cell of the execution matrix.
type Mode struct {
	Engine    Engine
	Exec      Exec
	Nodes     int // Par only; 0 means 1
	Fabric    Fabric
	Lifecycle Lifecycle
}

func (m Mode) nodes() int {
	if m.Nodes <= 0 {
		return 1
	}
	return m.Nodes
}

func (m Mode) String() string {
	eng := "perelem"
	if m.Engine == Block {
		eng = "block"
	}
	switch m.Exec {
	case Seq:
		return eng + "/seq"
	case LocalPar:
		return eng + "/localpar"
	}
	s := fmt.Sprintf("%s/par@%d", eng, m.nodes())
	if m.Fabric == Lossy {
		s += "/lossy"
	}
	if m.Lifecycle == Resume {
		s += "/resume"
	}
	return s
}

// Options tunes a run. The zero value is valid.
type Options struct {
	// Chunk is the fixed chunk width for the chunked executors (default
	// core.DetChunk). Shrunk reproducers use small chunks so minimal
	// failing pipelines stay minimal.
	Chunk int
	// Cores is the pool width for LocalPar and the per-node core count for
	// Par (default 4).
	Cores int
	// RefLimit bounds reference-semantics intermediate slices (default
	// 1<<20 elements).
	RefLimit int
	// legacyFSum reintroduces the pre-fix distributed float reduction —
	// per-node left folds over a node-count-dependent grouping — in Par
	// modes. It exists so tests can prove the oracle catches exactly the
	// class of divergence the deterministic reductions fixed.
	legacyFSum bool
}

func (o Options) chunk() int {
	if o.Chunk <= 0 {
		return core.DetChunk
	}
	return o.Chunk
}

func (o Options) cores() int {
	if o.Cores <= 0 {
		return 4
	}
	return o.Cores
}

func (o Options) refLimit() int {
	if o.RefLimit <= 0 {
		return 1 << 20
	}
	return o.RefLimit
}

// HistBins is the histogram width every mode computes.
const HistBins = 64

// Obs is the observation a mode produces: every consumer family the
// iterator library offers, computed through the engine under test.
type Obs struct {
	Elems []int64 // ToSlice
	Count int64   // Count
	Sum   int64   // integer Sum
	Hist  []int64 // Histogram over ((v mod 64)+64) mod 64
	FSum  float64 // float64 Sum of v*0.1
	FAbs  float64 // float64 Sum of |v*0.1| — the conditioning scale for FSum
}

// observe consumes it once per consumer, through whichever engine is
// active. Folds are in element order, so within one contiguous range the
// result is engine- and schedule-independent.
func observe(it iter.Iter[int64]) Obs {
	fit := iter.Map(func(v int64) float64 { return float64(v) * 0.1 }, it)
	bins := iter.Map(func(v int64) int { return int(((v % HistBins) + HistBins) % HistBins) }, it)
	return Obs{
		Elems: iter.ToSlice(it),
		Count: int64(iter.Count(it)),
		Sum:   iter.Sum(it),
		Hist:  iter.Histogram(HistBins, bins),
		FSum:  iter.Sum(fit),
		FAbs:  iter.Reduce(fit, 0.0, func(a, v float64) float64 { return a + math.Abs(v) }),
	}
}

// mergeObs combines per-chunk observations, in chunk order. Integer fields
// merge exactly (concatenation and addition commute with chunking); the
// float sums combine with the fixed tree — matching core's deterministic
// reductions — unless legacyNodes > 0 selects the pre-fix node-grouped
// left fold (test knob).
func mergeObs(parts []Obs, legacyNodes int) Obs {
	out := Obs{Hist: make([]int64, HistBins)}
	fs := make([]float64, len(parts))
	fa := make([]float64, len(parts))
	for i, p := range parts {
		out.Elems = append(out.Elems, p.Elems...)
		out.Count += p.Count
		out.Sum += p.Sum
		for b, v := range p.Hist {
			out.Hist[b] += v
		}
		fs[i], fa[i] = p.FSum, p.FAbs
	}
	add := func(a, b float64) float64 { return a + b }
	if legacyNodes > 0 {
		out.FSum = legacyFold(fs, legacyNodes)
		out.FAbs = legacyFold(fa, legacyNodes)
	} else {
		out.FSum = core.CombineTree(fs, 0, add)
		out.FAbs = core.CombineTree(fa, 0, add)
	}
	return out
}

// legacyFold reproduces the reduction shape the deterministic skeletons
// replaced: chunk partials grouped by the node partition, each group left-
// folded on its node, the per-node partials left-folded at the master. Its
// rounding depends on the node count — the bug the oracle exists to catch.
func legacyFold(vs []float64, nodes int) float64 {
	total := 0.0
	for _, r := range domain.BlockPartition(len(vs), nodes) {
		part := 0.0
		for _, v := range vs[r.Lo:r.Hi] {
			part += v //lint:allow floatdet deliberately reproduces the node-count-dependent legacy fold the oracle regression-tests
		}
		total += part //lint:allow floatdet deliberately reproduces the node-count-dependent legacy fold the oracle regression-tests
	}
	return total
}

// chunkRanges cuts the pipeline's outer domain into fixed-width chunks at
// absolute offsets. ok is false for unsplittable pipelines (stepper-rooted
// after Take/Drop/Chain/Scan), which execute as one whole-domain piece.
func chunkRanges(it iter.Iter[int64], chunk int) ([]domain.Range, bool) {
	n, known := it.OuterLen()
	if !known || !it.CanSplit() {
		return nil, false
	}
	return domain.ChunkPartition(n, chunk), true
}

// runSeq is the Seq executor: plain consumers on the calling goroutine.
func runSeq(p Pipeline) Obs {
	return observe(p.Build())
}

// runLocalPar is the LocalPar executor: per-chunk observations computed on
// a work-stealing pool, merged in chunk order. Any pool width or steal
// schedule produces identical bytes.
func runLocalPar(p Pipeline, opt Options) Obs {
	it := p.Build()
	chunks, ok := chunkRanges(it, opt.chunk())
	if !ok {
		return mergeObs([]Obs{observe(it)}, 0)
	}
	parts := make([]Obs, len(chunks))
	if len(chunks) > 0 {
		pool := sched.NewPool(opt.cores())
		pool.ParallelFor(len(chunks), 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				parts[i] = observe(iter.Split(it, chunks[i]))
			}
		})
		pool.Close()
	}
	return mergeObs(parts, 0)
}

// Run executes the pipeline under one mode and returns its observation.
func Run(p Pipeline, m Mode, opt Options) (Obs, error) {
	prev := iter.SetBlockDriver(m.Engine == Block)
	defer iter.SetBlockDriver(prev)
	switch m.Exec {
	case Seq:
		return runSeq(p), nil
	case LocalPar:
		return runLocalPar(p, opt), nil
	case Par:
		return runPar(p, m, opt)
	}
	return Obs{}, fmt.Errorf("diffcheck: unknown exec %d", m.Exec)
}
