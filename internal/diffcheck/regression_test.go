// Committed minimized reproducers from the differential oracle. Each test
// here started life as a diffcheck.Reproducer snippet (which is why the
// package is diffcheck_test: snippets compile verbatim). A test in this
// file must stay green — it pins a divergence that was found and fixed.
package diffcheck_test

import (
	"testing"

	"triolet/internal/diffcheck"
	"triolet/internal/iter"
)

// Minimized by diffcheck.Shrink from the node-count-dependent distributed
// float reduction (fixed by internal/core's deterministic reductions):
// thirteen ones — four chunks at Chunk=4 — summed as v*0.1 diverged in the
// last bit between 1 and 2 nodes, because 0.1 is inexact and the per-node
// left folds grouped the chunk partials differently.
func TestDiffcheckRegression(t *testing.T) {
	p := diffcheck.Pipeline{
		Seed: []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		Ops:  []iter.PipeOp{},
	}
	a := diffcheck.Mode{Engine: diffcheck.Block, Exec: diffcheck.Par, Nodes: 1}
	b := diffcheck.Mode{Engine: diffcheck.Block, Exec: diffcheck.Par, Nodes: 2}
	opt := diffcheck.Options{Chunk: 4, Cores: 4}
	m, err := diffcheck.Compare(p, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal(m)
	}
}

// The same shape through the whole quick matrix, with elements odd enough
// to light up every observation field.
func TestDiffcheckRegressionAllFields(t *testing.T) {
	p := diffcheck.Pipeline{
		Seed: []int64{1 << 55, 1, -63, 64, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		Ops:  []iter.PipeOp{{Kind: 0, A: 2, B: 3}},
	}
	for _, modes := range [][]diffcheck.Mode{
		{
			{Engine: diffcheck.PerElement, Exec: diffcheck.Seq},
			{Engine: diffcheck.Block, Exec: diffcheck.LocalPar},
			{Engine: diffcheck.Block, Exec: diffcheck.Par, Nodes: 1},
			{Engine: diffcheck.PerElement, Exec: diffcheck.Par, Nodes: 2},
			{Engine: diffcheck.Block, Exec: diffcheck.Par, Nodes: 4},
		},
	} {
		m, err := diffcheck.CheckModes(p, modes, diffcheck.Options{Chunk: 4})
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			t.Fatal(m)
		}
	}
}
