package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/stencil"
)

// Stencil differential oracle: the iterated 2-D stencil skeleton executed
// under {seq, pool, farm@N} × {lossless, lossy} × {fresh, WAL-resume} must
// produce identical final grids. The contract is strict bit-identity even
// for float64 grids — a stencil's per-cell arithmetic order is fixed by the
// kernel, so unlike reductions there is no tree-shape tolerance to grant.

// StencilMode is one cell of the stencil execution matrix. Exec reuses the
// pipeline oracle's levels: Seq and LocalPar are local sweeps, Par is the
// farm-backed skeleton on a virtual cluster.
type StencilMode struct {
	Exec      Exec
	Nodes     int // Par only; 0 means 1
	Fabric    Fabric
	Lifecycle Lifecycle
}

func (m StencilMode) nodes() int {
	if m.Nodes <= 0 {
		return 1
	}
	return m.Nodes
}

func (m StencilMode) String() string {
	switch m.Exec {
	case Seq:
		return "stencil/seq"
	case LocalPar:
		return "stencil/pool"
	}
	s := fmt.Sprintf("stencil/farm@%d", m.nodes())
	if m.Fabric == Lossy {
		s += "/lossy"
	}
	if m.Lifecycle == Resume {
		s += "/resume"
	}
	return s
}

// StencilModes is the gate matrix: local executions, every farm node count
// fresh, and the chaos cells (lossy fabric, and lossy with a mid-job master
// kill resumed from the WAL).
func StencilModes() []StencilMode {
	modes := []StencilMode{{Exec: Seq}, {Exec: LocalPar}}
	for _, n := range []int{1, 2, 4, 8} {
		modes = append(modes, StencilMode{Exec: Par, Nodes: n})
	}
	modes = append(modes,
		StencilMode{Exec: Par, Nodes: 4, Fabric: Lossy},
		StencilMode{Exec: Par, Nodes: 4, Fabric: Lossy, Lifecycle: Resume},
	)
	return modes
}

// StencilCase describes one oracle workload over a deterministically seeded
// grid.
type StencilCase struct {
	H, W  int
	Seed  uint64
	Iters int
}

// The oracle's registered kernels. sum exercises every neighborhood read at
// the declared radius (any mis-resolved boundary index changes the result);
// heat is the float contract witness.
var (
	oracleSum = stencil.NewFarmOp("diffcheck.sum", serial.I64C(), serial.I64s(),
		func(nb stencil.Neighborhood[int64]) int64 {
			r := nb.Radius()
			var s int64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					s += nb.At(dy, dx)
				}
			}
			return s
		})
	oracleHeat = stencil.NewFarmOp("diffcheck.heat", serial.F64C(), serial.F64s(),
		func(nb stencil.Neighborhood[float64]) float64 {
			c := nb.At(0, 0)
			return c + 0.2*((nb.At(-1, 0)+nb.At(1, 0))+(nb.At(0, -1)+nb.At(0, 1))-4*c)
		})
)

// stencilGrid fills a deterministic H×W grid (same LCG family as the
// pipeline oracle's seeds).
func stencilGrid(c StencilCase) iter.Matrix2[int64] {
	g := iter.Matrix2[int64]{H: c.H, W: c.W, Data: make([]int64, c.H*c.W)}
	x := c.Seed*2862933555777941757 + 3037000493
	for i := range g.Data {
		x = x*2862933555777941757 + 3037000493
		g.Data[i] = int64(x>>40) - 1<<22
	}
	return g
}

// RunStencil executes one case under one mode and returns the final grid.
func RunStencil[T comparable](op *stencil.FarmOp[T], g iter.Matrix2[T], par stencil.Params[T],
	iters int, m StencilMode, opt Options) ([]T, error) {
	fn := op.Fn()
	switch m.Exec {
	case Seq:
		return stencil.Stencil[T]{Params: par, Fn: fn}.Iterate(nil, g, iters).Data, nil
	case LocalPar:
		pool := sched.NewPool(opt.cores())
		defer pool.Close()
		return stencil.Stencil[T]{Params: par, Fn: fn}.Iterate(pool, g, iters).Data, nil
	case Par:
		if m.Lifecycle == Resume {
			return runStencilResume(op, g, par, iters, m, opt)
		}
		var out iter.Matrix2[T]
		_, err := cluster.Run(stencilClusterConfig(m, opt), func(s *cluster.Session) error {
			var err error
			out, err = op.Run(s, g, par, iters, stencil.FarmRunOptions{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("diffcheck: %s: %w", m, err)
		}
		return out.Data, nil
	}
	return nil, fmt.Errorf("diffcheck: unknown exec %d", m.Exec)
}

func stencilClusterConfig(m StencilMode, opt Options) cluster.Config {
	cfg := cluster.Config{Nodes: m.nodes(), CoresPerNode: opt.cores()}
	if m.Fabric == Lossy {
		cfg.Fault = lossyProfile(997)
		// A tighter retry ladder than fastRetry: the iterated stencil runs
		// several farm rounds back-to-back, so a single send that rides the
		// ladder to exhaustion (peer declared dead, task requeued — exactly
		// the chaos being exercised) should cost a fraction of a second,
		// not the multi-second worst case of the pipeline oracle's ladder.
		cfg.Reliable = &mpi.ReliableConfig{
			AckTimeout:    500 * time.Microsecond,
			Retries:       60,
			MaxAckTimeout: 10 * time.Millisecond,
		}
	}
	return cfg
}

// runStencilResume is the stencil oracle's kill-and-resume cell, mirroring
// runParResume: the first session dies by context cancel once the WAL holds
// a few slab records (mid-iteration — each sweep is its own WAL job), and a
// second session resumes from the reopened WAL. Completed sweeps replay
// from their records; the interrupted sweep re-runs only unfinished slabs.
func runStencilResume[T comparable](op *stencil.FarmOp[T], g iter.Matrix2[T], par stencil.Params[T],
	iters int, m StencilMode, opt Options) ([]T, error) {
	dir, err := os.MkdirTemp("", "diffcheck-stencil-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "stencil.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	const job = "diffcheck-stencil"
	cfg := stencilClusterConfig(m, opt)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for {
			select {
			case <-stopKiller:
				return
			default:
			}
			if wal.Records() >= 2 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var out iter.Matrix2[T]
	_, firstErr := cluster.RunCtx(ctx, cfg, func(s *cluster.Session) error {
		var err error
		out, err = op.Run(s, g, par, iters,
			stencil.FarmRunOptions{Farm: cluster.FarmOptions{Checkpoint: wal, Job: job}})
		return err
	})
	close(stopKiller)
	<-killerDone
	if cerr := wal.Close(); cerr != nil {
		return nil, cerr
	}
	if firstErr == nil {
		// The job outran the killer: a complete fresh run is still a valid
		// observation for this mode.
		return out.Data, nil
	}
	if !errors.Is(firstErr, context.Canceled) {
		return nil, fmt.Errorf("diffcheck: %s first life: %w", m, firstErr)
	}
	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: reopen stencil WAL: %w", err)
	}
	defer wal2.Close()
	_, err = cluster.Run(cfg, func(s *cluster.Session) error {
		var err error
		out, err = op.Run(s, g, par, iters,
			stencil.FarmRunOptions{Farm: cluster.FarmOptions{Checkpoint: wal2, Job: job}})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("diffcheck: %s second life: %w", m, err)
	}
	return out.Data, nil
}

// StencilMismatch reports the first diverging cell between two modes.
type StencilMismatch struct {
	Case   StencilCase
	Par    string // Params description (radius/boundary)
	A, B   StencilMode
	Cell   int
	AV, BV string
}

func (m *StencilMismatch) Error() string {
	return fmt.Sprintf("diffcheck: stencil %dx%d seed %d iters %d %s: %s and %s diverge at cell %d: %s vs %s",
		m.Case.H, m.Case.W, m.Case.Seed, m.Case.Iters, m.Par, m.A, m.B, m.Cell, m.AV, m.BV)
}

// checkStencilModes runs one workload under every mode and demands
// bit-identity with the Seq observation.
func checkStencilModes[T comparable](op *stencil.FarmOp[T], g iter.Matrix2[T], par stencil.Params[T],
	c StencilCase, modes []StencilMode, opt Options) (*StencilMismatch, error) {
	ref := StencilMode{Exec: Seq}
	want, err := RunStencil(op, g, par, c.Iters, ref, opt)
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("r%d/%v", par.Radius, par.Boundary)
	for _, m := range modes {
		if m == ref {
			continue
		}
		got, err := RunStencil(op, g, par, c.Iters, m, opt)
		if err != nil {
			return nil, err
		}
		if len(got) != len(want) {
			return nil, fmt.Errorf("diffcheck: stencil %s: %d cells, want %d", m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return &StencilMismatch{
					Case: c, Par: desc, A: ref, B: m, Cell: i,
					AV: fmt.Sprint(want[i]), BV: fmt.Sprint(got[i]),
				}, nil
			}
		}
	}
	return nil, nil
}

// CheckStencilI64 runs the integer stencil oracle (full-window sum kernel).
func CheckStencilI64(c StencilCase, par stencil.Params[int64], modes []StencilMode, opt Options) (*StencilMismatch, error) {
	return checkStencilModes(oracleSum, stencilGrid(c), par, c, modes, opt)
}

// CheckStencilHeat runs the float stencil oracle (5-point heat kernel,
// radius 1): bit-identity across modes is the FP contract here, because the
// per-cell arithmetic order never varies with the execution mode.
func CheckStencilHeat(c StencilCase, boundary stencil.Boundary, border float64, modes []StencilMode, opt Options) (*StencilMismatch, error) {
	gi := stencilGrid(c)
	g := iter.Matrix2[float64]{H: gi.H, W: gi.W, Data: make([]float64, len(gi.Data))}
	for i, v := range gi.Data {
		g.Data[i] = float64(v%997) / 16
	}
	par := stencil.Params[float64]{Radius: 1, Boundary: boundary, Border: border}
	return checkStencilModes(oracleHeat, g, par, c, modes, opt)
}
