package diffcheck

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"triolet/internal/iter"
)

// TestSoakRandomPipelines is the nightly deep soak: long random pipeline
// streams through the full mode matrix (including the lossy and resume
// cells), intended to run under -race. Gated behind DIFFCHECK_SOAK so PR
// gates stay fast; DIFFCHECK_SOAK_SEED pins the stream for replay.
func TestSoakRandomPipelines(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("DIFFCHECK_SOAK"))
	if n <= 0 {
		t.Skip("set DIFFCHECK_SOAK=<iterations> to run the deep soak")
	}
	seed := int64(1)
	if s, err := strconv.ParseInt(os.Getenv("DIFFCHECK_SOAK_SEED"), 10, 64); err == nil {
		seed = s
	}
	rng := rand.New(rand.NewSource(seed))
	t.Logf("soak: %d pipelines, stream seed %d", n, seed)
	checked := 0
	for checked < n {
		p := randomPipeline(rng)
		if _, ok := p.Ref(100000); !ok {
			continue
		}
		// The full matrix on every 8th pipeline; the quick matrix otherwise.
		modes := quickMatrix()
		if checked%8 == 0 {
			modes = fullMatrix()
		}
		mustAgree(t, p, modes, Options{})
		checked++
		if checked%50 == 0 {
			t.Logf("soak: %d/%d pipelines agree", checked, n)
		}
	}
}

func randomPipeline(rng *rand.Rand) Pipeline {
	n := rng.Intn(2000)
	seed := make([]int64, n)
	for i := range seed {
		switch rng.Intn(10) {
		case 0:
			seed[i] = 1 << uint(40+rng.Intn(15)) // magnitude spikes
		case 1:
			seed[i] = -(1 << uint(40+rng.Intn(15)))
		default:
			seed[i] = rng.Int63n(20001) - 10000
		}
	}
	ops := make([]iter.PipeOp, rng.Intn(6))
	for i := range ops {
		ops[i] = iter.PipeOp{
			Kind: uint8(rng.Intn(256)),
			A:    uint8(rng.Intn(256)),
			B:    uint8(rng.Intn(256)),
		}
	}
	return Pipeline{Seed: seed, Ops: ops}
}

// FuzzCrossMode feeds arbitrary bytes in as op streams over a fixed
// adversarial seed and demands cross-mode agreement. The corpus doubles as
// the replay set for divergences the soak finds.
func FuzzCrossMode(f *testing.F) {
	f.Add([]byte{0, 2, 3})
	f.Add([]byte{1, 1, 0, 0, 1, 4})
	f.Add([]byte{2, 2, 0})
	f.Add([]byte{3, 35, 0, 6, 0, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 15 { // at most 5 ops
			raw = raw[:15]
		}
		ops := make([]iter.PipeOp, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			ops = append(ops, iter.PipeOp{Kind: raw[i], A: raw[i+1], B: raw[i+2]})
		}
		p := Pipeline{Seed: spikeSeed(300), Ops: ops}
		if _, ok := p.Ref(50000); !ok {
			t.Skip("pipeline explodes")
		}
		m, err := CheckModes(p, quickMatrix(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			t.Fatalf("%s", m)
		}
	})
}
