package serial

import (
	"testing"
	"testing/quick"
)

func roundTripGraph(t *testing.T, root *Node) *Node {
	t.Helper()
	w := NewWriter(0)
	EncodeGraph(w, root)
	got, err := DecodeGraph(NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestGraphNilRoot(t *testing.T) {
	if got := roundTripGraph(t, nil); got != nil {
		t.Fatalf("nil graph decoded to %+v", got)
	}
}

func TestGraphLinear(t *testing.T) {
	c := &Node{Payload: []byte("c")}
	b := &Node{Payload: []byte("b"), Refs: []*Node{c}}
	a := &Node{Payload: []byte("a"), Refs: []*Node{b}}
	got := roundTripGraph(t, a)
	if string(got.Payload) != "a" || string(got.Refs[0].Payload) != "b" ||
		string(got.Refs[0].Refs[0].Payload) != "c" {
		t.Fatal("linear chain mangled")
	}
}

func TestGraphSharedSubstructureTransmittedOnce(t *testing.T) {
	shared := &Node{Payload: make([]byte, 1000)}
	root := &Node{Refs: []*Node{
		{Payload: []byte("l"), Refs: []*Node{shared}},
		{Payload: []byte("r"), Refs: []*Node{shared}},
	}}
	w := NewWriter(0)
	EncodeGraph(w, root)
	// 4 nodes total; the 1000-byte payload must appear once, so the
	// encoding stays well under 2 copies.
	if w.Len() > 1500 {
		t.Fatalf("shared node duplicated: %d bytes", w.Len())
	}
	got := roundTripGraph(t, root)
	if got.Refs[0].Refs[0] != got.Refs[1].Refs[0] {
		t.Fatal("decoded sharing lost: subtrees no longer alias")
	}
}

func TestGraphCycle(t *testing.T) {
	a := &Node{Payload: []byte("a")}
	b := &Node{Payload: []byte("b"), Refs: []*Node{a}}
	a.Refs = []*Node{b} // a ↔ b
	got := roundTripGraph(t, a)
	if string(got.Payload) != "a" || string(got.Refs[0].Payload) != "b" {
		t.Fatal("cycle payloads wrong")
	}
	if got.Refs[0].Refs[0] != got {
		t.Fatal("cycle not rebuilt")
	}
	if GraphSize(got) != 2 {
		t.Fatalf("cycle size = %d", GraphSize(got))
	}
}

func TestGraphSelfLoopAndNilRef(t *testing.T) {
	a := &Node{Payload: []byte("self")}
	a.Refs = []*Node{a, nil}
	got := roundTripGraph(t, a)
	if got.Refs[0] != got {
		t.Fatal("self loop lost")
	}
	if got.Refs[1] != nil {
		t.Fatal("nil ref not preserved")
	}
}

func TestGraphSegRefs(t *testing.T) {
	table := NewSegmentTable()
	globals := []float64{1.5, 2.5, 3.5}
	id := table.Register(globals)

	n := &Node{SegRefs: []SegPtr{{Segment: id, Offset: 2}}}
	got := roundTripGraph(t, n)
	v, err := table.Resolve(got.SegRefs[0])
	if err != nil || v != 3.5 {
		t.Fatalf("resolve = %v, %v", v, err)
	}
}

func TestSegmentTableErrors(t *testing.T) {
	table := NewSegmentTable()
	id := table.Register([]float64{1})
	if _, err := table.Resolve(SegPtr{Segment: id + 9, Offset: 0}); err == nil {
		t.Fatal("unknown segment resolved")
	}
	if _, err := table.Resolve(SegPtr{Segment: id, Offset: 5}); err == nil {
		t.Fatal("out-of-range offset resolved")
	}
	if _, err := table.Resolve(SegPtr{Segment: id, Offset: -1}); err == nil {
		t.Fatal("negative offset resolved")
	}
}

func TestGraphCorruptHeaders(t *testing.T) {
	// Claimed node count larger than the buffer must fail cleanly.
	w := NewWriter(0)
	w.Int(1 << 40)
	if _, err := DecodeGraph(NewReader(w.Bytes())); err == nil {
		t.Fatal("absurd node count decoded")
	}
	// Reference to an out-of-range id.
	w = NewWriter(0)
	w.Int(1)        // one node
	w.RawBytes(nil) // payload
	w.Int(1)        // one ref
	w.Int(7)        // → node 7 (nonexistent)
	w.Int(0)        // no segrefs
	if _, err := DecodeGraph(NewReader(w.Bytes())); err == nil {
		t.Fatal("dangling reference decoded")
	}
	// Truncated stream.
	w2 := NewWriter(0)
	a := &Node{Payload: []byte("abcdef"), Refs: []*Node{{Payload: []byte("x")}}}
	EncodeGraph(w2, a)
	full := w2.Bytes()
	if _, err := DecodeGraph(NewReader(full[:len(full)-3])); err == nil {
		t.Fatal("truncated graph decoded")
	}
}

// Property: random DAGs round-trip with identical shape (sizes, payloads,
// reference structure by id).
func TestGraphRandomDAGRoundTrip(t *testing.T) {
	prop := func(payloads [][]byte, edges []uint16) bool {
		if len(payloads) == 0 {
			return true
		}
		if len(payloads) > 40 {
			payloads = payloads[:40]
		}
		nodes := make([]*Node, len(payloads))
		for i, p := range payloads {
			nodes[i] = &Node{Payload: p}
		}
		// Add forward edges (DAG) plus some back edges (cycles) from the
		// random edge list.
		for _, e := range edges {
			from := int(e>>8) % len(nodes)
			to := int(e&0xff) % len(nodes)
			nodes[from].Refs = append(nodes[from].Refs, nodes[to])
		}
		root := &Node{Refs: nodes}
		got := roundTripGraph(t, root)
		if GraphSize(got) != GraphSize(root) {
			return false
		}
		if len(got.Refs) != len(nodes) {
			return false
		}
		for i := range nodes {
			if string(got.Refs[i].Payload) != string(nodes[i].Payload) {
				return false
			}
			if len(got.Refs[i].Refs) != len(nodes[i].Refs) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
