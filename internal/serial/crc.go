package serial

import (
	"encoding/binary"
	"hash/crc32"
)

// CRC framing: the convention shared by every checksummed record in the
// runtime — the ack/retry wire frames (internal/mpi) and the checkpoint
// WAL (internal/checkpoint). A frame is body ++ crc32(body), little-endian
// IEEE, so a flipped bit anywhere in the record fails verification and the
// reader treats the record as corruption in flight (or a torn tail on
// disk) rather than decoding garbage.

// FinishCRC appends the CRC-32 (IEEE) of everything written so far,
// closing the frame. Nothing may be written afterwards.
func (w *Writer) FinishCRC() {
	w.U32(crc32.ChecksumIEEE(w.buf))
}

// VerifyCRC splits a CRC-terminated frame into its body. ok is false when
// the frame is too short or the trailing checksum does not match.
func VerifyCRC(b []byte) (body []byte, ok bool) {
	if len(b) < 4 {
		return nil, false
	}
	body, sum := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sum) {
		return nil, false
	}
	return body, true
}
