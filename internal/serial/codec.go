package serial

import "triolet/internal/array"

// Codec serializes values of one type. Codecs compose: structured codecs
// are built from primitive ones the way Triolet derives serialization from
// algebraic data type definitions (paper §3.4).
type Codec[T any] interface {
	Encode(w *Writer, v T)
	Decode(r *Reader) T
}

// Funcs adapts an encode/decode function pair to a Codec.
type Funcs[T any] struct {
	Enc func(w *Writer, v T)
	Dec func(r *Reader) T
}

// Encode implements Codec.
func (f Funcs[T]) Encode(w *Writer, v T) { f.Enc(w, v) }

// Decode implements Codec.
func (f Funcs[T]) Decode(r *Reader) T { return f.Dec(r) }

// Marshal encodes v with c into a fresh byte slice.
func Marshal[T any](c Codec[T], v T) []byte {
	w := NewWriter(64)
	c.Encode(w, v)
	return w.Bytes()
}

// Unmarshal decodes a value of type T from b, reporting codec mismatches.
func Unmarshal[T any](c Codec[T], b []byte) (T, error) {
	r := NewReader(b)
	v := c.Decode(r)
	return v, r.Err()
}

// F64s is the codec for []float64 (block encoded).
func F64s() Codec[[]float64] {
	return Funcs[[]float64]{
		Enc: func(w *Writer, v []float64) { w.F64Slice(v) },
		Dec: func(r *Reader) []float64 { return r.F64Slice() },
	}
}

// F32s is the codec for []float32 (block encoded).
func F32s() Codec[[]float32] {
	return Funcs[[]float32]{
		Enc: func(w *Writer, v []float32) { w.F32Slice(v) },
		Dec: func(r *Reader) []float32 { return r.F32Slice() },
	}
}

// I64s is the codec for []int64 (block encoded).
func I64s() Codec[[]int64] {
	return Funcs[[]int64]{
		Enc: func(w *Writer, v []int64) { w.I64Slice(v) },
		Dec: func(r *Reader) []int64 { return r.I64Slice() },
	}
}

// Ints is the codec for []int.
func Ints() Codec[[]int] {
	return Funcs[[]int]{
		Enc: func(w *Writer, v []int) { w.IntSlice(v) },
		Dec: func(r *Reader) []int { return r.IntSlice() },
	}
}

// IntC is the codec for a single int.
func IntC() Codec[int] {
	return Funcs[int]{
		Enc: func(w *Writer, v int) { w.Int(v) },
		Dec: func(r *Reader) int { return r.Int() },
	}
}

// I64C is the codec for a single int64.
func I64C() Codec[int64] {
	return Funcs[int64]{
		Enc: func(w *Writer, v int64) { w.U64(uint64(v)) },
		Dec: func(r *Reader) int64 { return int64(r.U64()) },
	}
}

// F64C is the codec for a single float64.
func F64C() Codec[float64] {
	return Funcs[float64]{
		Enc: func(w *Writer, v float64) { w.F64(v) },
		Dec: func(r *Reader) float64 { return r.F64() },
	}
}

// SliceOf lifts an element codec to a length-prefixed slice codec.
func SliceOf[T any](elem Codec[T]) Codec[[]T] {
	return Funcs[[]T]{
		Enc: func(w *Writer, v []T) {
			w.Int(len(v))
			for _, x := range v {
				elem.Encode(w, x)
			}
		},
		Dec: func(r *Reader) []T {
			n := r.Int()
			if r.Err() != nil || n < 0 || n > r.Remaining() {
				// A structured slice element occupies at least one byte, so
				// n > Remaining can only be a corrupt or mismatched stream;
				// refuse to allocate for it.
				r.fail()
				return nil
			}
			out := make([]T, 0, n)
			for range n {
				out = append(out, elem.Decode(r))
				if r.Err() != nil {
					return nil
				}
			}
			return out
		},
	}
}

// PairOf combines two codecs into a codec for a pair, encoded first-then-
// second.
func PairOf[A, B any](a Codec[A], b Codec[B]) Codec[PairV[A, B]] {
	return Funcs[PairV[A, B]]{
		Enc: func(w *Writer, v PairV[A, B]) {
			a.Encode(w, v.Fst)
			b.Encode(w, v.Snd)
		},
		Dec: func(r *Reader) PairV[A, B] {
			return PairV[A, B]{Fst: a.Decode(r), Snd: b.Decode(r)}
		},
	}
}

// PairV is the serializable pair used by PairOf.
type PairV[A, B any] struct {
	Fst A
	Snd B
}

// MatrixF64 is the codec for array.Matrix[float64]: shape header plus block
// encoded data.
func MatrixF64() Codec[array.Matrix[float64]] {
	return Funcs[array.Matrix[float64]]{
		Enc: func(w *Writer, m array.Matrix[float64]) {
			w.Int(m.H)
			w.Int(m.W)
			w.F64Slice(m.Data)
		},
		Dec: func(r *Reader) array.Matrix[float64] {
			h := r.Int()
			wd := r.Int()
			data := r.F64Slice()
			if r.Err() != nil || len(data) != h*wd {
				r.fail()
				return array.Matrix[float64]{}
			}
			return array.Matrix[float64]{H: h, W: wd, Data: data}
		},
	}
}

// MatrixF32 is the codec for array.Matrix[float32].
func MatrixF32() Codec[array.Matrix[float32]] {
	return Funcs[array.Matrix[float32]]{
		Enc: func(w *Writer, m array.Matrix[float32]) {
			w.Int(m.H)
			w.Int(m.W)
			w.F32Slice(m.Data)
		},
		Dec: func(r *Reader) array.Matrix[float32] {
			h := r.Int()
			wd := r.Int()
			data := r.F32Slice()
			if r.Err() != nil || len(data) != h*wd {
				r.fail()
				return array.Matrix[float32]{}
			}
			return array.Matrix[float32]{H: h, W: wd, Data: data}
		},
	}
}

// Unit is the codec for struct{} (zero bytes), used for control messages.
func Unit() Codec[struct{}] {
	return Funcs[struct{}]{
		Enc: func(*Writer, struct{}) {},
		Dec: func(*Reader) struct{} { return struct{}{} },
	}
}
