package serial

import (
	"fmt"
	"unsafe"
)

// Zero-copy wire representation for pointer-free element slices.
//
// The generic codecs in this package copy every element through a Writer
// (encode) and a Reader (decode). For the bulk payloads the runtime actually
// ships — float and integer arrays — that copy buys nothing on the
// in-process fabric: the bytes are already laid out exactly as the wire
// format prescribes (fixed-width little-endian elements, no padding, no
// pointers). Raw exposes that layout directly: encoding aliases the backing
// array as a []byte, and decoding aliases the received payload as a []E
// when alignment allows, copying only when it does not.
//
// The wire format is the element body of the corresponding slice codec —
// Raw(xs) equals Marshal(F64s(), xs) minus the leading 8-byte length prefix
// (the payload length carries the count) — so Raw payloads interoperate
// with readers that know the element type.
//
// Aliasing contract: the caller of Raw must not mutate xs until every
// consumer of the returned bytes is done with them, and a consumer of
// RawView must treat the result as read-only unless it owns the input
// buffer. The transport layer upholds its side via Fabric.SendShared,
// which meters the payload like any send but skips the defensive copy and
// copies on write under corrupt-fault injection.

// RawElem constrains Raw's element types to pointer-free fixed-width
// numerics whose in-memory layout equals their wire layout on a
// little-endian host.
type RawElem interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// hostLittleEndian reports whether the host stores integers little-endian;
// on big-endian hosts Raw and RawView fall back to byte-swapping copies so
// the wire format stays little-endian everywhere.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// Raw returns the little-endian wire bytes of xs. On a little-endian host
// this is a zero-copy alias of xs's backing array: the caller must not
// mutate xs while the bytes are in flight. A nil or empty slice encodes as
// nil.
func Raw[E RawElem](xs []E) []byte {
	if len(xs) == 0 {
		return nil
	}
	size := int(unsafe.Sizeof(xs[0]))
	if !hostLittleEndian {
		return rawSwap(xs, size)
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*size)
}

// RawView decodes a Raw payload as a []E. On a little-endian host with an
// element-aligned buffer the result aliases b — zero copies, read-only
// unless the caller owns b; otherwise the elements are copied out. The
// payload length must be a multiple of the element size.
func RawView[E RawElem](b []byte) ([]E, error) {
	var zero E
	size := int(unsafe.Sizeof(zero))
	if len(b)%size != 0 {
		return nil, fmt.Errorf("serial: raw payload of %d bytes is not a multiple of element size %d", len(b), size)
	}
	n := len(b) / size
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%uintptr(unsafe.Alignof(zero)) == 0 {
		return unsafe.Slice((*E)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	return rawCopyOut[E](b, size, n), nil
}

// RawCopy decodes a Raw payload into freshly allocated elements the caller
// may mutate freely, regardless of the payload's alignment.
func RawCopy[E RawElem](b []byte) ([]E, error) {
	var zero E
	size := int(unsafe.Sizeof(zero))
	if len(b)%size != 0 {
		return nil, fmt.Errorf("serial: raw payload of %d bytes is not a multiple of element size %d", len(b), size)
	}
	n := len(b) / size
	if n == 0 {
		return nil, nil
	}
	return rawCopyOut[E](b, size, n), nil
}

// RawAliases reports whether RawView[E] of b would alias b rather than
// copy: exported so tests can pin down when the zero-copy path engages.
func RawAliases[E RawElem](b []byte) bool {
	var zero E
	size := int(unsafe.Sizeof(zero))
	return hostLittleEndian && len(b) > 0 && len(b)%size == 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(b)))%uintptr(unsafe.Alignof(zero)) == 0
}

// rawSwap encodes xs element-wise with reversed byte order — the
// big-endian-host fallback that keeps the wire little-endian.
func rawSwap[E RawElem](xs []E, size int) []byte {
	src := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*size)
	out := make([]byte, len(src))
	for i := 0; i < len(out); i += size {
		for j := 0; j < size; j++ {
			out[i+j] = src[i+size-1-j]
		}
	}
	return out
}

// rawCopyOut decodes n little-endian elements of the given size out of b
// into fresh storage, honoring host byte order.
func rawCopyOut[E RawElem](b []byte, size, n int) []E {
	out := make([]E, n)
	dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*size)
	if hostLittleEndian {
		copy(dst, b)
		return out
	}
	for i := 0; i < len(b); i += size {
		for j := 0; j < size; j++ {
			dst[i+j] = b[i+size-1-j]
		}
	}
	return out
}
