package serial

import "testing"

// Serialization throughput benchmarks: the block-copy numeric paths are
// what the paper's runtime relies on to keep message construction cheap
// ("such arrays are serialized using a block copy to minimize
// serialization time", §3.4).

var benchF64 = make([]float64, 1<<17) // 1 MB
var benchF32 = make([]float32, 1<<18) // 1 MB
var benchSinkB []byte
var benchSinkF []float64

func BenchmarkF64SliceEncode(b *testing.B) {
	w := NewWriter(8*len(benchF64) + 16)
	b.SetBytes(int64(8 * len(benchF64)))
	for b.Loop() {
		w.Reset()
		w.F64Slice(benchF64)
		benchSinkB = w.Bytes()
	}
}

func BenchmarkF64SliceDecode(b *testing.B) {
	w := NewWriter(8*len(benchF64) + 16)
	w.F64Slice(benchF64)
	buf := w.Bytes()
	b.SetBytes(int64(8 * len(benchF64)))
	for b.Loop() {
		benchSinkF = NewReader(buf).F64Slice()
	}
}

func BenchmarkF32SliceRoundTrip(b *testing.B) {
	b.SetBytes(int64(4 * len(benchF32)))
	for b.Loop() {
		w := NewWriter(4*len(benchF32) + 16)
		w.F32Slice(benchF32)
		_ = NewReader(w.Bytes()).F32Slice()
	}
}

func BenchmarkStructuredSliceOf(b *testing.B) {
	// Composed codec path: slice-of-slices with per-element dispatch, the
	// slow path the block copies avoid.
	chunks := make([][]float64, 64)
	for i := range chunks {
		chunks[i] = benchF64[:1024]
	}
	c := SliceOf(F64s())
	b.SetBytes(int64(64 * 1024 * 8))
	for b.Loop() {
		buf := Marshal(c, chunks)
		if _, err := Unmarshal(c, buf); err != nil {
			b.Fatal(err)
		}
	}
}
