package serial_test

import (
	"fmt"

	"triolet/internal/serial"
)

// Codecs compose: a slice-of-pairs codec built from primitives, round-
// tripped through bytes as it would be across the cluster fabric.
func ExampleMarshal() {
	codec := serial.SliceOf(serial.PairOf(serial.IntC(), serial.F64s()))
	in := []serial.PairV[int, []float64]{
		{Fst: 1, Snd: []float64{0.5}},
		{Fst: 2, Snd: []float64{1.5, 2.5}},
	}
	out, err := serial.Unmarshal(codec, serial.Marshal(codec, in))
	fmt.Println(err, out[1].Fst, out[1].Snd)
	// Output: <nil> 2 [1.5 2.5]
}

// Object graphs serialize transitively: shared substructure crosses the
// wire once and is rebuilt as sharing, exactly as the paper's runtime
// serializes heap objects (§3.4).
func ExampleEncodeGraph() {
	shared := &serial.Node{Payload: []byte("shared")}
	root := &serial.Node{Refs: []*serial.Node{
		{Payload: []byte("left"), Refs: []*serial.Node{shared}},
		{Payload: []byte("right"), Refs: []*serial.Node{shared}},
	}}
	w := serial.NewWriter(0)
	serial.EncodeGraph(w, root)
	got, _ := serial.DecodeGraph(serial.NewReader(w.Bytes()))
	fmt.Println(serial.GraphSize(got), got.Refs[0].Refs[0] == got.Refs[1].Refs[0])
	// Output: 4 true
}
