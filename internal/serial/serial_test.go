package serial

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(200)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.Int(-42)
	w.F64(math.Pi)
	w.F32(2.5)
	w.String("héllo")
	w.RawBytes([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if r.U8() != 200 || !r.Bool() || r.Bool() {
		t.Fatal("u8/bool wrong")
	}
	if r.U32() != 0xDEADBEEF || r.U64() != 1<<60 || r.Int() != -42 {
		t.Fatal("ints wrong")
	}
	if r.F64() != math.Pi || r.F32() != 2.5 {
		t.Fatal("floats wrong")
	}
	if r.String() != "héllo" {
		t.Fatal("string wrong")
	}
	b := r.RawBytes()
	if len(b) != 3 || b[2] != 3 {
		t.Fatalf("raw = %v", b)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestShortBufferSticky(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.U64() != 0 {
		t.Fatal("short read returned nonzero")
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v", r.Err())
	}
	// sticky: subsequent reads stay zero, error unchanged
	first := r.Err()
	if r.Int() != 0 || r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestSliceRoundTrips(t *testing.T) {
	w := NewWriter(0)
	f64 := []float64{1.5, -2.25, math.Inf(1), 0}
	f32 := []float32{1, 2, 3}
	i64 := []int64{-1, 0, 1 << 40}
	ints := []int{5, -6}
	w.F64Slice(f64)
	w.F32Slice(f32)
	w.I64Slice(i64)
	w.IntSlice(ints)

	r := NewReader(w.Bytes())
	gf64 := r.F64Slice()
	gf32 := r.F32Slice()
	gi64 := r.I64Slice()
	gints := r.IntSlice()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	for i, v := range f64 {
		if gf64[i] != v {
			t.Fatalf("f64[%d] = %v", i, gf64[i])
		}
	}
	for i, v := range f32 {
		if gf32[i] != v {
			t.Fatalf("f32[%d] = %v", i, gf32[i])
		}
	}
	for i, v := range i64 {
		if gi64[i] != v {
			t.Fatalf("i64[%d] = %v", i, gi64[i])
		}
	}
	for i, v := range ints {
		if gints[i] != v {
			t.Fatalf("ints[%d] = %v", i, gints[i])
		}
	}
}

func TestEmptySlices(t *testing.T) {
	w := NewWriter(0)
	w.F64Slice(nil)
	w.IntSlice([]int{})
	r := NewReader(w.Bytes())
	if got := r.F64Slice(); len(got) != 0 {
		t.Fatalf("empty f64 = %v", got)
	}
	if got := r.IntSlice(); len(got) != 0 {
		t.Fatalf("empty ints = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Int(7)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	w.Int(9)
	if NewReader(w.Bytes()).Int() != 9 {
		t.Fatal("write after Reset wrong")
	}
}

// Property: F64Slice round-trips bit-exactly, including NaN payloads.
func TestF64SliceRoundTripProperty(t *testing.T) {
	prop := func(bits []uint64) bool {
		xs := make([]float64, len(bits))
		for i, b := range bits {
			xs[i] = math.Float64frombits(b)
		}
		w := NewWriter(0)
		w.F64Slice(xs)
		got := NewReader(w.Bytes()).F64Slice()
		if len(got) != len(xs) {
			return false
		}
		for i := range got {
			if math.Float64bits(got[i]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSliceFails(t *testing.T) {
	w := NewWriter(0)
	w.F64Slice([]float64{1, 2, 3})
	full := w.Bytes()
	r := NewReader(full[:len(full)-4])
	if got := r.F64Slice(); got != nil {
		t.Fatalf("truncated decode returned %v", got)
	}
	if r.Err() == nil {
		t.Fatal("no error on truncation")
	}
}
