package serial

import (
	"errors"
	"fmt"
	"sync"
)

// Object-graph serialization (paper §3.4): "Functions are represented by
// heap-allocated closures and are also serialized. Serializing an object
// transitively serializes all objects that it references. Pointers to
// global data are serialized as a segment identifier and offset."
//
// This file provides that runtime facility for the virtual cluster:
//
//   - Node is a boxed heap object carrying a payload and references to
//     other Nodes. EncodeGraph walks the reachable graph once, assigning
//     sequential ids, so shared substructure is transmitted once and
//     cycles terminate (back-references encode as ids).
//   - Global data registered in a SegmentTable is never transmitted at
//     all: a pointer into a registered segment encodes as (segment id,
//     offset) and is re-resolved against the receiver's table — the SPMD
//     assumption that every rank holds the same globals.

// Node is a boxed object in a serializable heap graph. Payload holds the
// node's own data (encoded with the graph's payload codec); Refs point at
// other nodes; SegRefs point into registered global segments.
type Node struct {
	Payload []byte
	Refs    []*Node
	SegRefs []SegPtr
}

// SegPtr is a pointer into a registered global segment: segment identifier
// plus element offset.
type SegPtr struct {
	Segment SegID
	Offset  int
}

// SegID identifies a registered global segment.
type SegID uint32

// SegmentTable maps segment ids to the process's global arrays. Under the
// SPMD model every rank registers the same segments in the same order, so
// a SegPtr created on one rank resolves on any other.
type SegmentTable struct {
	mu   sync.RWMutex
	segs map[SegID][]float64
	next SegID
}

// NewSegmentTable returns an empty table.
func NewSegmentTable() *SegmentTable {
	return &SegmentTable{segs: make(map[SegID][]float64)}
}

// Register adds a global segment and returns its id. Ranks must register
// segments in the same order (ids are sequential).
func (t *SegmentTable) Register(data []float64) SegID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.next
	t.next++
	t.segs[id] = data
	return id
}

// Resolve returns the value a SegPtr designates.
func (t *SegmentTable) Resolve(p SegPtr) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seg, ok := t.segs[p.Segment]
	if !ok {
		return 0, fmt.Errorf("serial: unknown segment %d", p.Segment)
	}
	if p.Offset < 0 || p.Offset >= len(seg) {
		return 0, fmt.Errorf("serial: segment %d offset %d out of range %d", p.Segment, p.Offset, len(seg))
	}
	return seg[p.Offset], nil
}

// ErrGraphCorrupt is reported when a graph decode fails structurally.
var ErrGraphCorrupt = errors.New("serial: corrupt object graph")

// EncodeGraph serializes the graph reachable from root. Nodes are numbered
// in first-visit (preorder) order; every node is transmitted exactly once
// regardless of how many references reach it, and reference cycles are
// legal. A nil root encodes as an empty graph.
func EncodeGraph(w *Writer, root *Node) {
	// First pass: assign ids.
	ids := map[*Node]int{}
	order := []*Node{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if _, seen := ids[n]; seen {
			return
		}
		ids[n] = len(order)
		order = append(order, n)
		for _, r := range n.Refs {
			visit(r)
		}
	}
	visit(root)

	w.Int(len(order))
	for _, n := range order {
		w.RawBytes(n.Payload)
		w.Int(len(n.Refs))
		for _, r := range n.Refs {
			if r == nil {
				w.Int(-1)
				continue
			}
			w.Int(ids[r])
		}
		w.Int(len(n.SegRefs))
		for _, sp := range n.SegRefs {
			w.U32(uint32(sp.Segment))
			w.Int(sp.Offset)
		}
	}
}

// DecodeGraph rebuilds a graph encoded by EncodeGraph and returns its root
// (node 0), or nil for an empty graph.
func DecodeGraph(r *Reader) (*Node, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > r.Remaining() {
		return nil, fmt.Errorf("%w: %d nodes", ErrGraphCorrupt, n)
	}
	if n == 0 {
		return nil, nil
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{}
	}
	for i := range nodes {
		nodes[i].Payload = r.RawBytes()
		nrefs := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nrefs < 0 || nrefs > r.Remaining()+1 {
			return nil, fmt.Errorf("%w: node %d has %d refs", ErrGraphCorrupt, i, nrefs)
		}
		nodes[i].Refs = make([]*Node, nrefs)
		for j := range nodes[i].Refs {
			id := r.Int()
			if id == -1 {
				continue
			}
			if id < 0 || id >= n {
				return nil, fmt.Errorf("%w: node %d ref %d → %d", ErrGraphCorrupt, i, j, id)
			}
			nodes[i].Refs[j] = nodes[id]
		}
		nsegs := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nsegs < 0 || nsegs > r.Remaining()+1 {
			return nil, fmt.Errorf("%w: node %d has %d segrefs", ErrGraphCorrupt, i, nsegs)
		}
		nodes[i].SegRefs = make([]SegPtr, nsegs)
		for j := range nodes[i].SegRefs {
			nodes[i].SegRefs[j] = SegPtr{Segment: SegID(r.U32()), Offset: r.Int()}
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nodes[0], nil
}

// GraphSize counts the nodes reachable from root (diagnostics and tests).
func GraphSize(root *Node) int {
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, r := range n.Refs {
			visit(r)
		}
	}
	visit(root)
	return len(seen)
}
