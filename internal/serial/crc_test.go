package serial

import "testing"

func TestCRCFrameRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.String("job")
	w.Int(42)
	w.FinishCRC()
	frame := w.Bytes()

	body, ok := VerifyCRC(frame)
	if !ok {
		t.Fatal("valid frame failed verification")
	}
	r := NewReader(body)
	if got := r.String(); got != "job" {
		t.Fatalf("String = %q, want %q", got, "job")
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int = %d, want 42", got)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("body not fully consumed: err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestCRCFrameRejectsCorruption(t *testing.T) {
	w := NewWriter(0)
	w.Int(7)
	w.FinishCRC()
	frame := w.Bytes()

	for i := range frame {
		cp := append([]byte(nil), frame...)
		cp[i] ^= 0x40
		if _, ok := VerifyCRC(cp); ok {
			t.Fatalf("bit flip at byte %d passed verification", i)
		}
	}
	if _, ok := VerifyCRC(nil); ok {
		t.Fatal("empty frame passed verification")
	}
	if _, ok := VerifyCRC(frame[:3]); ok {
		t.Fatal("short frame passed verification")
	}
}

func TestCRCEmptyBody(t *testing.T) {
	w := NewWriter(0)
	w.FinishCRC()
	body, ok := VerifyCRC(w.Bytes())
	if !ok || len(body) != 0 {
		t.Fatalf("empty body frame: body=%v ok=%v", body, ok)
	}
}
