// Package serial is the serialization runtime of the virtual cluster — the
// analog of Triolet's compiler-generated serialization (paper §3.4). Every
// value crossing a node boundary is flattened to bytes and rebuilt on the
// receiving side; pointer-free numeric arrays are encoded with tight
// fixed-width loops (the paper block-copies them to minimize serialization
// time). Codecs for structured types are composed from primitive
// read/write operations, mirroring how Triolet derives serializers from
// algebraic data type definitions.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is reported when a decoder runs past the end of a message.
var ErrShortBuffer = errors.New("serial: read past end of buffer")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The slice aliases the writer's buffer;
// the caller must not keep writing through the Writer afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, keeping its buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int appends an int as a fixed-width 64-bit value.
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// F64 appends a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F32 appends a float32.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// RawBytes appends a length-prefixed byte slice.
func (w *Writer) RawBytes(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// F64Slice appends a length-prefixed []float64 with a fixed-width encoding
// loop (the pointer-free-array fast path).
func (w *Writer) F64Slice(xs []float64) {
	w.Int(len(xs))
	w.buf = growBy(w.buf, 8*len(xs))
	off := len(w.buf) - 8*len(xs)
	for i, v := range xs {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], math.Float64bits(v))
	}
}

// F32Slice appends a length-prefixed []float32.
func (w *Writer) F32Slice(xs []float32) {
	w.Int(len(xs))
	w.buf = growBy(w.buf, 4*len(xs))
	off := len(w.buf) - 4*len(xs)
	for i, v := range xs {
		binary.LittleEndian.PutUint32(w.buf[off+4*i:], math.Float32bits(v))
	}
}

// I64Slice appends a length-prefixed []int64.
func (w *Writer) I64Slice(xs []int64) {
	w.Int(len(xs))
	w.buf = growBy(w.buf, 8*len(xs))
	off := len(w.buf) - 8*len(xs)
	for i, v := range xs {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], uint64(v))
	}
}

// IntSlice appends a length-prefixed []int (64-bit each).
func (w *Writer) IntSlice(xs []int) {
	w.Int(len(xs))
	w.buf = growBy(w.buf, 8*len(xs))
	off := len(w.buf) - 8*len(xs)
	for i, v := range xs {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], uint64(v))
	}
}

func growBy(b []byte, n int) []byte {
	l := len(b)
	if l+n <= cap(b) {
		return b[:l+n]
	}
	nb := make([]byte, l+n, max(2*cap(b), l+n))
	copy(nb, b)
	return nb
}

// Reader decodes a message produced by Writer. Errors are sticky: after the
// first short read every subsequent read returns zero values, and Err
// reports the failure. Message-level framing is validated by the transport,
// so decode errors indicate a codec mismatch — a programming error —
// surfaced at the call site that checks Err.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over an encoded message.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err reports the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w (pos %d of %d)", ErrShortBuffer, r.pos, len(r.buf))
	}
}

func (r *Reader) take(n int) []byte {
	// Compare with subtraction: r.pos+n can overflow for adversarial n.
	if r.err != nil || n < 0 || n > len(r.buf)-r.pos {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a fixed-width uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// F32 reads a float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Int()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// RawBytes reads a length-prefixed byte slice, copying out of the message.
func (r *Reader) RawBytes() []byte {
	n := r.Int()
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// F64Slice reads a length-prefixed []float64.
func (r *Reader) F64Slice() []float64 {
	n := r.Int()
	if r.err != nil || n < 0 || n > r.Remaining()/8 {
		// Checked before multiplying: 8*n can overflow for an
		// adversarial length header.
		r.fail()
		return nil
	}
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// F32Slice reads a length-prefixed []float32.
func (r *Reader) F32Slice() []float32 {
	n := r.Int()
	if r.err != nil || n < 0 || n > r.Remaining()/4 {
		// Checked before multiplying: 4*n can overflow for an
		// adversarial length header.
		r.fail()
		return nil
	}
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// I64Slice reads a length-prefixed []int64.
func (r *Reader) I64Slice() []int64 {
	n := r.Int()
	if r.err != nil || n < 0 || n > r.Remaining()/8 {
		// Checked before multiplying: 8*n can overflow for an
		// adversarial length header.
		r.fail()
		return nil
	}
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// IntSlice reads a length-prefixed []int.
func (r *Reader) IntSlice() []int {
	n := r.Int()
	if r.err != nil || n < 0 || n > r.Remaining()/8 {
		// Checked before multiplying: 8*n can overflow for an
		// adversarial length header.
		r.fail()
		return nil
	}
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
