package serial

import (
	"testing"
	"testing/quick"

	"triolet/internal/array"
)

func TestPrimitiveCodecs(t *testing.T) {
	if v, err := Unmarshal(IntC(), Marshal(IntC(), -99)); err != nil || v != -99 {
		t.Fatalf("IntC: %v %v", v, err)
	}
	if v, err := Unmarshal(F64C(), Marshal(F64C(), 3.5)); err != nil || v != 3.5 {
		t.Fatalf("F64C: %v %v", v, err)
	}
	if v, err := Unmarshal(F64s(), Marshal(F64s(), []float64{1, 2})); err != nil || len(v) != 2 || v[1] != 2 {
		t.Fatalf("F64s: %v %v", v, err)
	}
	if v, err := Unmarshal(F32s(), Marshal(F32s(), []float32{4})); err != nil || v[0] != 4 {
		t.Fatalf("F32s: %v %v", v, err)
	}
	if v, err := Unmarshal(I64s(), Marshal(I64s(), []int64{-7})); err != nil || v[0] != -7 {
		t.Fatalf("I64s: %v %v", v, err)
	}
	if v, err := Unmarshal(Ints(), Marshal(Ints(), []int{8, 9})); err != nil || v[1] != 9 {
		t.Fatalf("Ints: %v %v", v, err)
	}
	if _, err := Unmarshal(Unit(), Marshal(Unit(), struct{}{})); err != nil {
		t.Fatalf("Unit: %v", err)
	}
}

func TestSliceOfNested(t *testing.T) {
	c := SliceOf(F64s()) // [][]float64: the chunked-array shape Eden uses
	in := [][]float64{{1, 2}, nil, {3}}
	out, err := Unmarshal(c, Marshal(c, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 2 || len(out[1]) != 0 || out[2][0] != 3 {
		t.Fatalf("nested = %v", out)
	}
}

func TestSliceOfRefusesAbsurdLength(t *testing.T) {
	// A corrupt header claiming a huge count must fail, not allocate.
	w := NewWriter(0)
	w.Int(1 << 40)
	_, err := Unmarshal(SliceOf(IntC()), w.Bytes())
	if err == nil {
		t.Fatal("absurd length decoded")
	}
}

func TestPairOf(t *testing.T) {
	c := PairOf(IntC(), F64s())
	in := PairV[int, []float64]{Fst: 7, Snd: []float64{1.5}}
	out, err := Unmarshal(c, Marshal(c, in))
	if err != nil || out.Fst != 7 || out.Snd[0] != 1.5 {
		t.Fatalf("pair = %+v err %v", out, err)
	}
}

func TestMatrixCodecs(t *testing.T) {
	m := array.NewMatrix[float64](2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.5
	}
	got, err := Unmarshal(MatrixF64(), Marshal(MatrixF64(), m))
	if err != nil {
		t.Fatal(err)
	}
	if got.H != 2 || got.W != 3 {
		t.Fatalf("shape %dx%d", got.H, got.W)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("data[%d] = %v", i, got.Data[i])
		}
	}

	m32 := array.NewMatrix[float32](1, 2)
	m32.Data[1] = 4
	got32, err := Unmarshal(MatrixF32(), Marshal(MatrixF32(), m32))
	if err != nil || got32.At(0, 1) != 4 {
		t.Fatalf("f32 matrix: %+v err %v", got32, err)
	}
}

func TestMatrixCodecShapeMismatchFails(t *testing.T) {
	w := NewWriter(0)
	w.Int(2)
	w.Int(3)
	w.F64Slice([]float64{1}) // 1 element for a claimed 2x3
	if _, err := Unmarshal(MatrixF64(), w.Bytes()); err == nil {
		t.Fatal("shape mismatch decoded")
	}
}

// Property: arbitrary [][]int round-trips through composed codecs.
func TestComposedCodecRoundTripProperty(t *testing.T) {
	c := SliceOf(Ints())
	prop := func(in [][]int) bool {
		out, err := Unmarshal(c, Marshal(c, in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if len(out[i]) != len(in[i]) {
				return false
			}
			for j := range in[i] {
				if out[i][j] != in[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
