package serial

import (
	"bytes"
	"testing"
	"unsafe"
)

// TestRawMatchesCodec: Raw's wire format is the element body of the
// corresponding slice codec — identical bytes minus the 8-byte length
// prefix — so raw payloads interoperate with every reader that knows the
// element type.
func TestRawMatchesCodec(t *testing.T) {
	f64 := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	if got, want := Raw(f64), Marshal(F64s(), f64)[8:]; !bytes.Equal(got, want) {
		t.Fatalf("Raw([]float64) = %x, want codec body %x", got, want)
	}
	f32 := []float32{0, 1.5, -2.25, 3.4e38}
	if got, want := Raw(f32), Marshal(F32s(), f32)[8:]; !bytes.Equal(got, want) {
		t.Fatalf("Raw([]float32) = %x, want codec body %x", got, want)
	}
	i64 := []int64{0, 1, -1, 1 << 62, -(1 << 62)}
	if got, want := Raw(i64), Marshal(I64s(), i64)[8:]; !bytes.Equal(got, want) {
		t.Fatalf("Raw([]int64) = %x, want codec body %x", got, want)
	}
	ints := []int{0, 7, -7, 1 << 40}
	if got, want := Raw(ints), Marshal(Ints(), ints)[8:]; !bytes.Equal(got, want) {
		t.Fatalf("Raw([]int) = %x, want codec body %x", got, want)
	}
}

// rawRoundTrip exercises Raw → RawView / RawCopy for one element type.
func rawRoundTrip[E RawElem](t *testing.T, xs []E) {
	t.Helper()
	b := Raw(xs)
	var zero E
	if want := len(xs) * int(unsafe.Sizeof(zero)); len(b) != want {
		t.Fatalf("Raw: %d bytes, want %d", len(b), want)
	}
	view, err := RawView[E](b)
	if err != nil {
		t.Fatalf("RawView: %v", err)
	}
	cp, err := RawCopy[E](b)
	if err != nil {
		t.Fatalf("RawCopy: %v", err)
	}
	for i := range xs {
		if view[i] != xs[i] || cp[i] != xs[i] {
			t.Fatalf("element %d: view %v copy %v, want %v", i, view[i], cp[i], xs[i])
		}
	}
	if len(xs) > 0 && &cp[0] == &xs[0] {
		t.Fatal("RawCopy aliases the source")
	}
}

// TestRawRoundTrip covers every type in the RawElem set.
func TestRawRoundTrip(t *testing.T) {
	rawRoundTrip(t, []float64{1.5, -2.25, 0, 1e-10})
	rawRoundTrip(t, []float32{1.5, -2.25, 0})
	rawRoundTrip(t, []int64{-5, 0, 5, 1 << 60})
	rawRoundTrip(t, []int32{-5, 0, 5, 1 << 30})
	rawRoundTrip(t, []int{-5, 0, 5})
	rawRoundTrip(t, []uint32{0, 5, 1 << 31})
	rawRoundTrip(t, []uint64{0, 5, 1 << 63})
	rawRoundTrip(t, []float64(nil))
}

// TestRawAliases: on a little-endian host the encode side aliases the
// backing array — mutations through the source are visible in the wire
// bytes — and an aligned decode aliases right back.
func TestRawAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("big-endian host: Raw copies by design")
	}
	xs := []int64{1, 2, 3}
	b := Raw(xs)
	xs[1] = 42
	v, err := RawView[int64](b)
	if err != nil {
		t.Fatal(err)
	}
	if v[1] != 42 {
		t.Fatalf("view not aliased: v[1] = %d, want 42", v[1])
	}
	if !RawAliases[int64](b) {
		t.Fatal("RawAliases = false for an aligned payload")
	}
}

// TestRawViewMisaligned: a payload that lands on an odd byte boundary (as a
// sub-slice of a larger frame can) must decode by copy, not alias, and
// still produce the right elements.
func TestRawViewMisaligned(t *testing.T) {
	xs := []float64{1.5, -2.5, 3.25}
	buf := make([]byte, len(xs)*8+1)
	copy(buf[1:], Raw(xs))
	b := buf[1:]
	if uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0 {
		t.Skip("sub-slice landed aligned; cannot force misalignment here")
	}
	if RawAliases[float64](b) {
		t.Fatal("RawAliases = true for a misaligned payload")
	}
	v, err := RawView[float64](b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if v[i] != xs[i] {
			t.Fatalf("misaligned decode: v[%d] = %v, want %v", i, v[i], xs[i])
		}
	}
}

// TestRawViewBadLength: payload lengths that are not a multiple of the
// element size are rejected, never silently truncated.
func TestRawViewBadLength(t *testing.T) {
	if _, err := RawView[float64](make([]byte, 12)); err == nil {
		t.Fatal("RawView accepted a 12-byte payload for 8-byte elements")
	}
	if _, err := RawCopy[int32](make([]byte, 7)); err == nil {
		t.Fatal("RawCopy accepted a 7-byte payload for 4-byte elements")
	}
}

// FuzzRawDecode drives the raw decoders with arbitrary payloads: RawView
// and RawCopy must agree with each other on both acceptance and values,
// and re-encoding a successful decode must reproduce the input bytes.
func FuzzRawDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(Raw([]float64{1.5, -2.5}))
	f.Add(Raw([]uint32{7, 1 << 30, 42}))
	f.Add(make([]byte, 13))
	f.Fuzz(func(t *testing.T, b []byte) {
		checkRawDecode[float64](t, b)
		checkRawDecode[float32](t, b)
		checkRawDecode[int64](t, b)
		checkRawDecode[int32](t, b)
		checkRawDecode[uint32](t, b)
		checkRawDecode[uint64](t, b)
	})
}

func checkRawDecode[E RawElem](t *testing.T, b []byte) {
	t.Helper()
	view, verr := RawView[E](b)
	cp, cerr := RawCopy[E](b)
	if (verr == nil) != (cerr == nil) {
		t.Fatalf("RawView err %v but RawCopy err %v", verr, cerr)
	}
	if verr != nil {
		return
	}
	if len(view) != len(cp) {
		t.Fatalf("view has %d elements, copy has %d", len(view), len(cp))
	}
	for i := range view {
		// Compare bit patterns, not values: NaN payloads must survive.
		if view[i] != cp[i] && !(view[i] != view[i] && cp[i] != cp[i]) {
			t.Fatalf("element %d: view %v, copy %v", i, view[i], cp[i])
		}
	}
	if re := Raw(cp); !bytes.Equal(re, normalizeEmpty(b)) {
		t.Fatalf("re-encode mismatch: %x vs %x", re, b)
	}
}

// normalizeEmpty maps empty inputs to nil, matching Raw's encoding of an
// empty slice.
func normalizeEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}
