package serial

import (
	"testing"

	"triolet/internal/array"
)

// Fuzz targets: every decoder must be total — arbitrary bytes produce an
// error or a value, never a panic or a pathological allocation. Message
// payloads cross the trust boundary between simulated nodes, so decoder
// robustness is load-bearing for the whole runtime.

func FuzzReaderPrimitives(f *testing.F) {
	w := NewWriter(0)
	w.Int(3)
	w.F64(1.5)
	w.String("seed")
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Int()
		_ = r.F64()
		_ = r.String()
		_ = r.U8()
		_ = r.Bool()
		_ = r.F32()
		_ = r.RawBytes()
		_ = r.Remaining()
		_ = r.Err()
	})
}

func FuzzSliceDecoders(f *testing.F) {
	w := NewWriter(0)
	w.F64Slice([]float64{1, 2})
	f.Add(w.Bytes())
	w2 := NewWriter(0)
	w2.Int(1 << 50) // absurd length header
	f.Add(w2.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = NewReader(data).F64Slice()
		_ = NewReader(data).F32Slice()
		_ = NewReader(data).I64Slice()
		_ = NewReader(data).IntSlice()
	})
}

func FuzzComposedCodecs(f *testing.F) {
	c := SliceOf(PairOf(IntC(), F64s()))
	seed := Marshal(c, []PairV[int, []float64]{{Fst: 1, Snd: []float64{2}}})
	f.Add(seed)
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(c, data)
		if err == nil {
			// A successful decode must re-encode without panicking.
			_ = Marshal(c, v)
		}
	})
}

func FuzzMatrixCodec(f *testing.F) {
	m := array.NewMatrix[float64](2, 2)
	f.Add(Marshal(MatrixF64(), m))
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(MatrixF64(), data)
		if err == nil && len(v.Data) != v.H*v.W {
			t.Fatalf("decoded inconsistent matrix %dx%d with %d elements", v.H, v.W, len(v.Data))
		}
	})
}

func FuzzGraphDecoder(f *testing.F) {
	a := &Node{Payload: []byte("a")}
	b := &Node{Payload: []byte("b"), Refs: []*Node{a}}
	a.Refs = []*Node{b}
	w := NewWriter(0)
	EncodeGraph(w, a)
	f.Add(w.Bytes())
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		root, err := DecodeGraph(NewReader(data))
		if err == nil && root != nil {
			// A decoded graph must be re-encodable: the walker must not
			// chase dangling references.
			w := NewWriter(0)
			EncodeGraph(w, root)
		}
	})
}
