package sched

import (
	"testing"
	"testing/quick"
)

func TestParallelScanEmpty(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if got := ParallelScan(p, []int{}, 0, func(a, b int) int { return a + b }); got != 0 {
		t.Fatalf("empty scan total = %d", got)
	}
}

func TestParallelScanSmall(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	xs := []int{1, 2, 3, 4, 5}
	total := ParallelScan(p, xs, 0, func(a, b int) int { return a + b })
	want := []int{1, 3, 6, 10, 15}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("scan = %v", xs)
		}
	}
	if total != 15 {
		t.Fatalf("total = %d", total)
	}
}

func TestParallelScanNilPool(t *testing.T) {
	xs := []int{2, 2, 2}
	total := ParallelScan[int](nil, xs, 0, func(a, b int) int { return a + b })
	if total != 6 || xs[2] != 6 {
		t.Fatalf("nil-pool scan = %v total %d", xs, total)
	}
}

// Property: ParallelScan equals the sequential inclusive scan for any
// input and any pool width, including non-commutative operators.
func TestParallelScanMatchesSequential(t *testing.T) {
	pools := []*Pool{NewPool(1), NewPool(3), NewPool(8)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	// Matrix-like non-commutative op: affine composition (a, b) where
	// x → a*x+b, composed left to right. Associative, identity (1, 0).
	type aff struct{ A, B int64 }
	compose := func(f, g aff) aff { return aff{A: f.A * g.A, B: g.A*f.B + g.B} }
	id := aff{A: 1, B: 0}

	prop := func(raw []int8, pi uint8) bool {
		p := pools[int(pi)%len(pools)]
		xs := make([]aff, len(raw))
		ref := make([]aff, len(raw))
		for i, v := range raw {
			// Keep A in {1, -1, 2} so products stay bounded.
			a := int64(1)
			switch v % 3 {
			case 1:
				a = -1
			case 2:
				a = 2
			}
			xs[i] = aff{A: a, B: int64(v)}
			ref[i] = xs[i]
		}
		// Sequential reference.
		acc := id
		for i := range ref {
			acc = compose(acc, ref[i])
			ref[i] = acc
		}
		total := ParallelScan(p, xs, id, compose)
		for i := range xs {
			if xs[i] != ref[i] {
				return false
			}
		}
		return len(xs) == 0 || total == ref[len(ref)-1]
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveScan(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	xs := []int{5, 1, 2}
	total := ExclusiveScan(p, xs, 0, func(a, b int) int { return a + b })
	if total != 8 {
		t.Fatalf("total = %d", total)
	}
	want := []int{0, 5, 6}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("exclusive = %v", xs)
		}
	}
}

// Property: exclusive scan relates to inclusive scan by a one-slot shift.
func TestExclusiveVsInclusive(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	prop := func(xs []int32) bool {
		inc := make([]int64, len(xs))
		exc := make([]int64, len(xs))
		for i, v := range xs {
			inc[i] = int64(v)
			exc[i] = int64(v)
		}
		add := func(a, b int64) int64 { return a + b }
		tInc := ParallelScan(p, inc, 0, add)
		tExc := ExclusiveScan(p, exc, 0, add)
		if tInc != tExc {
			return false
		}
		for i := 1; i < len(xs); i++ {
			if exc[i] != inc[i-1] {
				return false
			}
		}
		return len(xs) == 0 || exc[0] == 0
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
