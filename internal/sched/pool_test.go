package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"triolet/internal/domain"
	"triolet/internal/iter"
)

func TestDequeLIFOAndFIFO(t *testing.T) {
	d := &deque{}
	d.pushBottom(domain.Range{Lo: 0, Hi: 1})
	d.pushBottom(domain.Range{Lo: 1, Hi: 2})
	d.pushBottom(domain.Range{Lo: 2, Hi: 3})
	if d.size() != 3 {
		t.Fatalf("size = %d", d.size())
	}
	// Owner pops newest.
	r, ok := d.popBottom()
	if !ok || r.Lo != 2 {
		t.Fatalf("popBottom = %v %v", r, ok)
	}
	// Thief steals oldest.
	r, ok = d.stealTop()
	if !ok || r.Lo != 0 {
		t.Fatalf("stealTop = %v %v", r, ok)
	}
	r, ok = d.popBottom()
	if !ok || r.Lo != 1 {
		t.Fatalf("popBottom = %v %v", r, ok)
	}
	if _, ok := d.popBottom(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := d.stealTop(); ok {
		t.Fatal("steal from empty succeeded")
	}
}

func TestNewPoolInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(0)
}

func TestParallelForCoversExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		const n = 10000
		counts := make([]atomic.Int32, n)
		p.ParallelFor(n, 64, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		p.Close()
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForZeroAndNegative(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.ParallelFor(0, 1, func(_, _, _ int) { ran = true })
	if ran {
		t.Fatal("body ran for n=0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<0")
		}
	}()
	p.ParallelFor(-1, 1, nil)
}

func TestParallelForWorkerIndexInRange(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var bad atomic.Int32
	p.ParallelFor(5000, 16, func(worker, _, _ int) {
		if worker < 0 || worker >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of range")
	}
}

func TestParallelForGrainRespected(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var maxLen atomic.Int64
	p.ParallelFor(4096, 100, func(_, lo, hi int) {
		l := int64(hi - lo)
		for {
			cur := maxLen.Load()
			if l <= cur || maxLen.CompareAndSwap(cur, l) {
				break
			}
		}
	})
	if got := maxLen.Load(); got > 100 {
		t.Fatalf("range of %d exceeded grain 100", got)
	}
}

func TestParallelForPanicsPropagate(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if pv := recover(); pv != "kaboom" {
			t.Fatalf("recovered %v", pv)
		}
	}()
	p.ParallelFor(100, 1, func(_, lo, _ int) {
		if lo == 0 {
			panic("kaboom")
		}
	})
}

func TestPoolReusableAfterPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.ParallelFor(10, 1, func(_, _, _ int) { panic("x") })
	}()
	// Pool must still work.
	var total atomic.Int64
	p.ParallelFor(100, 8, func(_, lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 100 {
		t.Fatalf("after panic, covered %d", total.Load())
	}
}

func TestParallelReduceSum(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	got := ParallelReduce(p, 1000, 32, 0,
		func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		},
		func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("reduce = %d", got)
	}
}

// Property: ParallelReduce equals sequential reduce for random inputs and
// pool shapes.
func TestParallelReduceMatchesSequential(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	prop := func(xs []int32, grain0 uint8) bool {
		grain := int(grain0%50) + 1
		want := int64(0)
		for _, v := range xs {
			want += int64(v)
		}
		got := ParallelReduce(p, len(xs), grain, int64(0),
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(xs[i])
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForRectTiles(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	dom := domain.NewDim2(37, 23)
	hits := make([]atomic.Int32, dom.Size())
	p.ParallelForRect(dom, func(_ int, r domain.Rect) {
		for y := r.Rows.Lo; y < r.Rows.Hi; y++ {
			for x := r.Cols.Lo; x < r.Cols.Hi; x++ {
				hits[dom.Linear(domain.Ix2{Y: y, X: x})].Add(1)
			}
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("cell %d visited %d times", i, hits[i].Load())
		}
	}
	// Empty domain: no calls, no hang.
	p.ParallelForRect(domain.NewDim2(0, 5), func(int, domain.Rect) {
		t.Error("body called for empty domain")
	})
}

func TestThreadPrivateAccumulators(t *testing.T) {
	// The per-worker index enables private histograms merged afterwards —
	// the paper's C+OpenMP histogram privatization pattern.
	p := NewPool(4)
	defer p.Close()
	const bins = 8
	private := make([][]int64, p.Workers())
	for w := range private {
		private[w] = make([]int64, bins)
	}
	const n = 20000
	p.ParallelFor(n, 128, func(worker, lo, hi int) {
		h := private[worker]
		for i := lo; i < hi; i++ {
			h[i%bins]++
		}
	})
	merged := make([]int64, bins)
	for _, h := range private {
		for i, v := range h {
			merged[i] += v
		}
	}
	for i, v := range merged {
		if v != n/bins {
			t.Fatalf("bin %d = %d", i, v)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(1)
	p.Close()
	p.Close() // must not panic or hang
}

func TestManySmallRegions(t *testing.T) {
	// Regression guard for region-handoff races: many back-to-back regions.
	p := NewPool(4)
	defer p.Close()
	for range 200 {
		var total atomic.Int64
		p.ParallelFor(64, 4, func(_, lo, hi int) { total.Add(int64(hi - lo)) })
		if total.Load() != 64 {
			t.Fatalf("covered %d", total.Load())
		}
	}
}

func TestAlignSplit(t *testing.T) {
	cases := []struct{ lo, mid, want int }{
		{0, 300, 256},      // snaps down to the boundary
		{0, 256, 256},      // already aligned
		{0, 255, 255},      // snapping would empty the front half
		{512, 600, 600},    // snapping to 512 would empty the front half
		{512, 900, 768},    // snaps within the range
		{1000, 1100, 1024}, // 1024 = 4*256 > lo
		{1000, 1020, 1020}, // snapping to 1024 would overshoot; no boundary in (lo, mid]
	}
	for _, c := range cases {
		if got := alignSplit(c.lo, c.mid); got != c.want {
			t.Errorf("alignSplit(%d, %d) = %d, want %d", c.lo, c.mid, got, c.want)
		}
	}
}

// TestBlockAlignPairsWithIterBlockSize: sched deliberately avoids importing
// iter, so the constant pairing is asserted here (iter asserts its side in
// internal/iter/block_test.go).
func TestBlockAlignPairsWithIterBlockSize(t *testing.T) {
	if BlockAlign != iter.BlockSize {
		t.Fatalf("sched.BlockAlign = %d but iter.BlockSize = %d; they must match so leaf ranges run full-width block kernels", BlockAlign, iter.BlockSize)
	}
	if BlockAlign&(BlockAlign-1) != 0 {
		t.Fatalf("BlockAlign = %d must be a power of two (snapping uses a mask)", BlockAlign)
	}
}

// TestParallelForLeavesBlockAligned: with grain >= BlockAlign, every leaf
// range boundary a worker executes must sit on a BlockAlign multiple, except
// the loop's ragged tail. Per-leaf alignment is what lets fused consumers
// run whole blocks per leaf instead of finishing each with a partial block.
func TestParallelForLeavesBlockAligned(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 100_000 // not a multiple of BlockAlign: 100000 % 256 != 0
	var mu sync.Mutex
	type leaf struct{ lo, hi int }
	var leaves []leaf
	p.ParallelFor(n, 2*BlockAlign, func(_, lo, hi int) {
		mu.Lock()
		leaves = append(leaves, leaf{lo, hi})
		mu.Unlock()
	})
	covered := 0
	for _, l := range leaves {
		covered += l.hi - l.lo
		if l.lo%BlockAlign != 0 {
			t.Errorf("leaf [%d,%d) starts off a block boundary", l.lo, l.hi)
		}
		if l.hi%BlockAlign != 0 && l.hi != n {
			t.Errorf("leaf [%d,%d) ends off a block boundary and is not the tail", l.lo, l.hi)
		}
	}
	if covered != n {
		t.Fatalf("leaves cover %d of %d iterations", covered, n)
	}
}
