package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"triolet/internal/domain"
)

// DefaultGrain is the iteration count below which ranges are no longer
// split. Callers tune it per loop; histogram-style loops with tiny bodies
// want larger grains.
const DefaultGrain = 1024

// BlockAlign mirrors iter.BlockSize: split points are snapped down to
// multiples of it so the leaf ranges a parallel loop hands to fused
// consumers stay block-aligned and the block kernels run at full width
// instead of finishing every leaf with a ragged partial block. It is a
// power of two so snapping is a mask. (sched deliberately does not import
// iter; the pairing is asserted by a test on each side.)
const BlockAlign = 256

// alignSplit snaps a proposed split point down to a BlockAlign boundary
// when that keeps both halves non-empty; otherwise the proposal stands.
//
// lo need not itself be aligned: snapping targets absolute multiples of
// BlockAlign, so a sub-range with a ragged base (possible only when a
// ParallelFor seed block is shorter than BlockAlign) realigns at its first
// interior boundary rather than propagating the ragged phase. Coverage is
// unconditionally safe either way — the cut always lands in (lo, mid], so
// both halves stay inside the original range and their union is exact;
// alignment is purely a block-kernel-width optimization. The invariants
// are pinned by TestAlignSplitInvariants and
// TestParallelForExactCoverAdversarialShapes.
func alignSplit(lo, mid int) int {
	if a := mid &^ (BlockAlign - 1); a > lo {
		return a
	}
	return mid
}

// RowGrain returns the grain for a parallel loop whose iteration unit is one
// row of a width-w grid: the smallest row count whose cells span at least
// BlockAlign elements, so row-unit leaves keep feeding full-width block
// kernels. Because the loop counts rows, every split lands on a whole-row
// boundary regardless of where alignSplit snaps — the offset-base contract
// above composes with row units instead of fighting them. Stencil slab
// sweeps rely on this: a leaf never ends mid-row, so a row is written by
// exactly one worker.
func RowGrain(w int) int {
	if w <= 0 || w >= BlockAlign {
		return 1
	}
	return (BlockAlign + w - 1) / w
}

// Pool is a fixed set of worker goroutines executing parallel regions. One
// Pool per virtual node models the node's cores. A Pool is safe for use by
// one region at a time (the node's control goroutine); the paper's
// skeletons likewise run one parallel loop per node at a time, choosing
// sequential implementations for inner nesting levels.
type Pool struct {
	workers int
	regions []chan *region
	wg      sync.WaitGroup
	closed  bool
}

type region struct {
	body      func(worker, lo, hi int)
	grain     int
	n         int
	deques    []*deque
	completed atomic.Int64
	panicked  atomic.Value // first panic value
	finished  chan struct{}
	fin       sync.Once
}

// NewPool starts a pool with the given number of workers (cores).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		panic(fmt.Sprintf("sched: NewPool(%d)", workers))
	}
	p := &Pool{
		workers: workers,
		regions: make([]chan *region, workers),
	}
	for w := range workers {
		p.regions[w] = make(chan *region, 1)
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. The pool must be idle.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.regions {
		close(ch)
	}
	p.wg.Wait()
}

func (p *Pool) workerLoop(self int) {
	defer p.wg.Done()
	for r := range p.regions[self] {
		p.runRegion(r, self)
	}
}

func (p *Pool) runRegion(r *region, self int) {
	defer func() {
		if pv := recover(); pv != nil {
			// Record the panic and poison the region so every worker and
			// the waiting caller exit promptly.
			r.panicked.CompareAndSwap(nil, pv)
			r.finish()
		}
	}()
	d := r.deques[self]
	for {
		rng, ok := d.popBottom()
		if !ok {
			rng, ok = p.steal(r, self)
		}
		if !ok {
			select {
			case <-r.finished:
				return
			default:
				if r.panicked.Load() != nil {
					return
				}
				runtime.Gosched()
				continue
			}
		}
		// Split oversized ranges, keeping the front and deferring the back
		// half for thieves. Split points snap to block boundaries so leaf
		// ranges run full-width block kernels.
		for rng.Len() > r.grain {
			mid := alignSplit(rng.Lo, rng.Lo+rng.Len()/2)
			d.pushBottom(domain.Range{Lo: mid, Hi: rng.Hi})
			rng.Hi = mid
		}
		r.body(self, rng.Lo, rng.Hi)
		if r.completed.Add(int64(rng.Len())) >= int64(r.n) {
			r.finish()
			return
		}
	}
}

func (r *region) finish() {
	r.fin.Do(func() { close(r.finished) })
}

// steal scans other workers' deques round-robin from self+1.
func (p *Pool) steal(r *region, self int) (domain.Range, bool) {
	for off := 1; off < p.workers; off++ {
		victim := (self + off) % p.workers
		if rng, ok := r.deques[victim].stealTop(); ok {
			return rng, true
		}
	}
	return domain.Range{}, false
}

// ParallelFor executes body over [0, n) using all workers, blocking until
// every iteration has run. body receives the executing worker's index
// (0..Workers-1) — the hook for thread-private accumulators — and a
// half-open range. grain <= 0 selects DefaultGrain. Panics in body are
// re-raised on the caller.
func (p *Pool) ParallelFor(n, grain int, body func(worker, lo, hi int)) {
	if n < 0 {
		panic(fmt.Sprintf("sched: ParallelFor(%d)", n))
	}
	if n == 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	r := &region{
		body:     body,
		grain:    grain,
		n:        n,
		deques:   make([]*deque, p.workers),
		finished: make(chan struct{}),
	}
	for w := range r.deques {
		r.deques[w] = &deque{}
	}
	// Seed each worker's deque with one initial block so stealing starts
	// from an even distribution. Seed boundaries are snapped to BlockAlign
	// like split points, so every leaf range a worker ultimately executes is
	// block-aligned except the loop's ragged tail.
	seeds := domain.BlockPartition(n, p.workers)
	for i := 0; i < len(seeds)-1; i++ {
		cut := alignSplit(seeds[i].Lo, seeds[i].Hi)
		seeds[i].Hi, seeds[i+1].Lo = cut, cut
	}
	for w, blk := range seeds {
		if !blk.Empty() {
			r.deques[w].pushBottom(blk)
		}
	}
	for _, ch := range p.regions {
		ch <- r
	}
	<-r.finished
	// Workers may still be draining their final iteration bookkeeping, but
	// finished only closes after completed >= n or a panic, so results are
	// visible here (channel close is an acquire/release edge).
	if pv := r.panicked.Load(); pv != nil {
		panic(pv)
	}
}

// ParallelReduce computes combine over per-range leaf results. leaf must be
// pure; combine must be associative (per-worker partials are combined in
// an unspecified order). id is the identity of combine.
func ParallelReduce[T any](p *Pool, n, grain int, id T, leaf func(lo, hi int) T, combine func(T, T) T) T {
	partials := make([]T, p.Workers())
	for i := range partials {
		partials[i] = id
	}
	p.ParallelFor(n, grain, func(worker, lo, hi int) {
		partials[worker] = combine(partials[worker], leaf(lo, hi))
	})
	acc := id
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc
}

// ParallelForRect executes body over the rectangles of a grid partition of
// dom, one task per rectangle. Used for 2-D block-parallel loops (matrix
// builds) where block locality matters more than fine-grained stealing.
func (p *Pool) ParallelForRect(dom domain.Dim2, body func(worker int, r domain.Rect)) {
	if dom.Empty() {
		return
	}
	// Over-decompose modestly (4 rects per worker) so stealing can balance.
	py, px := dom.GridShape(nearestGrid(4 * p.workers))
	rects := dom.GridPartition(py, px)
	p.ParallelFor(len(rects), 1, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(worker, rects[i])
		}
	})
}

// nearestGrid rounds p up to a value with a reasonable factorization (a
// power of two), so GridShape yields non-degenerate grids.
func nearestGrid(p int) int {
	g := 1
	for g < p {
		g <<= 1
	}
	return g
}
