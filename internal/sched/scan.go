package sched

import "triolet/internal/domain"

// ParallelScan computes the inclusive prefix combination of xs in place
// and returns the total, using the classic three-phase block algorithm:
//
//  1. upsweep: each block reduces to a block total, in parallel;
//  2. a sequential exclusive scan over the (few) block totals;
//  3. downsweep: each block rescans with its offset, in parallel.
//
// op must be associative with identity id. This is the "parallel scan" of
// paper §3.1 — the multipass machinery variable-output loops need when a
// framework cannot fuse them, implemented here both as a usable primitive
// and as the cost baseline the fusion ablations compare against.
func ParallelScan[T any](p *Pool, xs []T, id T, op func(T, T) T) T {
	n := len(xs)
	if n == 0 {
		return id
	}
	if p == nil || p.Workers() == 1 {
		acc := id
		for i := range xs {
			acc = op(acc, xs[i])
			xs[i] = acc
		}
		return acc
	}
	// Block size balances phase-1/3 parallelism against phase-2 serial
	// work: a few blocks per worker.
	blocks := domain.BlockPartition(n, min(4*p.Workers(), n))

	// Phase 1: per-block totals.
	totals := make([]T, len(blocks))
	p.ParallelFor(len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			acc := id
			for i := blocks[b].Lo; i < blocks[b].Hi; i++ {
				acc = op(acc, xs[i])
			}
			totals[b] = acc
		}
	})

	// Phase 2: exclusive scan of block totals (serial: block count is
	// O(workers)).
	offsets := make([]T, len(blocks))
	acc := id
	for b := range blocks {
		offsets[b] = acc
		acc = op(acc, totals[b])
	}

	// Phase 3: rescan each block from its offset.
	p.ParallelFor(len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			a := offsets[b]
			for i := blocks[b].Lo; i < blocks[b].Hi; i++ {
				a = op(a, xs[i])
				xs[i] = a
			}
		}
	})
	return acc
}

// ExclusiveScan converts xs to its exclusive prefix combination in place
// (element i becomes the combination of elements 0..i-1) and returns the
// total.
func ExclusiveScan[T any](p *Pool, xs []T, id T, op func(T, T) T) T {
	total := ParallelScan(p, xs, id, op)
	// Shift right by one: inclusive[i-1] is exclusive[i].
	prev := id
	for i := range xs {
		xs[i], prev = prev, xs[i]
	}
	return total
}
