// Package sched implements the shared-memory half of the paper's two-level
// parallel architecture (§3.4): a per-node pool of worker goroutines with
// work-stealing range deques, playing the role Threading Building Blocks
// plays in Triolet's runtime. Parallel loops are split recursively: each
// worker pops from the bottom of its own deque (LIFO, for locality) and
// steals from the top of a victim's deque (FIFO, taking the largest
// remaining pieces), with ranges re-split down to a grain size.
package sched

import (
	"sync"

	"triolet/internal/domain"
)

// deque is a work-stealing deque of index ranges. The owner pushes and pops
// at the bottom; thieves steal from the top. A mutex guards the (small)
// critical sections; range-granularity tasks make the lock traffic
// negligible compared to loop bodies, and the locking discipline is easy to
// verify, which we value over a lock-free variant here.
type deque struct {
	mu    sync.Mutex
	items []domain.Range
}

// pushBottom adds r to the owner's end.
func (d *deque) pushBottom(r domain.Range) {
	d.mu.Lock()
	d.items = append(d.items, r)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed range (owner side).
func (d *deque) popBottom() (domain.Range, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return domain.Range{}, false
	}
	r := d.items[n-1]
	d.items = d.items[:n-1]
	return r, true
}

// stealTop removes the oldest range (thief side).
func (d *deque) stealTop() (domain.Range, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return domain.Range{}, false
	}
	r := d.items[0]
	d.items = d.items[1:]
	return r, true
}

// size reports the current number of queued ranges (racy snapshot, used
// only for victim selection heuristics and tests).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
