package sched

import (
	"sync/atomic"
	"testing"
)

// Scheduler overhead benchmarks: region startup cost, grain sensitivity,
// and steal-heavy imbalance.

func BenchmarkParallelForOverhead(b *testing.B) {
	// An empty-body region measures pure scheduling cost.
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			for b.Loop() {
				p.ParallelFor(1<<12, 256, func(_, _, _ int) {})
			}
		})
	}
}

func BenchmarkGrainSensitivity(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	const n = 1 << 16
	var sink atomic.Int64
	for _, grain := range []int{16, 256, 4096} {
		name := map[int]string{16: "grain16", 256: "grain256", 4096: "grain4096"}[grain]
		b.Run(name, func(b *testing.B) {
			for b.Loop() {
				var local int64
				p.ParallelFor(n, grain, func(_, lo, hi int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					atomic.AddInt64(&local, s)
				})
				sink.Store(local)
			}
		})
	}
}

func BenchmarkImbalancedSteal(b *testing.B) {
	// A triangular workload: early indices are cheap, late ones expensive.
	// Work-stealing must keep workers busy; this measures the balanced
	// throughput.
	p := NewPool(4)
	defer p.Close()
	const n = 4096
	var sink atomic.Int64
	for b.Loop() {
		var total int64
		p.ParallelFor(n, 16, func(_, lo, hi int) {
			s := int64(0)
			for i := lo; i < hi; i++ {
				for j := 0; j < i/8; j++ {
					s += int64(j)
				}
			}
			atomic.AddInt64(&total, s)
		})
		sink.Store(total)
	}
}

func BenchmarkParallelReduce(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	xs := make([]float64, 1<<18)
	for i := range xs {
		xs[i] = float64(i)
	}
	for b.Loop() {
		_ = ParallelReduce(p, len(xs), 2048, 0.0,
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				return s
			},
			func(a, b float64) float64 { return a + b })
	}
}
