package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// alignSplit's contract, including at unaligned bases: the cut always lies
// in (lo, mid] — never emptying either half, never escaping the range —
// and is an absolute BlockAlign multiple whenever one fits above lo.
func TestAlignSplitInvariants(t *testing.T) {
	bases := []int{0, 1, 7, 255, 256, 257, 511, 512, 1000}
	for _, lo := range bases {
		for mid := lo + 1; mid < lo+3*BlockAlign+5; mid++ {
			got := alignSplit(lo, mid)
			if got <= lo || got > mid {
				t.Fatalf("alignSplit(%d, %d) = %d escapes (lo, mid]", lo, mid, got)
			}
			if got%BlockAlign != 0 && got != mid {
				t.Fatalf("alignSplit(%d, %d) = %d neither aligned nor the proposal", lo, mid, got)
			}
			// If an aligned cut above lo exists at or below mid, it is taken.
			if a := mid &^ (BlockAlign - 1); a > lo && got != a {
				t.Fatalf("alignSplit(%d, %d) = %d, aligned cut %d available", lo, mid, got, a)
			}
		}
	}
}

// ParallelFor must execute every index exactly once for adversarial
// (n, workers, grain) shapes — including those that leave seed blocks
// shorter than BlockAlign, which is the only way a split range acquires an
// unaligned base. When every seed block is at least BlockAlign long and the
// grain is at least 2*BlockAlign (so a halving proposal always reaches the
// next absolute boundary), every leaf range additionally starts on a
// BlockAlign boundary (the property that keeps block kernels full-width).
func TestParallelForExactCoverAdversarialShapes(t *testing.T) {
	ns := []int{1, 2, 31, 255, 256, 257, 511, 513, 1000, 4097, 3 * BlockAlign * 8}
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range ns {
			for _, grain := range []int{1, 32, 256, 512, 1000} {
				hits := make([]int32, n)
				var mu sync.Mutex
				var leaves [][2]int
				p.ParallelFor(n, grain, func(_, lo, hi int) {
					mu.Lock()
					leaves = append(leaves, [2]int{lo, hi})
					mu.Unlock()
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d ran %d times",
							workers, n, grain, i, h)
					}
				}
				if n >= workers*BlockAlign && grain >= 2*BlockAlign {
					for _, l := range leaves {
						if l[0]%BlockAlign != 0 {
							t.Fatalf("workers=%d n=%d grain=%d: leaf [%d,%d) has unaligned base",
								workers, n, grain, l[0], l[1])
						}
					}
				}
			}
		}
		p.Close()
	}
}
