package sharedalias_test

import (
	"testing"

	"triolet/internal/analysis/analysistest"
	"triolet/internal/analysis/sharedalias"
)

// TestRelinquish proves direct writes, alias writes, append, and copy
// after SendShared/serial.Raw are flagged; fill-then-ship, plain Send,
// and rebinding are not; and a reasoned allow suppresses the documented
// flow-insensitive false positive.
func TestRelinquish(t *testing.T) {
	analysistest.Run(t, sharedalias.Analyzer,
		"testdata/src/sharedalias", "sharedfixture")
}
