// Package sharedalias enforces the zero-copy relinquish contract from the
// wire path (DESIGN.md §11): a buffer handed to SendShared — or viewed as
// wire bytes by serial.Raw — belongs to the fabric afterwards. On the
// in-process fabric the receiver aliases the sender's backing array, so a
// later write by the sender is a silent cross-rank data race that no
// copy-based test will catch.
//
// The pass is intraprocedural and flow-insensitive by position: within
// one function, once a buffer is relinquished every later statement that
// writes it (element store, re-slice-and-store through an alias, append,
// copy-into) is flagged. Writes that are provably sequenced before the
// send but appear later in the source must be restructured or carry
// //lint:allow sharedalias <reason>.
package sharedalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"triolet/internal/analysis"
)

// Analyzer is the sharedalias pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedalias",
	Doc: "writes to a buffer after it was relinquished to SendShared or " +
		"aliased as wire bytes by serial.Raw",
	Run: run,
}

const serialPkg = "triolet/internal/serial"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false // literals inside are scanned with their function
			case *ast.FuncLit:
				// Top-level literals (package-level var initializers).
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// mark records where a variable was relinquished (or aliased from a
// relinquished variable).
type mark struct {
	pos token.Pos
	via string // "SendShared", "serial.Raw", or the alias source
}

// checkBody runs the relinquish-then-write check over one function body,
// including nested literals (a deferred or spawned closure writing the
// buffer is still a write after the send).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	marks := map[*types.Var]mark{}

	// Pass 1: collect relinquish events and propagate through aliases.
	// Two sweeps reach a fixpoint for the forward-only chains that occur
	// in practice (alias taken after the mark it inherits).
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if v, via, ok := relinquished(info, n); ok {
					if _, dup := marks[v]; !dup {
						marks[v] = mark{pos: n.Pos(), via: via}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					src := analysis.BaseIdent(rhs)
					if src == nil {
						continue
					}
					sv, ok := info.Uses[src].(*types.Var)
					if !ok {
						continue
					}
					m, ok := marks[sv]
					if !ok || n.Pos() < m.pos {
						continue
					}
					dst := analysis.BaseIdent(n.Lhs[i])
					if dst == nil || dst.Name == "_" {
						continue
					}
					if dv := objOf(info, dst); dv != nil {
						if _, dup := marks[dv]; !dup {
							marks[dv] = mark{pos: m.pos, via: m.via}
						}
					}
				}
			}
			return true
		})
	}
	if len(marks) == 0 {
		return
	}

	// Pass 2: flag writes after the mark.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, rebind := ast.Unparen(lhs).(*ast.Ident); rebind {
					// Rebinding the variable to a fresh slice is safe; the
					// relinquished backing array is untouched. Writes through
					// a stale re-slice of it are caught via the alias marks.
					continue
				}
				if id := analysis.BaseIdent(lhs); id != nil {
					reportWrite(pass, marks, id, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if id := analysis.BaseIdent(n.X); id != nil {
				reportWrite(pass, marks, id, n.Pos())
			}
		case *ast.CallExpr:
			// copy(relinquished, …) and append(relinquished, …) write the
			// backing array even when the result is discarded or stored
			// elsewhere.
			if id, ok := builtinTarget(info, n); ok {
				reportWrite(pass, marks, id, n.Pos())
			}
		}
		return true
	})
}

// relinquished reports whether call hands a buffer to the fabric, and
// which variable it is rooted at.
func relinquished(info *types.Info, call *ast.CallExpr) (*types.Var, string, bool) {
	if len(call.Args) == 0 {
		return nil, "", false
	}
	var arg ast.Expr
	var via string
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		switch {
		case fn.Name() == "SendShared":
			arg, via = call.Args[len(call.Args)-1], "SendShared"
		case fn.Name() == "Raw" && fn.Pkg() != nil && fn.Pkg().Path() == serialPkg:
			arg, via = call.Args[0], "serial.Raw"
		}
	}
	if arg == nil {
		return nil, "", false
	}
	id := analysis.BaseIdent(arg)
	if id == nil {
		return nil, "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil, "", false
	}
	return v, via, true
}

// builtinTarget returns the base identifier a copy/append builtin call
// writes through, when its destination is identifier-rooted.
func builtinTarget(info *types.Info, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || (b.Name() != "copy" && b.Name() != "append") {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	dst := analysis.BaseIdent(call.Args[0])
	if dst == nil {
		return nil, false
	}
	return dst, true
}

func reportWrite(pass *analysis.Pass, marks map[*types.Var]mark, id *ast.Ident, at token.Pos) {
	v := objOf(pass.TypesInfo, id)
	if v == nil {
		return
	}
	m, ok := marks[v]
	if !ok || at <= m.pos {
		return
	}
	pass.Reportf(at,
		"%q is written after being relinquished to %s; the receiver may alias this backing "+
			"array — allocate a fresh buffer or move the write before the send",
		id.Name, m.via)
}

// objOf resolves an identifier to its variable object whether the site is
// a use or a definition.
func objOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}
