// Fixture for the sharedalias analyzer: writes to a buffer after it was
// relinquished to SendShared or viewed as wire bytes by serial.Raw.
package sharedfixture

import "triolet/internal/serial"

// conn stands in for transport.Endpoint / mpi.Comm: the contract is
// carried by the SendShared method name, wherever it is defined.
type conn struct{}

func (conn) SendShared(dst, tag int, payload []byte) error { return nil }
func (conn) Send(dst, tag int, payload []byte) error       { return nil }

func writeAfterSend(c conn, buf []byte) {
	_ = c.SendShared(1, 0, buf)
	buf[0] = 1 // want `sharedalias: "buf" is written after being relinquished to SendShared`
}

func writeAfterRaw(xs []float64) []byte {
	b := serial.Raw(xs)
	xs[0] = 2 // want `sharedalias: "xs" is written after being relinquished to serial\.Raw`
	return b
}

func aliasedWrites(c conn, buf []byte) {
	_ = c.SendShared(1, 0, buf)
	tail := buf[2:]
	tail[0] = 9          // want `sharedalias: "tail" is written after being relinquished to SendShared`
	buf = append(buf, 1) // want `sharedalias: "buf" is written after`
	copy(buf, tail)      // want `sharedalias: "buf" is written after`
}

// Writes sequenced before the send are the normal fill-then-ship pattern.
func writeBeforeSendOK(c conn, buf []byte) {
	buf[0] = 1
	copy(buf[1:], buf[:1])
	_ = c.SendShared(1, 0, buf)
}

// A copying Send relinquishes nothing.
func plainSendOK(c conn, buf []byte) {
	_ = c.Send(1, 0, buf)
	buf[0] = 1
}

// Rebinding the variable to a fresh allocation is safe: the relinquished
// backing array is untouched. (A later write through the rebound variable
// is a known flow-insensitive false positive; carry an allow.)
func rebindOK(c conn, buf []byte) []byte {
	_ = c.SendShared(1, 0, buf)
	buf = make([]byte, 4)
	buf[0] = 1 //lint:allow sharedalias buf was rebound to a fresh allocation on the previous line
	return buf
}
