// Package kernelpure enforces the determinism contract on user kernels —
// the invariant the whole system rests on (PPoPP 2014 §2: skeletons are
// safe to parallelize and distribute because user code is pure) and the
// one the diffcheck oracle silently assumes when it demands bit-identical
// results across execution modes.
//
// A function literal is a kernel when it is (a) registered through
// cluster.RegisterFarm, (b) converted to cluster.FarmFn, or (c) passed to
// any exported entrypoint of the iter or core skeleton packages (Map,
// Filter, Reduce, ZipWith, ChunkPartials, NewMapReduce, …). Inside a
// kernel the pass flags the four impurity classes that break cross-mode
// determinism:
//
//   - writes to variables captured from the enclosing scope (kernels may
//     run concurrently, on another node, or twice after a fault replay);
//   - calls to the unseeded global math/rand source;
//   - wall-clock reads (time.Now/Since/Until);
//   - ranging over a map (iteration order differs per run and per node).
//
// Deliberate exceptions carry //lint:allow kernelpure <reason>.
package kernelpure

import (
	"go/ast"
	"go/token"
	"go/types"

	"triolet/internal/analysis"
)

// KernelPkgs are the skeleton packages whose exported func-taking
// entrypoints put a function-literal argument in kernel position.
var KernelPkgs = map[string]bool{
	"triolet/internal/iter": true,
	"triolet/internal/core": true,
}

const (
	clusterPkg   = "triolet/internal/cluster"
	registerFarm = "RegisterFarm"
	farmFnType   = "FarmFn"
)

// Analyzer is the kernelpure pass.
var Analyzer = &analysis.Analyzer{
	Name: "kernelpure",
	Doc: "impure skeleton kernels: captured-variable writes, unseeded math/rand, " +
		"wall-clock reads, and map iteration inside farm/pipeline kernels",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The skeleton packages are the trusted implementation: their own
	// closures (block drivers, accumulator plumbing) uphold determinism by
	// construction and are proven by the diffcheck oracle. The purity
	// contract binds the user side of the API boundary.
	if KernelPkgs[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lit := range kernelLits(pass, call) {
				checkKernel(pass, lit)
			}
			return true
		})
	}
	return nil
}

// kernelLits returns the function literals call places in kernel position.
func kernelLits(pass *analysis.Pass, call *ast.CallExpr) []*ast.FuncLit {
	info := pass.TypesInfo

	// Conversion to cluster.FarmFn: FarmFn(func(...){...}).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if named, ok := tv.Type.(*types.Named); ok &&
			named.Obj().Name() == farmFnType && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == clusterPkg && len(call.Args) == 1 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				return []*ast.FuncLit{lit}
			}
		}
		return nil
	}

	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pkg := fn.Pkg().Path()
	kernelCall := pkg == clusterPkg && fn.Name() == registerFarm ||
		KernelPkgs[pkg] && fn.Exported()
	// Inside the skeleton packages themselves every internal helper that
	// forwards a kernel takes it as a func-typed argument too; the
	// exported-entrypoint rule at the boundary is what user code sees.
	if !kernelCall {
		return nil
	}
	var lits []*ast.FuncLit
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	return lits
}

// checkKernel applies the four purity checks to one kernel body.
func checkKernel(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	inKernel := func(pos token.Pos) bool { return lit.Pos() <= pos && pos <= lit.End() }

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares locals; shadowed reuse stays in scope
			}
			for _, lhs := range n.Lhs {
				reportCapturedWrite(pass, lhs, inKernel)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, n.X, inKernel)
		case *ast.CallExpr:
			if name, ok := analysis.WallClockCall(info, n); ok &&
				(name == "Now" || name == "Since" || name == "Until") {
				pass.Reportf(n.Pos(),
					"kernel reads the wall clock (time.%s); kernels must be deterministic — "+
						"pass time in as task data if it is part of the computation", name)
			}
			if fn := analysis.CalleeFunc(info, n); fn != nil && fn.Pkg() != nil {
				p := fn.Pkg().Path()
				if (p == "math/rand" || p == "math/rand/v2") &&
					fn.Type().(*types.Signature).Recv() == nil &&
					fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewPCG" {
					pass.Reportf(n.Pos(),
						"kernel draws from the global %s source (rand.%s); seed a local "+
							"rand.New(rand.NewSource(taskSeed)) so replays and reassignments reproduce",
						p, fn.Name())
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Report(n.Pos(),
						"kernel ranges over a map: iteration order is nondeterministic across "+
							"runs and nodes; iterate a sorted key slice instead")
				}
			}
		}
		return true
	})
}

// reportCapturedWrite flags an assignment target rooted at a variable
// declared outside the kernel literal.
func reportCapturedWrite(pass *analysis.Pass, lhs ast.Expr, inKernel func(token.Pos) bool) {
	id := analysis.BaseIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	if inKernel(obj.Pos()) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"kernel writes captured variable %q (declared outside the kernel); kernels may run "+
			"concurrently, remotely, or twice under fault replay — return the value instead",
		id.Name)
}
