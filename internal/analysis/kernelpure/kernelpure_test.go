package kernelpure_test

import (
	"testing"

	"triolet/internal/analysis/analysistest"
	"triolet/internal/analysis/kernelpure"
)

// TestKernels proves the four impurity classes are flagged in farm and
// pipeline kernel position, pure kernels and non-kernel closures are not,
// and a reasoned allow suppresses.
func TestKernels(t *testing.T) {
	analysistest.Run(t, kernelpure.Analyzer,
		"testdata/src/kernelpure", "kernelfixture")
}
