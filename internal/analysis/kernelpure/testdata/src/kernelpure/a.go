// Fixture for the kernelpure analyzer: function literals in kernel
// position (cluster.RegisterFarm, cluster.FarmFn conversions, exported
// iter entrypoints) checked for the four impurity classes.
package kernelfixture

import (
	"math/rand"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/iter"
)

var counter int
var shared []int

func impureFarmKernel() {
	cluster.RegisterFarm("bad", func(n *cluster.Node, task []byte) ([]byte, error) {
		counter++              // want `kernelpure: kernel writes captured variable "counter"`
		if rand.Intn(2) == 0 { // want `kernelpure: kernel draws from the global math/rand source`
			return nil, nil
		}
		_ = time.Now() // want `kernelpure: kernel reads the wall clock \(time\.Now\)`
		return task, nil
	})
}

var _ = cluster.FarmFn(func(n *cluster.Node, task []byte) ([]byte, error) {
	shared = task2ints(task) // want `kernelpure: kernel writes captured variable "shared"`
	return task, nil
})

func task2ints([]byte) []int { return nil }

func impureMapKernel(xs []int, weights map[int]int) iter.Iter[int] {
	return iter.Map(func(x int) int {
		shared[0] = x // want `kernelpure: kernel writes captured variable "shared"`
		total := 0
		for k, v := range weights { // want `kernelpure: kernel ranges over a map`
			total += k * v
		}
		return total
	}, iter.FromSlice(xs))
}

// Pure kernels: locals, parameters, a seeded per-task source, and value
// returns — nothing to report.
func pureKernels(xs []int) iter.Iter[int] {
	doubled := iter.Map(func(x int) int {
		local := []int{x, x}
		local[0]++
		return local[0] + local[1]
	}, iter.FromSlice(xs))
	return iter.Map(func(x int) int {
		r := rand.New(rand.NewSource(int64(x)))
		return x + r.Intn(3)
	}, doubled)
}

// A reduction accumulator parameter is the kernel's own state, not a
// captured variable.
func pureReduce(xs []int) int {
	return iter.Reduce(iter.FromSlice(xs), 0, func(a, x int) int {
		a += x
		return a
	})
}

// Writes to captured state outside kernel position are ordinary Go.
func notAKernel() {
	f := func() { counter++ }
	f()
}

// A deliberate exception carries an allow with its reason.
func allowedCapture(out []int, xs []int) {
	_ = iter.Map(func(x int) int {
		out[x] = x //lint:allow kernelpure out is indexed by task id so concurrent writes never collide
		return x
	}, iter.FromSlice(xs))
}
