// Package analysis is a self-contained static-analysis framework
// mirroring the golang.org/x/tools/go/analysis API surface this module
// cannot depend on (the repo is deliberately dependency-free). It exists
// to turn the runtime's prose contracts — kernels are pure, time flows
// through the injected transport.Clock, SendShared relinquishes the
// buffer, message tags are named and unique, distributed float folds go
// through core's deterministic reductions — into machine-checked
// invariants enforced by cmd/triolet-lint and the CI lint-gate.
//
// The framework loads and type-checks packages with nothing but the
// standard library: module packages are resolved by walking the module
// tree, the standard library is type-checked from GOROOT source via
// go/importer's "source" compiler, so the whole suite runs offline and
// hermetically inside the repo's toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one lint pass: a named, documented checker run over
// a type-checked package. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer so the passes could be ported
// to the upstream driver verbatim if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> suppression comments.
	Name string
	// Doc is the contract the analyzer enforces, shown by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax trees (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the package's import path within the module (or the
	// fixture-relative path under analysistest).
	PkgPath string
	// TypesInfo holds the type-checker's syntax→object maps.
	TypesInfo *types.Info
	// report receives diagnostics; the driver applies suppression.
	report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report emits a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// File returns the *ast.File containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// IsPkgCall reports whether call is a direct call of the package-level
// function pkgPath.name (matched through the file's import aliasing), and
// returns the *types.Func when it is.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return nil, false
	}
	return fn, true
}

// CalleeFunc resolves the function or method object a call invokes, when
// it is statically known (package function, method, or local func value
// declaration it does not chase).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
