package analysis

import (
	"strings"
	"testing"
)

// TestLoadModulePackages proves the stdlib-only loader can type-check the
// runtime packages the analyzers target, including their full transitive
// stdlib closure resolved from GOROOT source.
func TestLoadModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "triolet" {
		t.Fatalf("module path = %q, want triolet", l.ModulePath)
	}
	for _, path := range []string{
		"triolet/internal/transport",
		"triolet/internal/mpi",
		"triolet/internal/cluster",
	} {
		p, err := l.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if len(p.Files) == 0 || p.Types == nil {
			t.Fatalf("Load(%s): empty package", path)
		}
	}
}

// TestExpandPatterns checks ./... expansion skips testdata and finds the
// analyzer packages themselves.
func TestExpandPatterns(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}
	for _, want := range []string{"triolet/internal/mpi", "triolet/internal/analysis"} {
		if !seen[want] {
			t.Errorf("Expand(./...) missing %s (got %d packages)", want, len(paths))
		}
	}
	for p := range seen {
		if p != "triolet" && !strings.HasPrefix(p, "triolet/") {
			t.Errorf("package path %q not rooted at the module", p)
		}
	}
}
