// Package analysistest runs an analyzer over a golden fixture package and
// diffs its diagnostics against "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own driver.
//
// A fixture line carrying one or more expectations looks like
//
//	now := time.Now() // want `fabrictime: .*time\.Now`
//
// Each backquoted (or double-quoted) string is a regular expression that
// must match the full "analyzer: message" text of exactly one diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. Suppressed findings report
// nothing, so a fixture line with an applicable //lint:allow comment
// simply carries no want.
//
// Fixtures are loaded under a caller-chosen import path, so a fixture can
// pose as a package inside an analyzer's scope (for example as
// triolet/internal/mpi) without touching the real package.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"triolet/internal/analysis"
)

var wantRE = regexp.MustCompile("// want (.*)$")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture package in dir (conventionally
// testdata/src/<name>), registers it under pkgPath, applies the analyzer,
// and reports every mismatch against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(pkgPath, abs)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := l.RunPackage([]*analysis.Analyzer{a}, pkg)
	if err != nil {
		t.Fatal(err)
	}

	wants, err := parseWants(abs)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := l.Fset.Position(d.Pos)
			if pos.Filename != w.file || pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Analyzer + ": " + d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			pos := l.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// parseWants extracts every want expectation from the fixture's Go files.
func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllString(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment", path, i+1)
			}
			for _, arg := range args {
				var pat string
				if strings.HasPrefix(arg, "`") {
					pat = strings.Trim(arg, "`")
				} else {
					pat, err = strconv.Unquote(arg)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %w", path, i+1, arg, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %w", path, i+1, err)
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}
