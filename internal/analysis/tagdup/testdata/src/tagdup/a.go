// Fixture for the tagdup analyzer; loaded posing as triolet/internal/mpi,
// a tag-owning package.
package tagfixture

// Named tag constants: unique values pass, a duplicate is flagged at its
// (position-wise) second definition.
const (
	tagAlpha  = 5
	tagBeta   = 6
	tagStolen = 5 // want `tagdup: tag constant tagStolen duplicates the value of tagAlpha \(5\)`
	// Derived tags a constant apart are the idiom; still unique.
	tagGamma = tagBeta + 1
	// Non-tag constants share values freely.
	maxRetries   = 5
	kindControl  = 6
	BacklogDepth = 5
)

func Send(dst, tag int, payload []byte) error    { return nil }
func Recv(src, tag int) ([]byte, error)          { return nil, nil }
func Other(dst, count int, payload []byte) error { return nil }

func callSites() {
	_ = Send(1, tagAlpha, nil)
	_, _ = Recv(1, tagGamma)
	_ = Send(1, 42, nil) // want `tagdup: raw literal 42 passed as the tag to Send`
	_, _ = Recv(1, 7)    // want `tagdup: raw literal 7 passed as the tag to Recv`
	// A literal in a non-tag parameter is fine.
	_ = Other(1, 42, nil)
	// Suppressed with a reason.
	_ = Send(1, 9, nil) //lint:allow tagdup protocol probe deliberately uses an unclaimed tag
}
