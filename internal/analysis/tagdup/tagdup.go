// Package tagdup enforces the message-tag discipline in the
// communication layers: every tag is a named constant (never a raw
// integer literal at a Send/Recv call site, where a typo silently
// cross-wires two protocols), and within a package no two tag constants
// share a value (a duplicate makes one protocol's messages match
// another's receive, the hardest class of fabric bug to debug — the farm
// tags, the control tag, and the reliable layer's wire tags all live a
// constant apart).
package tagdup

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"triolet/internal/analysis"
)

// ScopePkgs are the packages that own wire tags.
var ScopePkgs = map[string]bool{
	"triolet/internal/mpi":     true,
	"triolet/internal/cluster": true,
}

// Analyzer is the tagdup pass.
var Analyzer = &analysis.Analyzer{
	Name: "tagdup",
	Doc: "duplicate message-tag constant values, and raw integer literals " +
		"passed as tags at Send/Recv call sites",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !ScopePkgs[pass.PkgPath] {
		return nil
	}
	checkDuplicates(pass)
	checkLiteralTags(pass)
	return nil
}

// checkDuplicates reports two package-level tag constants sharing a value.
func checkDuplicates(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	type tagConst struct {
		name string
		val  int64
		obj  *types.Const
	}
	var tags []tagConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.Contains(strings.ToLower(name), "tag") {
			continue
		}
		if c.Val().Kind() != constant.Int {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		tags = append(tags, tagConst{name: name, val: v, obj: c})
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].val != tags[j].val {
			return tags[i].val < tags[j].val
		}
		return tags[i].obj.Pos() < tags[j].obj.Pos()
	})
	for i := 1; i < len(tags); i++ {
		if tags[i].val == tags[i-1].val {
			pass.Reportf(tags[i].obj.Pos(),
				"tag constant %s duplicates the value of %s (%d); overlapping tags cross-wire "+
					"protocols on the shared fabric", tags[i].name, tags[i-1].name, tags[i].val)
		}
	}
}

// checkLiteralTags reports raw integer literals in tag argument position.
func checkLiteralTags(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if sig.Params().At(i).Name() != "tag" {
					continue
				}
				if lit, ok := ast.Unparen(call.Args[i]).(*ast.BasicLit); ok {
					pass.Report(call.Args[i].Pos(), fmt.Sprintf(
						"raw literal %s passed as the tag to %s; tags must be named constants "+
							"so tagdup can prove them unique", lit.Value, fn.Name()))
				}
			}
			return true
		})
	}
}
