package tagdup_test

import (
	"testing"

	"triolet/internal/analysis/analysistest"
	"triolet/internal/analysis/tagdup"
)

// TestTags proves duplicate tag-constant values and raw literal tags at
// call sites are flagged, derived/non-tag constants and non-tag literal
// arguments are not, and a reasoned allow suppresses.
func TestTags(t *testing.T) {
	analysistest.Run(t, tagdup.Analyzer, "testdata/src/tagdup", "triolet/internal/mpi")
}
