// dist*.go files under internal/parboil are the hand-rolled
// decompositions: in scope.
package parboilfixture

func distSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want `floatdet: \+= float accumulation`
	}
	return s
}
