// Non-dist files in a parboil package are the single-node kernels: their
// accumulation order never depends on the decomposition, so they are out
// of scope.
package parboilfixture

func kernelSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
