// Fixture for the floatdet analyzer; loaded posing as
// triolet/internal/cluster, a whole-package distributed path.
package clusterfixture

func badSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want `floatdet: \+= float accumulation in a distributed path`
	}
	return s
}

func spelledOutForm(xs []float32) float32 {
	var s float32
	for i := 0; i < len(xs); i++ {
		s = s + xs[i] // want `floatdet: \+= float accumulation`
	}
	return s
}

func subtractionToo(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s -= x // want `floatdet: -= float accumulation`
	}
	return s
}

type stats struct{ total float64 }

func fieldAccumulation(st *stats, xs []float64) {
	for _, x := range xs {
		st.total += x // want `floatdet: \+= float accumulation`
	}
}

// Integer accumulation commutes exactly; not a finding.
func intSumOK(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Outside a loop there is no decomposition-dependent order.
func scalarOK(a, b float64) float64 {
	a += b
	return a
}

// The oracle's deliberate legacy reproduction carries an allow.
func allowedLegacy(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x //lint:allow floatdet reproduces the legacy node-grouped fold the oracle regression-tests
	}
	return s
}
