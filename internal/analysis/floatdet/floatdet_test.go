package floatdet_test

import (
	"testing"

	"triolet/internal/analysis/analysistest"
	"triolet/internal/analysis/floatdet"
)

// TestClusterScope proves +=, -=, the spelled-out s = s + x form, and
// struct-field accumulation are flagged in a whole-scope package;
// integer and non-loop accumulation are not; a reasoned allow
// suppresses.
func TestClusterScope(t *testing.T) {
	analysistest.Run(t, floatdet.Analyzer,
		"testdata/src/cluster", "triolet/internal/cluster")
}

// TestParboilDistFiles proves the dist*.go file filter: the same loop is
// flagged in dist.go and ignored in kernel.go of the same package.
func TestParboilDistFiles(t *testing.T) {
	analysistest.Run(t, floatdet.Analyzer,
		"testdata/src/parboil", "triolet/internal/parboil/fixture")
}
