// Package floatdet flags nondeterministic floating-point accumulation in
// distributed paths: a plain `s += x` (or `s = s + x`) loop whose partial
// order depends on how work was split across nodes produces results that
// differ by node count — exactly the bug class the diffcheck oracle
// flushed out of the farm reduction (PR 6) and that
// core.DetSum/ChunkPartials/CombineTree exist to prevent. The scope is
// the code that runs under varying decompositions: internal/cluster,
// internal/diffcheck, and each parboil benchmark's dist*.go.
//
// Accumulations whose order is fixed regardless of decomposition (a loop
// over an already-deterministically-merged slice, the deliberate legacy
// reproduction in the oracle) carry //lint:allow floatdet <reason>.
package floatdet

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"triolet/internal/analysis"
)

// ScopePkgs are package paths whose every file is in scope.
var ScopePkgs = map[string]bool{
	"triolet/internal/cluster":   true,
	"triolet/internal/diffcheck": true,
}

// ScopeFilePrefix puts files matching dist*.go under any package below
// this prefix in scope: the hand-rolled per-benchmark decompositions.
const ScopeFilePrefix = "triolet/internal/parboil/"

// Analyzer is the floatdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc: "float accumulation loops in distributed paths that bypass the " +
		"deterministic reductions (core.DetSum/ChunkPartials/CombineTree)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	wholePkg := ScopePkgs[pass.PkgPath]
	distFiles := strings.HasPrefix(pass.PkgPath, ScopeFilePrefix)
	if !wholePkg && !distFiles {
		return nil
	}
	for _, f := range pass.Files {
		if !wholePkg {
			base := filepath.Base(pass.Fset.Position(f.FileStart).Filename)
			if !strings.HasPrefix(base, "dist") {
				continue
			}
		}
		checkFile(pass, f)
	}
	return nil
}

// checkFile flags float compound accumulation inside loop bodies.
func checkFile(pass *analysis.Pass, f *ast.File) {
	// Collect loop-body position ranges, then test each assignment for
	// enclosure — simpler and harder to get wrong than depth bookkeeping
	// through Inspect's anonymous pops.
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, s := range loops {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(f, func(node ast.Node) bool {
		n, ok := node.(*ast.AssignStmt)
		if !ok || !inLoop(n.Pos()) {
			return true
		}
		report := func(lhs ast.Expr) {
			if t := pass.TypesInfo.TypeOf(lhs); t != nil && analysis.IsFloat(t) {
				pass.Reportf(lhs.Pos(),
					"%s float accumulation in a distributed path: partial order follows the "+
						"decomposition, so results vary by node count — fold through "+
						"core.DetSum/ChunkPartials/CombineTree instead", opName(n.Tok))
			}
		}
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			for _, lhs := range n.Lhs {
				report(lhs)
			}
		case token.ASSIGN:
			// s = s + x / s = x + s: the spelled-out compound form.
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && isSelfAdd(lhs, n.Rhs[i]) {
					report(lhs)
				}
			}
		}
		return true
	})
}

// isSelfAdd reports whether rhs is `lhs + x` or `x + lhs` (or the `-`
// variants) for a structurally identical lhs identifier chain.
func isSelfAdd(lhs, rhs ast.Expr) bool {
	b, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
		return false
	}
	return sameExpr(lhs, b.X) || (b.Op == token.ADD && sameExpr(lhs, b.Y))
}

// sameExpr compares simple identifier/selector/index chains structurally.
func sameExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	}
	return false
}

func opName(tok token.Token) string {
	if tok == token.SUB_ASSIGN {
		return "-="
	}
	return "+="
}
