package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("triolet/internal/mpi").
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test Go files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the checker's syntax→object maps for Files.
	Info *types.Info
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-internal imports resolve by path inside the
// module tree, everything else type-checks from GOROOT source. Loaded
// packages are cached, so a multi-analyzer run checks each package once.
type Loader struct {
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module's import-path prefix ("triolet").
	ModulePath string
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	std      types.ImporterFrom
	pkgs     map[string]*Package // import path → loaded package
	loading  map[string]bool     // cycle detection
	buildCtx build.Context
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		buildCtx:   ctx,
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and parses the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		b, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Expand resolves package patterns ("./...", "./internal/mpi",
// "triolet/internal/...") into the import paths of the matching module
// packages, in sorted order. Directories named testdata, vendored trees,
// and dot/underscore directories are skipped, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		rel, recursive := strings.CutSuffix(pat, "/...")
		rel = strings.TrimSuffix(rel, "/")
		if rel == "." || rel == "" {
			rel = ""
		} else if r, ok := strings.CutPrefix(rel, l.ModulePath+"/"); ok {
			rel = r
		} else {
			rel = strings.TrimPrefix(rel, "./")
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		if !recursive {
			if l.hasGoFiles(base) {
				add(l.importPathFor(base))
			} else if rel != "" {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(path) {
				add(l.importPathFor(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	p, err := l.buildCtx.ImportDir(dir, 0)
	return err == nil && len(p.GoFiles) > 0
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// Load returns the type-checked package for an import path inside the
// module (or, for analysistest, a path rooted at an extra source dir —
// see LoadDir).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel, ok := strings.CutPrefix(path, l.ModulePath)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not a module package", path)
	}
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	return l.LoadDir(path, dir)
}

// LoadDir parses and type-checks the package in dir, registering it under
// the given import path.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	sort.Strings(bp.GoFiles)
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter resolves module-internal imports through the loader and
// everything else through the source importer (GOROOT source).
type moduleImporter struct{ l *Loader }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}
