// Package fabrictime enforces the clock-injection contract: inside the
// clock-injected runtime packages (transport, mpi, cluster), time never
// comes from the time package directly — it flows through the injected
// transport.Clock, so simulated-time tests stay sound and timeout
// behavior is a function of fabric time, not wall-clock jitter. The
// contract was prose until now ("Never call time.Now here",
// mpi/reliable.go) and was already violated in cluster/farm.go, where
// heartbeat retirement read time.Now despite the plumbed Config.Clock.
//
// Real-time pacing that deliberately stays on the wall clock (sleep
// backoff between polls, scheduling a simulated-latency delivery) must
// carry //lint:allow fabrictime <reason>, which doubles as the audit
// trail for every exemption.
package fabrictime

import (
	"go/ast"
	"path/filepath"

	"triolet/internal/analysis"
)

// ScopePkgs are the clock-injected packages the contract covers.
var ScopePkgs = map[string]bool{
	"triolet/internal/transport": true,
	"triolet/internal/mpi":       true,
	"triolet/internal/cluster":   true,
}

// exemptFiles are the clock shims themselves: the one place a scoped
// package may touch the time package to define the default system clock.
var exemptFiles = map[string]bool{
	"clock.go": true,
}

// Analyzer is the fabrictime pass.
var Analyzer = &analysis.Analyzer{
	Name: "fabrictime",
	Doc: "direct time.Now/Sleep/After/NewTimer/... in clock-injected packages; " +
		"fabric time must flow through the injected transport.Clock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !ScopePkgs[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		if exemptFiles[filepath.Base(pass.Fset.Position(f.FileStart).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := analysis.WallClockCall(pass.TypesInfo, call); ok {
				pass.Reportf(call.Pos(),
					"time.%s bypasses the injected transport.Clock in a clock-injected package; "+
						"read fabric time via Clock().Now (or //lint:allow fabrictime <reason> for deliberate real-time pacing)",
					name)
			}
			return true
		})
	}
	return nil
}
