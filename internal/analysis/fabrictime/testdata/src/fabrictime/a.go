// Fixture for the fabrictime analyzer; loaded posing as a clock-injected
// package (triolet/internal/mpi), so every wall-clock call below is in
// scope.
package fabrictime

import "time"

var sink time.Time

func direct() {
	sink = time.Now()               // want `fabrictime: time\.Now bypasses the injected transport\.Clock`
	time.Sleep(time.Millisecond)    // want `fabrictime: time\.Sleep`
	_ = time.Since(sink)            // want `fabrictime: time\.Since`
	t := time.NewTimer(time.Second) // want `fabrictime: time\.NewTimer`
	defer t.Stop()
	<-time.After(time.Millisecond)      // want `fabrictime: time\.After`
	tick := time.NewTicker(time.Second) // want `fabrictime: time\.NewTicker`
	tick.Stop()
	time.AfterFunc(time.Second, func() {}) // want `fabrictime: time\.AfterFunc`
}

// Value operations on time.Time/Duration never touch the wall clock and
// must not be flagged.
func methodsAreFine(a, b time.Time, d time.Duration) bool {
	c := a.Add(d)
	return c.After(b) || c.Before(b) || b.Sub(a) > d
}

// A deliberate real-time pacing call carries an allow with a reason.
func allowedPacing() {
	time.Sleep(time.Microsecond) //lint:allow fabrictime poll backoff paces the scheduler in real time, not fabric time
}

// An allow without a reason suppresses nothing and is itself a finding.
func reasonIsMandatory() {
	time.Sleep(time.Microsecond) //lint:allow fabrictime // want `fabrictime: time\.Sleep` `lintdirective: lint:allow needs an analyzer name and a reason`
}
