// A package outside the clock-injected scope: wall-clock calls are fine
// here (harness timing, benchmarks, the trace package).
package unscoped

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
