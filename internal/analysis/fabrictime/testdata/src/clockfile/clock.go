// The clock shim file itself is exempt: it is the one place a scoped
// package defines the system clock. No diagnostics expected.
package clockfile

import "time"

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }
