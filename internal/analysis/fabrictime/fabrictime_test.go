package fabrictime_test

import (
	"testing"

	"triolet/internal/analysis/analysistest"
	"triolet/internal/analysis/fabrictime"
)

// TestScoped proves every wall-clock entrypoint is flagged inside a
// clock-injected package, methods on time values are not, a reasoned
// //lint:allow suppresses, and a reasonless one is itself a finding.
func TestScoped(t *testing.T) {
	analysistest.Run(t, fabrictime.Analyzer,
		"testdata/src/fabrictime", "triolet/internal/mpi")
}

// TestClockFileExempt proves the clock shim file may define the system
// clock without findings.
func TestClockFileExempt(t *testing.T) {
	analysistest.Run(t, fabrictime.Analyzer,
		"testdata/src/clockfile", "triolet/internal/transport")
}

// TestUnscoped proves packages outside the clock-injected set are not
// policed.
func TestUnscoped(t *testing.T) {
	analysistest.Run(t, fabrictime.Analyzer,
		"testdata/src/unscoped", "triolet/internal/harness")
}
