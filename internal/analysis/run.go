package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Run applies every analyzer to every listed package (import paths, as
// returned by Expand), applies //lint:allow suppressions, and returns the
// surviving diagnostics in source order. A package that fails to load is
// an error: the lint gate must not silently skip code it cannot see.
func (l *Loader) Run(analyzers []*Analyzer, paths []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		ds, err := l.RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunPackage applies the analyzers to one already-loaded package.
func (l *Loader) RunPackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.Path,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, bad := collectAllows(l.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(l.Fset, allows, d) {
			out = append(out, d)
		}
	}
	// A malformed suppression is itself a diagnostic: an allow without a
	// reason silences a contract with no audit trail, which is exactly
	// what the suite exists to prevent.
	out = append(out, bad...)
	return out, nil
}

// allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	reason   string
	line     int
}

// collectAllows parses every "//lint:allow <analyzer> <reason>" comment in
// the package. An allow with a missing reason (or missing analyzer name)
// is returned as an error diagnostic instead of a usable suppression.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[string][]allow, []Diagnostic) {
	allows := map[string][]allow{} // filename → allows
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				// Fixture convention: a "// want" expectation sharing the
				// line folds into this comment's text; it is never part of
				// the directive.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <why this violation is safe>",
					})
					continue
				}
				allows[pos.Filename] = append(allows[pos.Filename], allow{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     pos.Line,
				})
			}
		}
	}
	return allows, bad
}

// suppressed reports whether d is covered by an allow for its analyzer on
// the same line or the line directly above (the two idiomatic comment
// placements).
func suppressed(fset *token.FileSet, allows map[string][]allow, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, a := range allows[pos.Filename] {
		if a.analyzer != d.Analyzer {
			continue
		}
		if a.line == pos.Line || a.line == pos.Line-1 {
			return true
		}
	}
	return false
}
