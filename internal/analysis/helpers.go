package analysis

import (
	"go/ast"
	"go/types"
)

// BaseIdent returns the leftmost identifier an lvalue or alias expression
// is rooted at: out[i] → out, s.field → s, *p → p, (x)[a:b] → x. It
// returns nil for expressions not rooted at a plain identifier (calls,
// composite literals, …).
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// WallClockCall reports whether call invokes a package-level function of
// the time package that reads or schedules against the wall clock, and
// returns its name ("Now", "Sleep", …).
func WallClockCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	// Methods on time.Time/Timer/… (t.After, d.Sub) are pure value
	// operations; only the package-level functions touch the wall clock.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	switch fn.Name() {
	case "Now", "Sleep", "After", "AfterFunc", "NewTimer", "NewTicker",
		"Since", "Until", "Tick":
		return fn.Name(), true
	}
	return "", false
}

// IsFloat reports whether t's core type is float32 or float64.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
