package array

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

func seqMatrix(h, w int) Matrix[int] {
	m := NewMatrix[int](h, w)
	for i := range m.Data {
		m.Data[i] = i
	}
	return m
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix[int](3, 4)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatalf("At(1,2) = %d", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 4 || row[2] != 42 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 7 // view shares storage
	if m.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
	// Row view must not allow appends to clobber the next row.
	if cap(row) != 4 {
		t.Fatalf("Row cap = %d, want 4", cap(row))
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix[int](-1, 2)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]int{{1, 2}, {3, 4}, {5, 6}})
	if m.H != 3 || m.W != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows = %+v", m)
	}
	if got := FromRows[int](nil); got.H != 0 || got.W != 0 {
		t.Fatalf("FromRows(nil) = %+v", got)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]int{{1, 2}, {3}})
}

func TestRowBand(t *testing.T) {
	m := seqMatrix(4, 3)
	b := m.RowBand(domain.Range{Lo: 1, Hi: 3})
	if b.H != 2 || b.W != 3 {
		t.Fatalf("band shape %dx%d", b.H, b.W)
	}
	if b.At(0, 0) != 3 || b.At(1, 2) != 8 {
		t.Fatalf("band contents wrong: %v", b.Data)
	}
	b.Set(0, 0, -1)
	if m.At(1, 0) != -1 {
		t.Fatal("RowBand is not a view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := seqMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestCopyExtractRectRoundTrip(t *testing.T) {
	prop := func(h0, w0, seed uint8) bool {
		h, w := int(h0%8)+2, int(w0%8)+2
		m := seqMatrix(h, w)
		rect := domain.Rect{
			Rows: domain.Range{Lo: int(seed) % h, Hi: h},
			Cols: domain.Range{Lo: int(seed/2) % w, Hi: w},
		}
		sub := m.ExtractRect(rect)
		dst := NewMatrix[int](h, w)
		dst.CopyRect(rect, sub)
		for y := rect.Rows.Lo; y < rect.Rows.Hi; y++ {
			for x := rect.Cols.Lo; x < rect.Cols.Hi; x++ {
				if dst.At(y, x) != m.At(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyRectShapeMismatchPanics(t *testing.T) {
	m := NewMatrix[int](4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.CopyRect(domain.Rect{Rows: domain.Range{Lo: 0, Hi: 2}, Cols: domain.Range{Lo: 0, Hi: 2}}, NewMatrix[int](3, 2))
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(h0, w0 uint8) bool {
		h, w := int(h0%10)+1, int(w0%10)+1
		m := seqMatrix(h, w)
		tt := Transpose(Transpose(m))
		if tt.H != m.H || tt.W != m.W {
			return false
		}
		for i, v := range tt.Data {
			if v != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeValues(t *testing.T) {
	m := FromRows([][]int{{1, 2, 3}, {4, 5, 6}})
	tr := Transpose(m)
	want := FromRows([][]int{{1, 4}, {2, 5}, {3, 6}})
	for i := range want.Data {
		if tr.Data[i] != want.Data[i] {
			t.Fatalf("Transpose = %v, want %v", tr.Data, want.Data)
		}
	}
}

func TestTransposeIntoBands(t *testing.T) {
	// Transposing band-by-band must equal transposing all at once.
	m := seqMatrix(5, 7)
	whole := Transpose(m)
	banded := NewMatrix[int](7, 5)
	for _, r := range domain.BlockPartition(7, 3) {
		TransposeInto(banded, m, r)
	}
	for i := range whole.Data {
		if banded.Data[i] != whole.Data[i] {
			t.Fatal("banded transpose differs from whole transpose")
		}
	}
}

func TestTransposeIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransposeInto(NewMatrix[int](2, 2), NewMatrix[int](2, 3), domain.Range{Lo: 0, Hi: 2})
}

func TestFill(t *testing.T) {
	s := make([]float64, 5)
	Fill(s, 2.5)
	for _, v := range s {
		if v != 2.5 {
			t.Fatalf("Fill produced %v", s)
		}
	}
}

func TestAddInto(t *testing.T) {
	dst := []int{1, 2, 3}
	AddInto(dst, []int{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Fatalf("AddInto = %v", dst)
	}
}

func TestAddIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddInto([]int{1}, []int{1, 2})
}

func TestSumDotScale(t *testing.T) {
	if got := Sum([]int{1, 2, 3, 4}); got != 10 {
		t.Fatalf("Sum = %d", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	s := []int{1, 2, 3}
	Scale(s, 3)
	if s[2] != 9 {
		t.Fatalf("Scale = %v", s)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]int{1}, []int{1, 2})
}

// Property: Dot is commutative and Sum of elementwise products equals Dot.
func TestDotProperties(t *testing.T) {
	prop := func(xs []int8) bool {
		x := make([]int64, len(xs))
		y := make([]int64, len(xs))
		for i, v := range xs {
			x[i] = int64(v)
			y[i] = int64(v) * 3
		}
		if Dot(x, y) != Dot(y, x) {
			return false
		}
		prod := make([]int64, len(x))
		for i := range x {
			prod[i] = x[i] * y[i]
		}
		return Dot(x, y) == Sum(prod)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
