// Package array provides the dense, unboxed storage types the rest of the
// system computes on: flat vectors and row-major matrices. The paper's
// high-performance style keeps data in flat arrays so that tasks traverse
// contiguous memory and serialization can block-copy (paper §3.4); this
// package is the Go analog of those unboxed arrays.
package array

import (
	"fmt"

	"triolet/internal/domain"
)

// Matrix is a dense row-major h×w matrix backed by a single flat slice.
// Row r occupies Data[r*W : (r+1)*W].
type Matrix[T any] struct {
	H, W int
	Data []T
}

// NewMatrix allocates a zeroed h×w matrix.
func NewMatrix[T any](h, w int) Matrix[T] {
	if h < 0 || w < 0 {
		panic(fmt.Sprintf("array: negative Matrix %dx%d", h, w))
	}
	return Matrix[T]{H: h, W: w, Data: make([]T, h*w)}
}

// FromRows builds a matrix from equal-length rows, copying the data.
func FromRows[T any](rows [][]T) Matrix[T] {
	if len(rows) == 0 {
		return Matrix[T]{}
	}
	w := len(rows[0])
	m := NewMatrix[T](len(rows), w)
	for r, row := range rows {
		if len(row) != w {
			panic(fmt.Sprintf("array: ragged rows: row %d has %d cols, want %d", r, len(row), w))
		}
		copy(m.Row(r), row)
	}
	return m
}

// Dom returns the index domain of the matrix.
func (m Matrix[T]) Dom() domain.Dim2 { return domain.Dim2{H: m.H, W: m.W} }

// At returns the element at row y, column x.
func (m Matrix[T]) At(y, x int) T { return m.Data[y*m.W+x] }

// Set stores v at row y, column x.
func (m Matrix[T]) Set(y, x int, v T) { m.Data[y*m.W+x] = v }

// Row returns the y-th row as a slice view sharing the matrix storage.
func (m Matrix[T]) Row(y int) []T { return m.Data[y*m.W : (y+1)*m.W : (y+1)*m.W] }

// RowBand returns the sub-matrix of rows [lo,hi) as a view sharing storage.
func (m Matrix[T]) RowBand(r domain.Range) Matrix[T] {
	return Matrix[T]{H: r.Len(), W: m.W, Data: m.Data[r.Lo*m.W : r.Hi*m.W]}
}

// Clone returns a deep copy of the matrix.
func (m Matrix[T]) Clone() Matrix[T] {
	d := make([]T, len(m.Data))
	copy(d, m.Data)
	return Matrix[T]{H: m.H, W: m.W, Data: d}
}

// CopyRect copies the contents of src into the rectangle rect of m. src must
// have exactly rect's shape. This is how gathered output blocks are placed
// into the final matrix.
func (m Matrix[T]) CopyRect(rect domain.Rect, src Matrix[T]) {
	if src.H != rect.Rows.Len() || src.W != rect.Cols.Len() {
		panic(fmt.Sprintf("array: CopyRect shape mismatch: src %dx%d, rect %v", src.H, src.W, rect))
	}
	for r := 0; r < src.H; r++ {
		copy(m.Row(rect.Rows.Lo + r)[rect.Cols.Lo:rect.Cols.Lo+src.W], src.Row(r))
	}
}

// ExtractRect returns a copy of the rectangle rect of m as a new matrix.
func (m Matrix[T]) ExtractRect(rect domain.Rect) Matrix[T] {
	out := NewMatrix[T](rect.Rows.Len(), rect.Cols.Len())
	for r := 0; r < out.H; r++ {
		copy(out.Row(r), m.Row(rect.Rows.Lo + r)[rect.Cols.Lo:rect.Cols.Hi])
	}
	return out
}

// Transpose returns a new matrix that is the transpose of m. The sequential
// kernel; sgemm parallelizes transposition over shared memory (paper §4.3)
// via TransposeInto on row bands.
func Transpose[T any](m Matrix[T]) Matrix[T] {
	out := NewMatrix[T](m.W, m.H)
	TransposeInto(out, m, domain.Range{Lo: 0, Hi: m.W})
	return out
}

// TransposeInto writes rows outRows of the transpose of m into out. out must
// be a W×H matrix. Splitting outRows across threads parallelizes the
// transpose.
func TransposeInto[T any](out, m Matrix[T], outRows domain.Range) {
	if out.H != m.W || out.W != m.H {
		panic(fmt.Sprintf("array: TransposeInto shape mismatch: out %dx%d, m %dx%d", out.H, out.W, m.H, m.W))
	}
	for c := outRows.Lo; c < outRows.Hi; c++ {
		dst := out.Row(c)
		for r := 0; r < m.H; r++ {
			dst[r] = m.Data[r*m.W+c]
		}
	}
}

// Fill sets every element of s to v.
func Fill[T any](s []T, v T) {
	for i := range s {
		s[i] = v
	}
}

// AddInto accumulates src into dst elementwise: dst[i] += src[i]. The slices
// must have equal length. This is the histogram-merge step of the two-level
// reductions.
func AddInto[T Number](dst, src []T) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("array: AddInto length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Number is the constraint for element types that support addition and
// multiplication; the skeleton reductions are defined over it.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Sum returns the sum of the elements of s.
func Sum[T Number](s []T) T {
	var acc T
	for _, v := range s {
		acc += v
	}
	return acc
}

// Dot returns the dot product of equal-length vectors.
func Dot[T Number](xs, ys []T) T {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("array: Dot length mismatch %d vs %d", len(xs), len(ys)))
	}
	var acc T
	for i, x := range xs {
		acc += x * ys[i]
	}
	return acc
}

// Scale multiplies every element of s by k in place.
func Scale[T Number](s []T, k T) {
	for i := range s {
		s[i] *= k
	}
}
