package domain

import "testing"

// AlignedPartition invariants: exact contiguous cover of [0, n), every
// boundary except the final Hi a multiple of align, no align-chunk
// straddling two blocks, and chunk counts per block differing by at most
// one. These are the properties the deterministic reduction skeletons rely
// on to keep partial-sum boundaries independent of the node count.
func TestAlignedPartitionProperties(t *testing.T) {
	aligns := []int{1, 2, 16, 256}
	for _, align := range aligns {
		for n := 0; n <= 4*align+7; n += max(1, align/3) {
			for p := 1; p <= 9; p++ {
				out := AlignedPartition(n, p, align)
				if len(out) != p {
					t.Fatalf("n=%d p=%d align=%d: %d blocks", n, p, align, len(out))
				}
				lo := 0
				minChunks, maxChunks := int(^uint(0)>>1), 0
				for i, r := range out {
					if r.Lo != lo {
						t.Fatalf("n=%d p=%d align=%d: block %d starts at %d, want %d", n, p, align, i, r.Lo, lo)
					}
					if r.Hi < r.Lo {
						t.Fatalf("n=%d p=%d align=%d: inverted block %v", n, p, align, r)
					}
					if r.Lo%align != 0 && r.Lo != n {
						t.Fatalf("n=%d p=%d align=%d: block %d Lo %d unaligned", n, p, align, i, r.Lo)
					}
					if i < p-1 && r.Hi%align != 0 && r.Hi != n {
						t.Fatalf("n=%d p=%d align=%d: interior boundary %d unaligned", n, p, align, r.Hi)
					}
					c := (r.Len() + align - 1) / align
					if c < minChunks {
						minChunks = c
					}
					if c > maxChunks {
						maxChunks = c
					}
					lo = r.Hi
				}
				if lo != n {
					t.Fatalf("n=%d p=%d align=%d: cover ends at %d", n, p, align, lo)
				}
				// Whole-chunk balance: block sizes in chunks differ by <= 1
				// (the final block's ragged chunk still counts as one).
				if maxChunks-minChunks > 1 {
					t.Fatalf("n=%d p=%d align=%d: chunk imbalance %d..%d", n, p, align, minChunks, maxChunks)
				}
			}
		}
	}
}

// With align=1 AlignedPartition degenerates to BlockPartition exactly.
func TestAlignedPartitionAlignOneIsBlockPartition(t *testing.T) {
	for n := 0; n < 40; n++ {
		for p := 1; p <= 6; p++ {
			got := AlignedPartition(n, p, 1)
			want := BlockPartition(n, p)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: block %d = %v, want %v", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAlignedPartitionPanics(t *testing.T) {
	for _, bad := range []struct{ n, p, align int }{
		{10, 2, 0}, {10, 2, -1}, {-1, 2, 4}, {10, 0, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AlignedPartition(%d,%d,%d) did not panic", bad.n, bad.p, bad.align)
				}
			}()
			AlignedPartition(bad.n, bad.p, bad.align)
		}()
	}
}
