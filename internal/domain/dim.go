package domain

import "fmt"

// Ix2 identifies one point of a Dim2 domain (the paper's Index Dim2 =
// (Int, Int)). Row-major: Y is the slow (row) coordinate.
type Ix2 struct {
	Y, X int
}

// Dim2 is a dense two-dimensional index domain of H rows by W columns,
// corresponding to the paper's "data Dim2 = Dim2 Int Int". Matrix skeletons
// (rows, outerproduct, transpose) iterate over Dim2 domains.
type Dim2 struct {
	H, W int
}

// NewDim2 returns the h×w domain, panicking on negative extents.
func NewDim2(h, w int) Dim2 {
	if h < 0 || w < 0 {
		panic(fmt.Sprintf("domain: negative Dim2 %dx%d", h, w))
	}
	return Dim2{H: h, W: w}
}

// Size reports the total number of index points (H*W).
func (d Dim2) Size() int { return d.H * d.W }

// Empty reports whether the domain contains no points.
func (d Dim2) Empty() bool { return d.H == 0 || d.W == 0 }

// Linear converts a 2-D index to its row-major linear position.
func (d Dim2) Linear(ix Ix2) int { return ix.Y*d.W + ix.X }

// Unlinear converts a row-major linear position back to a 2-D index.
func (d Dim2) Unlinear(i int) Ix2 { return Ix2{Y: i / d.W, X: i % d.W} }

// Contains reports whether ix lies inside the domain.
func (d Dim2) Contains(ix Ix2) bool {
	return ix.Y >= 0 && ix.Y < d.H && ix.X >= 0 && ix.X < d.W
}

// Intersect returns the overlapping prefix rectangle of two Dim2 domains.
func (d Dim2) Intersect(e Dim2) Dim2 {
	return Dim2{H: min(d.H, e.H), W: min(d.W, e.W)}
}

func (d Dim2) String() string { return fmt.Sprintf("Dim2(%dx%d)", d.H, d.W) }

// Rect is a rectangular sub-block of a Dim2 domain: rows Rows and columns
// Cols, both half-open. Distributed 2-D decompositions hand out Rects.
type Rect struct {
	Rows, Cols Range
}

// Size reports the number of index points in the rectangle.
func (r Rect) Size() int { return r.Rows.Len() * r.Cols.Len() }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.Rows.Empty() || r.Cols.Empty() }

// Contains reports whether ix lies inside the rectangle.
func (r Rect) Contains(ix Ix2) bool { return r.Rows.Contains(ix.Y) && r.Cols.Contains(ix.X) }

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{Rows: r.Rows.Intersect(s.Rows), Cols: r.Cols.Intersect(s.Cols)}
}

func (r Rect) String() string { return fmt.Sprintf("Rect{rows %v, cols %v}", r.Rows, r.Cols) }

// Whole returns the rectangle covering the entire domain.
func (d Dim2) Whole() Rect { return Rect{Rows: Range{0, d.H}, Cols: Range{0, d.W}} }

// GridPartition splits the h×w domain into a py×px grid of rectangles whose
// row and column extents each differ by at most one. Every point belongs to
// exactly one rectangle. Rectangles are returned row-major by grid cell.
// This is the 2-D block decomposition sgemm uses (paper §2, §4.3).
func (d Dim2) GridPartition(py, px int) []Rect {
	rows := BlockPartition(d.H, py)
	cols := BlockPartition(d.W, px)
	out := make([]Rect, 0, py*px)
	for _, rr := range rows {
		for _, cc := range cols {
			out = append(out, Rect{Rows: rr, Cols: cc})
		}
	}
	return out
}

// GridShape chooses a py×px grid with py*px == p that is as close to square
// as possible given the domain's aspect ratio, preferring more row blocks
// for tall domains. It returns (py, px).
func (d Dim2) GridShape(p int) (int, int) {
	if p <= 0 {
		panic(fmt.Sprintf("domain: GridShape with p=%d", p))
	}
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	// best <= sqrt(p); the cofactor is >= best. Put the larger factor on
	// the longer axis.
	small, large := best, p/best
	if d.H >= d.W {
		return large, small
	}
	return small, large
}

// Ix3 identifies one point of a Dim3 domain.
type Ix3 struct {
	Z, Y, X int
}

// Dim3 is a dense three-dimensional index domain (D deep, H rows, W cols).
// The cutcp potential grid iterates over a Dim3 domain.
type Dim3 struct {
	D, H, W int
}

// NewDim3 returns the d×h×w domain, panicking on negative extents.
func NewDim3(d, h, w int) Dim3 {
	if d < 0 || h < 0 || w < 0 {
		panic(fmt.Sprintf("domain: negative Dim3 %dx%dx%d", d, h, w))
	}
	return Dim3{D: d, H: h, W: w}
}

// Size reports the total number of index points (D*H*W).
func (d Dim3) Size() int { return d.D * d.H * d.W }

// Linear converts a 3-D index to its linear position (Z slowest).
func (d Dim3) Linear(ix Ix3) int { return (ix.Z*d.H+ix.Y)*d.W + ix.X }

// Unlinear converts a linear position back to a 3-D index.
func (d Dim3) Unlinear(i int) Ix3 {
	x := i % d.W
	i /= d.W
	return Ix3{Z: i / d.H, Y: i % d.H, X: x}
}

// Contains reports whether ix lies inside the domain.
func (d Dim3) Contains(ix Ix3) bool {
	return ix.Z >= 0 && ix.Z < d.D && ix.Y >= 0 && ix.Y < d.H && ix.X >= 0 && ix.X < d.W
}

func (d Dim3) String() string { return fmt.Sprintf("Dim3(%dx%dx%d)", d.D, d.H, d.W) }

// Box is a rectangular sub-volume of a Dim3 domain: half-open ranges along
// each axis. Atom bounding boxes (cutcp) and 3-D block decompositions hand
// out Boxes.
type Box struct {
	Z, Y, X Range
}

// Size reports the number of index points in the box.
func (b Box) Size() int { return b.Z.Len() * b.Y.Len() * b.X.Len() }

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Z.Empty() || b.Y.Empty() || b.X.Empty() }

// Contains reports whether ix lies inside the box.
func (b Box) Contains(ix Ix3) bool {
	return b.Z.Contains(ix.Z) && b.Y.Contains(ix.Y) && b.X.Contains(ix.X)
}

// Intersect returns the overlap of two boxes (possibly empty).
func (b Box) Intersect(c Box) Box {
	return Box{Z: b.Z.Intersect(c.Z), Y: b.Y.Intersect(c.Y), X: b.X.Intersect(c.X)}
}

func (b Box) String() string { return fmt.Sprintf("Box{z %v, y %v, x %v}", b.Z, b.Y, b.X) }

// Whole returns the box covering the entire domain.
func (d Dim3) Whole() Box {
	return Box{Z: Range{Lo: 0, Hi: d.D}, Y: Range{Lo: 0, Hi: d.H}, X: Range{Lo: 0, Hi: d.W}}
}

// SlabPartition splits the domain into p slabs along the Z axis (the
// simple 3-D work decomposition; slabs keep rows contiguous).
func (d Dim3) SlabPartition(p int) []Box {
	out := make([]Box, 0, p)
	for _, zr := range BlockPartition(d.D, p) {
		out = append(out, Box{Z: zr, Y: Range{Lo: 0, Hi: d.H}, X: Range{Lo: 0, Hi: d.W}})
	}
	return out
}
