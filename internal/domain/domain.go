// Package domain implements the index spaces that Triolet iterators range
// over (the paper's Domain type class, §3.3). A domain describes a set of
// loop indices: Seq is a one-dimensional counted range, Dim2 and Dim3 are
// dense rectangular index spaces. Domains know how to linearize their
// indices, intersect with each other (used by zip), and split themselves
// into blocks (used by the distributed and threaded work partitioners).
package domain

import "fmt"

// Seq is a one-dimensional index domain covering [0, N). It corresponds to
// the paper's "data Seq = Seq Int".
type Seq struct {
	N int
}

// NewSeq returns the 1-D domain of n indices. It panics if n is negative,
// since a domain with negative extent is always a logic error in the caller.
func NewSeq(n int) Seq {
	if n < 0 {
		panic(fmt.Sprintf("domain: negative Seq length %d", n))
	}
	return Seq{N: n}
}

// Size reports the number of indices in the domain.
func (d Seq) Size() int { return d.N }

// Empty reports whether the domain contains no indices.
func (d Seq) Empty() bool { return d.N == 0 }

// Intersect returns the common prefix of two Seq domains. Zipping two
// collections visits the intersection of their domains (paper §3.3).
func (d Seq) Intersect(e Seq) Seq {
	if e.N < d.N {
		return e
	}
	return d
}

func (d Seq) String() string { return fmt.Sprintf("Seq(%d)", d.N) }

// Range is a half-open interval [Lo, Hi) of indices within a Seq domain.
// Work partitioners hand out Ranges; a Range is itself usable as a loop
// bound.
type Range struct {
	Lo, Hi int
}

// NewRange returns the half-open interval [lo, hi), panicking on lo > hi.
func NewRange(lo, hi int) Range {
	if lo > hi {
		panic(fmt.Sprintf("domain: inverted Range [%d,%d)", lo, hi))
	}
	return Range{Lo: lo, Hi: hi}
}

// Len reports the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Empty reports whether the range contains no indices.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether i lies in [Lo, Hi).
func (r Range) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range) Intersect(s Range) Range {
	lo := max(r.Lo, s.Lo)
	hi := min(r.Hi, s.Hi)
	if hi < lo {
		hi = lo
	}
	return Range{Lo: lo, Hi: hi}
}

// Shift translates the range by delta.
func (r Range) Shift(delta int) Range { return Range{Lo: r.Lo + delta, Hi: r.Hi + delta} }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Whole returns the range covering the entire domain.
func (d Seq) Whole() Range { return Range{Lo: 0, Hi: d.N} }

// BlockPartition splits [0, n) into p contiguous blocks whose sizes differ
// by at most one. Every index belongs to exactly one block, and blocks are
// returned in index order. p must be positive; n may be zero, in which case
// all blocks are empty. This is the distribution the paper's par skeleton
// applies across nodes, and again across cores within a node.
func BlockPartition(n, p int) []Range {
	if p <= 0 {
		panic(fmt.Sprintf("domain: BlockPartition with p=%d", p))
	}
	if n < 0 {
		panic(fmt.Sprintf("domain: BlockPartition with n=%d", n))
	}
	out := make([]Range, p)
	q, r := n/p, n%p
	lo := 0
	for i := range p {
		size := q
		if i < r {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Block returns the i-th of p blocks of [0, n), equal to BlockPartition(n,p)[i]
// without allocating the full slice.
func Block(n, p, i int) Range {
	if p <= 0 || i < 0 || i >= p {
		panic(fmt.Sprintf("domain: Block(n=%d, p=%d, i=%d)", n, p, i))
	}
	q, r := n/p, n%p
	var lo, hi int
	if i < r {
		lo = i * (q + 1)
		hi = lo + q + 1
	} else {
		lo = r*(q+1) + (i-r)*q
		hi = lo + q
	}
	return Range{Lo: lo, Hi: hi}
}

// AlignedPartition splits [0, n) into p contiguous blocks like
// BlockPartition, but with every interior boundary snapped down to a
// multiple of align (the final block always ends at n). Snapping keeps a
// fixed align-sized chunking of the domain intact across different p: no
// chunk [k*align, (k+1)*align) ever straddles two blocks, which is what
// lets the deterministic reduction skeletons compute per-chunk partials on
// whichever node owns a chunk and combine them in a shape that depends
// only on n — never on the node count. When n < p*align, trailing blocks
// are empty. align must be positive.
func AlignedPartition(n, p, align int) []Range {
	if align <= 0 {
		panic(fmt.Sprintf("domain: AlignedPartition with align=%d", align))
	}
	if n < 0 {
		panic(fmt.Sprintf("domain: AlignedPartition with n=%d", n))
	}
	// Partition whole chunks (count ±1 per block), then scale back to
	// indices, clamping the ragged final chunk to n.
	chunks := (n + align - 1) / align
	out := BlockPartition(chunks, p)
	for i := range out {
		out[i].Lo = min(out[i].Lo*align, n)
		out[i].Hi = min(out[i].Hi*align, n)
	}
	return out
}

// WeightedPartition splits [0, len(weights)) into p contiguous ranges of
// approximately equal total weight: the cut after index i is placed where
// the cumulative weight first reaches the block's ideal share. Static
// distribution of loops with predictable per-index cost variation —
// triangular pair loops, boundary-clipped stencils — uses this instead of
// BlockPartition; the paper credits Triolet's tpacf edge to "a more even
// distribution of computation time across nodes" (§4.4). All weights must
// be non-negative.
func WeightedPartition(weights []float64, p int) []Range {
	if p <= 0 {
		panic(fmt.Sprintf("domain: WeightedPartition with p=%d", p))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("domain: negative weight %v at %d", w, i))
		}
		total += w
	}
	out := make([]Range, 0, p)
	lo := 0
	cum := 0.0
	for b := 0; b < p-1; b++ {
		target := total * float64(b+1) / float64(p)
		hi := lo
		for hi < len(weights) && cum < target {
			cum += weights[hi]
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	out = append(out, Range{Lo: lo, Hi: len(weights)})
	return out
}

// TriangularPartition splits the outer loop of a triangular pair loop
// (index i pairs with all j > i, so index i costs n-1-i units) into p
// contiguous ranges of approximately equal pair counts.
func TriangularPartition(n, p int) []Range {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(n - 1 - i)
	}
	return WeightedPartition(weights, p)
}

// ChunkPartition splits [0, n) into contiguous chunks of at most chunk
// indices each. The final chunk may be shorter. chunk must be positive.
// Grain-size control in the work-stealing scheduler uses this.
func ChunkPartition(n, chunk int) []Range {
	if chunk <= 0 {
		panic(fmt.Sprintf("domain: ChunkPartition with chunk=%d", chunk))
	}
	if n == 0 {
		return nil
	}
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		out = append(out, Range{Lo: lo, Hi: min(lo+chunk, n)})
	}
	return out
}
