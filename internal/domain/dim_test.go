package domain

import (
	"testing"
	"testing/quick"
)

func TestDim2Basics(t *testing.T) {
	d := NewDim2(3, 4)
	if d.Size() != 12 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.Empty() {
		t.Fatal("3x4 reported empty")
	}
	if !NewDim2(0, 4).Empty() || !NewDim2(3, 0).Empty() {
		t.Fatal("degenerate Dim2 not empty")
	}
	if !d.Contains(Ix2{2, 3}) || d.Contains(Ix2{3, 0}) || d.Contains(Ix2{0, 4}) || d.Contains(Ix2{-1, 0}) {
		t.Fatal("Contains wrong at boundaries")
	}
}

func TestDim2NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDim2(-1, 3)
}

// Property: Unlinear inverts Linear for all in-domain points.
func TestDim2LinearRoundTrip(t *testing.T) {
	prop := func(h0, w0 uint8) bool {
		h := int(h0%20) + 1
		w := int(w0%20) + 1
		d := NewDim2(h, w)
		for i := range d.Size() {
			ix := d.Unlinear(i)
			if !d.Contains(ix) || d.Linear(ix) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDim2Intersect(t *testing.T) {
	got := NewDim2(3, 9).Intersect(NewDim2(5, 4))
	if got != (Dim2{3, 4}) {
		t.Fatalf("Intersect = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Rows: Range{1, 3}, Cols: Range{2, 6}}
	if r.Size() != 8 {
		t.Fatalf("Size = %d", r.Size())
	}
	if r.Empty() {
		t.Fatal("reported empty")
	}
	if !r.Contains(Ix2{1, 2}) || r.Contains(Ix2{3, 2}) || r.Contains(Ix2{1, 6}) {
		t.Fatal("Contains wrong")
	}
	e := Rect{Rows: Range{0, 0}, Cols: Range{0, 5}}
	if !e.Empty() {
		t.Fatal("empty-rows rect not empty")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Rows: Range{0, 4}, Cols: Range{0, 4}}
	b := Rect{Rows: Range{2, 6}, Cols: Range{3, 9}}
	got := a.Intersect(b)
	want := Rect{Rows: Range{2, 4}, Cols: Range{3, 4}}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
}

// Property: a grid partition tiles the domain exactly: sizes sum to H*W and
// every sampled point is in exactly one rectangle.
func TestGridPartitionTiles(t *testing.T) {
	prop := func(h0, w0, py0, px0 uint8) bool {
		h, w := int(h0%30), int(w0%30)
		py, px := int(py0%5)+1, int(px0%5)+1
		d := NewDim2(h, w)
		rects := d.GridPartition(py, px)
		if len(rects) != py*px {
			return false
		}
		total := 0
		for _, r := range rects {
			total += r.Size()
		}
		if total != d.Size() {
			return false
		}
		for i := range d.Size() {
			ix := d.Unlinear(i)
			count := 0
			for _, r := range rects {
				if r.Contains(ix) {
					count++
				}
			}
			if count != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGridShape(t *testing.T) {
	cases := []struct {
		d         Dim2
		p, py, px int
	}{
		{NewDim2(100, 100), 16, 4, 4},
		{NewDim2(1000, 10), 8, 4, 2}, // tall: more row blocks
		{NewDim2(10, 1000), 8, 2, 4}, // wide: more col blocks
		{NewDim2(64, 64), 7, 7, 1},   // prime p on square: degenerate
		{NewDim2(64, 64), 1, 1, 1},
	}
	for _, c := range cases {
		py, px := c.d.GridShape(c.p)
		if py*px != c.p {
			t.Errorf("GridShape(%v, %d): %dx%d does not multiply to %d", c.d, c.p, py, px, c.p)
		}
		if py != c.py || px != c.px {
			t.Errorf("GridShape(%v, %d) = (%d,%d), want (%d,%d)", c.d, c.p, py, px, c.py, c.px)
		}
	}
}

func TestGridShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDim2(2, 2).GridShape(0)
}

func TestDim2Whole(t *testing.T) {
	d := NewDim2(3, 5)
	w := d.Whole()
	if w.Size() != d.Size() || !w.Contains(Ix2{2, 4}) {
		t.Fatalf("Whole = %v", w)
	}
}

func TestDim3Basics(t *testing.T) {
	d := NewDim3(2, 3, 4)
	if d.Size() != 24 {
		t.Fatalf("Size = %d", d.Size())
	}
	if !d.Contains(Ix3{1, 2, 3}) || d.Contains(Ix3{2, 0, 0}) {
		t.Fatal("Contains wrong")
	}
}

func TestDim3NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDim3(1, -2, 3)
}

// Property: Unlinear inverts Linear for Dim3.
func TestDim3LinearRoundTrip(t *testing.T) {
	prop := func(d0, h0, w0 uint8) bool {
		dd := NewDim3(int(d0%6)+1, int(h0%6)+1, int(w0%6)+1)
		for i := range dd.Size() {
			ix := dd.Unlinear(i)
			if !dd.Contains(ix) || dd.Linear(ix) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
