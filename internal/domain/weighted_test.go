package domain

import (
	"testing"
	"testing/quick"
)

// Property: a weighted partition covers [0, n) exactly once, in order, and
// no block's weight exceeds the ideal share by more than one element's
// weight (the greedy bound).
func TestWeightedPartitionProperties(t *testing.T) {
	prop := func(raw []uint8, p0 uint8) bool {
		p := int(p0%8) + 1
		weights := make([]float64, len(raw))
		total := 0.0
		maxW := 0.0
		for i, v := range raw {
			weights[i] = float64(v)
			total += weights[i]
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
		blocks := WeightedPartition(weights, p)
		if len(blocks) != p {
			return false
		}
		prev := 0
		ideal := total / float64(p)
		for _, b := range blocks {
			if b.Lo != prev || b.Hi < b.Lo {
				return false
			}
			prev = b.Hi
			w := 0.0
			for i := b.Lo; i < b.Hi; i++ {
				w += weights[i]
			}
			if w > ideal+maxW+1e-9 {
				return false
			}
		}
		return prev == len(raw)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPartitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WeightedPartition([]float64{1}, 0) },
		func() { WeightedPartition([]float64{-1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightedPartitionZeroWeights(t *testing.T) {
	blocks := WeightedPartition(make([]float64, 10), 3)
	prev := 0
	for _, b := range blocks {
		if b.Lo != prev {
			t.Fatalf("gap in %v", blocks)
		}
		prev = b.Hi
	}
	if prev != 10 {
		t.Fatalf("coverage ends at %d", prev)
	}
}

// The motivating case: a triangular loop statically partitioned. Equal-
// count blocks put ~44% of all pairs in the first of four blocks; weighted
// blocks stay near 25%.
func TestTriangularPartitionBalances(t *testing.T) {
	const n = 10000
	const p = 4
	work := func(r Range) float64 {
		w := 0.0
		for i := r.Lo; i < r.Hi; i++ {
			w += float64(n - 1 - i)
		}
		return w
	}
	total := float64(n) * float64(n-1) / 2

	worstBlocked := 0.0
	for _, r := range BlockPartition(n, p) {
		if w := work(r); w > worstBlocked {
			worstBlocked = w
		}
	}
	worstWeighted := 0.0
	for _, r := range TriangularPartition(n, p) {
		if w := work(r); w > worstWeighted {
			worstWeighted = w
		}
	}
	ideal := total / p
	if worstBlocked < 1.6*ideal {
		t.Fatalf("blocked partition unexpectedly balanced: %v vs ideal %v", worstBlocked, ideal)
	}
	if worstWeighted > 1.05*ideal {
		t.Fatalf("weighted partition imbalanced: %v vs ideal %v", worstWeighted, ideal)
	}
}

// Property: TriangularPartition covers the loop exactly for any (n, p).
func TestTriangularPartitionCoverage(t *testing.T) {
	prop := func(n0, p0 uint8) bool {
		n := int(n0 % 200)
		p := int(p0%8) + 1
		prev := 0
		for _, b := range TriangularPartition(n, p) {
			if b.Lo != prev {
				return false
			}
			prev = b.Hi
		}
		return prev == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
