package domain

import (
	"testing"
	"testing/quick"
)

func TestNewSeq(t *testing.T) {
	d := NewSeq(5)
	if d.Size() != 5 {
		t.Fatalf("Size = %d, want 5", d.Size())
	}
	if d.Empty() {
		t.Fatal("Seq(5) reported empty")
	}
	if !NewSeq(0).Empty() {
		t.Fatal("Seq(0) not empty")
	}
}

func TestNewSeqNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeq(-1) did not panic")
		}
	}()
	NewSeq(-1)
}

func TestSeqIntersect(t *testing.T) {
	a, b := NewSeq(3), NewSeq(7)
	if got := a.Intersect(b); got.N != 3 {
		t.Fatalf("Intersect = %v, want Seq(3)", got)
	}
	if got := b.Intersect(a); got.N != 3 {
		t.Fatalf("Intersect reversed = %v, want Seq(3)", got)
	}
}

func TestSeqWhole(t *testing.T) {
	if got := NewSeq(4).Whole(); got != (Range{0, 4}) {
		t.Fatalf("Whole = %v", got)
	}
}

func TestRangeBasics(t *testing.T) {
	r := NewRange(2, 5)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Empty() {
		t.Fatal("non-empty range reported empty")
	}
	if !r.Contains(2) || !r.Contains(4) || r.Contains(5) || r.Contains(1) {
		t.Fatal("Contains wrong at boundaries")
	}
	if got := r.Shift(10); got != (Range{12, 15}) {
		t.Fatalf("Shift = %v", got)
	}
}

func TestRangeInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRange(5,2) did not panic")
		}
	}()
	NewRange(5, 2)
}

func TestRangeIntersect(t *testing.T) {
	cases := []struct{ a, b, want Range }{
		{Range{0, 5}, Range{3, 8}, Range{3, 5}},
		{Range{0, 5}, Range{5, 8}, Range{5, 5}},
		{Range{0, 5}, Range{7, 8}, Range{7, 7}},
		{Range{2, 9}, Range{0, 100}, Range{2, 9}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Len() != c.want.Len() || (!got.Empty() && got != c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: a block partition covers [0,n) exactly once, in order, with
// block sizes differing by at most one.
func TestBlockPartitionProperties(t *testing.T) {
	prop := func(n0, p0 uint16) bool {
		n := int(n0 % 2000)
		p := int(p0%64) + 1
		blocks := BlockPartition(n, p)
		if len(blocks) != p {
			return false
		}
		prev := 0
		minLen, maxLen := 1<<30, -1
		for _, b := range blocks {
			if b.Lo != prev || b.Hi < b.Lo {
				return false
			}
			prev = b.Hi
			l := b.Len()
			minLen = min(minLen, l)
			maxLen = max(maxLen, l)
		}
		return prev == n && maxLen-minLen <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Block(n,p,i) agrees with BlockPartition(n,p)[i].
func TestBlockAgreesWithPartition(t *testing.T) {
	prop := func(n0, p0 uint16) bool {
		n := int(n0 % 1000)
		p := int(p0%32) + 1
		blocks := BlockPartition(n, p)
		for i := range p {
			if Block(n, p, i) != blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPartitionEdge(t *testing.T) {
	// n == 0: all blocks empty.
	for _, b := range BlockPartition(0, 4) {
		if !b.Empty() {
			t.Fatalf("empty partition produced non-empty block %v", b)
		}
	}
	// p > n: exactly n singleton blocks, rest empty.
	blocks := BlockPartition(3, 5)
	nonEmpty := 0
	for _, b := range blocks {
		if !b.Empty() {
			nonEmpty++
			if b.Len() != 1 {
				t.Fatalf("expected singleton, got %v", b)
			}
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("nonEmpty = %d, want 3", nonEmpty)
	}
}

func TestBlockPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BlockPartition(4, 0) },
		func() { BlockPartition(-1, 2) },
		func() { Block(4, 2, 2) },
		func() { Block(4, 2, -1) },
		func() { ChunkPartition(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: a chunk partition covers [0,n) exactly, every chunk except
// possibly the last has exactly `chunk` indices.
func TestChunkPartitionProperties(t *testing.T) {
	prop := func(n0, c0 uint16) bool {
		n := int(n0 % 3000)
		chunk := int(c0%100) + 1
		chunks := ChunkPartition(n, chunk)
		prev := 0
		for i, c := range chunks {
			if c.Lo != prev || c.Empty() {
				return false
			}
			if i < len(chunks)-1 && c.Len() != chunk {
				return false
			}
			if c.Len() > chunk {
				return false
			}
			prev = c.Hi
		}
		return prev == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkPartitionZero(t *testing.T) {
	if got := ChunkPartition(0, 8); got != nil {
		t.Fatalf("ChunkPartition(0,8) = %v, want nil", got)
	}
}
