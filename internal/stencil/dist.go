package stencil

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// haloTag carries halo-exchange payloads. It lives in its own region of the
// user tag space, below the farm (MaxUserTag-1..-3) and mux
// (MaxUserTag-4..-6) control tags.
const haloTag = mpi.MaxUserTag - 16

// Partition is the row-slab partition map of an h×w grid over a fixed rank
// count. Every rank derives the identical map from (h, w, ranks) alone —
// following the distributed-ranges model, the distribution owns the map and
// halo exchange plans are computed locally, with no negotiation traffic.
// Slabs are contiguous and cover [0, h); when ranks exceed rows, trailing
// slabs are empty and their ranks sit the exchange out.
type Partition struct {
	H, W int
	Rows []domain.Range // one half-open row range per rank, in rank order
}

// NewPartition block-partitions the h rows of an h×w grid over ranks.
func NewPartition(h, w, ranks int) Partition {
	return Partition{H: h, W: w, Rows: domain.BlockPartition(h, ranks)}
}

// Ranks reports the partition's rank count.
func (p Partition) Ranks() int { return len(p.Rows) }

// OwnerOf reports the rank owning global row y, or -1 if y is out of grid.
func (p Partition) OwnerOf(y int) int {
	for r, rng := range p.Rows {
		if rng.Contains(y) {
			return r
		}
	}
	return -1
}

// ghostRows lists, in slot order, the global source row filling each ghost
// slot of rank's slab: first the radius rows above it (covering
// [Lo-radius, Lo)), then the radius rows below ([Hi, Hi+radius)). A source
// of -1 means the slot needs no remote data: it resolves to the border
// constant, or — under Normal — is never read. Out-of-grid slots map
// through the boundary strategy, so under Wrap or Mirror a slot's source
// can be any row of the grid, not just an adjacent slab's: radius ≥ slab
// height and single-slab self-sources fall out of the same arithmetic.
func ghostRows(p Partition, rank, radius int, b Boundary) []int {
	own := p.Rows[rank]
	if own.Empty() || radius == 0 {
		return nil
	}
	srcs := make([]int, 0, 2*radius)
	for k := 0; k < radius; k++ {
		srcs = append(srcs, mapRow(own.Lo-radius+k, p.H, b))
	}
	for k := 0; k < radius; k++ {
		srcs = append(srcs, mapRow(own.Hi+k, p.H, b))
	}
	return srcs
}

func mapRow(y, n int, b Boundary) int {
	if m, ok := mapIndex(y, n, b); ok {
		return m
	}
	return -1
}

// haloPlan is one rank's precomputed exchange schedule. Sender and receiver
// derive matching plans from the shared partition map: rank i's sendTo[j]
// lists exactly the rows rank j's recvFrom[i] expects, in the same order.
type haloPlan struct {
	// sendTo[j] lists this rank's own global rows that fill rank j's ghost
	// slots, in j's slot order.
	sendTo [][]int
	// recvFrom[i] lists this rank's ghost slots filled by rank i's rows,
	// in slot order (slots 0..radius-1 top, radius..2radius-1 bottom).
	recvFrom [][]int
	// local lists {slot, srcRow} pairs this rank resolves from its own
	// rows (wrap/mirror wrapping back into the same slab).
	local [][2]int
	// borderSlots lists slots with no source row: border-constant fills,
	// or never-read slots under Normal.
	borderSlots []int
}

func newHaloPlan(p Partition, rank, radius int, b Boundary) haloPlan {
	n := len(p.Rows)
	pl := haloPlan{sendTo: make([][]int, n), recvFrom: make([][]int, n)}
	own := p.Rows[rank]
	for j := 0; j < n; j++ {
		if j == rank {
			continue
		}
		for _, src := range ghostRows(p, j, radius, b) {
			if src >= 0 && own.Contains(src) {
				pl.sendTo[j] = append(pl.sendTo[j], src)
			}
		}
	}
	for slot, src := range ghostRows(p, rank, radius, b) {
		switch {
		case src < 0:
			pl.borderSlots = append(pl.borderSlots, slot)
		case own.Contains(src):
			pl.local = append(pl.local, [2]int{slot, src})
		default:
			pl.recvFrom[p.OwnerOf(src)] = append(pl.recvFrom[p.OwnerOf(src)], slot)
		}
	}
	return pl
}

// Slab is one rank's share of a distributed stencil grid: its owned rows,
// radius-r ghost storage above and below, a back buffer for double-buffered
// sweeps, and reusable scratch for the exchange. The steady state of an
// iterated slab reuses all grid-sized buffers; only the per-message wire
// encoding allocates.
type Slab[T any] struct {
	Part Partition
	Rank int

	par     Params[T]
	elems   serial.Codec[[]T]
	rows    []T // front: nRows×W, current generation
	back    []T
	top     []T // radius×W ghost rows covering [Lo-radius, Lo)
	bot     []T // radius×W ghost rows covering [Hi, Hi+radius)
	plan    haloPlan
	scratch []T
}

// NewSlab builds rank's slab from its share of the grid (rows is copied,
// len must be Part.Rows[rank].Len()×W). elems is the wire codec for halo
// and gather payloads.
func NewSlab[T any](part Partition, rank int, par Params[T], elems serial.Codec[[]T], rows []T) (*Slab[T], error) {
	if err := par.check(); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= len(part.Rows) {
		return nil, fmt.Errorf("stencil: slab rank %d of %d", rank, len(part.Rows))
	}
	own := part.Rows[rank]
	if len(rows) != own.Len()*part.W {
		return nil, fmt.Errorf("stencil: slab %d got %d cells for %d rows of width %d",
			rank, len(rows), own.Len(), part.W)
	}
	s := &Slab[T]{
		Part:  part,
		Rank:  rank,
		par:   par,
		elems: elems,
		rows:  append([]T(nil), rows...),
		back:  make([]T, len(rows)),
		plan:  newHaloPlan(part, rank, par.Radius, par.Boundary),
	}
	if !own.Empty() && par.Radius > 0 {
		s.top = make([]T, par.Radius*part.W)
		s.bot = make([]T, par.Radius*part.W)
	}
	// Border-constant slots never change across iterations: fill once.
	// (Under Normal a sourceless slot is never read and stays zero.)
	if par.Boundary == Border {
		for _, slot := range s.plan.borderSlots {
			row := s.slotRow(slot)
			for i := range row {
				row[i] = par.Border
			}
		}
	}
	return s, nil
}

// Rows returns the slab's current generation (owned rows, no ghosts). The
// slice is the live front buffer; it is valid until the next Sweep.
func (s *Slab[T]) Rows() []T { return s.rows }

// slotRow returns ghost slot's backing row (slots index top then bottom).
func (s *Slab[T]) slotRow(slot int) []T {
	w := s.Part.W
	if slot < s.par.Radius {
		return s.top[slot*w : (slot+1)*w]
	}
	k := slot - s.par.Radius
	return s.bot[k*w : (k+1)*w]
}

// ownRow returns the front-buffer row at global index y.
func (s *Slab[T]) ownRow(y int) []T {
	w := s.Part.W
	off := (y - s.Part.Rows[s.Rank].Lo) * w
	return s.rows[off : off+w]
}

// ExchangeHalos refreshes the slab's ghost rows from the cluster's current
// front buffers. Every rank with a non-empty plan must call it once per
// sweep; the fabric buffers sends, so posting all sends before any receive
// cannot deadlock. One message per peer per direction carries the peer's
// needed rows concatenated in its slot order, encoded with the slab's
// element codec; the payload is attributed to Stats.HaloBytes via SendHalo.
func (s *Slab[T]) ExchangeHalos(c *mpi.Comm) error {
	w := s.Part.W
	for _, lr := range s.plan.local {
		copy(s.slotRow(lr[0]), s.ownRow(lr[1]))
	}
	for j, rows := range s.plan.sendTo {
		if len(rows) == 0 {
			continue
		}
		if cap(s.scratch) < len(rows)*w {
			s.scratch = make([]T, 0, len(rows)*w)
		}
		buf := s.scratch[:0]
		for _, y := range rows {
			buf = append(buf, s.ownRow(y)...)
		}
		s.scratch = buf
		if err := c.SendHalo(j, haloTag, serial.Marshal(s.elems, buf)); err != nil {
			return fmt.Errorf("stencil: halo send %d→%d: %w", s.Rank, j, err)
		}
	}
	for i, slots := range s.plan.recvFrom {
		if len(slots) == 0 {
			continue
		}
		m, err := c.Recv(i, haloTag)
		if err != nil {
			return fmt.Errorf("stencil: halo recv %d←%d: %w", s.Rank, i, err)
		}
		got, err := serial.Unmarshal(s.elems, m.Payload)
		if err != nil || len(got) != len(slots)*w {
			return fmt.Errorf("stencil: halo payload %d←%d: %d cells for %d slots (%v)",
				s.Rank, i, len(got), len(slots), err)
		}
		for k, slot := range slots {
			copy(s.slotRow(slot), got[k*w:(k+1)*w])
		}
	}
	return nil
}

// Sweep advances the slab one generation on the node's pool: the back
// buffer is written from the front rows plus the ghosts ExchangeHalos just
// refreshed, then the buffers swap roles. The sweep only reads the ghost
// arrays and only writes the back buffer, and the swap touches neither, so
// a sweep can never alias a concurrently exchanged halo.
func (s *Slab[T]) Sweep(pool *sched.Pool, fn Func[T]) {
	own := s.Part.Rows[s.Rank]
	if own.Empty() {
		return
	}
	st := Stencil[T]{Params: s.par, Fn: fn}
	v := &view[T]{
		h: s.Part.H, w: s.Part.W,
		rows: s.rows, rowLo: own.Lo, nRows: own.Len(),
		top: s.top, bot: s.bot,
		radius: s.par.Radius, b: s.par.Boundary, border: s.par.Border,
	}
	dst := iter.Matrix2[T]{H: own.Len(), W: s.Part.W, Data: s.back}
	core.Build2IntoLocal(pool, dst, st.sweepIter(v))
	s.rows, s.back = s.back, s.rows
}

// Op is a registered distributed stencil kernel over the cluster's
// collectives: the master broadcasts a header (shape, iterations, Params)
// and scatters row slabs; every rank then alternates ExchangeHalos and
// Sweep locally; the final generation is gathered back in rank order.
// Register once at init — one registration serves every grid shape, radius,
// and boundary strategy, which travel in the header.
type Op[T any] struct {
	name  string
	elem  serial.Codec[T]
	elems serial.Codec[[]T]
	fn    Func[T]
}

// NewOp registers the distributed stencil kernel "stencil.<name>".
func NewOp[T any](name string, elem serial.Codec[T], elems serial.Codec[[]T], fn Func[T]) *Op[T] {
	op := &Op[T]{name: "stencil." + name, elem: elem, elems: elems, fn: fn}
	cluster.RegisterWorker(op.name, op.workerBody)
	return op
}

// Name reports the kernel's registered name.
func (op *Op[T]) Name() string { return op.name }

// Fn returns the kernel function, so callers can run the same kernel
// locally.
func (op *Op[T]) Fn() Func[T] { return op.fn }

type opHeader[T any] struct {
	h, w, iters int
	par         Params[T]
}

func (op *Op[T]) hdrCodec() serial.Codec[opHeader[T]] {
	return serial.Funcs[opHeader[T]]{
		Enc: func(w *serial.Writer, v opHeader[T]) {
			w.Int(v.h)
			w.Int(v.w)
			w.Int(v.iters)
			w.Int(v.par.Radius)
			w.U8(uint8(v.par.Boundary))
			op.elem.Encode(w, v.par.Border)
		},
		Dec: func(r *serial.Reader) opHeader[T] {
			var v opHeader[T]
			v.h, v.w, v.iters = r.Int(), r.Int(), r.Int()
			v.par.Radius = r.Int()
			v.par.Boundary = Boundary(r.U8())
			v.par.Border = op.elem.Decode(r)
			return v
		},
	}
}

func (op *Op[T]) workerBody(n *cluster.Node) error {
	var zero opHeader[T]
	hdr, err := mpi.BcastT(n.Comm, 0, op.hdrCodec(), zero)
	if err != nil {
		return fmt.Errorf("%s header: %w", op.name, err)
	}
	rows, err := mpi.ScatterT(n.Comm, 0, op.elems, nil)
	if err != nil {
		return fmt.Errorf("%s scatter: %w", op.name, err)
	}
	out, err := op.iterate(n, hdr, rows)
	if err != nil {
		return err
	}
	_, err = mpi.GatherT(n.Comm, 0, op.elems, out)
	return err
}

// iterate is the per-rank body shared by master and workers.
func (op *Op[T]) iterate(n *cluster.Node, hdr opHeader[T], rows []T) ([]T, error) {
	part := NewPartition(hdr.h, hdr.w, n.Nodes())
	sl, err := NewSlab(part, n.Rank(), hdr.par, op.elems, rows)
	if err != nil {
		return nil, err
	}
	endKernel := n.Phase("kernel")
	defer endKernel()
	for i := 0; i < hdr.iters; i++ {
		if err := sl.ExchangeHalos(n.Comm); err != nil {
			return nil, err
		}
		sl.Sweep(n.Pool, op.fn)
	}
	return sl.Rows(), nil
}

// Run executes iters sweeps of the stencil over g on the whole cluster and
// returns the final grid; g is not modified. Call from the master.
func (op *Op[T]) Run(s *cluster.Session, g iter.Matrix2[T], par Params[T], iters int) (iter.Matrix2[T], error) {
	var zero iter.Matrix2[T]
	if err := (Stencil[T]{Params: par, Fn: op.fn}).check(); err != nil {
		return zero, err
	}
	if len(g.Data) != g.H*g.W {
		return zero, fmt.Errorf("stencil: %dx%d grid with %d cells", g.H, g.W, len(g.Data))
	}
	n := s.Node()
	if err := s.Invoke(op.name); err != nil {
		return zero, err
	}
	hdr := opHeader[T]{h: g.H, w: g.W, iters: iters, par: par}
	if _, err := mpi.BcastT(n.Comm, 0, op.hdrCodec(), hdr); err != nil {
		return zero, fmt.Errorf("%s header: %w", op.name, err)
	}
	endScatter := n.Phase("scatter")
	part := NewPartition(g.H, g.W, n.Nodes())
	parts := make([][]T, n.Nodes())
	for i, r := range part.Rows {
		parts[i] = g.Data[r.Lo*g.W : r.Hi*g.W]
	}
	mine, err := mpi.ScatterT(n.Comm, 0, op.elems, parts)
	endScatter()
	if err != nil {
		return zero, fmt.Errorf("%s scatter: %w", op.name, err)
	}
	out, err := op.iterate(n, hdr, mine)
	if err != nil {
		return zero, err
	}
	endGather := n.Phase("gather")
	all, err := mpi.GatherT(n.Comm, 0, op.elems, out)
	endGather()
	if err != nil {
		return zero, fmt.Errorf("%s gather: %w", op.name, err)
	}
	res := iter.Matrix2[T]{H: g.H, W: g.W, Data: make([]T, 0, g.H*g.W)}
	for _, rows := range all {
		res.Data = append(res.Data, rows...)
	}
	if len(res.Data) != g.H*g.W {
		return zero, fmt.Errorf("%s gather: %d cells for %dx%d grid", op.name, len(res.Data), g.H, g.W)
	}
	return res, nil
}
