package stencil

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/serial"
)

// FarmOp runs the iterated stencil as a sequence of Session.Farm rounds —
// one farm job per sweep, one task per non-empty slab — trading the
// collectives' lower overhead for the farm's whole fault-tolerance stack:
// worker-loss reassignment, per-task retry, and WAL checkpoint/resume. The
// master keeps the whole grid; each round it cuts row slabs bundled with
// their strategy-resolved ghost rows (attributed as halo bytes at
// task-build time — provisioned halo volume, since a task may run on the
// master without crossing the fabric), farms the sweeps out, and
// reassembles the next generation. Task results depend only on the task
// payload, so a resumed or re-executed sweep is bit-identical.
type FarmOp[T any] struct {
	name  string
	elem  serial.Codec[T]
	elems serial.Codec[[]T]
	fn    Func[T]
}

// NewFarmOp registers the farm stencil kernel "stencil.farm.<name>".
func NewFarmOp[T any](name string, elem serial.Codec[T], elems serial.Codec[[]T], fn Func[T]) *FarmOp[T] {
	op := &FarmOp[T]{name: "stencil.farm." + name, elem: elem, elems: elems, fn: fn}
	cluster.RegisterFarm(op.name, op.taskBody)
	return op
}

// Name reports the kernel's registered name.
func (op *FarmOp[T]) Name() string { return op.name }

// Fn returns the kernel function, so callers can run the same kernel
// locally (e.g. a differential oracle's sequential reference).
func (op *FarmOp[T]) Fn() Func[T] { return op.fn }

// FarmRunOptions tune a FarmOp run.
type FarmRunOptions struct {
	// Slabs is the task count per sweep (default: the cluster's node
	// count). More slabs than rows degenerates gracefully: empty slabs
	// produce no task.
	Slabs int
	// Farm is passed through to every round's Session.FarmOpts call. A
	// non-empty Job gets a "@<sweep>" suffix per round, so each sweep
	// checkpoints under its own WAL job name and a killed run resumes
	// mid-iteration: finished sweeps replay from their results, the
	// interrupted sweep re-runs only its unfinished slab tasks.
	Farm cluster.FarmOptions
}

// taskBody is the worker-side sweep of one slab: decode rows plus
// pre-resolved ghosts, run the block-engine sweep on the node's pool, and
// return the slab's next generation.
func (op *FarmOp[T]) taskBody(n *cluster.Node, task []byte) ([]byte, error) {
	r := serial.NewReader(task)
	h, w, rowLo := r.Int(), r.Int(), r.Int()
	var par Params[T]
	par.Radius = r.Int()
	par.Boundary = Boundary(r.U8())
	par.Border = op.elem.Decode(r)
	rows := op.elems.Decode(r)
	top := op.elems.Decode(r)
	bot := op.elems.Decode(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%s task: %w", op.name, err)
	}
	if err := par.check(); err != nil {
		return nil, err
	}
	if w <= 0 || len(rows)%w != 0 || len(top) != par.Radius*w || len(bot) != par.Radius*w {
		return nil, fmt.Errorf("%s task: %d cells, %d/%d ghosts, width %d radius %d",
			op.name, len(rows), len(top), len(bot), w, par.Radius)
	}
	nRows := len(rows) / w
	st := Stencil[T]{Params: par, Fn: op.fn}
	v := &view[T]{
		h: h, w: w,
		rows: rows, rowLo: rowLo, nRows: nRows,
		radius: par.Radius, b: par.Boundary, border: par.Border,
	}
	if par.Radius > 0 {
		v.top, v.bot = top, bot
	}
	out := make([]T, len(rows))
	core.Build2IntoLocal(n.Pool, iter.Matrix2[T]{H: nRows, W: w, Data: out}, st.sweepIter(v))
	wtr := serial.NewWriter(len(task))
	op.elems.Encode(wtr, out)
	return wtr.Bytes(), nil
}

// encodeTask builds one slab task from the current grid, returning the task
// and the encoded size of its ghost-row sections (the round's halo volume).
func (op *FarmOp[T]) encodeTask(g iter.Matrix2[T], par Params[T], rng domain.Range, ghost []T) ([]byte, int) {
	w := serial.NewWriter(16 + (rng.Len()+2*par.Radius)*g.W*8)
	w.Int(g.H)
	w.Int(g.W)
	w.Int(rng.Lo)
	w.Int(par.Radius)
	w.U8(uint8(par.Boundary))
	op.elem.Encode(w, par.Border)
	op.elems.Encode(w, g.Data[rng.Lo*g.W:rng.Hi*g.W])
	before := w.Len()
	buildGhost(ghost, g, par, rng.Lo-par.Radius)
	op.elems.Encode(w, ghost)
	buildGhost(ghost, g, par, rng.Hi)
	op.elems.Encode(w, ghost)
	return w.Bytes(), w.Len() - before
}

// buildGhost fills ghost (radius×W) with the strategy-resolved contents of
// the radius global rows starting at loRow: in-grid or wrapped/mirrored
// rows copy from the grid, border rows fill with the constant, and
// Normal's never-read rows stay zero.
func buildGhost[T any](ghost []T, g iter.Matrix2[T], par Params[T], loRow int) {
	w := g.W
	for k := 0; k < par.Radius; k++ {
		row := ghost[k*w : (k+1)*w]
		if my, ok := mapIndex(loRow+k, g.H, par.Boundary); ok {
			copy(row, g.Data[my*w:(my+1)*w])
			continue
		}
		var fill T
		if par.Boundary == Border {
			fill = par.Border
		}
		for i := range row {
			row[i] = fill
		}
	}
}

// Run executes iters farmed sweeps over g and returns the final grid; g is
// not modified. Call from the master. Any quarantined slab task fails the
// run: a stencil generation needs every slab.
func (op *FarmOp[T]) Run(s *cluster.Session, g iter.Matrix2[T], par Params[T], iters int, opt FarmRunOptions) (iter.Matrix2[T], error) {
	var zero iter.Matrix2[T]
	if err := (Stencil[T]{Params: par, Fn: op.fn}).check(); err != nil {
		return zero, err
	}
	if len(g.Data) != g.H*g.W {
		return zero, fmt.Errorf("stencil: %dx%d grid with %d cells", g.H, g.W, len(g.Data))
	}
	if g.H == 0 || g.W == 0 {
		return g.Clone(), nil
	}
	slabs := opt.Slabs
	if slabs <= 0 {
		slabs = s.Node().Nodes()
	}
	part := NewPartition(g.H, g.W, slabs)
	cur := g.Clone()
	next := iter.Matrix2[T]{H: g.H, W: g.W, Data: make([]T, len(g.Data))}
	ghost := make([]T, par.Radius*g.W)
	tasks := make([][]byte, 0, slabs)
	slabOf := make([]domain.Range, 0, slabs)
	for it := 0; it < iters; it++ {
		tasks, slabOf = tasks[:0], slabOf[:0]
		halo := 0
		for _, rng := range part.Rows {
			if rng.Empty() {
				continue
			}
			task, ghostBytes := op.encodeTask(cur, par, rng, ghost)
			tasks = append(tasks, task)
			slabOf = append(slabOf, rng)
			halo += ghostBytes
		}
		s.Fabric().AddHaloBytes(int64(halo))
		fo := opt.Farm
		if fo.Job != "" {
			fo.Job = fmt.Sprintf("%s@%d", opt.Farm.Job, it)
		}
		res, err := s.FarmOpts(op.name, tasks, fo)
		if err != nil {
			return zero, fmt.Errorf("%s sweep %d: %w", op.name, it, err)
		}
		if len(res.Failed) > 0 {
			f := res.Failed[0]
			return zero, fmt.Errorf("%s sweep %d: %d slab tasks quarantined (task %d after %d attempts: %s)",
				op.name, it, len(res.Failed), f.Task, f.Attempts, f.Err)
		}
		for ti, payload := range res.Results {
			rows, err := serial.Unmarshal(op.elems, payload)
			rng := slabOf[ti]
			if err != nil || len(rows) != rng.Len()*g.W {
				return zero, fmt.Errorf("%s sweep %d: slab %d returned %d cells for %d rows (%v)",
					op.name, it, ti, len(rows), rng.Len(), err)
			}
			copy(next.Data[rng.Lo*g.W:rng.Hi*g.W], rows)
		}
		cur, next = next, cur
	}
	return cur, nil
}
