// Package stencil implements the iterated 2-D stencil skeleton over the
// two-level runtime: a grid type with a row-slab partition map, an explicit
// halo-exchange primitive over mpi.Comm with attributed ghost traffic, and
// the four SkeLibEd boundary strategies (NORMAL, WRAP, MIRROR, BORDER).
//
// The intra-node sweep is an iter.Iter2 pipeline materialized through
// core.Build2IntoLocal, so it inherits the block engine's row-aligned
// splitting and allocation discipline; the cross-node paths (Op over
// collectives, FarmOp over Session.Farm) slab the grid by rows and refresh
// radius-r ghost rows before every sweep.
//
// Boundary semantics, after SkeLibEd:
//
//   - Normal: a cell whose full (2r+1)² neighborhood does not fit inside
//     the grid carries its previous value; no out-of-grid read happens.
//   - Wrap: out-of-grid indices wrap toroidally (modulo the axis length).
//   - Mirror: out-of-grid indices reflect at the edge with edge
//     duplication (… 1 0 | 0 1 … n-1 | n-1 n-2 …) — a period-2n fold,
//     well-defined for any radius, including radius ≥ the axis length.
//   - Border: out-of-grid reads resolve to a caller-supplied constant.
package stencil

import (
	"fmt"

	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
)

// Boundary selects how neighborhood reads outside the grid resolve.
type Boundary uint8

const (
	Normal Boundary = iota
	Wrap
	Mirror
	Border
	boundaryCount
)

// String names the strategy.
func (b Boundary) String() string {
	switch b {
	case Normal:
		return "NORMAL"
	case Wrap:
		return "WRAP"
	case Mirror:
		return "MIRROR"
	case Border:
		return "BORDER"
	}
	return fmt.Sprintf("Boundary(%d)", uint8(b))
}

// Params are the data half of a stencil: everything but the kernel
// function. Distributed ops ship Params on the wire (header or task
// payload) so one registered kernel serves every radius and strategy.
type Params[T any] struct {
	// Radius is the neighborhood reach: a cell reads offsets in
	// [-Radius, +Radius] on both axes.
	Radius int
	// Boundary selects the out-of-grid read strategy.
	Boundary Boundary
	// Border is the constant out-of-grid reads resolve to under the
	// Border strategy; ignored otherwise.
	Border T
}

func (p Params[T]) check() error {
	if p.Radius < 0 {
		return fmt.Errorf("stencil: negative radius %d", p.Radius)
	}
	if p.Boundary >= boundaryCount {
		return fmt.Errorf("stencil: unknown boundary strategy %d", uint8(p.Boundary))
	}
	return nil
}

// Func computes one cell's next value from its neighborhood. It must be
// pure: kernels run concurrently over disjoint output rows and may run
// twice under fault-tolerant execution.
type Func[T any] func(nb Neighborhood[T]) T

// Stencil couples Params with the kernel function — the complete local
// stencil, applied with Sweep or Iterate.
type Stencil[T any] struct {
	Params[T]
	Fn Func[T]
}

// Neighborhood is the read window handed to a kernel: At(dy, dx) reads the
// cell offset (dy, dx) from the center, |dy|,|dx| ≤ Radius, with
// out-of-grid reads resolved by the boundary strategy. It is a small value;
// passing it by value keeps kernels allocation-free.
type Neighborhood[T any] struct {
	v    *view[T]
	y, x int // center, in global grid coordinates
	// fast is the center's index into v.rows when the whole neighborhood
	// lies inside the owned rows (no boundary or ghost resolution needed),
	// else -1.
	fast int
}

// Y reports the center's global row.
func (nb Neighborhood[T]) Y() int { return nb.y }

// X reports the center's global column.
func (nb Neighborhood[T]) X() int { return nb.x }

// Radius reports the declared radius, so one registered kernel can serve
// any radius carried in Params.
func (nb Neighborhood[T]) Radius() int { return nb.v.radius }

// At reads the cell at offset (dy, dx) from the center.
func (nb Neighborhood[T]) At(dy, dx int) T {
	if nb.fast >= 0 {
		return nb.v.rows[nb.fast+dy*nb.v.w+dx]
	}
	return nb.v.at(nb.y+dy, nb.x+dx)
}

// view is the window a sweep reads: the rows this rank owns plus, in
// distributed runs, prefilled ghost rows covering [rowLo-radius, rowLo) and
// [rowHi, rowHi+radius). Reads that miss the window resolve through the
// boundary strategy against the global h×w domain — only possible in local
// (whole-grid) sweeps, where every in-grid row is owned.
type view[T any] struct {
	h, w   int // global grid dimensions
	rows   []T // owned rows, nRows×w, starting at global row rowLo
	rowLo  int
	nRows  int
	top    []T // radius×w ghost rows above rowLo, nil in local sweeps
	bot    []T // radius×w ghost rows from rowLo+nRows, nil in local sweeps
	radius int
	b      Boundary
	border T
}

func (v *view[T]) at(y, x int) T {
	x, ok := mapIndex(x, v.w, v.b)
	if !ok {
		return v.border
	}
	if y >= v.rowLo && y < v.rowLo+v.nRows {
		return v.rows[(y-v.rowLo)*v.w+x]
	}
	if v.top != nil || v.bot != nil {
		// Distributed: ghost rows were prefilled by ExchangeHalos with
		// already-strategy-resolved values, so no further y mapping.
		if y < v.rowLo {
			return v.top[(y-v.rowLo+v.radius)*v.w+x]
		}
		return v.bot[(y-v.rowLo-v.nRows)*v.w+x]
	}
	y, ok = mapIndex(y, v.h, v.b)
	if !ok {
		return v.border
	}
	return v.rows[(y-v.rowLo)*v.w+x]
}

// mapIndex resolves index i on a length-n axis under boundary strategy b.
// ok=false means the read resolves to the border constant. Normal never
// reaches an out-of-range index: cells without a full in-grid neighborhood
// carry their previous value instead of reading out of grid.
func mapIndex(i, n int, b Boundary) (int, bool) {
	if i >= 0 && i < n {
		return i, true
	}
	switch b {
	case Wrap:
		i %= n
		if i < 0 {
			i += n
		}
		return i, true
	case Mirror:
		// Edge-duplicating reflection is a period-2n triangular fold:
		// fold i into [0, 2n), then indices in [n, 2n) read back as
		// 2n-1-i. Valid for any radius, including radius ≥ n.
		p := 2 * n
		i %= p
		if i < 0 {
			i += p
		}
		if i >= n {
			i = p - 1 - i
		}
		return i, true
	default: // Border; Normal for safety
		return 0, false
	}
}

// sweepIter expresses one sweep over v's owned rows as a 2-D iterator whose
// (y, x) element — y local to the slab — is the kernel applied at that
// cell. Materializing it through core.Build2IntoLocal is what runs the
// sweep on the block engine.
func (st Stencil[T]) sweepIter(v *view[T]) iter.Iter2[T] {
	r := st.Radius
	at := func(y, x int) T {
		gy := y + v.rowLo
		if st.Boundary == Normal && (gy < r || gy+r >= v.h || x < r || x+r >= v.w) {
			// NORMAL: no full in-grid neighborhood — carry the old value.
			return v.rows[y*v.w+x]
		}
		nb := Neighborhood[T]{v: v, y: gy, x: x, fast: -1}
		if x >= r && x+r < v.w && gy-r >= v.rowLo && gy+r < v.rowLo+v.nRows {
			nb.fast = y*v.w + x
		}
		return st.Fn(nb)
	}
	return iter.LocalPar2(iter.Idx2Flat(iter.Idx2[T]{
		Dom: domain.Dim2{H: v.nRows, W: v.w},
		At:  at,
	}))
}

func (st Stencil[T]) checkGrid(g iter.Matrix2[T]) {
	if err := st.check(); err != nil {
		panic(err)
	}
	if len(g.Data) != g.H*g.W {
		panic(fmt.Sprintf("stencil: %dx%d grid with %d cells", g.H, g.W, len(g.Data)))
	}
}

func (st Stencil[T]) check() error {
	if st.Fn == nil {
		return fmt.Errorf("stencil: nil kernel")
	}
	return st.Params.check()
}

// Sweep applies the stencil once, writing step(src) into dst. src and dst
// must have the same shape and must not alias: the whole point of the
// double buffer is that a sweep reads a consistent previous generation.
func (st Stencil[T]) Sweep(pool *sched.Pool, dst, src iter.Matrix2[T]) {
	st.checkGrid(src)
	if dst.H != src.H || dst.W != src.W {
		panic(fmt.Sprintf("stencil: sweep %dx%d into %dx%d", src.H, src.W, dst.H, dst.W))
	}
	v := &view[T]{
		h: src.H, w: src.W,
		rows: src.Data, rowLo: 0, nRows: src.H,
		radius: st.Radius, b: st.Boundary, border: st.Border,
	}
	core.Build2IntoLocal(pool, dst, st.sweepIter(v))
}

// Iterate applies the stencil iters times with double buffering — two
// grids alternate roles, allocated once — and returns the final
// generation. g itself is never written. pool may be nil for a sequential
// sweep.
func (st Stencil[T]) Iterate(pool *sched.Pool, g iter.Matrix2[T], iters int) iter.Matrix2[T] {
	st.checkGrid(g)
	front := g.Clone()
	if iters <= 0 {
		return front
	}
	back := iter.Matrix2[T]{H: g.H, W: g.W, Data: make([]T, len(g.Data))}
	for i := 0; i < iters; i++ {
		st.Sweep(pool, back, front)
		front, back = back, front
	}
	return front
}
