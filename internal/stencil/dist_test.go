package stencil_test

import (
	"fmt"
	"sync"
	"testing"

	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/stencil"
	"triolet/internal/transport"
)

// runRanks runs fn on every rank of a fresh lossless fabric and returns the
// fabric (closed) for stats inspection.
func runRanks(t *testing.T, ranks int, fn func(rank int, c *mpi.Comm) error) *transport.Fabric {
	t.Helper()
	f := transport.New(transport.Config{Ranks: ranks})
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r, mpi.NewComm(f, r))
		}(r)
	}
	wg.Wait()
	f.Close()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return f
}

// TestSlabIterateMatchesLocal drives ExchangeHalos+Sweep over a real fabric
// across node counts (including more nodes than rows), degenerate geometry,
// radii up to and past the slab height, and all four boundary strategies —
// every rank's final slab must equal the corresponding rows of the local
// whole-grid iteration, bit for bit.
func TestSlabIterateMatchesLocal(t *testing.T) {
	shapes := []struct{ h, w int }{{16, 6}, {7, 5}, {1, 8}, {8, 1}, {3, 3}}
	for _, ranks := range []int{1, 2, 3, 5, 8} {
		for _, sh := range shapes {
			for _, radius := range []int{1, 3} {
				for _, b := range allBoundaries {
					name := fmt.Sprintf("n%d/%dx%d/r%d/%v", ranks, sh.h, sh.w, radius, b)
					t.Run(name, func(t *testing.T) {
						par := stencil.Params[int64]{Radius: radius, Boundary: b, Border: 5}
						kern := sumKernel(radius)
						g := fillI64(sh.h, sh.w, uint64(ranks+sh.h*31+sh.w*7+radius))
						const iters = 3
						want := refIterate(g, par, kern, iters)
						part := stencil.NewPartition(sh.h, sh.w, ranks)
						f := runRanks(t, ranks, func(rank int, c *mpi.Comm) error {
							own := part.Rows[rank]
							sl, err := stencil.NewSlab(part, rank, par, serial.I64s(), g.Data[own.Lo*sh.w:own.Hi*sh.w])
							if err != nil {
								return err
							}
							for it := 0; it < iters; it++ {
								if err := sl.ExchangeHalos(c); err != nil {
									return err
								}
								sl.Sweep(nil, asFunc(kern))
							}
							rows := sl.Rows()
							for i, v := range rows {
								if v != want[own.Lo*sh.w+i] {
									return fmt.Errorf("cell %d of slab [%d,%d): got %d want %d",
										i, own.Lo, own.Hi, v, want[own.Lo*sh.w+i])
								}
							}
							return nil
						})
						halo := f.Stats().HaloBytes
						if ranks >= 2 && sh.h >= 2 && radius >= 1 {
							if halo == 0 {
								t.Fatal("multi-rank exchange attributed no halo bytes")
							}
						}
						if ranks == 1 && halo != 0 {
							t.Fatalf("single-rank run attributed %d halo bytes", halo)
						}
					})
				}
			}
		}
	}
}

// TestIteratedSlabSweepRace is the aliasing proof for the double buffer:
// pool-parallel sweeps on every rank, interleaved with halo exchanges, over
// many iterations. Under -race any overlap between a sweep's writes and the
// halo buffers being exchanged — or a swap exposing the buffer an exchange
// still reads — is a report.
func TestIteratedSlabSweepRace(t *testing.T) {
	const ranks, h, w, radius, iters = 4, 32, 16, 2, 8
	par := stencil.Params[int64]{Radius: radius, Boundary: stencil.Wrap}
	kern := sumKernel(radius)
	g := fillI64(h, w, 77)
	want := refIterate(g, par, kern, iters)
	part := stencil.NewPartition(h, w, ranks)
	runRanks(t, ranks, func(rank int, c *mpi.Comm) error {
		pool := sched.NewPool(3)
		defer pool.Close()
		own := part.Rows[rank]
		sl, err := stencil.NewSlab(part, rank, par, serial.I64s(), g.Data[own.Lo*w:own.Hi*w])
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			if err := sl.ExchangeHalos(c); err != nil {
				return err
			}
			sl.Sweep(pool, asFunc(kern))
		}
		for i, v := range sl.Rows() {
			if v != want[own.Lo*w+i] {
				return fmt.Errorf("cell %d: got %d want %d", i, v, want[own.Lo*w+i])
			}
		}
		return nil
	})
}

// TestSendHaloAttribution pins the accounting contract: SendHalo counts the
// payload in both Bytes and HaloBytes, plain Send only in Bytes, and
// ResetStats clears the halo counter.
func TestSendHaloAttribution(t *testing.T) {
	f := transport.New(transport.Config{Ranks: 2})
	defer f.Close()
	a, b := mpi.NewComm(f, 0), mpi.NewComm(f, 1)
	if err := a.SendHalo(1, 9, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, 9, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(0, 9); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.HaloBytes != 100 {
		t.Fatalf("HaloBytes = %d, want 100", st.HaloBytes)
	}
	if st.Bytes != 150 {
		t.Fatalf("Bytes = %d, want 150", st.Bytes)
	}
	f.ResetStats()
	if st := f.Stats(); st.HaloBytes != 0 {
		t.Fatalf("HaloBytes after reset = %d", st.HaloBytes)
	}
}
