package stencil

import (
	"fmt"
	"testing"
)

// TestHaloPlanCoversSlots checks the exchange-plan invariants for every
// geometry class: each ghost slot of each rank is claimed by exactly one of
// {borderSlots, local, recvFrom}, and for every pair (i, j) rank i's
// sendTo[j] length equals rank j's recvFrom[i] length — the wire contract
// that lets both sides compute the exchange with no negotiation.
func TestHaloPlanCoversSlots(t *testing.T) {
	boundaries := []Boundary{Normal, Wrap, Mirror, Border}
	shapes := []struct{ h, w int }{{16, 4}, {7, 3}, {1, 5}, {5, 1}, {2, 2}, {3, 8}}
	for _, ranks := range []int{1, 2, 3, 5, 9} {
		for _, sh := range shapes {
			for _, radius := range []int{0, 1, 2, 4} {
				for _, b := range boundaries {
					p := NewPartition(sh.h, sh.w, ranks)
					plans := make([]haloPlan, ranks)
					for r := 0; r < ranks; r++ {
						plans[r] = newHaloPlan(p, r, radius, b)
					}
					label := fmt.Sprintf("n%d %dx%d r%d %v", ranks, sh.h, sh.w, radius, b)
					for r := 0; r < ranks; r++ {
						nSlots := 2 * radius
						if p.Rows[r].Empty() || radius == 0 {
							nSlots = 0
						}
						seen := make([]int, nSlots)
						claim := func(slot int) {
							if slot < 0 || slot >= nSlots {
								t.Fatalf("%s rank %d: slot %d out of [0,%d)", label, r, slot, nSlots)
							}
							seen[slot]++
						}
						for _, slot := range plans[r].borderSlots {
							claim(slot)
						}
						for _, ls := range plans[r].local {
							claim(ls[0])
							if !p.Rows[r].Contains(ls[1]) {
								t.Fatalf("%s rank %d: local source row %d not owned", label, r, ls[1])
							}
						}
						for src, slots := range plans[r].recvFrom {
							for _, slot := range slots {
								claim(slot)
							}
							if len(slots) > 0 && src == r {
								t.Fatalf("%s rank %d: recvFrom self", label, r)
							}
						}
						for slot, n := range seen {
							if n != 1 {
								t.Fatalf("%s rank %d: slot %d claimed %d times", label, r, slot, n)
							}
						}
					}
					for i := 0; i < ranks; i++ {
						for j := 0; j < ranks; j++ {
							if i == j {
								continue
							}
							if ns, nr := len(plans[i].sendTo[j]), len(plans[j].recvFrom[i]); ns != nr {
								t.Fatalf("%s: rank %d sends %d rows to %d, which expects %d",
									label, i, ns, j, nr)
							}
							for _, y := range plans[i].sendTo[j] {
								if !p.Rows[i].Contains(y) {
									t.Fatalf("%s: rank %d sends unowned row %d", label, i, y)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestMapIndexStrategies pins the index arithmetic against hand-computed
// cases, including mirror folds past several periods and radius ≥ n.
func TestMapIndexStrategies(t *testing.T) {
	cases := []struct {
		i, n int
		b    Boundary
		want int
		ok   bool
	}{
		{-1, 5, Wrap, 4, true},
		{5, 5, Wrap, 0, true},
		{-7, 5, Wrap, 3, true},
		{12, 5, Wrap, 2, true},
		{-1, 5, Mirror, 0, true},
		{-2, 5, Mirror, 1, true},
		{5, 5, Mirror, 4, true},
		{6, 5, Mirror, 3, true},
		{-6, 5, Mirror, 4, true}, // second fold: -6 → 5 → 4
		{10, 5, Mirror, 0, true}, // full period
		{-1, 1, Mirror, 0, true},
		{3, 1, Mirror, 0, true},
		{-1, 5, Border, 0, false},
		{5, 5, Border, 0, false},
		{2, 5, Border, 2, true},
		{-1, 5, Normal, 0, false},
		{2, 5, Normal, 2, true},
	}
	for _, c := range cases {
		got, ok := mapIndex(c.i, c.n, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("mapIndex(%d, %d, %v) = (%d, %v), want (%d, %v)",
				c.i, c.n, c.b, got, ok, c.want, c.ok)
		}
	}
}
