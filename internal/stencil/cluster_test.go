package stencil_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/stencil"
	"triolet/internal/transport"
)

// Registered once per test binary: the kernel closure fixes the radius, so
// sum kernels exist per radius; shape and boundary strategy travel in the
// header / task payloads.
var (
	opSum1   = stencil.NewOp("test.sum.r1", serial.I64C(), serial.I64s(), asFunc(sumKernel(1)))
	opSum3   = stencil.NewOp("test.sum.r3", serial.I64C(), serial.I64s(), asFunc(sumKernel(3)))
	opHeat   = stencil.NewOp("test.heat", serial.F64C(), serial.F64s(), asFunc(heatKernel))
	farmSum1 = stencil.NewFarmOp("test.sum.r1", serial.I64C(), serial.I64s(), asFunc(sumKernel(1)))
	farmLife = stencil.NewFarmOp("test.life", serial.I64C(), serial.I64s(), asFunc(lifeKernel))
)

// TestOpMatchesLocal runs the collective stencil skeleton on virtual
// clusters of 1–8 nodes over every boundary strategy and degenerate
// geometry, comparing bit-for-bit with the local reference, and checks halo
// traffic is attributed exactly when an exchange can occur.
func TestOpMatchesLocal(t *testing.T) {
	shapes := []struct{ h, w int }{{9, 5}, {1, 6}, {6, 1}}
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, sh := range shapes {
			for _, radius := range []int{1, 3} {
				op, kern := opSum1, sumKernel(1)
				if radius == 3 {
					op, kern = opSum3, sumKernel(3)
				}
				for _, b := range allBoundaries {
					name := fmt.Sprintf("n%d/%dx%d/r%d/%v", nodes, sh.h, sh.w, radius, b)
					t.Run(name, func(t *testing.T) {
						par := stencil.Params[int64]{Radius: radius, Boundary: b, Border: 3}
						g := fillI64(sh.h, sh.w, uint64(nodes*1000+sh.h*10+sh.w+radius))
						const iters = 3
						want := refIterate(g, par, kern, iters)
						var got iter.Matrix2[int64]
						stats, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 2},
							func(s *cluster.Session) error {
								var err error
								got, err = op.Run(s, g, par, iters)
								return err
							})
						if err != nil {
							t.Fatal(err)
						}
						for i := range want {
							if got.Data[i] != want[i] {
								t.Fatalf("cell %d: got %d want %d", i, got.Data[i], want[i])
							}
						}
						if nodes >= 2 && sh.h >= 2 && stats.HaloBytes == 0 {
							t.Fatal("multi-node run attributed no halo bytes")
						}
						if nodes == 1 && stats.HaloBytes != 0 {
							t.Fatalf("single-node run attributed %d halo bytes", stats.HaloBytes)
						}
					})
				}
			}
		}
	}
}

// TestOpHeatBitIdentical pins the distributed float contract: the gathered
// grid equals the sequential reference bitwise, on lossless and lossy
// fabrics alike.
func TestOpHeatBitIdentical(t *testing.T) {
	par := stencil.Params[float64]{Radius: 1, Boundary: stencil.Mirror}
	g := fillF64(25, 11, 4)
	const iters = 5
	want := refIterate(g, par, heatKernel, iters)
	for _, lossy := range []bool{false, true} {
		cfg := cluster.Config{Nodes: 4, CoresPerNode: 2}
		if lossy {
			cfg.Fault = &transport.FaultConfig{
				Seed:    997,
				Default: transport.FaultProbs{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02},
			}
			cfg.Reliable = &mpi.ReliableConfig{
				AckTimeout:    500 * time.Microsecond,
				Retries:       100,
				MaxAckTimeout: 50 * time.Millisecond,
			}
		}
		var got iter.Matrix2[float64]
		if _, err := cluster.Run(cfg, func(s *cluster.Session) error {
			var err error
			got, err = opHeat.Run(s, g, par, iters)
			return err
		}); err != nil {
			t.Fatalf("lossy=%v: %v", lossy, err)
		}
		for i := range want {
			if got.Data[i] != want[i] {
				t.Fatalf("lossy=%v cell %d: got %x want %x", lossy, i, got.Data[i], want[i])
			}
		}
	}
}

// TestFarmOpMatchesLocal runs the farm-backed skeleton across node counts
// and slab counts (including more slabs than rows) and checks bit-identity
// with the reference plus provisioned-halo attribution.
func TestFarmOpMatchesLocal(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		for _, slabs := range []int{0, 7, 32} {
			for _, b := range []stencil.Boundary{stencil.Wrap, stencil.Normal} {
				name := fmt.Sprintf("n%d/slabs%d/%v", nodes, slabs, b)
				t.Run(name, func(t *testing.T) {
					par := stencil.Params[int64]{Radius: 1, Boundary: b}
					g := fillI64(10, 6, uint64(nodes+slabs))
					const iters = 3
					want := refIterate(g, par, sumKernel(1), iters)
					var got iter.Matrix2[int64]
					stats, err := cluster.Run(cluster.Config{Nodes: nodes, CoresPerNode: 2},
						func(s *cluster.Session) error {
							var err error
							got, err = farmSum1.Run(s, g, par, iters, stencil.FarmRunOptions{Slabs: slabs})
							return err
						})
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got.Data[i] != want[i] {
							t.Fatalf("cell %d: got %d want %d", i, got.Data[i], want[i])
						}
					}
					if stats.HaloBytes == 0 {
						t.Fatal("farm run attributed no provisioned halo bytes")
					}
				})
			}
		}
	}
}

// TestFarmOpChaosResume is the acceptance scenario: iterated Game of Life
// farmed over a lossy fabric (2% drop/duplicate/corrupt per link), the
// master killed mid-run once the WAL holds a few slab records, then a fresh
// session resuming from the reopened WAL. The final grid must be
// bit-identical to the local reference — finished sweeps replay from their
// per-sweep WAL jobs, the interrupted sweep re-runs only unfinished slabs.
func TestFarmOpChaosResume(t *testing.T) {
	par := stencil.Params[int64]{Radius: 1, Boundary: stencil.Wrap}
	g := fillLife(24, 16, 41)
	const iters = 4
	want := refIterate(g, par, lifeKernel, iters)

	dir := t.TempDir()
	walPath := filepath.Join(dir, "life.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		Nodes:        4,
		CoresPerNode: 2,
		Fault: &transport.FaultConfig{
			Seed:    997,
			Default: transport.FaultProbs{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02},
		},
		Reliable: &mpi.ReliableConfig{
			AckTimeout:    500 * time.Microsecond,
			Retries:       100,
			MaxAckTimeout: 50 * time.Millisecond,
		},
	}
	opt := stencil.FarmRunOptions{Farm: cluster.FarmOptions{Job: "life"}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for {
			select {
			case <-stopKiller:
				return
			default:
			}
			if wal.Records() >= 3 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var got iter.Matrix2[int64]
	firstOpt := opt
	firstOpt.Farm.Checkpoint = wal
	_, firstErr := cluster.RunCtx(ctx, cfg, func(s *cluster.Session) error {
		var err error
		got, err = farmLife.Run(s, g, par, iters, firstOpt)
		return err
	})
	close(stopKiller)
	<-killerDone
	if cerr := wal.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if firstErr != nil {
		if !errors.Is(firstErr, context.Canceled) {
			t.Fatalf("first life died of the wrong cause: %v", firstErr)
		}
		// Second life: a brand-new session resumes from the WAL on disk.
		wal2, err := checkpoint.OpenWAL(walPath)
		if err != nil {
			t.Fatal(err)
		}
		defer wal2.Close()
		if rec := wal2.Records(); rec == 0 {
			t.Fatal("reopened WAL holds no records to resume from")
		}
		secondOpt := opt
		secondOpt.Farm.Checkpoint = wal2
		if _, err := cluster.Run(cfg, func(s *cluster.Session) error {
			var err error
			got, err = farmLife.Run(s, g, par, iters, secondOpt)
			return err
		}); err != nil {
			t.Fatalf("second life: %v", err)
		}
	} else {
		t.Log("job outran the killer; validating the completed first run")
	}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("cell %d: got %d want %d", i, got.Data[i], want[i])
		}
	}
	_ = os.Remove(walPath)
}
