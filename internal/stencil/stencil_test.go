package stencil_test

import (
	"fmt"
	"testing"

	"triolet/internal/iter"
	"triolet/internal/sched"
	"triolet/internal/stencil"
)

// refResolve maps index i onto [0, n) the slow, obviously-correct way:
// wrap by repeated shifting, mirror by repeated edge-duplicating
// reflection. It is an independent implementation of the package's
// strategy arithmetic, not a call into it.
func refResolve(i, n int, b stencil.Boundary) (int, bool) {
	switch b {
	case stencil.Wrap:
		for i < 0 {
			i += n
		}
		for i >= n {
			i -= n
		}
		return i, true
	case stencil.Mirror:
		for i < 0 || i >= n {
			if i < 0 {
				i = -1 - i
			}
			if i >= n {
				i = 2*n - 1 - i
			}
		}
		return i, true
	case stencil.Border:
		if i >= 0 && i < n {
			return i, true
		}
		return 0, false
	default: // Normal: callers never resolve out-of-range indices
		return i, i >= 0 && i < n
	}
}

// refSweep is the naive whole-grid reference: per-cell loops, per-read
// strategy resolution. kernel receives an accessor so the reference and the
// skeleton share the exact same kernel arithmetic (and therefore the same
// floating-point operation order).
func refSweep[T any](h, w int, src []T, par stencil.Params[T], kernel func(at func(dy, dx int) T) T) []T {
	dst := make([]T, len(src))
	r := par.Radius
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if par.Boundary == stencil.Normal && (y < r || y+r >= h || x < r || x+r >= w) {
				dst[y*w+x] = src[y*w+x]
				continue
			}
			yy, xx := y, x
			at := func(dy, dx int) T {
				my, oky := refResolve(yy+dy, h, par.Boundary)
				mx, okx := refResolve(xx+dx, w, par.Boundary)
				if !oky || !okx {
					return par.Border
				}
				return src[my*w+mx]
			}
			dst[y*w+x] = kernel(at)
		}
	}
	return dst
}

func refIterate[T any](g iter.Matrix2[T], par stencil.Params[T], kernel func(at func(dy, dx int) T) T, iters int) []T {
	cur := append([]T(nil), g.Data...)
	for i := 0; i < iters; i++ {
		cur = refSweep(g.H, g.W, cur, par, kernel)
	}
	return cur
}

// sumKernel sums the whole (2r+1)² neighborhood — sensitive to every read,
// so any mis-resolved boundary index changes the result.
func sumKernel(r int) func(at func(dy, dx int) int64) int64 {
	return func(at func(dy, dx int) int64) int64 {
		var s int64
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				s += at(dy, dx)
			}
		}
		return s
	}
}

// lifeKernel is Conway's Game of Life on 0/1 cells.
func lifeKernel(at func(dy, dx int) int64) int64 {
	var n int64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dy == 0 && dx == 0 {
				continue
			}
			n += at(dy, dx)
		}
	}
	if n == 3 || (at(0, 0) == 1 && n == 2) {
		return 1
	}
	return 0
}

// heatKernel is the 5-point explicit heat step with a fixed summation
// order, so every execution mode is bit-identical.
func heatKernel(at func(dy, dx int) float64) float64 {
	c := at(0, 0)
	return c + 0.2*((at(-1, 0)+at(1, 0))+(at(0, -1)+at(0, 1))-4*c)
}

// asFunc adapts an accessor kernel to a stencil.Func.
func asFunc[T any](kernel func(at func(dy, dx int) T) T) stencil.Func[T] {
	return func(nb stencil.Neighborhood[T]) T { return kernel(nb.At) }
}

// fillI64 fills deterministically (an LCG, so no two cells repeat soon).
func fillI64(h, w int, seed uint64) iter.Matrix2[int64] {
	g := iter.Matrix2[int64]{H: h, W: w, Data: make([]int64, h*w)}
	x := seed*2862933555777941757 + 3037000493
	for i := range g.Data {
		x = x*2862933555777941757 + 3037000493
		g.Data[i] = int64(x >> 33)
	}
	return g
}

func fillLife(h, w int, seed uint64) iter.Matrix2[int64] {
	g := fillI64(h, w, seed)
	for i := range g.Data {
		g.Data[i] &= 1
	}
	return g
}

func fillF64(h, w int, seed uint64) iter.Matrix2[float64] {
	src := fillI64(h, w, seed)
	g := iter.Matrix2[float64]{H: h, W: w, Data: make([]float64, h*w)}
	for i, v := range src.Data {
		g.Data[i] = float64(v%1000) / 8
	}
	return g
}

var allBoundaries = []stencil.Boundary{stencil.Normal, stencil.Wrap, stencil.Mirror, stencil.Border}

// TestSweepMatchesReference drives every boundary strategy over regular and
// degenerate geometry — 1×N, N×1, radius larger than either grid dimension
// — and checks the skeleton against the naive reference bit-for-bit.
func TestSweepMatchesReference(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	shapes := []struct{ h, w int }{{5, 7}, {1, 9}, {9, 1}, {3, 3}, {1, 1}, {16, 16}}
	for _, sh := range shapes {
		for _, radius := range []int{1, 2, 5} {
			for _, b := range allBoundaries {
				name := fmt.Sprintf("%dx%d/r%d/%v", sh.h, sh.w, radius, b)
				t.Run(name, func(t *testing.T) {
					par := stencil.Params[int64]{Radius: radius, Boundary: b, Border: -7}
					st := stencil.Stencil[int64]{Params: par, Fn: asFunc(sumKernel(radius))}
					g := fillI64(sh.h, sh.w, uint64(sh.h*100+sh.w*10+radius))
					const iters = 3
					want := refIterate(g, par, sumKernel(radius), iters)
					gotSeq := st.Iterate(nil, g, iters)
					gotPar := st.Iterate(pool, g, iters)
					for i := range want {
						if gotSeq.Data[i] != want[i] {
							t.Fatalf("seq cell %d: got %d want %d", i, gotSeq.Data[i], want[i])
						}
						if gotPar.Data[i] != want[i] {
							t.Fatalf("pool cell %d: got %d want %d", i, gotPar.Data[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestHeatBitIdentical pins the float contract: sequential, pooled, and
// reference sweeps produce bit-identical float64 grids because the per-cell
// arithmetic order is fixed.
func TestHeatBitIdentical(t *testing.T) {
	pool := sched.NewPool(8)
	defer pool.Close()
	for _, b := range allBoundaries {
		par := stencil.Params[float64]{Radius: 1, Boundary: b, Border: 25}
		st := stencil.Stencil[float64]{Params: par, Fn: asFunc(heatKernel)}
		g := fillF64(33, 17, 9)
		const iters = 5
		want := refIterate(g, par, heatKernel, iters)
		gotSeq := st.Iterate(nil, g, iters)
		gotPar := st.Iterate(pool, g, iters)
		for i := range want {
			if gotSeq.Data[i] != want[i] || gotPar.Data[i] != want[i] {
				t.Fatalf("%v cell %d: seq %x pool %x want %x", b, i, gotSeq.Data[i], gotPar.Data[i], want[i])
			}
		}
	}
}

// TestLifeWrapReference checks the canonical toroidal Life on a glider: the
// pattern translates by (1,1) every 4 generations.
func TestLifeWrapReference(t *testing.T) {
	const h, w = 8, 8
	g := iter.Matrix2[int64]{H: h, W: w, Data: make([]int64, h*w)}
	// Glider at the top-left.
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}} {
		g.Data[p[0]*w+p[1]] = 1
	}
	st := stencil.Stencil[int64]{
		Params: stencil.Params[int64]{Radius: 1, Boundary: stencil.Wrap},
		Fn:     asFunc(lifeKernel),
	}
	got := st.Iterate(nil, g, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := g.At((y-1+h)%h, (x-1+w)%w)
			if got.At(y, x) != want {
				t.Fatalf("glider cell (%d,%d): got %d want %d", y, x, got.At(y, x), want)
			}
		}
	}
}

// TestNormalCarriesEdges pins NORMAL's defining behavior: cells without a
// full in-grid neighborhood keep their previous value, everything else
// steps.
func TestNormalCarriesEdges(t *testing.T) {
	g := fillI64(6, 6, 3)
	st := stencil.Stencil[int64]{
		Params: stencil.Params[int64]{Radius: 2, Boundary: stencil.Normal},
		Fn:     asFunc(sumKernel(2)),
	}
	got := st.Iterate(nil, g, 1)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			edge := y < 2 || y >= 4 || x < 2 || x >= 4
			if edge && got.At(y, x) != g.At(y, x) {
				t.Fatalf("edge cell (%d,%d) stepped: got %d want carried %d", y, x, got.At(y, x), g.At(y, x))
			}
			if !edge && got.At(y, x) == g.At(y, x) {
				t.Fatalf("interior cell (%d,%d) did not step", y, x)
			}
		}
	}
}

// TestIterateDoesNotMutateInput: the input grid is read-only; zero
// iterations return a copy, not an alias.
func TestIterateDoesNotMutateInput(t *testing.T) {
	g := fillI64(7, 5, 1)
	orig := append([]int64(nil), g.Data...)
	st := stencil.Stencil[int64]{
		Params: stencil.Params[int64]{Radius: 1, Boundary: stencil.Wrap},
		Fn:     asFunc(sumKernel(1)),
	}
	out := st.Iterate(nil, g, 4)
	for i := range orig {
		if g.Data[i] != orig[i] {
			t.Fatalf("input cell %d mutated", i)
		}
	}
	zero := st.Iterate(nil, g, 0)
	zero.Data[0] = 12345
	if g.Data[0] == 12345 {
		t.Fatal("Iterate(0) aliases the input grid")
	}
	_ = out
}

// TestBorderConstant: with radius ≥ both dimensions every read of a corner
// cell's neighborhood except the grid itself is the border constant.
func TestBorderConstant(t *testing.T) {
	g := fillI64(2, 2, 5)
	const borderV = int64(11)
	r := 3
	st := stencil.Stencil[int64]{
		Params: stencil.Params[int64]{Radius: r, Boundary: stencil.Border, Border: borderV},
		Fn:     asFunc(sumKernel(r)),
	}
	got := st.Iterate(nil, g, 1)
	window := (2*r + 1) * (2*r + 1)
	var gridSum int64
	for _, v := range g.Data {
		gridSum += v
	}
	want := gridSum + int64(window-4)*borderV
	for i, v := range got.Data {
		if v != want {
			t.Fatalf("cell %d: got %d want %d", i, v, want)
		}
	}
}

func TestBoundaryStrings(t *testing.T) {
	for b, want := range map[stencil.Boundary]string{
		stencil.Normal: "NORMAL", stencil.Wrap: "WRAP",
		stencil.Mirror: "MIRROR", stencil.Border: "BORDER",
	} {
		if b.String() != want {
			t.Fatalf("Boundary %d: %q", uint8(b), b.String())
		}
	}
}
