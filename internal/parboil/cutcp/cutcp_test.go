package cutcp

import (
	"math"
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/diffcheck"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/parboil"
)

func smallInput(atoms int, seed uint64) *Input {
	return Gen(atoms, domain.Dim3{D: 10, H: 12, W: 11}, 0.5, 1.6, seed)
}

func TestGenDeterministicAndInBox(t *testing.T) {
	a := smallInput(50, 3)
	b := smallInput(50, 3)
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatal("same seed, different atoms")
		}
	}
	lx := float32(a.Geo.Dim.W-1) * a.Geo.Spacing
	for _, at := range a.Atoms {
		if at.X < 0 || at.X >= lx || at.Q < -1 || at.Q >= 1 {
			t.Fatalf("atom out of range: %+v", at)
		}
	}
}

func TestCellRangeClamps(t *testing.T) {
	// Atom near the low boundary: range clamps at 0.
	lo, hi := cellRange(0.1, 1.0, 0.5, 10)
	if lo != 0 {
		t.Fatalf("lo = %d", lo)
	}
	if hi != 3 { // cells at 0, 0.5, 1.0 are within 1.0 of 0.1
		t.Fatalf("hi = %d", hi)
	}
	// Atom near the high boundary.
	lo, hi = cellRange(4.4, 1.0, 0.5, 10)
	if hi != 10 {
		t.Fatalf("hi = %d", hi)
	}
	if lo != 7 { // first cell ≥ 3.4 is index 7 (3.5)
		t.Fatalf("lo = %d", lo)
	}
}

func TestContributionCutoff(t *testing.T) {
	g := Geometry{Dim: domain.Dim3{D: 4, H: 4, W: 4}, Spacing: 1, Cutoff: 1.5}
	a := Atom{X: 0, Y: 0, Z: 0, Q: 2}
	// Distance 1 → inside cutoff: q*(1-(1/1.5)²)²/1.
	v, ok := Contribution(g, a, domain.Ix3{Z: 0, Y: 0, X: 1})
	if !ok {
		t.Fatal("point inside cutoff rejected")
	}
	s := 1 - 1/(1.5*1.5)
	want := 2 * s * s
	if !diffcheck.TolCutcpPoint.Within(float64(v), float64(float32(want)), 0) {
		t.Fatalf("v = %v, want %v", v, want)
	}
	// Distance 2 → outside.
	if _, ok := Contribution(g, a, domain.Ix3{Z: 0, Y: 0, X: 2}); ok {
		t.Fatal("point outside cutoff accepted")
	}
	// Coincident point → excluded (no self-interaction singularity).
	if _, ok := Contribution(g, a, domain.Ix3{}); ok {
		t.Fatal("coincident point accepted")
	}
}

func TestSeqSingleAtomMass(t *testing.T) {
	// A single positive atom gives strictly positive potential only inside
	// its cutoff sphere.
	in := &Input{
		Atoms: []Atom{{X: 2.5, Y: 2.5, Z: 2.5, Q: 1}},
		Geo:   Geometry{Dim: domain.Dim3{D: 11, H: 11, W: 11}, Spacing: 0.5, Cutoff: 1.2},
	}
	grid := Seq(in)
	nonzero := 0
	for i, v := range grid {
		ix := in.Geo.Dim.Unlinear(i)
		dx := float64(ix.X)*0.5 - 2.5
		dy := float64(ix.Y)*0.5 - 2.5
		dz := float64(ix.Z)*0.5 - 2.5
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		inside := r < 1.2 && r > 0
		if inside && v <= 0 {
			t.Fatalf("inside point %v has potential %v", ix, v)
		}
		if !inside && v != 0 {
			t.Fatalf("outside point %v has potential %v", ix, v)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no grid point received potential")
	}
}

// checkGrid compares against Seq with a tolerance for float32 summation
// order (parallel schedules add contributions in different orders).
func checkGrid(t *testing.T, name string, got []float32, in *Input) {
	t.Helper()
	want := Seq(in)
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", name, len(got), len(want))
	}
	if d := diffcheck.TolCutcpGrid.MaxRelDiffF32(got, want); d > diffcheck.TolCutcpGrid.RelDiff {
		t.Fatalf("%s: max rel diff %v", name, d)
	}
}

func TestTrioletMatchesSeq(t *testing.T) {
	in := smallInput(120, 7)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 3, CoresPerNode: 2},
		{Nodes: 8, CoresPerNode: 1},
	} {
		var got []float32
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			g, err := Triolet(s, in)
			got = g
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkGrid(t, "triolet", got, in)
	}
}

func TestEdenMatchesSeq(t *testing.T) {
	in := smallInput(90, 11)
	for _, cfg := range []eden.Config{
		{Processes: 1},
		{Processes: 4, ProcsPerNode: 2},
	} {
		var got []float32
		_, err := eden.Run(cfg, func(m *eden.Master) error {
			g, err := Eden(m, in)
			got = g
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkGrid(t, "eden", got, in)
	}
}

func TestRefMatchesSeq(t *testing.T) {
	in := smallInput(100, 13)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 4, CoresPerNode: 2},
	} {
		got, err := Ref(cfg, in)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkGrid(t, "ref", got, in)
	}
}

func TestTrioletIteratorPipelineExactVsAccumulate(t *testing.T) {
	// With a single node and a single core there is one summation order;
	// the iterator pipeline must then match the imperative kernel exactly,
	// demonstrating the fusion is value-preserving.
	in := smallInput(40, 17)
	var got []float32
	_, err := cluster.Run(cluster.Config{Nodes: 1, CoresPerNode: 1}, func(s *cluster.Session) error {
		g, err := Triolet(s, in)
		got = g
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Seq(in)
	if d := parboil.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("single-threaded pipeline differs by %v", d)
	}
}

func TestIdiomaticEdenMatchesSeqExactly(t *testing.T) {
	// Accumulation order matches Seq, so boxed-list materialization must
	// not change a single bit.
	in := smallInput(80, 23)
	want := Seq(in)
	got := SeqEdenIdiomatic(in)
	if d := parboil.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("idiomatic grid differs by %v", d)
	}
}

func TestAtomBoxInsideGrid(t *testing.T) {
	in := smallInput(200, 19)
	for _, a := range in.Atoms {
		zr, yr, xr := AtomBox(in.Geo, a)
		if zr.Lo < 0 || zr.Hi > in.Geo.Dim.D || yr.Lo < 0 || yr.Hi > in.Geo.Dim.H || xr.Lo < 0 || xr.Hi > in.Geo.Dim.W {
			t.Fatalf("box %v %v %v outside grid for %+v", zr, yr, xr, a)
		}
	}
}
