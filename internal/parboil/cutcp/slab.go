package cutcp

import (
	"fmt"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Slab-decomposed cutcp: an extension beyond the paper's implementation.
//
// The paper's cutcp saturates because every node computes a private copy
// of the whole output grid and full grids are summed up a reduction tree
// (§4.5: "the overhead of summing the large output arrays dominates
// execution time"). The alternative implemented here partitions the GRID
// instead of (only) the atoms: the domain is split into Z-slabs, one per
// node, and each atom is routed to every slab its cutoff box intersects
// (atoms near a boundary are sent to both neighbours). Each node then owns
// its slab exclusively — no cross-node grid summation at all; the gather
// returns disjoint slabs that concatenate into the result.
//
// The trade: atoms near slab boundaries are processed twice (bounded by
// cutoff/slabDepth), in exchange for reducing the collective traffic from
// nodes×grid to exactly one grid. TestSlabMatchesSeq verifies equivalence;
// TestSlabReducesTraffic and BenchmarkAblationSlabVsReplicated quantify
// the win the paper's analysis predicts.

// atomWireBytes is one atom's encoded size in atomsCodec (4 × F32), used to
// attribute duplicated boundary atoms as halo bytes.
const atomWireBytes = 16

// slabTask is one node's input: the atoms relevant to its slab plus the
// slab's Z-extent within the full geometry.
type slabTask struct {
	Atoms    []Atom
	Geo      Geometry
	ZLo, ZHi int
}

func slabTaskCodec() serial.Codec[slabTask] {
	ac, gc := atomsCodec(), geoCodec()
	return serial.Funcs[slabTask]{
		Enc: func(w *serial.Writer, v slabTask) {
			ac.Encode(w, v.Atoms)
			gc.Encode(w, v.Geo)
			w.Int(v.ZLo)
			w.Int(v.ZHi)
		},
		Dec: func(r *serial.Reader) slabTask {
			return slabTask{Atoms: ac.Decode(r), Geo: gc.Decode(r), ZLo: r.Int(), ZHi: r.Int()}
		},
	}
}

// slabGrid computes one slab's potentials: the same fused iterator
// pipeline as the replicated-grid version, with each atom's bounding box
// clipped to the slab and bins rebased to slab-local indices.
func slabGrid(n *cluster.Node, t slabTask) []float32 {
	g := t.Geo
	depth := t.ZHi - t.ZLo
	points := depth * g.Dim.H * g.Dim.W
	it := iter.LocalPar(iter.ConcatMap(func(a Atom) iter.Iter[iter.Bin[float32]] {
		return atomSlabBins(g, a, t.ZLo, t.ZHi)
	}, iter.FromSlice(t.Atoms)))
	var pool = n.Pool
	return core.WeightedHistogramLocal(pool, points, it, 1)
}

// atomSlabBins is atomBins with the Z-range clipped to [zLo, zHi) and
// linear indices rebased to the slab.
func atomSlabBins(g Geometry, a Atom, zLo, zHi int) iter.Iter[iter.Bin[float32]] {
	zr, yr, xr := AtomBox(g, a)
	zr = zr.Intersect(domain.Range{Lo: zLo, Hi: zHi})
	ny, nx := yr.Len(), xr.Len()
	if zr.Empty() || ny == 0 || nx == 0 {
		return iter.Empty[iter.Bin[float32]]()
	}
	rows := iter.Range(zr.Len() * ny)
	return iter.ConcatMap(func(ri int) iter.Iter[iter.Bin[float32]] {
		z := zr.Lo + ri/ny
		y := yr.Lo + ri%ny
		base := ((z-zLo)*g.Dim.H + y) * g.Dim.W
		row := iter.IdxFlat(iter.Idx[iter.Bin[float32]]{N: nx, At: func(j int) iter.Bin[float32] {
			x := xr.Lo + j
			v, ok := Contribution(g, a, domain.Ix3{Z: z, Y: y, X: x})
			if !ok {
				return iter.Bin[float32]{I: -1}
			}
			return iter.Bin[float32]{I: base + x, W: v}
		}})
		return iter.Filter(func(b iter.Bin[float32]) bool { return b.I >= 0 }, row)
	}, rows)
}

// slabOp: the kernel computes its slab and the gather concatenates slabs
// in rank order (slabs are contiguous along Z).
var slabOp = core.NewFlatMap(
	"cutcp.slab",
	slabTaskCodec(),
	serial.Unit(),
	serial.F32s(),
	func(n *cluster.Node, t slabTask, _ struct{}) ([]float32, error) {
		return slabGrid(n, t), nil
	},
)

// TrioletSlab runs the slab-decomposed extension. It uses the FlatMap
// skeleton with a one-task-per-node source whose "slice" carries the
// node's slab bounds and the routed atoms.
func TrioletSlab(s *cluster.Session, in *Input) ([]float32, error) {
	nodes := s.Node().Nodes()
	g := in.Geo
	slabs := domain.BlockPartition(g.Dim.D, nodes)

	// Route each atom to every slab its cutoff box intersects. Atoms near a
	// slab boundary land in multiple slabs: those duplicate copies are the
	// decomposition's ghost data, and their wire size is attributed as halo
	// traffic so the msg-gate can see the replication cost instead of it
	// hiding inside ordinary task bytes.
	routed := make([][]Atom, nodes)
	var dupBytes int64
	for _, a := range in.Atoms {
		zr, _, _ := AtomBox(g, a)
		hits := 0
		for sIdx, slab := range slabs {
			if !slab.Intersect(zr).Empty() {
				routed[sIdx] = append(routed[sIdx], a)
				hits++
			}
		}
		if hits > 1 {
			dupBytes += int64(hits-1) * atomWireBytes
		}
	}
	s.Fabric().AddHaloBytes(dupBytes)

	src := core.FuncSource[slabTask]{
		N: nodes,
		SliceFn: func(r domain.Range) slabTask {
			// One task per node: r is a single slab index.
			if r.Len() != 1 {
				panic(fmt.Sprintf("cutcp: slab source sliced with %v", r))
			}
			return slabTask{
				Atoms: routed[r.Lo],
				Geo:   g,
				ZLo:   slabs[r.Lo].Lo,
				ZHi:   slabs[r.Lo].Hi,
			}
		},
	}
	out, err := slabOp.Run(s, src, struct{}{})
	if err != nil {
		return nil, err
	}
	if len(out) != g.Points() {
		return nil, fmt.Errorf("cutcp: slab gather produced %d points, want %d", len(out), g.Points())
	}
	return out, nil
}

// RefSlab is the matching hand-written reference for the extension:
// explicit sends of routed atom lists, per-slab compute, slab gather.
func RefSlab(cfg cluster.Config, in *Input) ([]float32, error) {
	var out []float32
	g := in.Geo
	err := mpiRunSlab(cfg, in, func(c *mpi.Comm, t slabTask, grid *[]float32) {
		*grid = make([]float32, (t.ZHi-t.ZLo)*g.Dim.H*g.Dim.W)
		for _, a := range t.Atoms {
			accumulateSlab(g, a, t.ZLo, t.ZHi, *grid)
		}
	}, &out)
	return out, err
}

// accumulateSlab is Accumulate clipped and rebased to a slab.
func accumulateSlab(g Geometry, a Atom, zLo, zHi int, grid []float32) {
	zr, yr, xr := AtomBox(g, a)
	zr = zr.Intersect(domain.Range{Lo: zLo, Hi: zHi})
	for z := zr.Lo; z < zr.Hi; z++ {
		for y := yr.Lo; y < yr.Hi; y++ {
			base := ((z-zLo)*g.Dim.H + y) * g.Dim.W
			for x := xr.Lo; x < xr.Hi; x++ {
				if v, ok := Contribution(g, a, domain.Ix3{Z: z, Y: y, X: x}); ok {
					grid[base+x] += v
				}
			}
		}
	}
}

func mpiRunSlab(cfg cluster.Config, in *Input, kernel func(c *mpi.Comm, t slabTask, grid *[]float32), out *[]float32) error {
	g := in.Geo
	const tagTask = 11
	const tagSlab = 12
	return mpi.Run(transport.Config{Ranks: cfg.Nodes}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			slabs := domain.BlockPartition(g.Dim.D, c.Size())
			routed := make([][]Atom, c.Size())
			for _, a := range in.Atoms {
				zr, _, _ := AtomBox(g, a)
				for sIdx, slab := range slabs {
					if !slab.Intersect(zr).Empty() {
						routed[sIdx] = append(routed[sIdx], a)
					}
				}
			}
			for dst := 1; dst < c.Size(); dst++ {
				t := slabTask{Atoms: routed[dst], Geo: g, ZLo: slabs[dst].Lo, ZHi: slabs[dst].Hi}
				if err := c.Send(dst, tagTask, serial.Marshal(slabTaskCodec(), t)); err != nil {
					return err
				}
			}
			var grid []float32
			kernel(c, slabTask{Atoms: routed[0], Geo: g, ZLo: slabs[0].Lo, ZHi: slabs[0].Hi}, &grid)
			result := make([]float32, 0, g.Points())
			result = append(result, grid...)
			for src := 1; src < c.Size(); src++ {
				msg, err := c.Recv(src, tagSlab)
				if err != nil {
					return err
				}
				slab, err := serial.Unmarshal(serial.F32s(), msg.Payload)
				if err != nil {
					return err
				}
				result = append(result, slab...)
			}
			*out = result
			return nil
		}
		msg, err := c.Recv(0, tagTask)
		if err != nil {
			return err
		}
		t, err := serial.Unmarshal(slabTaskCodec(), msg.Payload)
		if err != nil {
			return err
		}
		var grid []float32
		kernel(c, t, &grid)
		return c.Send(0, tagSlab, serial.Marshal(serial.F32s(), grid))
	})
}
