// Package cutcp implements the Parboil cutcp benchmark (paper §4.5): the
// cutoff Coulombic potential of a collection of charged atoms on a uniform
// 3-D grid. Each atom contributes q·(1/r)·(1−(r/c)²)² to every grid point
// within cutoff distance c. The computation is a floating-point histogram
// over an irregular nested traversal — the paper's motivating example:
//
//	floatHist [f a r | a <- atoms, r <- gridPts a]
package cutcp

import (
	"math"

	"triolet/internal/domain"
	"triolet/internal/parboil"
)

// Atom is a charged particle.
type Atom struct {
	X, Y, Z, Q float32
}

// Geometry describes the potential grid: Dim.Size() points at Spacing
// apart, with the point (z,y,x) at position (x·Spacing, y·Spacing,
// z·Spacing). Cutoff is the interaction radius.
type Geometry struct {
	Dim     domain.Dim3
	Spacing float32
	Cutoff  float32
}

// Points reports the grid size.
func (g Geometry) Points() int { return g.Dim.Size() }

// Input is one cutcp instance.
type Input struct {
	Atoms []Atom
	Geo   Geometry
}

// Gen creates a deterministic instance: atoms uniformly placed inside the
// grid volume with charges in [-1, 1).
func Gen(atoms int, dim domain.Dim3, spacing, cutoff float32, seed uint64) *Input {
	rng := parboil.NewRand(seed)
	in := &Input{
		Atoms: make([]Atom, atoms),
		Geo:   Geometry{Dim: dim, Spacing: spacing, Cutoff: cutoff},
	}
	lx := float32(dim.W-1) * spacing
	ly := float32(dim.H-1) * spacing
	lz := float32(dim.D-1) * spacing
	for i := range in.Atoms {
		in.Atoms[i] = Atom{
			X: rng.Float32() * lx,
			Y: rng.Float32() * ly,
			Z: rng.Float32() * lz,
			Q: rng.Float32()*2 - 1,
		}
	}
	return in
}

// cellRange clamps the cells whose coordinate lies within cutoff of pos to
// [0, n): the bounding slab of an atom along one axis.
func cellRange(pos, cutoff, spacing float32, n int) (int, int) {
	lo := int(math.Ceil(float64((pos - cutoff) / spacing)))
	hi := int(math.Floor(float64((pos + cutoff) / spacing)))
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi + 1 // half-open
}

// Contribution computes one atom's potential at a grid point, or (0,
// false) when the point is outside the cutoff sphere (or coincident with
// the atom). Shared by every implementation so per-pair values are
// bit-identical; only summation order differs across parallel schedules.
func Contribution(g Geometry, a Atom, ix domain.Ix3) (float32, bool) {
	dx := float32(ix.X)*g.Spacing - a.X
	dy := float32(ix.Y)*g.Spacing - a.Y
	dz := float32(ix.Z)*g.Spacing - a.Z
	r2 := dx*dx + dy*dy + dz*dz
	c2 := g.Cutoff * g.Cutoff
	if r2 >= c2 || r2 == 0 {
		return 0, false
	}
	s := 1 - r2/c2
	return a.Q * s * s / float32(math.Sqrt(float64(r2))), true
}

// AtomBox returns the half-open cell ranges of the atom's bounding box.
func AtomBox(g Geometry, a Atom) (zr, yr, xr domain.Range) {
	zlo, zhi := cellRange(a.Z, g.Cutoff, g.Spacing, g.Dim.D)
	ylo, yhi := cellRange(a.Y, g.Cutoff, g.Spacing, g.Dim.H)
	xlo, xhi := cellRange(a.X, g.Cutoff, g.Spacing, g.Dim.W)
	return domain.Range{Lo: zlo, Hi: zhi}, domain.Range{Lo: ylo, Hi: yhi}, domain.Range{Lo: xlo, Hi: xhi}
}

// Accumulate adds one atom's contributions into grid — the imperative
// fused loop nest used by the sequential, Eden, and reference versions
// (and equivalent to the Triolet iterator pipeline after fusion).
func Accumulate(g Geometry, a Atom, grid []float32) {
	zr, yr, xr := AtomBox(g, a)
	for z := zr.Lo; z < zr.Hi; z++ {
		for y := yr.Lo; y < yr.Hi; y++ {
			base := (z*g.Dim.H + y) * g.Dim.W
			for x := xr.Lo; x < xr.Hi; x++ {
				if v, ok := Contribution(g, a, domain.Ix3{Z: z, Y: y, X: x}); ok {
					grid[base+x] += v
				}
			}
		}
	}
}

// Seq is the sequential C-style kernel: the speedup-1.0 baseline of paper
// Fig. 8.
func Seq(in *Input) []float32 {
	grid := make([]float32, in.Geo.Points())
	for _, a := range in.Atoms {
		Accumulate(in.Geo, a, grid)
	}
	return grid
}
