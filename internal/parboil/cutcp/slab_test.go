package cutcp

import (
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/diffcheck"
	"triolet/internal/domain"
	"triolet/internal/parboil"
)

func TestSlabMatchesSeq(t *testing.T) {
	in := smallInput(150, 41)
	want := Seq(in)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 3, CoresPerNode: 2},
		{Nodes: 5, CoresPerNode: 1},
	} {
		var got []float32
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			g, err := TrioletSlab(s, in)
			got = g
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d points, want %d", cfg, len(got), len(want))
		}
		if d := diffcheck.TolCutcpGrid.MaxRelDiffF32(got, want); d > diffcheck.TolCutcpGrid.RelDiff {
			t.Fatalf("%+v: max rel diff %v", cfg, d)
		}
	}
}

func TestRefSlabMatchesSeq(t *testing.T) {
	in := smallInput(120, 43)
	want := Seq(in)
	got, err := RefSlab(cluster.Config{Nodes: 4, CoresPerNode: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffcheck.TolCutcpGrid.MaxRelDiffF32(got, want); d > diffcheck.TolCutcpGrid.RelDiff {
		t.Fatalf("max rel diff %v", d)
	}
}

// The extension's reason to exist: the replicated-grid implementation
// ships one full grid per non-root node up the reduction tree, while the
// slab version ships each slab exactly once — total grid traffic drops
// from ~(nodes−1)×grid to ~grid.
func TestSlabReducesTraffic(t *testing.T) {
	in := smallInput(200, 47)
	cfg := cluster.Config{Nodes: 8, CoresPerNode: 1}

	replicated, err := cluster.Run(cfg, func(s *cluster.Session) error {
		_, err := Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	slab, err := cluster.Run(cfg, func(s *cluster.Session) error {
		_, err := TrioletSlab(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Grid bytes dominate at this scale; expect at least a 2x reduction
	// (asymptotically ~(nodes-1)x, less here because atom routing
	// duplicates boundary atoms).
	if slab.Bytes*2 > replicated.Bytes {
		t.Fatalf("slab moved %d bytes vs replicated %d: no traffic win", slab.Bytes, replicated.Bytes)
	}
}

func TestAtomSlabBinsCoverWholeGrid(t *testing.T) {
	// Summing per-slab pipelines over all slabs must equal the whole-grid
	// pipeline for a single atom.
	in := smallInput(1, 53)
	g := in.Geo
	a := in.Atoms[0]
	whole := make([]float32, g.Points())
	Accumulate(g, a, whole)

	stitched := make([]float32, 0, g.Points())
	for _, slab := range []struct{ lo, hi int }{{0, 3}, {3, 7}, {7, g.Dim.D}} {
		part := make([]float32, (slab.hi-slab.lo)*g.Dim.H*g.Dim.W)
		accumulateSlab(g, a, slab.lo, slab.hi, part)
		stitched = append(stitched, part...)
	}
	if d := parboil.MaxAbsDiff(stitched, whole); d != 0 {
		t.Fatalf("stitched slabs differ by %v", d)
	}
}

// TestSlabHaloAttribution: the duplicate atom copies the router sends to
// both neighbours are accounted as halo bytes — exactly (copies-1) × wire
// size per atom, and zero on a single node (nothing is duplicated).
func TestSlabHaloAttribution(t *testing.T) {
	in := smallInput(200, 47)
	for _, nodes := range []int{1, 4, 8} {
		cfg := cluster.Config{Nodes: nodes, CoresPerNode: 1}
		stats, err := cluster.Run(cfg, func(s *cluster.Session) error {
			_, err := TrioletSlab(s, in)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		slabs := domain.BlockPartition(in.Geo.Dim.D, nodes)
		var want int64
		for _, a := range in.Atoms {
			zr, _, _ := AtomBox(in.Geo, a)
			hits := 0
			for _, slab := range slabs {
				if !slab.Intersect(zr).Empty() {
					hits++
				}
			}
			if hits > 1 {
				want += int64(hits-1) * atomWireBytes
			}
		}
		if stats.HaloBytes != want {
			t.Fatalf("nodes=%d: HaloBytes %d, want %d", nodes, stats.HaloBytes, want)
		}
		if nodes == 1 && want != 0 {
			t.Fatalf("single node expected no duplication, computed %d", want)
		}
		if nodes >= 4 && want == 0 {
			t.Fatalf("nodes=%d: expected boundary duplication, computed none", nodes)
		}
	}
}
