package cutcp

import (
	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// ---- codecs ----

func atomsCodec() serial.Codec[[]Atom] {
	return serial.Funcs[[]Atom]{
		Enc: func(w *serial.Writer, v []Atom) {
			w.Int(len(v))
			for _, a := range v {
				w.F32(a.X)
				w.F32(a.Y)
				w.F32(a.Z)
				w.F32(a.Q)
			}
		},
		Dec: func(r *serial.Reader) []Atom {
			n := r.Int()
			if r.Err() != nil || n < 0 || n > r.Remaining()/16 {
				return nil
			}
			out := make([]Atom, n)
			for i := range out {
				out[i] = Atom{X: r.F32(), Y: r.F32(), Z: r.F32(), Q: r.F32()}
			}
			return out
		},
	}
}

func geoCodec() serial.Codec[Geometry] {
	return serial.Funcs[Geometry]{
		Enc: func(w *serial.Writer, v Geometry) {
			w.Int(v.Dim.D)
			w.Int(v.Dim.H)
			w.Int(v.Dim.W)
			w.F32(v.Spacing)
			w.F32(v.Cutoff)
		},
		Dec: func(r *serial.Reader) Geometry {
			return Geometry{
				Dim:     domain.Dim3{D: r.Int(), H: r.Int(), W: r.Int()},
				Spacing: r.F32(),
				Cutoff:  r.F32(),
			}
		},
	}
}

// ---- Triolet ----

// atomBins is the paper's "gridPts a" generator: the iterator of weighted
// histogram updates one atom induces — a nested traversal over the atom's
// bounding-box grid rows, filtered to the cutoff sphere. Each inner row is
// a flat indexer whose Filter simplifies to the partial-indexer form
// (iter.KIdxFilter), so the cutoff test fuses into the row loop without
// per-cell allocation, matching how Triolet's optimizer erases filter's
// one-element steppers. The aggregate is irregular: atoms near the grid
// boundary contribute fewer updates.
func atomBins(g Geometry, a Atom) iter.Iter[iter.Bin[float32]] {
	zr, yr, xr := AtomBox(g, a)
	ny, nx := yr.Len(), xr.Len()
	rows := iter.Range(zr.Len() * ny)
	return iter.ConcatMap(func(ri int) iter.Iter[iter.Bin[float32]] {
		z := zr.Lo + ri/ny
		y := yr.Lo + ri%ny
		base := (z*g.Dim.H + y) * g.Dim.W
		row := iter.IdxFlat(iter.Idx[iter.Bin[float32]]{N: nx, At: func(j int) iter.Bin[float32] {
			x := xr.Lo + j
			v, ok := Contribution(g, a, domain.Ix3{Z: z, Y: y, X: x})
			if !ok {
				return iter.Bin[float32]{I: -1}
			}
			return iter.Bin[float32]{I: base + x, W: v}
		}})
		return iter.Filter(func(b iter.Bin[float32]) bool { return b.I >= 0 }, row)
	}, rows)
}

// SeqTriolet runs the cutcp floating-point histogram as a single-threaded
// Triolet iterator pipeline — the "Triolet" bar of paper Fig. 3.
func SeqTriolet(in *Input) []float32 {
	it := iter.ConcatMap(func(a Atom) iter.Iter[iter.Bin[float32]] {
		return atomBins(in.Geo, a)
	}, iter.FromSlice(in.Atoms))
	return iter.WeightedHistogram(in.Geo.Points(), it)
}

// SeqEden runs the Eden-style sequential kernel: imperative loops over
// unboxed arrays (the paper's optimized Eden style for cutcp, §4.1).
func SeqEden(in *Input) []float32 {
	return Seq(in)
}

// SeqEdenIdiomatic is the paper's opening example (§1) taken literally:
//
//	floatHist [f a r | a <- atoms, r <- gridPts a]
//
// with every generated (grid point, contribution) pair allocated as a
// boxed cons cell before the histogram consumes it — the naive
// parallelization starting point whose per-thread performance is an order
// of magnitude below C. Accumulation order matches Seq exactly, so the
// result is bit-identical; only the intermediate representation differs.
func SeqEdenIdiomatic(in *Input) []float32 {
	type upd struct {
		i int
		w float32
	}
	g := in.Geo
	// gridPts a: the boxed list of updates an atom induces.
	gridPts := func(a Atom) *eden.Cell[upd] {
		var updates []upd
		zr, yr, xr := AtomBox(g, a)
		for z := zr.Lo; z < zr.Hi; z++ {
			for y := yr.Lo; y < yr.Hi; y++ {
				base := (z*g.Dim.H + y) * g.Dim.W
				for x := xr.Lo; x < xr.Hi; x++ {
					if v, ok := Contribution(g, a, domain.Ix3{Z: z, Y: y, X: x}); ok {
						updates = append(updates, upd{i: base + x, w: v})
					}
				}
			}
		}
		return eden.FromSlice(updates)
	}
	atoms := eden.FromSlice(in.Atoms)
	all := eden.ConcatMap(gridPts, atoms)
	grid := make([]float32, g.Points())
	eden.Foldl(all, struct{}{}, func(s struct{}, u upd) struct{} {
		grid[u.i] += u.w
		return s
	})
	return grid
}

// trioletOp distributes atoms across nodes; each node computes a private
// copy of the whole grid as a thread-parallel floating-point histogram,
// and grids are summed up the reduction tree — exactly the paper's
// "distributed reduction, which performs one threaded reduction per node,
// which sequentially builds one histogram per thread" (§3.4).
var trioletOp = core.NewMapReduce(
	"cutcp.triolet",
	atomsCodec(),
	geoCodec(),
	serial.F32s(),
	func(n *cluster.Node, atoms []Atom, g Geometry) ([]float32, error) {
		it := iter.LocalPar(iter.ConcatMap(func(a Atom) iter.Iter[iter.Bin[float32]] {
			return atomBins(g, a)
		}, iter.FromSlice(atoms)))
		return core.WeightedHistogramLocal(n.Pool, g.Points(), it, 1), nil
	},
	func(a, b []float32) []float32 { array.AddInto(a, b); return a },
)

// Triolet runs the paper's Triolet implementation.
func Triolet(s *cluster.Session, in *Input) ([]float32, error) {
	return trioletOp.Run(s, core.SliceSource(in.Atoms), in.Geo)
}

// ---- Eden ----

// The Eden port processes subsets of atoms in parallel; every task returns
// a full-size grid that the master adds up. Full grids per task are the
// large messages whose summation dominates cutcp's execution time (§4.5).
type edenTask struct {
	Atoms []Atom
	Geo   Geometry
}

func edenTaskCodec() serial.Codec[edenTask] {
	ac, gc := atomsCodec(), geoCodec()
	return serial.Funcs[edenTask]{
		Enc: func(w *serial.Writer, v edenTask) {
			ac.Encode(w, v.Atoms)
			gc.Encode(w, v.Geo)
		},
		Dec: func(r *serial.Reader) edenTask {
			return edenTask{Atoms: ac.Decode(r), Geo: gc.Decode(r)}
		},
	}
}

func init() {
	eden.RegisterProcess("cutcp.eden", func(_ *eden.Proc, b []byte) ([]byte, error) {
		t, err := serial.Unmarshal(edenTaskCodec(), b)
		if err != nil {
			return nil, err
		}
		grid := make([]float32, t.Geo.Points())
		for _, a := range t.Atoms {
			Accumulate(t.Geo, a, grid)
		}
		return serial.Marshal(serial.F32s(), grid), nil
	})
}

// Eden runs the Eden implementation: one task per process (atom blocks),
// two-level distribution, master-side grid summation.
func Eden(m *eden.Master, in *Input) ([]float32, error) {
	blocks := domain.BlockPartition(len(in.Atoms), m.Processes())
	tasks := make([]edenTask, 0, len(blocks))
	for _, r := range blocks {
		tasks = append(tasks, edenTask{Atoms: in.Atoms[r.Lo:r.Hi], Geo: in.Geo})
	}
	zero := make([]float32, in.Geo.Points())
	return eden.ParMapReduceT(m, "cutcp.eden", edenTaskCodec(), serial.F32s(), tasks,
		zero, func(a, b []float32) []float32 { array.AddInto(a, b); return a })
}

// ---- C+MPI+OpenMP reference ----

// Ref is the hand-partitioned reference: atoms scattered, geometry
// broadcast, per-thread private grids merged per node, grids tree-reduced
// to the root.
func Ref(cfg cluster.Config, in *Input) ([]float32, error) {
	var out []float32
	err := mpi.Run(transport.Config{Ranks: cfg.Nodes}, func(c *mpi.Comm) error {
		pool := sched.NewPool(cfg.CoresPerNode)
		defer pool.Close()

		var parts [][]Atom
		if c.Rank() == 0 {
			parts = make([][]Atom, c.Size())
			for i, r := range domain.BlockPartition(len(in.Atoms), c.Size()) {
				parts[i] = in.Atoms[r.Lo:r.Hi]
			}
		}
		mine, err := mpi.ScatterT(c, 0, atomsCodec(), parts)
		if err != nil {
			return err
		}
		var g Geometry
		if c.Rank() == 0 {
			g = in.Geo
		}
		g, err = mpi.BcastT(c, 0, geoCodec(), g)
		if err != nil {
			return err
		}
		private := make([][]float32, pool.Workers())
		for w := range private {
			private[w] = make([]float32, g.Points())
		}
		pool.ParallelFor(len(mine), 1, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				Accumulate(g, mine[i], private[worker])
			}
		})
		local := make([]float32, g.Points())
		for _, p := range private {
			array.AddInto(local, p)
		}
		total, ok, err := mpi.ReduceT(c, serial.F32s(), local,
			func(a, b []float32) []float32 { array.AddInto(a, b); return a })
		if err != nil {
			return err
		}
		if c.Rank() == 0 && ok {
			out = total
		}
		return nil
	})
	return out, err
}
