package parboil

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for range 10 {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(5).Float64() == NewRand(6).Float64() {
		t.Fatal("different seeds coincided")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float32{1, 2, 3}, []float32{1, 2.5, 3}); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if d := MaxAbsDiff(nil, nil); d != 0 {
		t.Fatalf("empty diff = %v", d)
	}
}

func TestMaxAbsDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsDiff([]float32{1}, []float32{1, 2})
}

func TestMaxRelDiff(t *testing.T) {
	got := MaxRelDiff([]float32{100, 1e-9}, []float32{110, 2e-9}, 1e-3)
	// First element: 10/110 ≈ 0.0909; second: 1e-9/1e-3 = 1e-6.
	if math.Abs(got-10.0/110) > 1e-9 {
		t.Fatalf("MaxRelDiff = %v", got)
	}
}

func TestMaxRelDiffFloorGuards(t *testing.T) {
	// Tiny values against zero: without the floor this would be 1.0.
	if d := MaxRelDiff([]float32{1e-8}, []float32{0}, 1e-3); d > 1e-4 {
		t.Fatalf("floor not applied: %v", d)
	}
}

func TestEqualInt64(t *testing.T) {
	if !EqualInt64([]int64{1, 2}, []int64{1, 2}) {
		t.Fatal("equal slices reported unequal")
	}
	if EqualInt64([]int64{1}, []int64{1, 2}) || EqualInt64([]int64{1}, []int64{2}) {
		t.Fatal("unequal slices reported equal")
	}
}
