package mriq

import (
	"math"
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/diffcheck"
	"triolet/internal/eden"
	"triolet/internal/parboil"
)

func TestGenDeterministic(t *testing.T) {
	a := Gen(100, 32, 7)
	b := Gen(100, 32, 7)
	if parboil.MaxAbsDiff(a.X, b.X) != 0 || parboil.MaxAbsDiff(a.PhiMag, b.PhiMag) != 0 {
		t.Fatal("same seed produced different inputs")
	}
	c := Gen(100, 32, 8)
	if parboil.MaxAbsDiff(a.X, c.X) == 0 {
		t.Fatal("different seeds produced identical voxels")
	}
	if a.NumVoxels() != 100 || a.NumSamples() != 32 {
		t.Fatalf("sizes %d %d", a.NumVoxels(), a.NumSamples())
	}
}

func TestGenRanges(t *testing.T) {
	in := Gen(500, 200, 3)
	for i, v := range in.X {
		if v < 0 || v >= 1 {
			t.Fatalf("X[%d] = %v out of [0,1)", i, v)
		}
	}
	for k := range in.KX {
		if in.KX[k] < -1 || in.KX[k] > 1 || in.PhiMag[k] < 0 {
			t.Fatalf("sample %d out of range: kx=%v phi=%v", k, in.KX[k], in.PhiMag[k])
		}
	}
}

func TestSeqSingleSampleAnalytic(t *testing.T) {
	// One sample, one voxel: Q = phiMag * (cos(2πe), sin(2πe)).
	in := &Input{
		X: []float32{0.5}, Y: []float32{0.25}, Z: []float32{0},
		KX: []float32{1}, KY: []float32{1}, KZ: []float32{1},
		PhiMag: []float32{2},
	}
	got := Seq(in)[0]
	e := 2 * math.Pi * (0.5 + 0.25)
	wantRe := 2 * float32(math.Cos(e))
	wantIm := 2 * float32(math.Sin(e))
	if !diffcheck.TolMriq.Within(float64(got.Re), float64(wantRe), 0) || !diffcheck.TolMriq.Within(float64(got.Im), float64(wantIm), 0) {
		t.Fatalf("Q = %+v, want (%v, %v)", got, wantRe, wantIm)
	}
}

func TestSeqZeroTrajectory(t *testing.T) {
	// kx=ky=kz=0 → every contribution is (phiMag, 0).
	in := &Input{
		X: []float32{0.1, 0.9}, Y: []float32{0.2, 0.8}, Z: []float32{0.3, 0.7},
		KX: []float32{0, 0}, KY: []float32{0, 0}, KZ: []float32{0, 0},
		PhiMag: []float32{1.5, 2.5},
	}
	for i, q := range Seq(in) {
		if q.Re != 4 || q.Im != 0 {
			t.Fatalf("voxel %d = %+v, want (4,0)", i, q)
		}
	}
}

func checkAgainstSeq(t *testing.T, name string, got []QPoint, in *Input) {
	t.Helper()
	want := Seq(in)
	if len(got) != len(want) {
		t.Fatalf("%s: %d voxels, want %d", name, len(got), len(want))
	}
	gr, gi := SplitQ(got)
	wr, wi := SplitQ(want)
	// All implementations share VoxelQ, so results are bit-identical.
	if d := parboil.MaxAbsDiff(gr, wr); d != 0 {
		t.Fatalf("%s: Re differs by %v", name, d)
	}
	if d := parboil.MaxAbsDiff(gi, wi); d != 0 {
		t.Fatalf("%s: Im differs by %v", name, d)
	}
}

func TestTrioletMatchesSeq(t *testing.T) {
	in := Gen(333, 64, 11)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 3, CoresPerNode: 2},
		{Nodes: 8, CoresPerNode: 1},
	} {
		var got []QPoint
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			q, err := Triolet(s, in)
			got = q
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkAgainstSeq(t, "triolet", got, in)
	}
}

func TestEdenMatchesSeq(t *testing.T) {
	in := Gen(2500, 48, 13) // > 2 chunks of 1024
	for _, cfg := range []eden.Config{
		{Processes: 1},
		{Processes: 4, ProcsPerNode: 2},
		{Processes: 6, ProcsPerNode: 3},
	} {
		var got []QPoint
		_, err := eden.Run(cfg, func(m *eden.Master) error {
			q, err := Eden(m, in)
			got = q
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkAgainstSeq(t, "eden", got, in)
	}
}

func TestRefMatchesSeq(t *testing.T) {
	in := Gen(257, 64, 17)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 4, CoresPerNode: 2},
	} {
		got, err := Ref(cfg, in)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkAgainstSeq(t, "ref", got, in)
	}
}

func TestEdenReplicatesSamples(t *testing.T) {
	// Eden's per-task sample replication must show up as extra traffic
	// relative to Triolet's broadcast (the paper's data-distribution
	// point). Same cluster shape, same input.
	in := Gen(4096, 256, 19)
	edenStats, err := eden.Run(eden.Config{Processes: 4, ProcsPerNode: 2}, func(m *eden.Master) error {
		_, err := Eden(m, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	trioStats, err := cluster.Run(cluster.Config{Nodes: 2, CoresPerNode: 2}, func(s *cluster.Session) error {
		_, err := Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if edenStats.Bytes <= trioStats.Bytes {
		t.Fatalf("eden moved %d bytes, triolet %d: replication not visible",
			edenStats.Bytes, trioStats.Bytes)
	}
}

func TestIdiomaticEdenMatchesOptimizedEden(t *testing.T) {
	// Same arithmetic in the same order: boxed lists must not change a bit.
	in := Gen(150, 40, 23)
	a := SeqEden(in)
	b := SeqEdenIdiomatic(in)
	ar, ai := SplitQ(a)
	br, bi := SplitQ(b)
	if parboil.MaxAbsDiff(ar, br) != 0 || parboil.MaxAbsDiff(ai, bi) != 0 {
		t.Fatal("idiomatic list version changed the result")
	}
}

func TestSplitQ(t *testing.T) {
	re, im := SplitQ([]QPoint{{1, 2}, {3, 4}})
	if re[1] != 3 || im[0] != 2 {
		t.Fatalf("SplitQ = %v %v", re, im)
	}
}
