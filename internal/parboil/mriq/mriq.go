// Package mriq implements the Parboil mri-q benchmark (paper §4.2): a
// non-uniform 3-D inverse Fourier transform. For every image voxel r, the
// kernel sums contributions from every frequency-domain sample k:
//
//	Q(r) = Σ_k φmag[k] · exp(2πi · (kx·rx + ky·ry + kz·rz))
//
// The loop is a flat parallel map over voxels with a dense inner reduction
// over samples — the paper's two-line Triolet program:
//
//	[sum(ftcoeff(k, r) for k in ks) for r in par(zip3(x, y, z))]
package mriq

import (
	"math"

	"triolet/internal/parboil"
)

// Input is one mri-q problem instance.
type Input struct {
	// Voxel coordinates (length NumVoxels).
	X, Y, Z []float32
	// Frequency-domain sample trajectory and magnitudes (length
	// NumSamples). PhiMag is precomputed as phiR²+phiI², as Parboil does.
	KX, KY, KZ, PhiMag []float32
}

// NumVoxels reports the image size.
func (in *Input) NumVoxels() int { return len(in.X) }

// NumSamples reports the k-space trajectory length.
func (in *Input) NumSamples() int { return len(in.KX) }

// QPoint is one output voxel of the complex image.
type QPoint struct {
	Re, Im float32
}

// Gen creates a deterministic instance with voxels in the unit cube and a
// k-space trajectory matching Parboil's value ranges.
func Gen(voxels, samples int, seed uint64) *Input {
	rng := parboil.NewRand(seed)
	in := &Input{
		X: make([]float32, voxels), Y: make([]float32, voxels), Z: make([]float32, voxels),
		KX: make([]float32, samples), KY: make([]float32, samples),
		KZ: make([]float32, samples), PhiMag: make([]float32, samples),
	}
	for i := range voxels {
		in.X[i] = rng.Float32()
		in.Y[i] = rng.Float32()
		in.Z[i] = rng.Float32()
	}
	for k := range samples {
		in.KX[k] = rng.Float32()*2 - 1
		in.KY[k] = rng.Float32()*2 - 1
		in.KZ[k] = rng.Float32()*2 - 1
		phiR := rng.Float32()*2 - 1
		phiI := rng.Float32()*2 - 1
		in.PhiMag[k] = phiR*phiR + phiI*phiI
	}
	return in
}

// ftCoeff is the per-(voxel, sample) contribution — the paper's ftcoeff.
func ftCoeff(in *Input, k int, x, y, z float32) (float32, float32) {
	exp := 2 * math.Pi * float64(in.KX[k]*x+in.KY[k]*y+in.KZ[k]*z)
	s, c := math.Sincos(exp)
	return in.PhiMag[k] * float32(c), in.PhiMag[k] * float32(s)
}

// VoxelQ computes one output voxel: the dense reduction over all samples.
// Every implementation — sequential, Triolet, Eden, reference — shares this
// innermost fused loop, so cross-implementation results are bit-identical.
func VoxelQ(in *Input, x, y, z float32) QPoint {
	var re, im float32
	for k := range in.KX {
		r, i := ftCoeff(in, k, x, y, z)
		re += r
		im += i
	}
	return QPoint{Re: re, Im: im}
}

// VoxelQEden is the Eden-style inner loop: the same reduction with the
// sine and cosine computed by separate calls instead of one fused Sincos.
// The paper attributes Eden's ~50 % longer mri-q sequential time to GHC's
// backend missing exactly this floating-point optimization (§4.2); the Go
// analog performs argument reduction twice and is measurably slower while
// producing identical values (math.Sincos is defined as (Sin(x), Cos(x))).
func VoxelQEden(in *Input, x, y, z float32) QPoint {
	var re, im float32
	for k := range in.KX {
		exp := 2 * math.Pi * float64(in.KX[k]*x+in.KY[k]*y+in.KZ[k]*z)
		re += in.PhiMag[k] * float32(math.Cos(exp))
		im += in.PhiMag[k] * float32(math.Sin(exp))
	}
	return QPoint{Re: re, Im: im}
}

// Seq is the sequential C-style kernel: the speedup-1.0 baseline of
// paper Fig. 4.
func Seq(in *Input) []QPoint {
	out := make([]QPoint, in.NumVoxels())
	for i := range out {
		out[i] = VoxelQ(in, in.X[i], in.Y[i], in.Z[i])
	}
	return out
}

// SplitQ unpacks an output image into separate real and imaginary planes
// (for comparison helpers that work on []float32).
func SplitQ(q []QPoint) (re, im []float32) {
	re = make([]float32, len(q))
	im = make([]float32, len(q))
	for i, p := range q {
		re[i] = p.Re
		im[i] = p.Im
	}
	return re, im
}
