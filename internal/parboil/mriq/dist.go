package mriq

import (
	"fmt"
	"math"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// ---- codecs ----

// voxSlice is the per-node slice of voxel coordinates.
type voxSlice struct {
	X, Y, Z []float32
}

func voxCodec() serial.Codec[voxSlice] {
	return serial.Funcs[voxSlice]{
		Enc: func(w *serial.Writer, v voxSlice) {
			w.F32Slice(v.X)
			w.F32Slice(v.Y)
			w.F32Slice(v.Z)
		},
		Dec: func(r *serial.Reader) voxSlice {
			return voxSlice{X: r.F32Slice(), Y: r.F32Slice(), Z: r.F32Slice()}
		},
	}
}

// samples is the broadcast auxiliary input: the full k-space trajectory.
type samples struct {
	KX, KY, KZ, PhiMag []float32
}

func samplesCodec() serial.Codec[samples] {
	return serial.Funcs[samples]{
		Enc: func(w *serial.Writer, v samples) {
			w.F32Slice(v.KX)
			w.F32Slice(v.KY)
			w.F32Slice(v.KZ)
			w.F32Slice(v.PhiMag)
		},
		Dec: func(r *serial.Reader) samples {
			return samples{KX: r.F32Slice(), KY: r.F32Slice(), KZ: r.F32Slice(), PhiMag: r.F32Slice()}
		},
	}
}

func qCodec() serial.Codec[[]QPoint] {
	return serial.Funcs[[]QPoint]{
		Enc: func(w *serial.Writer, v []QPoint) {
			w.Int(len(v))
			for _, q := range v {
				w.F32(q.Re)
				w.F32(q.Im)
			}
		},
		Dec: func(r *serial.Reader) []QPoint {
			n := r.Int()
			if r.Err() != nil || n < 0 || n > r.Remaining()/8 {
				return nil
			}
			out := make([]QPoint, n)
			for i := range out {
				out[i] = QPoint{Re: r.F32(), Im: r.F32()}
			}
			return out
		},
	}
}

func (s samples) toInput(v voxSlice) *Input {
	return &Input{X: v.X, Y: v.Y, Z: v.Z, KX: s.KX, KY: s.KY, KZ: s.KZ, PhiMag: s.PhiMag}
}

// computeLocal evaluates the voxel map for one node's slice on its pool —
// the fused localpar pipeline shared by the Triolet kernel and (without a
// pool) the Eden process body.
func computeLocal(pool *sched.Pool, in *Input) []QPoint {
	it := iter.LocalPar(iter.Map(func(t iter.Triple[float32, float32, float32]) QPoint {
		return VoxelQ(in, t.Fst, t.Snd, t.Trd)
	}, iter.Zip3(iter.FromSlice(in.X), iter.FromSlice(in.Y), iter.FromSlice(in.Z))))
	return core.BuildSliceLocal(pool, it, 8)
}

// SeqTriolet runs the Triolet iterator pipeline on one thread — the
// "Triolet" bar of paper Fig. 3 (sequential execution time).
func SeqTriolet(in *Input) []QPoint {
	return computeLocal(nil, in)
}

// SeqEden runs the Eden-style sequential kernel (un-fused Sin/Cos) — the
// "Eden" bar of paper Fig. 3. This is the paper's *optimized* Eden style:
// unboxed arrays with imperative loops.
func SeqEden(in *Input) []QPoint {
	out := make([]QPoint, in.NumVoxels())
	for i := range out {
		out[i] = VoxelQEden(in, in.X[i], in.Y[i], in.Z[i])
	}
	return out
}

// SeqEdenIdiomatic is the naive list-comprehension style the paper opens
// with (§1): every voxel, every sample contribution, and every
// intermediate value lives in a boxed cons list. Its per-thread
// performance is "an order of magnitude lower than sequential C chiefly
// due to the overhead of list manipulation" — quantified by
// BenchmarkAblationIdiomaticEden. Results are bit-identical to SeqEden
// (same arithmetic, same order); only the data representation differs.
func SeqEdenIdiomatic(in *Input) []QPoint {
	type voxel struct{ x, y, z float32 }
	voxSlice := make([]voxel, in.NumVoxels())
	for i := range voxSlice {
		voxSlice[i] = voxel{in.X[i], in.Y[i], in.Z[i]}
	}
	rs := eden.FromSlice(voxSlice) // boxed list of voxels
	ks := eden.FromSlice(seqInts(in.NumSamples()))

	// [ sum [ftcoeff k r | k <- ks] | r <- rs ]
	out := eden.Map(func(r voxel) QPoint {
		contribs := eden.Map(func(k int) QPoint {
			exp := 2 * math.Pi * float64(in.KX[k]*r.x+in.KY[k]*r.y+in.KZ[k]*r.z)
			return QPoint{
				Re: in.PhiMag[k] * float32(math.Cos(exp)),
				Im: in.PhiMag[k] * float32(math.Sin(exp)),
			}
		}, ks)
		return eden.Foldl(contribs, QPoint{}, func(a, c QPoint) QPoint {
			return QPoint{Re: a.Re + c.Re, Im: a.Im + c.Im}
		})
	}, rs)
	return eden.ToSlice(out)
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---- Triolet ----

// trioletOp is the distributed skeleton instance: voxels sliced across
// nodes, samples broadcast, per-node sections gathered into the image.
var trioletOp = core.NewBuildArray(
	"mriq.triolet",
	voxCodec(),
	samplesCodec(),
	qCodec(),
	func(n *cluster.Node, v voxSlice, aux samples) ([]QPoint, error) {
		return computeLocal(n.Pool, aux.toInput(v)), nil
	},
)

// Triolet runs the paper's Triolet implementation on a virtual cluster.
func Triolet(s *cluster.Session, in *Input) ([]QPoint, error) {
	src := core.FuncSource[voxSlice]{
		N: in.NumVoxels(),
		SliceFn: func(r domain.Range) voxSlice {
			return voxSlice{X: in.X[r.Lo:r.Hi], Y: in.Y[r.Lo:r.Hi], Z: in.Z[r.Lo:r.Hi]}
		},
	}
	return trioletOp.Run(s, src, samples{KX: in.KX, KY: in.KY, KZ: in.KZ, PhiMag: in.PhiMag})
}

// ---- Eden ----

// EdenChunk is the paper's chunked-vector Eden style (§4.2): voxel arrays
// are built as lists of 1k-element chunks so the runtime can distribute
// subarrays. Each task carries its chunk AND the full sample trajectory —
// Eden has no broadcast, so the samples are replicated into every task
// bundle (paper §1's "some input data are unnecessarily replicated").
const EdenChunkSize = 1024

type edenTask struct {
	Vox voxSlice
	Aux samples
}

func edenTaskCodec() serial.Codec[edenTask] {
	vc, sc := voxCodec(), samplesCodec()
	return serial.Funcs[edenTask]{
		Enc: func(w *serial.Writer, v edenTask) {
			vc.Encode(w, v.Vox)
			sc.Encode(w, v.Aux)
		},
		Dec: func(r *serial.Reader) edenTask {
			return edenTask{Vox: vc.Decode(r), Aux: sc.Decode(r)}
		},
	}
}

func init() {
	eden.RegisterProcess("mriq.eden", func(_ *eden.Proc, b []byte) ([]byte, error) {
		task, err := serial.Unmarshal(edenTaskCodec(), b)
		if err != nil {
			return nil, err
		}
		// An Eden process has one core and no pool: sequential compute,
		// with the un-fused Sin/Cos inner loop (see VoxelQEden).
		in := task.Aux.toInput(task.Vox)
		out := make([]QPoint, len(in.X))
		for i := range out {
			out[i] = VoxelQEden(in, in.X[i], in.Y[i], in.Z[i])
		}
		return serial.Marshal(qCodec(), out), nil
	})
}

// Eden runs the chunked two-level Eden implementation.
func Eden(m *eden.Master, in *Input) ([]QPoint, error) {
	aux := samples{KX: in.KX, KY: in.KY, KZ: in.KZ, PhiMag: in.PhiMag}
	var tasks []edenTask
	for _, r := range domain.ChunkPartition(in.NumVoxels(), EdenChunkSize) {
		tasks = append(tasks, edenTask{
			Vox: voxSlice{X: in.X[r.Lo:r.Hi], Y: in.Y[r.Lo:r.Hi], Z: in.Z[r.Lo:r.Hi]},
			Aux: aux,
		})
	}
	chunks, err := eden.TwoLevelParMapT(m, "mriq.eden", edenTaskCodec(), qCodec(), tasks)
	if err != nil {
		return nil, err
	}
	out := make([]QPoint, 0, in.NumVoxels())
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// ---- C+MPI+OpenMP reference ----

// Ref runs the hand-partitioned reference implementation with
// nonblocking, point-to-point messaging — the structure of the paper's
// fastest C version, which beat MPI's scatter/gather/broadcast primitives
// (§4.2). Rank 0 posts every slice-and-samples send and every section
// receive up front, computes its own section while the transfers are in
// flight, and waits at the end. Input lives at rank 0, as in an MPI
// program.
func Ref(cfg cluster.Config, in *Input) ([]QPoint, error) {
	const (
		tagVox     = 1
		tagSamples = 2
		tagOut     = 3
	)
	var out []QPoint
	err := mpi.Run(transport.Config{Ranks: cfg.Nodes}, func(c *mpi.Comm) error {
		pool := sched.NewPool(cfg.CoresPerNode)
		defer pool.Close()

		compute := func(aux samples, mine voxSlice) []QPoint {
			local := aux.toInput(mine)
			sec := make([]QPoint, len(mine.X))
			pool.ParallelFor(len(sec), 8, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					sec[i] = VoxelQ(local, local.X[i], local.Y[i], local.Z[i])
				}
			})
			return sec
		}

		if c.Rank() == 0 {
			aux := samples{KX: in.KX, KY: in.KY, KZ: in.KZ, PhiMag: in.PhiMag}
			parts := make([]voxSlice, c.Size())
			for i, r := range domain.BlockPartition(in.NumVoxels(), c.Size()) {
				parts[i] = voxSlice{X: in.X[r.Lo:r.Hi], Y: in.Y[r.Lo:r.Hi], Z: in.Z[r.Lo:r.Hi]}
			}
			// Post all sends and all receives, then compute locally while
			// they are in flight.
			var sends []*mpi.Request
			auxBytes := serial.Marshal(samplesCodec(), aux)
			for dst := 1; dst < c.Size(); dst++ {
				sends = append(sends, c.Isend(dst, tagVox, serial.Marshal(voxCodec(), parts[dst])))
				sends = append(sends, c.Isend(dst, tagSamples, auxBytes))
			}
			recvs := make([]*mpi.Request, c.Size())
			for src := 1; src < c.Size(); src++ {
				recvs[src] = c.Irecv(src, tagOut)
			}
			sec0 := compute(aux, parts[0])
			if err := mpi.WaitAll(sends); err != nil {
				return err
			}
			out = make([]QPoint, 0, in.NumVoxels())
			out = append(out, sec0...)
			for src := 1; src < c.Size(); src++ {
				msg, err := recvs[src].Wait()
				if err != nil {
					return err
				}
				sec, err := serial.Unmarshal(qCodec(), msg.Payload)
				if err != nil {
					return fmt.Errorf("mriq: section from rank %d: %w", src, err)
				}
				out = append(out, sec...)
			}
			return nil
		}

		voxMsg, err := c.Recv(0, tagVox)
		if err != nil {
			return err
		}
		mine, err := serial.Unmarshal(voxCodec(), voxMsg.Payload)
		if err != nil {
			return err
		}
		auxMsg, err := c.Recv(0, tagSamples)
		if err != nil {
			return err
		}
		aux, err := serial.Unmarshal(samplesCodec(), auxMsg.Payload)
		if err != nil {
			return err
		}
		return c.Send(0, tagOut, serial.Marshal(qCodec(), compute(aux, mine)))
	})
	return out, err
}
