// Package sgemm implements the Parboil sgemm benchmark (paper §4.3): the
// scaled matrix product C = α·A·B. All implementations first transpose B
// so the innermost loop reads contiguous rows, then compute each output
// element as a dot product of a row of A with a row of Bᵀ. The distributed
// versions use a 2-D block decomposition that sends each worker only the
// input rows its block needs — written in Triolet as the paper's two lines:
//
//	zipped_AB = outerproduct(rows(A), rows(BT))
//	AB = [dot(u, v) for (u, v) in par(zipped_AB)]
package sgemm

import (
	"triolet/internal/array"
	"triolet/internal/parboil"
)

// Input is one sgemm instance: C = Alpha · A(M×K) · B(K×N).
type Input struct {
	A, B  array.Matrix[float32]
	Alpha float32
}

// Gen creates a deterministic instance with entries in [-1, 1).
func Gen(m, k, n int, seed uint64) *Input {
	rng := parboil.NewRand(seed)
	in := &Input{
		A:     array.NewMatrix[float32](m, k),
		B:     array.NewMatrix[float32](k, n),
		Alpha: 0.5,
	}
	for i := range in.A.Data {
		in.A.Data[i] = rng.Float32()*2 - 1
	}
	for i := range in.B.Data {
		in.B.Data[i] = rng.Float32()*2 - 1
	}
	return in
}

// RowDot is the fused innermost loop shared by every implementation:
// α · ⟨u, v⟩ for a row of A and a row of Bᵀ.
func RowDot(alpha float32, u, v []float32) float32 {
	var acc float32
	for i, x := range u {
		acc += x * v[i]
	}
	return alpha * acc
}

// Seq is the sequential C-style kernel: transpose B, then the classic
// i-j-k loop nest. The speedup-1.0 baseline of paper Fig. 5.
func Seq(in *Input) array.Matrix[float32] {
	bt := array.Transpose(in.B)
	out := array.NewMatrix[float32](in.A.H, in.B.W)
	for i := 0; i < out.H; i++ {
		ai := in.A.Row(i)
		ci := out.Row(i)
		for j := 0; j < out.W; j++ {
			ci[j] = RowDot(in.Alpha, ai, bt.Row(j))
		}
	}
	return out
}
