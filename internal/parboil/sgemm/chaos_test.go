package sgemm

import (
	"testing"
	"time"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/mpi"
	"triolet/internal/parboil"
	"triolet/internal/transport"
)

// Chaos mode: the full distributed benchmark on a fabric that drops,
// duplicates, and corrupts ≥1% of messages. The acceptance bar is bit-exact
// agreement with the fault-free run — the retry/ack layer must make the
// faulty fabric indistinguishable from a lossless one.

func chaosFault(seed int64) *transport.FaultConfig {
	return &transport.FaultConfig{
		Seed: seed,
		Default: transport.FaultProbs{
			Drop:      0.02,
			Duplicate: 0.02,
			Corrupt:   0.02,
		},
	}
}

func chaosRetry() *mpi.ReliableConfig {
	return &mpi.ReliableConfig{
		AckTimeout:    time.Millisecond,
		Retries:       100,
		MaxAckTimeout: 50 * time.Millisecond,
	}
}

func runTriolet(t *testing.T, cfg cluster.Config, in *Input) array.Matrix[float32] {
	t.Helper()
	var got array.Matrix[float32]
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			c, err := Triolet(s, in)
			got = c
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%+v: run hung under fault injection", cfg)
	}
	return got
}

func TestTrioletChaosIdenticalResults(t *testing.T) {
	in := Gen(45, 30, 37, 21)
	clean := runTriolet(t, cluster.Config{Nodes: 4, CoresPerNode: 2}, in)
	faulty := runTriolet(t, cluster.Config{
		Nodes: 4, CoresPerNode: 2,
		Fault:    chaosFault(20260806),
		Reliable: chaosRetry(),
	}, in)
	if clean.H != faulty.H || clean.W != faulty.W {
		t.Fatalf("shape %dx%d vs %dx%d", faulty.H, faulty.W, clean.H, clean.W)
	}
	if d := parboil.MaxAbsDiff(clean.Data, faulty.Data); d != 0 {
		t.Fatalf("faulty run differs from clean run by %v", d)
	}
	// And both still agree with the sequential reference.
	checkMatch(t, "triolet-chaos", faulty, in)
}

func TestTrioletChaosFaultsActuallyFired(t *testing.T) {
	// Guard against a silently disabled injector: the chaos profile must
	// produce faults and the protocol must record recoveries.
	in := Gen(33, 20, 29, 23)
	var stats transport.Stats
	done := make(chan error, 1)
	go func() {
		s, err := cluster.Run(cluster.Config{
			Nodes: 4, CoresPerNode: 1,
			Fault:    chaosFault(77),
			Reliable: chaosRetry(),
		}, func(s *cluster.Session) error {
			_, err := Triolet(s, in)
			return err
		})
		stats = s
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run hung under fault injection")
	}
	f := stats.Faults
	if f.Dropped+f.Duplicated+f.Corrupted == 0 {
		t.Fatalf("no faults injected: %+v", f)
	}
}
