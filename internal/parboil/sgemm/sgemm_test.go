package sgemm

import (
	"errors"
	"testing"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/diffcheck"
	"triolet/internal/eden"
	"triolet/internal/parboil"
	"triolet/internal/sched"
	"triolet/internal/transport"
)

func TestGenDeterministic(t *testing.T) {
	a := Gen(8, 6, 10, 3)
	b := Gen(8, 6, 10, 3)
	if parboil.MaxAbsDiff(a.A.Data, b.A.Data) != 0 || parboil.MaxAbsDiff(a.B.Data, b.B.Data) != 0 {
		t.Fatal("same seed, different matrices")
	}
	if a.A.H != 8 || a.A.W != 6 || a.B.H != 6 || a.B.W != 10 {
		t.Fatal("shapes wrong")
	}
}

func TestSeqIdentity(t *testing.T) {
	// A·I = A (alpha 1).
	in := &Input{A: array.NewMatrix[float32](3, 3), B: array.NewMatrix[float32](3, 3), Alpha: 1}
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	copy(in.A.Data, vals)
	for i := range 3 {
		in.B.Set(i, i, 1)
	}
	got := Seq(in)
	if parboil.MaxAbsDiff(got.Data, vals) != 0 {
		t.Fatalf("A·I = %v", got.Data)
	}
}

func TestSeqAlphaScales(t *testing.T) {
	in := Gen(5, 4, 6, 9)
	c1 := Seq(in)
	in2 := &Input{A: in.A, B: in.B, Alpha: in.Alpha * 2}
	c2 := Seq(in2)
	for i := range c1.Data {
		if !diffcheck.TolSgemm.Within(float64(c2.Data[i]), float64(2*c1.Data[i]), 0) {
			t.Fatalf("alpha scaling broken at %d: %v vs %v", i, c2.Data[i], c1.Data[i])
		}
	}
}

func TestSeqKnownProduct(t *testing.T) {
	in := &Input{
		A:     array.FromRows([][]float32{{1, 2}, {3, 4}}),
		B:     array.FromRows([][]float32{{5, 6}, {7, 8}}),
		Alpha: 1,
	}
	want := []float32{19, 22, 43, 50}
	got := Seq(in)
	if parboil.MaxAbsDiff(got.Data, want) != 0 {
		t.Fatalf("product = %v, want %v", got.Data, want)
	}
}

func TestTransposeLocalParallelMatchesSeq(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	m := Gen(37, 23, 1, 5).A
	seq := array.Transpose(m)
	par := TransposeLocal(pool, m)
	if parboil.MaxAbsDiff(seq.Data, par.Data) != 0 {
		t.Fatal("parallel transpose differs")
	}
}

func checkMatch(t *testing.T, name string, got array.Matrix[float32], in *Input) {
	t.Helper()
	want := Seq(in)
	if got.H != want.H || got.W != want.W {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.H, got.W, want.H, want.W)
	}
	// Same fused inner loop everywhere → bit-identical.
	if d := parboil.MaxAbsDiff(got.Data, want.Data); d != 0 {
		t.Fatalf("%s: differs by %v", name, d)
	}
}

func TestTrioletMatchesSeq(t *testing.T) {
	in := Gen(45, 30, 37, 21)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 4, CoresPerNode: 2},
		{Nodes: 6, CoresPerNode: 1},
	} {
		var got array.Matrix[float32]
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			c, err := Triolet(s, in)
			got = c
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkMatch(t, "triolet", got, in)
	}
}

func TestEdenMatchesSeq(t *testing.T) {
	in := Gen(33, 20, 29, 23)
	for _, cfg := range []eden.Config{
		{Processes: 1},
		{Processes: 4, ProcsPerNode: 2},
	} {
		var got array.Matrix[float32]
		_, err := eden.Run(cfg, func(m *eden.Master) error {
			c, err := Eden(m, in)
			got = c
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkMatch(t, "eden", got, in)
	}
}

func TestEdenFailsOnBufferLimit(t *testing.T) {
	// The paper's Fig. 5 failure: with ≥2 nodes, Eden's bounded message
	// buffer cannot carry the block inputs.
	in := Gen(128, 128, 128, 29)
	_, err := eden.Run(eden.Config{Processes: 4, ProcsPerNode: 2, MaxMessageBytes: 32 * 1024},
		func(m *eden.Master) error {
			_, err := Eden(m, in)
			return err
		})
	if err == nil || !errors.Is(err, transport.ErrMessageTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefMatchesSeq(t *testing.T) {
	in := Gen(41, 26, 35, 31)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 4, CoresPerNode: 2},
	} {
		got, err := Ref(cfg, in)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkMatch(t, "ref", got, in)
	}
}

func TestBlockDecompositionSlicesInput(t *testing.T) {
	// Each node must receive less than the full A and Bᵀ: total scattered
	// bytes stay well below nodes × (|A|+|B|).
	in := Gen(96, 64, 96, 33)
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 1}
	stats, err := cluster.Run(cfg, func(s *cluster.Session) error {
		_, err := Triolet(s, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	fullBoth := int64(4 * (len(in.A.Data) + len(in.B.Data)))
	naive := fullBoth * int64(cfg.Nodes-1) // whole input to every worker
	if stats.Bytes >= naive {
		t.Fatalf("moved %d bytes ≥ naive %d: 2-D slicing not effective", stats.Bytes, naive)
	}
}
