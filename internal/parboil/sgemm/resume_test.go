package sgemm

import (
	"context"
	"sync"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/cluster"
	"triolet/internal/serial"
)

// Workload-level checkpoint/resume: sgemm rows as farm tasks. The job's
// master is killed mid-run and restarted against the same store, and the
// resumed matrix must agree bit-exactly with the sequential kernel — rows
// restored from the checkpoint and rows computed after the restart alike.

// rowFarmOnce registers the per-row farm kernel: the kernel registry is
// process-global, so the registration must survive repeated test runs.
var rowFarmOnce sync.Once

func registerRowFarm() {
	rowFarmOnce.Do(func() {
		cluster.RegisterFarm("sgemm.row", func(n *cluster.Node, task []byte) ([]byte, error) {
			time.Sleep(time.Millisecond) // pace the job so the mid-run kill lands mid-run
			r := serial.NewReader(task)
			alpha := r.F32()
			row := r.F32Slice()
			k := r.Int()
			bt := r.F32Slice()
			if r.Err() != nil {
				return nil, r.Err()
			}
			nCols := len(bt) / k
			w := serial.NewWriter(4 * nCols)
			for j := 0; j < nCols; j++ {
				w.F32(RowDot(alpha, row, bt[j*k:(j+1)*k]))
			}
			return w.Bytes(), nil
		})
	})
}

func TestResumeRowsBitExact(t *testing.T) {
	registerRowFarm()
	in := Gen(24, 16, 12, 7)
	seq := Seq(in)

	// One task per row of C: α, the A row, K, and all of Bᵀ (row-major).
	bt := make([]float32, 0, in.B.W*in.B.H)
	for j := 0; j < in.B.W; j++ {
		for k := 0; k < in.B.H; k++ {
			bt = append(bt, in.B.Row(k)[j])
		}
	}
	tasks := make([][]byte, in.A.H)
	for i := range tasks {
		w := serial.NewWriter(4 * (in.A.W + len(bt) + 4))
		w.F32(in.Alpha)
		w.F32Slice(in.A.Row(i))
		w.Int(in.B.H)
		w.F32Slice(bt)
		tasks[i] = w.Bytes()
	}

	store := checkpoint.NewMem()
	// First life: kill the session (context cancel) once half the rows
	// are checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	half := len(tasks) / 2
	go func() {
		for ctx.Err() == nil {
			recs, _ := store.Load("sgemm")
			if len(recs) >= half {
				cancel()
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	_, err := cluster.RunCtx(ctx, cluster.Config{Nodes: 3, CoresPerNode: 1}, func(s *cluster.Session) error {
		_, err := s.FarmOpts("sgemm.row", tasks, cluster.FarmOptions{Checkpoint: store, Job: "sgemm"})
		return err
	})
	if err == nil {
		t.Skip("first life finished before the kill on this machine; nothing to resume")
	}

	// Second life completes the matrix from the checkpoint.
	var fr *cluster.FarmResult
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(cluster.Config{Nodes: 3, CoresPerNode: 1}, func(s *cluster.Session) error {
			var err error
			fr, err = s.FarmOpts("sgemm.row", tasks, cluster.FarmOptions{Checkpoint: store, Job: "sgemm"})
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second life: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("resumed session hung")
	}
	if fr.Resumed == 0 {
		t.Fatal("nothing resumed despite the mid-job kill")
	}
	if len(fr.Failed) != 0 {
		t.Fatalf("quarantined rows: %+v", fr.Failed)
	}
	for i := 0; i < in.A.H; i++ {
		r := serial.NewReader(fr.Results[i])
		for j := 0; j < in.B.W; j++ {
			if got, want := r.F32(), seq.Row(i)[j]; got != want {
				t.Fatalf("C[%d][%d] = %v, want %v (bit-exact)", i, j, got, want)
			}
		}
		if r.Err() != nil || r.Remaining() != 0 {
			t.Fatalf("row %d malformed: %v, %d bytes left", i, r.Err(), r.Remaining())
		}
	}
}
