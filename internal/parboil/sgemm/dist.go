package sgemm

import (
	"fmt"

	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// blockSlice is one worker's input: the rows of A spanning its block's
// vertical extent and the rows of Bᵀ spanning its horizontal extent — the
// data decomposition outerproduct(rows(A), rows(Bᵀ)) induces (paper §2).
type blockSlice struct {
	ARows, BTRows array.Matrix[float32]
	Alpha         float32
}

func blockCodec() serial.Codec[blockSlice] {
	mc := serial.MatrixF32()
	return serial.Funcs[blockSlice]{
		Enc: func(w *serial.Writer, v blockSlice) {
			mc.Encode(w, v.ARows)
			mc.Encode(w, v.BTRows)
			w.F32(v.Alpha)
		},
		Dec: func(r *serial.Reader) blockSlice {
			return blockSlice{ARows: mc.Decode(r), BTRows: mc.Decode(r), Alpha: r.F32()}
		},
	}
}

// m2 views an array.Matrix as an iter.Matrix2 (identical layout).
func m2(m array.Matrix[float32]) iter.Matrix2[float32] {
	return iter.Matrix2[float32]{H: m.H, W: m.W, Data: m.Data}
}

// blockMul computes one output block with the paper's two-line Triolet
// program: outerproduct of row iterators, dot product per element,
// materialized with the (optionally threaded) block builder.
func blockMul(pool *sched.Pool, s blockSlice) array.Matrix[float32] {
	zipped := iter.OuterProduct(iter.MatrixRows(m2(s.ARows)), iter.MatrixRows(m2(s.BTRows)))
	prods := iter.Map2(func(p iter.Pair[[]float32, []float32]) float32 {
		// dot(u, v): the fused sequential inner loop over two contiguous
		// row views.
		return RowDot(s.Alpha, p.Fst, p.Snd)
	}, zipped)
	out := core.Build2Local(pool, iter.LocalPar2(prods))
	return array.Matrix[float32]{H: out.H, W: out.W, Data: out.Data}
}

// blockMulImperative is the unboxed-array loop nest the hand-optimized
// Eden port and the C reference use for one block.
func blockMulImperative(s blockSlice) array.Matrix[float32] {
	out := array.NewMatrix[float32](s.ARows.H, s.BTRows.H)
	for i := 0; i < out.H; i++ {
		ai := s.ARows.Row(i)
		ci := out.Row(i)
		for j := 0; j < out.W; j++ {
			ci[j] = RowDot(s.Alpha, ai, s.BTRows.Row(j))
		}
	}
	return out
}

// SeqTriolet runs the Triolet iterator pipeline on one thread — the
// "Triolet" bar of paper Fig. 3.
func SeqTriolet(in *Input) array.Matrix[float32] {
	bt := TransposeLocal(nil, in.B)
	return blockMul(nil, blockSlice{ARows: in.A, BTRows: bt, Alpha: in.Alpha})
}

// SeqEden runs the Eden-style sequential kernel: unboxed arrays with
// imperative loops (the paper's optimized Eden style, §4.1), so it matches
// C closely in sequential execution.
func SeqEden(in *Input) array.Matrix[float32] {
	bt := TransposeLocal(nil, in.B)
	return blockMulImperative(blockSlice{ARows: in.A, BTRows: bt, Alpha: in.Alpha})
}

// ---- Triolet ----

var trioletOp = core.NewBuild2D(
	"sgemm.triolet",
	blockCodec(),
	serial.Unit(),
	serial.MatrixF32(),
	func(n *cluster.Node, s blockSlice, _ struct{}) (array.Matrix[float32], error) {
		return blockMul(n.Pool, s), nil
	},
)

// TransposeLocal transposes m on the master's thread pool — the paper
// parallelizes transposition over shared memory on a single node (§4.3)
// because it does too little work per byte to ship across the network.
func TransposeLocal(pool *sched.Pool, m array.Matrix[float32]) array.Matrix[float32] {
	out := array.NewMatrix[float32](m.W, m.H)
	if pool == nil {
		array.TransposeInto(out, m, domain.Range{Lo: 0, Hi: m.W})
		return out
	}
	pool.ParallelFor(m.W, 16, func(_, lo, hi int) {
		array.TransposeInto(out, m, domain.Range{Lo: lo, Hi: hi})
	})
	return out
}

// Triolet runs the paper's Triolet implementation: shared-memory parallel
// transpose on the master node, then the distributed 2-D block product.
func Triolet(s *cluster.Session, in *Input) (array.Matrix[float32], error) {
	bt := TransposeLocal(s.Node().Pool, in.B)
	src := core.FuncSource2[blockSlice]{
		D: domain.NewDim2(in.A.H, in.B.W),
		SliceFn: func(r domain.Rect) blockSlice {
			return blockSlice{
				ARows:  in.A.RowBand(r.Rows).Clone(),
				BTRows: bt.RowBand(r.Cols).Clone(),
				Alpha:  in.Alpha,
			}
		},
	}
	return trioletOp.Run(s, src, struct{}{})
}

// ---- Eden ----

// The Eden port also uses the 2-D decomposition (the paper wrote 120+
// lines for it in each language), but transposition is sequential on the
// master — Eden cannot use shared memory, and transposing over distributed
// memory does too little work to pay for the copies (§4.3: at 128 cores
// transposition is 35 % of Eden's execution time). Whole blocks of A and
// Bᵀ travel as single messages, which overflows Eden's bounded message
// buffer on large inputs (the Fig. 5 failure at ≥2 nodes).
func init() {
	eden.RegisterProcess("sgemm.eden", func(_ *eden.Proc, b []byte) ([]byte, error) {
		s, err := serial.Unmarshal(blockCodec(), b)
		if err != nil {
			return nil, err
		}
		return serial.Marshal(serial.MatrixF32(), blockMulImperative(s)), nil
	})
}

// Eden runs the Eden implementation. With a bounded message buffer
// configured (eden.Config.MaxMessageBytes) and realistic matrix sizes, it
// fails exactly as in the paper.
func Eden(m *eden.Master, in *Input) (array.Matrix[float32], error) {
	bt := TransposeLocal(nil, in.B) // sequential: no shared memory in Eden
	dom := domain.NewDim2(in.A.H, in.B.W)
	py, px := dom.GridShape(nearestSquareGrid(m.Processes()))
	rects := dom.GridPartition(py, px)
	tasks := make([]blockSlice, len(rects))
	for i, r := range rects {
		tasks[i] = blockSlice{
			ARows:  in.A.RowBand(r.Rows).Clone(),
			BTRows: bt.RowBand(r.Cols).Clone(),
			Alpha:  in.Alpha,
		}
	}
	blocks, err := eden.TwoLevelParMapT(m, "sgemm.eden", blockCodec(), serial.MatrixF32(), tasks)
	if err != nil {
		return array.Matrix[float32]{}, err
	}
	out := array.NewMatrix[float32](dom.H, dom.W)
	for i, b := range blocks {
		out.CopyRect(rects[i], b)
	}
	return out, nil
}

// nearestSquareGrid rounds p up to a power of two so the grid shape is
// non-degenerate even for odd process counts.
func nearestSquareGrid(p int) int {
	g := 1
	for g < p {
		g <<= 1
	}
	return g
}

// ---- C+MPI+OpenMP reference ----

// Ref is the hand-partitioned reference: parallel transpose on rank 0's
// cores, explicit block scatter, OpenMP-style block compute, block gather.
func Ref(cfg cluster.Config, in *Input) (array.Matrix[float32], error) {
	var out array.Matrix[float32]
	err := mpi.Run(transport.Config{Ranks: cfg.Nodes}, func(c *mpi.Comm) error {
		pool := sched.NewPool(cfg.CoresPerNode)
		defer pool.Close()

		var parts []blockSlice
		var rects []domain.Rect
		var dom domain.Dim2
		if c.Rank() == 0 {
			bt := TransposeLocal(pool, in.B)
			dom = domain.NewDim2(in.A.H, in.B.W)
			py, px := dom.GridShape(c.Size())
			rects = dom.GridPartition(py, px)
			parts = make([]blockSlice, len(rects))
			for i, r := range rects {
				parts[i] = blockSlice{
					ARows:  in.A.RowBand(r.Rows).Clone(),
					BTRows: bt.RowBand(r.Cols).Clone(),
					Alpha:  in.Alpha,
				}
			}
		}
		mine, err := mpi.ScatterT(c, 0, blockCodec(), parts)
		if err != nil {
			return err
		}
		// OpenMP-style: parallel for over the block's rows, raw loops.
		block := array.NewMatrix[float32](mine.ARows.H, mine.BTRows.H)
		pool.ParallelFor(block.H, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				ai := mine.ARows.Row(i)
				ci := block.Row(i)
				for j := 0; j < block.W; j++ {
					ci[j] = RowDot(mine.Alpha, ai, mine.BTRows.Row(j))
				}
			}
		})
		blocks, err := mpi.GatherT(c, 0, serial.MatrixF32(), block)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = array.NewMatrix[float32](dom.H, dom.W)
			for i, b := range blocks {
				if b.H != rects[i].Rows.Len() || b.W != rects[i].Cols.Len() {
					return fmt.Errorf("sgemm: rank %d returned %dx%d block for %v", i, b.H, b.W, rects[i])
				}
				out.CopyRect(rects[i], b)
			}
		}
		return nil
	})
	return out, err
}
