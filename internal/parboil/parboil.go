// Package parboil hosts the four Parboil benchmarks the paper evaluates
// (§4): mri-q, sgemm, tpacf, and cutcp, each in its own subpackage with a
// deterministic input generator, a sequential C-style kernel (the
// speedup-1.0 baseline), and Triolet, Eden, and C+MPI+OpenMP-style
// distributed implementations. This parent package carries the shared
// utilities: seeded input randomness and floating-point result comparison.
package parboil

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic generator for benchmark inputs. All
// generators take explicit seeds so every implementation of a benchmark
// consumes bit-identical inputs.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two equal-length float32 slices. It panics on length mismatch — a shape
// error, not a tolerance question.
func MaxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("parboil: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	worst := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// MaxRelDiff returns the largest elementwise relative difference
// |a-b| / max(|a|, |b|, floor) between two equal-length slices; floor
// guards tiny denominators. Tests should not pair this with an ad-hoc
// epsilon: tolerance/floor pairs live in internal/diffcheck's shared
// tolerance table (e.g. diffcheck.TolCutcpGrid.MaxRelDiffF32).
func MaxRelDiff(a, b []float32, floor float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("parboil: MaxRelDiff length mismatch %d vs %d", len(a), len(b)))
	}
	worst := 0.0
	for i := range a {
		av, bv := float64(a[i]), float64(b[i])
		den := math.Max(math.Max(math.Abs(av), math.Abs(bv)), floor)
		if d := math.Abs(av-bv) / den; d > worst {
			worst = d
		}
	}
	return worst
}

// EqualInt64 reports whether two histograms are identical. Integer
// histograms must match exactly across implementations — bin counts do not
// round.
func EqualInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
