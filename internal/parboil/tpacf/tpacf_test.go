package tpacf

import (
	"math"
	"testing"

	"triolet/internal/cluster"
	"triolet/internal/diffcheck"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/parboil"
)

func TestGenDeterministicAndUnit(t *testing.T) {
	a := Gen(50, 4, 16, 5)
	b := Gen(50, 4, 16, 5)
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			t.Fatal("same seed, different observed set")
		}
	}
	if len(a.Rands) != 4 || len(a.Rands[0]) != 50 || a.Bins() != 16 {
		t.Fatalf("shape wrong: %d sets, %d points, %d bins", len(a.Rands), len(a.Rands[0]), a.Bins())
	}
	for _, p := range a.Obs {
		n := math.Sqrt(float64(p.X*p.X + p.Y*p.Y + p.Z*p.Z))
		if !diffcheck.TolTpacfNorm.Within(n, 1, 0) {
			t.Fatalf("point not on unit sphere: norm %v", n)
		}
	}
}

func TestBinbDecreasing(t *testing.T) {
	in := Gen(10, 1, 20, 9)
	for k := 0; k+1 < len(in.Binb); k++ {
		if in.Binb[k] <= in.Binb[k+1] {
			t.Fatalf("binb not strictly decreasing at %d: %v %v", k, in.Binb[k], in.Binb[k+1])
		}
	}
}

func TestScoreBoundaries(t *testing.T) {
	binb := []float32{1.0001, 0.5, 0, -1.0001}
	u := Point{X: 1}
	cases := []struct {
		v    Point
		want int
	}{
		{Point{X: 1}, 0},    // dot 1 ≥ 0.5 → bin 0
		{Point{X: 0.5}, 0},  // dot 0.5 ≥ 0.5 → bin 0
		{Point{X: 0.4}, 1},  // 0 ≤ dot < 0.5 → bin 1
		{Point{Y: 1}, 1},    // dot 0 ≥ 0 → bin 1
		{Point{X: -0.5}, 2}, // dot < 0 → bin 2
		{Point{X: -1}, 2},   // dot -1 → last bin
	}
	for _, c := range cases {
		if got := Score(binb, u, c.v); got != c.want {
			t.Errorf("Score(%+v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSeqMassConservation(t *testing.T) {
	in := Gen(40, 5, 12, 11)
	res := Seq(in)
	dd, drs, rrs := in.TotalPairs()
	sum := func(h []int64) int64 {
		var s int64
		for _, v := range h {
			s += v
		}
		return s
	}
	if sum(res.DD) != dd {
		t.Fatalf("DD mass %d, want %d", sum(res.DD), dd)
	}
	if sum(res.DRS) != drs {
		t.Fatalf("DRS mass %d, want %d", sum(res.DRS), drs)
	}
	if sum(res.RRS) != rrs {
		t.Fatalf("RRS mass %d, want %d", sum(res.RRS), rrs)
	}
}

func TestSelfCorrSmall(t *testing.T) {
	// Two identical points: one pair with dot 1 → bin 0.
	binb := []float32{1.0001, 0, -1.0001}
	hist := make([]int64, 2)
	SelfCorr(binb, []Point{{X: 1}, {X: 1}}, hist)
	if hist[0] != 1 || hist[1] != 0 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestCrossCorrSmall(t *testing.T) {
	binb := []float32{1.0001, 0, -1.0001}
	hist := make([]int64, 2)
	CrossCorr(binb, []Point{{X: 1}}, []Point{{X: 1}, {X: -1}}, hist)
	if hist[0] != 1 || hist[1] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func checkResult(t *testing.T, name string, got, want Result) {
	t.Helper()
	if !parboil.EqualInt64(got.DD, want.DD) {
		t.Fatalf("%s: DD = %v, want %v", name, got.DD, want.DD)
	}
	if !parboil.EqualInt64(got.DRS, want.DRS) {
		t.Fatalf("%s: DRS = %v, want %v", name, got.DRS, want.DRS)
	}
	if !parboil.EqualInt64(got.RRS, want.RRS) {
		t.Fatalf("%s: RRS = %v, want %v", name, got.RRS, want.RRS)
	}
}

func TestTrioletMatchesSeq(t *testing.T) {
	in := Gen(45, 7, 14, 13)
	want := Seq(in)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 2},
		{Nodes: 3, CoresPerNode: 2},
		{Nodes: 7, CoresPerNode: 1},
	} {
		var got Result
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			r, err := Triolet(s, in)
			got = r
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkResult(t, "triolet", got, want)
	}
}

func TestEdenMatchesSeq(t *testing.T) {
	in := Gen(40, 6, 14, 17)
	want := Seq(in)
	for _, cfg := range []eden.Config{
		{Processes: 1},
		{Processes: 4, ProcsPerNode: 2},
	} {
		var got Result
		_, err := eden.Run(cfg, func(m *eden.Master) error {
			r, err := Eden(m, in)
			got = r
			return err
		})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkResult(t, "eden", got, want)
	}
}

func TestRefMatchesSeq(t *testing.T) {
	in := Gen(40, 6, 14, 19)
	want := Seq(in)
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 3},
		{Nodes: 4, CoresPerNode: 2},
	} {
		got, err := Ref(cfg, in)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkResult(t, "ref", got, want)
	}
}

func TestFusedScoresMatchLiteralFig6Form(t *testing.T) {
	// The hot paths use selfScores/crossScores, the post-fusion form of
	// Fig. 6's correlation(score over pairs). Both forms must agree
	// bin-for-bin on every input.
	in := Gen(35, 3, 10, 29)
	lit := correlation(nil, in.Bins(), in.Binb, selfPairs(in.Obs))
	fused := iter.Histogram(in.Bins(), selfScores(in.Binb, in.Obs))
	if !parboil.EqualInt64(lit, fused) {
		t.Fatalf("self: literal %v, fused %v", lit, fused)
	}
	litX := correlation(nil, in.Bins(), in.Binb, crossPairs(in.Obs, in.Rands[0]))
	fusedX := iter.Histogram(in.Bins(), crossScores(in.Binb, in.Obs, in.Rands[0]))
	if !parboil.EqualInt64(litX, fusedX) {
		t.Fatalf("cross: literal %v, fused %v", litX, fusedX)
	}
}

func TestSeqTrioletMatchesSeq(t *testing.T) {
	in := Gen(30, 4, 12, 31)
	checkResult(t, "seq-triolet", SeqTriolet(in), Seq(in))
	checkResult(t, "seq-eden", SeqEden(in), Seq(in))
	checkResult(t, "seq-eden-idiomatic", SeqEdenIdiomatic(in), Seq(in))
}

func TestMoreSetsThanNodes(t *testing.T) {
	// Sets not divisible by node count: block partition leaves uneven
	// slices; results must still be exact.
	in := Gen(20, 11, 8, 23)
	want := Seq(in)
	var got Result
	_, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2}, func(s *cluster.Session) error {
		r, err := Triolet(s, in)
		got = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "triolet-uneven", got, want)
}
