// Package tpacf implements the Parboil tpacf benchmark (paper §4.4): the
// two-point angular correlation function of observed astronomical objects.
// Three histograms are computed over pair scores: DD (the observed set
// against itself), DR (the observed set against each random set, summed),
// and RR (each random set against itself, summed). The loops are nested
// and triangular — the shape that defeats indexer-only fusion and
// motivates the hybrid iterator (paper Fig. 6 shows the Triolet source
// this package mirrors).
package tpacf

import (
	"math"

	"triolet/internal/parboil"
)

// Point is a position on the unit sphere.
type Point struct {
	X, Y, Z float32
}

// Input is one tpacf instance.
type Input struct {
	// Obs is the observed data set.
	Obs []Point
	// Rands are the random comparison sets, each the same length as Obs.
	Rands [][]Point
	// Binb are the angular bin boundaries as dot-product thresholds,
	// strictly decreasing; Bins() = len(Binb)-1 histogram bins.
	Binb []float32
}

// Bins reports the histogram size.
func (in *Input) Bins() int { return len(in.Binb) - 1 }

// Result carries the three correlation histograms.
type Result struct {
	DD  []int64 // observed self-correlation
	DRS []int64 // observed × random, summed over random sets
	RRS []int64 // random self-correlations, summed over random sets
}

// Gen creates a deterministic instance: points uniform on the sphere and
// logarithmically spaced angular bins from ~1 arcminute upward, following
// Parboil's binning scheme.
func Gen(points, sets, bins int, seed uint64) *Input {
	rng := parboil.NewRand(seed)
	genSet := func() []Point {
		out := make([]Point, points)
		for i := range out {
			// Uniform on the sphere via normalized Gaussians.
			x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			n := math.Sqrt(x*x + y*y + z*z)
			if n == 0 {
				n = 1
			}
			out[i] = Point{X: float32(x / n), Y: float32(y / n), Z: float32(z / n)}
		}
		return out
	}
	in := &Input{
		Obs:   genSet(),
		Rands: make([][]Point, sets),
		Binb:  make([]float32, bins+1),
	}
	for s := range in.Rands {
		in.Rands[s] = genSet()
	}
	// Decreasing cosine thresholds: bin k holds pairs with
	// binb[k] >= dot > binb[k+1]. The first boundary sits above 1 so every
	// pair lands in some bin; the last spans to -1.
	minArcmin := 1.0
	maxArcmin := 10000.0
	logSpan := math.Log10(maxArcmin) - math.Log10(minArcmin)
	in.Binb[0] = 1.0001
	for k := 1; k <= bins; k++ {
		arcmin := math.Pow(10, math.Log10(minArcmin)+logSpan*float64(k)/float64(bins))
		in.Binb[k] = float32(math.Cos(arcmin / 60 * math.Pi / 180))
	}
	in.Binb[bins] = -1.0001
	return in
}

// Score maps a pair of points to its angular bin — the paper's score
// function, shared by every implementation. The linear boundary scan
// matches Parboil's inner loop.
func Score(binb []float32, u, v Point) int {
	dot := u.X*v.X + u.Y*v.Y + u.Z*v.Z
	for k := 0; k < len(binb)-2; k++ {
		if dot >= binb[k+1] {
			return k
		}
	}
	return len(binb) - 2
}

// SelfCorr accumulates the self-correlation of one set into hist: all
// unique pairs (i, j) with j > i.
func SelfCorr(binb []float32, set []Point, hist []int64) {
	for i := 0; i < len(set); i++ {
		u := set[i]
		for j := i + 1; j < len(set); j++ {
			hist[Score(binb, u, set[j])]++
		}
	}
}

// CrossCorr accumulates the cross-correlation of two sets into hist: all
// pairs (a[i], b[j]).
func CrossCorr(binb []float32, a, b []Point, hist []int64) {
	for i := 0; i < len(a); i++ {
		u := a[i]
		for j := 0; j < len(b); j++ {
			hist[Score(binb, u, b[j])]++
		}
	}
}

// Seq is the sequential C-style kernel: the speedup-1.0 baseline of paper
// Fig. 7.
func Seq(in *Input) Result {
	res := Result{
		DD:  make([]int64, in.Bins()),
		DRS: make([]int64, in.Bins()),
		RRS: make([]int64, in.Bins()),
	}
	SelfCorr(in.Binb, in.Obs, res.DD)
	for _, r := range in.Rands {
		CrossCorr(in.Binb, in.Obs, r, res.DRS)
		SelfCorr(in.Binb, r, res.RRS)
	}
	return res
}

// TotalPairs reports the expected histogram mass for validation: every
// pair lands in exactly one bin.
func (in *Input) TotalPairs() (dd, drs, rrs int64) {
	n := int64(len(in.Obs))
	s := int64(len(in.Rands))
	dd = n * (n - 1) / 2
	drs = s * n * n
	rrs = s * n * (n - 1) / 2
	return
}
