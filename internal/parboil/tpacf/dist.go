package tpacf

import (
	"triolet/internal/array"
	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// ---- codecs ----

func pointsCodec() serial.Codec[[]Point] {
	return serial.Funcs[[]Point]{
		Enc: func(w *serial.Writer, v []Point) {
			w.Int(len(v))
			for _, p := range v {
				w.F32(p.X)
				w.F32(p.Y)
				w.F32(p.Z)
			}
		},
		Dec: func(r *serial.Reader) []Point {
			n := r.Int()
			if r.Err() != nil || n < 0 || n > r.Remaining()/12 {
				return nil
			}
			out := make([]Point, n)
			for i := range out {
				out[i] = Point{X: r.F32(), Y: r.F32(), Z: r.F32()}
			}
			return out
		},
	}
}

func setsCodec() serial.Codec[[][]Point] { return serial.SliceOf(pointsCodec()) }

// obsAux is the broadcast auxiliary input: the observed set and binning.
type obsAux struct {
	Obs  []Point
	Binb []float32
}

func obsAuxCodec() serial.Codec[obsAux] {
	pc := pointsCodec()
	return serial.Funcs[obsAux]{
		Enc: func(w *serial.Writer, v obsAux) {
			pc.Encode(w, v.Obs)
			w.F32Slice(v.Binb)
		},
		Dec: func(r *serial.Reader) obsAux {
			return obsAux{Obs: pc.Decode(r), Binb: r.F32Slice()}
		},
	}
}

// ---- Triolet (paper Fig. 6, transcribed) ----

// selfPairs builds the triangular pair iterator of one set — Fig. 6 lines
// 15–18: zip the set with its indices, then for each (i, u) pair u with
// every later element.
func selfPairs(set []Point) iter.Iter[iter.Pair[Point, Point]] {
	indexed := iter.Zip(iter.Range(len(set)), iter.FromSlice(set))
	return iter.ConcatMap(func(p iter.Pair[int, Point]) iter.Iter[iter.Pair[Point, Point]] {
		u := p.Snd
		return iter.Map(func(v Point) iter.Pair[Point, Point] {
			return iter.Pair[Point, Point]{Fst: u, Snd: v}
		}, iter.FromSlice(set[p.Fst+1:]))
	}, indexed)
}

// crossPairs builds the full rectangular pair iterator of obs × set.
func crossPairs(obs, set []Point) iter.Iter[iter.Pair[Point, Point]] {
	return iter.ConcatMap(func(u Point) iter.Iter[iter.Pair[Point, Point]] {
		return iter.Map(func(v Point) iter.Pair[Point, Point] {
			return iter.Pair[Point, Point]{Fst: u, Snd: v}
		}, iter.FromSlice(set))
	}, iter.FromSlice(obs))
}

// correlation maps score over the pairs and collects a histogram — Fig. 6
// lines 1–4. The pipeline fuses: no pair list is ever materialized.
func correlation(pool *sched.Pool, bins int, binb []float32, pairs iter.Iter[iter.Pair[Point, Point]]) []int64 {
	scores := iter.Map(func(p iter.Pair[Point, Point]) int {
		return Score(binb, p.Fst, p.Snd)
	}, pairs)
	return core.HistogramLocal(pool, bins, scores, 1)
}

// selfScores and crossScores are the post-fusion forms of
// correlation∘(self|cross)Pairs: score inlined into the pair generators so
// the intermediate pair values disappear — the simplification Triolet's
// optimizer performs on Fig. 6's code (tpacf_test.go checks the fused and
// literal forms agree bin-for-bin). The hot paths use these.
func selfScores(binb []float32, set []Point) iter.Iter[int] {
	return iter.ConcatMap(func(i int) iter.Iter[int] {
		u := set[i]
		rest := set[i+1:]
		return iter.IdxFlat(iter.Idx[int]{N: len(rest), At: func(j int) int {
			return Score(binb, u, rest[j])
		}})
	}, iter.Range(len(set)))
}

func crossScores(binb []float32, obs, set []Point) iter.Iter[int] {
	return iter.ConcatMap(func(i int) iter.Iter[int] {
		u := obs[i]
		return iter.IdxFlat(iter.Idx[int]{N: len(set), At: func(j int) int {
			return Score(binb, u, set[j])
		}})
	}, iter.Range(len(obs)))
}

// SeqTriolet runs the full tpacf computation as single-threaded Triolet
// iterator pipelines — the "Triolet" bar of paper Fig. 3.
func SeqTriolet(in *Input) Result {
	bins := in.Bins()
	dd := iter.Histogram(bins, selfScores(in.Binb, in.Obs))
	drs := iter.Histogram(bins, iter.ConcatMap(func(set []Point) iter.Iter[int] {
		return crossScores(in.Binb, in.Obs, set)
	}, iter.FromSlice(in.Rands)))
	rrs := iter.Histogram(bins, iter.ConcatMap(func(set []Point) iter.Iter[int] {
		return selfScores(in.Binb, set)
	}, iter.FromSlice(in.Rands)))
	return Result{DD: dd, DRS: drs, RRS: rrs}
}

// SeqEden runs the Eden-style sequential kernel. The paper's Eden port
// rewrote tpacf's nested histogram loops imperatively over unboxed arrays
// (§4.1), so the Eden sequential kernel is the same loop nest as C.
func SeqEden(in *Input) Result {
	return Seq(in)
}

// SeqEdenIdiomatic enumerates the triangular pairs through boxed cons
// lists — the idiomatic Haskell list-comprehension style before the
// paper's imperative rewrite (§4.1 rewrote exactly these nested loops
// "to use imperative loops and mutable arrays" because stepper-style list
// traversal ran 2–5× slower, §3.1). Histogram counts are identical; only
// the traversal representation differs. BenchmarkAblationIdiomaticEden
// measures the gap.
func SeqEdenIdiomatic(in *Input) Result {
	bins := in.Bins()
	res := Result{
		DD:  make([]int64, bins),
		DRS: make([]int64, bins),
		RRS: make([]int64, bins),
	}
	// pairs = [(u, v) | (i, u) <- zip [0..] set, v <- drop (i+1) set]
	selfList := func(set []Point, hist []int64) {
		idx := eden.FromSlice(seqIdx(len(set)))
		scores := eden.ConcatMap(func(i int) *eden.Cell[int] {
			u := set[i]
			rest := eden.FromSlice(set[i+1:])
			return eden.Map(func(v Point) int { return Score(in.Binb, u, v) }, rest)
		}, idx)
		eden.Foldl(scores, struct{}{}, func(s struct{}, b int) struct{} {
			hist[b]++
			return s
		})
	}
	crossList := func(a, b []Point, hist []int64) {
		scores := eden.ConcatMap(func(u Point) *eden.Cell[int] {
			return eden.Map(func(v Point) int { return Score(in.Binb, u, v) }, eden.FromSlice(b))
		}, eden.FromSlice(a))
		eden.Foldl(scores, struct{}{}, func(s struct{}, sc int) struct{} {
			hist[sc]++
			return s
		})
	}
	selfList(in.Obs, res.DD)
	for _, r := range in.Rands {
		crossList(in.Obs, r, res.DRS)
		selfList(r, res.RRS)
	}
	return res
}

func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// histPair bundles the two per-set histograms of the random-set loops.
type histPair struct {
	DR, RR []int64
}

func histPairCodec() serial.Codec[histPair] {
	return serial.Funcs[histPair]{
		Enc: func(w *serial.Writer, v histPair) {
			w.I64Slice(v.DR)
			w.I64Slice(v.RR)
		},
		Dec: func(r *serial.Reader) histPair {
			return histPair{DR: r.I64Slice(), RR: r.I64Slice()}
		},
	}
}

func addHistPair(a, b histPair) histPair {
	array.AddInto(a.DR, b.DR)
	array.AddInto(a.RR, b.RR)
	return a
}

// trioletOp distributes the random sets (Fig. 6's randomSetsCorrelation):
// each node computes DR and RR contributions for its slice of sets with a
// thread-parallel fused pipeline, and histograms are reduced by addition.
var trioletOp = core.NewMapReduce(
	"tpacf.triolet",
	setsCodec(),
	obsAuxCodec(),
	histPairCodec(),
	func(n *cluster.Node, sets [][]Point, aux obsAux) (histPair, error) {
		bins := len(aux.Binb) - 1
		// corr1 per set, parallelized across data sets (localpar over the
		// outer set loop, per paper §4.4), with score fused into the pair
		// generators.
		drIt := iter.LocalPar(iter.ConcatMap(func(set []Point) iter.Iter[int] {
			return crossScores(aux.Binb, aux.Obs, set)
		}, iter.FromSlice(sets)))
		rrIt := iter.LocalPar(iter.ConcatMap(func(set []Point) iter.Iter[int] {
			return selfScores(aux.Binb, set)
		}, iter.FromSlice(sets)))
		return histPair{
			DR: core.HistogramLocal(n.Pool, bins, drIt, 1),
			RR: core.HistogramLocal(n.Pool, bins, rrIt, 1),
		}, nil
	},
	addHistPair,
)

// Triolet runs the paper's Triolet implementation: DD locally on the
// master's threads (one data set, parallelized across its elements), DR
// and RR distributed across the random sets.
func Triolet(s *cluster.Session, in *Input) (Result, error) {
	pool := s.Node().Pool
	dd := core.HistogramLocal(pool, in.Bins(), iter.LocalPar(selfScores(in.Binb, in.Obs)), 1)
	hp, err := trioletOp.Run(s, core.SliceSource(in.Rands), obsAux{Obs: in.Obs, Binb: in.Binb})
	if err != nil {
		return Result{}, err
	}
	return Result{DD: dd, DRS: hp.DR, RRS: hp.RR}, nil
}

// ---- Eden ----

// The Eden port follows the paper's optimized style: tasks use imperative
// loops and mutable arrays for histogramming ("for nested loops that build
// histograms in tpacf", §4.1), because stepper-style list traversals are
// 2–5× slower. Each task carries one random set AND a copy of the observed
// set — Eden has no broadcast. The master adds up per-set histograms.
type edenTask struct {
	Set []Point
	Aux obsAux
}

func edenTaskCodec() serial.Codec[edenTask] {
	pc, ac := pointsCodec(), obsAuxCodec()
	return serial.Funcs[edenTask]{
		Enc: func(w *serial.Writer, v edenTask) {
			pc.Encode(w, v.Set)
			ac.Encode(w, v.Aux)
		},
		Dec: func(r *serial.Reader) edenTask {
			return edenTask{Set: pc.Decode(r), Aux: ac.Decode(r)}
		},
	}
}

func init() {
	eden.RegisterProcess("tpacf.eden", func(_ *eden.Proc, b []byte) ([]byte, error) {
		t, err := serial.Unmarshal(edenTaskCodec(), b)
		if err != nil {
			return nil, err
		}
		bins := len(t.Aux.Binb) - 1
		hp := histPair{DR: make([]int64, bins), RR: make([]int64, bins)}
		CrossCorr(t.Aux.Binb, t.Aux.Obs, t.Set, hp.DR)
		SelfCorr(t.Aux.Binb, t.Set, hp.RR)
		return serial.Marshal(histPairCodec(), hp), nil
	})
}

// Eden runs the Eden implementation: DD sequentially on the master (no
// shared memory to parallelize one set's triangular loop profitably), DR
// and RR as a two-level parMap+reduce over random sets.
func Eden(m *eden.Master, in *Input) (Result, error) {
	bins := in.Bins()
	dd := make([]int64, bins)
	SelfCorr(in.Binb, in.Obs, dd)
	aux := obsAux{Obs: in.Obs, Binb: in.Binb}
	tasks := make([]edenTask, len(in.Rands))
	for i, set := range in.Rands {
		tasks[i] = edenTask{Set: set, Aux: aux}
	}
	zero := histPair{DR: make([]int64, bins), RR: make([]int64, bins)}
	hp, err := eden.ParMapReduceT(m, "tpacf.eden", edenTaskCodec(), histPairCodec(), tasks, zero, addHistPair)
	if err != nil {
		return Result{}, err
	}
	return Result{DD: dd, DRS: hp.DR, RRS: hp.RR}, nil
}

// ---- C+MPI+OpenMP reference ----

// Ref is the hand-partitioned reference: sets scattered, observed set
// broadcast, per-thread private histograms (the paper notes the C code
// "examines the number of threads in order to privatize histograms"),
// tree-reduced.
func Ref(cfg cluster.Config, in *Input) (Result, error) {
	var out Result
	err := mpi.Run(transport.Config{Ranks: cfg.Nodes}, func(c *mpi.Comm) error {
		pool := sched.NewPool(cfg.CoresPerNode)
		defer pool.Close()

		var parts [][][]Point
		if c.Rank() == 0 {
			parts = make([][][]Point, c.Size())
			for i, r := range domain.BlockPartition(len(in.Rands), c.Size()) {
				parts[i] = in.Rands[r.Lo:r.Hi]
			}
		}
		mine, err := mpi.ScatterT(c, 0, setsCodec(), parts)
		if err != nil {
			return err
		}
		var aux obsAux
		if c.Rank() == 0 {
			aux = obsAux{Obs: in.Obs, Binb: in.Binb}
		}
		aux, err = mpi.BcastT(c, 0, obsAuxCodec(), aux)
		if err != nil {
			return err
		}
		bins := len(aux.Binb) - 1
		// Private histograms per thread, merged after the loop.
		private := make([]histPair, pool.Workers())
		for w := range private {
			private[w] = histPair{DR: make([]int64, bins), RR: make([]int64, bins)}
		}
		pool.ParallelFor(len(mine), 1, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				CrossCorr(aux.Binb, aux.Obs, mine[i], private[worker].DR)
				SelfCorr(aux.Binb, mine[i], private[worker].RR)
			}
		})
		local := histPair{DR: make([]int64, bins), RR: make([]int64, bins)}
		for _, p := range private {
			local = addHistPair(local, p)
		}
		total, ok, err := mpi.ReduceT(c, histPairCodec(), local, addHistPair)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && ok {
			// DD on the root's threads: triangular loop over the observed
			// set with privatized histograms.
			dd := ddParallel(pool, aux.Binb, aux.Obs)
			out = Result{DD: dd, DRS: total.DR, RRS: total.RR}
		}
		return nil
	})
	return out, err
}

// ddParallel computes the observed self-correlation with per-thread
// private histograms over the triangular outer loop.
func ddParallel(pool *sched.Pool, binb []float32, obs []Point) []int64 {
	bins := len(binb) - 1
	private := make([][]int64, pool.Workers())
	for w := range private {
		private[w] = make([]int64, bins)
	}
	pool.ParallelFor(len(obs), 1, func(worker, lo, hi int) {
		h := private[worker]
		for i := lo; i < hi; i++ {
			u := obs[i]
			for j := i + 1; j < len(obs); j++ {
				h[Score(binb, u, obs[j])]++
			}
		}
	})
	out := make([]int64, bins)
	for _, h := range private {
		array.AddInto(out, h)
	}
	return out
}
