package tpacf

import (
	"testing"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/mpi"
	"triolet/internal/transport"
)

// Chaos mode: tpacf's distributed histogram on a lossy fabric must produce
// the exact histograms of a fault-free run (integer bins — no tolerance).

func chaosFault(seed int64) *transport.FaultConfig {
	return &transport.FaultConfig{
		Seed: seed,
		Default: transport.FaultProbs{
			Drop:      0.02,
			Duplicate: 0.02,
			Corrupt:   0.02,
		},
	}
}

func chaosRetry() *mpi.ReliableConfig {
	return &mpi.ReliableConfig{
		AckTimeout:    time.Millisecond,
		Retries:       100,
		MaxAckTimeout: 50 * time.Millisecond,
	}
}

func runTriolet(t *testing.T, cfg cluster.Config, in *Input) Result {
	t.Helper()
	var got Result
	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(cfg, func(s *cluster.Session) error {
			r, err := Triolet(s, in)
			got = r
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%+v: run hung under fault injection", cfg)
	}
	return got
}

func TestTrioletChaosIdenticalResults(t *testing.T) {
	in := Gen(45, 7, 14, 13)
	clean := runTriolet(t, cluster.Config{Nodes: 3, CoresPerNode: 2}, in)
	faulty := runTriolet(t, cluster.Config{
		Nodes: 3, CoresPerNode: 2,
		Fault:    chaosFault(20260806),
		Reliable: chaosRetry(),
	}, in)
	checkResult(t, "triolet-chaos-vs-clean", faulty, clean)
	// And both agree with the sequential reference.
	checkResult(t, "triolet-chaos-vs-seq", faulty, Seq(in))
}
