package parboil_test

import (
	"math"
	"testing"

	"triolet/internal/domain"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
)

// Golden regression tests: the sequential kernels on fixed seeds must
// produce bit-identical outputs. A changed hash means a semantic change to
// a generator or kernel — which silently invalidates every cross-
// implementation comparison in the repository — so it must be a deliberate
// decision, made by updating the constant here. (The hashes also pin the
// Go math library's exact Sin/Cos/Sqrt results; a Go release that changes
// those low bits legitimately requires re-recording.)

func hashF32(h *fnvWriter, xs []float32) {
	for _, v := range xs {
		h.u32(math.Float32bits(v))
	}
}

func hashI64(h *fnvWriter, xs []int64) {
	for _, v := range xs {
		h.u64(uint64(v))
	}
}

type fnvWriter struct{ h uint64 }

func newFNV() *fnvWriter {
	return &fnvWriter{h: 14695981039346656037} // FNV-64a offset basis
}

func (f *fnvWriter) byte(b byte) {
	f.h = (f.h ^ uint64(b)) * 1099511628211
}

func (f *fnvWriter) u32(v uint32) {
	for i := 0; i < 4; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

func (f *fnvWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

func TestGoldenMRIQ(t *testing.T) {
	in := mriq.Gen(300, 64, 12345)
	out := mriq.Seq(in)
	h := newFNV()
	for _, q := range out {
		h.u32(math.Float32bits(q.Re))
		h.u32(math.Float32bits(q.Im))
	}
	const want uint64 = 0x92b89f14afade6f0
	if h.h != want {
		t.Fatalf("mri-q golden hash = %#x, want %#x — the kernel or generator changed semantics", h.h, want)
	}
}

func TestGoldenSGEMM(t *testing.T) {
	in := sgemm.Gen(24, 18, 30, 12345)
	out := sgemm.Seq(in)
	h := newFNV()
	hashF32(h, out.Data)
	const want uint64 = 0xb6553dc665599d94
	if h.h != want {
		t.Fatalf("sgemm golden hash = %#x, want %#x", h.h, want)
	}
}

func TestGoldenTPACF(t *testing.T) {
	in := tpacf.Gen(60, 5, 16, 12345)
	res := tpacf.Seq(in)
	h := newFNV()
	hashI64(h, res.DD)
	hashI64(h, res.DRS)
	hashI64(h, res.RRS)
	const want uint64 = 0xb58c422490237d0
	if h.h != want {
		t.Fatalf("tpacf golden hash = %#x, want %#x", h.h, want)
	}
}

func TestGoldenCUTCP(t *testing.T) {
	in := cutcp.Gen(150, domain.Dim3{D: 12, H: 12, W: 12}, 0.5, 1.8, 12345)
	out := cutcp.Seq(in)
	h := newFNV()
	hashF32(h, out)
	const want uint64 = 0x5666d41fde1affe8
	if h.h != want {
		t.Fatalf("cutcp golden hash = %#x, want %#x", h.h, want)
	}
}
