package iter

// This file reifies the paper's Figure 1 — the feature matrix of fusible
// virtual data structure encodings — so that tests and the benchmark
// harness can verify and print it. Each row is one encoding; each column a
// capability:
//
//	             Parallel  Zip   Filter  Nested   Mutation
//	Indexer      yes       yes   no      no       no
//	Stepper      no        yes   yes     slow     no
//	Fold         no        no    yes     yes      no
//	Collector    no        no    yes     yes      yes
//
// "no" means the feature cannot be used or its output is not fusible;
// "slow" means it works but may be much less efficient than a handwritten
// loop. The hybrid Iter exists because no single row has every "yes".

// Support grades a capability of an encoding.
type Support uint8

const (
	// No means the feature cannot be used or its output is not fusible.
	No Support = iota
	// Slow means the feature works but may be much less efficient than a
	// handwritten loop.
	Slow
	// Yes means the feature is supported and fusible.
	Yes
)

func (s Support) String() string {
	switch s {
	case No:
		return "no"
	case Slow:
		return "slow"
	case Yes:
		return "yes"
	}
	return "?"
}

// FeatureRow describes one encoding's capabilities.
type FeatureRow struct {
	Encoding string
	Parallel Support
	Zip      Support
	Filter   Support
	Nested   Support
	Mutation Support
}

// FeatureMatrix returns the paper's Figure 1. The iter package's tests
// verify each entry behaviourally where a behavioural check is meaningful
// (see features_test.go), so the table stays honest.
func FeatureMatrix() []FeatureRow {
	return []FeatureRow{
		{Encoding: "Indexer", Parallel: Yes, Zip: Yes, Filter: No, Nested: No, Mutation: No},
		{Encoding: "Stepper", Parallel: No, Zip: Yes, Filter: Yes, Nested: Slow, Mutation: No},
		{Encoding: "Fold", Parallel: No, Zip: No, Filter: Yes, Nested: Yes, Mutation: No},
		{Encoding: "Collector", Parallel: No, Zip: No, Filter: Yes, Nested: Yes, Mutation: Yes},
	}
}
