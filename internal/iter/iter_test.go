package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// --- constructor/kind transitions (the case analysis of paper Fig. 2) ---

func TestKindTransitions(t *testing.T) {
	flat := FromSlice([]int{1, 2, 3, 4})
	if flat.Kind() != KIdxFlat {
		t.Fatalf("FromSlice kind = %v", flat.Kind())
	}

	stepped := StepFlat(StepOf([]int{1, 2, 3}))
	if stepped.Kind() != KStepFlat {
		t.Fatalf("StepFlat kind = %v", stepped.Kind())
	}

	even := func(x int) bool { return x%2 == 0 }
	dup := func(x int) Iter[int] { return FromSlice([]int{x, x}) }

	cases := []struct {
		name string
		it   Iter[int]
		want Kind
	}{
		{"Map preserves IdxFlat", Map(even2int, flat), KIdxFlat},
		{"Map preserves StepFlat", Map(even2int, stepped), KStepFlat},
		{"Filter(IdxFlat) → IdxFilter", Filter(even, flat), KIdxFilter},
		{"Filter(StepFlat) → StepFlat", Filter(even, stepped), KStepFlat},
		{"Filter(IdxFilter) → IdxFilter", Filter(even, Filter(even, flat)), KIdxFilter},
		{"Filter(IdxNest) → IdxNest", Filter(even, ConcatMap(dup, flat)), KIdxNest},
		{"ConcatMap(IdxFlat) → IdxNest", ConcatMap(dup, flat), KIdxNest},
		{"ConcatMap(IdxFilter) → IdxNest", ConcatMap(dup, Filter(even, flat)), KIdxNest},
		{"ConcatMap(StepFlat) → StepNest", ConcatMap(dup, stepped), KStepNest},
		{"ConcatMap(IdxNest) → IdxNest", ConcatMap(dup, ConcatMap(dup, flat)), KIdxNest},
		{"ConcatMap(StepNest) → StepNest", ConcatMap(dup, ConcatMap(dup, stepped)), KStepNest},
		{"Filter(StepNest) → StepNest", Filter(even, ConcatMap(dup, stepped)), KStepNest},
		{"Map preserves IdxFilter", Map(even2int, Filter(even, flat)), KIdxFilter},
		{"Map preserves IdxNest", Map(even2int, ConcatMap(dup, flat)), KIdxNest},
		{"Zip(IdxFlat,IdxFlat) → IdxFlat", Map(pairSum, Zip(flat, flat)), KIdxFlat},
		{"Zip(IdxFlat,IdxFilter) → StepFlat", Map(pairSum, Zip(flat, Filter(even, flat))), KStepFlat},
	}
	for _, c := range cases {
		if c.it.Kind() != c.want {
			t.Errorf("%s: kind = %v, want %v", c.name, c.it.Kind(), c.want)
		}
	}
}

func even2int(x int) int { return x * 2 }

func pairSum(p Pair[int, int]) int { return p.Fst + p.Snd }

// --- the paper's running example: sum of filter fuses and parallelizes ---

func TestSumOfFilter(t *testing.T) {
	// Paper §3.2: sum(filter(λx. x > 0), [1,-2,-4,1,3,4]) = 9.
	xs := []int{1, -2, -4, 1, 3, 4}
	it := Filter(func(x int) bool { return x > 0 }, FromSlice(xs))
	if it.Kind() != KIdxFilter {
		t.Fatalf("filter over array produced %v", it.Kind())
	}
	if !it.CanSplit() {
		t.Fatal("filtered iterator lost splittability")
	}
	if got := Sum(it); got != 9 {
		t.Fatalf("Sum = %d, want 9", got)
	}
	// Split-and-combine must agree with the sequential result: the property
	// that makes indexer-of-stepper parallelizable.
	total := 0
	for _, r := range domain.BlockPartition(len(xs), 3) {
		total += Sum(Split(it, r))
	}
	if total != 9 {
		t.Fatalf("split sum = %d, want 9", total)
	}
}

// --- hints ---

func TestParHints(t *testing.T) {
	it := FromSlice([]int{1})
	if it.Hint() != Sequential {
		t.Fatal("default hint not Sequential")
	}
	if Par(it).Hint() != ClusterPar || LocalPar(it).Hint() != NodePar {
		t.Fatal("hint setters wrong")
	}
	if Seq(Par(it)).Hint() != Sequential {
		t.Fatal("Seq did not clear hint")
	}
	// Hints survive Map and Filter.
	if Map(even2int, Par(it)).Hint() != ClusterPar {
		t.Fatal("Map dropped hint")
	}
	if Filter(func(int) bool { return true }, LocalPar(it)).Hint() != NodePar {
		t.Fatal("Filter dropped hint")
	}
	// Zip merges hints, strongest wins.
	if Zip(Par(it), it).Hint() != ClusterPar {
		t.Fatal("Zip dropped Par hint")
	}
	if Zip(LocalPar(it), Par(it)).Hint() != ClusterPar {
		t.Fatal("Zip hint merge wrong")
	}
}

// --- basic consumers ---

func TestRangeAndRangeOf(t *testing.T) {
	if got := ToSlice(Range(4)); !eqSlices(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Range = %v", got)
	}
	if got := ToSlice(RangeOf(domain.Range{Lo: 5, Hi: 8})); !eqSlices(got, []int{5, 6, 7}) {
		t.Fatalf("RangeOf = %v", got)
	}
}

func TestEmptySingle(t *testing.T) {
	if Count(Empty[string]()) != 0 {
		t.Fatal("Empty not empty")
	}
	if got := ToSlice(Single(9)); !eqSlices(got, []int{9}) {
		t.Fatalf("Single = %v", got)
	}
}

func TestCountOverNests(t *testing.T) {
	dup := func(x int) Iter[int] { return FromSlice([]int{x, x, x}) }
	it := ConcatMap(dup, Range(4))
	if got := Count(it); got != 12 {
		t.Fatalf("Count = %d", got)
	}
}

func TestToSliceOrderAcrossKinds(t *testing.T) {
	// Order must be deterministic and match the nesting semantics for all
	// four constructors.
	dup := func(x int) Iter[int] { return FromSlice([]int{x * 10, x*10 + 1}) }
	flat := FromSlice([]int{1, 2})
	cases := []struct {
		name string
		it   Iter[int]
		want []int
	}{
		{"IdxFlat", flat, []int{1, 2}},
		{"StepFlat", StepFlat(StepOf([]int{3, 4})), []int{3, 4}},
		{"IdxNest", ConcatMap(dup, flat), []int{10, 11, 20, 21}},
		{"StepNest", ConcatMap(dup, StepFlat(StepOf([]int{1, 2}))), []int{10, 11, 20, 21}},
	}
	for _, c := range cases {
		if got := ToSlice(c.it); !eqSlices(got, c.want) {
			t.Errorf("%s: ToSlice = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestZip3(t *testing.T) {
	it := Zip3(FromSlice([]int{1, 2}), FromSlice([]int{10, 20, 30}), FromSlice([]int{100, 200}))
	if it.Kind() != KIdxFlat {
		t.Fatalf("Zip3 of flats = %v", it.Kind())
	}
	got := ToSlice(it)
	if len(got) != 2 || got[1] != (Triple[int, int, int]{2, 20, 200}) {
		t.Fatalf("Zip3 = %v", got)
	}
	// Mixed kinds go through the sequential path but yield the same values.
	mixed := Zip3(Filter(func(int) bool { return true }, FromSlice([]int{1, 2})),
		FromSlice([]int{10, 20, 30}), FromSlice([]int{100, 200}))
	if got2 := ToSlice(mixed); len(got2) != 2 || got2[1] != got[1] {
		t.Fatalf("mixed Zip3 = %v", got2)
	}
}

func TestReduceNonCommutative(t *testing.T) {
	// Left fold order must hold across nesting.
	dup := func(x int) Iter[int] { return FromSlice([]int{x, x + 1}) }
	it := ConcatMap(dup, FromSlice([]int{1, 3}))
	got := Reduce(it, 0, func(a, v int) int { return a*10 + v })
	if got != 1234 {
		t.Fatalf("Reduce = %d, want 1234", got)
	}
}

func TestSplitPanicsOnStepper(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(StepFlat(StepOf([]int{1})), domain.Range{Lo: 0, Hi: 1})
}

func TestOuterLen(t *testing.T) {
	if n, ok := FromSlice([]int{1, 2, 3}).OuterLen(); !ok || n != 3 {
		t.Fatalf("OuterLen flat = (%d,%v)", n, ok)
	}
	nested := Filter(func(int) bool { return true }, Range(7))
	if n, ok := nested.OuterLen(); !ok || n != 7 {
		t.Fatalf("OuterLen nested = (%d,%v)", n, ok)
	}
	if _, ok := StepFlat(StepOf([]int{1})).OuterLen(); ok {
		t.Fatal("stepper reported OuterLen")
	}
}

// --- property tests: every pipeline equals its slice-level reference ---

func refFilterMapSum(xs []int16) int64 {
	var acc int64
	for _, x := range xs {
		v := int64(x) * 3
		if v%2 == 0 {
			acc += v
		}
	}
	return acc
}

func TestFusionEquivalenceSum(t *testing.T) {
	prop := func(xs []int16) bool {
		it := Filter(func(v int64) bool { return v%2 == 0 },
			Map(func(x int16) int64 { return int64(x) * 3 }, FromSlice(xs)))
		return Sum(it) == refFilterMapSum(xs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for splittable pipelines, sum over any block partition equals
// the sequential sum (the invariant that justifies parallel execution).
func TestSplitInvariance(t *testing.T) {
	prop := func(xs []int16, p0 uint8) bool {
		p := int(p0%8) + 1
		it := ConcatMap(func(x int16) Iter[int64] {
			n := int(x&3) + 1 // 1..4 copies: irregular inner loops
			return Map(func(i int) int64 { return int64(x) + int64(i) }, Range(n))
		}, FromSlice(xs))
		seq := Sum(it)
		n, ok := it.OuterLen()
		if !ok {
			return false
		}
		var par int64
		for _, r := range domain.BlockPartition(n, p) {
			par += Sum(Split(it, r))
		}
		return par == seq
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Zip of equal-length flat iterators preserves length and pairs
// elements positionally; zipping after filtering agrees with the reference.
func TestZipEquivalence(t *testing.T) {
	prop := func(xs []int8) bool {
		ys := make([]int, len(xs))
		for i, x := range xs {
			ys[i] = int(x) * 7
		}
		it := Zip(FromSlice(xs), FromSlice(ys))
		got := ToSlice(it)
		if len(got) != len(xs) {
			return false
		}
		for i := range got {
			if got[i].Fst != xs[i] || got[i].Snd != ys[i] {
				return false
			}
		}
		// irregular zip path
		pos := Filter(func(x int8) bool { return x > 0 }, FromSlice(xs))
		zipped := Zip(pos, FromSlice(ys))
		gotIrr := ToSlice(zipped)
		var wantFst []int8
		for _, x := range xs {
			if x > 0 {
				wantFst = append(wantFst, x)
			}
		}
		k := min(len(wantFst), len(ys))
		if len(gotIrr) != k {
			return false
		}
		for i := range gotIrr {
			if gotIrr[i].Fst != wantFst[i] || gotIrr[i].Snd != ys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ConcatMap over any constructor yields the concatenation of the
// expansions, in order.
func TestConcatMapEquivalence(t *testing.T) {
	prop := func(xs []uint8, stepRoot bool) bool {
		vals := make([]int, len(xs))
		for i, x := range xs {
			vals[i] = int(x % 5)
		}
		var root Iter[int]
		if stepRoot {
			root = StepFlat(StepOf(vals))
		} else {
			root = FromSlice(vals)
		}
		it := ConcatMap(func(x int) Iter[int] { return Range(x) }, root)
		got := ToSlice(it)
		var want []int
		for _, x := range vals {
			for i := range x {
				want = append(want, i)
			}
		}
		return eqSlices(got, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Triple-nested pipelines: filter inside concatMap inside concatMap.
func TestDeepNesting(t *testing.T) {
	it := ConcatMap(func(x int) Iter[int] {
		return Filter(func(y int) bool { return y%2 == 0 },
			ConcatMap(func(y int) Iter[int] { return Range(y) }, Range(x)))
	}, Range(5))
	want := []int{
		// x=2: inner y in Range(2): y=0→Range(0); y=1→[0] filtered even→[0]
		0,
		// x=3: y=0→[]; y=1→[0]; y=2→[0,1]→[0]
		0, 0,
		// x=4: y=1→[0]; y=2→[0]; y=3→[0,1,2]→[0,2]
		0, 0, 0, 2,
	}
	if got := ToSlice(it); !eqSlices(got, want) {
		t.Fatalf("deep nesting = %v, want %v", got, want)
	}
	if it.Kind() != KIdxNest {
		t.Fatalf("deep nesting kind = %v", it.Kind())
	}
}

func TestKindStrings(t *testing.T) {
	if KIdxFlat.String() != "IdxFlat" || KStepNest.String() != "StepNest" {
		t.Fatal("Kind.String wrong")
	}
	if Sequential.String() != "seq" || ClusterPar.String() != "par" || NodePar.String() != "localpar" {
		t.Fatal("ParHint.String wrong")
	}
	if Kind(9).String() == "" || ParHint(9).String() == "" {
		t.Fatal("out-of-range String empty")
	}
}
