package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// Driver-equivalence property: every consumer must produce bit-identical
// results whether it runs through the block engine or the per-element
// driver. blockDriverEnabled gates every block fast path, so running the
// same random pipeline under both settings compares the two drivers
// directly. Float sums are compared with ==, not a tolerance: the block
// driver is required to preserve the per-element accumulation order, so
// even floating-point folds must agree to the last bit. This test runs
// under -race in CI (the race job tests ./internal/...), which also checks
// that per-traversal kernel generation keeps shared iterators safe.

// runConsumers evaluates every gated consumer over it.
type driverObs struct {
	slice []int64
	sum   int64
	fsum  float64
	count int
	hist  []int64
	split int64
	ok    bool // split observed
}

func observeDrivers(it Iter[int64]) driverObs {
	o := driverObs{
		slice: ToSlice(it),
		sum:   Sum(it),
		count: Count(it),
	}
	o.fsum = Sum(Map(func(v int64) float64 { return float64(v) * 0.1 }, it))
	o.hist = Histogram(64, Map(func(v int64) int { return int(((v % 64) + 64) % 64) }, it))
	if it.CanSplit() {
		n, _ := it.OuterLen()
		for _, r := range domain.BlockPartition(n, 3) {
			o.split += Sum(Split(it, r))
		}
		o.ok = true
	}
	return o
}

func TestBlockDriverMatchesPerElementDriver(t *testing.T) {
	defer SetBlockDriver(true)
	prop := func(seed []int16, ops []PipeOp) bool {
		if len(ops) > 6 {
			ops = ops[:6]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = ApplyPipeOp(op, it)
			ref = ApplyPipeOpRef(op, ref)
			if len(ref) > 50000 {
				return true // skip exploded concatMap cases
			}
		}

		blockDriverEnabled = true
		blocked := observeDrivers(it)
		blockDriverEnabled = false
		scalar := observeDrivers(it)
		blockDriverEnabled = true

		if len(blocked.slice) != len(scalar.slice) {
			t.Logf("ToSlice length %d (block) vs %d (per-element) for ops %+v",
				len(blocked.slice), len(scalar.slice), ops)
			return false
		}
		for i := range scalar.slice {
			if blocked.slice[i] != scalar.slice[i] {
				t.Logf("ToSlice[%d] = %d (block) vs %d (per-element) for ops %+v",
					i, blocked.slice[i], scalar.slice[i], ops)
				return false
			}
		}
		if blocked.sum != scalar.sum || blocked.count != scalar.count {
			t.Logf("sum/count %d/%d vs %d/%d for ops %+v",
				blocked.sum, blocked.count, scalar.sum, scalar.count, ops)
			return false
		}
		if blocked.fsum != scalar.fsum {
			t.Logf("float sum %v (block) vs %v (per-element): accumulation order diverged for ops %+v",
				blocked.fsum, scalar.fsum, ops)
			return false
		}
		for b := range scalar.hist {
			if blocked.hist[b] != scalar.hist[b] {
				t.Logf("hist[%d] = %d vs %d for ops %+v", b, blocked.hist[b], scalar.hist[b], ops)
				return false
			}
		}
		if blocked.ok != scalar.ok || blocked.split != scalar.split {
			t.Logf("split sum %d vs %d for ops %+v", blocked.split, scalar.split, ops)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// observeEqual compares the two drivers over it and reports the first
// diverging consumer, or "" when they agree on everything.
func observeEqual(it Iter[int64]) string {
	SetBlockDriver(true)
	blocked := observeDrivers(it)
	SetBlockDriver(false)
	scalar := observeDrivers(it)
	SetBlockDriver(true)

	if len(blocked.slice) != len(scalar.slice) {
		return "ToSlice length"
	}
	for i := range scalar.slice {
		if blocked.slice[i] != scalar.slice[i] {
			return "ToSlice element"
		}
	}
	if blocked.sum != scalar.sum {
		return "Sum"
	}
	if blocked.count != scalar.count {
		return "Count"
	}
	if blocked.fsum != scalar.fsum {
		return "float Sum"
	}
	for b := range scalar.hist {
		if blocked.hist[b] != scalar.hist[b] {
			return "Histogram"
		}
	}
	if blocked.ok != scalar.ok || blocked.split != scalar.split {
		return "split Sum"
	}
	return ""
}

// Take/Drop/Chain/Scan applied directly over slice-backed producers: Take
// and Drop of a KIdxFlat re-slice the backing array (SliceIdx), Chain of
// two backed indexers builds an At-only seam, and Scan always lowers to a
// stepper — each a distinct fast-path boundary the random generator only
// rarely places first. Every combination must agree across drivers, at the
// lengths where the block driver switches on and cuts its final block.
func TestBlockDriverSliceBackedTakeDropChainScan(t *testing.T) {
	defer SetBlockDriver(true)
	// Kind bytes: 3=Take(A%40), 4=Drop(A%10), 5=Chain const block, 6=Scan.
	heads := [][]PipeOp{
		{{Kind: 3, A: 37}},
		{{Kind: 4, A: 9}},
		{{Kind: 5, A: 11, B: 200}},
		{{Kind: 6, B: 3}},
		{{Kind: 3, A: 39}, {Kind: 4, A: 7}},
		{{Kind: 4, A: 5}, {Kind: 3, A: 33}},
		{{Kind: 5, A: 1, B: 2}, {Kind: 6, B: 1}},
		{{Kind: 6, B: 2}, {Kind: 3, A: 31}},
		{{Kind: 3, A: 38}, {Kind: 5, A: 4, B: 4}},
		{{Kind: 6, B: 0}, {Kind: 4, A: 6}},
		// And each followed by a map, so the sliced/chained/scanned result
		// feeds a fused stage.
		{{Kind: 3, A: 35}, {Kind: 0, A: 2, B: 3}},
		{{Kind: 4, A: 8}, {Kind: 0, A: 4, B: 1}},
		{{Kind: 5, A: 9, B: 9}, {Kind: 0, A: 1, B: 5}},
		{{Kind: 6, B: 1}, {Kind: 0, A: 3, B: 2}},
	}
	lengths := []int{0, 1, blockMin - 1, blockMin, BlockSize - 1, BlockSize,
		BlockSize + 1, 2*BlockSize - 1, 2 * BlockSize, 777}
	for _, ops := range heads {
		for _, n := range lengths {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(i%101 - 17)
			}
			it := BuildPipeline(xs, ops)
			if field := observeEqual(it); field != "" {
				t.Fatalf("n=%d ops=%+v: drivers diverge on %s", n, ops, field)
			}
			ref, _ := RefPipeline(xs, ops, 0)
			got := ToSlice(it)
			if len(got) != len(ref) {
				t.Fatalf("n=%d ops=%+v: length %d vs ref %d", n, ops, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("n=%d ops=%+v: element %d: %d vs %d", n, ops, i, got[i], ref[i])
				}
			}
		}
	}
}

// Generator-driven variant: random pipelines constrained to begin with a
// Take/Drop/Chain/Scan over the slice-backed source, then continue with
// arbitrary ops — the compositions around the re-slicing fast paths.
func TestBlockDriverSliceOpsRandomCompositions(t *testing.T) {
	defer SetBlockDriver(true)
	prop := func(seed []int16, head PipeOp, ops []PipeOp) bool {
		head.Kind = 3 + head.Kind%4 // force Take/Drop/Chain/Scan first
		if len(ops) > 4 {
			ops = ops[:4]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		all := append([]PipeOp{head}, ops...)
		if _, ok := RefPipeline(xs, all, 50000); !ok {
			return true // skip exploded concatMap cases
		}
		if field := observeEqual(BuildPipeline(xs, all)); field != "" {
			t.Logf("drivers diverge on %s for ops %+v", field, all)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The boundary cases quick.Check rarely lands on exactly: lengths around
// blockMin and around BlockSize multiples, where the block driver switches
// on and where its final partial block is cut.
func TestBlockDriverBoundaryLengths(t *testing.T) {
	defer func() { blockDriverEnabled = true }()
	lengths := []int{0, 1, blockMin - 1, blockMin, blockMin + 1,
		BlockSize - 1, BlockSize, BlockSize + 1, 2*BlockSize - 1, 2 * BlockSize, 1000}
	for _, n := range lengths {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i%97 - 13)
		}
		it := Filter(func(v int64) bool { return v%3 != 0 },
			Map(func(v int64) int64 { return v*5 + 1 }, FromSlice(xs)))

		blockDriverEnabled = true
		gotSlice, gotSum, gotCount := ToSlice(it), Sum(it), Count(it)
		blockDriverEnabled = false
		wantSlice, wantSum, wantCount := ToSlice(it), Sum(it), Count(it)
		blockDriverEnabled = true

		if gotSum != wantSum || gotCount != wantCount || len(gotSlice) != len(wantSlice) {
			t.Fatalf("n=%d: block driver sum/count/len %d/%d/%d vs %d/%d/%d",
				n, gotSum, gotCount, len(gotSlice), wantSum, wantCount, len(wantSlice))
		}
		for i := range wantSlice {
			if gotSlice[i] != wantSlice[i] {
				t.Fatalf("n=%d: element %d: %d vs %d", n, i, gotSlice[i], wantSlice[i])
			}
		}
	}
}
